/**
 * @file
 * Ablation 2 — the paper's §VII outlook: "we believe that similar
 * optimizations are possible for other checks, e.g. map and boundary
 * checks". vspec implements a fused map-check instruction (jschkmap:
 * map-word load + compare in one instruction, the WrongMap analogue of
 * jsldrsmi) and measures three ISA levels on the detailed models:
 *
 *   base      — unmodified ARM64-like ISA
 *   +smi      — §V jsldr(u)smi loads
 *   +smi+map  — jsldrsmi + jschkmap
 */

#include "bench_common.hh"

using namespace vspec;
using namespace vspec::bench;

namespace
{

struct Cell
{
    bool ok = false;
    double smi = 0.0;
    double map = 0.0;
    std::string text;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv, 10, 2);

    printf("Ablation — extending the §V codesign to map checks "
           "(paper §VII outlook)\n");
    hr('=', 96);

    auto cores = CpuConfig::gem5Cores();
    printf("%-14s", "workload");
    for (const auto &c : cores)
        printf(" | %-10.10s smi    +map", c.name.c_str());
    printf("\n");
    hr('-', 110);

    // One cell per (workload, core) pair; row-major, so rendering a
    // workload's line concatenates a contiguous slice of cells.
    auto workloads = args.selectedGem5();
    size_t n_cells = workloads.size() * cores.size();
    auto cells = par::mapCells<Cell>(
        args.jobs, n_cells, [&](size_t idx) {
            const Workload &w = *workloads[idx / cores.size()];
            const CpuConfig &core = cores[idx % cores.size()];
            Cell cell;

            RunConfig base;
            base.isa = IsaFlavour::Arm64Like;
            base.cpu = core;
            base.size = w.gem5Size;
            base.iterations = args.iterations;
            base.samplerEnabled = false;

            RunConfig smi = base;
            smi.smiExtension = true;
            RunConfig both = smi;
            both.mapCheckExtension = true;

            double c_base = 0, c_smi = 0, c_both = 0;
            int reps = 0;
            for (u32 r = 0; r < args.repeats; r++) {
                RunConfig b2 = base, s2 = smi, m2 = both;
                b2.jitter = s2.jitter = m2.jitter = r;
                RunOutcome ob = runWorkload(w, b2, nullptr);
                RunOutcome os = runWorkload(w, s2, nullptr);
                RunOutcome om = runWorkload(w, m2, nullptr);
                if (!ob.completed || !os.completed || !om.completed)
                    continue;
                c_base += ob.steadyStateCycles();
                c_smi += os.steadyStateCycles();
                c_both += om.steadyStateCycles();
                reps++;
            }
            if (reps == 0 || c_base <= 0) {
                cell.text = " |        n/a        ";
                return cell;
            }
            cell.ok = true;
            cell.smi = 100.0 * (1.0 - c_smi / c_base);
            cell.map = 100.0 * (1.0 - c_both / c_base);
            cell.text = par::strprintf(" |   %6.2f%% %6.2f%%", cell.smi,
                                       cell.map);
            return cell;
        });

    double sum_smi = 0.0, sum_map = 0.0;
    int n = 0;
    for (size_t wi = 0; wi < workloads.size(); wi++) {
        printf("%-14s", workloads[wi]->name.c_str());
        for (size_t ci = 0; ci < cores.size(); ci++) {
            const Cell &cell = cells[wi * cores.size() + ci];
            fputs(cell.text.c_str(), stdout);
            if (cell.ok) {
                sum_smi += cell.smi;
                sum_map += cell.map;
                n++;
            }
        }
        printf("\n");
    }
    hr('-', 110);
    printf("mean execution-time reduction: +smi %.1f%%, +smi+map "
           "%.1f%%\n", n ? sum_smi / n : 0.0, n ? sum_map / n : 0.0);
    printf("\npaper §VII: the SMI extension addresses the general "
           "problem of run-time-only data representations;\n"
           "map and boundary checks are named as the next candidates — "
           "this ablation implements the map-check half.\n");
    return 0;
}
