/**
 * @file
 * Ablation 2 — the paper's §VII outlook: "we believe that similar
 * optimizations are possible for other checks, e.g. map and boundary
 * checks". vspec implements a fused map-check instruction (jschkmap:
 * map-word load + compare in one instruction, the WrongMap analogue of
 * jsldrsmi) and measures three ISA levels on the detailed models:
 *
 *   base      — unmodified ARM64-like ISA
 *   +smi      — §V jsldr(u)smi loads
 *   +smi+map  — jsldrsmi + jschkmap
 */

#include "bench_common.hh"

using namespace vspec;
using namespace vspec::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv, 10, 2);

    printf("Ablation — extending the §V codesign to map checks "
           "(paper §VII outlook)\n");
    hr('=', 96);

    auto cores = CpuConfig::gem5Cores();
    double sum_smi = 0.0, sum_map = 0.0;
    int n = 0;

    printf("%-14s", "workload");
    for (const auto &c : cores)
        printf(" | %-10.10s smi    +map", c.name.c_str());
    printf("\n");
    hr('-', 110);

    for (const Workload *w : gem5Subset()) {
        if (!args.selected(*w))
            continue;
        printf("%-14s", w->name.c_str());
        for (const auto &core : cores) {
            RunConfig base;
            base.isa = IsaFlavour::Arm64Like;
            base.cpu = core;
            base.size = w->gem5Size;
            base.iterations = args.iterations;
            base.samplerEnabled = false;

            RunConfig smi = base;
            smi.smiExtension = true;
            RunConfig both = smi;
            both.mapCheckExtension = true;

            double c_base = 0, c_smi = 0, c_both = 0;
            int reps = 0;
            for (u32 r = 0; r < args.repeats; r++) {
                RunConfig b2 = base, s2 = smi, m2 = both;
                b2.jitter = s2.jitter = m2.jitter = r;
                RunOutcome ob = runWorkload(*w, b2, nullptr);
                RunOutcome os = runWorkload(*w, s2, nullptr);
                RunOutcome om = runWorkload(*w, m2, nullptr);
                if (!ob.completed || !os.completed || !om.completed)
                    continue;
                c_base += ob.steadyStateCycles();
                c_smi += os.steadyStateCycles();
                c_both += om.steadyStateCycles();
                reps++;
            }
            if (reps == 0 || c_base <= 0) {
                printf(" |        n/a        ");
                continue;
            }
            double spd_smi = 100.0 * (1.0 - c_smi / c_base);
            double spd_map = 100.0 * (1.0 - c_both / c_base);
            printf(" |   %6.2f%% %6.2f%%", spd_smi, spd_map);
            sum_smi += spd_smi;
            sum_map += spd_map;
            n++;
        }
        printf("\n");
    }
    hr('-', 110);
    printf("mean execution-time reduction: +smi %.1f%%, +smi+map "
           "%.1f%%\n", n ? sum_smi / n : 0.0, n ? sum_map / n : 0.0);
    printf("\npaper §VII: the SMI extension addresses the general "
           "problem of run-time-only data representations;\n"
           "map and boundary checks are named as the next candidates — "
           "this ablation implements the map-check half.\n");
    return 0;
}
