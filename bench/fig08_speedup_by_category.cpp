/**
 * @file
 * Fig. 8: speedups from check removal grouped by benchmark category,
 * comparing the two estimation techniques (PC sampling vs direct
 * removal) side by side on both ISAs.
 *
 * Paper findings: the two estimates broadly agree per category;
 * math/crypto/sparse show the highest speedups, regex and parsing the
 * lowest (their time is spent in builtins).
 */

#include <map>

#include "bench_common.hh"

using namespace vspec;
using namespace vspec::bench;

namespace
{

struct Cell
{
    bool completed = false;
    Category category = Category::Math;
    double sampling = 0.0;
    bool hasRemoval = false;
    double removal = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv, 20, 1);

    printf("Fig. 8 — speedup by category: PC-sampling estimate vs check "
           "removal\n");
    hr('=', 90);

    for (IsaFlavour isa : {IsaFlavour::X64Like, IsaFlavour::Arm64Like}) {
        if (isa == IsaFlavour::Arm64Like && !args.bothIsas)
            break;

        auto cells = par::mapWorkloads<Cell>(
            args.jobs, args.selectedSuite(), [&](const Workload &w) {
                Cell cell;
                cell.category = w.category;
                RunConfig base;
                base.isa = isa;
                base.iterations = args.iterations;
                auto safe = findSafeRemovalSet(
                    w, base, std::max(20u, args.iterations / 2));

                RunOutcome with = runWorkload(w, base, nullptr);
                RunConfig rm = base;
                rm.removeChecks = safe;
                rm.samplerEnabled = false;
                RunOutcome without = runWorkload(w, rm, nullptr);
                if (!with.completed || !without.completed)
                    return cell;
                cell.completed = true;
                cell.sampling =
                    1.0 / (1.0 - with.window.overheadFraction());
                if (without.meanCycles() > 0) {
                    cell.hasRemoval = true;
                    cell.removal = with.meanCycles()
                                   / without.meanCycles();
                }
                return cell;
            });

        std::map<Category, std::vector<double>> sampling, removal;
        for (const Cell &cell : cells) {
            if (!cell.completed)
                continue;
            sampling[cell.category].push_back(cell.sampling);
            if (cell.hasRemoval)
                removal[cell.category].push_back(cell.removal);
        }

        printf("\n=== %s ===\n", isaName(isa));
        printf("%-10s %8s %18s %18s\n", "category", "n", "sampling est.",
               "removal est.");
        hr('-', 60);
        for (auto &[cat, xs] : sampling) {
            printf("%-10s %8zu %17.3fx %17.3fx\n", categoryName(cat),
                   xs.size(), stats::mean(xs),
                   stats::mean(removal[cat]));
        }
    }
    printf("\npaper: estimates agree for most categories (differences "
           "in sparse on x64 / math on ARM64 motivate §IV's\n"
           "statistical analysis); math/crypto highest, regex/parsing "
           "lowest.\n");
    return 0;
}
