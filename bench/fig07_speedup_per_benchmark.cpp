/**
 * @file
 * Fig. 7: per-benchmark speedups from check removal, estimated by the
 * two orthogonal techniques (PC sampling -> (1 - ovh)^-1; direct
 * check removal -> time ratio), with bootstrap confidence intervals
 * over jittered repeats and Welch t-tests (Bonferroni-corrected) for
 * practical significance (significant AND > 2 %).
 *
 * Paper findings: mean ~8 % (some >20 %); 28/51 benchmarks (55 %) on
 * X64 and 34/51 (67 %) on ARM64 show a practically significant
 * improvement; regex/parsing benchmarks mostly do not.
 */

#include "bench_common.hh"

using namespace vspec;
using namespace vspec::bench;

namespace
{

struct Row
{
    bool completed = false;
    bool sig = false;
    std::string text;
};

void
runFlavour(const BenchArgs &args, IsaFlavour isa)
{
    printf("\n=== %s ===\n", isaName(isa));
    printf("%-16s %-8s %12s %14s %14s %10s %6s\n", "workload", "cat",
           "sampling-est", "removal-est", "95%% CI", "p-value", "sig");
    hr('-', 96);

    auto workloads = args.selectedSuite();
    double alpha = stats::bonferroni(0.05, workloads.size());

    auto rows = par::mapWorkloads<Row>(
        args.jobs, workloads, [&](const Workload &w) {
            Row row;
            RunConfig base;
            base.isa = isa;
            base.iterations = args.iterations;
            auto safe = findSafeRemovalSet(
                w, base, std::max(20u, args.iterations / 2));

            std::vector<double> with_means, without_means, sampling_est;
            std::vector<double> with_iters, without_iters;
            for (u32 r = 0; r < args.repeats; r++) {
                RunConfig with = base;
                with.jitter = r;
                RunOutcome ow = runWorkload(w, with, nullptr);
                RunConfig without = base;
                without.jitter = r;
                without.removeChecks = safe;
                without.samplerEnabled = false;
                RunOutcome owo = runWorkload(w, without, nullptr);
                if (!ow.completed || !owo.completed)
                    continue;
                with_means.push_back(ow.meanCycles());
                without_means.push_back(owo.meanCycles());
                sampling_est.push_back(
                    1.0 / (1.0 - ow.window.overheadFraction()));
                // Steady-state per-iteration populations, t-test.
                size_t start = ow.iterationCycles.size() / 3;
                for (size_t i = start; i < ow.iterationCycles.size();
                     i++)
                    with_iters.push_back(
                        static_cast<double>(ow.iterationCycles[i]));
                for (size_t i = start; i < owo.iterationCycles.size();
                     i++)
                    without_iters.push_back(
                        static_cast<double>(owo.iterationCycles[i]));
            }
            if (with_means.empty())
                return row;
            row.completed = true;

            std::vector<double> removal_est;
            for (size_t i = 0; i < with_means.size(); i++) {
                if (without_means[i] > 0)
                    removal_est.push_back(with_means[i]
                                          / without_means[i]);
            }
            double rm = stats::mean(removal_est);
            auto ci = stats::bootstrapMeanCi(removal_est);
            stats::TTest tt = stats::welchTTest(with_iters,
                                                without_iters);
            row.sig = tt.pValue < alpha && rm > 1.02;

            row.text = par::strprintf(
                "%-16s %-8s %11.3fx %13.3fx  [%5.3f,%5.3f] %10.2g %6s\n",
                w.name.c_str(), categoryName(w.category),
                stats::mean(sampling_est), rm, ci.lo, ci.hi, tt.pValue,
                row.sig ? "yes" : "no");
            return row;
        });

    int significant = 0, total = 0;
    for (const Row &row : rows) {
        if (!row.completed)
            continue;
        fputs(row.text.c_str(), stdout);
        if (row.sig)
            significant++;
        total++;
    }
    hr('-', 96);
    printf("practically significant (p < %.2g Bonferroni, speedup > 2%%): "
           "%d / %d (%.0f%%)\n", alpha, significant, total,
           total ? 100.0 * significant / total : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv, 24, 3);
    printf("Fig. 7 — per-benchmark speedup from removing checks, "
           "two estimation techniques\n");
    hr('=', 96);
    runFlavour(args, IsaFlavour::X64Like);
    if (args.bothIsas)
        runFlavour(args, IsaFlavour::Arm64Like);
    printf("\npaper: 55%% (X64) / 67%% (ARM64) of benchmarks practically "
           "significant; regex/parsing mostly not.\n");
    return 0;
}
