/**
 * @file
 * Shared helpers for the per-figure bench binaries: CLI parsing,
 * aligned table printing, and common run recipes. Each binary
 * regenerates the rows/series of one figure or table of the paper
 * (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
 * paper-vs-measured values).
 *
 * Every binary runs its experiment cells through the vpar runner
 * (harness/parallel.hh): `--jobs=N` (default VSPEC_JOBS, else hardware
 * concurrency) shards cells across a worker pool; output is rendered
 * sequentially from cell-indexed results, so it is byte-identical to a
 * `--jobs=1` run.
 */

#ifndef VSPEC_BENCH_BENCH_COMMON_HH
#define VSPEC_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/parallel.hh"
#include "stats/stats.hh"

namespace vspec
{
namespace bench
{

struct BenchArgs
{
    u32 iterations = 30;
    u32 repeats = 3;
    u32 jobs = sched::defaultJobs();
    bool cache = true;     //!< persistent reference/safe-set cache
    bool bothIsas = true;
    bool quick = false;
    std::string only;      //!< restrict to one workload (name or tag)

    [[noreturn]] static void
    usage(const char *argv0, const char *bad_flag)
    {
        if (bad_flag != nullptr)
            std::fprintf(stderr, "%s: invalid argument '%s'\n", argv0,
                         bad_flag);
        std::fprintf(stderr,
                     "usage: %s [--iters=N] [--repeats=N] [--jobs=N]\n"
                     "          [--no-cache] [--arm64-only] [--quick]\n"
                     "          [--only=WORKLOAD|TAG]\n"
                     "  --iters=N    iterations per run (positive)\n"
                     "  --repeats=N  repeated runs per cell (positive)\n"
                     "  --jobs=N     worker threads (default: VSPEC_JOBS"
                     " or hardware concurrency)\n"
                     "  --no-cache   ignore the persistent reference/"
                     "safe-set cache\n"
                     "  --arm64-only skip the x64-like ISA flavour\n"
                     "  --quick      fewer iterations, one repeat\n"
                     "  --only=NAME  restrict to one workload name or "
                     "tag\n",
                     argv0);
        std::exit(2);
    }

    /** Parse a positive decimal count; exits with usage() on garbage
     *  (atoi's silent 0 previously turned typos into empty runs). */
    static u32
    parseCount(const char *argv0, const char *flag, const char *text)
    {
        char *end = nullptr;
        unsigned long v = std::strtoul(text, &end, 10);
        if (text[0] == '\0' || end == nullptr || *end != '\0' || v == 0
            || v > 1000000000ul) {
            std::fprintf(stderr, "%s: %s expects a positive integer, "
                                 "got '%s'\n",
                         argv0, flag, text);
            std::exit(2);
        }
        return static_cast<u32>(v);
    }

    static BenchArgs
    parse(int argc, char **argv, u32 default_iters = 30,
          u32 default_repeats = 3)
    {
        BenchArgs a;
        a.iterations = default_iters;
        a.repeats = default_repeats;
        for (int i = 1; i < argc; i++) {
            const char *arg = argv[i];
            if (std::strncmp(arg, "--iters=", 8) == 0)
                a.iterations = parseCount(argv[0], "--iters", arg + 8);
            else if (std::strncmp(arg, "--repeats=", 10) == 0)
                a.repeats = parseCount(argv[0], "--repeats", arg + 10);
            else if (std::strncmp(arg, "--jobs=", 7) == 0)
                a.jobs = parseCount(argv[0], "--jobs", arg + 7);
            else if (std::strcmp(arg, "--no-cache") == 0)
                a.cache = false;
            else if (std::strcmp(arg, "--arm64-only") == 0)
                a.bothIsas = false;
            else if (std::strcmp(arg, "--quick") == 0)
                a.quick = true;
            else if (std::strncmp(arg, "--only=", 7) == 0)
                a.only = arg + 7;
            else if (std::strcmp(arg, "--help") == 0
                     || std::strcmp(arg, "-h") == 0)
                usage(argv[0], nullptr);
            else
                usage(argv[0], arg);
        }
        if (a.quick) {
            a.iterations = std::max<u32>(10, a.iterations / 3);
            a.repeats = 1;
        }
        if (!a.cache)
            par::PersistentCache::instance().setDiskEnabled(false);
        return a;
    }

    bool
    selected(const Workload &w) const
    {
        return only.empty() || w.name == only || w.tag == only;
    }

    /** Suite workloads passing the --only filter, in canonical order. */
    std::vector<const Workload *>
    selectedSuite() const
    {
        std::vector<const Workload *> ws;
        for (const Workload &w : suite())
            if (selected(w))
                ws.push_back(&w);
        return ws;
    }

    /** gem5 subset (§V) passing the --only filter. */
    std::vector<const Workload *>
    selectedGem5() const
    {
        std::vector<const Workload *> ws;
        for (const Workload *w : gem5Subset())
            if (selected(*w))
                ws.push_back(w);
        return ws;
    }
};

inline void
hr(char c = '-', int width = 100)
{
    for (int i = 0; i < width; i++)
        putchar(c);
    putchar('\n');
}

/** hr() into a per-cell output buffer. */
inline std::string
hrs(char c = '-', int width = 100)
{
    return std::string(static_cast<size_t>(width), c) + "\n";
}

inline const char *
isaName(IsaFlavour f)
{
    return isaFlavourName(f);
}

/** Steady-state per-iteration cycles of one configured run. */
inline double
steadyCycles(const Workload &w, RunConfig rc)
{
    RunOutcome out = runWorkload(w, rc, nullptr);
    return out.steadyStateCycles();
}

} // namespace bench
} // namespace vspec

#endif // VSPEC_BENCH_BENCH_COMMON_HH
