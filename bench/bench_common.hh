/**
 * @file
 * Shared helpers for the per-figure bench binaries: CLI parsing,
 * aligned table printing, and common run recipes. Each binary
 * regenerates the rows/series of one figure or table of the paper
 * (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
 * paper-vs-measured values).
 */

#ifndef VSPEC_BENCH_BENCH_COMMON_HH
#define VSPEC_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstring>
#include <string>

#include "harness/experiment.hh"
#include "stats/stats.hh"

namespace vspec
{
namespace bench
{

struct BenchArgs
{
    u32 iterations = 30;
    u32 repeats = 3;
    bool bothIsas = true;
    bool quick = false;
    std::string only;  //!< restrict to one workload (name or tag)

    static BenchArgs
    parse(int argc, char **argv, u32 default_iters = 30,
          u32 default_repeats = 3)
    {
        BenchArgs a;
        a.iterations = default_iters;
        a.repeats = default_repeats;
        for (int i = 1; i < argc; i++) {
            if (std::strncmp(argv[i], "--iters=", 8) == 0)
                a.iterations = static_cast<u32>(std::atoi(argv[i] + 8));
            else if (std::strncmp(argv[i], "--repeats=", 10) == 0)
                a.repeats = static_cast<u32>(std::atoi(argv[i] + 10));
            else if (std::strcmp(argv[i], "--arm64-only") == 0)
                a.bothIsas = false;
            else if (std::strcmp(argv[i], "--quick") == 0)
                a.quick = true;
            else if (std::strncmp(argv[i], "--only=", 7) == 0)
                a.only = argv[i] + 7;
        }
        if (a.quick) {
            a.iterations = std::max<u32>(10, a.iterations / 3);
            a.repeats = 1;
        }
        return a;
    }

    bool
    selected(const Workload &w) const
    {
        return only.empty() || w.name == only || w.tag == only;
    }
};

inline void
hr(char c = '-', int width = 100)
{
    for (int i = 0; i < width; i++)
        putchar(c);
    putchar('\n');
}

inline const char *
isaName(IsaFlavour f)
{
    return isaFlavourName(f);
}

/** Steady-state per-iteration cycles of one configured run. */
inline double
steadyCycles(const Workload &w, RunConfig rc)
{
    RunOutcome out = runWorkload(w, rc, nullptr);
    return out.steadyStateCycles();
}

} // namespace bench
} // namespace vspec

#endif // VSPEC_BENCH_BENCH_COMMON_HH
