/**
 * @file
 * §II-B taxonomy table: the 52 deoptimization reasons, their category
 * (deopt-eager / deopt-lazy / deopt-soft) and analysis group, plus the
 * dynamic deopt events observed across the whole suite — the paper's
 * claim that eager deopts dominate and that deopt events are rare.
 *
 * --json=FILE writes the machine-readable table (schema
 * "vspec-deopt-taxonomy-v1"), keyed by reason with category/group and
 * per-category totals.
 */

#include <cstring>
#include <fstream>
#include <map>

#include "bench_common.hh"

using namespace vspec;
using namespace vspec::bench;

namespace
{

struct Cell
{
    std::map<DeoptReason, u64> observed;
    u64 byCategory[3] = {0, 0, 0};
};

} // namespace

int
main(int argc, char **argv)
{
    // --json=FILE: machine-readable taxonomy (stripped before
    // BenchArgs sees the argument list, abl_window_size idiom).
    std::string json_out;
    std::vector<char *> passthrough;
    for (int i = 0; i < argc; i++) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_out = argv[i] + 7;
        else
            passthrough.push_back(argv[i]);
    }
    BenchArgs args = BenchArgs::parse(static_cast<int>(passthrough.size()),
                                      passthrough.data(), 24, 1);

    // Collect dynamic deopt counts across the suite, one engine per
    // workload, then merge the per-workload maps in order.
    auto cells = par::mapWorkloads<Cell>(
        args.jobs, args.selectedSuite(), [&](const Workload &w) {
            Cell cell;
            RunConfig rc;
            rc.iterations = args.iterations;
            rc.samplerEnabled = false;
            try {
                Engine engine(EngineConfig{});
                engine.traceLabel = w.name;
                engine.loadProgram(instantiate(w, w.defaultSize));
                for (u32 i = 0; i < rc.iterations; i++)
                    engine.call("bench");
                for (const DeoptRecord &d : engine.deoptLog) {
                    cell.observed[d.reason]++;
                    cell.byCategory[static_cast<int>(d.category)]++;
                }
            } catch (const std::exception &) {
            }
            return cell;
        });

    std::map<DeoptReason, u64> observed;
    u64 by_category[3] = {0, 0, 0};
    for (const Cell &cell : cells) {
        for (const auto &[r, n] : cell.observed)
            observed[r] += n;
        for (int c = 0; c < 3; c++)
            by_category[c] += cell.byCategory[c];
    }

    printf("§II-B — deoptimization taxonomy: %d reasons in 3 "
           "categories, 6 analysis groups\n", kNumDeoptReasons);
    hr('=', 88);
    printf("%-44s %-12s %-11s %10s\n", "reason", "category", "group",
           "observed");
    hr('-', 88);
    for (int i = 0; i < kNumDeoptReasons; i++) {
        auto r = static_cast<DeoptReason>(i);
        u64 n = observed.count(r) ? observed[r] : 0;
        printf("%-44s %-12s %-11s %10llu\n", deoptReasonName(r),
               deoptCategoryName(deoptCategoryOf(r)),
               checkGroupName(checkGroupOf(r)),
               static_cast<unsigned long long>(n));
    }
    hr('-', 88);
    for (int c = 0; c < 3; c++) {
        auto cat = static_cast<DeoptCategory>(c);
        auto reasons = reasonsInCategory(cat);
        printf("%-44s %-12s %-11zu %10llu\n", "",
               deoptCategoryName(cat), reasons.size(),
               static_cast<unsigned long long>(by_category[c]));
    }
    printf("\npaper: V8 has 52 deoptimization reason types; deopt-eager "
           "is by far the most common and the most\n"
           "performance-relevant category; deopt events themselves are "
           "rare and happen early.\n");

    if (!json_out.empty()) {
        // All 52 reasons, observed or not, so consumers can diff two
        // exports without key-set churn.
        std::string json = "{\"schema\":\"vspec-deopt-taxonomy-v1\","
                           "\"reasons\":{";
        for (int i = 0; i < kNumDeoptReasons; i++) {
            auto r = static_cast<DeoptReason>(i);
            u64 n = observed.count(r) ? observed[r] : 0;
            if (i != 0)
                json += ",";
            json += std::string("\"") + deoptReasonName(r) + "\":{"
                + "\"category\":\""
                + deoptCategoryName(deoptCategoryOf(r)) + "\""
                + ",\"group\":\"" + checkGroupName(checkGroupOf(r)) + "\""
                + ",\"observed\":" + std::to_string(n) + "}";
        }
        json += "},\"categories\":{";
        for (int c = 0; c < 3; c++) {
            auto cat = static_cast<DeoptCategory>(c);
            if (c != 0)
                json += ",";
            json += std::string("\"") + deoptCategoryName(cat) + "\":{"
                + "\"reasons\":"
                + std::to_string(reasonsInCategory(cat).size())
                + ",\"observed\":" + std::to_string(by_category[c])
                + "}";
        }
        json += "}}";
        std::ofstream out(json_out, std::ios::binary | std::ios::trunc);
        out << json;
        printf("wrote %s\n", json_out.c_str());
    }
    return 0;
}
