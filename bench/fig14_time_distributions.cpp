/**
 * @file
 * Fig. 14: per-iteration execution-time distributions, default vs
 * SMI-extended ISA, for the gem5 subset on the detailed CPU models.
 * Prints quartiles of the steady-state distribution for both ISAs.
 *
 * Paper findings: the extension often reduces variance (e.g. BLUR,
 * AES2 on O3-KPG) and gives a lower median even where the mean looks
 * unchanged.
 */

#include "bench_common.hh"

using namespace vspec;
using namespace vspec::bench;

namespace
{

std::vector<double>
steadyDistribution(const Workload &w, const RunConfig &rc, u32 repeats)
{
    std::vector<double> xs;
    for (u32 r = 0; r < repeats; r++) {
        RunConfig c = rc;
        c.jitter = r;
        RunOutcome out = runWorkload(w, c, nullptr);
        if (!out.completed)
            continue;
        size_t start = out.iterationCycles.size() / 3;
        for (size_t i = start; i < out.iterationCycles.size(); i++)
            xs.push_back(static_cast<double>(out.iterationCycles[i]));
    }
    return xs;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv, 10, 2);

    printf("Fig. 14 — steady-state iteration time distributions, "
           "default vs SMI-extended ISA\n");
    hr('=', 110);
    printf("(quartiles of per-iteration cycles, normalized to the "
           "default-ISA median)\n\n");

    // One cell per (core, workload) pair, row-major by core so each
    // core's section renders from a contiguous slice.
    auto cores = CpuConfig::gem5Cores();
    auto workloads = args.selectedGem5();
    size_t n_cells = cores.size() * workloads.size();
    auto cells = par::mapCells<std::string>(
        args.jobs, n_cells, [&](size_t idx) {
            const CpuConfig &core = cores[idx / workloads.size()];
            const Workload &w = *workloads[idx % workloads.size()];
            RunConfig def;
            def.isa = IsaFlavour::Arm64Like;
            def.cpu = core;
            def.size = w.gem5Size;
            def.iterations = args.iterations;
            def.samplerEnabled = false;
            RunConfig ext = def;
            ext.smiExtension = true;

            auto d = steadyDistribution(w, def, args.repeats);
            auto e = steadyDistribution(w, ext, args.repeats);
            if (d.empty() || e.empty())
                return std::string();
            double dm = stats::median(d);
            if (dm <= 0)
                return std::string();
            auto q = [&](std::vector<double> &xs, double p) {
                return stats::percentile(xs, p) / dm;
            };
            double d25 = q(d, 25), d50 = q(d, 50), d75 = q(d, 75);
            double e25 = q(e, 25), e50 = q(e, 50), e75 = q(e, 75);
            return par::strprintf(
                "%-12s |  %7.3f / %7.3f / %7.3f |  %7.3f / %7.3f / "
                "%7.3f | %+7.1f%% %+7.1f%%\n",
                w.name.c_str(), d25, d50, d75, e25, e50, e75,
                100.0 * (e50 - d50),
                100.0 * ((e75 - e25) - (d75 - d25)));
        });

    for (size_t ci = 0; ci < cores.size(); ci++) {
        printf("=== %s ===\n", cores[ci].name.c_str());
        printf("%-12s | %28s | %28s | %8s %8s\n", "workload",
               "default  p25 / p50 / p75", "extended p25 / p50 / p75",
               "med diff", "iqr diff");
        hr('-', 100);
        for (size_t wi = 0; wi < workloads.size(); wi++)
            fputs(cells[ci * workloads.size() + wi].c_str(), stdout);
        printf("\n");
    }
    printf("paper: the extended ISA often lowers the median and "
           "shrinks the IQR (variance), e.g. BLUR on Exynos-big and\n"
           "AES2 on O3-KPG.\n");
    return 0;
}
