/**
 * @file
 * Google-benchmark microbenchmarks for vspec's own primitives: the
 * simulated-heap access path, tagged-value operations, the regex-lite
 * matcher, the statistics kernels, and end-to-end engine throughput.
 * These measure the host cost of the reproduction infrastructure
 * itself (not the modeled cycles).
 */

#include <benchmark/benchmark.h>

#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "runtime/regex_lite.hh"
#include "stats/stats.hh"
#include "support/sched.hh"

using namespace vspec;

static void
BM_HeapReadWrite(benchmark::State &state)
{
    Heap heap(8u << 20);
    Addr a = heap.allocate(4096, 1, 0);
    u32 x = 0;
    for (auto _ : state) {
        heap.writeU32(a + (x % 512) * 8, x);
        benchmark::DoNotOptimize(heap.readU32(a + (x % 512) * 8));
        x++;
    }
}
BENCHMARK(BM_HeapReadWrite);

static void
BM_ValueTagUntag(benchmark::State &state)
{
    i32 v = 12345;
    for (auto _ : state) {
        Value t = Value::smi(v);
        benchmark::DoNotOptimize(t.asSmi());
    }
}
BENCHMARK(BM_ValueTagUntag);

static void
BM_RegexLite(benchmark::State &state)
{
    RegexLite re("a[bc]+d|xy*z");
    std::string subject = "zzabcbcbcd__xyyyz__acbd";
    for (auto _ : state) {
        u64 steps = 0;
        benchmark::DoNotOptimize(re.countMatches(subject, steps));
    }
}
BENCHMARK(BM_RegexLite);

static void
BM_StatsPearson(benchmark::State &state)
{
    std::vector<double> x, y;
    for (int i = 0; i < 200; i++) {
        x.push_back(i * 0.5);
        y.push_back(i * 0.7 + (i % 7));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::pearson(x, y));
}
BENCHMARK(BM_StatsPearson);

static void
BM_EngineDotProduct(benchmark::State &state)
{
    const Workload *w = findWorkload("DP");
    EngineConfig cfg;
    cfg.predecode = state.range(0) != 0;
    Engine engine{cfg};
    engine.loadProgram(instantiate(*w, 256));
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.call("bench"));
    state.counters["modeled_cycles"] =
        static_cast<double>(engine.totalCycles());
    state.SetLabel(cfg.predecode ? "predecode" : "per-fetch decode");
}
BENCHMARK(BM_EngineDotProduct)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// Host cost of the parallel runner's dispatch machinery itself
// (empty cells — measures scheduling overhead, not work).
static void
BM_MapCellsDispatch(benchmark::State &state)
{
    const u32 jobs = static_cast<u32>(state.range(0));
    for (auto _ : state) {
        auto xs = par::mapCells<size_t>(jobs, 256,
                                        [](size_t i) { return i; });
        benchmark::DoNotOptimize(xs.data());
    }
    state.SetLabel(jobs == 1 ? "inline" : "pooled");
}
BENCHMARK(BM_MapCellsDispatch)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

// Cache key derivation: instantiated-source hash + config fingerprint.
static void
BM_CacheKeyFingerprint(benchmark::State &state)
{
    const Workload *w = findWorkload("DP");
    RunConfig rc;
    for (auto _ : state)
        benchmark::DoNotOptimize(par::safeSetCacheKey(*w, rc, 40));
}
BENCHMARK(BM_CacheKeyFingerprint);

BENCHMARK_MAIN();
