/**
 * @file
 * Google-benchmark microbenchmarks for vspec's own primitives: the
 * simulated-heap access path, tagged-value operations, the regex-lite
 * matcher, the statistics kernels, and end-to-end engine throughput.
 * These measure the host cost of the reproduction infrastructure
 * itself (not the modeled cycles).
 */

#include <benchmark/benchmark.h>

#include "harness/experiment.hh"
#include "runtime/regex_lite.hh"
#include "stats/stats.hh"

using namespace vspec;

static void
BM_HeapReadWrite(benchmark::State &state)
{
    Heap heap(8u << 20);
    Addr a = heap.allocate(4096, 1, 0);
    u32 x = 0;
    for (auto _ : state) {
        heap.writeU32(a + (x % 512) * 8, x);
        benchmark::DoNotOptimize(heap.readU32(a + (x % 512) * 8));
        x++;
    }
}
BENCHMARK(BM_HeapReadWrite);

static void
BM_ValueTagUntag(benchmark::State &state)
{
    i32 v = 12345;
    for (auto _ : state) {
        Value t = Value::smi(v);
        benchmark::DoNotOptimize(t.asSmi());
    }
}
BENCHMARK(BM_ValueTagUntag);

static void
BM_RegexLite(benchmark::State &state)
{
    RegexLite re("a[bc]+d|xy*z");
    std::string subject = "zzabcbcbcd__xyyyz__acbd";
    for (auto _ : state) {
        u64 steps = 0;
        benchmark::DoNotOptimize(re.countMatches(subject, steps));
    }
}
BENCHMARK(BM_RegexLite);

static void
BM_StatsPearson(benchmark::State &state)
{
    std::vector<double> x, y;
    for (int i = 0; i < 200; i++) {
        x.push_back(i * 0.5);
        y.push_back(i * 0.7 + (i % 7));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::pearson(x, y));
}
BENCHMARK(BM_StatsPearson);

static void
BM_EngineDotProduct(benchmark::State &state)
{
    const Workload *w = findWorkload("DP");
    Engine engine{EngineConfig{}};
    engine.loadProgram(instantiate(*w, 256));
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.call("bench"));
    state.counters["modeled_cycles"] =
        static_cast<double>(engine.totalCycles());
}
BENCHMARK(BM_EngineDotProduct)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
