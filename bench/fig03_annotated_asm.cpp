/**
 * @file
 * Fig. 3 (methodology illustration): annotated machine code of an
 * SMI-heavy kernel with per-instruction PC-sample counts, showing the
 * paper's canonical pattern — a tagged load, the Not-a-SMI check
 * (tst + b.ne to the deoptimization region), and the untagging shift —
 * and how samples land on check instructions.
 */

#include "bench_common.hh"
#include "runtime/engine.hh"

using namespace vspec;
using namespace vspec::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv, 60, 1);

    const Workload *w = findWorkload(args.only.empty() ? "DP" : args.only);
    if (w == nullptr) {
        printf("unknown workload\n");
        return 1;
    }

    EngineConfig cfg;
    cfg.isa = IsaFlavour::Arm64Like;
    cfg.samplerEnabled = true;
    cfg.samplerPeriodCycles = 101;
    Engine engine(cfg);
    engine.loadProgram(instantiate(*w, w->defaultSize));
    for (u32 i = 0; i < args.iterations; i++)
        engine.call("bench");

    printf("Fig. 3 — annotated JIT code with PC sample counts (%s)\n",
           w->name.c_str());
    hr('=');

    FunctionId fid = engine.functions.idOf("bench");
    const FunctionInfo &fn = engine.functions.at(fid);
    if (!fn.hasCode()) {
        printf("bench() was not optimized\n");
        return 1;
    }
    const CodeObject &code = *engine.codeObjects[fn.codeId];
    const auto *hist = engine.sampler.histogramFor(code.id);

    printf("%8s  %-5s %s\n", "samples", "pc", "instruction");
    hr();
    for (size_t i = 0; i < code.code.size(); i++) {
        const MInst &m = code.code[i];
        u64 samples = hist != nullptr && i < hist->size() ? (*hist)[i] : 0;
        char line[160];
        std::snprintf(line, sizeof(line), "%8llu  %4zu: %-10s",
                      static_cast<unsigned long long>(samples), i,
                      mopName(m.op));
        std::string text = line;
        if (m.op == MOp::Bcond || m.op == MOp::B) {
            text += " ";
            text += condName(m.cond);
            text += " ->" + std::to_string(m.target);
        }
        if (m.checkId != kNoCheck) {
            const CheckInfo &ci = code.checks[m.checkId];
            text += "    ; ";
            text += checkGroupName(ci.group);
            text += "/";
            text += deoptReasonName(ci.reason);
            text += m.checkRole == CheckRole::Branch ? " [deopt branch]"
                   : m.checkRole == CheckRole::Fused ? " [fused smi load]"
                                                     : " [condition]";
        }
        printf("%s\n", text.c_str());
    }

    u64 check_samples = 0, total_samples = 0;
    if (hist != nullptr) {
        for (size_t i = 0; i < code.code.size() && i < hist->size(); i++) {
            total_samples += (*hist)[i];
            if (code.code[i].checkId != kNoCheck)
                check_samples += (*hist)[i];
        }
    }
    hr();
    printf("samples on check instructions: %llu / %llu (%.1f%%)\n",
           static_cast<unsigned long long>(check_samples),
           static_cast<unsigned long long>(total_samples),
           total_samples ? 100.0 * check_samples / total_samples : 0.0);
    return 0;
}
