/**
 * @file
 * Host-side performance meter for the vpar runner itself: measures
 * suite wall-clock, cells/sec and cache hit rate in-process, and — when
 * pointed at the fig07 binary — the cold-vs-warm wall-clock of
 * `fig07_speedup_per_benchmark --quick` through the persistent cache.
 * Emits everything as BENCH_host.json for CI trend tracking.
 *
 * Usage:
 *   micro_host [--out=BENCH_host.json] [--fig07=path/to/fig07_binary]
 *              [--jobs=N] [--iters=N]
 */

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "bench_common.hh"

using namespace vspec;
using namespace vspec::bench;

namespace
{

double
now()
{
    using clk = std::chrono::steady_clock;
    return std::chrono::duration<double>(clk::now().time_since_epoch())
        .count();
}

/** Shell out to the fig07 binary with a controlled cache dir / job
 *  count; returns wall seconds, or a negative value on failure. */
double
timeFig07(const std::string &binary, const std::string &cache_dir,
          u32 jobs)
{
    std::string cmd = "VSPEC_CACHE_DIR='" + cache_dir + "' VSPEC_JOBS="
                      + std::to_string(jobs) + " '" + binary
                      + "' --quick >/dev/null 2>&1";
    double t0 = now();
    int rc = std::system(cmd.c_str());
    double dt = now() - t0;
    return rc == 0 ? dt : -1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_host.json";
    std::string fig07;
    u32 jobs = sched::defaultJobs();
    u32 iterations = 20;
    for (int i = 1; i < argc; i++) {
        const char *a = argv[i];
        if (std::strncmp(a, "--out=", 6) == 0) {
            out_path = a + 6;
        } else if (std::strncmp(a, "--fig07=", 8) == 0) {
            fig07 = a + 8;
        } else if (std::strncmp(a, "--jobs=", 7) == 0) {
            jobs = static_cast<u32>(std::atoi(a + 7));
            if (jobs == 0)
                jobs = 1;
        } else if (std::strncmp(a, "--iters=", 8) == 0) {
            iterations = static_cast<u32>(std::atoi(a + 8));
            if (iterations == 0)
                iterations = 20;
        } else {
            fprintf(stderr,
                    "usage: %s [--out=FILE] [--fig07=BINARY] [--jobs=N] "
                    "[--iters=N]\n", argv[0]);
            return 2;
        }
    }

    printf("micro_host — host-side runner/cache performance "
           "(jobs=%u)\n", jobs);
    hr('=', 70);

    // ------------------------------------------------------------------
    // Suite throughput: one full-suite pass of plain cells.
    // ------------------------------------------------------------------
    par::resetHarnessCounters();
    std::vector<const Workload *> ws;
    for (const Workload &w : suite())
        ws.push_back(&w);
    double t0 = now();
    auto cells = par::mapWorkloads<u8>(jobs, ws, [&](const Workload &w) {
        RunConfig rc;
        rc.iterations = iterations;
        rc.samplerEnabled = false;
        RunOutcome o = runWorkload(w, rc, nullptr);
        return static_cast<u8>(o.completed ? 1 : 0);
    });
    double suite_secs = now() - t0;
    size_t completed = 0;
    for (u8 c : cells)
        completed += c;
    double cells_per_sec =
        suite_secs > 0 ? static_cast<double>(cells.size()) / suite_secs
                       : 0.0;
    printf("suite pass: %zu/%zu cells in %.2fs (%.2f cells/sec)\n",
           completed, cells.size(), suite_secs, cells_per_sec);

    // ------------------------------------------------------------------
    // Cache hit rate: reference checksum + safe-set search for every
    // workload, twice — the second pass must be all hits.
    // ------------------------------------------------------------------
    par::resetHarnessCounters();
    for (int pass = 0; pass < 2; pass++) {
        par::mapWorkloads<u8>(jobs, ws, [&](const Workload &w) {
            RunConfig rc;
            rc.iterations = iterations;
            referenceChecksum(w, w.defaultSize, iterations);
            findSafeRemovalSet(w, rc, std::max(10u, iterations / 2));
            return static_cast<u8>(1);
        });
    }
    u64 hits = par::harnessCounter(par::HarnessCounter::RefCacheHits)
               + par::harnessCounter(par::HarnessCounter::SafeSetCacheHits);
    u64 misses =
        par::harnessCounter(par::HarnessCounter::RefCacheMisses)
        + par::harnessCounter(par::HarnessCounter::SafeSetCacheMisses);
    double hit_rate =
        hits + misses > 0
            ? static_cast<double>(hits) / static_cast<double>(hits + misses)
            : 0.0;
    printf("cache: %llu hits / %llu misses (%.0f%% hit rate on the "
           "second pass workload)\n",
           static_cast<unsigned long long>(hits),
           static_cast<unsigned long long>(misses), 100.0 * hit_rate);

    // ------------------------------------------------------------------
    // fig07 --quick, cold cache vs warm cache (the §III-B.2 safe-set
    // search is the dominant cost; warm runs skip it entirely).
    // ------------------------------------------------------------------
    double cold = -1.0, warm = -1.0;
    if (!fig07.empty()) {
        char tmpl[] = "/tmp/vspec-cache-XXXXXX";
        char *dir = mkdtemp(tmpl);
        if (dir != nullptr) {
            cold = timeFig07(fig07, dir, 1);
            warm = timeFig07(fig07, dir, jobs);
            std::string rm = std::string("rm -rf '") + dir + "'";
            std::system(rm.c_str());
        }
        if (cold > 0 && warm > 0) {
            printf("fig07 --quick: cold(jobs=1) %.2fs, warm(jobs=%u) "
                   "%.2fs — %.2fx\n", cold, jobs, warm, cold / warm);
        } else {
            printf("fig07 --quick: measurement failed (binary: %s)\n",
                   fig07.c_str());
        }
    }

    // ------------------------------------------------------------------
    // Emit BENCH_host.json.
    // ------------------------------------------------------------------
    FILE *f = fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    fprintf(f, "{\n");
    fprintf(f, "  \"jobs\": %u,\n", jobs);
    fprintf(f, "  \"suite_wall_seconds\": %.3f,\n", suite_secs);
    fprintf(f, "  \"suite_cells\": %zu,\n", cells.size());
    fprintf(f, "  \"cells_per_sec\": %.3f,\n", cells_per_sec);
    fprintf(f, "  \"cache_hit_rate\": %.4f,\n", hit_rate);
    fprintf(f, "  \"counters\": %s,\n",
            par::harnessCountersJson().c_str());
    if (cold > 0 && warm > 0) {
        fprintf(f, "  \"fig07_quick_cold_seconds\": %.3f,\n", cold);
        fprintf(f, "  \"fig07_quick_warm_seconds\": %.3f,\n", warm);
        fprintf(f, "  \"fig07_quick_speedup\": %.3f\n", cold / warm);
    } else {
        fprintf(f, "  \"fig07_quick_speedup\": null\n");
    }
    fprintf(f, "}\n");
    fclose(f);
    printf("wrote %s\n", out_path.c_str());
    return 0;
}
