/**
 * @file
 * Fig. 4 (a-d): breakdown of deoptimization checks by group, per
 * workload and ISA:
 *   (a,b) how many checks TurboFan emits per 100 instructions on
 *         x64 / ARM64, split by group;
 *   (c,d) the run-time overhead of each group, estimated from PC
 *         sampling with the window heuristic (1 insn before the deopt
 *         branch on x64, 2 on ARM64).
 *
 * Paper findings to compare against: frequency 2-10 per 100 (avg ~5);
 * overhead 5-7 %; Type checks ~half the occurrences but only ~30 % of
 * the overhead; SMI + Not-a-SMI + Boundary together ~50 % of both.
 */

#include "bench_common.hh"

using namespace vspec;
using namespace vspec::bench;

namespace
{

struct Row
{
    bool completed = false;
    std::array<double, kNumGroups> freq{};
    std::array<double, kNumGroups> ovh{};
    double totalOvh = 0.0;
    std::string text;
};

void
runFlavour(const BenchArgs &args, IsaFlavour isa)
{
    printf("\n=== %s ===\n", isaName(isa));
    printf("%-16s | %-42s | %-42s | %6s\n", "workload",
           "checks/100 insns by group", "overhead %% by group (sampling)",
           "ovh%%");
    printf("%-16s | ", "");
    for (int i = 0; i < static_cast<int>(CheckGroup::NumGroups); i++)
        printf("%-7.6s", checkGroupName(static_cast<CheckGroup>(i)));
    printf("| ");
    for (int i = 0; i < static_cast<int>(CheckGroup::NumGroups); i++)
        printf("%-7.6s", checkGroupName(static_cast<CheckGroup>(i)));
    printf("|\n");
    hr('-', 120);

    auto rows = par::mapWorkloads<Row>(
        args.jobs, args.selectedSuite(), [&](const Workload &w) {
            Row row;
            RunConfig rc;
            rc.isa = isa;
            rc.iterations = args.iterations;
            RunOutcome out = runWorkload(w, rc, nullptr);
            if (!out.completed)
                return row;
            row.completed = true;

            row.text = par::strprintf("%-16s | ", w.name.c_str());
            // Frequency: static checks per group, scaled by dynamic
            // execution (approximate per-group dynamic split by static
            // shares of the hot code).
            double per100 = out.sim.instructions == 0 ? 0.0
                : 100.0 * static_cast<double>(out.sim.checksExecuted)
                  / static_cast<double>(out.sim.instructions);
            u64 static_total = out.staticChecks ? out.staticChecks : 1;
            for (size_t gi = 0; gi < kNumGroups; gi++) {
                double share =
                    static_cast<double>(out.staticChecksPerGroup[gi])
                    / static_cast<double>(static_total);
                row.freq[gi] = per100 * share;
                row.text += par::strprintf("%-7.2f", row.freq[gi]);
            }
            row.text += "| ";
            // Overhead per group from the window heuristic.
            u64 tot = out.window.totalSamples ? out.window.totalSamples
                                              : 1;
            for (size_t gi = 0; gi < kNumGroups; gi++) {
                row.ovh[gi] =
                    100.0
                    * static_cast<double>(out.window.samplesPerGroup[gi])
                    / static_cast<double>(tot);
                row.text += par::strprintf("%-7.2f", row.ovh[gi]);
            }
            row.totalOvh = 100.0 * out.window.overheadFraction();
            row.text += par::strprintf("| %6.2f\n", row.totalOvh);
            return row;
        });

    std::array<double, kNumGroups> mean_freq{};
    std::array<double, kNumGroups> mean_ovh{};
    double mean_total_ovh = 0.0;
    int count = 0;
    for (const Row &row : rows) {
        if (!row.completed)
            continue;
        for (size_t gi = 0; gi < kNumGroups; gi++) {
            mean_freq[gi] += row.freq[gi];
            mean_ovh[gi] += row.ovh[gi];
        }
        mean_total_ovh += row.totalOvh;
        fputs(row.text.c_str(), stdout);
        count++;
    }
    hr('-', 120);
    printf("%-16s | ", "MEAN");
    for (size_t gi = 0; gi < kNumGroups; gi++)
        printf("%-7.2f", count ? mean_freq[gi] / count : 0.0);
    printf("| ");
    for (size_t gi = 0; gi < kNumGroups; gi++)
        printf("%-7.2f", count ? mean_ovh[gi] / count : 0.0);
    printf("| %6.2f\n", count ? mean_total_ovh / count : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv, 20, 1);
    printf("Fig. 4 — breakdown of the number of checks and their "
           "overhead, by group\n");
    hr('=', 120);
    runFlavour(args, IsaFlavour::X64Like);
    if (args.bothIsas)
        runFlavour(args, IsaFlavour::Arm64Like);
    printf("\npaper: avg ~5 checks/100 insns; overhead 5-7%%; Type "
           "checks ~half of count, ~30%% of overhead;\n"
           "SMI+Not-a-SMI+Boundary ~50%% of frequency and overhead; "
           "sparse kernels have the highest frequency.\n");
    return 0;
}
