/**
 * @file
 * Ablation 1 — the sampling window heuristic (§III-A). The paper
 * attributes a PC sample to a check if it falls on the deopt branch or
 * within W instructions before it, choosing W=1 on X64 and W=2 on
 * ARM64 because "a window size of two aligns best with the exact
 * overhead measurements". vspec has per-instruction ground truth from
 * the backend's check annotations, so this ablation quantifies the
 * heuristic's accuracy for W = 0..4 directly — an experiment the
 * paper's infrastructure could not run.
 */

#include <cmath>
#include <cstring>
#include <fstream>

#include "bench_common.hh"
#include "runtime/engine.hh"

using namespace vspec;
using namespace vspec::bench;

namespace
{

struct Cell
{
    bool ok = false;
    double truth = 0.0;   //!< ground-truth overhead fraction
    double win[5] = {};   //!< window-heuristic overhead per W
    double err[5] = {};
};

} // namespace

int
main(int argc, char **argv)
{
    // --json=FILE: machine-readable accuracy table (stripped before
    // BenchArgs sees the argument list).
    std::string json_out;
    std::vector<char *> passthrough;
    for (int i = 0; i < argc; i++) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_out = argv[i] + 7;
        else
            passthrough.push_back(argv[i]);
    }
    BenchArgs args = BenchArgs::parse(static_cast<int>(passthrough.size()),
                                      passthrough.data(), 20, 1);
    std::string json = "{\"schema\":\"vspec-window-ablation-v1\","
                       "\"isas\":{";
    bool first_isa = true;

    printf("Ablation — sampling window size vs ground-truth "
           "attribution\n");
    hr('=', 86);
    printf("(mean absolute error of the window estimate vs annotated "
           "ground truth, %% of total samples)\n\n");

    for (IsaFlavour isa : {IsaFlavour::X64Like, IsaFlavour::Arm64Like}) {
        if (isa == IsaFlavour::Arm64Like && !args.bothIsas)
            break;

        auto cells = par::mapWorkloads<Cell>(
            args.jobs, args.selectedSuite(), [&](const Workload &w) {
                Cell cell;
                RunConfig rc;
                rc.isa = isa;
                rc.iterations = args.iterations;
                rc.samplerPeriod = 101;

                // One engine run; attribute its histograms five ways.
                try {
                    Engine engine(engineConfigFor(rc));
                    engine.loadProgram(instantiate(w, w.defaultSize));
                    for (u32 i = 0; i < rc.iterations; i++)
                        engine.call("bench");
                    AttributionResult truth;
                    AttributionResult windows[5];
                    for (const auto &code : engine.codeObjects) {
                        const auto *hist =
                            engine.sampler.histogramFor(code->id);
                        if (hist == nullptr)
                            continue;
                        truth += attributeGroundTruth(*code, *hist);
                        for (int wdx = 0; wdx <= 4; wdx++)
                            windows[wdx] += attributeWindowHeuristic(
                                *code, *hist, wdx);
                    }
                    if (truth.totalSamples == 0)
                        return cell;
                    double t = truth.overheadFraction();
                    cell.truth = t;
                    for (int wdx = 0; wdx <= 4; wdx++) {
                        cell.win[wdx] = windows[wdx].overheadFraction();
                        cell.err[wdx] = cell.win[wdx] - t;
                    }
                    cell.ok = true;
                } catch (const std::exception &) {
                }
                return cell;
            });

        double abs_err[5] = {};
        double bias[5] = {};
        int n = 0;
        for (const Cell &cell : cells) {
            if (!cell.ok)
                continue;
            for (int wdx = 0; wdx <= 4; wdx++) {
                abs_err[wdx] += std::abs(cell.err[wdx]) * 100.0;
                bias[wdx] += cell.err[wdx] * 100.0;
            }
            n++;
        }

        printf("=== %s === (n=%d)\n", isaName(isa), n);
        printf("%8s %14s %14s\n", "window", "mean |err|", "mean bias");
        hr('-', 40);
        int best = 0;
        for (int wdx = 0; wdx <= 4; wdx++) {
            if (n > 0 && abs_err[wdx] < abs_err[best])
                best = wdx;
        }
        for (int wdx = 0; wdx <= 4; wdx++) {
            printf("%8d %13.2f%% %+13.2f%% %s\n", wdx,
                   n ? abs_err[wdx] / n : 0.0, n ? bias[wdx] / n : 0.0,
                   wdx == best ? "  <- best" : "");
        }
        printf("\n");

        // JSON accuracy table for this ISA flavour.
        if (!json_out.empty()) {
            auto fr = [](double v) {
                char buf[32];
                snprintf(buf, sizeof buf, "%.6f", v);
                return std::string(buf);
            };
            if (!first_isa)
                json += ",";
            first_isa = false;
            json += std::string("\"") + isaName(isa) + "\":{";
            json += "\"n\":" + std::to_string(n);
            json += ",\"best_window\":" + std::to_string(best);
            json += ",\"mean_abs_err\":[";
            for (int wdx = 0; wdx <= 4; wdx++)
                json += (wdx ? "," : "")
                        + fr(n ? abs_err[wdx] / n / 100.0 : 0.0);
            json += "],\"mean_bias\":[";
            for (int wdx = 0; wdx <= 4; wdx++)
                json += (wdx ? "," : "")
                        + fr(n ? bias[wdx] / n / 100.0 : 0.0);
            json += "],\"workloads\":{";
            auto ws = args.selectedSuite();
            bool first_w = true;
            for (size_t i = 0; i < cells.size(); i++) {
                if (!cells[i].ok)
                    continue;
                if (!first_w)
                    json += ",";
                first_w = false;
                json += "\"" + ws[i]->name + "\":{\"truth\":"
                        + fr(cells[i].truth) + ",\"window\":[";
                for (int wdx = 0; wdx <= 4; wdx++)
                    json += (wdx ? "," : "") + fr(cells[i].win[wdx]);
                json += "]}";
            }
            json += "}}";
        }
    }
    if (!json_out.empty()) {
        json += "}}";
        std::ofstream out(json_out,
                          std::ios::binary | std::ios::trunc);
        out << json;
        printf("wrote %s\n", json_out.c_str());
    }
    printf("paper: W=1 on the CISC X64 ISA and W=2 on ARM64 align best "
           "with the exact (removal) measurements,\n"
           "because ARM64 checks need more condition instructions.\n");
    return 0;
}
