/**
 * @file
 * vdcost headline table — per-CheckGroup *recoverable overhead*. The
 * paper prices speculation checks at ~8% of cycles but treats a deopt
 * as a point event; this figure prices the deopts themselves. Each
 * episode's cycles (bailout + interpreter replay + recompile +
 * residual; see runtime/deopt_cost.hh) are attributed to the
 * CheckGroup of the failing check, giving the empirical upper bound on
 * what a deoptless/OSR tier (ROADMAP item 1) could win per group: if
 * bailing out were free, at most this fraction of total cycles comes
 * back. Extends the paper's Fig. 4/14 cost model with a duration axis.
 *
 *   fig_deopt_cost [--iters=N] [--jobs=N] [--only=W] [--quick]
 *                  [--json=FILE] [--out=BENCH_host.json]
 *
 * --json writes the machine-readable table (vspec-deopt-cost-v1);
 * --out merges a "deopt_cost" section into an existing BENCH_host.json
 * (micro_host's document) or creates the file if absent.
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "bench_common.hh"
#include "harness/experiment.hh"
#include "support/json.hh"

using namespace vspec;
using namespace vspec::bench;

namespace
{

constexpr size_t kG = static_cast<size_t>(CheckGroup::NumGroups);

struct Cell
{
    bool ok = false;
    u64 totalCycles = 0;
    i64 attributed = 0;
    u64 episodes = 0;
    u64 closedByReentry = 0;
    u64 stormSites = 0;
    u64 flipFlops = 0;
    std::array<u64, kG> groupEpisodes{};
    std::array<i64, kG> groupCycles{};
    /** (group, episode cost) pairs for the percentile sweep. */
    std::vector<std::pair<u32, i64>> costs;
};

i64
percentile(std::vector<i64> &sorted, int p)
{
    if (sorted.empty())
        return 0;
    return sorted[(sorted.size() - 1) * static_cast<size_t>(p) / 100];
}

std::string
fr(double v)
{
    char buf[32];
    snprintf(buf, sizeof buf, "%.6f", v);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    // --json=FILE / --out=FILE are stripped before BenchArgs sees the
    // argument list (abl_window_size idiom).
    std::string json_out, merge_out;
    std::vector<char *> passthrough;
    for (int i = 0; i < argc; i++) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_out = argv[i] + 7;
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            merge_out = argv[i] + 6;
        else
            passthrough.push_back(argv[i]);
    }
    BenchArgs args = BenchArgs::parse(static_cast<int>(passthrough.size()),
                                      passthrough.data(), 30, 1);

    auto ws = args.selectedSuite();
    auto cells = par::mapWorkloads<Cell>(
        args.jobs, ws, [&](const Workload &w) {
            Cell cell;
            RunConfig rc;
            rc.isa = IsaFlavour::Arm64Like;
            rc.iterations = args.iterations;
            rc.samplerEnabled = false;
            rc.deoptCost = true;
            try {
                RunOutcome out = runWorkload(w, rc);
                if (!out.completed)
                    return cell;
                const DeoptCostSummary &s = out.deoptCost;
                cell.ok = true;
                cell.totalCycles = out.totalCycles;
                cell.attributed = s.attributedCycles;
                cell.episodes = s.episodes;
                cell.closedByReentry = s.closedByReentry;
                cell.stormSites = s.stormSites;
                cell.flipFlops = s.flipFlops;
                for (size_t g = 0; g < kG; g++) {
                    cell.groupEpisodes[g] = s.episodesPerGroup[g];
                    cell.groupCycles[g] = s.cyclesPerGroup[g];
                }
                // Per-site means weighted by episode count approximate
                // the episode distribution well enough for suite-level
                // percentiles without re-exporting every episode.
                for (const DeoptSiteSummary &site : s.sites) {
                    for (u32 e = 0; e < site.episodes; e++)
                        cell.costs.emplace_back(
                            static_cast<u32>(site.group), site.meanCost);
                }
            } catch (const std::exception &) {
            }
            return cell;
        });

    // ---- aggregate -----------------------------------------------------
    u64 suite_cycles = 0, suite_episodes = 0;
    i64 suite_attributed = 0;
    std::array<u64, kG> g_eps{};
    std::array<i64, kG> g_cyc{};
    std::array<std::vector<i64>, kG> g_costs;
    for (const Cell &cell : cells) {
        if (!cell.ok)
            continue;
        suite_cycles += cell.totalCycles;
        suite_attributed += cell.attributed;
        suite_episodes += cell.episodes;
        for (size_t g = 0; g < kG; g++) {
            g_eps[g] += cell.groupEpisodes[g];
            g_cyc[g] += cell.groupCycles[g];
        }
        for (const auto &[g, cost] : cell.costs)
            g_costs[g].push_back(cost);
    }
    for (auto &v : g_costs)
        std::sort(v.begin(), v.end());

    printf("Deopt episode cost by check group — recoverable overhead "
           "upper bound\n");
    hr('=', 92);
    printf("(what a deoptless/OSR tier could win at most, per failing "
           "check group; arm64, %u iters)\n\n",
           args.iterations);
    printf("%-12s %9s %12s %12s %12s %14s %10s\n", "group", "episodes",
           "mean", "p50", "p90", "cycles", "% of total");
    hr('-', 92);
    for (size_t g = 0; g < kG; g++) {
        if (g_eps[g] == 0)
            continue;
        double pct = suite_cycles > 0
            ? 100.0 * static_cast<double>(g_cyc[g])
                  / static_cast<double>(suite_cycles)
            : 0.0;
        printf("%-12s %9llu %12lld %12lld %12lld %14lld %9.3f%%\n",
               checkGroupName(static_cast<CheckGroup>(g)),
               static_cast<unsigned long long>(g_eps[g]),
               static_cast<long long>(
                   g_eps[g] ? g_cyc[g] / static_cast<i64>(g_eps[g]) : 0),
               static_cast<long long>(percentile(g_costs[g], 50)),
               static_cast<long long>(percentile(g_costs[g], 90)),
               static_cast<long long>(g_cyc[g]), pct);
    }
    hr('-', 92);
    double recoverable = suite_cycles > 0 && suite_attributed > 0
        ? static_cast<double>(suite_attributed)
              / static_cast<double>(suite_cycles)
        : 0.0;
    printf("%-12s %9llu %12s %12s %12s %14lld %9.3f%%\n\n", "total",
           static_cast<unsigned long long>(suite_episodes), "", "", "",
           static_cast<long long>(suite_attributed),
           100.0 * recoverable);

    printf("%-16s %9s %7s %6s %9s %14s %14s %10s\n", "workload",
           "episodes", "reentry", "storm", "flipflop", "attributed",
           "cycles", "recover%");
    hr('-', 92);
    for (size_t i = 0; i < ws.size(); i++) {
        const Cell &cell = cells[i];
        if (!cell.ok)
            continue;
        double pct = cell.totalCycles > 0 && cell.attributed > 0
            ? 100.0 * static_cast<double>(cell.attributed)
                  / static_cast<double>(cell.totalCycles)
            : 0.0;
        printf("%-16s %9llu %7llu %6llu %9llu %14lld %14llu %9.3f%%\n",
               ws[i]->name.c_str(),
               static_cast<unsigned long long>(cell.episodes),
               static_cast<unsigned long long>(cell.closedByReentry),
               static_cast<unsigned long long>(cell.stormSites),
               static_cast<unsigned long long>(cell.flipFlops),
               static_cast<long long>(cell.attributed),
               static_cast<unsigned long long>(cell.totalCycles), pct);
    }
    printf("\nepisode phases and invariants: docs/DEOPT.md; per-site "
           "detail: tools/vspec-deopt\n");

    // ---- machine-readable export ---------------------------------------
    if (json_out.empty() && merge_out.empty())
        return 0;

    std::ostringstream js;
    js << "{\"schema\":\"vspec-deopt-cost-v1\""
       << ",\"isa\":\"arm64\""
       << ",\"iterations\":" << args.iterations
       << ",\"total_cycles\":" << suite_cycles
       << ",\"attributed_cycles\":" << suite_attributed
       << ",\"episodes\":" << suite_episodes
       << ",\"recoverable_fraction\":" << fr(recoverable)
       << ",\"groups\":{";
    bool first = true;
    for (size_t g = 0; g < kG; g++) {
        if (!first)
            js << ",";
        first = false;
        js << "\"" << checkGroupName(static_cast<CheckGroup>(g))
           << "\":{\"episodes\":" << g_eps[g]
           << ",\"cycles\":" << g_cyc[g]
           << ",\"mean\":"
           << (g_eps[g] ? g_cyc[g] / static_cast<i64>(g_eps[g]) : 0)
           << ",\"p50\":" << percentile(g_costs[g], 50)
           << ",\"p90\":" << percentile(g_costs[g], 90) << "}";
    }
    js << "},\"workloads\":{";
    first = true;
    for (size_t i = 0; i < ws.size(); i++) {
        const Cell &cell = cells[i];
        if (!cell.ok)
            continue;
        if (!first)
            js << ",";
        first = false;
        double rec = cell.totalCycles > 0 && cell.attributed > 0
            ? static_cast<double>(cell.attributed)
                  / static_cast<double>(cell.totalCycles)
            : 0.0;
        js << "\"" << jsonEscape(ws[i]->name)
           << "\":{\"cycles\":" << cell.totalCycles
           << ",\"episodes\":" << cell.episodes
           << ",\"closed_by_reentry\":" << cell.closedByReentry
           << ",\"storm_sites\":" << cell.stormSites
           << ",\"flip_flops\":" << cell.flipFlops
           << ",\"attributed_cycles\":" << cell.attributed
           << ",\"recoverable_fraction\":" << fr(rec) << "}";
    }
    js << "}}";
    std::string json = js.str();

    if (!json_out.empty()) {
        std::ofstream out(json_out, std::ios::binary | std::ios::trunc);
        out << json;
        printf("wrote %s\n", json_out.c_str());
    }
    if (!merge_out.empty()) {
        // Merge a "deopt_cost" section into BENCH_host.json (serve_soak
        // idiom): parse the existing document, replace the section.
        JsonValue doc;
        doc.kind = JsonValue::Kind::Object;
        std::ifstream in(merge_out);
        if (in) {
            std::stringstream ss;
            ss << in.rdbuf();
            std::string err;
            JsonValue parsed;
            if (parseJson(ss.str(), parsed, err) && parsed.isObject())
                doc = parsed;
            else
                fprintf(stderr,
                        "warning: %s not a JSON object (%s); rewriting\n",
                        merge_out.c_str(), err.c_str());
        }
        JsonValue section;
        std::string err;
        if (!parseJson(json, section, err)) {
            fprintf(stderr, "internal error: emitted JSON invalid: %s\n",
                    err.c_str());
            return 1;
        }
        doc.object["deopt_cost"] = section;
        std::ofstream out(merge_out);
        if (!out) {
            fprintf(stderr, "cannot write %s\n", merge_out.c_str());
            return 1;
        }
        out << writeJson(doc) << "\n";
        printf("wrote %s\n", merge_out.c_str());
    }
    return 0;
}
