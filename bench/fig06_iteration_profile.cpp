/**
 * @file
 * Fig. 6: relative execution time per iteration with checks and after
 * removal of checks, with deoptimization events, plus the §III-B.2
 * leftover-check statistics.
 *
 * Paper findings: deoptimizations are rare and happen within the
 * first iterations; code without checks is ~8 % faster on average
 * (2-4x earlier estimates); 16 of 51 benchmarks cannot run with all
 * checks removed, and removing only the safe types leaves <20 % of
 * checks with <0.5 % overhead; steady-state compiled code is ~2.5x
 * faster than interpreted code.
 */

#include "bench_common.hh"

using namespace vspec;
using namespace vspec::bench;

namespace
{

std::string
sparkline(const std::vector<Cycles> &cycles, size_t buckets)
{
    if (cycles.empty())
        return "";
    double first = static_cast<double>(cycles[0]);
    std::string out;
    for (size_t b = 0; b < buckets; b++) {
        size_t lo = b * cycles.size() / buckets;
        size_t hi = std::max(lo + 1, (b + 1) * cycles.size() / buckets);
        double sum = 0;
        for (size_t i = lo; i < hi && i < cycles.size(); i++)
            sum += static_cast<double>(cycles[i]);
        double rel = first > 0 ? sum / static_cast<double>(hi - lo) / first
                               : 0.0;
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%5.2f ", rel);
        out += buf;
    }
    return out;
}

struct Row
{
    bool completed = false;
    bool allRemoved = false;
    double diff = 0.0;
    double interpRatio = 0.0;
    u64 earlyDeopts = 0;
    u64 lateDeopts = 0;
    std::string text;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv, 40, 1);

    printf("Fig. 6 — relative execution time per iteration, with checks "
           "vs checks removed\n");
    hr('=', 128);
    printf("(relative-to-first-iteration, averaged over %u iterations in "
           "8 buckets)\n\n", args.iterations);

    auto rows = par::mapWorkloads<Row>(
        args.jobs, args.selectedSuite(), [&](const Workload &w) {
            Row row;

            RunConfig base;
            base.iterations = args.iterations;
            base.samplerEnabled = false;

            // §III-B.2: find the check groups removable safely.
            auto safe = findSafeRemovalSet(
                w, base, std::max(20u, args.iterations / 2));
            bool all_removed = true;
            for (bool b : safe)
                all_removed = all_removed && b;

            RunConfig with = base;
            RunOutcome out_with = runWorkload(w, with, nullptr);
            RunConfig without = base;
            without.removeChecks = safe;
            RunOutcome out_without = runWorkload(w, without, nullptr);

            // Interpreter-only run for the "2.5x" comparison.
            RunConfig interp = base;
            interp.enableOptimization = false;
            interp.iterations = std::max(5u, args.iterations / 6);
            RunOutcome out_interp = runWorkload(w, interp, nullptr);

            if (!out_with.completed || !out_without.completed)
                return row;
            row.completed = true;
            row.allRemoved = all_removed;

            row.diff = out_with.meanCycles() > 0
                ? 100.0
                  * (out_with.meanCycles() - out_without.meanCycles())
                  / out_with.meanCycles()
                : 0.0;
            row.interpRatio = out_with.steadyStateCycles() > 0
                ? out_interp.steadyStateCycles()
                  / out_with.steadyStateCycles()
                : 0.0;
            double leftover = all_removed
                ? 0.0 : leftoverCheckFraction(w, base, safe);

            // Deopt timing: early = first 10 iterations.
            for (size_t i = 0;
                 i < out_with.deoptEventsPerIteration.size(); i++) {
                if (i < 10)
                    row.earlyDeopts +=
                        out_with.deoptEventsPerIteration[i];
                else
                    row.lateDeopts +=
                        out_with.deoptEventsPerIteration[i];
            }

            row.text = par::strprintf("%-16s%s\n", w.name.c_str(),
                                      all_removed ? "" : " (*)");
            row.text += par::strprintf(
                "  with checks:    %s  deopts=%llu\n",
                sparkline(out_with.iterationCycles, 8).c_str(),
                static_cast<unsigned long long>(out_with.totalDeopts));
            row.text += par::strprintf(
                "  checks removed: %s  time diff = %.1f%%",
                sparkline(out_without.iterationCycles, 8).c_str(),
                row.diff);
            if (!all_removed)
                row.text += par::strprintf("  (leftover checks: %.0f%%)",
                                           100.0 * leftover);
            row.text += par::strprintf("  interp/steady = %.1fx\n",
                                       row.interpRatio);
            return row;
        });

    double total_diff = 0.0;
    double total_interp_ratio = 0.0;
    int count = 0, leftover_count = 0;
    u64 early_deopts = 0, late_deopts = 0;
    for (const Row &row : rows) {
        if (!row.completed)
            continue;
        fputs(row.text.c_str(), stdout);
        total_diff += row.diff;
        total_interp_ratio += row.interpRatio;
        early_deopts += row.earlyDeopts;
        late_deopts += row.lateDeopts;
        if (!row.allRemoved)
            leftover_count++;
        count++;
    }

    hr('=', 128);
    printf("mean time difference from removing (safe) checks: %.1f%%   "
           "(paper: ~8%%, 2-4x older estimates)\n",
           count ? total_diff / count : 0.0);
    printf("benchmarks needing leftover checks: %d of %d   (paper: 16 of "
           "51)\n", leftover_count, count);
    printf("steady-state compiled vs interpreted: %.1fx   (paper: "
           "~2.5x)\n", count ? total_interp_ratio / count : 0.0);
    printf("deopt events: %llu in first 10 iterations, %llu later   "
           "(paper: deopts are rare and early)\n",
           static_cast<unsigned long long>(early_deopts),
           static_cast<unsigned long long>(late_deopts));
    return 0;
}
