/**
 * @file
 * Fig. 9: correlation of the two per-benchmark overhead estimates
 * (PC sampling vs check removal): scatter pairs, OLS regression with
 * R², and a Pearson correlation with a zero-correlation hypothesis
 * test.
 *
 * Paper findings: R² = 0.51 / r = 71 % on X64, R² = 0.36 / r = 60 %
 * on ARM64, p-values close to zero in both cases; the lower ARM64
 * correlation is attributed to the more complex multi-instruction
 * structure of checks on a RISC ISA.
 */

#include "bench_common.hh"

using namespace vspec;
using namespace vspec::bench;

namespace
{

struct Cell
{
    bool completed = false;
    double sampling = 0.0;
    double removal = 0.0;
    std::string text;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv, 20, 1);

    printf("Fig. 9 — correlation of check-overhead estimates "
           "(PC sampling vs removal)\n");
    hr('=', 80);

    for (IsaFlavour isa : {IsaFlavour::X64Like, IsaFlavour::Arm64Like}) {
        if (isa == IsaFlavour::Arm64Like && !args.bothIsas)
            break;
        printf("\n=== %s ===\n", isaName(isa));
        printf("%-16s %14s %14s\n", "workload", "sampling est.",
               "removal est.");
        hr('-', 50);

        auto cells = par::mapWorkloads<Cell>(
            args.jobs, args.selectedSuite(), [&](const Workload &w) {
                Cell cell;
                RunConfig base;
                base.isa = isa;
                base.iterations = args.iterations;
                auto safe = findSafeRemovalSet(
                    w, base, std::max(20u, args.iterations / 2));
                RunOutcome with = runWorkload(w, base, nullptr);
                RunConfig rm = base;
                rm.removeChecks = safe;
                rm.samplerEnabled = false;
                RunOutcome without = runWorkload(w, rm, nullptr);
                if (!with.completed || !without.completed
                    || without.meanCycles() <= 0)
                    return cell;
                cell.completed = true;
                cell.sampling =
                    1.0 / (1.0 - with.window.overheadFraction());
                cell.removal = with.meanCycles() / without.meanCycles();
                cell.text = par::strprintf("%-16s %13.3fx %13.3fx\n",
                                           w.name.c_str(), cell.sampling,
                                           cell.removal);
                return cell;
            });

        std::vector<double> xs, ys;
        for (const Cell &cell : cells) {
            if (!cell.completed)
                continue;
            xs.push_back(cell.sampling);
            ys.push_back(cell.removal);
            fputs(cell.text.c_str(), stdout);
        }

        auto reg = stats::linearRegression(xs, ys);
        auto cor = stats::pearson(xs, ys);
        hr('-', 50);
        printf("n = %zu   regression: y = %.3f + %.3f*x   R^2 = %.2f\n",
               xs.size(), reg.intercept, reg.slope, reg.r2);
        printf("pearson r = %.2f (%.0f%% correlation)   p-value = %.2g\n",
               cor.r, 100.0 * cor.r, cor.pValue);
    }
    printf("\npaper: R^2=0.51, r=71%% (X64); R^2=0.36, r=60%% (ARM64); "
           "p < 0.05 in both cases —\n"
           "a statistically significant positive correlation between "
           "the two methodologies.\n");
    return 0;
}
