/**
 * @file
 * Fig. 13 / §V-B: performance of the jsldr(u)smi ISA extension on the
 * SMI-intensive gem5 subset, across the four detailed CPU models
 * (in-order little core, Exynos-big-like, O3-KPG-like, HPD).
 *
 * Paper findings: average execution-time reduction ~3 %, up to 10 %
 * for SMI-heavy kernels (DP, SPMM); retired instructions -4 % (fewer
 * explicit test/shift instructions); in-order cores benefit slightly
 * more on average, but O3 cores still gain.
 */

#include "bench_common.hh"

using namespace vspec;
using namespace vspec::bench;

namespace
{

struct Cell
{
    double speedup = 1.0;
    double insnDelta = 0.0;
    bool inOrder = false;
    std::string text;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv, 10, 2);

    printf("Fig. 13 — speedup from the SMI load ISA extension "
           "(gem5-style detailed models)\n");
    hr('=', 110);

    auto cores = CpuConfig::gem5Cores();
    printf("%-12s", "workload");
    for (const auto &c : cores)
        printf(" | %-11s spd  insn", c.name.c_str());
    printf("\n");
    hr('-', 110);

    // One cell per (workload, core) pair; row-major, so rendering a
    // workload's line concatenates a contiguous slice of cells.
    auto workloads = args.selectedGem5();
    size_t n_cells = workloads.size() * cores.size();
    auto cells = par::mapCells<Cell>(
        args.jobs, n_cells, [&](size_t idx) {
            const Workload &w = *workloads[idx / cores.size()];
            const CpuConfig &core = cores[idx % cores.size()];
            Cell cell;
            cell.inOrder = core.kind == CpuModelKind::InOrder;

            RunConfig def;
            def.isa = IsaFlavour::Arm64Like;
            def.cpu = core;
            def.size = w.gem5Size;
            def.iterations = args.iterations;
            def.samplerEnabled = false;
            RunConfig ext = def;
            ext.smiExtension = true;

            std::vector<double> speedups;
            double insn_delta = 0.0;
            for (u32 r = 0; r < args.repeats; r++) {
                RunConfig d2 = def, e2 = ext;
                d2.jitter = r;
                e2.jitter = r;
                RunOutcome od = runWorkload(w, d2, nullptr);
                RunOutcome oe = runWorkload(w, e2, nullptr);
                if (!od.completed || !oe.completed
                    || oe.steadyStateCycles() <= 0)
                    continue;
                speedups.push_back(od.steadyStateCycles()
                                   / oe.steadyStateCycles());
                if (od.sim.instructions > 0) {
                    insn_delta = 100.0
                        * (static_cast<double>(oe.sim.instructions)
                           - static_cast<double>(od.sim.instructions))
                        / static_cast<double>(od.sim.instructions);
                }
            }
            cell.speedup = stats::mean(speedups);
            cell.insnDelta = insn_delta;
            cell.text = par::strprintf(" | %6.2f%%  %5.1f%%",
                                       100.0 * (cell.speedup - 1.0),
                                       insn_delta);
            return cell;
        });

    std::vector<double> all_speedups, inorder_speedups, o3_speedups;
    double insn_reduction = 0.0;
    int insn_n = 0;
    for (size_t wi = 0; wi < workloads.size(); wi++) {
        printf("%-12s", workloads[wi]->name.c_str());
        for (size_t ci = 0; ci < cores.size(); ci++) {
            const Cell &cell = cells[wi * cores.size() + ci];
            fputs(cell.text.c_str(), stdout);
            all_speedups.push_back(cell.speedup);
            if (cell.inOrder)
                inorder_speedups.push_back(cell.speedup);
            else
                o3_speedups.push_back(cell.speedup);
            insn_reduction += cell.insnDelta;
            insn_n++;
        }
        printf("\n");
    }

    hr('-', 110);
    printf("mean execution-time reduction: %.1f%%  (in-order: %.1f%%, "
           "O3: %.1f%%)   mean retired-insn change: %.1f%%\n",
           100.0 * (stats::mean(all_speedups) - 1.0),
           100.0 * (stats::mean(inorder_speedups) - 1.0),
           100.0 * (stats::mean(o3_speedups) - 1.0),
           insn_n ? insn_reduction / insn_n : 0.0);
    printf("\npaper: avg ~3%% faster (up to 10%% on DP/SPMM); ~4%% fewer "
           "retired instructions; in-order cores gain slightly\n"
           "more on average but O3 cores still benefit.\n");
    return 0;
}
