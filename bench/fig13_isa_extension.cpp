/**
 * @file
 * Fig. 13 / §V-B: performance of the jsldr(u)smi ISA extension on the
 * SMI-intensive gem5 subset, across the four detailed CPU models
 * (in-order little core, Exynos-big-like, O3-KPG-like, HPD).
 *
 * Paper findings: average execution-time reduction ~3 %, up to 10 %
 * for SMI-heavy kernels (DP, SPMM); retired instructions -4 % (fewer
 * explicit test/shift instructions); in-order cores benefit slightly
 * more on average, but O3 cores still gain.
 */

#include "bench_common.hh"

using namespace vspec;
using namespace vspec::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv, 10, 2);

    printf("Fig. 13 — speedup from the SMI load ISA extension "
           "(gem5-style detailed models)\n");
    hr('=', 110);

    auto cores = CpuConfig::gem5Cores();
    printf("%-12s", "workload");
    for (const auto &c : cores)
        printf(" | %-11s spd  insn", c.name.c_str());
    printf("\n");
    hr('-', 110);

    std::vector<double> all_speedups, inorder_speedups, o3_speedups;
    double insn_reduction = 0.0;
    int insn_n = 0;

    for (const Workload *w : gem5Subset()) {
        if (!args.selected(*w))
            continue;
        printf("%-12s", w->name.c_str());
        for (const auto &core : cores) {
            RunConfig def;
            def.isa = IsaFlavour::Arm64Like;
            def.cpu = core;
            def.size = w->gem5Size;
            def.iterations = args.iterations;
            def.samplerEnabled = false;
            RunConfig ext = def;
            ext.smiExtension = true;

            std::vector<double> speedups;
            double insn_delta = 0.0;
            for (u32 r = 0; r < args.repeats; r++) {
                RunConfig d2 = def, e2 = ext;
                d2.jitter = r;
                e2.jitter = r;
                RunOutcome od = runWorkload(*w, d2, nullptr);
                RunOutcome oe = runWorkload(*w, e2, nullptr);
                if (!od.completed || !oe.completed
                    || oe.steadyStateCycles() <= 0)
                    continue;
                speedups.push_back(od.steadyStateCycles()
                                   / oe.steadyStateCycles());
                if (od.sim.instructions > 0) {
                    insn_delta = 100.0
                        * (static_cast<double>(oe.sim.instructions)
                           - static_cast<double>(od.sim.instructions))
                        / static_cast<double>(od.sim.instructions);
                }
            }
            double spd = stats::mean(speedups);
            printf(" | %6.2f%%  %5.1f%%",
                   100.0 * (spd - 1.0), insn_delta);
            all_speedups.push_back(spd);
            if (core.kind == CpuModelKind::InOrder)
                inorder_speedups.push_back(spd);
            else
                o3_speedups.push_back(spd);
            insn_reduction += insn_delta;
            insn_n++;
        }
        printf("\n");
    }

    hr('-', 110);
    printf("mean execution-time reduction: %.1f%%  (in-order: %.1f%%, "
           "O3: %.1f%%)   mean retired-insn change: %.1f%%\n",
           100.0 * (stats::mean(all_speedups) - 1.0),
           100.0 * (stats::mean(inorder_speedups) - 1.0),
           100.0 * (stats::mean(o3_speedups) - 1.0),
           insn_n ? insn_reduction / insn_n : 0.0);
    printf("\npaper: avg ~3%% faster (up to 10%% on DP/SPMM); ~4%% fewer "
           "retired instructions; in-order cores gain slightly\n"
           "more on average but O3 cores still benefit.\n");
    return 0;
}
