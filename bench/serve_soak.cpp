/**
 * @file
 * vserve soak bench: drives the multi-isolate serving layer through a
 * deterministic open-loop traffic schedule twice — once with a clean
 * fleet (baseline) and once with a fault matrix concentrated on one
 * target isolate — and reports host-side latency/throughput next to
 * the deterministic serving outcomes (shed/retry/quarantine/
 * degradation counts, virtual-latency percentiles).
 *
 * The host-side numbers (wall seconds, rps, host latency percentiles)
 * are the measurement; everything else is digest-covered and
 * byte-identical at any --jobs level, which is what makes the host
 * numbers comparable across runs: the *work* never varies, only the
 * scheduling.
 *
 * Usage:
 *   serve_soak [--out=BENCH_host.json] [--isolates=N] [--jobs=N]
 *              [--requests=N] [--seed=N] [--target-isolate=N]
 *              [--fault=SPEC] [--no-validate] [--quick]
 *
 * --out merges a "serve" section into an existing JSON document
 * (micro_host's BENCH_host.json) or creates the file if absent.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "serve/soak.hh"
#include "support/json.hh"

using namespace vspec;
using namespace vspec::serve;

namespace
{

JsonValue
num(double v)
{
    JsonValue j;
    j.kind = JsonValue::Kind::Number;
    j.number = v;
    return j;
}

JsonValue
str(const std::string &s)
{
    JsonValue j;
    j.kind = JsonValue::Kind::String;
    j.string = s;
    return j;
}

std::string
hexDigest(u64 d)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(d));
    return buf;
}

JsonValue
reportJson(const SoakReport &r)
{
    JsonValue j;
    j.kind = JsonValue::Kind::Object;
    j.object["submitted"] = num(static_cast<double>(r.stats.submitted));
    j.object["ok"] = num(static_cast<double>(r.stats.ok()));
    j.object["errors"] = num(static_cast<double>(r.stats.errors()));
    j.object["shed"] = num(static_cast<double>(r.stats.shed));
    j.object["retries"] = num(static_cast<double>(r.stats.retries));
    j.object["quarantines"] =
        num(static_cast<double>(r.stats.quarantines));
    j.object["degradations"] =
        num(static_cast<double>(r.stats.degradations));
    j.object["degraded_isolates"] =
        num(static_cast<double>(r.degradedIsolates));
    j.object["validation_failures"] =
        num(static_cast<double>(r.validationFailures));
    j.object["ticks"] = num(static_cast<double>(r.ticks));
    j.object["latency_ticks_p50"] = num(r.latencyP50);
    j.object["latency_ticks_p90"] = num(r.latencyP90);
    j.object["latency_ticks_p99"] = num(r.latencyP99);
    j.object["avg_ok_cycles_jit"] = num(r.avgOkCyclesJit);
    j.object["avg_ok_cycles_degraded"] = num(r.avgOkCyclesDegraded);
    j.object["digest"] = str(hexDigest(r.digest));
    // Host-side (the actual measurement; informational in the gate).
    j.object["wall_seconds"] = num(r.hostWallSeconds);
    j.object["throughput_rps"] = num(r.throughputRps);
    j.object["host_p50_micros"] =
        num(static_cast<double>(r.hostP50Micros));
    j.object["host_p99_micros"] =
        num(static_cast<double>(r.hostP99Micros));
    return j;
}

void
printReport(const char *name, const SoakReport &r)
{
    std::printf("%-10s %5llu req  ok %-5llu err %-4llu shed %-4llu "
                "retry %-3llu quar %-2llu degr %-2llu  "
                "p50/p99 %u/%u ticks  %.0f rps  %.2fs\n",
                name,
                static_cast<unsigned long long>(r.stats.submitted),
                static_cast<unsigned long long>(r.stats.ok()),
                static_cast<unsigned long long>(r.stats.errors()),
                static_cast<unsigned long long>(r.stats.shed),
                static_cast<unsigned long long>(r.stats.retries),
                static_cast<unsigned long long>(r.stats.quarantines),
                static_cast<unsigned long long>(r.stats.degradations),
                r.latencyP50, r.latencyP99, r.throughputRps,
                r.hostWallSeconds);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    SoakOptions so;
    so.isolates = 4;
    so.jobs = 0;
    so.traffic.requests = 300;
    so.traffic.seed = 1;
    so.traffic.validate = true;
    u32 target_isolate = 1;
    std::string fault_spec = "compile-fail-every=1,alloc-fail-every=900";
    bool quick = false;

    for (int i = 1; i < argc; i++) {
        const char *a = argv[i];
        if (std::strncmp(a, "--out=", 6) == 0) {
            out_path = a + 6;
        } else if (std::strncmp(a, "--isolates=", 11) == 0) {
            so.isolates = static_cast<u32>(std::atoi(a + 11));
        } else if (std::strncmp(a, "--jobs=", 7) == 0) {
            so.jobs = static_cast<u32>(std::atoi(a + 7));
        } else if (std::strncmp(a, "--requests=", 11) == 0) {
            so.traffic.requests =
                static_cast<u32>(std::atoi(a + 11));
        } else if (std::strncmp(a, "--seed=", 7) == 0) {
            so.traffic.seed = static_cast<u64>(std::atoll(a + 7));
        } else if (std::strncmp(a, "--target-isolate=", 17) == 0) {
            target_isolate = static_cast<u32>(std::atoi(a + 17));
        } else if (std::strncmp(a, "--fault=", 8) == 0) {
            fault_spec = a + 8;
        } else if (std::strcmp(a, "--no-validate") == 0) {
            so.traffic.validate = false;
        } else if (std::strcmp(a, "--quick") == 0) {
            quick = true;
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--out=FILE] [--isolates=N] [--jobs=N]\n"
                "          [--requests=N] [--seed=N] "
                "[--target-isolate=N]\n"
                "          [--fault=SPEC] [--no-validate] [--quick]\n",
                argv[0]);
            return 2;
        }
    }
    if (quick)
        so.traffic.requests = std::min(so.traffic.requests, 120u);
    if (so.isolates == 0)
        so.isolates = 1;

    std::printf("serve_soak — %u isolates, %u requests, seed %llu "
                "(jobs=%u)\n",
                so.isolates, so.traffic.requests,
                static_cast<unsigned long long>(so.traffic.seed),
                so.jobs == 0 ? so.isolates : so.jobs);

    // Baseline: clean fleet, same traffic.
    SoakOptions base = so;
    base.targetIsolate = kNoIsolate;
    SoakReport baseline = runSoak(base);
    printReport("baseline", baseline);

    // Fault matrix: one bad host in the fleet.
    SoakOptions faulty = so;
    faulty.targetIsolate =
        target_isolate < so.isolates ? target_isolate : 0;
    faulty.targetFaults = FaultConfig::parse(fault_spec);
    SoakReport faults = runSoak(faulty);
    printReport("faults", faults);

    if (baseline.validationFailures != 0
        || faults.validationFailures != 0) {
        std::fprintf(stderr,
                     "FAIL: validation failures (baseline %u, "
                     "faults %u)\n",
                     baseline.validationFailures,
                     faults.validationFailures);
        return 1;
    }

    if (!out_path.empty()) {
        // Merge a "serve" section into the existing document (or
        // start a fresh one) so micro_host's keys survive.
        JsonValue doc;
        doc.kind = JsonValue::Kind::Object;
        std::ifstream in(out_path);
        if (in) {
            std::stringstream ss;
            ss << in.rdbuf();
            std::string err;
            JsonValue parsed;
            if (parseJson(ss.str(), parsed, err) && parsed.isObject())
                doc = parsed;
            else
                std::fprintf(stderr,
                             "warning: %s not a JSON object (%s); "
                             "rewriting\n",
                             out_path.c_str(), err.c_str());
        }
        JsonValue serve;
        serve.kind = JsonValue::Kind::Object;
        serve.object["baseline"] = reportJson(baseline);
        serve.object["faults"] = reportJson(faults);
        doc.object["serve"] = serve;
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        out << writeJson(doc) << "\n";
        std::printf("wrote %s\n", out_path.c_str());
    }
    return 0;
}
