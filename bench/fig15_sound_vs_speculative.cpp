/**
 * @file
 * Fig. 15 (vproof): the cost of speculation, bounded from both sides.
 * Three-way comparison over the full suite:
 *
 *   baseline      — all checks in place,
 *   speculative   — the paper's §III-B.2 safe-removal set (an unsound
 *                   upper bound: checks deleted on the *hope* they
 *                   never fire, validated only by checksum),
 *   static-elim   — only checks the abstract interpreter *proved*
 *                   redundant (sound lower bound: results are
 *                   bit-identical by construction, enforced by the
 *                   graph verifier's elided-check-proof invariant).
 *
 * Reports per-workload steady-state cycles and speedups for both
 * removal flavours, the per-CheckGroup proven/needed/unknown
 * classification, and the fraction of the speculative win the sound
 * analysis recovers.
 */

#include "bench_common.hh"

using namespace vspec;
using namespace vspec::bench;

namespace
{

struct Cell
{
    bool ok = false;
    bool specValid = false;        //!< safe-set run kept the checksum
    Category category = Category::Math;
    double baseCycles = 0, specCycles = 0, soundCycles = 0;
    u32 proven = 0, needed = 0, unknown = 0, elided = 0;
    std::array<u32, kNumGroups> provenPerGroup{};
    std::array<u32, kNumGroups> neededPerGroup{};
    std::array<u32, kNumGroups> unknownPerGroup{};
};

double
speedup(double base, double after)
{
    return after > 0.0 ? base / after : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv, 30, 1);

    printf("Fig. 15 — sound (proof-based) vs speculative check "
           "removal\n");
    hr('=', 100);

    for (IsaFlavour isa : {IsaFlavour::X64Like, IsaFlavour::Arm64Like}) {
        if (isa == IsaFlavour::Arm64Like && !args.bothIsas)
            break;

        auto cells = par::mapWorkloads<Cell>(
            args.jobs, args.selectedSuite(), [&](const Workload &w) {
                Cell cell;
                cell.category = w.category;
                RunConfig base;
                base.isa = isa;
                base.iterations = args.iterations;
                base.samplerEnabled = false;

                RunOutcome def = runWorkload(w, base, nullptr);
                if (!def.completed)
                    return cell;

                // Speculative leg: §III-B.2 safe-removal set.
                RunConfig spec = base;
                spec.removeChecks = findSafeRemovalSet(w, base);
                RunOutcome sp =
                    runWorkload(w, spec, &def.checksum);

                // Sound leg: delete only proven-redundant checks.
                RunConfig sound = base;
                sound.staticElim = true;
                RunOutcome so = runWorkload(w, sound, &def.checksum);
                if (!sp.completed || !so.completed || !so.valid)
                    return cell;

                cell.ok = true;
                cell.specValid = sp.valid;
                cell.baseCycles = def.steadyStateCycles();
                cell.specCycles = sp.steadyStateCycles();
                cell.soundCycles = so.steadyStateCycles();
                cell.provenPerGroup = so.provenPerGroup;
                cell.neededPerGroup = so.neededPerGroup;
                cell.unknownPerGroup = so.unknownPerGroup;
                cell.elided = so.checksElided;
                for (size_t i = 0; i < kNumGroups; i++) {
                    cell.proven += so.provenPerGroup[i];
                    cell.needed += so.neededPerGroup[i];
                    cell.unknown += so.unknownPerGroup[i];
                }
                return cell;
            });

        printf("\n=== %s ===\n", isaName(isa));
        printf("%-16s %12s %9s %9s %8s %8s %8s %7s\n", "workload",
               "base-cyc", "spec-x", "sound-x", "proven", "needed",
               "unknown", "prov%");
        hr('-', 84);

        double spec_sum = 0, sound_sum = 0;
        u64 proven_total = 0, needed_total = 0, unknown_total = 0,
            elided_total = 0;
        std::array<u64, kNumGroups> g_proven{}, g_needed{}, g_unknown{};
        int n = 0;
        auto ws = args.selectedSuite();
        for (size_t i = 0; i < cells.size(); i++) {
            const Cell &cell = cells[i];
            if (!cell.ok) {
                printf("%-16s %12s\n", ws[i]->name.c_str(),
                       "(failed)");
                continue;
            }
            u32 total = cell.proven + cell.needed + cell.unknown;
            double spec_x =
                speedup(cell.baseCycles, cell.specCycles);
            double sound_x =
                speedup(cell.baseCycles, cell.soundCycles);
            printf("%-16s %12.0f %8.3fx%s %8.3fx %8u %8u %8u %6.1f%%\n",
                   ws[i]->name.c_str(), cell.baseCycles, spec_x,
                   cell.specValid ? "" : "!", sound_x, cell.proven,
                   cell.needed, cell.unknown,
                   total > 0 ? 100.0 * cell.proven / total : 0.0);
            spec_sum += spec_x;
            sound_sum += sound_x;
            proven_total += cell.proven;
            needed_total += cell.needed;
            unknown_total += cell.unknown;
            elided_total += cell.elided;
            for (size_t g = 0; g < kNumGroups; g++) {
                g_proven[g] += cell.provenPerGroup[g];
                g_needed[g] += cell.neededPerGroup[g];
                g_unknown[g] += cell.unknownPerGroup[g];
            }
            n++;
        }
        hr('-', 84);
        if (n > 0) {
            double spec_mean = spec_sum / n;
            double sound_mean = sound_sum / n;
            printf("%-16s %12s %8.3fx %8.3fx  (sound recovers %.1f%% "
                   "of the speculative win)\n",
                   "MEAN", "", spec_mean, sound_mean,
                   spec_mean > 1.0
                       ? 100.0 * (sound_mean - 1.0) / (spec_mean - 1.0)
                       : 0.0);
        }

        u64 classified = proven_total + needed_total + unknown_total;
        printf("\nper-group classification (static-elim leg, %llu "
               "checks, %llu elided):\n",
               static_cast<unsigned long long>(classified),
               static_cast<unsigned long long>(elided_total));
        printf("%-12s %8s %8s %8s %7s\n", "group", "proven", "needed",
               "unknown", "prov%");
        hr('-', 48);
        for (size_t g = 0; g < kNumGroups; g++) {
            u64 gt = g_proven[g] + g_needed[g] + g_unknown[g];
            if (gt == 0)
                continue;
            printf("%-12s %8llu %8llu %8llu %6.1f%%\n",
                   checkGroupName(static_cast<CheckGroup>(g)),
                   static_cast<unsigned long long>(g_proven[g]),
                   static_cast<unsigned long long>(g_needed[g]),
                   static_cast<unsigned long long>(g_unknown[g]),
                   100.0 * static_cast<double>(g_proven[g])
                       / static_cast<double>(gt));
        }
        printf("\n'!' marks a speculative run whose checksum diverged "
               "(excluded from validity, kept for the bound);\n"
               "the sound leg is checksum-validated on every row by "
               "construction.\n");
    }

    printf("\ninterpretation: the gap between spec-x and sound-x is the "
           "true cost of *speculation* — the checks a sound\n"
           "analysis cannot discharge because only runtime feedback "
           "(map stability, smi-ness of inputs) justifies them.\n");
    return 0;
}
