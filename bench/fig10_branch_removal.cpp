/**
 * @file
 * Fig. 10 / §IV-B: impact of removing only the conditional deopt
 * branches (late code-generation change; condition computation kept).
 * Reports relative changes in retired instructions, branches,
 * mispredicts, cycles and frontend stalls, by category, plus the
 * deopt-branch prediction statistics.
 *
 * Paper findings: retired instructions -5 %, branches -20 %,
 * mispredicts only -2..5 %, speedup just 1-2 %; check branches are
 * almost always predicted correctly; on X64 frontend stalls increase
 * ~3-5 % after removal (the bottleneck moves to the backend).
 */

#include <map>

#include "bench_common.hh"

using namespace vspec;
using namespace vspec::bench;

namespace
{

struct Delta
{
    double insns = 0, branches = 0, mispredicts = 0, cycles = 0,
           frontend = 0;
    int n = 0;
};

double
rel(u64 after, u64 before)
{
    if (before == 0)
        return 0.0;
    return 100.0 * (static_cast<double>(after)
                    - static_cast<double>(before))
           / static_cast<double>(before);
}

struct Cell
{
    enum class State : u8 { Incomplete, Excluded, Ok };
    State state = State::Incomplete;
    Category category = Category::Math;
    double insns = 0, branches = 0, mispredicts = 0, cycles = 0,
           frontend = 0;
    u64 deoptBranches = 0, deoptTaken = 0, deoptMispredicts = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv, 20, 1);

    printf("Fig. 10 — hardware metrics after removing only the deopt "
           "branches\n");
    hr('=', 100);

    for (IsaFlavour isa : {IsaFlavour::X64Like, IsaFlavour::Arm64Like}) {
        if (isa == IsaFlavour::Arm64Like && !args.bothIsas)
            break;

        auto cells = par::mapWorkloads<Cell>(
            args.jobs, args.selectedSuite(), [&](const Workload &w) {
                Cell cell;
                cell.category = w.category;
                RunConfig base;
                base.isa = isa;
                base.iterations = args.iterations;
                base.samplerEnabled = false;
                RunOutcome def = runWorkload(w, base, nullptr);
                RunConfig nb = base;
                nb.removeBranchesOnly = true;
                // Benchmarks whose deopts fire in normal flow corrupt
                // when the deopt branches are gone; exclude them (the
                // paper's measurement implicitly requires checks never
                // to fire).
                RunOutcome out = runWorkload(w, nb, &def.checksum);
                if (!def.completed || !out.completed)
                    return cell;
                if (!out.valid) {
                    cell.state = Cell::State::Excluded;
                    return cell;
                }
                cell.state = Cell::State::Ok;
                cell.insns = rel(out.sim.instructions,
                                 def.sim.instructions);
                cell.branches = rel(out.sim.branches, def.sim.branches);
                cell.mispredicts = rel(out.sim.mispredicts,
                                       def.sim.mispredicts);
                cell.cycles = rel(static_cast<u64>(out.meanCycles()),
                                  static_cast<u64>(def.meanCycles()));
                cell.frontend = rel(out.sim.frontendStallCycles,
                                    def.sim.frontendStallCycles);
                cell.deoptBranches = def.sim.deoptBranches;
                cell.deoptTaken = def.sim.deoptBranchesTaken;
                cell.deoptMispredicts = def.sim.deoptMispredicts;
                return cell;
            });

        std::map<Category, Delta> deltas;
        u64 deopt_branches = 0, deopt_taken = 0, deopt_mispredicts = 0;
        int excluded = 0;
        for (const Cell &cell : cells) {
            if (cell.state == Cell::State::Incomplete)
                continue;
            if (cell.state == Cell::State::Excluded) {
                excluded++;
                continue;
            }
            Delta &d = deltas[cell.category];
            d.insns += cell.insns;
            d.branches += cell.branches;
            d.mispredicts += cell.mispredicts;
            d.cycles += cell.cycles;
            d.frontend += cell.frontend;
            d.n++;
            deopt_branches += cell.deoptBranches;
            deopt_taken += cell.deoptTaken;
            deopt_mispredicts += cell.deoptMispredicts;
        }

        printf("\n=== %s === (%% change after branch-only removal)\n",
               isaName(isa));
        printf("%-10s %10s %10s %12s %10s %12s\n", "category",
               "insns", "branches", "mispredicts", "cycles",
               "fe-stalls");
        hr('-', 70);
        Delta total;
        for (auto &[cat, d] : deltas) {
            printf("%-10s %9.1f%% %9.1f%% %11.1f%% %9.1f%% %11.1f%%\n",
                   categoryName(cat), d.insns / d.n, d.branches / d.n,
                   d.mispredicts / d.n, d.cycles / d.n,
                   d.frontend / d.n);
            total.insns += d.insns;
            total.branches += d.branches;
            total.mispredicts += d.mispredicts;
            total.cycles += d.cycles;
            total.frontend += d.frontend;
            total.n += d.n;
        }
        hr('-', 70);
        printf("%-10s %9.1f%% %9.1f%% %11.1f%% %9.1f%% %11.1f%%\n", "MEAN",
               total.insns / total.n, total.branches / total.n,
               total.mispredicts / total.n, total.cycles / total.n,
               total.frontend / total.n);

        printf("\nexcluded (deopts fire in normal flow, §III-B.2): %d\n",
               excluded);
        printf("deopt branch behaviour (default build): %llu executed, "
               "%llu taken (%.4f%%), %llu mispredicted (%.3f%%)\n",
               static_cast<unsigned long long>(deopt_branches),
               static_cast<unsigned long long>(deopt_taken),
               deopt_branches ? 100.0 * deopt_taken / deopt_branches : 0.0,
               static_cast<unsigned long long>(deopt_mispredicts),
               deopt_branches
                   ? 100.0 * deopt_mispredicts / deopt_branches : 0.0);
    }

    printf("\npaper: insns -5%%, branches -20%%, mispredicts only "
           "-2..5%%, cycles -1..2%%; deopt branches almost always\n"
           "predicted correctly; removing branches alone does not pay — "
           "optimize the condition computation instead (§V).\n");
    return 0;
}
