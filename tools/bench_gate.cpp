/**
 * @file
 * bench_gate: the vprof bench regression gate CLI.
 *
 *   bench_gate emit --out=DIR [--iters=N] [--jobs=N]
 *       Run the workload suite deterministically (arm64 flavour) and
 *       write bench_cycles.json (schema "vspec-bench-cycles-v1"):
 *       per-workload simulated cycle totals. Simulated cycles are
 *       deterministic, so these values are comparable across hosts up
 *       to libm differences in math-heavy builtins (the default gate
 *       tolerance absorbs them).
 *
 *   bench_gate compare --baselines=DIR --current=DIR [--scale=F]
 *       Compare current outputs against checked-in baselines per the
 *       gate.json manifest in DIR. Exit 1 on any violation.
 *
 *   bench_gate selftest --baselines=DIR
 *       Prove the gate trips: copy the baseline cycles file with a 25%
 *       injected slowdown and assert compare fails on it (and passes
 *       on an unmodified copy).
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/bench_gate.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "workloads/suite.hh"

using namespace vspec;

namespace
{

[[noreturn]] void
usage(const char *argv0, const char *bad)
{
    if (bad != nullptr)
        std::fprintf(stderr, "%s: invalid argument '%s'\n", argv0, bad);
    std::fprintf(
        stderr,
        "usage: %s emit --out=DIR [--iters=N] [--jobs=N]\n"
        "       %s compare --baselines=DIR --current=DIR [--scale=F]\n"
        "       %s selftest --baselines=DIR\n",
        argv0, argv0, argv0);
    std::exit(2);
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << text;
    return out.good();
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

struct EmitCell
{
    bool ok = false;
    u64 cycles = 0;
    u64 deopts = 0;
    u64 compilations = 0;
};

/** Deterministic per-workload cycle totals for the gate baseline. */
std::string
emitCyclesJson(u32 iters, u32 jobs)
{
    std::vector<const Workload *> ws;
    for (const Workload &w : suite())
        ws.push_back(&w);

    auto cells = par::mapWorkloads<EmitCell>(jobs, ws,
                                             [&](const Workload &w) {
        EmitCell cell;
        RunConfig rc;
        rc.isa = IsaFlavour::Arm64Like;
        rc.iterations = iters;
        try {
            RunOutcome out = runWorkload(w, rc);
            if (out.completed) {
                cell.ok = true;
                cell.cycles = out.totalCycles;
                cell.deopts = out.totalDeopts;
                cell.compilations = out.compilations;
            }
        } catch (const std::exception &) {
        }
        return cell;
    });

    std::string out;
    out += "{\"schema\":\"vspec-bench-cycles-v1\"";
    out += ",\"isa\":\"arm64\"";
    out += ",\"iterations\":" + std::to_string(iters);
    out += ",\"workloads\":{";
    bool first = true;
    for (size_t i = 0; i < ws.size(); i++) {
        if (!cells[i].ok)
            continue;
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(ws[i]->name) + "\":{"
            + "\"cycles\":" + std::to_string(cells[i].cycles)
            + ",\"deopts\":" + std::to_string(cells[i].deopts)
            + ",\"compilations\":"
            + std::to_string(cells[i].compilations) + "}";
    }
    out += "}}";
    return out;
}

struct StaticElimCell
{
    bool ok = false;
    bool valid = false;
    u64 cycles = 0;
    u32 proven = 0, needed = 0, unknown = 0, elided = 0;
};

/** vproof gate leg: per-workload static-elim cycles + classification
 *  totals. Classification is deterministic, so the counts double as a
 *  soundness tripwire: a proven count that *grows* without review is
 *  as suspicious as a cycle regression. */
std::string
emitStaticElimJson(u32 iters, u32 jobs)
{
    std::vector<const Workload *> ws;
    for (const Workload &w : suite())
        ws.push_back(&w);

    auto cells = par::mapWorkloads<StaticElimCell>(jobs, ws,
                                                   [&](const Workload &w) {
        StaticElimCell cell;
        RunConfig base;
        base.isa = IsaFlavour::Arm64Like;
        base.iterations = iters;
        RunConfig rc = base;
        rc.staticElim = true;
        try {
            RunOutcome def = runWorkload(w, base);
            RunOutcome out = runWorkload(w, rc, &def.checksum);
            if (out.completed) {
                cell.ok = true;
                cell.valid = out.valid;
                cell.cycles = out.totalCycles;
                cell.elided = out.checksElided;
                for (size_t i = 0; i < kNumGroups; i++) {
                    cell.proven += out.provenPerGroup[i];
                    cell.needed += out.neededPerGroup[i];
                    cell.unknown += out.unknownPerGroup[i];
                }
            }
        } catch (const std::exception &) {
        }
        return cell;
    });

    std::string out;
    out += "{\"schema\":\"vspec-static-elim-v1\"";
    out += ",\"isa\":\"arm64\"";
    out += ",\"iterations\":" + std::to_string(iters);
    out += ",\"workloads\":{";
    bool first = true;
    for (size_t i = 0; i < ws.size(); i++) {
        if (!cells[i].ok || !cells[i].valid)
            continue;
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(ws[i]->name) + "\":{"
            + "\"cycles\":" + std::to_string(cells[i].cycles)
            + ",\"proven\":" + std::to_string(cells[i].proven)
            + ",\"needed\":" + std::to_string(cells[i].needed)
            + ",\"unknown\":" + std::to_string(cells[i].unknown)
            + ",\"elided\":" + std::to_string(cells[i].elided) + "}";
    }
    out += "}}";
    return out;
}

u32
parseU32(const char *argv0, const char *flag, const char *text)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(text, &end, 10);
    if (text[0] == '\0' || end == nullptr || *end != '\0'
        || v > 1000000000ul)
        usage(argv0, flag);
    return static_cast<u32>(v);
}

int
cmdCompare(const std::string &baselines, const std::string &current,
           double scale)
{
    GateOutcome outcome = runBenchGate(baselines, current, scale);
    std::fputs(gateReport(outcome).c_str(), stdout);
    return outcome.passed ? 0 : 1;
}

int
cmdSelftest(const std::string &baselines)
{
    namespace fs = std::filesystem;
    std::string text;
    if (!readFile(baselines + "/bench_cycles.json", text)) {
        std::fprintf(stderr,
                     "bench_gate selftest: cannot read %s/"
                     "bench_cycles.json\n",
                     baselines.c_str());
        return 1;
    }
    JsonValue doc;
    std::string error;
    if (!parseJson(text, doc, error)) {
        std::fprintf(stderr, "bench_gate selftest: baseline invalid: "
                             "%s\n",
                     error.c_str());
        return 1;
    }

    fs::path tmp = fs::path(baselines) / ".." / "gate-selftest-tmp";
    std::error_code ec;
    fs::create_directories(tmp, ec);

    // The static-elim baseline rides along unmodified in both legs (the
    // injected slowdown targets bench_cycles.json).
    std::string static_elim;
    bool have_static_elim =
        readFile(baselines + "/static_elim.json", static_elim);

    // Leg 1: an identical copy must pass.
    if (!writeFile((tmp / "bench_cycles.json").string(), text)
        || (have_static_elim
            && !writeFile((tmp / "static_elim.json").string(),
                          static_elim))) {
        std::fprintf(stderr, "bench_gate selftest: cannot write tmp\n");
        return 1;
    }
    GateOutcome same = runBenchGate(baselines, tmp.string());
    if (!same.passed) {
        std::fprintf(stderr,
                     "bench_gate selftest: FAILED — identical copy did "
                     "not pass:\n%s",
                     gateReport(same).c_str());
        return 1;
    }

    // Leg 2: a 25% slowdown on every cycles key must trip the gate.
    // Rewrite numbers through the parsed document to keep JSON valid.
    std::string slow;
    {
        std::ostringstream os;
        os << "{\"schema\":\"vspec-bench-cycles-v1\",\"isa\":\"arm64\","
           << "\"iterations\":";
        const JsonValue *it = doc.get("iterations");
        os << (it ? static_cast<u64>(it->number) : 0);
        os << ",\"workloads\":{";
        const JsonValue *wl = doc.get("workloads");
        bool first = true;
        if (wl != nullptr) {
            for (const auto &[name, entry] : wl->object) {
                if (!first)
                    os << ",";
                first = false;
                const JsonValue *cyc = entry.get("cycles");
                u64 slowed = cyc
                    ? static_cast<u64>(cyc->number * 1.25) : 0;
                const JsonValue *deopts = entry.get("deopts");
                const JsonValue *comps = entry.get("compilations");
                os << "\"" << jsonEscape(name) << "\":{\"cycles\":"
                   << slowed << ",\"deopts\":"
                   << (deopts ? deopts->asU64() : 0)
                   << ",\"compilations\":"
                   << (comps ? comps->asU64() : 0) << "}";
            }
        }
        os << "}}";
        slow = os.str();
    }
    if (!writeFile((tmp / "bench_cycles.json").string(), slow)) {
        std::fprintf(stderr, "bench_gate selftest: cannot write tmp\n");
        return 1;
    }
    GateOutcome slowed = runBenchGate(baselines, tmp.string());
    fs::remove_all(tmp, ec);
    if (slowed.passed) {
        std::fprintf(stderr,
                     "bench_gate selftest: FAILED — 25%% slowdown did "
                     "not trip the gate\n");
        return 1;
    }
    std::printf("bench_gate selftest: PASS (identical copy passes, 25%% "
                "slowdown trips %zu violations)\n",
                slowed.violations.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0], nullptr);
    std::string cmd = argv[1];
    std::string out_dir, baselines, current;
    u32 iters = 10;
    u32 jobs = sched::defaultJobs();
    double scale = 1.0;

    for (int i = 2; i < argc; i++) {
        const char *a = argv[i];
        auto val = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
        };
        const char *v;
        if ((v = val("--out="))) {
            out_dir = v;
        } else if ((v = val("--baselines="))) {
            baselines = v;
        } else if ((v = val("--current="))) {
            current = v;
        } else if ((v = val("--iters="))) {
            iters = parseU32(argv[0], a, v);
        } else if ((v = val("--jobs="))) {
            jobs = parseU32(argv[0], a, v);
        } else if ((v = val("--scale="))) {
            scale = std::strtod(v, nullptr);
            if (!(scale > 0.0))
                usage(argv[0], a);
        } else {
            usage(argv[0], a);
        }
    }

    if (cmd == "emit") {
        if (out_dir.empty() || iters == 0)
            usage(argv[0], nullptr);
        std::error_code ec;
        std::filesystem::create_directories(out_dir, ec);
        std::string json = emitCyclesJson(iters, jobs == 0 ? 1 : jobs);
        std::string path = out_dir + "/bench_cycles.json";
        if (!writeFile(path, json)) {
            std::fprintf(stderr, "bench_gate: cannot write %s\n",
                         path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", path.c_str());
        std::string se = emitStaticElimJson(iters, jobs == 0 ? 1 : jobs);
        std::string se_path = out_dir + "/static_elim.json";
        if (!writeFile(se_path, se)) {
            std::fprintf(stderr, "bench_gate: cannot write %s\n",
                         se_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", se_path.c_str());
        return 0;
    }
    if (cmd == "compare") {
        if (baselines.empty() || current.empty())
            usage(argv[0], nullptr);
        return cmdCompare(baselines, current, scale);
    }
    if (cmd == "selftest") {
        if (baselines.empty())
            usage(argv[0], nullptr);
        return cmdSelftest(baselines);
    }
    usage(argv[0], cmd.c_str());
}
