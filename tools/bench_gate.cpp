/**
 * @file
 * bench_gate: the vprof bench regression gate CLI.
 *
 *   bench_gate emit --out=DIR [--iters=N] [--jobs=N]
 *       Run the workload suite deterministically and write
 *       bench_cycles.json (arm64) + bench_cycles_x64.json (x64,
 *       schema "vspec-bench-cycles-v1"): per-workload simulated cycle
 *       totals. Simulated cycles are deterministic, so these values
 *       are comparable across hosts up to libm differences in
 *       math-heavy builtins (the default gate tolerance absorbs them).
 *       Also writes regalloc.json (informational): per-workload
 *       register-allocator counters (spills/splits/reloads/slots),
 *       and deopt_cost.json (informational): per-workload deopt
 *       episode counts + attributed cycles (vdcost).
 *
 *   bench_gate compare --baselines=DIR --current=DIR [--scale=F]
 *       Compare current outputs against checked-in baselines per the
 *       gate.json manifest in DIR. Exit 1 on any violation.
 *
 *   bench_gate report --baselines=DIR --current=DIR [--out=DIR]
 *       (alias: --rebaseline-report) Deliberate re-baseline helper:
 *       write old-vs-new per-workload cycle and spill deltas as
 *       rebaseline_report.json + rebaseline_report.md so a baseline
 *       refresh lands with its effect spelled out in review.
 *
 *   bench_gate selftest --baselines=DIR
 *       Prove the gate trips: copy every manifest file verbatim
 *       (must pass), then inject a 25% slowdown into the arm64
 *       cycles file and assert compare fails.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/bench_gate.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "workloads/suite.hh"

using namespace vspec;

namespace
{

[[noreturn]] void
usage(const char *argv0, const char *bad)
{
    if (bad != nullptr)
        std::fprintf(stderr, "%s: invalid argument '%s'\n", argv0, bad);
    std::fprintf(
        stderr,
        "usage: %s emit --out=DIR [--iters=N] [--jobs=N]\n"
        "       %s compare --baselines=DIR --current=DIR [--scale=F]\n"
        "       %s report --baselines=DIR --current=DIR [--out=DIR]\n"
        "       %s selftest --baselines=DIR\n",
        argv0, argv0, argv0, argv0);
    std::exit(2);
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << text;
    return out.good();
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

struct EmitCell
{
    bool ok = false;
    u64 cycles = 0;
    u64 deopts = 0;
    u64 compilations = 0;
    u64 spills = 0;
    u64 splits = 0;
    u64 reloads = 0;
    u64 spillSlots = 0;
    u64 calleeSaved = 0;
};

std::vector<EmitCell>
runEmitCells(u32 iters, u32 jobs, IsaFlavour isa,
             const std::vector<const Workload *> &ws)
{
    return par::mapWorkloads<EmitCell>(jobs, ws, [&](const Workload &w) {
        EmitCell cell;
        RunConfig rc;
        rc.isa = isa;
        rc.iterations = iters;
        try {
            RunOutcome out = runWorkload(w, rc);
            if (out.completed) {
                cell.ok = true;
                cell.cycles = out.totalCycles;
                cell.deopts = out.totalDeopts;
                cell.compilations = out.compilations;
                cell.spills = out.regallocSpills;
                cell.splits = out.regallocSplits;
                cell.reloads = out.regallocReloads;
                cell.spillSlots = out.regallocSpillSlots;
                cell.calleeSaved = out.regallocCalleeSaved;
            }
        } catch (const std::exception &) {
        }
        return cell;
    });
}

/** Deterministic per-workload cycle totals for the gate baseline. */
std::string
emitCyclesJson(u32 iters, const std::vector<const Workload *> &ws,
               const std::vector<EmitCell> &cells, const char *isa_name)
{
    std::string out;
    out += "{\"schema\":\"vspec-bench-cycles-v1\"";
    out += ",\"isa\":\"" + std::string(isa_name) + "\"";
    out += ",\"iterations\":" + std::to_string(iters);
    out += ",\"workloads\":{";
    bool first = true;
    for (size_t i = 0; i < ws.size(); i++) {
        if (!cells[i].ok)
            continue;
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(ws[i]->name) + "\":{"
            + "\"cycles\":" + std::to_string(cells[i].cycles)
            + ",\"deopts\":" + std::to_string(cells[i].deopts)
            + ",\"compilations\":"
            + std::to_string(cells[i].compilations) + "}";
    }
    out += "}}";
    return out;
}

/** vregalloc leg: per-workload allocator counters (arm64 flavour).
 *  Informational in the gate — spill counts are expected to move with
 *  allocator tuning; the report subcommand surfaces the deltas. */
std::string
emitRegallocJson(u32 iters, const std::vector<const Workload *> &ws,
                 const std::vector<EmitCell> &cells)
{
    std::string out;
    out += "{\"schema\":\"vspec-regalloc-v1\"";
    out += ",\"isa\":\"arm64\"";
    out += ",\"iterations\":" + std::to_string(iters);
    out += ",\"workloads\":{";
    bool first = true;
    for (size_t i = 0; i < ws.size(); i++) {
        if (!cells[i].ok)
            continue;
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(ws[i]->name) + "\":{"
            + "\"spills\":" + std::to_string(cells[i].spills)
            + ",\"splits\":" + std::to_string(cells[i].splits)
            + ",\"reloads\":" + std::to_string(cells[i].reloads)
            + ",\"spill_slots\":" + std::to_string(cells[i].spillSlots)
            + ",\"callee_saved\":"
            + std::to_string(cells[i].calleeSaved) + "}";
    }
    out += "}}";
    return out;
}

struct StaticElimCell
{
    bool ok = false;
    bool valid = false;
    u64 cycles = 0;
    u32 proven = 0, needed = 0, unknown = 0, elided = 0;
};

/** vproof gate leg: per-workload static-elim cycles + classification
 *  totals. Classification is deterministic, so the counts double as a
 *  soundness tripwire: a proven count that *grows* without review is
 *  as suspicious as a cycle regression. */
std::string
emitStaticElimJson(u32 iters, u32 jobs)
{
    std::vector<const Workload *> ws;
    for (const Workload &w : suite())
        ws.push_back(&w);

    auto cells = par::mapWorkloads<StaticElimCell>(jobs, ws,
                                                   [&](const Workload &w) {
        StaticElimCell cell;
        RunConfig base;
        base.isa = IsaFlavour::Arm64Like;
        base.iterations = iters;
        RunConfig rc = base;
        rc.staticElim = true;
        try {
            RunOutcome def = runWorkload(w, base);
            RunOutcome out = runWorkload(w, rc, &def.checksum);
            if (out.completed) {
                cell.ok = true;
                cell.valid = out.valid;
                cell.cycles = out.totalCycles;
                cell.elided = out.checksElided;
                for (size_t i = 0; i < kNumGroups; i++) {
                    cell.proven += out.provenPerGroup[i];
                    cell.needed += out.neededPerGroup[i];
                    cell.unknown += out.unknownPerGroup[i];
                }
            }
        } catch (const std::exception &) {
        }
        return cell;
    });

    std::string out;
    out += "{\"schema\":\"vspec-static-elim-v1\"";
    out += ",\"isa\":\"arm64\"";
    out += ",\"iterations\":" + std::to_string(iters);
    out += ",\"workloads\":{";
    bool first = true;
    for (size_t i = 0; i < ws.size(); i++) {
        if (!cells[i].ok || !cells[i].valid)
            continue;
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(ws[i]->name) + "\":{"
            + "\"cycles\":" + std::to_string(cells[i].cycles)
            + ",\"proven\":" + std::to_string(cells[i].proven)
            + ",\"needed\":" + std::to_string(cells[i].needed)
            + ",\"unknown\":" + std::to_string(cells[i].unknown)
            + ",\"elided\":" + std::to_string(cells[i].elided) + "}";
    }
    out += "}}";
    return out;
}

struct DeoptCostCell
{
    bool ok = false;
    u64 cycles = 0;
    u64 episodes = 0;
    u64 stormSites = 0;
    u64 flipFlops = 0;
    i64 attributed = 0;
};

/** vdcost gate leg: per-workload deopt-episode accounting (arm64
 *  flavour). Informational — episode costs move with tiering and
 *  compiler tuning; the baseline documents the expected magnitude so
 *  an order-of-magnitude jump in deopt-attributed cycles gets review
 *  even though it never fails CI. */
std::string
emitDeoptCostJson(u32 iters, u32 jobs)
{
    std::vector<const Workload *> ws;
    for (const Workload &w : suite())
        ws.push_back(&w);

    auto cells = par::mapWorkloads<DeoptCostCell>(jobs, ws,
                                                  [&](const Workload &w) {
        DeoptCostCell cell;
        RunConfig rc;
        rc.isa = IsaFlavour::Arm64Like;
        rc.iterations = iters;
        rc.samplerEnabled = false;
        rc.deoptCost = true;
        try {
            RunOutcome out = runWorkload(w, rc);
            if (out.completed) {
                cell.ok = true;
                cell.cycles = out.totalCycles;
                cell.episodes = out.deoptCost.episodes;
                cell.stormSites = out.deoptCost.stormSites;
                cell.flipFlops = out.deoptCost.flipFlops;
                cell.attributed = out.deoptCost.attributedCycles;
            }
        } catch (const std::exception &) {
        }
        return cell;
    });

    std::string out;
    out += "{\"schema\":\"vspec-deopt-cost-gate-v1\"";
    out += ",\"isa\":\"arm64\"";
    out += ",\"iterations\":" + std::to_string(iters);
    out += ",\"workloads\":{";
    bool first = true;
    for (size_t i = 0; i < ws.size(); i++) {
        if (!cells[i].ok)
            continue;
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(ws[i]->name) + "\":{"
            + "\"cycles\":" + std::to_string(cells[i].cycles)
            + ",\"episodes\":" + std::to_string(cells[i].episodes)
            + ",\"storm_sites\":" + std::to_string(cells[i].stormSites)
            + ",\"flip_flops\":" + std::to_string(cells[i].flipFlops)
            + ",\"attributed_cycles\":"
            + std::to_string(cells[i].attributed) + "}";
    }
    out += "}}";
    return out;
}

u32
parseU32(const char *argv0, const char *flag, const char *text)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(text, &end, 10);
    if (text[0] == '\0' || end == nullptr || *end != '\0'
        || v > 1000000000ul)
        usage(argv0, flag);
    return static_cast<u32>(v);
}

int
cmdCompare(const std::string &baselines, const std::string &current,
           double scale)
{
    GateOutcome outcome = runBenchGate(baselines, current, scale);
    std::fputs(gateReport(outcome).c_str(), stdout);
    return outcome.passed ? 0 : 1;
}

/** One workload row of the re-baseline report. */
struct ReportRow
{
    std::string name;
    bool inOld = false, inNew = false;
    u64 oldCycles = 0, newCycles = 0;
    u64 oldSpills = 0, newSpills = 0;
    u64 oldSlots = 0, newSlots = 0;
};

bool
loadWorkloadsDoc(const std::string &path, JsonValue &doc)
{
    std::string text, error;
    return readFile(path, text) && parseJson(text, doc, error)
        && doc.get("workloads") != nullptr;
}

/**
 * bench_gate report: old-vs-new per-workload cycle and spill deltas
 * for a deliberate re-baseline, as JSON + markdown. Reads
 * bench_cycles.json (+ optional regalloc.json) from both directories.
 */
int
cmdReport(const std::string &baselines, const std::string &current,
          const std::string &out_dir)
{
    JsonValue old_cyc, new_cyc;
    if (!loadWorkloadsDoc(baselines + "/bench_cycles.json", old_cyc)
        || !loadWorkloadsDoc(current + "/bench_cycles.json", new_cyc)) {
        std::fprintf(stderr,
                     "bench_gate report: need bench_cycles.json in both "
                     "%s and %s\n",
                     baselines.c_str(), current.c_str());
        return 1;
    }
    JsonValue old_ra, new_ra;
    bool have_old_ra = loadWorkloadsDoc(baselines + "/regalloc.json",
                                        old_ra);
    bool have_new_ra = loadWorkloadsDoc(current + "/regalloc.json",
                                        new_ra);

    std::map<std::string, ReportRow> rows;
    auto u64At = [](const JsonValue &entry, const char *key) -> u64 {
        const JsonValue *v = entry.get(key);
        return v != nullptr ? v->asU64() : 0;
    };
    for (const auto &[name, entry] : old_cyc.get("workloads")->object) {
        ReportRow &r = rows[name];
        r.name = name;
        r.inOld = true;
        r.oldCycles = u64At(entry, "cycles");
    }
    for (const auto &[name, entry] : new_cyc.get("workloads")->object) {
        ReportRow &r = rows[name];
        r.name = name;
        r.inNew = true;
        r.newCycles = u64At(entry, "cycles");
    }
    auto fold_ra = [&](const JsonValue &doc, bool is_new) {
        for (const auto &[name, entry] : doc.get("workloads")->object) {
            auto it = rows.find(name);
            if (it == rows.end())
                continue;
            (is_new ? it->second.newSpills : it->second.oldSpills) =
                u64At(entry, "spills");
            (is_new ? it->second.newSlots : it->second.oldSlots) =
                u64At(entry, "spill_slots");
        }
    };
    if (have_old_ra)
        fold_ra(old_ra, false);
    if (have_new_ra)
        fold_ra(new_ra, true);

    // Geomean of per-workload new/old cycle ratios (shared rows only).
    double log_sum = 0.0;
    u32 ratio_count = 0;
    for (const auto &[name, r] : rows) {
        if (r.inOld && r.inNew && r.oldCycles > 0 && r.newCycles > 0) {
            log_sum += std::log(static_cast<double>(r.newCycles)
                                / static_cast<double>(r.oldCycles));
            ratio_count++;
        }
    }
    double geomean = ratio_count > 0
        ? std::exp(log_sum / ratio_count) : 1.0;

    std::ostringstream json;
    json << "{\"schema\":\"vspec-rebaseline-report-v1\""
         << ",\"geomean_cycle_ratio\":" << geomean
         << ",\"workloads\":{";
    std::ostringstream md;
    md << "# Bench re-baseline report\n\n"
       << "Geomean cycle ratio (new/old): " << geomean << "\n\n"
       << "| workload | old cycles | new cycles | delta | old spills "
       << "| new spills | old slots | new slots |\n"
       << "|---|---|---|---|---|---|---|---|\n";
    bool first = true;
    for (const auto &[name, r] : rows) {
        double ratio = (r.oldCycles > 0 && r.newCycles > 0)
            ? static_cast<double>(r.newCycles)
                / static_cast<double>(r.oldCycles)
            : 0.0;
        if (!first)
            json << ",";
        first = false;
        json << "\"" << jsonEscape(name) << "\":{"
             << "\"old_cycles\":" << r.oldCycles
             << ",\"new_cycles\":" << r.newCycles
             << ",\"cycle_ratio\":" << ratio
             << ",\"old_spills\":" << r.oldSpills
             << ",\"new_spills\":" << r.newSpills
             << ",\"old_spill_slots\":" << r.oldSlots
             << ",\"new_spill_slots\":" << r.newSlots << "}";
        char delta[32];
        std::snprintf(delta, sizeof(delta), "%+.2f%%",
                      (ratio - 1.0) * 100.0);
        md << "| " << name << " | " << r.oldCycles << " | "
           << r.newCycles << " | " << (ratio > 0 ? delta : "n/a")
           << " | " << r.oldSpills << " | " << r.newSpills << " | "
           << r.oldSlots << " | " << r.newSlots << " |\n";
    }
    json << "}}";

    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    std::string json_path = out_dir + "/rebaseline_report.json";
    std::string md_path = out_dir + "/rebaseline_report.md";
    if (!writeFile(json_path, json.str())
        || !writeFile(md_path, md.str())) {
        std::fprintf(stderr, "bench_gate report: cannot write %s\n",
                     out_dir.c_str());
        return 1;
    }
    std::printf("wrote %s\nwrote %s\n", json_path.c_str(),
                md_path.c_str());
    std::printf("geomean cycle ratio (new/old): %.4f over %u "
                "workloads\n",
                geomean, ratio_count);
    return 0;
}

int
cmdSelftest(const std::string &baselines)
{
    namespace fs = std::filesystem;
    std::string text;
    if (!readFile(baselines + "/bench_cycles.json", text)) {
        std::fprintf(stderr,
                     "bench_gate selftest: cannot read %s/"
                     "bench_cycles.json\n",
                     baselines.c_str());
        return 1;
    }
    JsonValue doc;
    std::string error;
    if (!parseJson(text, doc, error)) {
        std::fprintf(stderr, "bench_gate selftest: baseline invalid: "
                             "%s\n",
                     error.c_str());
        return 1;
    }

    fs::path tmp = fs::path(baselines) / ".." / "gate-selftest-tmp";
    std::error_code ec;
    fs::create_directories(tmp, ec);

    // Leg 1: identical copies of every manifest file must pass. The
    // copy set is driven by gate.json so new gate legs (x64 cycles,
    // regalloc counters) ride along without touching this code.
    std::string manifest_text;
    JsonValue manifest;
    std::vector<GateEntry> entries;
    if (!readFile(baselines + "/gate.json", manifest_text)
        || !parseJson(manifest_text, manifest, error)
        || !parseGateManifest(manifest, entries, error)) {
        std::fprintf(stderr,
                     "bench_gate selftest: cannot read manifest: %s\n",
                     error.c_str());
        return 1;
    }
    for (const GateEntry &entry : entries) {
        std::string body;
        if (!readFile(baselines + "/" + entry.file, body))
            continue;  // compare reports missing baselines itself
        if (!writeFile((tmp / entry.file).string(), body)) {
            std::fprintf(stderr,
                         "bench_gate selftest: cannot write tmp\n");
            return 1;
        }
    }
    GateOutcome same = runBenchGate(baselines, tmp.string());
    if (!same.passed) {
        std::fprintf(stderr,
                     "bench_gate selftest: FAILED — identical copy did "
                     "not pass:\n%s",
                     gateReport(same).c_str());
        return 1;
    }

    // Leg 2: a 25% slowdown on every cycles key must trip the gate.
    // Rewrite numbers through the parsed document to keep JSON valid.
    std::string slow;
    {
        std::ostringstream os;
        os << "{\"schema\":\"vspec-bench-cycles-v1\",\"isa\":\"arm64\","
           << "\"iterations\":";
        const JsonValue *it = doc.get("iterations");
        os << (it ? static_cast<u64>(it->number) : 0);
        os << ",\"workloads\":{";
        const JsonValue *wl = doc.get("workloads");
        bool first = true;
        if (wl != nullptr) {
            for (const auto &[name, entry] : wl->object) {
                if (!first)
                    os << ",";
                first = false;
                const JsonValue *cyc = entry.get("cycles");
                u64 slowed = cyc
                    ? static_cast<u64>(cyc->number * 1.25) : 0;
                const JsonValue *deopts = entry.get("deopts");
                const JsonValue *comps = entry.get("compilations");
                os << "\"" << jsonEscape(name) << "\":{\"cycles\":"
                   << slowed << ",\"deopts\":"
                   << (deopts ? deopts->asU64() : 0)
                   << ",\"compilations\":"
                   << (comps ? comps->asU64() : 0) << "}";
            }
        }
        os << "}}";
        slow = os.str();
    }
    if (!writeFile((tmp / "bench_cycles.json").string(), slow)) {
        std::fprintf(stderr, "bench_gate selftest: cannot write tmp\n");
        return 1;
    }
    GateOutcome slowed = runBenchGate(baselines, tmp.string());
    fs::remove_all(tmp, ec);
    if (slowed.passed) {
        std::fprintf(stderr,
                     "bench_gate selftest: FAILED — 25%% slowdown did "
                     "not trip the gate\n");
        return 1;
    }
    std::printf("bench_gate selftest: PASS (identical copy passes, 25%% "
                "slowdown trips %zu violations)\n",
                slowed.violations.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0], nullptr);
    std::string cmd = argv[1];
    std::string out_dir, baselines, current;
    u32 iters = 10;
    u32 jobs = sched::defaultJobs();
    double scale = 1.0;

    for (int i = 2; i < argc; i++) {
        const char *a = argv[i];
        auto val = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
        };
        const char *v;
        if ((v = val("--out="))) {
            out_dir = v;
        } else if ((v = val("--baselines="))) {
            baselines = v;
        } else if ((v = val("--current="))) {
            current = v;
        } else if ((v = val("--iters="))) {
            iters = parseU32(argv[0], a, v);
        } else if ((v = val("--jobs="))) {
            jobs = parseU32(argv[0], a, v);
        } else if ((v = val("--scale="))) {
            scale = std::strtod(v, nullptr);
            if (!(scale > 0.0))
                usage(argv[0], a);
        } else {
            usage(argv[0], a);
        }
    }

    if (cmd == "emit") {
        if (out_dir.empty() || iters == 0)
            usage(argv[0], nullptr);
        std::error_code ec;
        std::filesystem::create_directories(out_dir, ec);
        u32 j = jobs == 0 ? 1 : jobs;

        std::vector<const Workload *> ws;
        for (const Workload &w : suite())
            ws.push_back(&w);

        auto emit = [&](const std::string &name,
                        const std::string &json) {
            std::string path = out_dir + "/" + name;
            if (!writeFile(path, json)) {
                std::fprintf(stderr, "bench_gate: cannot write %s\n",
                             path.c_str());
                return false;
            }
            std::printf("wrote %s\n", path.c_str());
            return true;
        };

        auto arm = runEmitCells(iters, j, IsaFlavour::Arm64Like, ws);
        auto x64 = runEmitCells(iters, j, IsaFlavour::X64Like, ws);
        if (!emit("bench_cycles.json",
                  emitCyclesJson(iters, ws, arm, "arm64"))
            || !emit("bench_cycles_x64.json",
                     emitCyclesJson(iters, ws, x64, "x64"))
            || !emit("regalloc.json", emitRegallocJson(iters, ws, arm))
            || !emit("static_elim.json", emitStaticElimJson(iters, j))
            || !emit("deopt_cost.json", emitDeoptCostJson(iters, j)))
            return 1;
        return 0;
    }
    if (cmd == "compare") {
        if (baselines.empty() || current.empty())
            usage(argv[0], nullptr);
        return cmdCompare(baselines, current, scale);
    }
    if (cmd == "report" || cmd == "--rebaseline-report") {
        if (baselines.empty() || current.empty())
            usage(argv[0], nullptr);
        return cmdReport(baselines, current,
                         out_dir.empty() ? current : out_dir);
    }
    if (cmd == "selftest") {
        if (baselines.empty())
            usage(argv[0], nullptr);
        return cmdSelftest(baselines);
    }
    usage(argv[0], cmd.c_str());
}
