/**
 * @file
 * vspec-deopt: the vdcost command-line harness. Runs one workload with
 * deopt episode tracking enabled and exports the result as episode
 * JSON (schema "vspec-deopt-v1") and/or a human-readable per-site
 * table. Also validates emitted documents and diffs two episode
 * exports per site.
 *
 *   vspec-deopt --list
 *   vspec-deopt --workload=deltablue --report
 *   vspec-deopt --workload=raytrace --out=d.json
 *   vspec-deopt --diff baseline.json current.json
 *   vspec-deopt --validate d.json
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "harness/experiment.hh"
#include "support/json.hh"
#include "workloads/suite.hh"

using namespace vspec;

namespace
{

[[noreturn]] void
usage(const char *argv0, const char *bad)
{
    if (bad != nullptr)
        std::fprintf(stderr, "%s: invalid argument '%s'\n", argv0, bad);
    std::fprintf(
        stderr,
        "usage: %s --workload=NAME [options]\n"
        "       %s --diff BASELINE.json CURRENT.json\n"
        "       %s --validate FILE.json\n"
        "       %s --list\n"
        "  --workload=NAME    workload name or tag (see --list)\n"
        "  --iters=N          bench iterations (default 30)\n"
        "  --size=N           problem size (default: workload default)\n"
        "  --isa=arm64|x64    backend flavour (default arm64)\n"
        "  --out=F            write vspec-deopt-v1 JSON to F\n"
        "  --report           print the human-readable site table\n"
        "  --top=N            rows in the report (default 10)\n",
        argv0, argv0, argv0, argv0);
    std::exit(2);
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << text;
    return out.good();
}

long
parseNum(const char *argv0, const char *flag, const char *text)
{
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (text[0] == '\0' || end == nullptr || *end != '\0' || v < 0)
        usage(argv0, flag);
    return v;
}

int
runValidate(const std::string &path)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "vspec-deopt: cannot read %s\n",
                     path.c_str());
        return 1;
    }
    JsonValue doc;
    std::string error;
    if (!parseJson(text, doc, error)) {
        std::fprintf(stderr, "vspec-deopt: %s: invalid JSON: %s\n",
                     path.c_str(), error.c_str());
        return 1;
    }
    const JsonValue *schema = doc.get("schema");
    if (!schema || schema->string != "vspec-deopt-v1") {
        std::fprintf(stderr,
                     "vspec-deopt: %s: not a vspec-deopt-v1 document\n",
                     path.c_str());
        return 1;
    }
    for (const char *key : {"workload", "isa", "total_cycles",
                            "attributed_cycles", "recoverable_fraction",
                            "episodes", "phases", "groups", "sites"}) {
        if (!doc.get(key)) {
            std::fprintf(stderr, "vspec-deopt: %s: missing key '%s'\n",
                         path.c_str(), key);
            return 1;
        }
    }
    std::printf("%s: valid vspec-deopt-v1\n", path.c_str());
    return 0;
}

int
runDiff(const std::string &path_a, const std::string &path_b)
{
    std::string text_a, text_b, error;
    if (!readFile(path_a, text_a) || !readFile(path_b, text_b)) {
        std::fprintf(stderr, "vspec-deopt: cannot read %s or %s\n",
                     path_a.c_str(), path_b.c_str());
        return 1;
    }
    JsonValue a, b;
    if (!parseJson(text_a, a, error)
        || !parseJson(text_b, b, error)) {
        std::fprintf(stderr, "vspec-deopt: invalid JSON: %s\n",
                     error.c_str());
        return 1;
    }
    std::string report = deoptCostDiffReport(a, b, error);
    if (!error.empty()) {
        std::fprintf(stderr, "vspec-deopt: %s\n", error.c_str());
        return 1;
    }
    std::fputs(report.c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload, json_out;
    u32 iters = 30, size = 0, top = 10;
    IsaFlavour isa = IsaFlavour::Arm64Like;
    bool report = false, list = false;

    for (int i = 1; i < argc; i++) {
        const char *a = argv[i];
        auto val = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
        };
        const char *v;
        if (std::strcmp(a, "--list") == 0) {
            list = true;
        } else if (std::strcmp(a, "--report") == 0) {
            report = true;
        } else if (std::strcmp(a, "--validate") == 0) {
            if (i + 1 >= argc)
                usage(argv[0], a);
            return runValidate(argv[i + 1]);
        } else if (std::strcmp(a, "--diff") == 0) {
            if (i + 2 >= argc)
                usage(argv[0], a);
            return runDiff(argv[i + 1], argv[i + 2]);
        } else if ((v = val("--workload="))) {
            workload = v;
        } else if ((v = val("--out="))) {
            json_out = v;
        } else if ((v = val("--iters="))) {
            iters = static_cast<u32>(parseNum(argv[0], a, v));
        } else if ((v = val("--size="))) {
            size = static_cast<u32>(parseNum(argv[0], a, v));
        } else if ((v = val("--top="))) {
            top = static_cast<u32>(parseNum(argv[0], a, v));
        } else if ((v = val("--isa="))) {
            if (std::strcmp(v, "arm64") == 0)
                isa = IsaFlavour::Arm64Like;
            else if (std::strcmp(v, "x64") == 0)
                isa = IsaFlavour::X64Like;
            else
                usage(argv[0], a);
        } else {
            usage(argv[0], a);
        }
    }

    if (list) {
        for (const Workload &w : suite())
            std::printf("%-16s %-8s %s\n", w.name.c_str(),
                        w.tag.c_str(), categoryName(w.category));
        return 0;
    }
    if (workload.empty())
        usage(argv[0], nullptr);
    const Workload *w = findWorkload(workload);
    if (w == nullptr) {
        std::fprintf(stderr, "vspec-deopt: unknown workload '%s' "
                             "(try --list)\n",
                     workload.c_str());
        return 1;
    }

    RunConfig rc;
    rc.isa = isa;
    rc.iterations = iters == 0 ? 1 : iters;
    rc.size = size;
    rc.samplerEnabled = false;
    rc.deoptCost = true;

    RunOutcome out = runWorkload(*w, rc);
    if (!out.completed) {
        std::fprintf(stderr, "vspec-deopt: run failed: %s\n",
                     out.error.c_str());
        return 1;
    }

    int rv = 0;
    if (!json_out.empty()) {
        if (!writeFile(json_out,
                       deoptCostJson(out.deoptCost, w->name,
                                     isaFlavourName(isa)))) {
            std::fprintf(stderr, "vspec-deopt: cannot write %s\n",
                         json_out.c_str());
            rv = 1;
        }
    }
    if (report || json_out.empty())
        std::fputs(deoptCostReport(out.deoptCost, top).c_str(), stdout);
    return rv;
}
