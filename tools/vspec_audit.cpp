/**
 * @file
 * vspec-audit: the vproof command-line harness. Runs one workload with
 * the ProveChecks analysis (always on) and prints the per-(function,
 * line) check audit: which checks the abstract interpreter proved
 * redundant, which it proved needed, and which stayed unknown — plus
 * the per-CheckGroup classification totals. With --static-elim the
 * proven checks are actually deleted and the elided column reflects it.
 *
 *   vspec-audit --list
 *   vspec-audit --workload=deltablue
 *   vspec-audit --workload=richards --static-elim --json=audit.json
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "support/json.hh"
#include "workloads/suite.hh"

using namespace vspec;

namespace
{

[[noreturn]] void
usage(const char *argv0, const char *bad)
{
    if (bad != nullptr)
        std::fprintf(stderr, "%s: invalid argument '%s'\n", argv0, bad);
    std::fprintf(
        stderr,
        "usage: %s --workload=NAME [options]\n"
        "       %s --list\n"
        "  --workload=NAME    workload name or tag (see --list)\n"
        "  --iters=N          bench iterations (default 30)\n"
        "  --size=N           problem size (default: workload default)\n"
        "  --isa=arm64|x64    backend flavour (default arm64)\n"
        "  --static-elim      delete proven-redundant checks\n"
        "  --all              include unknown-class rows in the table\n"
        "  --json=F           write the audit as JSON to F\n",
        argv0, argv0);
    std::exit(2);
}

long
parseNum(const char *argv0, const char *flag, const char *text)
{
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (text[0] == '\0' || end == nullptr || *end != '\0' || v < 0)
        usage(argv0, flag);
    return v;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << text;
    return out.good();
}

std::string
auditJson(const Workload &w, const RunConfig &rc, const RunOutcome &out,
          const std::vector<std::string> &names)
{
    std::string j;
    j += "{\n  \"schema\": \"vspec-audit-v1\",\n";
    j += "  \"workload\": \"" + jsonEscape(w.name) + "\",\n";
    j += "  \"static_elim\": ";
    j += rc.staticElim ? "true" : "false";
    j += ",\n  \"elided\": " + std::to_string(out.checksElided) + ",\n";
    j += "  \"groups\": {\n";
    for (size_t i = 0; i < kNumGroups; i++) {
        j += "    \"";
        j += checkGroupName(static_cast<CheckGroup>(i));
        j += "\": {\"proven\": " + std::to_string(out.provenPerGroup[i])
             + ", \"needed\": " + std::to_string(out.neededPerGroup[i])
             + ", \"unknown\": " + std::to_string(out.unknownPerGroup[i])
             + "}";
        j += i + 1 < kNumGroups ? ",\n" : "\n";
    }
    j += "  },\n  \"rows\": [\n";
    for (size_t i = 0; i < out.checkAudit.size(); i++) {
        const CheckAuditEntry &e = out.checkAudit[i];
        const std::string &fn = e.function < names.size()
            ? names[e.function]
            : "fn#" + std::to_string(e.function);
        j += "    {\"function\": \"" + jsonEscape(fn)
             + "\", \"line\": " + std::to_string(e.line) + ", \"group\": \""
             + checkGroupName(e.group) + "\", \"class\": \""
             + checkClassName(e.cls) + "\", \"rule\": \""
             + proofRuleName(e.rule) + "\", \"elided\": "
             + (e.elided ? "true" : "false")
             + ", \"count\": " + std::to_string(e.count) + "}";
        j += i + 1 < out.checkAudit.size() ? ",\n" : "\n";
    }
    j += "  ]\n}\n";
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload, json_out;
    u32 iters = 30, size = 0;
    IsaFlavour isa = IsaFlavour::Arm64Like;
    bool static_elim = false, list = false, show_all = false;

    for (int i = 1; i < argc; i++) {
        const char *a = argv[i];
        auto val = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
        };
        const char *v;
        if (std::strcmp(a, "--list") == 0) {
            list = true;
        } else if (std::strcmp(a, "--static-elim") == 0) {
            static_elim = true;
        } else if (std::strcmp(a, "--all") == 0) {
            show_all = true;
        } else if ((v = val("--workload="))) {
            workload = v;
        } else if ((v = val("--json="))) {
            json_out = v;
        } else if ((v = val("--iters="))) {
            iters = static_cast<u32>(parseNum(argv[0], a, v));
        } else if ((v = val("--size="))) {
            size = static_cast<u32>(parseNum(argv[0], a, v));
        } else if ((v = val("--isa="))) {
            if (std::strcmp(v, "arm64") == 0)
                isa = IsaFlavour::Arm64Like;
            else if (std::strcmp(v, "x64") == 0)
                isa = IsaFlavour::X64Like;
            else
                usage(argv[0], a);
        } else {
            usage(argv[0], a);
        }
    }

    if (list) {
        for (const Workload &w : suite())
            std::printf("%-16s %-8s %s\n", w.name.c_str(),
                        w.tag.c_str(), categoryName(w.category));
        return 0;
    }
    if (workload.empty())
        usage(argv[0], nullptr);
    const Workload *w = findWorkload(workload);
    if (w == nullptr) {
        std::fprintf(stderr, "vspec-audit: unknown workload '%s' "
                             "(try --list)\n",
                     workload.c_str());
        return 1;
    }

    RunConfig rc;
    rc.isa = isa;
    rc.iterations = iters == 0 ? 1 : iters;
    rc.size = size;
    rc.staticElim = static_elim;
    rc.samplerEnabled = false;

    // Function names for the report: re-create the engine the harness
    // would build and load the same program (cheap: no iterations).
    std::vector<std::string> names;
    {
        Engine engine(engineConfigFor(rc));
        engine.loadProgram(
            instantiate(*w, rc.size != 0 ? rc.size : w->defaultSize));
        for (FunctionId id = 0; id < engine.functions.count(); id++)
            names.push_back(engine.functions.at(id).name);
    }

    RunOutcome out = runWorkload(*w, rc);
    if (!out.completed) {
        std::fprintf(stderr, "vspec-audit: run failed: %s\n",
                     out.error.c_str());
        return 1;
    }

    if (!json_out.empty()) {
        if (!writeFile(json_out, auditJson(*w, rc, out, names))) {
            std::fprintf(stderr, "vspec-audit: cannot write %s\n",
                         json_out.c_str());
            return 1;
        }
    }

    u32 proven = 0, needed = 0, unknown = 0;
    for (size_t i = 0; i < kNumGroups; i++) {
        proven += out.provenPerGroup[i];
        needed += out.neededPerGroup[i];
        unknown += out.unknownPerGroup[i];
    }
    u32 total = proven + needed + unknown;

    std::printf("%s (%s)%s: %u checks classified over %llu compiles\n",
                w->name.c_str(), isaFlavourName(isa),
                static_elim ? " [static-elim]" : "", total,
                static_cast<unsigned long long>(out.compilations));
    std::printf("  proven %u (%.1f%%)  needed %u  unknown %u  elided %u\n",
                proven,
                total > 0 ? 100.0 * proven / total : 0.0,
                needed, unknown, out.checksElided);
    std::printf("  %-12s %7s %7s %7s\n", "group", "proven", "needed",
                "unknown");
    for (size_t i = 0; i < kNumGroups; i++) {
        if (out.provenPerGroup[i] + out.neededPerGroup[i]
                + out.unknownPerGroup[i] == 0)
            continue;
        std::printf("  %-12s %7u %7u %7u\n",
                    checkGroupName(static_cast<CheckGroup>(i)),
                    out.provenPerGroup[i], out.neededPerGroup[i],
                    out.unknownPerGroup[i]);
    }

    // Per-(function, line) table, proven rows first.
    std::vector<CheckAuditEntry> rows = out.checkAudit;
    std::stable_sort(rows.begin(), rows.end(),
                     [](const CheckAuditEntry &a, const CheckAuditEntry &b) {
                         if (a.cls != b.cls)
                             return static_cast<int>(a.cls)
                                 < static_cast<int>(b.cls);
                         if (a.function != b.function)
                             return a.function < b.function;
                         return a.line < b.line;
                     });
    std::printf("  %-20s %5s %-10s %-8s %-20s %-6s %5s\n", "function",
                "line", "group", "class", "rule", "elided", "count");
    for (const CheckAuditEntry &e : rows) {
        if (!show_all && e.cls == CheckClass::Unknown)
            continue;
        const std::string &fn = e.function < names.size()
            ? names[e.function]
            : "fn#" + std::to_string(e.function);
        std::printf("  %-20s %5d %-10s %-8s %-20s %-6s %5u\n", fn.c_str(),
                    e.line, checkGroupName(e.group), checkClassName(e.cls),
                    proofRuleName(e.rule), e.elided ? "yes" : "no",
                    e.count);
    }
    if (!show_all)
        std::printf("  (unknown-class rows hidden; pass --all to list)\n");
    return 0;
}
