/**
 * @file
 * vspec-serve: command-line front end for the vserve soak harness.
 * Runs a deterministic open-loop traffic schedule against a
 * multi-isolate pool with an optional fault matrix, prints the serving
 * report, and gates on operator-specified invariants:
 *
 *   --require-quarantine          at least one isolate was quarantined
 *   --require-degradation         at least one isolate was degraded
 *   --require-no-shed             admission control never dropped work
 *   --verify-determinism          rerun at --jobs=1 and demand an
 *                                 identical outcome digest
 *
 * Validation failures (an Ok response whose checksum differs from the
 * clean-engine reference) always fail the run: fault containment that
 * corrupts results is not containment.
 *
 * Exit codes: 0 ok, 1 an invariant failed, 2 bad usage.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "serve/soak.hh"

using namespace vspec;
using namespace vspec::serve;

namespace
{

[[noreturn]] void
usage(const char *argv0, const char *bad = nullptr)
{
    if (bad != nullptr)
        std::fprintf(stderr, "%s: invalid argument '%s'\n", argv0, bad);
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --isolates=N          pool size (default 4)\n"
        "  --jobs=N              execution workers (default: one per "
        "isolate)\n"
        "  --requests=N          traffic volume (default 300)\n"
        "  --seed=N              traffic seed (default 1)\n"
        "  --tenants=N           routing-key space (default 16)\n"
        "  --arrivals=N          requests arriving per tick (default 4)\n"
        "  --fault=SPEC          fault schedule for the target isolate\n"
        "  --target-isolate=N    which isolate gets --fault (default 1)\n"
        "  --fleet-fault=SPEC    fault schedule for every isolate\n"
        "  --quarantine-after=N  consecutive faults before quarantine\n"
        "  --cooldown=N          ticks out of rotation after quarantine\n"
        "  --degrade-after=N     compile-quarantines before interpreter-"
        "only\n"
        "  --max-attempts=N      executions per request (default 3)\n"
        "  --queue-capacity=N    per-isolate queue bound (default 32)\n"
        "  --no-validate         skip clean-engine reference checksums\n"
        "  --require-quarantine  fail unless a quarantine happened\n"
        "  --require-degradation fail unless a degradation happened\n"
        "  --require-no-shed     fail if any request was shed\n"
        "  --verify-determinism  rerun at jobs=1, compare digests\n",
        argv0);
    std::exit(2);
}

bool
flagU32(const char *arg, const char *name, u32 *out)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0)
        return false;
    *out = static_cast<u32>(std::atoi(arg + n));
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    SoakOptions so;
    u32 target_isolate = 1;
    std::string fault_spec;
    std::string fleet_spec;
    bool require_quarantine = false;
    bool require_degradation = false;
    bool require_no_shed = false;
    bool verify_determinism = false;
    u32 seed = 1;

    for (int i = 1; i < argc; i++) {
        const char *a = argv[i];
        if (flagU32(a, "--isolates=", &so.isolates)
            || flagU32(a, "--jobs=", &so.jobs)
            || flagU32(a, "--requests=", &so.traffic.requests)
            || flagU32(a, "--seed=", &seed)
            || flagU32(a, "--tenants=", &so.traffic.tenants)
            || flagU32(a, "--arrivals=", &so.traffic.arrivalsPerTick)
            || flagU32(a, "--target-isolate=", &target_isolate)
            || flagU32(a, "--quarantine-after=", &so.quarantineAfter)
            || flagU32(a, "--cooldown=", &so.cooldownTicks)
            || flagU32(a, "--degrade-after=",
                       &so.degradeAfterCompileQuarantines)
            || flagU32(a, "--max-attempts=", &so.router.maxAttempts)
            || flagU32(a, "--queue-capacity=",
                       &so.router.queueCapacity)) {
            continue;
        } else if (std::strncmp(a, "--fault=", 8) == 0) {
            fault_spec = a + 8;
        } else if (std::strncmp(a, "--fleet-fault=", 14) == 0) {
            fleet_spec = a + 14;
        } else if (std::strcmp(a, "--no-validate") == 0) {
            so.traffic.validate = false;
        } else if (std::strcmp(a, "--require-quarantine") == 0) {
            require_quarantine = true;
        } else if (std::strcmp(a, "--require-degradation") == 0) {
            require_degradation = true;
        } else if (std::strcmp(a, "--require-no-shed") == 0) {
            require_no_shed = true;
        } else if (std::strcmp(a, "--verify-determinism") == 0) {
            verify_determinism = true;
        } else {
            usage(argv[0], a);
        }
    }
    so.traffic.seed = seed;
    if (so.isolates == 0)
        so.isolates = 1;
    if (!fault_spec.empty()) {
        so.targetIsolate =
            target_isolate < so.isolates ? target_isolate : 0;
        so.targetFaults = FaultConfig::parse(fault_spec);
    }
    if (!fleet_spec.empty())
        so.fleetFaults = FaultConfig::parse(fleet_spec);

    std::printf("vspec-serve: %u isolates, %u requests, seed %u, "
                "jobs=%u%s\n",
                so.isolates, so.traffic.requests, seed,
                so.jobs == 0 ? so.isolates : so.jobs,
                so.targetIsolate != kNoIsolate ? " (fault matrix on)"
                                               : "");
    SoakReport r = runSoak(so);

    std::printf("\n  responses   %zu / %llu submitted (%llu ok, %llu "
                "errors, %llu shed)\n",
                r.responses.size(),
                static_cast<unsigned long long>(r.stats.submitted),
                static_cast<unsigned long long>(r.stats.ok()),
                static_cast<unsigned long long>(r.stats.errors()),
                static_cast<unsigned long long>(r.stats.shed));
    std::printf("  by status   ");
    for (u32 s = 0;
         s < static_cast<u32>(ResponseStatus::NumStatuses); s++)
        std::printf("%s=%llu ",
                    responseStatusName(static_cast<ResponseStatus>(s)),
                    static_cast<unsigned long long>(r.stats.byStatus[s]));
    std::printf("\n  by error    ");
    for (u32 k = 0; k < kNumEngineErrorKinds; k++)
        if (r.stats.byErrorKind[k] != 0)
            std::printf(
                "%s=%llu ",
                engineErrorKindName(static_cast<EngineErrorKind>(k)),
                static_cast<unsigned long long>(r.stats.byErrorKind[k]));
    std::printf("\n  policy      retries=%llu quarantines=%llu "
                "degradations=%llu degraded_isolates=%u\n",
                static_cast<unsigned long long>(r.stats.retries),
                static_cast<unsigned long long>(r.stats.quarantines),
                static_cast<unsigned long long>(r.stats.degradations),
                r.degradedIsolates);
    std::printf("  latency     p50=%u p90=%u p99=%u ticks (virtual), "
                "p50=%lluus p99=%lluus (host)\n",
                r.latencyP50, r.latencyP90, r.latencyP99,
                static_cast<unsigned long long>(r.hostP50Micros),
                static_cast<unsigned long long>(r.hostP99Micros));
    if (r.avgOkCyclesDegraded > 0)
        std::printf("  degradation trade: ok requests cost %.0f cycles "
                    "interpreted vs %.0f with JIT (%.2fx)\n",
                    r.avgOkCyclesDegraded, r.avgOkCyclesJit,
                    r.avgOkCyclesJit > 0
                        ? r.avgOkCyclesDegraded / r.avgOkCyclesJit
                        : 0.0);
    std::printf("  host        %.2fs wall, %.0f req/s, %u virtual "
                "ticks\n",
                r.hostWallSeconds, r.throughputRps, r.ticks);
    std::printf("  digest      %016llx\n",
                static_cast<unsigned long long>(r.digest));

    int rc = 0;
    if (r.responses.size() != r.stats.submitted) {
        std::fprintf(stderr, "FAIL: %zu responses for %llu requests — "
                     "a request went unanswered\n",
                     r.responses.size(),
                     static_cast<unsigned long long>(r.stats.submitted));
        rc = 1;
    }
    if (r.validationFailures != 0) {
        std::fprintf(stderr,
                     "FAIL: %u ok responses differ from the clean-"
                     "engine reference checksum\n",
                     r.validationFailures);
        rc = 1;
    }
    if (require_quarantine && r.stats.quarantines == 0) {
        std::fprintf(stderr, "FAIL: --require-quarantine but no "
                             "isolate was quarantined\n");
        rc = 1;
    }
    if (require_degradation && r.stats.degradations == 0) {
        std::fprintf(stderr, "FAIL: --require-degradation but no "
                             "isolate was degraded\n");
        rc = 1;
    }
    if (require_no_shed && r.stats.shed != 0) {
        std::fprintf(stderr, "FAIL: --require-no-shed but %llu "
                     "requests were shed\n",
                     static_cast<unsigned long long>(r.stats.shed));
        rc = 1;
    }
    if (verify_determinism) {
        SoakOptions seq = so;
        seq.jobs = 1;
        seq.traffic.validate = false;  // expect strings aren't executed
        SoakReport sr = runSoak(seq);
        if (sr.digest != r.digest) {
            std::fprintf(
                stderr,
                "FAIL: outcome digest differs at jobs=1: %016llx vs "
                "%016llx\n",
                static_cast<unsigned long long>(sr.digest),
                static_cast<unsigned long long>(r.digest));
            rc = 1;
        } else {
            std::printf("  determinism verified: jobs=1 digest "
                        "matches\n");
        }
    }
    if (rc == 0)
        std::printf("OK: all serving invariants held\n");
    return rc;
}
