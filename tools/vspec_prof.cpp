/**
 * @file
 * vspec-prof: the vprof command-line harness. Runs one workload with
 * the calling-context profiler enabled and exports the result as
 * profile JSON (schema "vspec-profile-v1"), folded stacks for
 * flamegraph.pl, and/or a human-readable top-N report. Also validates
 * emitted documents and diffs two profiles per function / per line.
 *
 *   vspec-prof --list
 *   vspec-prof --workload=deltablue --profile --report
 *   vspec-prof --workload=richards --profile --profile-out=p.json \
 *              --folded=p.folded
 *   vspec-prof --profile-diff a.json b.json
 *   vspec-prof --validate p.json
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "harness/experiment.hh"
#include "profiler/profile.hh"
#include "workloads/suite.hh"

using namespace vspec;

namespace
{

[[noreturn]] void
usage(const char *argv0, const char *bad)
{
    if (bad != nullptr)
        std::fprintf(stderr, "%s: invalid argument '%s'\n", argv0, bad);
    std::fprintf(
        stderr,
        "usage: %s --workload=NAME [options]\n"
        "       %s --profile-diff BASELINE.json CURRENT.json\n"
        "       %s --validate FILE.json\n"
        "       %s --list\n"
        "  --workload=NAME    workload name or tag (see --list)\n"
        "  --iters=N          bench iterations (default 30)\n"
        "  --size=N           problem size (default: workload default)\n"
        "  --isa=arm64|x64    backend flavour (default arm64)\n"
        "  --period=N         sampling period in cycles (default 211)\n"
        "  --window=N         attribution window (default: per ISA)\n"
        "  --profile          enable calling-context profiling\n"
        "  --profile-out=F    write profile JSON to F\n"
        "  --folded=F         write folded stacks to F\n"
        "  --report           print the human-readable report\n"
        "  --top=N            rows in the report (default 10)\n",
        argv0, argv0, argv0, argv0);
    std::exit(2);
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << text;
    return out.good();
}

long
parseNum(const char *argv0, const char *flag, const char *text)
{
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (text[0] == '\0' || end == nullptr || *end != '\0' || v < 0)
        usage(argv0, flag);
    return v;
}

int
runValidate(const std::string &path)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "vspec-prof: cannot read %s\n",
                     path.c_str());
        return 1;
    }
    JsonValue doc;
    std::string error;
    if (!parseJson(text, doc, error)) {
        std::fprintf(stderr, "vspec-prof: %s: invalid JSON: %s\n",
                     path.c_str(), error.c_str());
        return 1;
    }
    const JsonValue *schema = doc.get("schema");
    if (!schema || schema->string != "vspec-profile-v1") {
        std::fprintf(stderr,
                     "vspec-prof: %s: not a vspec-profile-v1 document\n",
                     path.c_str());
        return 1;
    }
    for (const char *key : {"workload", "isa", "period", "samples",
                            "attribution", "functions", "lines", "cct"}) {
        if (!doc.get(key)) {
            std::fprintf(stderr, "vspec-prof: %s: missing key '%s'\n",
                         path.c_str(), key);
            return 1;
        }
    }
    std::printf("%s: valid vspec-profile-v1\n", path.c_str());
    return 0;
}

int
runDiff(const std::string &path_a, const std::string &path_b)
{
    std::string text_a, text_b, error;
    if (!readFile(path_a, text_a) || !readFile(path_b, text_b)) {
        std::fprintf(stderr, "vspec-prof: cannot read %s or %s\n",
                     path_a.c_str(), path_b.c_str());
        return 1;
    }
    JsonValue a, b;
    if (!parseJson(text_a, a, error)
        || !parseJson(text_b, b, error)) {
        std::fprintf(stderr, "vspec-prof: invalid JSON: %s\n",
                     error.c_str());
        return 1;
    }
    std::string report = profileDiffReport(a, b, error);
    if (!error.empty()) {
        std::fprintf(stderr, "vspec-prof: %s\n", error.c_str());
        return 1;
    }
    std::fputs(report.c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload, profile_out, folded_out;
    u32 iters = 30, size = 0, top = 10;
    u64 period = 211;
    int window = -1;
    IsaFlavour isa = IsaFlavour::Arm64Like;
    bool profile = false, report = false, list = false;

    for (int i = 1; i < argc; i++) {
        const char *a = argv[i];
        auto val = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
        };
        const char *v;
        if (std::strcmp(a, "--list") == 0) {
            list = true;
        } else if (std::strcmp(a, "--profile") == 0) {
            profile = true;
        } else if (std::strcmp(a, "--report") == 0) {
            report = true;
        } else if (std::strcmp(a, "--validate") == 0) {
            if (i + 1 >= argc)
                usage(argv[0], a);
            return runValidate(argv[i + 1]);
        } else if (std::strcmp(a, "--profile-diff") == 0) {
            if (i + 2 >= argc)
                usage(argv[0], a);
            return runDiff(argv[i + 1], argv[i + 2]);
        } else if ((v = val("--workload="))) {
            workload = v;
        } else if ((v = val("--profile-out="))) {
            profile_out = v;
        } else if ((v = val("--folded="))) {
            folded_out = v;
        } else if ((v = val("--iters="))) {
            iters = static_cast<u32>(parseNum(argv[0], a, v));
        } else if ((v = val("--size="))) {
            size = static_cast<u32>(parseNum(argv[0], a, v));
        } else if ((v = val("--period="))) {
            period = static_cast<u64>(parseNum(argv[0], a, v));
        } else if ((v = val("--window="))) {
            window = static_cast<int>(parseNum(argv[0], a, v));
        } else if ((v = val("--top="))) {
            top = static_cast<u32>(parseNum(argv[0], a, v));
        } else if ((v = val("--isa="))) {
            if (std::strcmp(v, "arm64") == 0)
                isa = IsaFlavour::Arm64Like;
            else if (std::strcmp(v, "x64") == 0)
                isa = IsaFlavour::X64Like;
            else
                usage(argv[0], a);
        } else {
            usage(argv[0], a);
        }
    }

    if (list) {
        for (const Workload &w : suite())
            std::printf("%-16s %-8s %s\n", w.name.c_str(),
                        w.tag.c_str(), categoryName(w.category));
        return 0;
    }
    if (workload.empty())
        usage(argv[0], nullptr);
    const Workload *w = findWorkload(workload);
    if (w == nullptr) {
        std::fprintf(stderr, "vspec-prof: unknown workload '%s' "
                             "(try --list)\n",
                     workload.c_str());
        return 1;
    }

    RunConfig rc;
    rc.isa = isa;
    rc.iterations = iters == 0 ? 1 : iters;
    rc.size = size;
    rc.samplerPeriod = period == 0 ? 1 : period;
    rc.profiling = profile;
    if (window < 0)
        window = defaultWindowFor(isa);

    RunOutcome out = runWorkload(*w, rc);
    if (!out.completed) {
        std::fprintf(stderr, "vspec-prof: run failed: %s\n",
                     out.error.c_str());
        return 1;
    }

    if (!profile) {
        // Flat sampling only: print the attribution summary.
        std::printf("%s (%s): %llu cycles, %llu samples, check overhead "
                    "window %.2f%% / truth %.2f%%\n",
                    w->name.c_str(), isaFlavourName(isa),
                    static_cast<unsigned long long>(out.totalCycles),
                    static_cast<unsigned long long>(
                        out.window.totalSamples),
                    100.0 * out.window.overheadFraction(),
                    100.0 * out.truth.overheadFraction());
        return 0;
    }

    if (out.profile == nullptr) {
        std::fprintf(stderr, "vspec-prof: no profile was built\n");
        return 1;
    }
    const Profile &p = *out.profile;

    int rv = 0;
    if (!profile_out.empty()) {
        if (!writeFile(profile_out, profileToJson(p))) {
            std::fprintf(stderr, "vspec-prof: cannot write %s\n",
                         profile_out.c_str());
            rv = 1;
        }
    }
    if (!folded_out.empty()) {
        if (!writeFile(folded_out, profileToFolded(p))) {
            std::fprintf(stderr, "vspec-prof: cannot write %s\n",
                         folded_out.c_str());
            rv = 1;
        }
    }
    if (report || (profile_out.empty() && folded_out.empty()))
        std::fputs(profileReport(p, top).c_str(), stdout);
    return rv;
}
