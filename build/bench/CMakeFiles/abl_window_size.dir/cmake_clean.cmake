file(REMOVE_RECURSE
  "CMakeFiles/abl_window_size.dir/abl_window_size.cpp.o"
  "CMakeFiles/abl_window_size.dir/abl_window_size.cpp.o.d"
  "abl_window_size"
  "abl_window_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_window_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
