# Empty compiler generated dependencies file for fig04_check_breakdown.
# This may be replaced when dependencies are built.
