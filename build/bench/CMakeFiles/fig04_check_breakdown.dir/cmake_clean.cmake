file(REMOVE_RECURSE
  "CMakeFiles/fig04_check_breakdown.dir/fig04_check_breakdown.cpp.o"
  "CMakeFiles/fig04_check_breakdown.dir/fig04_check_breakdown.cpp.o.d"
  "fig04_check_breakdown"
  "fig04_check_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_check_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
