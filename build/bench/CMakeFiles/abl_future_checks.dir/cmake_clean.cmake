file(REMOVE_RECURSE
  "CMakeFiles/abl_future_checks.dir/abl_future_checks.cpp.o"
  "CMakeFiles/abl_future_checks.dir/abl_future_checks.cpp.o.d"
  "abl_future_checks"
  "abl_future_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_future_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
