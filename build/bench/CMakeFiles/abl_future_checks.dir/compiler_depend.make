# Empty compiler generated dependencies file for abl_future_checks.
# This may be replaced when dependencies are built.
