file(REMOVE_RECURSE
  "CMakeFiles/fig13_isa_extension.dir/fig13_isa_extension.cpp.o"
  "CMakeFiles/fig13_isa_extension.dir/fig13_isa_extension.cpp.o.d"
  "fig13_isa_extension"
  "fig13_isa_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_isa_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
