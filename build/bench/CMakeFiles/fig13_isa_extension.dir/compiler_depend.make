# Empty compiler generated dependencies file for fig13_isa_extension.
# This may be replaced when dependencies are built.
