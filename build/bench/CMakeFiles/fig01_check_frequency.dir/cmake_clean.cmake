file(REMOVE_RECURSE
  "CMakeFiles/fig01_check_frequency.dir/fig01_check_frequency.cpp.o"
  "CMakeFiles/fig01_check_frequency.dir/fig01_check_frequency.cpp.o.d"
  "fig01_check_frequency"
  "fig01_check_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_check_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
