# Empty dependencies file for fig01_check_frequency.
# This may be replaced when dependencies are built.
