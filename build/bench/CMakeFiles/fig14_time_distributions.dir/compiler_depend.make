# Empty compiler generated dependencies file for fig14_time_distributions.
# This may be replaced when dependencies are built.
