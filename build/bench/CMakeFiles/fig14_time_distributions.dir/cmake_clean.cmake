file(REMOVE_RECURSE
  "CMakeFiles/fig14_time_distributions.dir/fig14_time_distributions.cpp.o"
  "CMakeFiles/fig14_time_distributions.dir/fig14_time_distributions.cpp.o.d"
  "fig14_time_distributions"
  "fig14_time_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_time_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
