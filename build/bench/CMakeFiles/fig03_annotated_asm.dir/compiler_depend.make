# Empty compiler generated dependencies file for fig03_annotated_asm.
# This may be replaced when dependencies are built.
