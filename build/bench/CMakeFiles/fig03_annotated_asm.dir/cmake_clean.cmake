file(REMOVE_RECURSE
  "CMakeFiles/fig03_annotated_asm.dir/fig03_annotated_asm.cpp.o"
  "CMakeFiles/fig03_annotated_asm.dir/fig03_annotated_asm.cpp.o.d"
  "fig03_annotated_asm"
  "fig03_annotated_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_annotated_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
