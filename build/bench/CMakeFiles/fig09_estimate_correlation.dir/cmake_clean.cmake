file(REMOVE_RECURSE
  "CMakeFiles/fig09_estimate_correlation.dir/fig09_estimate_correlation.cpp.o"
  "CMakeFiles/fig09_estimate_correlation.dir/fig09_estimate_correlation.cpp.o.d"
  "fig09_estimate_correlation"
  "fig09_estimate_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_estimate_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
