# Empty compiler generated dependencies file for fig09_estimate_correlation.
# This may be replaced when dependencies are built.
