file(REMOVE_RECURSE
  "CMakeFiles/fig08_speedup_by_category.dir/fig08_speedup_by_category.cpp.o"
  "CMakeFiles/fig08_speedup_by_category.dir/fig08_speedup_by_category.cpp.o.d"
  "fig08_speedup_by_category"
  "fig08_speedup_by_category.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_speedup_by_category.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
