# Empty compiler generated dependencies file for fig08_speedup_by_category.
# This may be replaced when dependencies are built.
