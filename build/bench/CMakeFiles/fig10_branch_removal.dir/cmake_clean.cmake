file(REMOVE_RECURSE
  "CMakeFiles/fig10_branch_removal.dir/fig10_branch_removal.cpp.o"
  "CMakeFiles/fig10_branch_removal.dir/fig10_branch_removal.cpp.o.d"
  "fig10_branch_removal"
  "fig10_branch_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_branch_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
