# Empty dependencies file for fig10_branch_removal.
# This may be replaced when dependencies are built.
