# Empty compiler generated dependencies file for tab_deopt_taxonomy.
# This may be replaced when dependencies are built.
