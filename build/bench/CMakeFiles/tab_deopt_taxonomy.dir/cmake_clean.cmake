file(REMOVE_RECURSE
  "CMakeFiles/tab_deopt_taxonomy.dir/tab_deopt_taxonomy.cpp.o"
  "CMakeFiles/tab_deopt_taxonomy.dir/tab_deopt_taxonomy.cpp.o.d"
  "tab_deopt_taxonomy"
  "tab_deopt_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_deopt_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
