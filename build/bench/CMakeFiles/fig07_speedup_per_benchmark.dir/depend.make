# Empty dependencies file for fig07_speedup_per_benchmark.
# This may be replaced when dependencies are built.
