file(REMOVE_RECURSE
  "CMakeFiles/fig07_speedup_per_benchmark.dir/fig07_speedup_per_benchmark.cpp.o"
  "CMakeFiles/fig07_speedup_per_benchmark.dir/fig07_speedup_per_benchmark.cpp.o.d"
  "fig07_speedup_per_benchmark"
  "fig07_speedup_per_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_speedup_per_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
