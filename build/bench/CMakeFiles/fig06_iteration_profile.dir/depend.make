# Empty dependencies file for fig06_iteration_profile.
# This may be replaced when dependencies are built.
