file(REMOVE_RECURSE
  "CMakeFiles/fig06_iteration_profile.dir/fig06_iteration_profile.cpp.o"
  "CMakeFiles/fig06_iteration_profile.dir/fig06_iteration_profile.cpp.o.d"
  "fig06_iteration_profile"
  "fig06_iteration_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_iteration_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
