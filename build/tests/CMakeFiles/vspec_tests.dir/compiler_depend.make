# Empty compiler generated dependencies file for vspec_tests.
# This may be replaced when dependencies are built.
