
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_builtins.cc" "tests/CMakeFiles/vspec_tests.dir/test_builtins.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_builtins.cc.o.d"
  "/root/repo/tests/test_bytecode.cc" "tests/CMakeFiles/vspec_tests.dir/test_bytecode.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_bytecode.cc.o.d"
  "/root/repo/tests/test_deopt.cc" "tests/CMakeFiles/vspec_tests.dir/test_deopt.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_deopt.cc.o.d"
  "/root/repo/tests/test_deopt_reasons.cc" "tests/CMakeFiles/vspec_tests.dir/test_deopt_reasons.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_deopt_reasons.cc.o.d"
  "/root/repo/tests/test_engine_jit.cc" "tests/CMakeFiles/vspec_tests.dir/test_engine_jit.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_engine_jit.cc.o.d"
  "/root/repo/tests/test_feedback.cc" "tests/CMakeFiles/vspec_tests.dir/test_feedback.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_feedback.cc.o.d"
  "/root/repo/tests/test_gc.cc" "tests/CMakeFiles/vspec_tests.dir/test_gc.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_gc.cc.o.d"
  "/root/repo/tests/test_harness.cc" "tests/CMakeFiles/vspec_tests.dir/test_harness.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_harness.cc.o.d"
  "/root/repo/tests/test_heap.cc" "tests/CMakeFiles/vspec_tests.dir/test_heap.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_heap.cc.o.d"
  "/root/repo/tests/test_interpreter.cc" "tests/CMakeFiles/vspec_tests.dir/test_interpreter.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_interpreter.cc.o.d"
  "/root/repo/tests/test_ir_builder.cc" "tests/CMakeFiles/vspec_tests.dir/test_ir_builder.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_ir_builder.cc.o.d"
  "/root/repo/tests/test_isa_semantics.cc" "tests/CMakeFiles/vspec_tests.dir/test_isa_semantics.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_isa_semantics.cc.o.d"
  "/root/repo/tests/test_lexer.cc" "tests/CMakeFiles/vspec_tests.dir/test_lexer.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_lexer.cc.o.d"
  "/root/repo/tests/test_liveness.cc" "tests/CMakeFiles/vspec_tests.dir/test_liveness.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_liveness.cc.o.d"
  "/root/repo/tests/test_maps_objects.cc" "tests/CMakeFiles/vspec_tests.dir/test_maps_objects.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_maps_objects.cc.o.d"
  "/root/repo/tests/test_parser.cc" "tests/CMakeFiles/vspec_tests.dir/test_parser.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_parser.cc.o.d"
  "/root/repo/tests/test_passes.cc" "tests/CMakeFiles/vspec_tests.dir/test_passes.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_passes.cc.o.d"
  "/root/repo/tests/test_profiler.cc" "tests/CMakeFiles/vspec_tests.dir/test_profiler.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_profiler.cc.o.d"
  "/root/repo/tests/test_regalloc_isel.cc" "tests/CMakeFiles/vspec_tests.dir/test_regalloc_isel.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_regalloc_isel.cc.o.d"
  "/root/repo/tests/test_regex_lite.cc" "tests/CMakeFiles/vspec_tests.dir/test_regex_lite.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_regex_lite.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/vspec_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_smi_extension.cc" "tests/CMakeFiles/vspec_tests.dir/test_smi_extension.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_smi_extension.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/vspec_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_timing_models.cc" "tests/CMakeFiles/vspec_tests.dir/test_timing_models.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_timing_models.cc.o.d"
  "/root/repo/tests/test_value.cc" "tests/CMakeFiles/vspec_tests.dir/test_value.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_value.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/vspec_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/vspec_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vspec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
