# Empty compiler generated dependencies file for spmv_check_overhead.
# This may be replaced when dependencies are built.
