file(REMOVE_RECURSE
  "CMakeFiles/spmv_check_overhead.dir/spmv_check_overhead.cpp.o"
  "CMakeFiles/spmv_check_overhead.dir/spmv_check_overhead.cpp.o.d"
  "spmv_check_overhead"
  "spmv_check_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_check_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
