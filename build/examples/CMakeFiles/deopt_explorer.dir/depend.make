# Empty dependencies file for deopt_explorer.
# This may be replaced when dependencies are built.
