file(REMOVE_RECURSE
  "CMakeFiles/deopt_explorer.dir/deopt_explorer.cpp.o"
  "CMakeFiles/deopt_explorer.dir/deopt_explorer.cpp.o.d"
  "deopt_explorer"
  "deopt_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deopt_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
