# Empty dependencies file for vspec.
# This may be replaced when dependencies are built.
