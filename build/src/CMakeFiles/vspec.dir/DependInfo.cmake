
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backend/code_object.cc" "src/CMakeFiles/vspec.dir/backend/code_object.cc.o" "gcc" "src/CMakeFiles/vspec.dir/backend/code_object.cc.o.d"
  "/root/repo/src/backend/isel.cc" "src/CMakeFiles/vspec.dir/backend/isel.cc.o" "gcc" "src/CMakeFiles/vspec.dir/backend/isel.cc.o.d"
  "/root/repo/src/backend/regalloc.cc" "src/CMakeFiles/vspec.dir/backend/regalloc.cc.o" "gcc" "src/CMakeFiles/vspec.dir/backend/regalloc.cc.o.d"
  "/root/repo/src/bytecode/bytecode.cc" "src/CMakeFiles/vspec.dir/bytecode/bytecode.cc.o" "gcc" "src/CMakeFiles/vspec.dir/bytecode/bytecode.cc.o.d"
  "/root/repo/src/bytecode/compiler.cc" "src/CMakeFiles/vspec.dir/bytecode/compiler.cc.o" "gcc" "src/CMakeFiles/vspec.dir/bytecode/compiler.cc.o.d"
  "/root/repo/src/bytecode/feedback.cc" "src/CMakeFiles/vspec.dir/bytecode/feedback.cc.o" "gcc" "src/CMakeFiles/vspec.dir/bytecode/feedback.cc.o.d"
  "/root/repo/src/frontend/ast.cc" "src/CMakeFiles/vspec.dir/frontend/ast.cc.o" "gcc" "src/CMakeFiles/vspec.dir/frontend/ast.cc.o.d"
  "/root/repo/src/frontend/lexer.cc" "src/CMakeFiles/vspec.dir/frontend/lexer.cc.o" "gcc" "src/CMakeFiles/vspec.dir/frontend/lexer.cc.o.d"
  "/root/repo/src/frontend/parser.cc" "src/CMakeFiles/vspec.dir/frontend/parser.cc.o" "gcc" "src/CMakeFiles/vspec.dir/frontend/parser.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/vspec.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/vspec.dir/harness/experiment.cc.o.d"
  "/root/repo/src/interp/interpreter.cc" "src/CMakeFiles/vspec.dir/interp/interpreter.cc.o" "gcc" "src/CMakeFiles/vspec.dir/interp/interpreter.cc.o.d"
  "/root/repo/src/ir/builder.cc" "src/CMakeFiles/vspec.dir/ir/builder.cc.o" "gcc" "src/CMakeFiles/vspec.dir/ir/builder.cc.o.d"
  "/root/repo/src/ir/deopt_reasons.cc" "src/CMakeFiles/vspec.dir/ir/deopt_reasons.cc.o" "gcc" "src/CMakeFiles/vspec.dir/ir/deopt_reasons.cc.o.d"
  "/root/repo/src/ir/graph.cc" "src/CMakeFiles/vspec.dir/ir/graph.cc.o" "gcc" "src/CMakeFiles/vspec.dir/ir/graph.cc.o.d"
  "/root/repo/src/ir/liveness.cc" "src/CMakeFiles/vspec.dir/ir/liveness.cc.o" "gcc" "src/CMakeFiles/vspec.dir/ir/liveness.cc.o.d"
  "/root/repo/src/ir/passes.cc" "src/CMakeFiles/vspec.dir/ir/passes.cc.o" "gcc" "src/CMakeFiles/vspec.dir/ir/passes.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/CMakeFiles/vspec.dir/isa/isa.cc.o" "gcc" "src/CMakeFiles/vspec.dir/isa/isa.cc.o.d"
  "/root/repo/src/profiler/attribution.cc" "src/CMakeFiles/vspec.dir/profiler/attribution.cc.o" "gcc" "src/CMakeFiles/vspec.dir/profiler/attribution.cc.o.d"
  "/root/repo/src/runtime/builtins.cc" "src/CMakeFiles/vspec.dir/runtime/builtins.cc.o" "gcc" "src/CMakeFiles/vspec.dir/runtime/builtins.cc.o.d"
  "/root/repo/src/runtime/engine.cc" "src/CMakeFiles/vspec.dir/runtime/engine.cc.o" "gcc" "src/CMakeFiles/vspec.dir/runtime/engine.cc.o.d"
  "/root/repo/src/runtime/regex_lite.cc" "src/CMakeFiles/vspec.dir/runtime/regex_lite.cc.o" "gcc" "src/CMakeFiles/vspec.dir/runtime/regex_lite.cc.o.d"
  "/root/repo/src/runtime/tiering.cc" "src/CMakeFiles/vspec.dir/runtime/tiering.cc.o" "gcc" "src/CMakeFiles/vspec.dir/runtime/tiering.cc.o.d"
  "/root/repo/src/sim/branch_predictor.cc" "src/CMakeFiles/vspec.dir/sim/branch_predictor.cc.o" "gcc" "src/CMakeFiles/vspec.dir/sim/branch_predictor.cc.o.d"
  "/root/repo/src/sim/caches.cc" "src/CMakeFiles/vspec.dir/sim/caches.cc.o" "gcc" "src/CMakeFiles/vspec.dir/sim/caches.cc.o.d"
  "/root/repo/src/sim/cpu_config.cc" "src/CMakeFiles/vspec.dir/sim/cpu_config.cc.o" "gcc" "src/CMakeFiles/vspec.dir/sim/cpu_config.cc.o.d"
  "/root/repo/src/sim/fast_timing.cc" "src/CMakeFiles/vspec.dir/sim/fast_timing.cc.o" "gcc" "src/CMakeFiles/vspec.dir/sim/fast_timing.cc.o.d"
  "/root/repo/src/sim/inorder.cc" "src/CMakeFiles/vspec.dir/sim/inorder.cc.o" "gcc" "src/CMakeFiles/vspec.dir/sim/inorder.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/vspec.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/vspec.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/o3lite.cc" "src/CMakeFiles/vspec.dir/sim/o3lite.cc.o" "gcc" "src/CMakeFiles/vspec.dir/sim/o3lite.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/vspec.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/vspec.dir/stats/stats.cc.o.d"
  "/root/repo/src/support/logging.cc" "src/CMakeFiles/vspec.dir/support/logging.cc.o" "gcc" "src/CMakeFiles/vspec.dir/support/logging.cc.o.d"
  "/root/repo/src/support/random.cc" "src/CMakeFiles/vspec.dir/support/random.cc.o" "gcc" "src/CMakeFiles/vspec.dir/support/random.cc.o.d"
  "/root/repo/src/vm/gc.cc" "src/CMakeFiles/vspec.dir/vm/gc.cc.o" "gcc" "src/CMakeFiles/vspec.dir/vm/gc.cc.o.d"
  "/root/repo/src/vm/heap.cc" "src/CMakeFiles/vspec.dir/vm/heap.cc.o" "gcc" "src/CMakeFiles/vspec.dir/vm/heap.cc.o.d"
  "/root/repo/src/vm/map.cc" "src/CMakeFiles/vspec.dir/vm/map.cc.o" "gcc" "src/CMakeFiles/vspec.dir/vm/map.cc.o.d"
  "/root/repo/src/vm/objects.cc" "src/CMakeFiles/vspec.dir/vm/objects.cc.o" "gcc" "src/CMakeFiles/vspec.dir/vm/objects.cc.o.d"
  "/root/repo/src/vm/value.cc" "src/CMakeFiles/vspec.dir/vm/value.cc.o" "gcc" "src/CMakeFiles/vspec.dir/vm/value.cc.o.d"
  "/root/repo/src/workloads/sources.cc" "src/CMakeFiles/vspec.dir/workloads/sources.cc.o" "gcc" "src/CMakeFiles/vspec.dir/workloads/sources.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/CMakeFiles/vspec.dir/workloads/suite.cc.o" "gcc" "src/CMakeFiles/vspec.dir/workloads/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
