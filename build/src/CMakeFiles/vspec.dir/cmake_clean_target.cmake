file(REMOVE_RECURSE
  "libvspec.a"
)
