src/CMakeFiles/vspec.dir/workloads/sources.cc.o: \
 /root/repo/src/workloads/sources.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/sources.hh
