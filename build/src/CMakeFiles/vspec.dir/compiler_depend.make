# Empty compiler generated dependencies file for vspec.
# This may be replaced when dependencies are built.
