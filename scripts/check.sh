#!/usr/bin/env bash
# Tier-1 check: normal build + ctest, a vguard fault-injection matrix
# over the workload suite, then an ASan/UBSan Debug build with the
# vverify pipeline verifier forced on. Run from the repo root:
#
#   scripts/check.sh            # all passes
#   scripts/check.sh --fast     # normal pass + fault matrix only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

echo "== pass 1: default build (RelWithDebInfo) + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== pass 1b: vguard fault-injection matrix =="
# Each leg reruns the suite with one deterministic fault schedule; the
# invariant is bit-identical results or a structured EngineError.
for fault in "gc-every=64" "alloc-fail-at=5000" "compile-fail-at=1" \
             "spurious-deopt-at=2"; do
    echo "-- VSPEC_FAULT=$fault"
    VSPEC_FAULT="$fault" ./build/tests/vspec_tests \
        --gtest_filter='FaultMatrixEnv.*' --gtest_brief=1
done

if [[ "${1:-}" == "--fast" ]]; then
    echo "== skipped sanitizer pass (--fast) =="
    exit 0
fi

echo "== pass 2: ASan+UBSan Debug build, verifier on every pass =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
      -DVSPEC_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
VSPEC_VERIFY=2 ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== all checks passed =="
