#!/usr/bin/env bash
# Tier-1 check: normal build + ctest, a vguard fault-injection matrix
# over the workload suite, the vpar determinism spot-check (--jobs=1 vs
# --jobs=4 byte-identical bench output + VSPEC_JOBS test legs), the
# vprof profiling smoke + bench regression gate, then an ASan/UBSan
# Debug build with the vverify pipeline verifier forced on and a TSan
# build of the runner tests. Run from the repo root:
#
#   scripts/check.sh            # all passes
#   scripts/check.sh --fast     # normal pass + fault matrix + vpar only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

echo "== pass 1: default build (RelWithDebInfo) + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== pass 1b: vguard fault-injection matrix =="
# Each leg reruns the suite with one deterministic fault schedule; the
# invariant is bit-identical results or a structured EngineError.
for fault in "gc-every=64" "alloc-fail-at=5000" "compile-fail-at=1" \
             "spurious-deopt-at=2"; do
    echo "-- VSPEC_FAULT=$fault"
    VSPEC_FAULT="$fault" ./build/tests/vspec_tests \
        --gtest_filter='FaultMatrixEnv.*' --gtest_brief=1
done

echo "== pass 1c: vpar determinism — --jobs=1 vs --jobs=4 byte-identical =="
# Two full bench binaries; the persistent cache is pointed at a scratch
# directory so the check neither reads nor pollutes the user's cache.
VPAR_CACHE=$(mktemp -d)
trap 'rm -rf "$VPAR_CACHE"' EXIT
for bin in fig01_check_frequency fig10_branch_removal; do
    echo "-- $bin"
    VSPEC_CACHE_DIR="$VPAR_CACHE" ./build/bench/"$bin" --quick --jobs=1 \
        > "$VPAR_CACHE/$bin.j1"
    VSPEC_CACHE_DIR="$VPAR_CACHE" ./build/bench/"$bin" --quick --jobs=4 \
        > "$VPAR_CACHE/$bin.j4"
    diff "$VPAR_CACHE/$bin.j1" "$VPAR_CACHE/$bin.j4"
done

echo "== pass 1d: VSPEC_JOBS matrix over the runner tests =="
for j in 1 4; do
    echo "-- VSPEC_JOBS=$j"
    VSPEC_JOBS=$j ./build/tests/vspec_tests \
        --gtest_filter='Sched.*:Parallel.*:PersistentCache.*:Predecode.*' \
        --gtest_brief=1
done

echo "== pass 1e: host runner/cache meter (build/BENCH_host.json) =="
VSPEC_CACHE_DIR="$VPAR_CACHE" ./build/bench/micro_host --iters=8 \
    --fig07=./build/bench/fig07_speedup_per_benchmark \
    --out=build/BENCH_host.json
# vserve soak bench merges its "serve" section into the same document
# (baseline fleet + one-bad-host fault matrix; exits nonzero on any
# validation failure).
./build/bench/serve_soak --quick --out=build/BENCH_host.json
cat build/BENCH_host.json

echo "== pass 1f: vprof smoke + bench regression gate =="
# Two profiled workloads end to end; every emitted document must
# validate against the vspec-profile-v1 schema.
for w in RICHARDS SPLAY; do
    echo "-- vspec-prof --profile $w"
    ./build/tools/vspec-prof --workload="$w" --iters=12 --profile \
        --profile-out="$VPAR_CACHE/prof-$w.json" \
        --folded="$VPAR_CACHE/prof-$w.folded"
    ./build/tools/vspec-prof --validate "$VPAR_CACHE/prof-$w.json"
    test -s "$VPAR_CACHE/prof-$w.folded"
done
# The gate against the committed baselines, plus its own selftest
# (identical copy passes; an injected 25% slowdown must fail). The
# pass-1e BENCH_host.json rides along so the gate checks the required
# "serve" section and reports host-side drift informationally.
./build/tools/bench_gate emit --out="$VPAR_CACHE/gate-current" --iters=10
cp build/BENCH_host.json "$VPAR_CACHE/gate-current/"
./build/tools/bench_gate compare --baselines=bench/baselines \
    --current="$VPAR_CACHE/gate-current"
./build/tools/bench_gate selftest --baselines=bench/baselines

echo "== pass 1j: vdcost deopt-episode smoke =="
# One deopting workload end to end through the CLI (export must
# validate against vspec-deopt-v1 and self-diff cleanly), then the
# headline bench merging its "deopt_cost" section into a scratch copy
# of the host document. Episode tracking is proven cycle-neutral by
# the differential tests in pass 1; this leg proves the surfaces.
./build/tools/vspec-deopt --workload=GROWING-SUM --iters=20 \
    --out="$VPAR_CACHE/deopt-gs.json"
./build/tools/vspec-deopt --validate "$VPAR_CACHE/deopt-gs.json"
./build/tools/vspec-deopt --diff "$VPAR_CACHE/deopt-gs.json" \
    "$VPAR_CACHE/deopt-gs.json" >/dev/null
cp build/BENCH_host.json "$VPAR_CACHE/deopt-host.json"
VSPEC_CACHE_DIR="$VPAR_CACHE" ./build/bench/fig_deopt_cost --quick \
    --jobs=4 --json="$VPAR_CACHE/deopt-fig.json" \
    --out="$VPAR_CACHE/deopt-host.json" >/dev/null
test -s "$VPAR_CACHE/deopt-fig.json"
grep -q '"deopt_cost"' "$VPAR_CACHE/deopt-host.json"

echo "== pass 1i: vregalloc reduced-pool smoke =="
# The register-pressure suite, then a JIT-heavy slice with the whole
# engine starved to a handful of registers via the env knob (allocation
# verifier forced on), then one quick bench leg proving the starved
# allocator still completes the harness path. The scratch cache dir
# keeps shrunk-pool cycle numbers out of the user's persistent cache.
./build/tests/vspec_tests --gtest_filter='Regalloc*' --gtest_brief=1
VSPEC_MAX_GPRS=3 VSPEC_VERIFY=1 VSPEC_CACHE_DIR="$VPAR_CACHE" \
    ./build/tests/vspec_tests \
    --gtest_filter='Backend.*:FuzzDifferential.*' --gtest_brief=1
VSPEC_MAX_GPRS=4 VSPEC_MAX_FPRS=2 VSPEC_VERIFY=1 \
    VSPEC_CACHE_DIR="$VPAR_CACHE" \
    ./build/bench/fig01_check_frequency --quick --jobs=1 >/dev/null

echo "== pass 1h: vserve fault-containment soak =="
# A short soak with the full fault matrix concentrated on one isolate:
# must complete with zero crashes, classify every injected fault into a
# typed response, quarantine and replace the sick isolate, degrade it
# to interpreter-only when the JIT keeps failing, and produce an
# outcome digest byte-identical to a --jobs=1 run.
./build/tools/vspec-serve --isolates=4 --requests=200 \
    --target-isolate=1 --fault="compile-fail-every=1,alloc-fail-every=700" \
    --require-quarantine --require-degradation --verify-determinism

echo "== pass 1g: clang-tidy over src/ir and src/verify =="
# Data-driven by .clang-tidy (bugprone-*, performance-*, selected
# readability checks). The container image may not ship clang-tidy;
# CI installs it, local runs skip with a notice.
if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    clang-tidy -p build --quiet src/ir/*.cc src/verify/*.cc
else
    echo "-- clang-tidy not installed; skipping (CI runs it)"
fi

if [[ "${1:-}" == "--fast" ]]; then
    echo "== skipped sanitizer passes (--fast) =="
    exit 0
fi

echo "== pass 2: ASan+UBSan Debug build, verifier on every pass =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
      -DVSPEC_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
VSPEC_VERIFY=2 ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== pass 3: TSan build, runner stress tests =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug \
      -DVSPEC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"
VSPEC_JOBS=4 ./build-tsan/tests/vspec_tests \
    --gtest_filter='Sched.*:Parallel.*:PersistentCache.*:Serve.*' \
    --gtest_brief=1
# The serve soak's parallel section (one task per isolate per tick)
# under TSan; validation off to keep the reference runs out of the
# instrumented hot path.
./build-tsan/tools/vspec-serve --isolates=4 --jobs=4 --requests=80 \
    --target-isolate=1 --fault="compile-fail-every=1" \
    --no-validate --require-quarantine

echo "== all checks passed =="
