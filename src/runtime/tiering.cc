#include "runtime/tiering.hh"

#include "trace/trace.hh"

namespace vspec
{

bool
TieringPolicy::shouldOptimize(const FunctionInfo &fn) const
{
    if (fn.builtin != BuiltinId::None || fn.optimizationDisabled)
        return false;
    if (!fn.feedback.hasAnyFeedback())
        return false;  // nothing to speculate on yet
    return fn.invocationCount >= optimizeAfterInvocations
           || fn.backEdgeCount >= optimizeAfterBackedges;
}

bool
TieringPolicy::onDeopt(FunctionInfo &fn, Tracer *trace, u64 now) const
{
    fn.deoptCount++;
    // Re-warm: require fresh invocations before re-optimizing, so the
    // interpreter can widen the feedback that just proved stale.
    fn.invocationCount = 0;
    fn.backEdgeCount = 0;
    bool disable = fn.deoptCount >= maxDeoptsBeforeDisable;
    if (disable)
        fn.optimizationDisabled = true;
    if (trace != nullptr) {
        if (disable)
            trace->counters.add(TraceCounter::OptimizationDisables);
        if (trace->on(TraceCategory::Tiering))
            trace->emit(TraceCategory::Tiering, TraceEventKind::Instant,
                        disable ? "optimization-disabled" : "re-warm",
                        now, fn.id, fn.deoptCount);
    }
    return disable;
}

} // namespace vspec
