#include "runtime/tiering.hh"

namespace vspec
{

bool
TieringPolicy::shouldOptimize(const FunctionInfo &fn) const
{
    if (fn.builtin != BuiltinId::None || fn.optimizationDisabled)
        return false;
    if (!fn.feedback.hasAnyFeedback())
        return false;  // nothing to speculate on yet
    return fn.invocationCount >= optimizeAfterInvocations
           || fn.backEdgeCount >= optimizeAfterBackedges;
}

bool
TieringPolicy::onDeopt(FunctionInfo &fn) const
{
    fn.deoptCount++;
    // Re-warm: require fresh invocations before re-optimizing, so the
    // interpreter can widen the feedback that just proved stale.
    fn.invocationCount = 0;
    fn.backEdgeCount = 0;
    if (fn.deoptCount >= maxDeoptsBeforeDisable) {
        fn.optimizationDisabled = true;
        return true;
    }
    return false;
}

} // namespace vspec
