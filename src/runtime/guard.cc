#include "runtime/guard.hh"

#include <cstdlib>

#include "support/logging.hh"
#include "trace/trace.hh"

namespace vspec
{

// ---------------------------------------------------------------------
// EngineError
// ---------------------------------------------------------------------

const char *
engineErrorKindName(EngineErrorKind k)
{
    switch (k) {
      case EngineErrorKind::OutOfMemory: return "OutOfMemory";
      case EngineErrorKind::StackOverflow: return "StackOverflow";
      case EngineErrorKind::FuelExhausted: return "FuelExhausted";
      case EngineErrorKind::CompileFailed: return "CompileFailed";
      case EngineErrorKind::TypeError: return "TypeError";
      case EngineErrorKind::RegexBudget: return "RegexBudget";
      case EngineErrorKind::NumKinds: break;
    }
    return "?";
}

namespace
{

std::string
formatWhat(EngineErrorKind kind, const std::string &message, u32 function,
           u32 bytecode_offset, u64 cycle)
{
    std::string s = "EngineError(";
    s += engineErrorKindName(kind);
    s += "): ";
    s += message;
    if (function != EngineError::kNoContext) {
        s += " [fn=" + std::to_string(function);
        if (bytecode_offset != EngineError::kNoContext)
            s += " bc=" + std::to_string(bytecode_offset);
        s += " cycle=" + std::to_string(cycle) + "]";
    }
    return s;
}

} // namespace

EngineError::EngineError(EngineErrorKind kind, const std::string &message)
    : std::runtime_error(formatWhat(kind, message, kNoContext, kNoContext,
                                    0)),
      kind(kind),
      message(message)
{
}

EngineError
EngineError::withContext(u32 fn, u32 bytecode_offset, u64 at_cycle) const
{
    if (hasContext())
        return *this;
    EngineError e(kind, message);
    e.function = fn;
    e.bytecodeOffset = bytecode_offset;
    e.cycle = at_cycle;
    // Rebuild the what() string with the context appended.
    static_cast<std::runtime_error &>(e) = std::runtime_error(
        formatWhat(kind, message, fn, bytecode_offset, at_cycle));
    return e;
}

// ---------------------------------------------------------------------
// FaultConfig
// ---------------------------------------------------------------------

FaultConfig
FaultConfig::fromEnv()
{
    // Parsed once per process: RunConfig default-constructs through
    // here from vpar worker threads, and a spec typo should warn once.
    static const FaultConfig cached = [] {
        if (const char *env = std::getenv("VSPEC_FAULT"))
            return parse(env);
        return FaultConfig{};
    }();
    return cached;
}

FaultConfig
FaultConfig::parse(const std::string &spec)
{
    FaultConfig cfg;
    size_t start = 0;
    while (start <= spec.size()) {
        size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(start, comma - start);
        while (!tok.empty() && tok.front() == ' ')
            tok.erase(tok.begin());
        while (!tok.empty() && tok.back() == ' ')
            tok.pop_back();
        if (!tok.empty()) {
            size_t eq = tok.find('=');
            std::string key = tok.substr(0, eq);
            u64 n = 0;
            bool numeric = eq != std::string::npos && eq + 1 < tok.size();
            if (numeric) {
                char *end = nullptr;
                n = std::strtoull(tok.c_str() + eq + 1, &end, 10);
                numeric = end != nullptr && *end == '\0';
            }
            if (!numeric) {
                vlog(LogLevel::Warn, "vguard",
                     "malformed fault spec '" + tok + "' ignored");
            } else if (key == "alloc-fail-at") {
                cfg.allocFailAt = n;
            } else if (key == "alloc-fail-every") {
                cfg.allocFailEvery = n;
            } else if (key == "gc-every") {
                cfg.gcEveryNAllocs = n;
            } else if (key == "compile-fail-at") {
                cfg.compileFailAt = n;
            } else if (key == "compile-fail-every") {
                cfg.compileFailEvery = n;
            } else if (key == "spurious-deopt-at") {
                cfg.spuriousDeoptAt = n;
            } else {
                vlog(LogLevel::Warn, "vguard",
                     "unknown fault site '" + key + "' ignored");
            }
        }
        start = comma + 1;
    }
    return cfg;
}

// ---------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------

void
FaultInjector::report(const char *site, u64 ordinal)
{
    injected++;
    if (trace == nullptr)
        return;
    trace->counters.add(TraceCounter::FaultsInjected);
    if (trace->on(TraceCategory::Fault))
        trace->emit(TraceCategory::Fault, TraceEventKind::Instant, site,
                    traceClock ? traceClock() : 0,
                    static_cast<u32>(ordinal));
}

AllocFault
FaultInjector::onAllocation()
{
    allocations++;
    if (config.allocFailAt != 0 && allocations == config.allocFailAt) {
        report("alloc-fail", allocations);
        return AllocFault::Fail;
    }
    if (config.allocFailEvery != 0
        && allocations % config.allocFailEvery == 0) {
        report("alloc-fail", allocations);
        return AllocFault::Fail;
    }
    if (config.gcEveryNAllocs != 0
        && allocations % config.gcEveryNAllocs == 0) {
        report("gc-stress", allocations);
        return AllocFault::ForceGc;
    }
    return AllocFault::None;
}

bool
FaultInjector::onCompile()
{
    compiles++;
    if (config.compileFailAt != 0 && compiles == config.compileFailAt) {
        report("compile-fail", compiles);
        return true;
    }
    if (config.compileFailEvery != 0
        && compiles % config.compileFailEvery == 0) {
        report("compile-fail", compiles);
        return true;
    }
    return false;
}

bool
FaultInjector::onOptimizedEntry()
{
    optimizedEntries++;
    if (config.spuriousDeoptAt != 0
        && optimizedEntries == config.spuriousDeoptAt) {
        report("spurious-deopt", optimizedEntries);
        return true;
    }
    return false;
}

} // namespace vspec
