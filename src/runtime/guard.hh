/**
 * @file
 * vguard: structured engine errors, resource guards, and deterministic
 * fault injection.
 *
 * Error model. Failures the *program under test* (or its resource
 * budget) can cause — heap exhaustion, runaway recursion, fuel
 * exhaustion, builtin type errors, pathological regexes — are raised as
 * EngineError, a catchable exception carrying a machine-readable kind
 * plus function/bytecode/cycle context. The engine unwinds safely
 * (active frames and machine states popped, jitDepth restored) and
 * remains usable after a catch, in the spirit of treating bailout as a
 * first-class always-available exit (Flückiger et al.). vpanic/vassert
 * stay reserved for genuine engine-invariant violations.
 *
 * Fault injection. FaultConfig describes a deterministic schedule of
 * induced failures keyed on per-site event ordinals, so a faulting run
 * is exactly reproducible: the same config and program always fault at
 * the same allocation/compile/code-entry. Environment syntax
 * (VSPEC_FAULT):
 *
 *   alloc-fail-at=N      mortal allocation N raises OutOfMemory
 *   alloc-fail-every=N   every Nth mortal allocation raises OutOfMemory
 *   gc-every=N           force a full GC before every Nth allocation
 *   compile-fail-at=N    optimizing compile attempt N bails out
 *   compile-fail-every=N every Nth optimizing compile attempt bails out
 *   spurious-deopt-at=N  optimized-code entry N deopts immediately
 *
 * e.g. VSPEC_FAULT=gc-every=64,compile-fail-at=1. GC stress, compile
 * failure and spurious deopt must preserve results bit-identically;
 * alloc-fail surfaces a structured OutOfMemory. The `-every` recurring
 * schedules exist for sustained-abuse stories (vserve quarantine and
 * degradation need faults that keep firing, not one-shots). Injected
 * faults emit `fault` vtrace events and bump the FaultsInjected
 * counter.
 *
 * Precedence: VSPEC_FAULT seeds EngineConfig::faults as the
 * process-wide default; a caller that assigns `config.faults` before
 * constructing an Engine, or calls Engine::setFaultConfig() afterwards,
 * overrides the environment for that engine only (how vserve targets a
 * single isolate). See docs/ROBUSTNESS.md.
 */

#ifndef VSPEC_RUNTIME_GUARD_HH
#define VSPEC_RUNTIME_GUARD_HH

#include <functional>
#include <stdexcept>
#include <string>

#include "support/common.hh"

namespace vspec
{

class Tracer;

// ---------------------------------------------------------------------
// EngineError
// ---------------------------------------------------------------------

enum class EngineErrorKind : u8
{
    OutOfMemory,    //!< simulated heap exhausted (post-GC) or injected
    StackOverflow,  //!< invoke-depth guard or simulated SP into the heap
    FuelExhausted,  //!< EngineConfig::maxFuelCycles or instruction budget
    CompileFailed,  //!< optimizing compile failed where success was required
    TypeError,      //!< program-level type error (non-callable, non-array…)
    RegexBudget,    //!< regex_lite backtracking step budget exceeded
    NumKinds,
};

constexpr u32 kNumEngineErrorKinds =
    static_cast<u32>(EngineErrorKind::NumKinds);

const char *engineErrorKindName(EngineErrorKind k);

/**
 * Catchable structured engine error. Derives from std::runtime_error so
 * existing catch sites (the experiment harness, EXPECT_THROW tests)
 * keep working; what() includes the kind and any frame context.
 */
class EngineError : public std::runtime_error
{
  public:
    static constexpr u32 kNoContext = 0xffffffffu;

    EngineError(EngineErrorKind kind, const std::string &message);

    /**
     * Copy of this error with interpreter-frame context stamped in.
     * The innermost frame wins: an error that already carries context
     * is returned unchanged, so outer frames rethrow transparently.
     */
    EngineError withContext(u32 function, u32 bytecode_offset,
                            u64 cycle) const;

    bool hasContext() const { return function != kNoContext; }

    EngineErrorKind kind;
    std::string message;          //!< bare message, no kind/context
    u32 function = kNoContext;    //!< FunctionId of the faulting frame
    u32 bytecodeOffset = kNoContext;
    u64 cycle = 0;                //!< engine cycles when raised
};

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

struct FaultConfig
{
    /** Raise OutOfMemory on the Nth mortal allocation (1-based; 0 off). */
    u64 allocFailAt = 0;
    /** Raise OutOfMemory on every Nth mortal allocation (recurring). */
    u64 allocFailEvery = 0;
    /** Force a full GC before every Nth mortal allocation (GC stress). */
    u64 gcEveryNAllocs = 0;
    /** Fail the Nth optimizing compile attempt (interpreter fallback). */
    u64 compileFailAt = 0;
    /** Fail every Nth optimizing compile attempt (recurring). */
    u64 compileFailEvery = 0;
    /** Deoptimize at the Nth optimized-code entry (re-enter interpreter). */
    u64 spuriousDeoptAt = 0;

    bool any() const
    {
        return (allocFailAt | allocFailEvery | gcEveryNAllocs
                | compileFailAt | compileFailEvery | spuriousDeoptAt)
               != 0;
    }

    /** Parse the VSPEC_FAULT environment variable (empty when unset). */
    static FaultConfig fromEnv();

    /** An explicitly empty schedule — the per-engine override that
     *  *clears* an inherited VSPEC_FAULT (reads better than `{}` at
     *  call sites). */
    static FaultConfig none() { return FaultConfig{}; }

    /**
     * Parse "key=N,key=N,..." using the keys documented in the file
     * comment. Unknown keys warn through support/logging and are
     * ignored, like VSPEC_TRACE typos.
     */
    static FaultConfig parse(const std::string &spec);
};

/** What Heap::allocate must do at this allocation. */
enum class AllocFault : u8
{
    None,
    ForceGc,  //!< run a full collection first (GC stress)
    Fail,     //!< raise OutOfMemory without attempting the allocation
};

/**
 * Per-engine deterministic fault-injection state: one ordinal counter
 * per site, advanced on every query regardless of configuration so a
 * late-enabled schedule still sees stable numbering. All methods are
 * O(1) increments; with an empty config every site answers "no fault"
 * after one branch.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config = {})
        : config(config)
    {}

    bool enabled() const { return config.any(); }

    /** Called by Heap::allocate for every mortal allocation. */
    AllocFault onAllocation();

    /** @return true when this compile attempt must fail. */
    bool onCompile();

    /** @return true when this optimized-code entry must deopt. */
    bool onOptimizedEntry();

    /** vtrace hookup (set by the engine, same shape as GC's). */
    void
    setTrace(Tracer *tracer, std::function<u64()> clock)
    {
        trace = tracer;
        traceClock = std::move(clock);
    }

    FaultConfig config;
    u64 allocations = 0;
    u64 compiles = 0;
    u64 optimizedEntries = 0;
    u64 injected = 0;  //!< total faults actually delivered

  private:
    void report(const char *site, u64 ordinal);

    Tracer *trace = nullptr;
    std::function<u64()> traceClock;
};

} // namespace vspec

#endif // VSPEC_RUNTIME_GUARD_HH
