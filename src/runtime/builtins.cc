#include "runtime/builtins.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>

#include "runtime/engine.hh"
#include "runtime/guard.hh"
#include "runtime/regex_lite.hh"

namespace vspec
{

namespace
{

/** Program-level receiver mismatch: a catchable TypeError, not an
 *  engine-invariant panic. */
[[noreturn]] void
typeError(Engine &e, const std::string &msg)
{
    e.trace.counters.add(TraceCounter::EngineErrors);
    throw EngineError(EngineErrorKind::TypeError, msg);
}

double
argNum(Engine &e, const std::vector<Value> &args, size_t i,
       double fallback = 0.0)
{
    if (i >= args.size() || !e.vm.isNumber(args[i]))
        return fallback;
    return e.vm.numberOf(args[i]);
}

std::string
argStr(Engine &e, const std::vector<Value> &args, size_t i)
{
    if (i >= args.size())
        return "";
    return e.vm.coerceToString(args[i]);
}

/** Compiled-pattern cache: regex compilation is expensive and V8
 *  caches RegExp objects; key by pattern text. Shared across engines,
 *  so vpar worker threads lock around the map; the returned reference
 *  stays valid (map entries are never erased) and matching itself is
 *  const, so it runs outside the lock. */
RegexLite &
cachedRegex(const std::string &pattern)
{
    static std::mutex mu;
    static std::map<std::string, RegexLite> cache;
    std::unique_lock<std::mutex> lock(mu);
    auto it = cache.find(pattern);
    if (it == cache.end())
        it = cache.emplace(pattern, RegexLite(pattern)).first;
    return it->second;
}

} // namespace

Value
dispatchBuiltin(Engine &e, BuiltinId id, Value this_value,
                const std::vector<Value> &args)
{
    VMContext &vm = e.vm;
    e.chargeCycles(10);  // call + dispatch overhead

    switch (id) {
      case BuiltinId::None:
        vpanic("dispatch of non-builtin");

      case BuiltinId::Print: {
        std::string line;
        for (size_t i = 0; i < args.size(); i++) {
            if (i)
                line += " ";
            line += vm.coerceToString(args[i]);
        }
        e.consoleOut += line + "\n";
        e.chargeCycles(20 + line.size());
        return vm.undefinedValue;
      }

      // ---- Math ------------------------------------------------------
      case BuiltinId::MathFloor:
        e.chargeCycles(4);
        return vm.newNumber(std::floor(argNum(e, args, 0)));
      case BuiltinId::MathCeil:
        e.chargeCycles(4);
        return vm.newNumber(std::ceil(argNum(e, args, 0)));
      case BuiltinId::MathRound:
        e.chargeCycles(4);
        return vm.newNumber(std::floor(argNum(e, args, 0) + 0.5));
      case BuiltinId::MathAbs:
        e.chargeCycles(2);
        return vm.newNumber(std::abs(argNum(e, args, 0)));
      case BuiltinId::MathSqrt:
        e.chargeCycles(15);
        return vm.newNumber(std::sqrt(argNum(e, args, 0)));
      case BuiltinId::MathMin: {
        e.chargeCycles(3 + 2 * args.size());
        double m = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < args.size(); i++)
            m = std::min(m, argNum(e, args, i));
        return vm.newNumber(m);
      }
      case BuiltinId::MathMax: {
        e.chargeCycles(3 + 2 * args.size());
        double m = -std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < args.size(); i++)
            m = std::max(m, argNum(e, args, i));
        return vm.newNumber(m);
      }
      case BuiltinId::MathPow:
        e.chargeCycles(40);
        return vm.newNumber(std::pow(argNum(e, args, 0),
                                     argNum(e, args, 1)));
      case BuiltinId::MathSin:
        e.chargeCycles(30);
        return vm.newNumber(std::sin(argNum(e, args, 0)));
      case BuiltinId::MathCos:
        e.chargeCycles(30);
        return vm.newNumber(std::cos(argNum(e, args, 0)));
      case BuiltinId::MathExp:
        e.chargeCycles(35);
        return vm.newNumber(std::exp(argNum(e, args, 0)));
      case BuiltinId::MathLog:
        e.chargeCycles(35);
        return vm.newNumber(std::log(argNum(e, args, 0)));
      case BuiltinId::MathAtan2:
        e.chargeCycles(40);
        return vm.newNumber(std::atan2(argNum(e, args, 0),
                                       argNum(e, args, 1)));
      case BuiltinId::MathRandom:
        e.chargeCycles(8);
        return vm.newNumber(e.random());

      // ---- String ------------------------------------------------------
      case BuiltinId::StringCharCodeAt: {
        e.chargeCycles(4);
        if (!vm.isString(this_value))
            return vm.newNumber(std::nan(""));
        Addr s = this_value.asAddr();
        i64 i = static_cast<i64>(argNum(e, args, 0));
        if (i < 0 || i >= static_cast<i64>(vm.stringLength(s)))
            return vm.newNumber(std::nan(""));
        return Value::smi(vm.heap.readU8(
            s + HeapLayout::kStringDataOffset + static_cast<u32>(i)));
      }
      case BuiltinId::StringCharAt: {
        e.chargeCycles(12);
        if (!vm.isString(this_value))
            return Value::heap(vm.newString(""));
        Addr s = this_value.asAddr();
        i64 i = static_cast<i64>(argNum(e, args, 0));
        if (i < 0 || i >= static_cast<i64>(vm.stringLength(s)))
            return Value::heap(vm.newString(""));
        char c = static_cast<char>(vm.heap.readU8(
            s + HeapLayout::kStringDataOffset + static_cast<u32>(i)));
        return Value::heap(vm.newString(std::string(1, c)));
      }
      case BuiltinId::StringSubstring: {
        std::string s = vm.coerceToString(this_value);
        i64 a = static_cast<i64>(argNum(e, args, 0));
        i64 b = static_cast<i64>(argNum(e, args, 1,
                                        static_cast<double>(s.size())));
        a = std::clamp<i64>(a, 0, static_cast<i64>(s.size()));
        b = std::clamp<i64>(b, 0, static_cast<i64>(s.size()));
        if (a > b)
            std::swap(a, b);
        e.chargeCycles(10 + static_cast<u64>(b - a) / 2);
        return Value::heap(vm.newString(s.substr(static_cast<size_t>(a),
                                                 static_cast<size_t>(b - a))));
      }
      case BuiltinId::StringIndexOf: {
        std::string s = vm.coerceToString(this_value);
        std::string needle = argStr(e, args, 0);
        e.chargeCycles(6 + s.size() / 2);
        size_t at = s.find(needle);
        return Value::smi(at == std::string::npos
                          ? -1 : static_cast<i32>(at));
      }
      case BuiltinId::StringSplit: {
        std::string s = vm.coerceToString(this_value);
        std::string sep = argStr(e, args, 0);
        e.chargeCycles(12 + s.size());
        Addr arr = vm.newArray(ElementKind::Tagged, 0, 8);
        TempRootScope scope(vm.heap.gc);
        scope.pin(Value::heap(arr));
        size_t start = 0;
        u32 count = 0;
        if (sep.empty()) {
            for (char c : s) {
                vm.arraySet(arr, count++,
                            Value::heap(vm.newString(std::string(1, c))));
            }
        } else {
            for (;;) {
                size_t at = s.find(sep, start);
                std::string piece = at == std::string::npos
                    ? s.substr(start) : s.substr(start, at - start);
                vm.arraySet(arr, count++, Value::heap(vm.newString(piece)));
                if (at == std::string::npos)
                    break;
                start = at + sep.size();
            }
        }
        return Value::heap(arr);
      }
      case BuiltinId::StringFromCharCode: {
        e.chargeCycles(8 + 2 * args.size());
        std::string s;
        for (size_t i = 0; i < args.size(); i++)
            s += static_cast<char>(
                static_cast<int>(argNum(e, args, i)) & 0xff);
        return Value::heap(vm.newString(s));
      }

      // ---- Array -------------------------------------------------------
      case BuiltinId::ArrayPush: {
        e.chargeCycles(6);
        if (!vm.isArray(this_value))
            typeError(e, "push on non-array");
        Addr arr = this_value.asAddr();
        for (Value v : args)
            vm.arraySet(arr, vm.arrayLength(arr), v);
        return vm.newInt(vm.arrayLength(arr));
      }
      case BuiltinId::ArrayPop: {
        e.chargeCycles(6);
        if (!vm.isArray(this_value))
            typeError(e, "pop on non-array");
        Addr arr = this_value.asAddr();
        u32 len = vm.arrayLength(arr);
        if (len == 0)
            return vm.undefinedValue;
        Value v = vm.arrayGet(arr, len - 1);
        vm.heap.writeU32(arr + HeapLayout::kArrayLengthOffset, len - 1);
        return v;
      }
      case BuiltinId::ArrayJoin: {
        if (!vm.isArray(this_value))
            typeError(e, "join on non-array");
        std::string sep = args.empty() ? "," : argStr(e, args, 0);
        Addr arr = this_value.asAddr();
        std::string out;
        u32 len = vm.arrayLength(arr);
        for (u32 i = 0; i < len; i++) {
            if (i)
                out += sep;
            out += vm.coerceToString(vm.arrayGet(arr, i));
        }
        e.chargeCycles(10 + out.size());
        return Value::heap(vm.newString(out));
      }
      case BuiltinId::ArrayIndexOf: {
        if (!vm.isArray(this_value))
            typeError(e, "indexOf on non-array");
        Addr arr = this_value.asAddr();
        u32 len = vm.arrayLength(arr);
        e.chargeCycles(6 + len / 2);
        Value needle = args.empty() ? vm.undefinedValue : args[0];
        for (u32 i = 0; i < len; i++) {
            if (vm.strictEquals(vm.arrayGet(arr, i), needle))
                return Value::smi(static_cast<i32>(i));
        }
        return Value::smi(-1);
      }

      // ---- global helpers -------------------------------------------------
      case BuiltinId::ParseInt: {
        std::string s = argStr(e, args, 0);
        e.chargeCycles(8 + s.size());
        int base = static_cast<int>(argNum(e, args, 1, 10.0));
        char *end = nullptr;
        long long v = std::strtoll(s.c_str(), &end, base);
        if (end == s.c_str())
            return vm.newNumber(std::nan(""));
        return vm.newInt(v);
      }
      case BuiltinId::ParseFloat: {
        std::string s = argStr(e, args, 0);
        e.chargeCycles(8 + s.size());
        char *end = nullptr;
        double v = std::strtod(s.c_str(), &end);
        if (end == s.c_str())
            return vm.newNumber(std::nan(""));
        return vm.newNumber(v);
      }

      // ---- irregexp-lite ----------------------------------------------------
      case BuiltinId::ReTest: {
        std::string pat = argStr(e, args, 0);
        std::string subject = argStr(e, args, 1);
        u64 steps = 0;
        bool ok = cachedRegex(pat).test(subject, steps);
        e.chargeCycles(30 + steps * 2);
        return vm.boolean(ok);
      }
      case BuiltinId::ReCount: {
        std::string pat = argStr(e, args, 0);
        std::string subject = argStr(e, args, 1);
        u64 steps = 0;
        u32 n = cachedRegex(pat).countMatches(subject, steps);
        e.chargeCycles(30 + steps * 2);
        return vm.newInt(n);
      }
      case BuiltinId::ReReplace: {
        std::string pat = argStr(e, args, 0);
        std::string subject = argStr(e, args, 1);
        std::string repl = argStr(e, args, 2);
        u64 steps = 0;
        std::string out = cachedRegex(pat).replaceAll(subject, repl, steps);
        e.chargeCycles(30 + steps * 2 + out.size());
        return Value::heap(vm.newString(out));
      }
    }
    vpanic("unhandled builtin");
}

void
installBuiltinGlobals(Engine &e)
{
    VMContext &vm = e.vm;

    auto makeBuiltin = [&](BuiltinId id, u32 argc) -> Value {
        FunctionInfo &fn = e.functions.createBuiltin(builtinName(id), id,
                                                     argc);
        fn.cellAddr = vm.newFunctionCell(fn.id);
        return Value::heap(fn.cellAddr);
    };
    auto bindGlobal = [&](const std::string &name, Value v) {
        e.globals.store(e.globals.indexOf(name), v);
    };

    // Global functions.
    bindGlobal("print", makeBuiltin(BuiltinId::Print, 1));
    bindGlobal("parseInt", makeBuiltin(BuiltinId::ParseInt, 2));
    bindGlobal("parseFloat", makeBuiltin(BuiltinId::ParseFloat, 1));
    bindGlobal("reTest", makeBuiltin(BuiltinId::ReTest, 2));
    bindGlobal("reCount", makeBuiltin(BuiltinId::ReCount, 2));
    bindGlobal("reReplace", makeBuiltin(BuiltinId::ReReplace, 3));

    // Math namespace object.
    Addr math = vm.newObject();
    auto method = [&](Addr obj, const char *name, BuiltinId id, u32 argc) {
        vm.setProperty(obj, vm.names.intern(name), makeBuiltin(id, argc));
    };
    method(math, "floor", BuiltinId::MathFloor, 1);
    method(math, "ceil", BuiltinId::MathCeil, 1);
    method(math, "round", BuiltinId::MathRound, 1);
    method(math, "abs", BuiltinId::MathAbs, 1);
    method(math, "sqrt", BuiltinId::MathSqrt, 1);
    method(math, "min", BuiltinId::MathMin, 2);
    method(math, "max", BuiltinId::MathMax, 2);
    method(math, "pow", BuiltinId::MathPow, 2);
    method(math, "sin", BuiltinId::MathSin, 1);
    method(math, "cos", BuiltinId::MathCos, 1);
    method(math, "exp", BuiltinId::MathExp, 1);
    method(math, "log", BuiltinId::MathLog, 1);
    method(math, "atan2", BuiltinId::MathAtan2, 2);
    method(math, "random", BuiltinId::MathRandom, 0);
    bindGlobal("Math", Value::heap(math));

    // String namespace (fromCharCode) + the method builtins themselves
    // (reachable through named loads off string/array receivers).
    Addr string_ns = vm.newObject();
    method(string_ns, "fromCharCode", BuiltinId::StringFromCharCode, 1);
    bindGlobal("String", Value::heap(string_ns));

    makeBuiltin(BuiltinId::StringCharCodeAt, 1);
    makeBuiltin(BuiltinId::StringCharAt, 1);
    makeBuiltin(BuiltinId::StringSubstring, 2);
    makeBuiltin(BuiltinId::StringIndexOf, 1);
    makeBuiltin(BuiltinId::StringSplit, 1);
    makeBuiltin(BuiltinId::ArrayPush, 1);
    makeBuiltin(BuiltinId::ArrayPop, 0);
    makeBuiltin(BuiltinId::ArrayJoin, 1);
    makeBuiltin(BuiltinId::ArrayIndexOf, 1);
}

} // namespace vspec
