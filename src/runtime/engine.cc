#include "runtime/engine.hh"

#include <algorithm>
#include <cmath>

#include "frontend/parser.hh"
#include "interp/interpreter.hh"
#include "runtime/builtins.hh"
#include "runtime/tiering.hh"
#include "verify/verify.hh"

namespace vspec
{

Engine::Engine(EngineConfig cfg)
    : config(cfg),
      vm(cfg.heapSize),
      gc(vm),
      globals(vm),
      functions(),
      rng(cfg.randomSeed),
      trace(cfg.trace),
      faults(cfg.faults)
{
    vm.heap.gc = &gc;
    if (faults.enabled()) {
        // Hooked after VMContext bootstrap: allocation ordinals start
        // counting at engine construction, deterministically. Counters
        // record injections even with event tracing off.
        vm.heap.faults = &faults;
        faults.setTrace(&trace, [this] { return totalCycles(); });
    }
    if (trace.anyEnabled()) {
        gc.setTrace(&trace, [this] { return totalCycles(); });
        trace.setFunctionNamer([this](u32 id) {
            return id < functions.count() ? functions.at(id).name
                                          : "fn#" + std::to_string(id);
        });
    }
    if (cfg.layoutJitterBytes > 0) {
        // Layout perturbation: every subsequent allocation lands at a
        // shifted address, changing cache-set mappings. Shift both
        // regions (immortal: maps/globals/interned strings; mortal:
        // workload data).
        u32 n = (cfg.layoutJitterBytes + 7u) & ~7u;
        vm.heap.allocateImmortal(n, vm.maps.mapWord(vm.maps.fixedArrayMap()),
                                 0);
        vm.heap.allocate(n, vm.maps.mapWord(vm.maps.fixedArrayMap()), 0);
    }
    interpreter = std::make_unique<Interpreter>(*this);
    timing = makeTimingModel(cfg.cpu);
    core = std::make_unique<FunctionalCore>(
        vm.heap,
        [this](RuntimeFn fn, MachineState &st, const MInst &m) {
            lastCallArgc = static_cast<int>(m.imm);
            handleRuntimeCall(fn, st);
        });
    core->predecode = cfg.predecode;
    core->verifyPredecode = cfg.passes.verifyLevel != VerifyLevel::Off;
    if (cfg.maxFuelCycles != 0)
        core->fuelCheck = [this] { checkFuel(); };
    sampler.setPeriod(cfg.samplerPeriodCycles);
    if (config.deoptCost) {
        // vdcost: episode hooks only read cycle counters — simulated
        // cycles stay bit-identical with tracking on or off.
        episodes.enable(&trace);
    }
    if (config.profiling) {
        // Calling-context profiling implies sampling; the shadow stack
        // and CCT are host-side only, so simulated cycles are
        // unaffected.
        config.samplerEnabled = true;
        sampler.enableProfile(true);
        sampler.setTrace(&trace);
    }
    gc.addRootProvider(this);
    gc.addRootProvider(interpreter.get());
    installBuiltins();
}

Engine::~Engine()
{
    gc.removeRootProvider(this);
    gc.removeRootProvider(interpreter.get());
    if (trace.anyEnabled()) {
        try {
            trace.writeFiles(traceLabel);
        } catch (...) {
            // Trace output must never turn engine teardown fatal.
        }
    }
}

void
Engine::installBuiltins()
{
    installBuiltinGlobals(*this);
}

void
Engine::setFaultConfig(const FaultConfig &fault_config)
{
    config.faults = fault_config;
    faults.config = fault_config;
    // The constructor skips the hookup when it starts fault-free; wire
    // it unconditionally here so a late-enabled schedule (or a cleared
    // one) behaves exactly like a construction-time config. Ordinals
    // keep counting either way — see the header comment.
    vm.heap.faults = &faults;
    faults.setTrace(&trace, [this] { return totalCycles(); });
}

void
Engine::loadProgram(const std::string &source)
{
    ProgramSource prog = parseProgram(source);
    BytecodeCompiler compiler(vm, globals, functions);
    FunctionId main_id = compiler.compileProgram(prog);
    invoke(main_id, vm.undefinedValue, {});
}

Value
Engine::call(const std::string &name, const std::vector<Value> &args)
{
    FunctionId id = functions.idOf(name);
    if (id == kInvalidFunction) {
        trace.counters.add(TraceCounter::EngineErrors);
        throw EngineError(EngineErrorKind::TypeError,
                          "no such function: " + name);
    }
    return invoke(id, vm.undefinedValue, args);
}

void
Engine::checkFuel() const
{
    if (config.maxFuelCycles != 0 && totalCycles() > config.maxFuelCycles) {
        throw EngineError(EngineErrorKind::FuelExhausted,
                          "fuel budget of "
                              + std::to_string(config.maxFuelCycles)
                              + " cycles exhausted");
    }
}

void
Engine::chargeCycles(u64 c)
{
    if (jitDepth > 0)
        timing->advanceExternal(c);
    else
        flushInterpreterCost(c);
}

Value
Engine::callBuiltin(BuiltinId id, Value this_value,
                    const std::vector<Value> &args)
{
    return dispatchBuiltin(*this, id, this_value, args);
}

void
Engine::storeGlobal(u32 cell, Value v)
{
    globals.store(cell, v);
    // Constant-cell dependency invalidation: any optimized code that
    // embedded the old value is now wrong — deopt-lazy.
    std::vector<u32> deps = globals.takeDependencies(cell);
    for (u32 code_id : deps) {
        CodeObject &code = *codeObjects.at(code_id);
        if (code.valid) {
            code.valid = false;
            lazyDeopts++;
            FunctionInfo &dep_fn = functions.at(code.function);
            // Invalidation has no single deopt pc; report the
            // function's first source position.
            SrcPos dpos = dep_fn.bcPositions.empty()
                ? SrcPos{} : dep_fn.bcPositions.front();
            deoptLog.push_back({code.function,
                                DeoptReason::CodeDependencyChange,
                                DeoptCategory::Lazy, totalCycles(), 0,
                                dpos});
            trace.counters.add(TraceCounter::DeoptsLazy);
            trace.counters.addDeopt(DeoptReason::CodeDependencyChange);
            if (trace.on(TraceCategory::Deopt))
                trace.emit(TraceCategory::Deopt, TraceEventKind::Instant,
                           deoptReasonName(
                               DeoptReason::CodeDependencyChange),
                           totalCycles(), code.function, 0,
                           (static_cast<u64>(
                                static_cast<u32>(dpos.line)) << 32)
                               | cell);
            episodes.onDeopt(dep_fn, DeoptReason::CodeDependencyChange,
                             DeoptCategory::Lazy, 0, dpos,
                             interpreterCycles, totalCycles());
        }
    }
}

void
Engine::discardCode(FunctionInfo &fn)
{
    if (fn.hasCode()) {
        codeObjects.at(fn.codeId)->valid = false;
        fn.codeId = 0xffffffffu;
    }
}

void
Engine::maybeOptimize(FunctionInfo &fn)
{
    if (config.tiering.shouldOptimize(fn)) {
        trace.counters.add(TraceCounter::TierUps);
        if (trace.on(TraceCategory::Tiering))
            trace.emit(TraceCategory::Tiering, TraceEventKind::Instant,
                       "tier-up", totalCycles(), fn.id,
                       fn.invocationCount, fn.backEdgeCount);
        compileFunction(fn);
    }
}

bool
Engine::compileFunction(FunctionInfo &fn)
{
    u64 compile_start = totalCycles();
    bool traced = trace.on(TraceCategory::Compile);
    if (traced)
        trace.emit(TraceCategory::Compile, TraceEventKind::Begin,
                   "compile", totalCycles(), fn.id,
                   static_cast<u32>(fn.bytecode.size()));

    if (faults.enabled() && faults.onCompile()) {
        // Injected compiler failure: fall back to the interpreter for
        // this attempt, but — unlike a real bailout — leave the
        // function optimizable so a later tier-up retry can succeed.
        trace.counters.add(TraceCounter::CompileBailouts);
        if (traced)
            trace.emit(TraceCategory::Compile, TraceEventKind::End,
                       "compile", totalCycles(), fn.id, 0, 1);
        return false;
    }

    if (config.passes.verifyLevel != VerifyLevel::Off)
        enforce(verifyBytecode(fn, globals.count()), "bytecode");

    CompilerEnv env{vm, globals, functions};
    auto graph = buildGraph(env, fn);
    if (!graph.has_value()) {
        fn.optimizationDisabled = true;
        trace.counters.add(TraceCounter::CompileBailouts);
        if (traced)
            trace.emit(TraceCategory::Compile, TraceEventKind::End,
                       "compile", totalCycles(), fn.id, 0, 1);
        return false;
    }
    PassConfig passes = config.passes;
    passes.smiLoadFusion = config.smiLoadExtension;
    passes.trace = &trace;
    passes.traceTimestamp = totalCycles();
    passes.traceFunction = fn.id;
    PassStats passStats = runPasses(*graph, passes);
    if (passes.proveRedundancy) {
        for (size_t i = 0; i < ProofStats::kGroups; i++) {
            proofStats.proven[i] += passStats.proof.proven[i];
            proofStats.needed[i] += passStats.proof.needed[i];
            proofStats.unknown[i] += passStats.proof.unknown[i];
        }
        proofStats.elided += passStats.proof.elided;
        appendCheckAudit(*graph, fn, checkAudit);
    }

    CodegenConfig cg;
    cg.flavour = config.isa;
    cg.removeDeoptBranches = config.removeDeoptBranches;
    cg.smiExtension = config.smiLoadExtension;
    cg.mapCheckExtension = config.mapCheckExtension;
    cg.maxGprs = config.maxGprs;
    cg.maxFprs = config.maxFprs;
    cg.verifyAllocation = config.passes.verifyLevel != VerifyLevel::Off;
    cg.trace = &trace;
    cg.traceTimestamp = totalCycles();
    cg.traceFunction = fn.id;
    auto code = generateCode(env, *graph, cg);
    if (config.passes.verifyLevel != VerifyLevel::Off)
        enforce(verifyCodeObject(*code), "code object");
    trace.counters.add(TraceCounter::RegallocSpills,
                       code->raStats.spillStores);
    trace.counters.add(TraceCounter::RegallocSplits, code->raStats.splits);
    trace.counters.add(TraceCounter::RegallocReloads, code->raStats.reloads);
    trace.counters.add(TraceCounter::RegallocSpillSlots,
                       code->raStats.spillSlots);
    trace.counters.add(TraceCounter::RegallocCalleeSaved,
                       code->raStats.calleeSavedUsed);
    code->id = static_cast<u32>(codeObjects.size());
    fn.codeId = code->id;
    for (u32 cell : code->dependsOnGlobalCells)
        globals.addConstantDependency(cell, code->id);
    u32 instructions = static_cast<u32>(code->code.size());
    codeObjects.push_back(std::move(code));
    compilations++;
    trace.counters.add(TraceCounter::Compilations);
    if (traced)
        trace.emit(TraceCategory::Compile, TraceEventKind::End, "compile",
                   totalCycles(), fn.id, instructions);
    episodes.onCompile(fn.id, compile_start, totalCycles());
    return true;
}

namespace
{

/** Exception-safe decrement for the re-entry depth counter (and the
 *  structurally identical jitDepth counter in runOptimized): an
 *  EngineError thrown anywhere below must leave the engine reusable. */
struct DepthGuard
{
    explicit DepthGuard(int &d) : depth(d) { depth++; }
    ~DepthGuard() { depth--; }
    int &depth;
};

/** vprof: exception-safe shadow-call-stack frame. Only touches the
 *  sampler when profiling is enabled, so the default path stays
 *  untouched. */
struct ProfFrameScope
{
    ProfFrameScope(PcSampler &s, bool on, ProfFrameKind kind,
                   FunctionId fn, u32 code_id)
        : sampler(s), active(on)
    {
        if (active)
            sampler.pushFrame(kind, fn, code_id);
    }
    ~ProfFrameScope()
    {
        if (active)
            sampler.popFrame();
    }
    PcSampler &sampler;
    bool active;
};

/** vdcost: exception-safe episode frame bracket around invoke()'s
 *  tier-dispatched execution. Hooks only read the engine's cycle
 *  counters, never charge. */
struct EpisodeFrameScope
{
    EpisodeFrameScope(Engine &e, FunctionId fn, bool optimized)
        : engine(e), active(e.episodes.enabled())
    {
        if (active)
            engine.episodes.onFrameEnter(fn, optimized,
                                         engine.interpreterCycles,
                                         engine.totalCycles());
    }
    ~EpisodeFrameScope()
    {
        if (active)
            engine.episodes.onFrameLeave(engine.interpreterCycles,
                                         engine.totalCycles());
    }
    Engine &engine;
    bool active;
};

} // namespace

Value
Engine::invoke(FunctionId id, Value this_value,
               const std::vector<Value> &args)
{
    // Host recursion guard: interpreter, JIT, and builtins re-enter
    // invoke() for nested calls, so unbounded MiniJS recursion would
    // otherwise exhaust the host stack. Raise a catchable error first.
    if (invokeDepth >= static_cast<int>(config.maxInvokeDepth)) {
        trace.counters.add(TraceCounter::EngineErrors);
        throw EngineError(EngineErrorKind::StackOverflow,
                          "call depth exceeded maxInvokeDepth="
                              + std::to_string(config.maxInvokeDepth))
            .withContext(id, 0, totalCycles());
    }
    DepthGuard depth_guard(invokeDepth);
    if (config.maxFuelCycles != 0)
        checkFuel();

    FunctionInfo &fn = functions.at(id);
    if (fn.builtin != BuiltinId::None) {
        ProfFrameScope prof(sampler, config.profiling,
                            ProfFrameKind::Builtin, id, kNoCodeId);
        return callBuiltin(fn.builtin, this_value, args);
    }

    fn.invocationCount++;
    trace.counters.add(TraceCounter::Invocations);

    if (config.enableOptimization) {
        if (fn.hasCode() && !codeObjects.at(fn.codeId)->valid) {
            // deopt-lazy: the code was invalidated from outside; it is
            // discarded at this (re-)entry, as in V8's lazy unlinking.
            SrcPos dpos = fn.bcPositions.empty()
                ? SrcPos{} : fn.bcPositions.front();
            deoptLog.push_back({id, DeoptReason::SharedCodeDeoptimized,
                                DeoptCategory::Lazy, totalCycles(), 0,
                                dpos});
            trace.counters.add(TraceCounter::DeoptsLazy);
            trace.counters.addDeopt(DeoptReason::SharedCodeDeoptimized);
            if (trace.on(TraceCategory::Deopt))
                trace.emit(TraceCategory::Deopt, TraceEventKind::Instant,
                           deoptReasonName(
                               DeoptReason::SharedCodeDeoptimized),
                           totalCycles(), id, 0,
                           static_cast<u64>(
                               static_cast<u32>(dpos.line)) << 32);
            episodes.onDeopt(fn, DeoptReason::SharedCodeDeoptimized,
                             DeoptCategory::Lazy, 0, dpos,
                             interpreterCycles, totalCycles());
            fn.codeId = 0xffffffffu;
            fn.invocationCount = 0;
        }
        if (!fn.hasCode())
            maybeOptimize(fn);
    }

    bool optimized = config.enableOptimization && fn.hasCode();
    trace.counters.add(optimized ? TraceCounter::OptimizedCalls
                                 : TraceCounter::InterpCalls);
    bool traced = trace.on(TraceCategory::Exec);
    const char *tier = optimized ? "optimized" : "interp";
    if (traced)
        trace.emit(TraceCategory::Exec, TraceEventKind::Begin, tier,
                   totalCycles(), id, optimized ? 1 : 0);
    Value result;
    {
        // A frame that deopts mid-call keeps its Jit kind: the samples
        // its interpreter tail collects still belong to this context.
        ProfFrameScope prof(sampler, config.profiling,
                            optimized ? ProfFrameKind::Jit
                                      : ProfFrameKind::Interp,
                            id, optimized ? fn.codeId : kNoCodeId);
        EpisodeFrameScope episode_frame(*this, id, optimized);
        result = optimized
            ? runOptimized(fn, this_value, args)
            : interpreter->callFunction(fn, this_value, args);
    }
    if (traced)
        trace.emit(TraceCategory::Exec, TraceEventKind::End, tier,
                   totalCycles(), id, optimized ? 1 : 0);
    return result;
}

Value
Engine::materialize(const DeoptLocation &loc, const MachineState &st)
{
    auto fromBits = [&](u64 raw) -> Value {
        switch (loc.rep) {
          case Rep::Tagged:
            return Value::fromBits(static_cast<u32>(raw));
          case Rep::Int32:
            return vm.newInt(static_cast<i32>(static_cast<u32>(raw)));
          case Rep::Bool:
            return vm.boolean((raw & 0xffffffffu) != 0);
          default:
            return vm.undefinedValue;
        }
    };
    switch (loc.where) {
      case DeoptLocation::Where::Reg:
        return fromBits(st.x[loc.reg]);
      case DeoptLocation::Where::FReg:
        return vm.newNumber(st.d[loc.reg]);
      case DeoptLocation::Where::Spill: {
        Addr a = static_cast<Addr>(st.x[kSpReg]) + 8 * loc.slot;
        if (loc.rep == Rep::Float64)
            return vm.newNumber(vm.heap.readF64(a));
        return fromBits(vm.heap.readU64(a));
      }
      case DeoptLocation::Where::ConstTagged:
        return Value::fromBits(static_cast<u32>(loc.imm));
      case DeoptLocation::Where::ConstI32:
        return vm.newInt(static_cast<i32>(loc.imm));
      case DeoptLocation::Where::ConstF64:
        return vm.newNumber(loc.fval);
      case DeoptLocation::Where::None:
        return vm.undefinedValue;
    }
    return vm.undefinedValue;
}

Value
Engine::runOptimized(FunctionInfo &fn, Value this_value,
                     const std::vector<Value> &args)
{
    CodeObject &code = *codeObjects.at(fn.codeId);
    code.entries++;

    if (faults.enabled() && faults.onOptimizedEntry()) {
        // Injected spurious deopt: account for it exactly like a real
        // eager deopt (log, counters, discard, re-warm), then run the
        // whole call in the interpreter from bytecode offset 0, so
        // results stay bit-identical to an uninjected run.
        code.eagerDeopts++;
        eagerDeopts++;
        SrcPos dpos = fn.bcPositions.empty()
            ? SrcPos{} : fn.bcPositions.front();
        deoptLog.push_back({fn.id, DeoptReason::DeoptimizeNow,
                            DeoptCategory::Eager, totalCycles(), 0,
                            dpos});
        trace.counters.add(TraceCounter::DeoptsEager);
        trace.counters.addDeopt(DeoptReason::DeoptimizeNow);
        if (trace.on(TraceCategory::Deopt))
            trace.emit(TraceCategory::Deopt, TraceEventKind::Instant,
                       deoptReasonName(DeoptReason::DeoptimizeNow),
                       totalCycles(), fn.id, 0,
                       static_cast<u64>(
                           static_cast<u32>(dpos.line)) << 32);
        episodes.onDeopt(fn, DeoptReason::DeoptimizeNow,
                         DeoptCategory::Eager, 0, dpos,
                         interpreterCycles, totalCycles());
        discardCode(fn);
        config.tiering.onDeopt(fn, &trace, totalCycles());
        chargeCycles(600);
        episodes.onBailoutAccounted(interpreterCycles, totalCycles());
        return interpreter->callFunction(fn, this_value, args);
    }

    MachineState st;
    // Nested JIT frames chain below the parent frame's SP rather than
    // restarting at stackTop(), which would overlap the parent's spill
    // slots.
    u64 sp_base = vm.heap.stackTop();
    if (!activeMachines.empty())
        sp_base = activeMachines.back()->sp() & ~15ULL;
    if (sp_base < vm.heap.sizeBytes() - Heap::kStackReserve) {
        trace.counters.add(TraceCounter::EngineErrors);
        throw EngineError(EngineErrorKind::StackOverflow,
                          "simulated stack exhausted entering optimized "
                          "code")
            .withContext(fn.id, 0, totalCycles());
    }
    st.sp() = sp_base;
    st.x[0] = this_value.bits();
    for (u32 i = 0; i < fn.paramCount && i + 1 < 8; i++) {
        st.x[i + 1] = i < args.size() ? args[i].bits()
                                      : vm.undefinedValue.bits();
    }

    // Exception-safe frame registration: an EngineError raised inside
    // simulated code (or a runtime call it makes) must pop this frame
    // so GC root scanning and tier accounting stay consistent.
    struct FrameScope
    {
        FrameScope(std::vector<MachineState *> &f, MachineState &st)
            : frames(f)
        {
            frames.push_back(&st);
        }
        ~FrameScope() { frames.pop_back(); }
        std::vector<MachineState *> &frames;
    };

    std::vector<Value> regs;
    Value acc = vm.undefinedValue;
    u32 resume_offset = 0;
    {
        DepthGuard jit_guard(jitDepth);
        FrameScope frame_scope(activeMachines, st);
        RunResult r = core->run(code, st, timing.get(),
                                config.samplerEnabled ? &sampler : nullptr);

        if (!r.deopted)
            return Value::fromBits(static_cast<u32>(st.x[0]));

        // ---- deoptimization ---------------------------------------------
        DeoptExitInfo &exit = code.deoptExits.at(r.deoptExit);
        exit.hitCount++;
        code.eagerDeopts++;
        DeoptCategory cat = deoptCategoryOf(exit.reason);
        if (cat == DeoptCategory::Soft)
            softDeopts++;
        else
            eagerDeopts++;
        SrcPos dpos =
            exit.bytecodeOffset < fn.bcPositions.size()
                ? fn.bcPositions[exit.bytecodeOffset] : SrcPos{};
        deoptLog.push_back({fn.id, exit.reason, cat, totalCycles(),
                            exit.bytecodeOffset, dpos});
        trace.counters.add(cat == DeoptCategory::Soft
                               ? TraceCounter::DeoptsSoft
                               : TraceCounter::DeoptsEager);
        trace.counters.addDeopt(exit.reason);
        if (exit.checkId != kNoCheck)
            trace.counters.addCheckSiteHit(code.id, exit.checkId);
        if (trace.on(TraceCategory::Deopt))
            trace.emit(TraceCategory::Deopt, TraceEventKind::Instant,
                       deoptReasonName(exit.reason), totalCycles(), fn.id,
                       exit.bytecodeOffset,
                       (static_cast<u64>(
                            static_cast<u32>(dpos.line)) << 32)
                           | exit.checkId);
        episodes.onDeopt(fn, exit.reason, cat, exit.bytecodeOffset, dpos,
                         interpreterCycles, totalCycles());

        // Reconstruct the interpreter frame from the checkpoint. This
        // runs with `st` still registered: values reachable only from
        // machine registers or spill slots must survive any GC that
        // boxing a number below may trigger. The freshly materialized
        // values are in turn only reachable from this host-side vector,
        // so pin each one until the interpreter frame takes over.
        TempRootScope pins(&gc);
        regs.reserve(exit.regs.size());
        for (const DeoptLocation &loc : exit.regs) {
            regs.push_back(materialize(loc, st));
            pins.pin(regs.back());
        }
        acc = materialize(exit.accumulator, st);
        resume_offset = exit.bytecodeOffset;
    }

    // Discard the code and re-warm (V8 discards on eager deopt too).
    discardCode(fn);
    config.tiering.onDeopt(fn, &trace, totalCycles());

    // The bailout handler's work — frame conversion, code unlinking —
    // happens on the slow path; charge a fixed cost.
    chargeCycles(600);
    episodes.onBailoutAccounted(interpreterCycles, totalCycles());

    return interpreter->resumeFrame(fn, resume_offset, std::move(regs),
                                    acc);
}

void
Engine::handleRuntimeCall(RuntimeFn fn, MachineState &st)
{
    auto val = [&](int reg) {
        return Value::fromBits(static_cast<u32>(st.x[reg]));
    };
    bool returned_value = false;
    auto ret = [&](Value v) {
        st.x[0] = v.bits();
        returned_value = true;
    };
    auto retBool = [&](bool b) { st.x[0] = b ? 1 : 0; };

    // Fixed call overhead (register save/restore, far call).
    timing->advanceExternal(8);

    switch (fn) {
      case RuntimeFn::CallFunction: {
        Addr cell = static_cast<u32>(st.x[0]) & ~1u;
        Value callee = Value::fromBits(static_cast<u32>(st.x[0]));
        if (!vm.isFunction(callee)) {
            trace.counters.add(TraceCounter::EngineErrors);
            throw EngineError(EngineErrorKind::TypeError,
                              "call target is not a function: "
                                  + vm.display(callee));
        }
        FunctionId fid = vm.functionIdOf(cell);
        Value this_v = val(1);
        std::vector<Value> args;
        int argc = lastCallArgc;
        for (int i = 0; i < argc && i + 2 < 8; i++)
            args.push_back(val(i + 2));
        ret(invoke(fid, this_v, args));
        break;
      }
      case RuntimeFn::GenericGetNamed:
        chargeCycles(18);
        ret(genericGetNamed(*this, val(0),
                            static_cast<NameId>(st.x[1]), nullptr));
        break;
      case RuntimeFn::GenericSetNamed:
        chargeCycles(18);
        genericSetNamed(*this, val(0), static_cast<NameId>(st.x[1]),
                        val(2), nullptr);
        break;
      case RuntimeFn::GenericGetElement:
        chargeCycles(14);
        ret(genericGetElement(*this, val(0), val(1), nullptr));
        break;
      case RuntimeFn::GenericSetElement:
        chargeCycles(14);
        genericSetElement(*this, val(0), val(1), val(2), nullptr);
        break;
      case RuntimeFn::GenericAdd:
        chargeCycles(12);
        ret(genericBinaryOp(*this, static_cast<Bc>(st.x[2]), val(0),
                            val(1), nullptr));
        break;
      case RuntimeFn::GenericCompare: {
        chargeCycles(12);
        Value b = genericCompareOp(*this, static_cast<Bc>(st.x[2]),
                                   val(0), val(1), nullptr);
        retBool(b == vm.trueValue);
        break;
      }
      case RuntimeFn::StringConcat: {
        chargeCycles(10);
        ret(genericBinaryOp(*this, Bc::Add, val(0), val(1), nullptr));
        break;
      }
      case RuntimeFn::StringEqual: {
        Value a = val(0), b = val(1);
        if (vm.isString(a) && vm.isString(b)) {
            chargeCycles(6 + std::min(vm.stringLength(a.asAddr()),
                                      vm.stringLength(b.asAddr())) / 4);
            retBool(vm.stringEquals(a.asAddr(), b.asAddr()));
        } else {
            chargeCycles(6);
            retBool(vm.strictEquals(a, b));
        }
        break;
      }
      case RuntimeFn::BoxFloat64:
        chargeCycles(12);
        ret(vm.newNumber(st.d[0]));
        break;
      case RuntimeFn::Float64Mod:
        chargeCycles(18);
        st.d[0] = std::fmod(st.d[0], st.d[1]);
        break;
      case RuntimeFn::CreateArrayRt:
        chargeCycles(30);
        ret(Value::heap(vm.newArray(ElementKind::Smi, 0,
                                    std::max<u32>(4,
                                        static_cast<u32>(st.x[0])))));
        break;
      case RuntimeFn::CreateObjectRt:
        chargeCycles(30);
        ret(Value::heap(vm.newObject()));
        break;
      case RuntimeFn::GrowArrayStore: {
        chargeCycles(12);
        Value arr = val(0);
        if (!vm.isArray(arr)) {
            trace.counters.add(TraceCounter::EngineErrors);
            throw EngineError(EngineErrorKind::TypeError,
                              "indexed store on non-array");
        }
        vm.arraySet(arr.asAddr(),
                    static_cast<i32>(static_cast<u32>(st.x[1])), val(2));
        break;
      }
      case RuntimeFn::TypeOfRt:
        chargeCycles(10);
        ret(Value::heap(vm.internString(vm.typeofString(val(0)))));
        break;
      case RuntimeFn::ToBoolean:
        chargeCycles(6);
        retBool(vm.truthy(val(0)));
        break;
      case RuntimeFn::ToNumberRt:
        chargeCycles(10);
        ret(vm.newNumber(toNumberValue(*this, val(0))));
        break;
      case RuntimeFn::StoreGlobalRt:
        // Cell-state write: bumps the write count and lazily
        // invalidates any code that embedded the old constant.
        chargeCycles(6);
        storeGlobal(static_cast<u32>(st.x[1]), val(0));
        break;
    }

    // Runtime helpers build their results with host-side stores the
    // cache model never sees. On real hardware a freshly written
    // object is cache-hot, so warm its header and first payload lines
    // before optimized code reads them.
    if (returned_value) {
        u32 bits = static_cast<u32>(st.x[0]);
        if ((bits & 1u) != 0 && vm.heap.contains(bits & ~1u, 8)) {
            Addr a = bits & ~1u;
            timing->caches.access(a);
            timing->caches.access(a + 64);
        }
    }
}

void
Engine::forEachRoot(const std::function<void(Value)> &visit)
{
    globals.forEachValue(visit);
    for (u32 i = 0; i < functions.count(); i++) {
        for (Value c : functions.at(i).constants)
            visit(c);
    }
    // Conservative scan of live simulated machine state: registers and
    // the active stack region may hold tagged pointers.
    auto maybeVisit = [&](u32 bits) {
        if ((bits & 1u) != 0 && vm.heap.contains(bits & ~1u, 8))
            visit(Value::fromBits(bits));
    };
    for (MachineState *st : activeMachines) {
        for (int i = 0; i < 28; i++)
            maybeVisit(static_cast<u32>(st->x[i]));
        Addr sp = static_cast<Addr>(st->sp());
        Addr top = vm.heap.stackTop();
        for (Addr a = sp & ~7u; a + 8 <= top; a += 8)
            maybeVisit(static_cast<u32>(vm.heap.readU64(a)));
    }
}

} // namespace vspec
