#include "runtime/deopt_cost.hh"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "support/json.hh"
#include "trace/trace.hh"

namespace vspec
{

// ---------------------------------------------------------------------
// Feedback snapshot
// ---------------------------------------------------------------------

FeedbackSnapshot
snapshotFeedback(const FeedbackVector &fv)
{
    FeedbackSnapshot s;
    s.slots = static_cast<u32>(fv.size());
    for (size_t i = 0; i < fv.size(); i++) {
        const FeedbackSlot &slot = fv.at(static_cast<int>(i));
        switch (slot.kind) {
          case SlotKind::BinaryOp:
          case SlotKind::CompareOp:
          case SlotKind::UnaryOp:
            switch (slot.operands) {
              case OperandFeedback::Smi: s.smiOps++; break;
              case OperandFeedback::Number: s.numberOps++; break;
              case OperandFeedback::String:
              case OperandFeedback::Any: s.anyOps++; break;
              case OperandFeedback::None: break;
            }
            break;
          case SlotKind::Property:
            switch (slot.property.state) {
              case PropertyFeedback::State::Monomorphic:
                s.monomorphic++;
                break;
              case PropertyFeedback::State::Polymorphic:
                s.polymorphic++;
                break;
              case PropertyFeedback::State::Megamorphic:
                s.megamorphic++;
                break;
              case PropertyFeedback::State::None: break;
            }
            if (slot.property.sawGeneric)
                s.genericSites++;
            break;
          case SlotKind::Element:
            if (slot.element.state == ElementFeedback::State::Typed)
                s.monomorphic++;
            else if (slot.element.state
                     == ElementFeedback::State::Megamorphic)
                s.megamorphic++;
            break;
          case SlotKind::CallSite:
            if (slot.call.state == CallFeedback::State::Monomorphic)
                s.monomorphic++;
            else if (slot.call.state == CallFeedback::State::Megamorphic)
                s.megamorphic++;
            break;
          case SlotKind::Global:
            break;
        }
    }
    return s;
}

// ---------------------------------------------------------------------
// EpisodeTracker
// ---------------------------------------------------------------------

void
EpisodeTracker::enable(Tracer *trace)
{
    enabled_ = true;
    trace_ = trace;
}

void
EpisodeTracker::flushOwner(u32 idx, u64 interp_cycles)
{
    if (ownerDepth_ < 0)
        return;
    Frame &owner = stack_[static_cast<size_t>(ownerDepth_)];
    if (!owner.owner || owner.episodeIdx != idx)
        return;
    u64 d = interp_cycles - owner.interpAtOwn;
    episodes_[idx].phases.replay += d;
    attributed_ += static_cast<i64>(d);
    if (trace_ != nullptr)
        trace_->counters.add(TraceCounter::DeoptReplayCycles, d);
    owner.owner = false;
    ownerDepth_ = -1;
}

void
EpisodeTracker::closeEpisode(u32 idx, bool by_reentry, u64 interp_cycles,
                             u64 total_cycles)
{
    DeoptEpisode &ep = episodes_[idx];
    if (ep.closed)
        return;
    flushOwner(idx, interp_cycles);
    ep.closed = true;
    ep.closedByReentry = by_reentry;
    ep.closeCycle = total_cycles;
    FnState &fs = fns_[ep.site.function];
    fs.openEpisode = -1;
    if (by_reentry)
        fs.awaitReopen = true;
    if (pendingBailout_ == static_cast<i64>(idx))
        pendingBailout_ = -1;
    if (trace_ != nullptr && trace_->on(TraceCategory::Deopt))
        trace_->emit(TraceCategory::Deopt, TraceEventKind::AsyncEnd,
                     deoptReasonName(ep.site.reason), total_cycles,
                     ep.site.function, ep.site.bytecodeOffset, ep.id);
}

void
EpisodeTracker::openEpisode(const FunctionInfo &fn, DeoptReason reason,
                            DeoptCategory category, u32 bytecode_offset,
                            SrcPos pos, u64 total_cycles)
{
    DeoptEpisode ep;
    ep.id = static_cast<u32>(episodes_.size());
    ep.site.function = fn.id;
    ep.site.bytecodeOffset = bytecode_offset;
    ep.site.line = pos.line;
    ep.site.reason = reason;
    ep.category = category;
    ep.openCycle = total_cycles;
    ep.feedback = snapshotFeedback(fn.feedback);

    FnState &fs = fns_[fn.id];
    fs.openEpisode = static_cast<i64>(episodes_.size());
    fs.episodesOpened++;
    if (fs.awaitReopen) {
        // The previous episode for this function closed by optimized
        // re-entry and here it deopts again: one opt<->deopt flip.
        fs.awaitReopen = false;
        flipFlops_++;
        if (trace_ != nullptr)
            trace_->counters.add(TraceCounter::DeoptFlipFlops);
    }
    u64 &site_count = siteEpisodes_[ep.site];
    site_count++;
    if (site_count == stormThreshold) {
        stormSites_.insert(ep.site);
        if (trace_ != nullptr)
            trace_->counters.add(TraceCounter::DeoptStormSites);
    }
    if (trace_ != nullptr) {
        trace_->counters.add(TraceCounter::DeoptEpisodes);
        if (trace_->on(TraceCategory::Deopt))
            trace_->emit(TraceCategory::Deopt, TraceEventKind::AsyncBegin,
                         deoptReasonName(reason), total_cycles, fn.id,
                         bytecode_offset, ep.id);
    }
    episodes_.push_back(ep);
}

void
EpisodeTracker::onDeopt(const FunctionInfo &fn, DeoptReason reason,
                        DeoptCategory category, u32 bytecode_offset,
                        SrcPos pos, u64 interp_cycles, u64 total_cycles)
{
    if (!enabled_)
        return;
    FnState &fs = fns_[fn.id];
    // A lazy invalidation (CodeDependencyChange) is followed by a
    // SharedCodeDeoptimized record when the stale code is discarded at
    // re-entry: the successor episode carries the cost, the superseded
    // one closes with what it has. Episodes stay 1:1 with deoptLog.
    if (fs.openEpisode >= 0)
        closeEpisode(static_cast<u32>(fs.openEpisode), false,
                     interp_cycles, total_cycles);
    openEpisode(fn, reason, category, bytecode_offset, pos, total_cycles);
    if (category != DeoptCategory::Lazy)
        pendingBailout_ = static_cast<i64>(episodes_.size()) - 1;
}

void
EpisodeTracker::onBailoutAccounted(u64 interp_cycles, u64 total_cycles)
{
    if (!enabled_ || pendingBailout_ < 0)
        return;
    u32 idx = static_cast<u32>(pendingBailout_);
    DeoptEpisode &ep = episodes_[idx];
    u64 d = total_cycles - ep.openCycle;
    ep.phases.bailout = d;
    attributed_ += static_cast<i64>(d);
    if (trace_ != nullptr)
        trace_->counters.add(TraceCounter::DeoptBailoutCycles, d);
    // The deopting invoke frame now runs the interpreter tail
    // (resumeFrame): arm replay attribution on it unless an outer
    // episode already owns the interpreter clock.
    if (ownerDepth_ < 0 && !stack_.empty() && !ep.closed
        && stack_.back().fn == ep.site.function) {
        Frame &f = stack_.back();
        f.owner = true;
        f.episodeIdx = idx;
        f.interpAtOwn = interp_cycles;
        ownerDepth_ = static_cast<int>(stack_.size()) - 1;
    }
    pendingBailout_ = -1;
}

void
EpisodeTracker::onCompile(FunctionId fn, u64 cycles_before,
                          u64 cycles_after)
{
    if (!enabled_)
        return;
    auto it = fns_.find(fn);
    if (it == fns_.end() || it->second.openEpisode < 0)
        return;
    DeoptEpisode &ep =
        episodes_[static_cast<size_t>(it->second.openEpisode)];
    ep.recompiles++;
    u64 d = cycles_after - cycles_before;
    ep.phases.recompile += d;
    attributed_ += static_cast<i64>(d);
    if (trace_ != nullptr)
        trace_->counters.add(TraceCounter::DeoptRecompileCycles, d);
}

void
EpisodeTracker::onFrameEnter(FunctionId fn, bool optimized,
                             u64 interp_cycles, u64 total_cycles)
{
    if (!enabled_)
        return;
    Frame f;
    f.fn = fn;
    f.optimized = optimized;
    f.totalAtEntry = total_cycles;
    FnState &fs = fns_[fn];
    f.episodesAtEnter = fs.episodesOpened;
    if (optimized) {
        if (fs.openEpisode >= 0) {
            // Re-entered optimized code: the episode is over. Keep its
            // index on this frame to price the residual phase at pop.
            u32 idx = static_cast<u32>(fs.openEpisode);
            closeEpisode(idx, true, interp_cycles, total_cycles);
            f.measuring = true;
            f.episodeIdx = idx;
        }
    } else if (fs.openEpisode >= 0 && ownerDepth_ < 0) {
        // Interpreter replay of a deoptimized function, and no outer
        // episode owns the clock: this frame's interpreter cycles are
        // the episode's replay phase (outermost-owner attribution).
        f.owner = true;
        f.episodeIdx = static_cast<u32>(fs.openEpisode);
        f.interpAtOwn = interp_cycles;
        ownerDepth_ = static_cast<int>(stack_.size());
    }
    stack_.push_back(f);
}

void
EpisodeTracker::onFrameLeave(u64 interp_cycles, u64 total_cycles)
{
    if (!enabled_ || stack_.empty())
        return;
    Frame &f = stack_.back();
    if (f.optimized) {
        u64 delta = total_cycles - f.totalAtEntry;
        FnState &fs = fns_[f.fn];
        // "Clean" call: no episode opened for this function while the
        // call ran — the inclusive cycles are a steady-state sample,
        // not a bailout tail.
        bool clean = fs.episodesOpened == f.episodesAtEnter;
        if (f.measuring && clean && fs.optCalls > 0) {
            DeoptEpisode &ep = episodes_[f.episodeIdx];
            i64 res = static_cast<i64>(delta)
                      - static_cast<i64>(fs.optCycleSum / fs.optCalls);
            ep.phases.residual = res;
            ep.residualMeasured = true;
            attributed_ += res;
        }
        if (clean) {
            fs.optCalls++;
            fs.optCycleSum += delta;
        }
    }
    if (ownerDepth_ == static_cast<int>(stack_.size()) - 1 && f.owner)
        flushOwner(f.episodeIdx, interp_cycles);
    stack_.pop_back();
}

void
EpisodeTracker::finish(u64 interp_cycles, u64 total_cycles)
{
    if (!enabled_)
        return;
    for (auto &[fn, fs] : fns_) {
        (void)fn;
        if (fs.openEpisode >= 0)
            closeEpisode(static_cast<u32>(fs.openEpisode), false,
                         interp_cycles, total_cycles);
    }
}

// ---------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------

DeoptCostSummary
summarizeEpisodes(const EpisodeTracker &tracker,
                  const std::function<std::string(FunctionId)> &namer,
                  u64 total_cycles)
{
    DeoptCostSummary s;
    s.enabled = tracker.enabled();
    s.totalCycles = total_cycles;
    s.attributedCycles = tracker.attributedCycles();
    s.stormSites = tracker.stormSiteCount();
    s.flipFlops = tracker.flipFlopEvents();

    std::map<DeoptSiteKey, DeoptSiteSummary> sites;
    std::map<DeoptSiteKey, std::vector<i64>> costs;
    for (const DeoptEpisode &ep : tracker.episodes()) {
        s.episodes++;
        if (ep.closedByReentry)
            s.closedByReentry++;
        s.bailoutCycles += ep.phases.bailout;
        s.replayCycles += ep.phases.replay;
        s.recompileCycles += ep.phases.recompile;
        s.residualCycles += ep.phases.residual;
        size_t g = static_cast<size_t>(checkGroupOf(ep.site.reason));
        s.episodesPerGroup[g]++;
        s.cyclesPerGroup[g] += ep.phases.total();

        DeoptSiteSummary &row = sites[ep.site];
        if (row.episodes == 0) {
            row.functionId = ep.site.function;
            row.function = namer
                ? namer(ep.site.function)
                : "fn#" + std::to_string(ep.site.function);
            row.bytecodeOffset = ep.site.bytecodeOffset;
            row.line = ep.site.line;
            row.reason = ep.site.reason;
            row.group = checkGroupOf(ep.site.reason);
            row.category = ep.category;
            row.feedback = ep.feedback;
            row.storm = tracker.isStormSite(ep.site);
        }
        row.episodes++;
        row.bailoutCycles += ep.phases.bailout;
        row.replayCycles += ep.phases.replay;
        row.recompileCycles += ep.phases.recompile;
        row.recompiles += ep.recompiles;
        row.residualCycles += ep.phases.residual;
        costs[ep.site].push_back(ep.phases.total());
    }

    for (auto &[key, row] : sites) {
        std::vector<i64> &v = costs[key];
        std::sort(v.begin(), v.end());
        i64 sum = std::accumulate(v.begin(), v.end(), i64{0});
        row.meanCost = sum / static_cast<i64>(v.size());
        row.p50Cost = v[(v.size() - 1) * 50 / 100];
        row.p90Cost = v[(v.size() - 1) * 90 / 100];
        s.sites.push_back(row);
    }
    // Costliest first; full tie-break keeps output byte-stable at any
    // --jobs (vpar invariant).
    std::sort(s.sites.begin(), s.sites.end(),
              [](const DeoptSiteSummary &a, const DeoptSiteSummary &b) {
                  i64 ca = static_cast<i64>(a.bailoutCycles
                                            + a.replayCycles
                                            + a.recompileCycles)
                           + a.residualCycles;
                  i64 cb = static_cast<i64>(b.bailoutCycles
                                            + b.replayCycles
                                            + b.recompileCycles)
                           + b.residualCycles;
                  if (ca != cb)
                      return ca > cb;
                  if (a.functionId != b.functionId)
                      return a.functionId < b.functionId;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.bytecodeOffset != b.bytecodeOffset)
                      return a.bytecodeOffset < b.bytecodeOffset;
                  return static_cast<u32>(a.reason)
                         < static_cast<u32>(b.reason);
              });
    return s;
}

// ---------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------

namespace
{

std::string
fmtFraction(double f)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", f);
    return buf;
}

} // namespace

std::string
deoptCostJson(const DeoptCostSummary &s, const std::string &workload,
              const std::string &isa)
{
    std::ostringstream os;
    os << "{\"schema\":\"vspec-deopt-v1\""
       << ",\"workload\":\"" << jsonEscape(workload) << "\""
       << ",\"isa\":\"" << jsonEscape(isa) << "\""
       << ",\"total_cycles\":" << s.totalCycles
       << ",\"attributed_cycles\":" << s.attributedCycles
       << ",\"recoverable_fraction\":" << fmtFraction(
              s.recoverableFraction())
       << ",\"episodes\":" << s.episodes
       << ",\"closed_by_reentry\":" << s.closedByReentry
       << ",\"storm_sites\":" << s.stormSites
       << ",\"flip_flops\":" << s.flipFlops
       << ",\"phases\":{\"bailout\":" << s.bailoutCycles
       << ",\"replay\":" << s.replayCycles
       << ",\"recompile\":" << s.recompileCycles
       << ",\"residual\":" << s.residualCycles << "}"
       << ",\"groups\":{";
    for (size_t g = 0; g < DeoptCostSummary::kGroups; g++) {
        if (g != 0)
            os << ",";
        os << "\"" << checkGroupName(static_cast<CheckGroup>(g))
           << "\":{\"episodes\":" << s.episodesPerGroup[g]
           << ",\"cycles\":" << s.cyclesPerGroup[g] << "}";
    }
    os << "},\"sites\":[";
    for (size_t i = 0; i < s.sites.size(); i++) {
        const DeoptSiteSummary &r = s.sites[i];
        if (i != 0)
            os << ",";
        os << "{\"function\":\"" << jsonEscape(r.function) << "\""
           << ",\"function_id\":" << r.functionId
           << ",\"line\":" << r.line
           << ",\"bytecode_offset\":" << r.bytecodeOffset
           << ",\"reason\":\"" << jsonEscape(deoptReasonName(r.reason))
           << "\",\"category\":\""
           << deoptCategoryName(r.category)
           << "\",\"group\":\"" << checkGroupName(r.group)
           << "\",\"episodes\":" << r.episodes
           << ",\"storm\":" << (r.storm ? "true" : "false")
           << ",\"bailout\":" << r.bailoutCycles
           << ",\"replay\":" << r.replayCycles
           << ",\"recompile\":" << r.recompileCycles
           << ",\"recompiles\":" << r.recompiles
           << ",\"residual\":" << r.residualCycles
           << ",\"mean\":" << r.meanCost
           << ",\"p50\":" << r.p50Cost
           << ",\"p90\":" << r.p90Cost
           << ",\"feedback\":{\"slots\":" << r.feedback.slots
           << ",\"monomorphic\":" << r.feedback.monomorphic
           << ",\"polymorphic\":" << r.feedback.polymorphic
           << ",\"megamorphic\":" << r.feedback.megamorphic
           << ",\"generic\":" << r.feedback.genericSites
           << ",\"smi_ops\":" << r.feedback.smiOps
           << ",\"number_ops\":" << r.feedback.numberOps
           << ",\"any_ops\":" << r.feedback.anyOps << "}}";
    }
    os << "]}";
    return os.str();
}

// ---------------------------------------------------------------------
// Human report
// ---------------------------------------------------------------------

std::string
deoptCostReport(const DeoptCostSummary &s, u32 top_n)
{
    std::ostringstream os;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "deopt episodes: %llu (%llu closed by re-entry), "
                  "storm sites: %llu, flip-flops: %llu\n",
                  static_cast<unsigned long long>(s.episodes),
                  static_cast<unsigned long long>(s.closedByReentry),
                  static_cast<unsigned long long>(s.stormSites),
                  static_cast<unsigned long long>(s.flipFlops));
    os << line;
    std::snprintf(line, sizeof(line),
                  "attributed cycles: %lld of %llu total "
                  "(recoverable upper bound %.2f%%)\n",
                  static_cast<long long>(s.attributedCycles),
                  static_cast<unsigned long long>(s.totalCycles),
                  100.0 * s.recoverableFraction());
    os << line;
    std::snprintf(line, sizeof(line),
                  "phases: bailout %llu + replay %llu + recompile %llu "
                  "+ residual %lld\n\n",
                  static_cast<unsigned long long>(s.bailoutCycles),
                  static_cast<unsigned long long>(s.replayCycles),
                  static_cast<unsigned long long>(s.recompileCycles),
                  static_cast<long long>(s.residualCycles));
    os << line;
    std::snprintf(line, sizeof(line),
                  "%-28s %-22s %-10s %4s %2s %9s %10s %9s %9s %9s\n",
                  "site (function:line)", "reason", "group", "eps", "st",
                  "bailout", "replay", "residual", "mean", "p90");
    os << line;
    os << std::string(120, '-') << "\n";
    u32 shown = 0;
    for (const DeoptSiteSummary &r : s.sites) {
        if (shown++ >= top_n)
            break;
        std::string site = r.function + ":" + std::to_string(r.line);
        std::snprintf(line, sizeof(line),
                      "%-28s %-22s %-10s %4u %2s %9llu %10llu %9lld "
                      "%9lld %9lld\n",
                      site.c_str(), deoptReasonName(r.reason),
                      checkGroupName(r.group), r.episodes,
                      r.storm ? "S" : "",
                      static_cast<unsigned long long>(r.bailoutCycles),
                      static_cast<unsigned long long>(r.replayCycles),
                      static_cast<long long>(r.residualCycles),
                      static_cast<long long>(r.meanCost),
                      static_cast<long long>(r.p90Cost));
        os << line;
    }
    if (s.sites.size() > top_n) {
        std::snprintf(line, sizeof(line), "... %zu more sites\n",
                      s.sites.size() - top_n);
        os << line;
    }
    return os.str();
}

// ---------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------

namespace
{

struct DiffSite
{
    u64 episodes = 0;
    i64 mean = 0;
    i64 cost = 0;
    bool present = false;
};

bool
indexSites(const JsonValue &doc, std::map<std::string, DiffSite> &out,
           std::string &error)
{
    const JsonValue *schema = doc.get("schema");
    if (schema == nullptr || schema->string != "vspec-deopt-v1") {
        error = "not a vspec-deopt-v1 document";
        return false;
    }
    const JsonValue *sites = doc.get("sites");
    if (sites == nullptr) {
        error = "missing 'sites'";
        return false;
    }
    for (const JsonValue &site : sites->array) {
        const JsonValue *fn = site.get("function");
        const JsonValue *ln = site.get("line");
        const JsonValue *reason = site.get("reason");
        if (fn == nullptr || ln == nullptr || reason == nullptr)
            continue;
        std::string key = fn->string + ":"
                          + std::to_string(static_cast<i64>(ln->number))
                          + " " + reason->string;
        DiffSite &d = out[key];
        d.present = true;
        if (const JsonValue *v = site.get("episodes"))
            d.episodes = v->asU64();
        if (const JsonValue *v = site.get("mean"))
            d.mean = static_cast<i64>(v->number);
        i64 cost = 0;
        for (const char *k : {"bailout", "replay", "recompile"})
            if (const JsonValue *v = site.get(k))
                cost += static_cast<i64>(v->number);
        if (const JsonValue *v = site.get("residual"))
            cost += static_cast<i64>(v->number);
        d.cost = cost;
    }
    return true;
}

u64
topLevelU64(const JsonValue &doc, const char *key)
{
    const JsonValue *v = doc.get(key);
    return v != nullptr ? v->asU64() : 0;
}

} // namespace

std::string
deoptCostDiffReport(const JsonValue &baseline, const JsonValue &current,
                    std::string &error)
{
    std::map<std::string, DiffSite> old_sites, new_sites;
    if (!indexSites(baseline, old_sites, error)
        || !indexSites(current, new_sites, error))
        return "";

    std::ostringstream os;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "episodes: %llu -> %llu   attributed cycles: "
                  "%lld -> %lld   storms: %llu -> %llu\n\n",
                  static_cast<unsigned long long>(
                      topLevelU64(baseline, "episodes")),
                  static_cast<unsigned long long>(
                      topLevelU64(current, "episodes")),
                  static_cast<long long>(static_cast<i64>(
                      baseline.get("attributed_cycles")
                          ? baseline.get("attributed_cycles")->number
                          : 0)),
                  static_cast<long long>(static_cast<i64>(
                      current.get("attributed_cycles")
                          ? current.get("attributed_cycles")->number
                          : 0)),
                  static_cast<unsigned long long>(
                      topLevelU64(baseline, "storm_sites")),
                  static_cast<unsigned long long>(
                      topLevelU64(current, "storm_sites")));
    os << line;
    std::snprintf(line, sizeof(line), "%-44s %10s %10s %12s\n", "site",
                  "eps (old)", "eps (new)", "cost delta");
    os << line;
    os << std::string(80, '-') << "\n";

    std::map<std::string, std::pair<DiffSite, DiffSite>> merged;
    for (const auto &[key, d] : old_sites)
        merged[key].first = d;
    for (const auto &[key, d] : new_sites)
        merged[key].second = d;
    for (const auto &[key, pair] : merged) {
        const DiffSite &a = pair.first;
        const DiffSite &b = pair.second;
        i64 delta = b.cost - a.cost;
        std::string marker = !a.present ? " (new)"
                             : !b.present ? " (gone)" : "";
        std::snprintf(line, sizeof(line), "%-44s %10llu %10llu %+12lld%s\n",
                      key.c_str(),
                      static_cast<unsigned long long>(a.episodes),
                      static_cast<unsigned long long>(b.episodes),
                      static_cast<long long>(delta), marker.c_str());
        os << line;
    }
    return os.str();
}

} // namespace vspec
