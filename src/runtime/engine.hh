/**
 * @file
 * The vspec engine: ties together the VM substrate, the two execution
 * tiers (interpreter and optimizing JIT running on the CPU simulator),
 * tiering decisions, the deoptimization machinery (eager, lazy, soft),
 * builtins, garbage collection, and cycle accounting.
 *
 * Execution model, mirroring the paper's methodology: interpreted
 * execution is charged through a per-bytecode cost model; optimized
 * code executes instruction-by-instruction on the simulated CPU with a
 * timing model attached ("real hardware" fast model for the
 * characterization figures, detailed in-order/O3 models for the §V ISA
 * extension experiments).
 */

#ifndef VSPEC_RUNTIME_ENGINE_HH
#define VSPEC_RUNTIME_ENGINE_HH

#include <memory>

#include "backend/isel.hh"
#include "interp/interpreter.hh"
#include "ir/passes.hh"
#include "profiler/sampler.hh"
#include "runtime/deopt_cost.hh"
#include "runtime/guard.hh"
#include "runtime/tiering.hh"
#include "sim/machine.hh"
#include "sim/predecode.hh"
#include "support/random.hh"
#include "trace/trace.hh"

namespace vspec
{

struct EngineConfig
{
    u32 heapSize = 64u << 20;
    IsaFlavour isa = IsaFlavour::Arm64Like;
    CpuConfig cpu = CpuConfig::arm64Server();

    bool enableOptimization = true;
    /** Tier-up thresholds — the one place they live (runtime/tiering). */
    TieringPolicy tiering;

    /** Check removal (Fig. 5 / §III-B) and §V fusion. */
    PassConfig passes;
    /** Branch-only removal (§IV-B). */
    bool removeDeoptBranches = false;
    /** Enable the jsldr(u)smi ISA extension (§V). */
    bool smiLoadExtension = false;
    /** §VII ablation: also fuse map checks into one instruction. */
    bool mapCheckExtension = false;

    bool samplerEnabled = false;
    u64 samplerPeriodCycles = 997;

    /** vprof: calling-context profiling. Implies samplerEnabled; the
     *  engine maintains a shadow call stack in the sampler and every
     *  sample (JIT, interpreter, or runtime) lands on a CCT node. All
     *  bookkeeping is host-side — simulated cycle counts are
     *  bit-identical with this on or off. */
    bool profiling = false;

    /** vdcost: deopt episode tracking (see runtime/deopt_cost.hh).
     *  Host-side only, same bit-identity guarantee as profiling. */
    bool deoptCost = false;

    /** vtrace: structured tracing + metrics (see trace/trace.hh).
     *  Defaults honour VSPEC_TRACE / VSPEC_TRACE_OUT. */
    TraceConfig trace = TraceConfig::fromEnv();

    u64 randomSeed = 42;

    /** Shift the heap layout by this many bytes at startup (an
     *  ASLR/allocation-noise analog): different cache-set mappings
     *  give run-to-run timing variation without changing semantics. */
    u32 layoutJitterBytes = 0;

    /** vguard: deterministic fault injection (see runtime/guard.hh).
     *  Defaults honour VSPEC_FAULT; empty config means no injection
     *  and zero per-allocation overhead. */
    FaultConfig faults = FaultConfig::fromEnv();

    /** vguard: execution-fuel budget in modeled cycles. 0 disables the
     *  guard; otherwise once totalCycles() exceeds the budget the
     *  engine raises EngineError{FuelExhausted} at the next check
     *  point (interpreter cost flush, engine invoke, or the simulated
     *  core's periodic fuel poll). */
    u64 maxFuelCycles = 0;

    /** vguard: maximum interpreter<->JIT<->builtin re-entry depth.
     *  Exceeding it raises EngineError{StackOverflow} instead of
     *  exhausting the host stack. */
    u32 maxInvokeDepth = 512;

    /** vpar: decode each code object's instruction stream once into a
     *  dense micro-op array instead of re-deriving CommitInfo on every
     *  fetch. Bit-identical cycles either way; honours
     *  VSPEC_PREDECODE=0 for A/B comparisons. */
    bool predecode = defaultPredecodeEnabled();

    /** vregalloc testing knob: artificially shrink the allocatable
     *  register pools (0 = full pool; shrunk pools keep callee-saved
     *  registers so call-crossing values stay allocatable down to 3
     *  GPRs). Defaults honour VSPEC_MAX_GPRS / VSPEC_MAX_FPRS so any
     *  binary can run under register pressure without a rebuild. */
    u8 maxGprs = defaultMaxGprs();
    u8 maxFprs = defaultMaxFprs();
};

struct DeoptRecord
{
    FunctionId function;
    DeoptReason reason;
    DeoptCategory category;
    Cycles atCycle;
    u32 bytecodeOffset = 0;   //!< deopt pc (bytecode offset of the exit)
    SrcPos pos;               //!< source position of that bytecode
};

class Engine : public RootProvider
{
  public:
    explicit Engine(EngineConfig config = {});
    ~Engine() override;

    // ---- program lifecycle --------------------------------------------

    /** Parse + compile @p source, then run its top-level code. */
    void loadProgram(const std::string &source);

    /** Call a named global function. */
    Value call(const std::string &name, const std::vector<Value> &args = {});

    /** Tier-dispatching invocation (interpreter <-> optimized code). */
    Value invoke(FunctionId fn, Value this_value,
                 const std::vector<Value> &args);

    /**
     * Replace this engine's fault schedule post-construction — the
     * per-engine override path (vserve targets one isolate while its
     * siblings stay clean, whatever VSPEC_FAULT says process-wide).
     * Site ordinals are *not* reset: the schedule keys on the engine's
     * lifetime ordinals, so pass thresholds relative to the current
     * `faults.allocations` / `faults.compiles` when using the one-shot
     * `-at` forms. FaultConfig::none() clears an inherited schedule.
     */
    void setFaultConfig(const FaultConfig &fault_config);

    // ---- components (public: benches and tests inspect them) ----------

    EngineConfig config;
    VMContext vm;
    GarbageCollector gc;
    GlobalRegistry globals;
    FunctionTable functions;
    std::unique_ptr<Interpreter> interpreter;
    std::vector<std::unique_ptr<CodeObject>> codeObjects;
    std::unique_ptr<TimingModel> timing;
    std::unique_ptr<FunctionalCore> core;
    PcSampler sampler;
    Rng rng;
    std::string consoleOut;

    /** vtrace: engine-wide event ring + metrics counters. Dumped to
     *  config.trace.outPath at destruction when tracing is enabled;
     *  `traceLabel` (e.g. the workload name, set by the harness)
     *  distinguishes per-experiment output files. */
    Tracer trace;
    std::string traceLabel;

    /** vguard: deterministic fault injector driven by config.faults.
     *  Also reachable from Heap::faults for allocation-site hooks. */
    FaultInjector faults;

    /** Current interpreter<->JIT<->builtin re-entry depth (guarded by
     *  config.maxInvokeDepth). */
    int invokeDepth = 0;

    // ---- statistics ------------------------------------------------------

    u64 interpreterCycles = 0;
    u64 compilations = 0;
    u64 eagerDeopts = 0;
    u64 softDeopts = 0;
    u64 lazyDeopts = 0;
    std::vector<DeoptRecord> deoptLog;

    /** vdcost: deopt lifecycle episodes (enabled by config.deoptCost;
     *  all hooks are no-ops otherwise). */
    EpisodeTracker episodes;

    /** vproof: ProveChecks classification totals accumulated across
     *  every compile, and the per-(function, line) audit rows. */
    ProofStats proofStats;
    std::vector<CheckAuditEntry> checkAudit;

    /** Total modeled time: interpreter cost model + simulated cycles
     *  of optimized code (incl. runtime/builtin work it calls). */
    Cycles totalCycles() const
    {
        return interpreterCycles + timing->cycles();
    }

    // ---- services used by the tiers ------------------------------------

    /** Charge @p c cycles of runtime/builtin work to the active tier. */
    void chargeCycles(u64 c);

    /** Accumulate interpreter cost-model cycles. The interpreter's
     *  single flush point; with profiling on it also advances the
     *  sampler's interpreter-side clock. */
    void
    flushInterpreterCost(u64 c)
    {
        interpreterCycles += c;
        if (config.profiling)
            sampler.tickInterp(interpreterCycles);
    }

    /** Dispatch a builtin. Charges its modeled cost. */
    Value callBuiltin(BuiltinId id, Value this_value,
                      const std::vector<Value> &args);

    /** Global store with constant-cell dependency invalidation
     *  (deopt-lazy path). */
    void storeGlobal(u32 cell, Value v);

    /** Functions' feedback-driven optimization entry point. */
    void maybeOptimize(FunctionInfo &fn);

    /** Compile now (used by tests); @return success. */
    bool compileFunction(FunctionInfo &fn);

    /** Seeded Math.random. */
    double random() { return rng.nextDouble(); }

    /** vguard: raise EngineError{FuelExhausted} once the configured
     *  fuel budget (config.maxFuelCycles) is spent. Cheap no-op when
     *  the budget is 0. */
    void checkFuel() const;

    void forEachRoot(const std::function<void(Value)> &visit) override;

    /** Interned-name helper. */
    NameId nameId(const std::string &s) { return vm.names.intern(s); }

  private:
    Value runOptimized(FunctionInfo &fn, Value this_value,
                       const std::vector<Value> &args);
    Value materialize(const DeoptLocation &loc, const MachineState &st);
    void handleRuntimeCall(RuntimeFn fn, MachineState &st);
    void installBuiltins();
    void discardCode(FunctionInfo &fn);

    int jitDepth = 0;
    int lastCallArgc = 0;
    std::vector<MachineState *> activeMachines;
};

} // namespace vspec

#endif // VSPEC_RUNTIME_ENGINE_HH
