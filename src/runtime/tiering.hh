/**
 * @file
 * Tier-up policy: when does a function graduate from the interpreter
 * to optimized code? Mirrors V8's behaviour at the granularity this
 * study needs: optimize hot functions that have collected feedback;
 * re-warm after a deoptimization; give up after repeated deopts
 * (feedback is hopelessly polymorphic).
 */

#ifndef VSPEC_RUNTIME_TIERING_HH
#define VSPEC_RUNTIME_TIERING_HH

#include "bytecode/bytecode.hh"

namespace vspec
{

class Tracer;

/**
 * The single source of truth for tier-up thresholds: embedded in
 * EngineConfig (EngineConfig::tiering) and consulted directly by the
 * engine — do not copy these fields elsewhere.
 */
struct TieringPolicy
{
    u32 optimizeAfterInvocations = 2;
    u32 optimizeAfterBackedges = 200;
    u32 maxDeoptsBeforeDisable = 10;

    /** Should @p fn be optimized now (it has no valid code)? */
    bool shouldOptimize(const FunctionInfo &fn) const;

    /**
     * Called when @p fn deoptimized; @return true if optimization
     * should be disabled for good. When @p trace is non-null, the
     * re-warm / disable decision is reported as a `tiering` event
     * stamped @p now cycles.
     */
    bool onDeopt(FunctionInfo &fn, Tracer *trace = nullptr,
                 u64 now = 0) const;
};

} // namespace vspec

#endif // VSPEC_RUNTIME_TIERING_HH
