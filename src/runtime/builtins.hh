/**
 * @file
 * Builtin functions — the vspec analogue of V8's Torque-built builtin
 * blob. Builtins run host-side with a work-proportional cycle cost
 * model, charged to whichever tier invoked them. This reproduces the
 * paper's observation that string/regex benchmarks show low check
 * overhead because their time is spent in builtins, not JIT code.
 */

#ifndef VSPEC_RUNTIME_BUILTINS_HH
#define VSPEC_RUNTIME_BUILTINS_HH

#include "bytecode/bytecode.hh"

namespace vspec
{

class Engine;

/** Execute builtin @p id. Charges its modeled cost to the engine. */
Value dispatchBuiltin(Engine &engine, BuiltinId id, Value this_value,
                      const std::vector<Value> &args);

/**
 * Register all builtin FunctionInfos (with function cells) and install
 * the global bindings: `print`, `parseInt`, `parseFloat`, the regex
 * entry points, and the `Math` / `String` namespace objects.
 */
void installBuiltinGlobals(Engine &engine);

} // namespace vspec

#endif // VSPEC_RUNTIME_BUILTINS_HH
