#include "runtime/regex_lite.hh"

#include <functional>
#include <stdexcept>

#include "runtime/guard.hh"

namespace vspec
{

/**
 * Regex AST. Alternation of sequences of quantified atoms; an atom is
 * a literal, dot, class, or group.
 */
struct RegexLite::Node
{
    enum class Kind : u8
    {
        Alternation,  //!< children are alternatives
        Sequence,     //!< children in order
        Literal,      //!< ch
        Dot,
        Class,        //!< ranges, negated
        Star,         //!< child[0], greedy
        Plus,
        Optional,
    };

    Kind kind;
    char ch = 0;
    bool negated = false;
    std::vector<std::pair<char, char>> ranges;
    std::vector<std::shared_ptr<Node>> children;
};

namespace
{

using Node = RegexLite::Node;
using NodePtr = std::shared_ptr<Node>;

class Parser
{
  public:
    explicit Parser(const std::string &p) : pat(p) {}

    NodePtr
    parse()
    {
        NodePtr n = parseAlternation();
        if (pos != pat.size())
            throw std::runtime_error("regex: trailing characters");
        return n;
    }

  private:
    char peek() const { return pos < pat.size() ? pat[pos] : '\0'; }
    bool eof() const { return pos >= pat.size(); }

    NodePtr
    parseAlternation()
    {
        auto alt = std::make_shared<Node>();
        alt->kind = Node::Kind::Alternation;
        alt->children.push_back(parseSequence());
        while (peek() == '|') {
            pos++;
            alt->children.push_back(parseSequence());
        }
        if (alt->children.size() == 1)
            return alt->children[0];
        return alt;
    }

    NodePtr
    parseSequence()
    {
        auto seq = std::make_shared<Node>();
        seq->kind = Node::Kind::Sequence;
        while (!eof() && peek() != '|' && peek() != ')')
            seq->children.push_back(parseQuantified());
        return seq;
    }

    NodePtr
    parseQuantified()
    {
        NodePtr atom = parseAtom();
        for (;;) {
            char c = peek();
            if (c != '*' && c != '+' && c != '?')
                return atom;
            pos++;
            auto q = std::make_shared<Node>();
            q->kind = c == '*' ? Node::Kind::Star
                      : c == '+' ? Node::Kind::Plus : Node::Kind::Optional;
            q->children.push_back(atom);
            atom = q;
        }
    }

    NodePtr
    parseAtom()
    {
        if (eof())
            throw std::runtime_error("regex: unexpected end of pattern");
        char c = pat[pos];
        if (c == '(') {
            pos++;
            NodePtr inner = parseAlternation();
            if (peek() != ')')
                throw std::runtime_error("regex: missing ')'");
            pos++;
            return inner;
        }
        if (c == '[')
            return parseClass();
        if (c == '.') {
            pos++;
            auto n = std::make_shared<Node>();
            n->kind = Node::Kind::Dot;
            return n;
        }
        if (c == '\\') {
            pos++;
            return parseEscape();
        }
        if (c == '*' || c == '+' || c == '?' || c == ')')
            throw std::runtime_error("regex: misplaced quantifier");
        pos++;
        auto n = std::make_shared<Node>();
        n->kind = Node::Kind::Literal;
        n->ch = c;
        return n;
    }

    NodePtr
    parseEscape()
    {
        if (eof())
            throw std::runtime_error("regex: dangling backslash");
        char c = pat[pos++];
        auto n = std::make_shared<Node>();
        switch (c) {
          case 'd':
            n->kind = Node::Kind::Class;
            n->ranges = {{'0', '9'}};
            return n;
          case 'w':
            n->kind = Node::Kind::Class;
            n->ranges = {{'a', 'z'}, {'A', 'Z'}, {'0', '9'}, {'_', '_'}};
            return n;
          case 's':
            n->kind = Node::Kind::Class;
            n->ranges = {{' ', ' '}, {'\t', '\t'}, {'\n', '\n'},
                         {'\r', '\r'}};
            return n;
          case 'n':
            n->kind = Node::Kind::Literal;
            n->ch = '\n';
            return n;
          case 't':
            n->kind = Node::Kind::Literal;
            n->ch = '\t';
            return n;
          default:
            n->kind = Node::Kind::Literal;
            n->ch = c;
            return n;
        }
    }

    NodePtr
    parseClass()
    {
        pos++;  // '['
        auto n = std::make_shared<Node>();
        n->kind = Node::Kind::Class;
        if (peek() == '^') {
            n->negated = true;
            pos++;
        }
        while (!eof() && peek() != ']') {
            char lo = pat[pos++];
            if (lo == '\\' && !eof())
                lo = pat[pos++];
            char hi = lo;
            if (peek() == '-' && pos + 1 < pat.size()
                && pat[pos + 1] != ']') {
                pos++;
                hi = pat[pos++];
            }
            n->ranges.push_back({lo, hi});
        }
        if (eof())
            throw std::runtime_error("regex: missing ']'");
        pos++;  // ']'
        return n;
    }

    const std::string &pat;
    size_t pos = 0;
};

bool
classMatches(const Node &n, char c)
{
    bool in = false;
    for (auto &[lo, hi] : n.ranges) {
        if (c >= lo && c <= hi) {
            in = true;
            break;
        }
    }
    return n.negated ? !in : in;
}

/**
 * Backtracking matcher: match node @p n at position @p pos; on
 * success, call @p k (continuation) with the end position. Returns the
 * end position of the overall match, or -1.
 */
int
matchNode(const Node &n, const std::string &s, size_t pos, u64 &steps,
          const std::function<int(size_t)> &k)
{
    steps++;
    if (steps > 50'000'000) {
        // A pathological pattern degrades the one call, not the run:
        // catchable vguard error rather than an unstructured abort.
        throw EngineError(EngineErrorKind::RegexBudget,
                          "regex step budget exceeded");
    }
    switch (n.kind) {
      case Node::Kind::Literal:
        if (pos < s.size() && s[pos] == n.ch)
            return k(pos + 1);
        return -1;
      case Node::Kind::Dot:
        if (pos < s.size() && s[pos] != '\n')
            return k(pos + 1);
        return -1;
      case Node::Kind::Class:
        if (pos < s.size() && classMatches(n, s[pos]))
            return k(pos + 1);
        return -1;
      case Node::Kind::Sequence: {
        std::function<int(size_t, size_t)> step =
            [&](size_t idx, size_t p) -> int {
            if (idx == n.children.size())
                return k(p);
            return matchNode(*n.children[idx], s, p, steps,
                             [&, idx](size_t np) {
                                 return step(idx + 1, np);
                             });
        };
        return step(0, pos);
      }
      case Node::Kind::Alternation:
        for (auto &alt : n.children) {
            int r = matchNode(*alt, s, pos, steps, k);
            if (r >= 0)
                return r;
        }
        return -1;
      case Node::Kind::Star:
      case Node::Kind::Plus: {
        // Greedy: consume as many as possible, backtrack via recursion.
        std::function<int(size_t, u32)> more = [&](size_t p,
                                                   u32 count) -> int {
            int r = matchNode(*n.children[0], s, p, steps,
                              [&, count](size_t np) -> int {
                                  if (np == p)
                                      return k(np);  // zero-width guard
                                  return more(np, count + 1);
                              });
            if (r >= 0)
                return r;
            if (n.kind == Node::Kind::Plus && count == 0)
                return -1;
            return k(p);
        };
        return more(pos, 0);
      }
      case Node::Kind::Optional: {
        int r = matchNode(*n.children[0], s, pos, steps, k);
        if (r >= 0)
            return r;
        return k(pos);
      }
    }
    return -1;
}

} // namespace

RegexLite::RegexLite(const std::string &pattern)
{
    Parser p(pattern);
    root = p.parse();
}

int
RegexLite::matchAt(const std::string &subject, size_t pos, u64 &steps) const
{
    int end = matchNode(*root, subject, pos, steps,
                        [](size_t p) { return static_cast<int>(p); });
    if (end < 0)
        return -1;
    return end - static_cast<int>(pos);
}

bool
RegexLite::test(const std::string &subject, u64 &steps) const
{
    for (size_t i = 0; i <= subject.size(); i++) {
        if (matchAt(subject, i, steps) >= 0)
            return true;
    }
    return false;
}

u32
RegexLite::countMatches(const std::string &subject, u64 &steps) const
{
    u32 count = 0;
    size_t i = 0;
    while (i <= subject.size()) {
        int len = matchAt(subject, i, steps);
        if (len < 0) {
            i++;
        } else {
            count++;
            i += len > 0 ? static_cast<size_t>(len) : 1;
        }
    }
    return count;
}

std::string
RegexLite::replaceAll(const std::string &subject,
                      const std::string &replacement, u64 &steps) const
{
    std::string out;
    size_t i = 0;
    while (i <= subject.size()) {
        int len = matchAt(subject, i, steps);
        if (len < 0) {
            if (i < subject.size())
                out += subject[i];
            i++;
        } else {
            out += replacement;
            if (len == 0 && i < subject.size())
                out += subject[i];
            i += len > 0 ? static_cast<size_t>(len) : 1;
        }
    }
    return out;
}

} // namespace vspec
