/**
 * @file
 * vdcost: deopt lifecycle observability — the episode model.
 *
 * The paper prices the *checks* (~8% of cycles) but treats a
 * deoptimization as a point event. This module gives every deopt a
 * *duration*: an episode opens when the engine bails out of optimized
 * code (eager, soft, or lazy) and closes when execution re-enters
 * optimized code for that function (or at run end). Each episode is
 * keyed by its site — (function, deopt pc, source line, DeoptReason,
 * CheckGroup) — carries a snapshot of the function's feedback/IC state
 * at bailout, and decomposes its wall-clock (simulated) cycles into
 * four phases:
 *
 *   bailout    fixed bailout-handler + frame-materialization cost
 *              (the engine's chargeCycles(600) slow path); 0 for lazy
 *              deopts, which unlink code without a frame conversion.
 *   replay     interpreter cycles the deoptimized function accumulates
 *              (inclusive of builtins/runtime work it calls) between
 *              the bailout and its next optimized entry. Attribution
 *              is outermost-owner: while one episode's function is
 *              replaying, nested deopts attribute to the outer episode
 *              — no cycle is counted twice.
 *   recompile  simulated cycles spent recompiling the function while
 *              its episode is open. vspec compiles charge zero
 *              simulated cycles (the V8-concurrent-compile analog), so
 *              this phase records the *count* of recompiles and stays
 *              0 cycles under the default cost model.
 *   residual   signed steady-state delta: cycles of the first
 *              optimized call after re-entry minus the mean optimized
 *              call cost before the deopt — what the deopt cost (or
 *              won, when wider feedback compiles better code) *after*
 *              tier recovery.
 *
 * The tracker is host-side only: every hook *reads* the engine's cycle
 * counters and never charges cycles, so simulated results are
 * bit-identical with tracking on or off (the differential tests prove
 * it). The invariant the oracle checks: the sum of all episode phase
 * cycles equals the tracker's independently accumulated
 * attributedCycles counter, and episode counts reconcile exactly with
 * Engine::deoptLog and the trace deopt counters.
 *
 * Storm/flip-flop detection: a *storm site* is a site with >=
 * stormThreshold episodes (the same check keeps failing); a *flip-flop*
 * is an episode opening for a function whose previous episode closed
 * by optimized re-entry (opt <-> deopt oscillation, the tiering
 * pathology V8 guards against with its deopt budget).
 *
 * See docs/DEOPT.md for the JSON schema (vspec-deopt-v1) and CLI.
 */

#ifndef VSPEC_RUNTIME_DEOPT_COST_HH
#define VSPEC_RUNTIME_DEOPT_COST_HH

#include <array>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bytecode/bytecode.hh"
#include "ir/deopt_reasons.hh"
#include "support/common.hh"

namespace vspec
{

class Tracer;
struct JsonValue;

/** Episode site identity: where (and why) the deopt happened. */
struct DeoptSiteKey
{
    FunctionId function = kInvalidFunction;
    u32 bytecodeOffset = 0;
    i32 line = 0;
    DeoptReason reason = DeoptReason::Smi;

    bool operator<(const DeoptSiteKey &o) const
    {
        if (function != o.function)
            return function < o.function;
        if (bytecodeOffset != o.bytecodeOffset)
            return bytecodeOffset < o.bytecodeOffset;
        if (line != o.line)
            return line < o.line;
        return static_cast<u32>(reason) < static_cast<u32>(o.reason);
    }
};

/** Compact feedback/IC state snapshot taken at bailout. */
struct FeedbackSnapshot
{
    u32 slots = 0;           //!< total feedback slots
    u32 monomorphic = 0;     //!< property/call sites seen exactly 1 map
    u32 polymorphic = 0;     //!< 2..4 maps
    u32 megamorphic = 0;     //!< gave up on map-based dispatch
    u32 genericSites = 0;    //!< sites that hit the generic runtime path
    u32 smiOps = 0;          //!< numeric ops with pure-SMI feedback
    u32 numberOps = 0;       //!< numeric ops that widened to double
    u32 anyOps = 0;          //!< ops with mixed/non-numeric feedback
};

FeedbackSnapshot snapshotFeedback(const FeedbackVector &fv);

/** The four-phase cycle decomposition of one episode. */
struct EpisodePhases
{
    u64 bailout = 0;
    u64 replay = 0;
    u64 recompile = 0;
    i64 residual = 0;   //!< signed: re-optimized code may be *faster*

    i64 total() const
    {
        return static_cast<i64>(bailout + replay + recompile) + residual;
    }
};

struct DeoptEpisode
{
    u32 id = 0;
    DeoptSiteKey site;
    DeoptCategory category = DeoptCategory::Eager;
    u64 openCycle = 0;
    u64 closeCycle = 0;
    bool closed = false;
    bool closedByReentry = false;  //!< false: run end / superseded
    u32 recompiles = 0;
    bool residualMeasured = false;
    FeedbackSnapshot feedback;
    EpisodePhases phases;
};

/**
 * The engine-side episode tracker. All hooks are no-ops until
 * enable(); the engine calls them from its four deopt sites, its
 * invoke frame scope, and compileFunction. Cycle-neutral by
 * construction: hooks only ever read cycle counters.
 */
class EpisodeTracker
{
  public:
    /** Site episode count that flags a deopt storm. */
    u32 stormThreshold = 3;

    void enable(Tracer *trace);
    bool enabled() const { return enabled_; }

    // ---- engine hooks --------------------------------------------------

    /** A non-builtin invoke entered @p fn on the given tier. */
    void onFrameEnter(FunctionId fn, bool optimized, u64 interp_cycles,
                      u64 total_cycles);
    /** The matching frame left (exception-safe via RAII in invoke). */
    void onFrameLeave(u64 interp_cycles, u64 total_cycles);

    /** A deopt record was just logged: open an episode. A still-open
     *  episode for the same function (lazy invalidation followed by
     *  the re-entry discard) is closed as superseded first, so
     *  episodes stay 1:1 with Engine::deoptLog. */
    void onDeopt(const FunctionInfo &fn, DeoptReason reason,
                 DeoptCategory category, u32 bytecode_offset, SrcPos pos,
                 u64 interp_cycles, u64 total_cycles);

    /** Called after the fixed bailout charge of an eager/soft deopt:
     *  prices the bailout phase and arms replay attribution on the
     *  deopting frame. */
    void onBailoutAccounted(u64 interp_cycles, u64 total_cycles);

    /** compileFunction completed successfully for @p fn. */
    void onCompile(FunctionId fn, u64 cycles_before, u64 cycles_after);

    /** Run end: close every open episode and flush replay owners. */
    void finish(u64 interp_cycles, u64 total_cycles);

    // ---- results -------------------------------------------------------

    const std::vector<DeoptEpisode> &episodes() const { return episodes_; }

    /** Independent accumulator incremented at the same points as the
     *  per-episode phases — the reconciliation target for the oracle's
     *  "phases sum exactly" invariant. */
    i64 attributedCycles() const { return attributed_; }

    u64 stormSiteCount() const { return stormSites_.size(); }
    u64 flipFlopEvents() const { return flipFlops_; }
    bool isStormSite(const DeoptSiteKey &k) const
    {
        return stormSites_.count(k) != 0;
    }

  private:
    struct Frame
    {
        FunctionId fn = kInvalidFunction;
        bool optimized = false;
        bool owner = false;          //!< replay attribution armed here
        u32 episodeIdx = 0;          //!< episode owned / being measured
        bool measuring = false;      //!< residual measurement frame
        u64 interpAtOwn = 0;
        u64 totalAtEntry = 0;
        u64 episodesAtEnter = 0;     //!< per-fn episode count snapshot
    };

    struct FnState
    {
        i64 openEpisode = -1;        //!< index into episodes_, -1 = none
        u64 episodesOpened = 0;
        bool awaitReopen = false;    //!< last episode closed by re-entry
        u64 optCalls = 0;            //!< steady-state optimized calls...
        u64 optCycleSum = 0;         //!< ...and their inclusive cycles
    };

    void openEpisode(const FunctionInfo &fn, DeoptReason reason,
                     DeoptCategory category, u32 bytecode_offset,
                     SrcPos pos, u64 total_cycles);
    void closeEpisode(u32 idx, bool by_reentry, u64 interp_cycles,
                      u64 total_cycles);
    void flushOwner(u32 idx, u64 interp_cycles);

    bool enabled_ = false;
    Tracer *trace_ = nullptr;
    std::vector<Frame> stack_;
    std::map<FunctionId, FnState> fns_;
    std::map<DeoptSiteKey, u64> siteEpisodes_;
    std::set<DeoptSiteKey> stormSites_;
    std::vector<DeoptEpisode> episodes_;
    i64 attributed_ = 0;
    u64 flipFlops_ = 0;
    int ownerDepth_ = -1;            //!< stack index of the active owner
    i64 pendingBailout_ = -1;        //!< episode awaiting bailout pricing
};

// ---------------------------------------------------------------------
// Summary + export (consumed by RunOutcome, vspec-deopt, benches)
// ---------------------------------------------------------------------

struct DeoptSiteSummary
{
    std::string function;
    FunctionId functionId = kInvalidFunction;
    u32 bytecodeOffset = 0;
    i32 line = 0;
    DeoptReason reason = DeoptReason::Smi;
    CheckGroup group = CheckGroup::Other;
    DeoptCategory category = DeoptCategory::Eager;
    u32 episodes = 0;
    bool storm = false;
    u64 bailoutCycles = 0;
    u64 replayCycles = 0;
    u64 recompileCycles = 0;
    u32 recompiles = 0;
    i64 residualCycles = 0;
    i64 meanCost = 0;
    i64 p50Cost = 0;
    i64 p90Cost = 0;
    FeedbackSnapshot feedback;   //!< snapshot of the first episode
};

struct DeoptCostSummary
{
    static constexpr size_t kGroups =
        static_cast<size_t>(CheckGroup::NumGroups);

    bool enabled = false;
    u64 episodes = 0;
    u64 closedByReentry = 0;
    u64 stormSites = 0;
    u64 flipFlops = 0;
    u64 bailoutCycles = 0;
    u64 replayCycles = 0;
    u64 recompileCycles = 0;
    i64 residualCycles = 0;
    i64 attributedCycles = 0;    //!< tracker's independent accumulator
    u64 totalCycles = 0;         //!< run total, the recoverable base
    std::array<u64, kGroups> episodesPerGroup{};
    std::array<i64, kGroups> cyclesPerGroup{};
    std::vector<DeoptSiteSummary> sites;   //!< sorted by cost, desc

    /** Empirical upper bound on the fraction of total cycles a
     *  deoptless/OSR tier could recover (ROADMAP item 1). */
    double recoverableFraction() const
    {
        if (totalCycles == 0 || attributedCycles <= 0)
            return 0.0;
        return static_cast<double>(attributedCycles)
               / static_cast<double>(totalCycles);
    }
};

/** Aggregate a finished tracker into the per-site summary. */
DeoptCostSummary
summarizeEpisodes(const EpisodeTracker &tracker,
                  const std::function<std::string(FunctionId)> &namer,
                  u64 total_cycles);

/** Schema "vspec-deopt-v1" JSON document. */
std::string deoptCostJson(const DeoptCostSummary &s,
                          const std::string &workload,
                          const std::string &isa);

/** Human-readable per-site table (vspec-deopt CLI). */
std::string deoptCostReport(const DeoptCostSummary &s, u32 top_n);

/** Diff two vspec-deopt-v1 documents, aligning sites by
 *  (function, line, reason). Sets @p error on malformed input. */
std::string deoptCostDiffReport(const JsonValue &baseline,
                                const JsonValue &current,
                                std::string &error);

} // namespace vspec

#endif // VSPEC_RUNTIME_DEOPT_COST_HH
