/**
 * @file
 * IrregexpLite: a small backtracking regular-expression engine backing
 * the reTest/reCount/reReplace builtins. Supports literals, '.',
 * character classes with ranges and negation, \d \w \s escapes,
 * quantifiers * + ?, alternation and groups. Reports the number of
 * matcher steps so the builtin cost model can charge proportionally —
 * regex time is builtin time, as in V8's Irregexp.
 */

#ifndef VSPEC_RUNTIME_REGEX_LITE_HH
#define VSPEC_RUNTIME_REGEX_LITE_HH

#include <memory>
#include <string>
#include <vector>

#include "support/common.hh"

namespace vspec
{

class RegexLite
{
  public:
    /** Compile @p pattern; throws std::runtime_error on syntax error. */
    explicit RegexLite(const std::string &pattern);

    /** True if the pattern matches anywhere in @p subject. */
    bool test(const std::string &subject, u64 &steps) const;

    /** Number of non-overlapping matches. */
    u32 countMatches(const std::string &subject, u64 &steps) const;

    /** Replace every match with @p replacement. */
    std::string replaceAll(const std::string &subject,
                           const std::string &replacement,
                           u64 &steps) const;

    /** Length of the match starting at @p pos, or -1. */
    int matchAt(const std::string &subject, size_t pos, u64 &steps) const;

    /** AST node (public so the matcher implementation can see it). */
    struct Node;

  private:
    std::shared_ptr<Node> root;
};

} // namespace vspec

#endif // VSPEC_RUNTIME_REGEX_LITE_HH
