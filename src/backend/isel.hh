/**
 * @file
 * Instruction selection / code generation: lowers the optimized graph
 * to the virtual ISA for one of the two backend flavours. The
 * arm64-like flavour emits pure RISC sequences; the x64-like flavour
 * uses memory-operand compares (map checks and bounds checks become a
 * single flag-setting instruction plus the branch), reproducing the
 * paper's per-ISA check-footprint difference and its window-heuristic
 * sizes (1 instruction before the deopt branch on x64, 2 on ARM64).
 *
 * Branch-only removal (§IV-B) is implemented here: with
 * `removeDeoptBranches`, condition code is emitted but the conditional
 * deoptimization branches are suppressed — a late code-generation
 * change, exactly as in the paper.
 */

#ifndef VSPEC_BACKEND_ISEL_HH
#define VSPEC_BACKEND_ISEL_HH

#include <memory>

#include "backend/code_object.hh"
#include "ir/builder.hh"

namespace vspec
{

class Tracer;

struct CodegenConfig
{
    IsaFlavour flavour = IsaFlavour::Arm64Like;
    bool removeDeoptBranches = false;
    bool smiExtension = false;  //!< §V fused loads were enabled upstream
    bool mapCheckExtension = false;  //!< §VII ablation: fused map checks
    /** Poll the interrupt cell on loop back edges (V8's stack check). */
    bool emitInterruptChecks = true;

    /** Artificially shrink the allocatable register pools (testing
     *  knob, see EngineConfig::maxGprs; 0 = full pool). */
    u8 maxGprs = 0;
    u8 maxFprs = 0;
    /** Run the allocation verifier on the fresh allocation (wired to
     *  VerifyLevel / VSPEC_VERIFY by the engine). */
    bool verifyAllocation = false;

    /** vtrace hookup (set by the engine per compile): codegen begin/end
     *  `compile` events, stamped with @ref traceTimestamp. */
    Tracer *trace = nullptr;
    u64 traceTimestamp = 0;
    u32 traceFunction = 0;
};

/**
 * Generate code for @p graph. The graph is modified in place (critical
 * edges are split, check result uses are rewritten to their
 * pass-through inputs).
 */
std::unique_ptr<CodeObject> generateCode(CompilerEnv &env, Graph &graph,
                                         const CodegenConfig &config);

} // namespace vspec

#endif // VSPEC_BACKEND_ISEL_HH
