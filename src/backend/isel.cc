#include "backend/isel.hh"

#include <algorithm>
#include <map>
#include <set>

#include "backend/regalloc.hh"
#include "trace/trace.hh"
#include "verify/verify.hh"

namespace vspec
{

namespace
{

/** Sentinel value MSR'd into REG_BA by the extension prologue. */
constexpr i64 kBailoutHandlerAddr = 0x0badba11;

/** Condition inversion for fall-through optimization. */
Cond
invert(Cond c)
{
    switch (c) {
      case Cond::Eq: return Cond::Ne;
      case Cond::Ne: return Cond::Eq;
      case Cond::Lt: return Cond::Ge;
      case Cond::Le: return Cond::Gt;
      case Cond::Gt: return Cond::Le;
      case Cond::Ge: return Cond::Lt;
      case Cond::Lo: return Cond::Hs;
      case Cond::Ls: return Cond::Hi;
      case Cond::Hi: return Cond::Ls;
      case Cond::Hs: return Cond::Lo;
      case Cond::Vs: return Cond::Vc;
      case Cond::Vc: return Cond::Vs;
      case Cond::Mi: return Cond::Pl;
      case Cond::Pl: return Cond::Mi;
      case Cond::Al: return Cond::Al;
    }
    return Cond::Al;
}

// ---------------------------------------------------------------------
// Graph preparation
// ---------------------------------------------------------------------

/** Split critical edges so phi moves have a dedicated block. */
void
splitCriticalEdges(Graph &g)
{
    u32 nblocks = static_cast<u32>(g.blocks.size());
    for (BlockId b = 0; b < nblocks; b++) {
        if (g.block(b).succFalse == kNoBlock)
            continue;  // single successor: never critical
        for (int which = 0; which < 2; which++) {
            BlockId s = which == 0 ? g.block(b).succTrue
                                   : g.block(b).succFalse;
            if (s == kNoBlock || g.block(s).preds.size() < 2)
                continue;
            // Does the successor have live phis? If not, no moves are
            // needed on this edge and it can stay critical.
            bool has_phi = false;
            for (ValueId id : g.block(s).nodes) {
                const IrNode &n = g.node(id);
                if (n.op != IrOp::Phi)
                    break;  // phis lead the block
                if (!n.dead) {
                    has_phi = true;
                    break;
                }
            }
            if (!has_phi)
                continue;
            BlockId t = g.newBlock();
            IrNode go;
            go.op = IrOp::Goto;
            g.append(t, std::move(go));
            g.block(t).succTrue = s;
            g.block(t).preds = {b};
            if (which == 0)
                g.block(b).succTrue = t;
            else
                g.block(b).succFalse = t;
            for (auto &p : g.block(s).preds) {
                if (p == b) {
                    p = t;
                    break;
                }
            }
        }
    }
}

/** Rewrite uses of pass-through check results to their inputs, so the
 *  allocator never assigns a register to a check node. The checks stay
 *  in their blocks and still emit flag+branch code; only their *value*
 *  identity collapses onto the checked value. */
void
rewriteCheckUses(Graph &g)
{
    auto resolveCheck = [&](ValueId v) {
        while (v != kNoValue && g.node(v).isCheck())
            v = g.node(v).inputs[0];
        return v;
    };
    for (auto &n : g.nodes) {
        if (n.dead)
            continue;
        for (auto &in : n.inputs)
            in = resolveCheck(in);
    }
    for (auto &fs : g.frameStates) {
        for (auto &r : fs.regs)
            r = resolveCheck(r);
        fs.accumulator = resolveCheck(fs.accumulator);
    }
}

// ---------------------------------------------------------------------
// Code generator
// ---------------------------------------------------------------------

class CodeGenerator
{
  public:
    CodeGenerator(CompilerEnv &env, Graph &g, const CodegenConfig &cfg)
        : env(env), g(g), cfg(cfg)
    {}

    std::unique_ptr<CodeObject>
    run()
    {
        code = std::make_unique<CodeObject>();
        code->function = g.function;
        code->flavour = cfg.flavour;
        code->usedSmiExtension = cfg.smiExtension;
        code->branchesRemoved = cfg.removeDeoptBranches;
        code->dependsOnGlobalCells = g.embeddedGlobalCells;
        if (g.function != kInvalidFunction
            && g.function < env.functions.count()) {
            const FunctionInfo &fn = env.functions.at(g.function);
            code->functionName = fn.name;
            code->bcPositions = fn.bcPositions;
        }

        splitCriticalEdges(g);
        rewriteCheckUses(g);

        // Emission order: blocks as created (entry, then bytecode
        // order, then split blocks), skipping unreachable empty ones.
        for (BlockId b = 0; b < g.blocks.size(); b++) {
            if (!g.block(b).nodes.empty())
                blockOrder.push_back(b);
        }

        RegallocOptions ropt;
        ropt.flavour = cfg.flavour;
        ropt.maxGprs = cfg.maxGprs;
        ropt.maxFprs = cfg.maxFprs;
        if (cfg.trace != nullptr && cfg.trace->on(TraceCategory::Compile)) {
            ropt.trace = cfg.trace;
            ropt.traceTimestamp = cfg.traceTimestamp;
            ropt.traceFunction = cfg.traceFunction;
        }
        ra = allocateRegisters(g, blockOrder, ropt);
        code->spillSlots = ra.spillSlots;
        code->raStats = ra.stats;
        if (cfg.verifyAllocation)
            enforce(verifyAllocation(g, blockOrder, ra),
                    "register allocation");

        // Emission decisions the allocator already committed to (it
        // read the affected operands at the consuming position).
        skippedLenLoads.insert(ra.skippedLenLoads.begin(),
                               ra.skippedLenLoads.end());
        isFusedCompare.assign(g.nodes.size(), false);
        for (ValueId c : ra.fusedCompares)
            isFusedCompare[c] = true;
        placeEdgeMoves();

        emitPrologue();
        for (size_t i = 0; i < blockOrder.size(); i++) {
            curBlockIndex = i;
            emitBlock(blockOrder[i]);
        }
        emitDeoptExitRegion();
        patchBranches();
        return std::move(code);
    }

  private:
    // ---- small helpers --------------------------------------------------

    u32
    emit(MInst m)
    {
        code->code.push_back(m);
        return static_cast<u32>(code->code.size()) - 1;
    }

    MInst
    make(MOp op, u8 rd = 0, u8 rn = 0, u8 rm = 0, i64 imm = 0)
    {
        MInst m;
        m.op = op;
        m.rd = rd;
        m.rn = rn;
        m.rm = rm;
        m.imm = imm;
        m.checkId = curCheckId;
        m.checkRole = curCheckId == kNoCheck ? CheckRole::None
                                             : CheckRole::Condition;
        m.bcOff = curBcOff;
        return m;
    }

    /** RAII-less check scope: instructions emitted while set belong to
     *  the check as Condition role. */
    void beginCheck(DeoptReason reason)
    {
        CheckInfo ci;
        ci.id = static_cast<u16>(code->checks.size());
        ci.reason = reason;
        ci.group = checkGroupOf(reason);
        code->checks.push_back(ci);
        curCheckId = ci.id;
    }
    void endCheck() { curCheckId = kNoCheck; }

    /** Location of @p v at the current emission position. */
    Allocation allocAt(ValueId v) const { return ra.locationAt(v, curPos); }

    bool
    isConst(ValueId v) const
    {
        IrOp op = g.node(v).op;
        return op == IrOp::ConstI32 || op == IrOp::ConstTagged
               || op == IrOp::ConstF64;
    }

    /** Register currently holding @p v, reloading/rematerializing into
     *  a scratch register when needed. @p which selects the scratch. */
    u8
    gpr(ValueId v, int which = 0)
    {
        u8 scratch = which == 0 ? kSpillScratch0
                     : which == 1 ? kSpillScratch1 : kScratch0;
        const IrNode &n = g.node(v);
        if (n.op == IrOp::ConstI32 || n.op == IrOp::ConstTagged) {
            emit(make(MOp::MovI, scratch, 0, 0, n.imm));
            return scratch;
        }
        Allocation a = allocAt(v);
        switch (a.where) {
          case Allocation::Where::Reg:
            return a.reg;
          case Allocation::Where::Spill:
            emit(make(MOp::LdrX, scratch, kSpReg, 0, 8 * a.slot));
            return scratch;
          default:
            vpanic("gpr: value has no GPR location");
        }
    }

    u8
    fpr(ValueId v, int which = 0)
    {
        u8 scratch = which == 0 ? kFpScratch0 : kFpScratch1;
        const IrNode &n = g.node(v);
        if (n.op == IrOp::ConstF64) {
            MInst m = make(MOp::FMovI, scratch);
            m.fimm = n.fval;
            emit(m);
            return scratch;
        }
        Allocation a = allocAt(v);
        switch (a.where) {
          case Allocation::Where::FReg:
            return a.reg;
          case Allocation::Where::Spill:
            emit(make(MOp::LdrD, scratch, kSpReg, 0, 8 * a.slot));
            return scratch;
          default:
            vpanic("fpr: value has no FPR location");
        }
    }

    /** Destination register for @p v (scratch when spilled); call
     *  finishDef(v, reg) after computing into it. */
    u8
    defGpr(ValueId v)
    {
        Allocation a = allocAt(v);
        if (a.where == Allocation::Where::Reg)
            return a.reg;
        // Spilled defs land in kScratch1, never in the operand reload
        // scratches, so multi-instruction expansions that re-read their
        // inputs after the def (e.g. the -0 check of I32Mul) stay valid.
        if (a.where == Allocation::Where::Spill)
            return kScratch1;
        vpanic("defGpr on unallocated value");
    }

    u8
    defFpr(ValueId v)
    {
        Allocation a = allocAt(v);
        if (a.where == Allocation::Where::FReg)
            return a.reg;
        if (a.where == Allocation::Where::Spill)
            return kFpScratch0;
        vpanic("defFpr on unallocated value");
    }

    void
    finishDef(ValueId v, u8 reg)
    {
        Allocation a = allocAt(v);
        if (a.where == Allocation::Where::Spill) {
            bool is_f = g.node(v).rep == Rep::Float64;
            emit(make(is_f ? MOp::StrD : MOp::StrX, reg, kSpReg, 0,
                      8 * a.slot));
        }
    }

    // ---- deoptimization ---------------------------------------------------

    DeoptLocation
    locationOf(ValueId v)
    {
        DeoptLocation loc;
        if (v == kNoValue) {
            loc.where = DeoptLocation::Where::None;
            return loc;
        }
        const IrNode &n = g.node(v);
        loc.rep = n.rep;
        switch (n.op) {
          case IrOp::ConstI32:
            loc.where = n.rep == Rep::Bool || n.rep == Rep::Int32
                        ? DeoptLocation::Where::ConstI32
                        : DeoptLocation::Where::ConstTagged;
            loc.imm = n.imm;
            return loc;
          case IrOp::ConstTagged:
            loc.where = DeoptLocation::Where::ConstTagged;
            loc.imm = n.imm;
            return loc;
          case IrOp::ConstF64:
            loc.where = DeoptLocation::Where::ConstF64;
            loc.fval = n.fval;
            return loc;
          default:
            break;
        }
        Allocation a = allocAt(v);
        switch (a.where) {
          case Allocation::Where::Reg:
            loc.where = DeoptLocation::Where::Reg;
            loc.reg = a.reg;
            break;
          case Allocation::Where::FReg:
            loc.where = DeoptLocation::Where::FReg;
            loc.reg = a.reg;
            break;
          case Allocation::Where::Spill:
            loc.where = DeoptLocation::Where::Spill;
            loc.slot = a.slot;
            break;
          default:
            loc.where = DeoptLocation::Where::None;
            break;
        }
        return loc;
    }

    u16
    makeDeoptExit(DeoptReason reason, u32 frame_state, u16 check_id)
    {
        DeoptExitInfo exit;
        exit.checkId = check_id;
        exit.reason = reason;
        vassert(frame_state != kNoFrameState, "deopt without frame state");
        const FrameState &fs = g.frameStates[frame_state];
        exit.bytecodeOffset = fs.bytecodeOffset;
        for (ValueId r : fs.regs)
            exit.regs.push_back(locationOf(r));
        exit.accumulator = locationOf(fs.accumulator);
        code->deoptExits.push_back(std::move(exit));
        return static_cast<u16>(code->deoptExits.size()) - 1;
    }

    /** Emit the conditional deoptimization branch for the current
     *  check (suppressed in branch-only-removal mode). */
    void
    emitDeoptBranch(Cond cond, DeoptReason reason, u32 frame_state)
    {
        u16 exit_idx = makeDeoptExit(reason, frame_state, curCheckId);
        if (cfg.removeDeoptBranches)
            return;
        MInst b = make(MOp::Bcond);
        b.cond = cond;
        b.isDeoptBranch = true;
        b.deoptIndex = exit_idx;
        b.checkRole = CheckRole::Branch;
        u32 at = emit(b);
        deoptBranchFixups.push_back({at, exit_idx});
    }

    // ---- branches / labels ------------------------------------------------

    struct BlockFixup { u32 inst; BlockId target; };
    struct DeoptFixup { u32 inst; u16 exit; };

    u32
    emitLocalBranch(MOp op, Cond cond)
    {
        MInst m = make(op);
        m.cond = cond;
        return emit(m);
    }

    void bindLocal(u32 inst)
    {
        code->code[inst].target = static_cast<u32>(code->code.size());
    }

    void
    emitBranchTo(BlockId target, Cond cond = Cond::Al)
    {
        MInst m = make(cond == Cond::Al ? MOp::B : MOp::Bcond);
        m.cond = cond;
        u32 at = emit(m);
        blockFixups.push_back({at, target});
    }

    void
    patchBranches()
    {
        for (const auto &f : blockFixups)
            code->code[f.inst].target = blockStart.at(f.target);
        for (const auto &f : deoptBranchFixups)
            code->code[f.inst].target = deoptExitInstr.at(f.exit);
    }

    // ---- parallel moves ----------------------------------------------------

    struct MoveLoc
    {
        enum class Kind : u8 { Gpr, Fpr, Spill, ImmI, ImmF } kind;
        u8 reg = 0;
        i32 slot = 0;
        i64 imm = 0;
        double fimm = 0.0;

        bool
        sameAs(const MoveLoc &o) const
        {
            if (kind != o.kind)
                return false;
            switch (kind) {
              case Kind::Gpr: case Kind::Fpr: return reg == o.reg;
              case Kind::Spill: return slot == o.slot;
              case Kind::ImmI: return imm == o.imm;
              case Kind::ImmF: return fimm == o.fimm;
            }
            return false;
        }
        bool
        clobberedBy(const MoveLoc &dst) const
        {
            return (kind == Kind::Gpr || kind == Kind::Fpr
                    || kind == Kind::Spill)
                   && sameAs(dst);
        }
    };

    MoveLoc
    allocMoveLoc(const Allocation &a)
    {
        MoveLoc l;
        switch (a.where) {
          case Allocation::Where::Reg:
            l.kind = MoveLoc::Kind::Gpr;
            l.reg = a.reg;
            break;
          case Allocation::Where::FReg:
            l.kind = MoveLoc::Kind::Fpr;
            l.reg = a.reg;
            break;
          case Allocation::Where::Spill:
            l.kind = MoveLoc::Kind::Spill;
            l.slot = a.slot;
            break;
          default:
            vpanic("allocMoveLoc: unallocated value");
        }
        return l;
    }

    /** Move endpoint for @p v at position @p pos (phi destinations are
     *  read at the successor's entry, everything else at curPos). */
    MoveLoc
    moveLocAt(ValueId v, u32 pos)
    {
        MoveLoc l;
        const IrNode &n = g.node(v);
        if (n.op == IrOp::ConstI32 || n.op == IrOp::ConstTagged) {
            l.kind = MoveLoc::Kind::ImmI;
            l.imm = n.imm;
            return l;
        }
        if (n.op == IrOp::ConstF64) {
            l.kind = MoveLoc::Kind::ImmF;
            l.fimm = n.fval;
            return l;
        }
        return allocMoveLoc(ra.locationAt(v, pos));
    }

    MoveLoc moveLocOf(ValueId v) { return moveLocAt(v, curPos); }

    void
    emitMove(const MoveLoc &src, const MoveLoc &dst)
    {
        using K = MoveLoc::Kind;
        if (src.sameAs(dst))
            return;
        switch (dst.kind) {
          case K::Gpr:
            switch (src.kind) {
              case K::Gpr: emit(make(MOp::MovR, dst.reg, src.reg)); break;
              case K::ImmI:
                emit(make(MOp::MovI, dst.reg, 0, 0, src.imm));
                break;
              case K::Spill:
                emit(make(MOp::LdrX, dst.reg, kSpReg, 0, 8 * src.slot));
                break;
              default: vpanic("bad gpr move source");
            }
            break;
          case K::Fpr:
            switch (src.kind) {
              case K::Fpr: emit(make(MOp::FMovRR, dst.reg, src.reg)); break;
              case K::ImmF: {
                MInst m = make(MOp::FMovI, dst.reg);
                m.fimm = src.fimm;
                emit(m);
                break;
              }
              case K::Spill:
                emit(make(MOp::LdrD, dst.reg, kSpReg, 0, 8 * src.slot));
                break;
              default: vpanic("bad fpr move source");
            }
            break;
          case K::Spill:
            switch (src.kind) {
              case K::Gpr:
                emit(make(MOp::StrX, src.reg, kSpReg, 0, 8 * dst.slot));
                break;
              case K::Fpr:
                emit(make(MOp::StrD, src.reg, kSpReg, 0, 8 * dst.slot));
                break;
              case K::ImmI:
                emit(make(MOp::MovI, kScratch0, 0, 0, src.imm));
                emit(make(MOp::StrX, kScratch0, kSpReg, 0, 8 * dst.slot));
                break;
              case K::ImmF: {
                MInst m = make(MOp::FMovI, kFpScratch1);
                m.fimm = src.fimm;
                emit(m);
                emit(make(MOp::StrD, kFpScratch1, kSpReg, 0, 8 * dst.slot));
                break;
              }
              case K::Spill:
                emit(make(MOp::LdrX, kScratch0, kSpReg, 0, 8 * src.slot));
                emit(make(MOp::StrX, kScratch0, kSpReg, 0, 8 * dst.slot));
                break;
            }
            break;
          default:
            vpanic("bad move destination");
        }
    }

    /** Resolve a set of parallel moves using scratch registers to break
     *  cycles (classic Briggs algorithm). */
    void
    resolveParallelMoves(std::vector<std::pair<MoveLoc, MoveLoc>> moves)
    {
        std::erase_if(moves, [](auto &m) { return m.first.sameAs(m.second); });
        while (!moves.empty()) {
            bool progressed = false;
            for (size_t i = 0; i < moves.size(); i++) {
                const MoveLoc &dst = moves[i].second;
                bool blocked = false;
                for (size_t j = 0; j < moves.size(); j++) {
                    if (j != i && moves[j].first.clobberedBy(dst)) {
                        blocked = true;
                        break;
                    }
                }
                if (!blocked) {
                    emitMove(moves[i].first, moves[i].second);
                    moves.erase(moves.begin() + static_cast<long>(i));
                    progressed = true;
                    break;
                }
            }
            if (progressed)
                continue;
            // Cycle: stash the first source in a scratch register.
            // The scratch's class follows the stashed *value*, not the
            // location it happens to occupy: a float sitting in a
            // spill slot but headed for an FPR (slot<->register swap
            // cycles the allocator's split moves can produce) must be
            // staged through an FP scratch — there is no GPR->FPR
            // move. All moves sourcing one location carry the same
            // value, so scanning their endpoints decides the class.
            // kFpScratch0 is free here (kFpScratch1 stages ImmF->slot
            // inside this same resolution loop).
            MoveLoc old_src = moves[0].first;
            bool fp_value = false;
            for (const auto &m : moves) {
                if (!m.first.sameAs(old_src))
                    continue;
                if (m.first.kind == MoveLoc::Kind::Fpr
                    || m.second.kind == MoveLoc::Kind::Fpr)
                    fp_value = true;
            }
            MoveLoc scratch;
            scratch.kind = fp_value ? MoveLoc::Kind::Fpr
                                    : MoveLoc::Kind::Gpr;
            scratch.reg = fp_value ? kFpScratch0 : kScratch1;
            emitMove(moves[0].first, scratch);
            moves[0].first = scratch;
            for (size_t j = 1; j < moves.size(); j++) {
                if (moves[j].first.sameAs(old_src))
                    moves[j].first = scratch;
            }
        }
    }

    // ---- prologue / epilogue ----------------------------------------------

    void
    emitPrologue()
    {
        if (code->spillSlots > 0)
            emit(make(MOp::SubI, kSpReg, kSpReg, 0, 8 * code->spillSlots));

        // Fig. 11 prologue: load the bailout handler address into
        // REG_BA when the extension's fused loads are present.
        if (cfg.smiExtension) {
            bool any_fused = false;
            for (const auto &n : g.nodes) {
                if (!n.dead && (n.op == IrOp::LoadFieldSmiUntag
                                || n.op == IrOp::LoadElemSmiUntag))
                    any_fused = true;
            }
            if (any_fused) {
                emit(make(MOp::MovI, kScratch0, 0, 0, kBailoutHandlerAddr));
                MInst m = make(MOp::Msr, 0, kScratch0);
                m.imm = static_cast<i64>(SpecialReg::REG_BA);
                emit(m);
            }
        }

        // Move incoming machine arguments into their allocations.
        std::vector<std::pair<MoveLoc, MoveLoc>> moves;
        for (BlockId b : blockOrder) {
            for (ValueId id : g.block(b).nodes) {
                const IrNode &n = g.node(id);
                if (n.dead || n.op != IrOp::Param)
                    continue;
                if (!ra.isAllocated(id))
                    continue;
                MoveLoc src;
                src.kind = MoveLoc::Kind::Gpr;
                src.reg = static_cast<u8>(n.imm);
                // Params are defined at their block's entry (the
                // allocator starts their interval there), so the
                // destination is the first segment's location.
                moves.push_back({src, moveLocAt(id, ra.blockFrom[b])});
            }
        }
        resolveParallelMoves(std::move(moves));
    }

    void
    emitEpilogue()
    {
        if (code->spillSlots > 0)
            emit(make(MOp::AddI, kSpReg, kSpReg, 0, 8 * code->spillSlots));
        emit(make(MOp::Ret));
    }

    // ---- deopt exit region ------------------------------------------------

    void
    emitDeoptExitRegion()
    {
        // "Deoptimization paths always jump to a specific region at the
        // end of a compiled function" (§III-A).
        for (u16 i = 0; i < code->deoptExits.size(); i++) {
            deoptExitInstr[i] = static_cast<u32>(code->code.size());
            curBcOff = code->deoptExits[i].bytecodeOffset;
            MInst m = make(MOp::DeoptExit);
            m.imm = i;
            m.deoptIndex = i;
            emit(m);
        }
    }

    // ---- per-block emission -------------------------------------------------

    void
    emitBlock(BlockId b)
    {
        blockStart[b] = static_cast<u32>(code->code.size());
        const BasicBlock &blk = g.block(b);

        // Edge-resolution moves routed to this block's entry (the
        // single predecessor branches, so they cannot run there).
        auto ein = movesAtEntry.find(b);
        if (ein != movesAtEntry.end())
            emitEdgeMoves(ein->second);

        // Compare-into-branch fusion, as decided by the allocator (it
        // read the compare's operands at the branch position).
        fusedCompare = kNoValue;
        for (ValueId id : blk.nodes) {
            const IrNode &n = g.node(id);
            if (n.dead)
                continue;
            if (n.isTerminator()) {
                if (n.op == IrOp::Branch && isFusedCompare[n.inputs[0]])
                    fusedCompare = n.inputs[0];
                break;
            }
        }

        for (ValueId id : blk.nodes) {
            const IrNode &n = g.node(id);
            if (n.dead)
                continue;
            emitNode(b, id, n);
        }
    }

    /** Emit phi moves for the (single successor) edge b -> succ, plus
     *  any edge-resolution moves placed on that edge — one parallel
     *  set, so a phi move and a resolution move never clobber each
     *  other's source. */
    void
    emitPhiMoves(BlockId b, BlockId succ)
    {
        std::vector<std::pair<MoveLoc, MoveLoc>> moves;
        const BasicBlock &sb = g.block(succ);
        int pred_index = -1;
        for (size_t i = 0; i < sb.preds.size(); i++) {
            if (sb.preds[i] == b)
                pred_index = static_cast<int>(i);
        }
        if (pred_index >= 0) {
            for (ValueId id : sb.nodes) {
                const IrNode &n = g.node(id);
                if (n.op != IrOp::Phi)
                    break;
                if (n.dead)
                    continue;
                if (static_cast<size_t>(pred_index) >= n.inputs.size())
                    continue;
                if (!ra.isAllocated(id))
                    continue;
                ValueId in = n.inputs[pred_index];
                // The phi is defined at the successor's entry; its
                // input is read where this block ends.
                moves.push_back({moveLocOf(in),
                                 moveLocAt(id, ra.blockFrom[succ])});
            }
        }
        auto eg = movesAtGoto.find(b);
        if (eg != movesAtGoto.end()) {
            for (const EdgeMove &m : eg->second)
                moves.push_back({allocMoveLoc(m.from), allocMoveLoc(m.to)});
        }
        resolveParallelMoves(std::move(moves));
    }

    void
    emitEdgeMoves(const std::vector<EdgeMove> &em)
    {
        std::vector<std::pair<MoveLoc, MoveLoc>> moves;
        moves.reserve(em.size());
        for (const EdgeMove &m : em)
            moves.push_back({allocMoveLoc(m.from), allocMoveLoc(m.to)});
        resolveParallelMoves(std::move(moves));
    }

    /** Materialize the allocator's split moves for the gap position
     *  just before the instruction at curPos (one parallel set per
     *  gap; gapMoves is sorted by position and emission follows the
     *  same order, so a cursor suffices). */
    void
    emitGapMoves()
    {
        if (gapCursor >= ra.gapMoves.size()
            || ra.gapMoves[gapCursor].pos >= curPos)
            return;
        std::vector<std::pair<MoveLoc, MoveLoc>> moves;
        while (gapCursor < ra.gapMoves.size()
               && ra.gapMoves[gapCursor].pos < curPos) {
            const GapMove &m = ra.gapMoves[gapCursor++];
            moves.push_back({allocMoveLoc(m.from), allocMoveLoc(m.to)});
        }
        resolveParallelMoves(std::move(moves));
    }

    /** Decide where each CFG edge's resolution moves execute: merged
     *  into the predecessor's phi-move set (it ends in a Goto), at the
     *  successor's entry (it has no other predecessor), or in a fresh
     *  block splitting the critical edge. */
    void
    placeEdgeMoves()
    {
        for (const EdgeResolution &er : ra.edgeMoves) {
            if (g.block(er.pred).succFalse == kNoBlock) {
                auto &v = movesAtGoto[er.pred];
                v.insert(v.end(), er.moves.begin(), er.moves.end());
            } else if (g.block(er.succ).preds.size() < 2) {
                auto &v = movesAtEntry[er.succ];
                v.insert(v.end(), er.moves.begin(), er.moves.end());
            } else {
                BlockId t = g.newBlock();
                IrNode go;
                go.op = IrOp::Goto;
                g.append(t, std::move(go));
                g.block(t).succTrue = er.succ;
                g.block(t).preds = {er.pred};
                if (g.block(er.pred).succTrue == er.succ)
                    g.block(er.pred).succTrue = t;
                else
                    g.block(er.pred).succFalse = t;
                for (auto &p : g.block(er.succ).preds) {
                    if (p == er.pred) {
                        p = t;
                        break;
                    }
                }
                blockOrder.push_back(t);
                movesAtGoto[t] = er.moves;
                resolutionBlocks.insert(t);
            }
        }
    }

    Cond
    mapF64Cond(Cond c)
    {
        switch (c) {
          case Cond::Lt: return Cond::Mi;
          case Cond::Le: return Cond::Ls;
          default: return c;  // Gt/Ge/Eq/Ne are NaN-correct as-is
        }
    }

    /** Emit the flag-setting compare for a comparison node. */
    Cond
    emitCompareFlags(const IrNode &n)
    {
        if (n.op == IrOp::F64Compare) {
            u8 a = fpr(n.inputs[0], 0);
            u8 b2 = fpr(n.inputs[1], 1);
            emit(make(MOp::FCmp, 0, a, b2));
            return mapF64Cond(n.cond);
        }
        u8 a = gpr(n.inputs[0], 0);
        const IrNode &rhs = g.node(n.inputs[1]);
        if (rhs.op == IrOp::ConstI32 || rhs.op == IrOp::ConstTagged) {
            emit(make(MOp::CmpI, 0, a, 0, rhs.imm));
        } else {
            u8 b2 = gpr(n.inputs[1], 1);
            emit(make(MOp::Cmp, 0, a, b2));
        }
        return n.cond;
    }

    void emitNode(BlockId b, ValueId id, const IrNode &n);
    void emitBinaryArith(ValueId id, const IrNode &n);
    void emitCheckNode(ValueId id, const IrNode &n);
    void emitMemoryNode(ValueId id, const IrNode &n);
    void emitCallNode(ValueId id, const IrNode &n);
    void emitToFloat64(ValueId id, const IrNode &n);

    CompilerEnv &env;
    Graph &g;
    CodegenConfig cfg;
    std::unique_ptr<CodeObject> code;
    AllocationResult ra;
    std::vector<BlockId> blockOrder;
    size_t curBlockIndex = 0;
    /** Linear position of the node being emitted; all operand /
     *  deopt-location queries answer for this position. */
    u32 curPos = 0;
    size_t gapCursor = 0;
    /** Edge-resolution moves keyed by predecessor (merged with its phi
     *  moves) or successor (emitted at block entry). */
    std::map<BlockId, std::vector<EdgeMove>> movesAtGoto;
    std::map<BlockId, std::vector<EdgeMove>> movesAtEntry;
    /** Blocks created by placeEdgeMoves: no positions, no interrupt
     *  polls (they are move sequences, not loop back edges). */
    std::set<BlockId> resolutionBlocks;
    std::vector<bool> isFusedCompare;
    std::map<BlockId, u32> blockStart;
    std::map<u16, u32> deoptExitInstr;
    std::vector<BlockFixup> blockFixups;
    std::vector<DeoptFixup> deoptBranchFixups;
    u16 curCheckId = kNoCheck;
    /** Bytecode offset of the IR node being emitted; stamped onto every
     *  MInst by make() so each machine pc maps back to source (vprof). */
    u32 curBcOff = 0;
    ValueId fusedCompare = kNoValue;
    std::set<ValueId> skippedLenLoads;
};

void
CodeGenerator::emitBinaryArith(ValueId id, const IrNode &n)
{
    bool checked = n.checked;
    switch (n.op) {
      case IrOp::I32Add:
      case IrOp::I32Sub: {
        u8 a = gpr(n.inputs[0], 0);
        u8 d = defGpr(id);
        const IrNode &rhs = g.node(n.inputs[1]);
        MOp op = n.op == IrOp::I32Add ? MOp::Add : MOp::Sub;
        MOp opi = n.op == IrOp::I32Add ? MOp::AddI : MOp::SubI;
        // The add/sub itself is main-line code; only the SMI-range
        // verification that follows belongs to the check.
        if (rhs.op == IrOp::ConstI32) {
            emit(make(opi, d, a, 0, rhs.imm));
        } else {
            u8 b2 = gpr(n.inputs[1], 1);
            emit(make(op, d, a, b2));
        }
        if (checked) {
            beginCheck(n.reason);
            // 31-bit SMI range check: doubling overflows iff the value
            // does not fit 31 bits (this is also the tagging shift).
            emit(make(MOp::Adds, kScratch0, d, d));
            emitDeoptBranch(Cond::Vs, n.reason, n.frameState);
            endCheck();
        }
        finishDef(id, d);
        break;
      }
      case IrOp::I32Mul: {
        u8 a = gpr(n.inputs[0], 0);
        u8 b2 = gpr(n.inputs[1], 1);
        u8 d = defGpr(id);
        if (!checked) {
            emit(make(MOp::Mul, d, a, b2));
            finishDef(id, d);
            break;
        }
        emit(make(MOp::Smull, d, a, b2));
        beginCheck(DeoptReason::Overflow);
        emit(make(MOp::CmpSxtw, 0, d, d));
        emitDeoptBranch(Cond::Ne, DeoptReason::Overflow, n.frameState);
        emit(make(MOp::Adds, kScratch0, d, d));
        emitDeoptBranch(Cond::Vs, DeoptReason::Overflow, n.frameState);
        endCheck();
        if (!n.elideMinusZero) {
            beginCheck(DeoptReason::MinusZero);
            emit(make(MOp::CmpI, 0, d, 0, 0));
            u32 skip = emitLocalBranch(MOp::Bcond, Cond::Ne);
            emit(make(MOp::Orr, kScratch0, a, b2));
            emit(make(MOp::TstI, 0, kScratch0, 0,
                      static_cast<i64>(0x80000000u)));
            emitDeoptBranch(Cond::Ne, DeoptReason::MinusZero,
                            n.frameState);
            bindLocal(skip);
            endCheck();
        }
        finishDef(id, d);
        break;
      }
      case IrOp::I32Div: {
        u8 a = gpr(n.inputs[0], 0);
        u8 b2 = gpr(n.inputs[1], 1);
        u8 d = defGpr(id);
        const IrNode &rhs = g.node(n.inputs[1]);
        bool const_nonzero = rhs.op == IrOp::ConstI32 && rhs.imm != 0;
        bool const_positive = const_nonzero && rhs.imm > 0;
        if (checked && !const_nonzero) {
            beginCheck(DeoptReason::DivisionByZero);
            emit(make(MOp::CmpI, 0, b2, 0, 0));
            emitDeoptBranch(Cond::Eq, DeoptReason::DivisionByZero,
                            n.frameState);
            endCheck();
        }
        emit(make(MOp::SDiv, d, a, b2));
        if (checked) {
            if (!n.elideMinusZero && !const_positive) {
                beginCheck(DeoptReason::MinusZero);
                emit(make(MOp::CmpI, 0, a, 0, 0));
                u32 skip = emitLocalBranch(MOp::Bcond, Cond::Ne);
                emit(make(MOp::CmpI, 0, b2, 0, 0));
                emitDeoptBranch(Cond::Lt, DeoptReason::MinusZero,
                                n.frameState);
                bindLocal(skip);
                endCheck();
            }
            beginCheck(DeoptReason::LostPrecision);
            emit(make(MOp::Mul, kScratch0, d, b2));
            emit(make(MOp::Cmp, 0, kScratch0, a));
            emitDeoptBranch(Cond::Ne, DeoptReason::LostPrecision,
                            n.frameState);
            endCheck();
        }
        finishDef(id, d);
        break;
      }
      case IrOp::I32Mod: {
        u8 a = gpr(n.inputs[0], 0);
        u8 b2 = gpr(n.inputs[1], 1);
        u8 d = defGpr(id);
        const IrNode &rhs = g.node(n.inputs[1]);
        bool const_nonzero = rhs.op == IrOp::ConstI32 && rhs.imm != 0;
        if (checked && !const_nonzero) {
            beginCheck(DeoptReason::NaN);
            emit(make(MOp::CmpI, 0, b2, 0, 0));
            emitDeoptBranch(Cond::Eq, DeoptReason::NaN, n.frameState);
            endCheck();
        }
        emit(make(MOp::SDiv, kScratch0, a, b2));
        emit(make(MOp::Mul, kScratch0, kScratch0, b2));
        emit(make(MOp::Sub, d, a, kScratch0));
        if (checked && !n.elideMinusZero) {
            beginCheck(DeoptReason::MinusZero);
            emit(make(MOp::CmpI, 0, d, 0, 0));
            u32 skip = emitLocalBranch(MOp::Bcond, Cond::Ne);
            emit(make(MOp::CmpI, 0, a, 0, 0));
            emitDeoptBranch(Cond::Lt, DeoptReason::MinusZero, n.frameState);
            bindLocal(skip);
            endCheck();
        }
        finishDef(id, d);
        break;
      }
      case IrOp::I32Neg: {
        u8 a = gpr(n.inputs[0], 0);
        u8 d = defGpr(id);
        if (checked && !n.elideMinusZero) {
            beginCheck(DeoptReason::MinusZero);
            emit(make(MOp::CmpI, 0, a, 0, 0));
            emitDeoptBranch(Cond::Eq, DeoptReason::MinusZero, n.frameState);
            endCheck();
        }
        emit(make(MOp::MovI, kScratch0, 0, 0, 0));
        emit(make(MOp::Sub, d, kScratch0, a));
        if (checked) {
            beginCheck(DeoptReason::Overflow);
            emit(make(MOp::Adds, kScratch0, d, d));
            emitDeoptBranch(Cond::Vs, DeoptReason::Overflow, n.frameState);
            endCheck();
        }
        finishDef(id, d);
        break;
      }
      case IrOp::I32And: case IrOp::I32Or: case IrOp::I32Xor:
      case IrOp::I32Shl: case IrOp::I32Sar: case IrOp::I32Shr: {
        u8 a = gpr(n.inputs[0], 0);
        u8 d = defGpr(id);
        MOp op, opi;
        switch (n.op) {
          case IrOp::I32And: op = MOp::And; opi = MOp::AndI; break;
          case IrOp::I32Or: op = MOp::Orr; opi = MOp::OrrI; break;
          case IrOp::I32Xor: op = MOp::Eor; opi = MOp::EorI; break;
          case IrOp::I32Shl: op = MOp::Lsl; opi = MOp::LslI; break;
          case IrOp::I32Sar: op = MOp::Asr; opi = MOp::AsrI; break;
          default: op = MOp::Lsr; opi = MOp::LsrI; break;
        }
        const IrNode &rhs = g.node(n.inputs[1]);
        if (rhs.op == IrOp::ConstI32) {
            emit(make(opi, d, a, 0, rhs.imm));
        } else {
            u8 b2 = gpr(n.inputs[1], 1);
            emit(make(op, d, a, b2));
        }
        if (n.op == IrOp::I32Shr && checked) {
            beginCheck(DeoptReason::LostPrecision);
            emit(make(MOp::Adds, kScratch0, d, d));
            emitDeoptBranch(Cond::Vs, DeoptReason::LostPrecision,
                            n.frameState);
            endCheck();
        }
        finishDef(id, d);
        break;
      }
      case IrOp::F64Add: case IrOp::F64Sub: case IrOp::F64Mul:
      case IrOp::F64Div: {
        u8 a = fpr(n.inputs[0], 0);
        u8 b2 = fpr(n.inputs[1], 1);
        u8 d = defFpr(id);
        MOp op = n.op == IrOp::F64Add ? MOp::FAdd
                 : n.op == IrOp::F64Sub ? MOp::FSub
                 : n.op == IrOp::F64Mul ? MOp::FMul : MOp::FDiv;
        emit(make(op, d, a, b2));
        finishDef(id, d);
        break;
      }
      case IrOp::F64Neg: case IrOp::F64Abs: case IrOp::F64Sqrt: {
        u8 a = fpr(n.inputs[0], 0);
        u8 d = defFpr(id);
        MOp op = n.op == IrOp::F64Neg ? MOp::FNeg
                 : n.op == IrOp::F64Abs ? MOp::FAbs : MOp::FSqrt;
        emit(make(op, d, a));
        finishDef(id, d);
        break;
      }
      default:
        vpanic("emitBinaryArith: unexpected op");
    }
}

void
CodeGenerator::emitCheckNode(ValueId id, const IrNode &n)
{
    (void)id;
    beginCheck(n.reason);
    switch (n.op) {
      case IrOp::CheckSmi: {
        u8 r = gpr(n.inputs[0], 0);
        emit(make(MOp::TstI, 0, r, 0, 1));
        emitDeoptBranch(Cond::Ne, n.reason, n.frameState);
        break;
      }
      case IrOp::CheckHeapObject: {
        u8 r = gpr(n.inputs[0], 0);
        emit(make(MOp::TstI, 0, r, 0, 1));
        emitDeoptBranch(Cond::Eq, n.reason, n.frameState);
        break;
      }
      case IrOp::CheckMap: {
        u8 r = gpr(n.inputs[0], 0);
        u32 map_word = env.vm.maps.mapWord(static_cast<MapId>(n.imm));
        if (cfg.mapCheckExtension) {
            // §VII future-work ablation: one fused load+compare.
            MInst m = make(MOp::JsChkMap, 0, r);
            m.imm = map_word;
            emit(m);
        } else if (cfg.flavour == IsaFlavour::X64Like) {
            MInst m = make(MOp::CmpMemI, 0, r, 0, -1);
            m.target = map_word;
            emit(m);
        } else {
            emit(make(MOp::LdrW, kScratch0, r, 0, -1));
            emit(make(MOp::CmpI, 0, kScratch0, 0, map_word));
        }
        emitDeoptBranch(Cond::Ne, n.reason, n.frameState);
        break;
      }
      case IrOp::CheckValue: {
        u8 r = gpr(n.inputs[0], 0);
        emit(make(MOp::CmpI, 0, r, 0, n.imm));
        emitDeoptBranch(Cond::Ne, n.reason, n.frameState);
        break;
      }
      case IrOp::CheckBounds: {
        u8 idx = gpr(n.inputs[0], 0);
        const IrNode &len = g.node(n.inputs[1]);
        bool fused_len = false;
        if (skippedLenLoads.count(n.inputs[1])) {
            // cmp idx, [array + length] in one instruction.
            u8 base = gpr(len.inputs[0], 1);
            emit(make(MOp::CmpMem, idx, base, 0, len.imm));
            fused_len = true;
        }
        if (!fused_len) {
            u8 lr = gpr(n.inputs[1], 1);
            emit(make(MOp::Cmp, 0, idx, lr));
        }
        emitDeoptBranch(Cond::Hs, n.reason, n.frameState);
        break;
      }
      default:
        vpanic("emitCheckNode: not a check");
    }
    endCheck();
}

void
CodeGenerator::emitMemoryNode(ValueId id, const IrNode &n)
{
    switch (n.op) {
      case IrOp::LoadField:
      case IrOp::LoadFieldRaw: {
        // x64 bounds fusion, as decided by the allocator: the length
        // load is skipped and the consuming CheckBounds emits a single
        // cmp-with-memory-operand (reading the array base there).
        if (skippedLenLoads.count(id))
            return;  // fused into CmpMem
        u8 base = gpr(n.inputs[0], 0);
        u8 d = defGpr(id);
        emit(make(MOp::LdrW, d, base, 0, n.imm));
        finishDef(id, d);
        break;
      }
      case IrOp::StoreField:
      case IrOp::StoreFieldRaw: {
        u8 base = gpr(n.inputs[0], 0);
        u8 v = gpr(n.inputs[1], 1);
        emit(make(MOp::StrW, v, base, 0, n.imm));
        break;
      }
      case IrOp::LoadElem32:
      case IrOp::LoadElemF64: {
        bool dbl = n.op == IrOp::LoadElemF64;
        u8 base = gpr(n.inputs[0], 0);
        u8 idx = gpr(n.inputs[1], 1);
        u8 scale = dbl ? 3 : 2;
        u8 d = dbl ? defFpr(id) : defGpr(id);
        if (cfg.flavour == IsaFlavour::X64Like) {
            MInst m = make(dbl ? MOp::LdrDr : MOp::LdrWr, d, base, idx,
                           n.imm);
            m.scale = scale;
            emit(m);
        } else {
            emit(make(MOp::AddI, kScratch0, base, 0, n.imm));
            MInst m = make(dbl ? MOp::LdrDr : MOp::LdrWr, d, kScratch0, idx);
            m.scale = scale;
            emit(m);
        }
        finishDef(id, d);
        break;
      }
      case IrOp::StoreElem32:
      case IrOp::StoreElemF64: {
        bool dbl = n.op == IrOp::StoreElemF64;
        u8 base = gpr(n.inputs[0], 0);
        u8 idx = gpr(n.inputs[1], 1);
        // Third GPR operand gets the third scratch (kScratch0).
        u8 v = dbl ? fpr(n.inputs[2], 0) : gpr(n.inputs[2], 2);
        u8 scale = dbl ? 3 : 2;
        if (cfg.flavour == IsaFlavour::X64Like) {
            MInst m = make(dbl ? MOp::StrDr : MOp::StrWr, v, base, idx,
                           n.imm);
            m.scale = scale;
            emit(m);
        } else {
            emit(make(MOp::AddI, kScratch1, base, 0, n.imm));
            MInst m = make(dbl ? MOp::StrDr : MOp::StrWr, v, kScratch1, idx);
            m.scale = scale;
            emit(m);
        }
        break;
      }
      case IrOp::LoadGlobal: {
        u8 d = defGpr(id);
        if (cfg.flavour == IsaFlavour::X64Like) {
            emit(make(MOp::LdrW, d, kAbsBase, 0, n.imm));
        } else {
            emit(make(MOp::MovI, kScratch0, 0, 0, n.imm));
            emit(make(MOp::LdrW, d, kScratch0, 0, 0));
        }
        finishDef(id, d);
        break;
      }
      case IrOp::StoreGlobal: {
        u8 v = gpr(n.inputs[0], 0);
        if (cfg.flavour == IsaFlavour::X64Like) {
            emit(make(MOp::StrW, v, kAbsBase, 0, n.imm));
        } else {
            emit(make(MOp::MovI, kScratch0, 0, 0, n.imm));
            emit(make(MOp::StrW, v, kScratch0, 0, 0));
        }
        break;
      }
      case IrOp::LoadFieldSmiUntag: {
        beginCheck(n.reason);
        u8 base = gpr(n.inputs[0], 0);
        u8 d = defGpr(id);
        u16 exit_idx = makeDeoptExit(n.reason, n.frameState, curCheckId);
        MInst m = make(MOp::JsLdurSmiI, d, base, 0, n.imm);
        m.checkRole = CheckRole::Fused;
        m.deoptIndex = exit_idx;
        emit(m);
        endCheck();
        finishDef(id, d);
        break;
      }
      case IrOp::LoadElemSmiUntag: {
        beginCheck(n.reason);
        u8 base = gpr(n.inputs[0], 0);
        u8 idx = gpr(n.inputs[1], 1);
        u16 exit_idx = makeDeoptExit(n.reason, n.frameState, curCheckId);
        u8 d = defGpr(id);
        emit(make(MOp::AddI, kScratch0, base, 0, n.imm));
        MInst m = make(MOp::JsLdrSmiRS, d, kScratch0, idx);
        m.scale = 2;
        m.checkRole = CheckRole::Fused;
        m.deoptIndex = exit_idx;
        emit(m);
        endCheck();
        finishDef(id, d);
        break;
      }
      default:
        vpanic("emitMemoryNode: unexpected op");
    }
}

void
CodeGenerator::emitToFloat64(ValueId id, const IrNode &n)
{
    u8 r = gpr(n.inputs[0], 0);
    u8 d = defFpr(id);
    emit(make(MOp::TstI, 0, r, 0, 1));
    u32 to_heap = emitLocalBranch(MOp::Bcond, Cond::Ne);
    emit(make(MOp::AsrI, kScratch0, r, 0, 1));
    emit(make(MOp::Scvtf, d, kScratch0));
    u32 to_end = emitLocalBranch(MOp::B, Cond::Al);
    bindLocal(to_heap);
    if (n.checked || n.reason == DeoptReason::NotANumber) {
        // The removable part: verify the heap object is a HeapNumber.
        bool removed = !n.checked && n.reason == DeoptReason::NotANumber;
        if (!removed) {
            beginCheck(DeoptReason::NotANumber);
            u32 map_word = env.vm.maps.mapWord(env.vm.maps.heapNumberMap());
            if (cfg.flavour == IsaFlavour::X64Like) {
                MInst m = make(MOp::CmpMemI, 0, r, 0, -1);
                m.target = map_word;
                emit(m);
            } else {
                emit(make(MOp::LdrW, kScratch0, r, 0, -1));
                emit(make(MOp::CmpI, 0, kScratch0, 0, map_word));
            }
            emitDeoptBranch(Cond::Ne, DeoptReason::NotANumber, n.frameState);
            endCheck();
        }
    }
    emit(make(MOp::LdrD, d, r, 0,
              static_cast<i64>(HeapLayout::kNumberValueOffset) - 1));
    bindLocal(to_end);
    finishDef(id, d);
}

void
CodeGenerator::emitCallNode(ValueId id, const IrNode &n)
{
    RuntimeFn fn;
    std::vector<std::pair<MoveLoc, MoveLoc>> moves;
    auto gprArg = [&](int arg_index, ValueId v) {
        MoveLoc dst;
        dst.kind = MoveLoc::Kind::Gpr;
        dst.reg = static_cast<u8>(arg_index);
        moves.push_back({moveLocOf(v), dst});
    };
    auto fprArg = [&](int arg_index, ValueId v) {
        MoveLoc dst;
        dst.kind = MoveLoc::Kind::Fpr;
        dst.reg = static_cast<u8>(arg_index);
        moves.push_back({moveLocOf(v), dst});
    };

    if (n.op == IrOp::CallFunction) {
        fn = RuntimeFn::CallFunction;
        const FunctionInfo &target = env.functions.at(
            static_cast<FunctionId>(n.imm));
        MoveLoc cell;
        cell.kind = MoveLoc::Kind::ImmI;
        cell.imm = target.cellAddr | 1u;
        MoveLoc x0;
        x0.kind = MoveLoc::Kind::Gpr;
        x0.reg = 0;
        moves.push_back({cell, x0});
        for (size_t i = 0; i < n.inputs.size(); i++)
            gprArg(static_cast<int>(i) + 1, n.inputs[i]);
    } else if (n.op == IrOp::F64Mod) {
        fn = RuntimeFn::Float64Mod;
        fprArg(0, n.inputs[0]);
        fprArg(1, n.inputs[1]);
    } else {
        fn = static_cast<RuntimeFn>(n.imm);
        if (fn == RuntimeFn::BoxFloat64) {
            fprArg(0, n.inputs[0]);
        } else {
            for (size_t i = 0; i < n.inputs.size(); i++)
                gprArg(static_cast<int>(i), n.inputs[i]);
        }
    }
    resolveParallelMoves(std::move(moves));
    MInst call = make(MOp::CallRt);
    call.target = static_cast<u32>(fn);
    // Argument count for the CallFunction calling convention
    // (x0 = callee cell, x1 = this, x2.. = args).
    if (n.op == IrOp::CallFunction) {
        call.imm = static_cast<i64>(n.inputs.size()) - 1;
    } else if (fn == RuntimeFn::CallFunction) {
        call.imm = static_cast<i64>(n.inputs.size()) - 2;
    }
    emit(call);

    if (n.rep == Rep::Float64) {
        u8 d = defFpr(id);
        if (d != 0)
            emit(make(MOp::FMovRR, d, 0));
        finishDef(id, d);
    } else if (n.rep != Rep::None
               && allocAt(id).where != Allocation::Where::None) {
        u8 d = defGpr(id);
        if (d != 0)
            emit(make(MOp::MovR, d, 0));
        finishDef(id, d);
    }
}

void
CodeGenerator::emitNode(BlockId b, ValueId id, const IrNode &n)
{
    curBcOff = n.bcOff;
    if (id < ra.posOf.size()) {
        // Resolution blocks hold post-allocation Gotos with no
        // positions; every original node advances the position and
        // materializes the split moves of the gap before it.
        curPos = ra.posOf[id];
        emitGapMoves();
    }
    if (n.isCheck()) {
        emitCheckNode(id, n);
        return;
    }
    switch (n.op) {
      case IrOp::Param:
      case IrOp::Phi:
      case IrOp::ConstI32:
      case IrOp::ConstTagged:
      case IrOp::ConstF64:
        return;  // no code here (prologue moves / rematerialization)

      case IrOp::I32Add: case IrOp::I32Sub: case IrOp::I32Mul:
      case IrOp::I32Div: case IrOp::I32Mod: case IrOp::I32Neg:
      case IrOp::I32And: case IrOp::I32Or: case IrOp::I32Xor:
      case IrOp::I32Shl: case IrOp::I32Sar: case IrOp::I32Shr:
      case IrOp::F64Add: case IrOp::F64Sub: case IrOp::F64Mul:
      case IrOp::F64Div: case IrOp::F64Neg: case IrOp::F64Abs:
      case IrOp::F64Sqrt:
        emitBinaryArith(id, n);
        return;

      case IrOp::F64Mod:
      case IrOp::CallRuntime:
      case IrOp::CallFunction:
        emitCallNode(id, n);
        return;

      case IrOp::I32Compare:
      case IrOp::F64Compare:
      case IrOp::TaggedEqual: {
        if (id == fusedCompare)
            return;  // emitted by the branch
        Cond c = emitCompareFlags(n);
        u8 d = defGpr(id);
        MInst m = make(MOp::Cset, d);
        m.cond = c;
        emit(m);
        finishDef(id, d);
        return;
      }

      case IrOp::TagSmi: {
        u8 a = gpr(n.inputs[0], 0);
        u8 d = defGpr(id);
        if (n.checked) {
            beginCheck(n.reason);
            emit(make(MOp::Adds, d, a, a));
            emitDeoptBranch(Cond::Vs, n.reason, n.frameState);
            endCheck();
        } else {
            emit(make(MOp::LslI, d, a, 0, 1));
        }
        finishDef(id, d);
        return;
      }
      case IrOp::UntagSmi: {
        u8 a = gpr(n.inputs[0], 0);
        u8 d = defGpr(id);
        emit(make(MOp::AsrI, d, a, 0, 1));
        finishDef(id, d);
        return;
      }
      case IrOp::I32ToF64: {
        u8 a = gpr(n.inputs[0], 0);
        u8 d = defFpr(id);
        emit(make(MOp::Scvtf, d, a));
        finishDef(id, d);
        return;
      }
      case IrOp::F64ToI32: {
        u8 a = fpr(n.inputs[0], 0);
        u8 d = defGpr(id);
        if (n.checked) {
            // Deopt unless the conversion round-trips exactly.
            emit(make(MOp::Fcvtzs, d, a));
            beginCheck(n.reason);
            emit(make(MOp::Scvtf, kFpScratch1, d));
            emit(make(MOp::FCmp, 0, kFpScratch1, a));
            emitDeoptBranch(Cond::Ne, n.reason, n.frameState);
            endCheck();
        } else {
            // Truncating ToInt32 (bit-op operands): no deopt, wraps.
            emit(make(MOp::Fjcvtzs, d, a));
        }
        finishDef(id, d);
        return;
      }
      case IrOp::ToFloat64:
        emitToFloat64(id, n);
        return;
      case IrOp::ToBooleanOp:
        vpanic("ToBooleanOp should have been lowered to a runtime call");
      case IrOp::F64ToBool: {
        u8 a = fpr(n.inputs[0], 0);
        u8 d = defGpr(id);
        MInst z = make(MOp::FMovI, kFpScratch1);
        z.fimm = 0.0;
        emit(z);
        emit(make(MOp::FCmp, 0, a, kFpScratch1));
        MInst c1 = make(MOp::Cset, kScratch0);
        c1.cond = Cond::Gt;
        emit(c1);
        MInst c2 = make(MOp::Cset, kScratch1);
        c2.cond = Cond::Mi;
        emit(c2);
        emit(make(MOp::Orr, d, kScratch0, kScratch1));
        finishDef(id, d);
        return;
      }
      case IrOp::I32ToBool: {
        u8 a = gpr(n.inputs[0], 0);
        u8 d = defGpr(id);
        emit(make(MOp::CmpI, 0, a, 0, 0));
        MInst m = make(MOp::Cset, d);
        m.cond = Cond::Ne;
        emit(m);
        finishDef(id, d);
        return;
      }
      case IrOp::BoolNot: {
        u8 a = gpr(n.inputs[0], 0);
        u8 d = defGpr(id);
        emit(make(MOp::EorI, d, a, 0, 1));
        finishDef(id, d);
        return;
      }
      case IrOp::BoolToTagged: {
        u8 a = gpr(n.inputs[0], 0);
        u8 d = defGpr(id);
        emit(make(MOp::CmpI, 0, a, 0, 0));
        emit(make(MOp::MovI, kScratch0, 0, 0, env.vm.trueValue.bits()));
        emit(make(MOp::MovI, kScratch1, 0, 0, env.vm.falseValue.bits()));
        MInst m = make(MOp::Csel, d, kScratch0, kScratch1);
        m.cond = Cond::Ne;
        emit(m);
        finishDef(id, d);
        return;
      }

      // Checks are dispatched through IrNode::isCheck() above.

      case IrOp::LoadField: case IrOp::LoadFieldRaw: case IrOp::StoreField:
      case IrOp::StoreFieldRaw: case IrOp::LoadElem32:
      case IrOp::LoadElemF64: case IrOp::StoreElem32:
      case IrOp::StoreElemF64: case IrOp::LoadGlobal: case IrOp::StoreGlobal:
      case IrOp::LoadFieldSmiUntag: case IrOp::LoadElemSmiUntag:
        emitMemoryNode(id, n);
        return;

      case IrOp::Goto: {
        BlockId succ = g.block(b).succTrue;
        // Loop back edges poll the interrupt cell, like V8's per-loop
        // stack check: main-line (non-check) instructions that dilute
        // the share of deoptimization checks in hot loops.
        if (cfg.emitInterruptChecks && succ <= b
            && !resolutionBlocks.count(b)) {
            if (cfg.flavour == IsaFlavour::X64Like) {
                MInst m = make(MOp::CmpMemI, 0, kAbsBase, 0,
                               env.vm.interruptCell);
                m.target = 0;
                emit(m);
            } else {
                emit(make(MOp::MovI, kScratch0, 0, 0,
                          env.vm.interruptCell));
                emit(make(MOp::LdrW, kScratch0, kScratch0, 0, 0));
                emit(make(MOp::CmpI, 0, kScratch0, 0, 0));
            }
            u32 skip = emitLocalBranch(MOp::Bcond, Cond::Ne);
            // Interrupt requested: in V8 this calls the runtime; the
            // vspec cell is always zero, so this is never reached.
            bindLocal(skip);
        }
        emitPhiMoves(b, succ);
        bool fallthrough = curBlockIndex + 1 < blockOrder.size()
                           && blockOrder[curBlockIndex + 1] == succ;
        if (!fallthrough)
            emitBranchTo(succ);
        return;
      }
      case IrOp::Branch: {
        Cond c;
        ValueId cv = n.inputs[0];
        if (cv == fusedCompare) {
            c = emitCompareFlags(g.node(cv));
        } else {
            u8 r = gpr(cv, 0);
            emit(make(MOp::CmpI, 0, r, 0, 0));
            c = Cond::Ne;
        }
        BlockId t = g.block(b).succTrue;
        BlockId f = g.block(b).succFalse;
        bool fall_false = curBlockIndex + 1 < blockOrder.size()
                          && blockOrder[curBlockIndex + 1] == f;
        bool fall_true = curBlockIndex + 1 < blockOrder.size()
                         && blockOrder[curBlockIndex + 1] == t;
        if (fall_false) {
            emitBranchTo(t, c);
        } else if (fall_true) {
            emitBranchTo(f, invert(c));
        } else {
            emitBranchTo(t, c);
            emitBranchTo(f);
        }
        return;
      }
      case IrOp::Return: {
        u8 r = gpr(n.inputs[0], 0);
        if (r != 0)
            emit(make(MOp::MovR, 0, r));
        emitEpilogue();
        return;
      }
      case IrOp::Deopt: {
        u16 exit_idx = makeDeoptExit(n.reason, n.frameState, kNoCheck);
        MInst m = make(MOp::B);
        m.isDeoptBranch = true;
        m.deoptIndex = exit_idx;
        u32 at = emit(m);
        deoptBranchFixups.push_back({at, exit_idx});
        return;
      }
    }
}

} // namespace

std::unique_ptr<CodeObject>
generateCode(CompilerEnv &env, Graph &graph, const CodegenConfig &config)
{
    bool traced = config.trace != nullptr
                  && config.trace->on(TraceCategory::Compile);
    if (traced)
        config.trace->emit(TraceCategory::Compile, TraceEventKind::Begin,
                           "codegen", config.traceTimestamp,
                           config.traceFunction,
                           static_cast<u32>(graph.nodes.size()));
    CodeGenerator gen(env, graph, config);
    std::unique_ptr<CodeObject> code = gen.run();
    if (traced)
        config.trace->emit(TraceCategory::Compile, TraceEventKind::End,
                           "codegen", config.traceTimestamp,
                           config.traceFunction,
                           static_cast<u32>(code->code.size()),
                           code->checks.size());
    return code;
}

} // namespace vspec
