/**
 * @file
 * Optimized code objects: the machine code produced by the backend plus
 * everything the runtime needs around it — per-instruction check
 * annotations (ground truth for the profiler), deoptimization exits
 * with full frame-reconstruction metadata, and dependency lists for
 * lazy invalidation.
 */

#ifndef VSPEC_BACKEND_CODE_OBJECT_HH
#define VSPEC_BACKEND_CODE_OBJECT_HH

#include <memory>
#include <string>
#include <vector>

#include "backend/regalloc.hh"
#include "bytecode/bytecode.hh"
#include "ir/deopt_reasons.hh"
#include "ir/graph.hh"
#include "isa/isa.hh"

namespace vspec
{

struct PredecodedCode;

/** Where a deopt-relevant value lives when a check fails. */
struct DeoptLocation
{
    enum class Where : u8
    {
        Reg,          //!< GPR holding a tagged/int/bool value
        FReg,
        Spill,        //!< frame slot index
        ConstTagged,  //!< rematerialized constant
        ConstI32,
        ConstF64,
        None,         //!< value is undefined at this point
    };

    Where where = Where::None;
    Rep rep = Rep::Tagged;
    u8 reg = 0;
    i32 slot = 0;
    i64 imm = 0;
    double fval = 0.0;
};

/** One deoptimization exit: reason + interpreter frame layout. */
struct DeoptExitInfo
{
    u16 checkId = kNoCheck;
    DeoptReason reason = DeoptReason::Unknown;
    u32 bytecodeOffset = 0;
    std::vector<DeoptLocation> regs;  //!< one per interpreter register
    DeoptLocation accumulator;
    u64 hitCount = 0;
};

/** Static metadata for one deoptimization check in the code. */
struct CheckInfo
{
    u16 id = kNoCheck;
    DeoptReason reason = DeoptReason::Unknown;
    CheckGroup group = CheckGroup::Other;
};

class CodeObject
{
  public:
    u32 id = 0;
    FunctionId function = kInvalidFunction;
    IsaFlavour flavour = IsaFlavour::Arm64Like;
    bool usedSmiExtension = false;
    bool branchesRemoved = false;

    std::vector<MInst> code;
    std::vector<DeoptExitInfo> deoptExits;
    std::vector<CheckInfo> checks;
    u32 spillSlots = 0;

    /** Register-allocation statistics for this compile (vtrace feeds
     *  them into the regalloc_* counters post-compile). */
    RegallocStats raStats;

    /** Source snapshot taken at codegen (vprof): the function's name
     *  and its per-bytecode source positions. Self-contained so
     *  profiles never depend on the live FunctionInfo surviving. */
    std::string functionName;
    std::vector<SrcPos> bcPositions;

    /** Source position of machine instruction @p pc ({0,0} unknown). */
    SrcPos
    posForPc(u32 pc) const
    {
        if (pc >= code.size())
            return {};
        u32 bc = code[pc].bcOff;
        return bc < bcPositions.size() ? bcPositions[bc] : SrcPos{};
    }

    /** Global cells whose value this code embedded as a constant. */
    std::vector<u32> dependsOnGlobalCells;

    /** Set to false by lazy invalidation; the runtime then discards the
     *  code at the next entry (deopt-lazy). */
    bool valid = true;

    /** vpar predecode cache, built lazily by the functional core on
     *  first execution (engines are single-threaded, so no locking).
     *  Derived data only — never serialized or compared. */
    mutable std::shared_ptr<const PredecodedCode> predecoded;

    // ---- runtime statistics -----------------------------------------
    u64 entries = 0;
    u64 eagerDeopts = 0;

    /** Count instructions that belong to checks, per group (Fig. 1/4
     *  static frequency; ground truth, not the sampling heuristic). */
    std::vector<u32> checkInstructionsPerGroup() const;
    u32 totalCheckInstructions() const;

    std::string disassemble() const;
};

} // namespace vspec

#endif // VSPEC_BACKEND_CODE_OBJECT_HH
