/**
 * @file
 * Liveness-driven linear-scan register allocation with live-range
 * splitting (Wimmer-style): per-block use/def and live-in/live-out
 * sets from backward dataflow, lifetime holes, split intervals so a
 * value only occupies a callee-saved register (or memory) across the
 * call sites it actually spans, spill-cost victim selection weighted
 * by use density and loop depth, second-chance reloads, and
 * spill-slot reuse across disjoint spilled lifetimes.
 *
 * Positions: every live node in emission order gets an even position
 * 2*i. Odd positions are the *gaps* before the following instruction;
 * split moves are materialized there by instruction selection. A
 * value's allocation is therefore a set of half-open [from, to)
 * live ranges, each with its own location — `locationAt` is the one
 * query the backend (operand access, deopt frame maps, phi moves,
 * verifier) is built on.
 *
 * Constants are rematerialized, never allocated. Values live across
 * calls are restricted to callee-saved registers or memory for the
 * segments that actually cross a call (modeling the ABI the paper's
 * measured engine pays for; the simulator itself preserves registers
 * across CallRt, so this discipline is enforced by the allocation
 * verifier rather than the machine).
 */

#ifndef VSPEC_BACKEND_REGALLOC_HH
#define VSPEC_BACKEND_REGALLOC_HH

#include <vector>

#include "ir/graph.hh"
#include "isa/isa.hh"

namespace vspec
{

class Tracer;

struct Allocation
{
    enum class Where : u8
    {
        None,     //!< dead / no result / rematerialized constant
        Reg,
        FReg,
        Spill,
    };

    Where where = Where::None;
    u8 reg = 0;
    i32 slot = -1;

    bool
    sameAs(const Allocation &o) const
    {
        if (where != o.where)
            return false;
        switch (where) {
          case Where::Reg: case Where::FReg: return reg == o.reg;
          case Where::Spill: return slot == o.slot;
          case Where::None: return true;
        }
        return false;
    }
};

/** One live range of a value with the location holding it there. */
struct LiveSegment
{
    u32 from = 0;  //!< inclusive, even = instruction, odd = gap
    u32 to = 0;    //!< exclusive
    Allocation loc;
};

/** A location change materialized at gap position @p pos (executed
 *  before the instruction at pos + 1). */
struct GapMove
{
    u32 pos = 0;
    ValueId value = kNoValue;
    Allocation from, to;
};

/** One resolution move on a CFG edge (locations at the end of the
 *  predecessor and the start of the successor disagree). */
struct EdgeMove
{
    ValueId value = kNoValue;
    Allocation from, to;
};

/** All resolution moves for one CFG edge. Instruction selection
 *  places them: at the predecessor's end (single successor), the
 *  successor's start (single predecessor), or a freshly split block
 *  (critical edge). */
struct EdgeResolution
{
    BlockId pred = kNoBlock;
    BlockId succ = kNoBlock;
    std::vector<EdgeMove> moves;
};

struct RegallocStats
{
    u32 intervals = 0;         //!< values that needed an allocation
    u32 splits = 0;            //!< live-range split operations
    u32 spilledIntervals = 0;  //!< values with at least one memory segment
    u32 spillStores = 0;       //!< register->memory transitions
    u32 reloads = 0;           //!< memory->register transitions
    u32 spillSlots = 0;        //!< frame slots after reuse/coalescing
    u32 calleeSavedUsed = 0;   //!< distinct callee-saved registers used
};

struct RegallocOptions
{
    IsaFlavour flavour = IsaFlavour::Arm64Like;
    /** Artificially shrink the allocatable pools (testing knob;
     *  0 = full pool). Shrunk pools keep callee-saved registers first
     *  so call-crossing values stay allocatable at tiny sizes. */
    u8 maxGprs = 0;
    u8 maxFprs = 0;

    /** vtrace hookup: Begin/End "regalloc" compile-phase events
     *  carrying host-side allocator time. */
    Tracer *trace = nullptr;
    u64 traceTimestamp = 0;
    u32 traceFunction = 0;
};

struct AllocationResult
{
    /** Flattened per-value segments: value v's segments are
     *  segs[segIndex[v] .. segIndex[v + 1]), sorted by from,
     *  non-overlapping. */
    std::vector<u32> segIndex;
    std::vector<LiveSegment> segs;

    u32 spillSlots = 0;

    /** In-block split moves, sorted by pos (odd gap positions). */
    std::vector<GapMove> gapMoves;
    /** CFG-edge resolution moves (only edges that need any). */
    std::vector<EdgeResolution> edgeMoves;

    /** Linear position of each live node (2*i); dead nodes 0. */
    std::vector<u32> posOf;
    /** Per-block position ranges over the emission order:
     *  [blockFrom[b], blockTo[b]) with blockTo = last node pos + 2. */
    std::vector<u32> blockFrom, blockTo;

    /** Single source of truth shared with instruction selection for
     *  emission decisions that change where operands are read:
     *  compares fused into their branch (inputs read at the branch)
     *  and x64 length loads folded into a CheckBounds CmpMem. */
    std::vector<ValueId> fusedCompares;
    std::vector<ValueId> skippedLenLoads;

    RegallocStats stats;

    /** Location of @p v in effect at position @p pos (None if v has
     *  no allocation or pos falls in a lifetime hole). */
    Allocation
    locationAt(ValueId v, u32 pos) const
    {
        if (v + 1 >= segIndex.size())
            return {};
        for (u32 i = segIndex[v]; i < segIndex[v + 1]; i++) {
            if (segs[i].from <= pos && pos < segs[i].to)
                return segs[i].loc;
        }
        return {};
    }

    bool
    isAllocated(ValueId v) const
    {
        return v + 1 < segIndex.size() && segIndex[v] != segIndex[v + 1];
    }
};

/** Caller/callee-saved classification of the modeled ABI (exposed for
 *  the allocation verifier). */
bool isCallerSavedGpr(u8 reg);
bool isCallerSavedFpr(u8 reg);

/** EngineConfig defaults for the shrunk-pool testing knob: cached
 *  VSPEC_MAX_GPRS / VSPEC_MAX_FPRS (0 = full pool). */
u8 defaultMaxGprs();
u8 defaultMaxFprs();

/**
 * Allocate registers for all live, value-producing nodes of @p graph.
 * @p blockOrder is the emission order of blocks (indices into
 * graph.blocks); positions are assigned in that order.
 *
 * Check nodes must already have had their result uses rewritten to
 * their pass-through input (the backend's prepareForCodegen step).
 */
AllocationResult allocateRegisters(const Graph &graph,
                                   const std::vector<BlockId> &blockOrder,
                                   const RegallocOptions &options = {});

} // namespace vspec

#endif // VSPEC_BACKEND_REGALLOC_HH
