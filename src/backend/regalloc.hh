/**
 * @file
 * Linear-scan register allocation over the IR (no interval splitting:
 * an interval is either in one register for its whole life or spilled
 * to a frame slot). Values live across calls are restricted to
 * callee-saved registers. Constants are rematerialized, never
 * allocated.
 */

#ifndef VSPEC_BACKEND_REGALLOC_HH
#define VSPEC_BACKEND_REGALLOC_HH

#include <vector>

#include "ir/graph.hh"

namespace vspec
{

struct Allocation
{
    enum class Where : u8
    {
        None,     //!< dead / no result / rematerialized constant
        Reg,
        FReg,
        Spill,
    };

    Where where = Where::None;
    u8 reg = 0;
    i32 slot = -1;
};

struct AllocationResult
{
    std::vector<Allocation> alloc;   //!< indexed by ValueId
    u32 spillSlots = 0;
};

/**
 * Allocate registers for all live, value-producing nodes of @p graph.
 * @p blockOrder is the emission order of blocks (indices into
 * graph.blocks); positions are assigned in that order.
 *
 * Check nodes must already have had their result uses rewritten to
 * their pass-through input (the backend's prepareForCodegen step).
 */
AllocationResult allocateRegisters(const Graph &graph,
                                   const std::vector<BlockId> &blockOrder);

} // namespace vspec

#endif // VSPEC_BACKEND_REGALLOC_HH
