#include "backend/code_object.hh"

#include <cstdio>

namespace vspec
{

std::vector<u32>
CodeObject::checkInstructionsPerGroup() const
{
    std::vector<u32> out(static_cast<size_t>(CheckGroup::NumGroups), 0);
    for (const auto &ins : code) {
        if (ins.checkId == kNoCheck)
            continue;
        const CheckInfo &ci = checks.at(ins.checkId);
        out[static_cast<size_t>(ci.group)]++;
    }
    return out;
}

u32
CodeObject::totalCheckInstructions() const
{
    u32 n = 0;
    for (const auto &ins : code)
        if (ins.checkId != kNoCheck)
            n++;
    return n;
}

std::string
CodeObject::disassemble() const
{
    std::string out;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "code #%u fn=%u flavour=%s insts=%zu checks=%zu exits=%zu\n",
                  id, function, isaFlavourName(flavour), code.size(),
                  checks.size(), deoptExits.size());
    out += buf;
    for (size_t i = 0; i < code.size(); i++) {
        const MInst &m = code[i];
        std::snprintf(buf, sizeof(buf),
                      "%4zu: %-12s rd=%-3u rn=%-3u rm=%-3u imm=%-8lld",
                      i, mopName(m.op), m.rd, m.rn, m.rm,
                      static_cast<long long>(m.imm));
        out += buf;
        if (m.op == MOp::Bcond) {
            std::snprintf(buf, sizeof(buf), " %s ->%u", condName(m.cond),
                          m.target);
            out += buf;
        } else if (m.op == MOp::B) {
            std::snprintf(buf, sizeof(buf), " ->%u", m.target);
            out += buf;
        } else if (m.op == MOp::CallRt) {
            out += std::string(" ")
                   + runtimeFnName(static_cast<RuntimeFn>(m.target));
        }
        if (m.checkId != kNoCheck) {
            const CheckInfo &ci = checks.at(m.checkId);
            std::snprintf(buf, sizeof(buf), "   ; check#%u %s/%s (%s)",
                          m.checkId, checkGroupName(ci.group),
                          deoptReasonName(ci.reason),
                          m.checkRole == CheckRole::Branch ? "branch"
                          : m.checkRole == CheckRole::Fused ? "fused"
                                                            : "cond");
            out += buf;
        }
        if (m.isDeoptBranch)
            out += " [deopt]";
        out += "\n";
    }
    return out;
}

} // namespace vspec
