/**
 * @file
 * Liveness-driven linear scan with live-range splitting.
 *
 * Phases:
 *   1. Linear positions: live node i -> even position 2*i in
 *      blockOrder emission order; odd positions are split-move gaps.
 *   2. Emission-decision detection shared with isel (compares fused
 *      into branches, x64 length loads folded into CheckBounds).
 *   3. Per-block gen/def bitsets + backward dataflow to live-in/out.
 *   4. Interval construction (reverse block walk): ranges with holes,
 *      use positions with a requires-register preference flag.
 *   5. Splitting linear scan: free-until / use-pos / block-pos arrays,
 *      caller-saved registers capped at the first crossed call so
 *      call-crossing segments end up callee-saved or in memory,
 *      spill-cost victim selection (use density x loop depth),
 *      second-chance requeue of split children.
 *   6. Spill-slot assignment with greedy reuse across disjoint spilled
 *      families, segment flattening, gap-move materialization and
 *      CFG-edge resolution.
 *
 * Correctness backstop: isel can serve any operand from memory via
 * spill scratch registers, so "requires register" is a preference and
 * spilling a whole interval without splitting is always legal. The
 * scan falls back to that whenever splitting is impossible, which also
 * guarantees termination.
 */

#include "backend/regalloc.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <queue>
#include <tuple>

#include "trace/trace.hh"

namespace vspec
{

namespace
{

/** Allocatable register pools. Caller-saved first (cheaper), then
 *  callee-saved for call-crossing segments. x16/x17 are expansion
 *  scratch, x26/x27 spill scratch, x28 the stack pointer; d14/d15 are
 *  FP scratch. */
const u8 kGprCallerSaved[] = {0, 1, 2, 3, 4, 5, 6, 7,
                              8, 9, 10, 11, 12, 13, 14, 15};
const u8 kGprCalleeSaved[] = {19, 20, 21, 22, 23, 24, 25, 18};
const u8 kFprCallerSaved[] = {0, 1, 2, 3, 4, 5, 6, 7};
const u8 kFprCalleeSaved[] = {8, 9, 10, 11, 12, 13};

constexpr u32 kInf = 0xffffffffu;
constexpr u32 kMaxRegs = 32;

bool
producesValue(const IrNode &n)
{
    if (n.rep == Rep::None)
        return false;
    switch (n.op) {
      case IrOp::ConstI32:
      case IrOp::ConstTagged:
      case IrOp::ConstF64:
        return false;  // rematerialized at use sites
      case IrOp::Goto:
      case IrOp::Branch:
      case IrOp::Return:
      case IrOp::Deopt:
        return false;
      default:
        return true;
    }
}

bool
isCallNode(IrOp op)
{
    return op == IrOp::CallRuntime || op == IrOp::CallFunction
           || op == IrOp::F64Mod;
}

struct Range
{
    u32 from;
    u32 to;  //!< exclusive
};

struct UseSlot
{
    u32 pos;
    bool requiresReg;
};

struct Itv
{
    ValueId value = kNoValue;
    u32 family = 0;  //!< index of the root interval (shares spill slot)
    bool isFloat = false;
    Allocation loc;
    std::vector<Range> ranges;  //!< sorted ascending, disjoint
    std::vector<UseSlot> uses;  //!< sorted ascending

    u32 from() const { return ranges.front().from; }
    u32 to() const { return ranges.back().to; }

    bool
    covers(u32 pos) const
    {
        for (const Range &r : ranges) {
            if (r.from > pos)
                return false;
            if (pos < r.to)
                return true;
        }
        return false;
    }

    u32
    nextUseAfter(u32 pos) const
    {
        for (const UseSlot &u : uses)
            if (u.pos >= pos)
                return u.pos;
        return kInf;
    }

    u32
    nextRequiredUseAfter(u32 pos) const
    {
        for (const UseSlot &u : uses)
            if (u.pos >= pos && u.requiresReg)
                return u.pos;
        return kInf;
    }
};

/** First position >= startPos where both intervals are live. */
u32
firstIntersection(const Itv &a, const Itv &b, u32 startPos)
{
    size_t i = 0, j = 0;
    while (i < a.ranges.size() && j < b.ranges.size()) {
        const Range &ra = a.ranges[i];
        const Range &rb = b.ranges[j];
        if (ra.to <= startPos) {
            i++;
            continue;
        }
        if (rb.to <= startPos) {
            j++;
            continue;
        }
        u32 f = std::max(std::max(ra.from, rb.from), startPos);
        u32 t = std::min(ra.to, rb.to);
        if (f < t)
            return f;
        if (ra.to < rb.to)
            i++;
        else
            j++;
    }
    return kInf;
}

struct Pool
{
    u8 regs[24];
    u32 count = 0;
};

/** Full pools list caller-saved first (preferred for short values);
 *  shrunk test pools take callee-saved first so call-crossing values
 *  stay allocatable down to 3 registers. */
Pool
buildPool(bool isFloat, u8 maxRegs)
{
    const u8 *caller = isFloat ? kFprCallerSaved : kGprCallerSaved;
    const u8 *callee = isFloat ? kFprCalleeSaved : kGprCalleeSaved;
    u32 nCaller = isFloat ? static_cast<u32>(std::size(kFprCallerSaved))
                          : static_cast<u32>(std::size(kGprCallerSaved));
    u32 nCallee = isFloat ? static_cast<u32>(std::size(kFprCalleeSaved))
                          : static_cast<u32>(std::size(kGprCalleeSaved));
    Pool p;
    if (maxRegs == 0 || maxRegs >= nCaller + nCallee) {
        for (u32 i = 0; i < nCaller; i++)
            p.regs[p.count++] = caller[i];
        for (u32 i = 0; i < nCallee; i++)
            p.regs[p.count++] = callee[i];
    } else {
        for (u32 i = 0; i < maxRegs; i++)
            p.regs[p.count++] = i < nCallee ? callee[i] : caller[i - nCallee];
    }
    return p;
}

struct LinearScan
{
    const Graph &g;
    const std::vector<BlockId> &blockOrder;
    const RegallocOptions &opt;
    AllocationResult &result;

    std::vector<u32> posOf;
    std::vector<u32> blockFrom, blockTo;
    std::vector<u32> useCount;
    std::vector<bool> excluded;  //!< fused compares + skipped len loads
    std::vector<ValueId> fusedAtBranch;
    std::vector<bool> skippedLoad;
    std::vector<u32> callPositions;  //!< ascending

    // Liveness bitsets, one row of `words` u64s per BlockId.
    u32 words = 0;
    std::vector<u64> genBits, defBits, phiGenBits, liveInBits, liveOutBits;

    std::vector<Itv> itv;
    std::vector<i32> itvOf;  //!< value -> root interval index, -1 = none
    std::vector<float> costMemo;

    struct LoopRange
    {
        u32 from;
        u32 to;
    };
    std::vector<LoopRange> loops;

    bool forceSpill = false;  //!< degenerate backstop: no more splitting
    u32 maxIntervals = 0;

    using HeapEntry = std::tuple<u32, u32, u32>;  // (from, value, idx)
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>> unhandled;
    std::vector<u32> activeG, inactiveG, activeF, inactiveF;

    Pool poolG, poolF;

    LinearScan(const Graph &graph, const std::vector<BlockId> &order,
               const RegallocOptions &options, AllocationResult &res)
        : g(graph), blockOrder(order), opt(options), result(res)
    {
    }

    u64 *row(std::vector<u64> &v, BlockId b) { return v.data() + size_t(b) * words; }

    void
    setBit(std::vector<u64> &v, BlockId b, ValueId id)
    {
        row(v, b)[id >> 6] |= u64(1) << (id & 63);
    }

    bool
    testBit(const std::vector<u64> &v, BlockId b, ValueId id) const
    {
        return (v[size_t(b) * words + (id >> 6)] >> (id & 63)) & 1;
    }

    // ---- positions ------------------------------------------------------

    void
    assignPositions()
    {
        posOf.assign(g.nodes.size(), 0);
        blockFrom.assign(g.blocks.size(), 0);
        blockTo.assign(g.blocks.size(), 0);
        u32 pos = 0;
        for (BlockId b : blockOrder) {
            blockFrom[b] = pos;
            for (ValueId id : g.block(b).nodes) {
                if (g.node(id).dead)
                    continue;
                posOf[id] = pos;
                if (isCallNode(g.node(id).op))
                    callPositions.push_back(pos);
                pos += 2;
            }
            blockTo[b] = pos;
        }
        result.posOf = posOf;
        result.blockFrom = blockFrom;
        result.blockTo = blockTo;
    }

    // ---- emission-decision detection (single source of truth) ----------

    void
    detectFusions()
    {
        useCount.assign(g.nodes.size(), 0);
        for (const auto &n : g.nodes) {
            if (n.dead)
                continue;
            for (ValueId in : n.inputs)
                useCount[in]++;
        }
        excluded.assign(g.nodes.size(), false);
        fusedAtBranch.assign(g.nodes.size(), kNoValue);
        skippedLoad.assign(g.nodes.size(), false);

        for (BlockId b : blockOrder) {
            ValueId term = kNoValue;
            ValueId lastLive = kNoValue;
            for (ValueId id : g.block(b).nodes) {
                const IrNode &n = g.node(id);
                if (n.dead)
                    continue;
                if (n.isTerminator()) {
                    term = id;
                    break;
                }
                lastLive = id;
            }
            if (term == kNoValue || g.node(term).op != IrOp::Branch)
                continue;
            ValueId c = g.node(term).inputs[0];
            const IrNode &cn = g.node(c);
            if ((cn.op == IrOp::I32Compare || cn.op == IrOp::F64Compare
                 || cn.op == IrOp::TaggedEqual)
                && c == lastLive && cn.block == b && useCount[c] == 1) {
                excluded[c] = true;
                fusedAtBranch[term] = c;
                result.fusedCompares.push_back(c);
            }
        }

        if (opt.flavour != IsaFlavour::X64Like)
            return;
        for (BlockId b : blockOrder) {
            for (ValueId id : g.block(b).nodes) {
                const IrNode &n = g.node(id);
                if (n.dead || n.op != IrOp::LoadFieldRaw || useCount[id] != 1)
                    continue;
                for (ValueId uid = id + 1; uid < g.nodes.size(); uid++) {
                    const IrNode &u = g.node(uid);
                    if (u.dead)
                        continue;
                    if (u.op == IrOp::CheckBounds && u.inputs.size() > 1
                        && u.inputs[1] == id && u.block == n.block) {
                        excluded[id] = true;
                        skippedLoad[id] = true;
                        result.skippedLenLoads.push_back(id);
                    }
                    break;
                }
            }
        }
    }

    /** True if v is a node that gets (and may need) an allocation. */
    bool
    allocatable(ValueId v) const
    {
        if (v == kNoValue)
            return false;
        const IrNode &n = g.node(v);
        return !n.dead && producesValue(n) && !excluded[v];
    }

    /** Enumerate the operand reads isel will perform for node @p id at
     *  its own position: fused-compare inputs read at the branch, the
     *  array base read by a fused CheckBounds CmpMem, call arguments
     *  and frame-state references readable from memory (preference
     *  only). f(value, requiresReg, liveThroughCall). */
    template <typename F>
    void
    forEachUse(ValueId id, const IrNode &n, F f) const
    {
        if (excluded[id])
            return;  // no code emitted at this node
        if (n.op == IrOp::Phi) {
            // Inputs are read by the move at each predecessor's end.
        } else if (n.op == IrOp::Branch && fusedAtBranch[id] != kNoValue) {
            for (ValueId in : g.node(fusedAtBranch[id]).inputs)
                f(in, true, false);
        } else if (n.op == IrOp::CheckBounds && n.inputs.size() > 1
                   && skippedLoad[n.inputs[1]]) {
            f(n.inputs[0], true, false);
            // CmpMem re-reads the array base the folded load used.
            f(g.node(n.inputs[1]).inputs[0], true, false);
        } else {
            bool callArgs = isCallNode(n.op);
            for (ValueId in : n.inputs)
                f(in, !callArgs, false);
        }
        if (n.canDeopt() && n.frameState != kNoFrameState) {
            // A deopt at a call materializes after the call clobbers
            // the argument/result registers: keep references alive
            // through it so the crossing discipline protects them.
            bool through = isCallNode(n.op);
            const FrameState &fs = g.frameStates[n.frameState];
            for (ValueId r : fs.regs)
                f(r, false, through);
            f(fs.accumulator, false, through);
        }
    }

    // ---- liveness -------------------------------------------------------

    void
    computeLiveness()
    {
        words = (static_cast<u32>(g.nodes.size()) + 63) / 64;
        size_t total = g.blocks.size() * size_t(words);
        genBits.assign(total, 0);
        defBits.assign(total, 0);
        phiGenBits.assign(total, 0);
        liveInBits.assign(total, 0);
        liveOutBits.assign(total, 0);

        for (BlockId b : blockOrder) {
            const BasicBlock &blk = g.block(b);
            for (ValueId id : blk.nodes) {
                const IrNode &n = g.node(id);
                if (n.dead)
                    continue;
                forEachUse(id, n, [&](ValueId v, bool, bool) {
                    if (allocatable(v) && g.node(v).block != b)
                        setBit(genBits, b, v);
                });
                if (allocatable(id))
                    setBit(defBits, b, id);
            }
            // Phi inputs are used on the incoming edge: they extend the
            // predecessor's live-out, not the phi block's live-in.
            BlockId succs[2] = {blk.succTrue, blk.succFalse};
            for (BlockId s : succs) {
                if (s == kNoBlock)
                    continue;
                const BasicBlock &sb = g.block(s);
                int predIndex = -1;
                for (size_t i = 0; i < sb.preds.size(); i++) {
                    if (sb.preds[i] == b) {
                        predIndex = static_cast<int>(i);
                        break;
                    }
                }
                if (predIndex < 0)
                    continue;
                for (ValueId pid : sb.nodes) {
                    const IrNode &pn = g.node(pid);
                    if (pn.dead || pn.op != IrOp::Phi)
                        continue;
                    if (static_cast<size_t>(predIndex) < pn.inputs.size()) {
                        ValueId v = pn.inputs[predIndex];
                        if (allocatable(v))
                            setBit(phiGenBits, b, v);
                    }
                }
            }
        }

        bool changed = true;
        while (changed) {
            changed = false;
            for (auto it = blockOrder.rbegin(); it != blockOrder.rend(); ++it) {
                BlockId b = *it;
                const BasicBlock &blk = g.block(b);
                u64 *out = row(liveOutBits, b);
                for (u32 w = 0; w < words; w++)
                    out[w] = phiGenBits[size_t(b) * words + w];
                BlockId succs[2] = {blk.succTrue, blk.succFalse};
                for (BlockId s : succs) {
                    if (s == kNoBlock)
                        continue;
                    const u64 *sin = liveInBits.data() + size_t(s) * words;
                    for (u32 w = 0; w < words; w++)
                        out[w] |= sin[w];
                }
                u64 *in = row(liveInBits, b);
                for (u32 w = 0; w < words; w++) {
                    u64 next = genBits[size_t(b) * words + w]
                               | (out[w] & ~defBits[size_t(b) * words + w]);
                    if (next != in[w]) {
                        in[w] = next;
                        changed = true;
                    }
                }
            }
        }
    }

    // ---- interval construction ------------------------------------------

    Itv &
    interval(ValueId v)
    {
        if (itvOf[v] < 0) {
            itvOf[v] = static_cast<i32>(itv.size());
            Itv it;
            it.value = v;
            it.family = static_cast<u32>(itv.size());
            it.isFloat = g.node(v).rep == Rep::Float64;
            itv.push_back(std::move(it));
        }
        return itv[itvOf[v]];
    }

    /** Ranges/uses are built back-to-front (reverse block walk), kept
     *  in descending order and reversed afterwards. Touching ranges
     *  merge. */
    void
    addRangeBack(Itv &it, u32 from, u32 to)
    {
        if (!it.ranges.empty() && it.ranges.back().from <= to) {
            Range &r = it.ranges.back();
            r.from = std::min(r.from, from);
            r.to = std::max(r.to, to);
        } else {
            it.ranges.push_back({from, to});
        }
    }

    void
    buildIntervals()
    {
        itvOf.assign(g.nodes.size(), -1);
        itv.reserve(g.nodes.size() / 2 + 8);

        for (auto bo = blockOrder.rbegin(); bo != blockOrder.rend(); ++bo) {
            BlockId b = *bo;
            const BasicBlock &blk = g.block(b);
            u32 bFrom = blockFrom[b];
            u32 bTo = blockTo[b];
            if (bTo == bFrom)
                continue;

            const u64 *out = liveOutBits.data() + size_t(b) * words;
            for (u32 w = 0; w < words; w++) {
                u64 bits = out[w];
                while (bits) {
                    u32 bit = static_cast<u32>(__builtin_ctzll(bits));
                    bits &= bits - 1;
                    addRangeBack(interval(w * 64 + bit), bFrom, bTo);
                }
            }
            // Phi-input edge uses: served by the edge's parallel move
            // set, so any location works (requiresReg = false).
            BlockId succs[2] = {blk.succTrue, blk.succFalse};
            for (BlockId s : succs) {
                if (s == kNoBlock)
                    continue;
                const BasicBlock &sb = g.block(s);
                int predIndex = -1;
                for (size_t i = 0; i < sb.preds.size(); i++) {
                    if (sb.preds[i] == b) {
                        predIndex = static_cast<int>(i);
                        break;
                    }
                }
                if (predIndex < 0)
                    continue;
                for (ValueId pid : sb.nodes) {
                    const IrNode &pn = g.node(pid);
                    if (pn.dead || pn.op != IrOp::Phi)
                        continue;
                    if (static_cast<size_t>(predIndex) >= pn.inputs.size())
                        continue;
                    ValueId v = pn.inputs[predIndex];
                    if (allocatable(v))
                        interval(v).uses.push_back({bTo - 1, false});
                }
            }

            for (auto ni = blk.nodes.rbegin(); ni != blk.nodes.rend(); ++ni) {
                ValueId id = *ni;
                const IrNode &n = g.node(id);
                if (n.dead)
                    continue;
                u32 p = posOf[id];
                if (allocatable(id)) {
                    Itv &it = interval(id);
                    // Phi/param values are written by edge/prologue
                    // moves that execute before the block body: their
                    // location must be reserved from the block start.
                    u32 defPos = (n.op == IrOp::Phi || n.op == IrOp::Param)
                                     ? bFrom
                                     : p;
                    if (it.ranges.empty())
                        addRangeBack(it, defPos, p + 1);
                    else
                        it.ranges.back().from = defPos;
                }
                forEachUse(id, n, [&](ValueId v, bool req, bool through) {
                    if (!allocatable(v))
                        return;
                    Itv &it = interval(v);
                    addRangeBack(it, bFrom, through ? p + 2 : p + 1);
                    it.uses.push_back({p, req});
                });
            }
        }

        for (Itv &it : itv) {
            std::reverse(it.ranges.begin(), it.ranges.end());
            std::reverse(it.uses.begin(), it.uses.end());
        }
        result.stats.intervals = static_cast<u32>(itv.size());
        maxIntervals = static_cast<u32>(itv.size()) * 4 + 64;
        costMemo.assign(itv.size(), -1.0f);
    }

    // ---- spill cost ------------------------------------------------------

    void
    findLoops()
    {
        // Back edges through either successor (the old allocator only
        // looked at succTrue; see hoistLoopInvariantChecks for the
        // same fix on the pass side).
        for (BlockId b : blockOrder) {
            const BasicBlock &blk = g.block(b);
            BlockId succs[2] = {blk.succTrue, blk.succFalse};
            for (BlockId s : succs) {
                if (s != kNoBlock && blockFrom[s] <= blockFrom[b]
                    && blockTo[b] > blockFrom[b])
                    loops.push_back({blockFrom[s], blockTo[b]});
            }
        }
    }

    u32
    loopDepthAt(u32 pos) const
    {
        u32 d = 0;
        for (const LoopRange &lr : loops)
            if (lr.from <= pos && pos < lr.to)
                d++;
        return d;
    }

    /** Use density weighted by loop depth: expensive-to-spill
     *  intervals have many (required) uses in deep loops packed into a
     *  short lifetime. */
    float
    costOf(u32 idx)
    {
        if (idx < costMemo.size() && costMemo[idx] >= 0.0f)
            return costMemo[idx];
        static const float kDepthWeight[4] = {1.0f, 10.0f, 100.0f, 1000.0f};
        const Itv &it = itv[idx];
        float sum = 0.0f;
        for (const UseSlot &u : it.uses)
            sum += (u.requiresReg ? 2.0f : 1.0f)
                   * kDepthWeight[std::min<u32>(loopDepthAt(u.pos), 3)];
        u32 len = it.to() > it.from() ? it.to() - it.from() : 1;
        float c = sum / static_cast<float>(len);
        if (idx < costMemo.size())
            costMemo[idx] = c;
        return c;
    }

    // ---- scan machinery --------------------------------------------------

    /** First call position strictly inside the interval's live ranges:
     *  a range [f, t) crosses call c iff f < c and t > c + 1 (a use at
     *  the call itself, t == c + 1, is an argument read, not a
     *  crossing). */
    u32
    firstCallCrossed(const Itv &it) const
    {
        for (const Range &r : it.ranges) {
            auto lo = std::lower_bound(callPositions.begin(),
                                       callPositions.end(), r.from + 1);
            if (lo != callPositions.end() && *lo + 1 < r.to)
                return *lo;
        }
        return kInf;
    }

    void
    enqueue(u32 idx)
    {
        unhandled.push({itv[idx].from(), itv[idx].value, idx});
    }

    /** Split @p idx at @p pos (strictly inside), keeping the head in
     *  place and returning the enqueued tail's index. */
    u32
    splitAt(u32 idx, u32 pos)
    {
        Itv tail;
        tail.value = itv[idx].value;
        tail.family = itv[idx].family;
        tail.isFloat = itv[idx].isFloat;

        std::vector<Range> &rs = itv[idx].ranges;
        size_t k = 0;
        while (k < rs.size() && rs[k].to <= pos)
            k++;
        if (k < rs.size() && rs[k].from < pos) {
            tail.ranges.push_back({pos, rs[k].to});
            rs[k].to = pos;
            k++;
        }
        for (size_t i = k; i < rs.size(); i++)
            tail.ranges.push_back(rs[i]);
        rs.resize(k);

        std::vector<UseSlot> &us = itv[idx].uses;
        size_t uk = 0;
        while (uk < us.size() && us[uk].pos < pos)
            uk++;
        tail.uses.assign(us.begin() + uk, us.end());
        us.resize(uk);

        result.stats.splits++;
        u32 tidx = static_cast<u32>(itv.size());
        itv.push_back(std::move(tail));
        costMemo.push_back(-1.0f);
        enqueue(tidx);
        return tidx;
    }

    void
    assignReg(u32 idx, u8 reg)
    {
        itv[idx].loc.where = itv[idx].isFloat ? Allocation::Where::FReg
                                              : Allocation::Where::Reg;
        itv[idx].loc.reg = reg;
    }

    /** Spill @p idx to memory; if it still has a register-preferring
     *  use, split just before it so the tail gets a second chance at a
     *  register. Always legal: isel reloads spilled operands through
     *  scratch registers. */
    void
    spillIt(u32 idx, u32 position)
    {
        u32 req = itv[idx].nextRequiredUseAfter(position);
        if (!forceSpill && req != kInf && req > 0) {
            u32 gap = req - 1;  // uses are even, gaps odd
            if (gap > itv[idx].from() && gap > position)
                splitAt(idx, gap);
        }
        itv[idx].loc.where = Allocation::Where::Spill;
        itv[idx].loc.slot = -1;  // family slot assigned after the scan
    }

    bool
    tryAllocateFree(u32 idx, u32 position)
    {
        const Itv &cur = itv[idx];
        bool isF = cur.isFloat;
        const Pool &pool = isF ? poolF : poolG;
        std::vector<u32> &active = isF ? activeF : activeG;
        std::vector<u32> &inactive = isF ? inactiveF : inactiveG;

        u32 freeUntil[kMaxRegs];
        for (u32 i = 0; i < pool.count; i++)
            freeUntil[pool.regs[i]] = kInf;
        for (u32 a : active)
            freeUntil[itv[a].loc.reg] = 0;
        for (u32 i : inactive) {
            u32 x = firstIntersection(itv[i], cur, position);
            if (x != kInf)
                freeUntil[itv[i].loc.reg] =
                    std::min(freeUntil[itv[i].loc.reg], x);
        }
        u32 cap = firstCallCrossed(cur);
        if (cap != kInf) {
            for (u32 i = 0; i < pool.count; i++) {
                u8 r = pool.regs[i];
                bool callerSaved = isF ? isCallerSavedFpr(r)
                                       : isCallerSavedGpr(r);
                if (callerSaved)
                    freeUntil[r] = std::min(freeUntil[r], cap);
            }
        }

        u8 best = pool.regs[0];
        for (u32 i = 1; i < pool.count; i++)
            if (freeUntil[pool.regs[i]] > freeUntil[best])
                best = pool.regs[i];

        if (freeUntil[best] <= position)
            return false;
        if (freeUntil[best] >= cur.to()) {
            assignReg(idx, best);
            return true;
        }
        if (forceSpill)
            return false;
        u32 gap = freeUntil[best] & 1 ? freeUntil[best] : freeUntil[best] - 1;
        if (gap <= position)
            return false;
        splitAt(idx, gap);
        assignReg(idx, best);
        return true;
    }

    void
    allocateBlocked(u32 idx, u32 position)
    {
        bool isF = itv[idx].isFloat;
        const Pool &pool = isF ? poolF : poolG;
        std::vector<u32> &active = isF ? activeF : activeG;
        std::vector<u32> &inactive = isF ? inactiveF : inactiveG;

        u32 firstReq = itv[idx].nextRequiredUseAfter(position);
        if (forceSpill || firstReq == kInf) {
            spillIt(idx, position);
            return;
        }

        u32 evictGap = position & 1 ? position : position - 1;
        u32 usePos[kMaxRegs], blockPos[kMaxRegs];
        for (u32 i = 0; i < pool.count; i++) {
            usePos[pool.regs[i]] = kInf;
            blockPos[pool.regs[i]] = kInf;
        }
        for (u32 a : active) {
            u8 r = itv[a].loc.reg;
            // A victim is only evictable if it can be split at the gap
            // before the current position.
            u32 u = (position == 0 || evictGap <= itv[a].from())
                        ? position
                        : itv[a].nextUseAfter(position);
            usePos[r] = std::min(usePos[r], u);
        }
        for (u32 i : inactive) {
            u32 x = firstIntersection(itv[i], itv[idx], position);
            if (x != kInf) {
                u8 r = itv[i].loc.reg;
                blockPos[r] = std::min(blockPos[r], x);
                usePos[r] = std::min(usePos[r], x);
            }
        }
        u32 cap = firstCallCrossed(itv[idx]);
        if (cap != kInf) {
            for (u32 i = 0; i < pool.count; i++) {
                u8 r = pool.regs[i];
                bool callerSaved = isF ? isCallerSavedFpr(r)
                                       : isCallerSavedGpr(r);
                if (callerSaved) {
                    usePos[r] = std::min(usePos[r], cap);
                    blockPos[r] = std::min(blockPos[r], cap);
                }
            }
        }

        u8 best = pool.regs[0];
        for (u32 i = 1; i < pool.count; i++)
            if (usePos[pool.regs[i]] > usePos[best])
                best = pool.regs[i];

        if (usePos[best] <= position || usePos[best] < firstReq
            || blockPos[best] < position + 2) {
            spillIt(idx, position);
            return;
        }

        // Spill-cost heuristic: if every victim in the best register
        // is hotter (denser uses, deeper loops) than the current
        // interval, spill the current one instead.
        float victimCost = -1.0f;
        for (u32 a : active) {
            if (itv[a].loc.reg != best)
                continue;
            float c = costOf(a);
            if (victimCost < 0.0f || c < victimCost)
                victimCost = c;
        }
        if (victimCost >= 0.0f && costOf(idx) < victimCost) {
            spillIt(idx, position);
            return;
        }

        // Evict: split every active interval holding `best` at the gap
        // before the current position and requeue the tails.
        for (size_t i = 0; i < active.size();) {
            u32 a = active[i];
            if (itv[a].loc.reg == best) {
                splitAt(a, evictGap);
                active.erase(active.begin() + i);
            } else {
                i++;
            }
        }
        assignReg(idx, best);
        if (blockPos[best] < itv[idx].to()) {
            u32 gap = blockPos[best] & 1 ? blockPos[best] : blockPos[best] - 1;
            splitAt(idx, gap);
        }
    }

    void
    scan()
    {
        poolG = buildPool(false, opt.maxGprs);
        poolF = buildPool(true, opt.maxFprs);
        for (u32 i = 0; i < itv.size(); i++)
            enqueue(i);

        while (!unhandled.empty()) {
            auto [from, value, idx] = unhandled.top();
            unhandled.pop();
            (void)value;
            u32 position = from;
            if (itv.size() > maxIntervals)
                forceSpill = true;

            bool isF = itv[idx].isFloat;
            std::vector<u32> &active = isF ? activeF : activeG;
            std::vector<u32> &inactive = isF ? inactiveF : inactiveG;
            for (size_t i = 0; i < active.size();) {
                u32 a = active[i];
                if (itv[a].to() <= position) {
                    active.erase(active.begin() + i);
                } else if (!itv[a].covers(position)) {
                    inactive.push_back(a);
                    active.erase(active.begin() + i);
                } else {
                    i++;
                }
            }
            for (size_t i = 0; i < inactive.size();) {
                u32 a = inactive[i];
                if (itv[a].to() <= position) {
                    inactive.erase(inactive.begin() + i);
                } else if (itv[a].covers(position)) {
                    active.push_back(a);
                    inactive.erase(inactive.begin() + i);
                } else {
                    i++;
                }
            }

            if (!tryAllocateFree(idx, position))
                allocateBlocked(idx, position);
            if (itv[idx].loc.where == Allocation::Where::Reg
                || itv[idx].loc.where == Allocation::Where::FReg)
                active.push_back(idx);
        }
    }

    // ---- slots, segments, moves -----------------------------------------

    void
    assignSlots()
    {
        std::vector<u32> famFrom(itv.size(), kInf), famTo(itv.size(), 0);
        for (const Itv &it : itv) {
            if (it.loc.where != Allocation::Where::Spill)
                continue;
            famFrom[it.family] = std::min(famFrom[it.family], it.from());
            famTo[it.family] = std::max(famTo[it.family], it.to());
        }
        std::vector<std::pair<u32, u32>> order;  // (from, family)
        for (u32 f = 0; f < itv.size(); f++)
            if (famFrom[f] != kInf)
                order.push_back({famFrom[f], f});
        std::sort(order.begin(), order.end());

        std::vector<u32> slotBusyUntil;
        std::vector<i32> famSlot(itv.size(), -1);
        for (auto [from, f] : order) {
            i32 s = -1;
            for (u32 i = 0; i < slotBusyUntil.size(); i++) {
                if (slotBusyUntil[i] <= from) {
                    s = static_cast<i32>(i);
                    break;
                }
            }
            if (s < 0) {
                s = static_cast<i32>(slotBusyUntil.size());
                slotBusyUntil.push_back(0);
            }
            slotBusyUntil[s] = famTo[f];
            famSlot[f] = s;
        }
        for (Itv &it : itv)
            if (it.loc.where == Allocation::Where::Spill)
                it.loc.slot = famSlot[it.family];
        result.spillSlots = static_cast<u32>(slotBusyUntil.size());
        result.stats.spillSlots = result.spillSlots;
        result.stats.spilledIntervals = static_cast<u32>(order.size());
    }

    void
    flattenSegments()
    {
        std::vector<u32> counts(g.nodes.size() + 1, 0);
        for (const Itv &it : itv)
            counts[it.value] += static_cast<u32>(it.ranges.size());
        result.segIndex.assign(g.nodes.size() + 1, 0);
        for (size_t v = 0; v < g.nodes.size(); v++)
            result.segIndex[v + 1] = result.segIndex[v] + counts[v];
        result.segs.resize(result.segIndex.back());
        std::vector<u32> cursor(result.segIndex.begin(),
                                result.segIndex.end() - 1);
        for (const Itv &it : itv) {
            for (const Range &r : it.ranges)
                result.segs[cursor[it.value]++] = {r.from, r.to, it.loc};
        }
        for (size_t v = 0; v < g.nodes.size(); v++) {
            std::sort(result.segs.begin() + result.segIndex[v],
                      result.segs.begin() + result.segIndex[v + 1],
                      [](const LiveSegment &a, const LiveSegment &b) {
                          return a.from < b.from;
                      });
        }
    }

    void
    buildMoves()
    {
        u32 totalPos = blockOrder.empty() ? 0 : blockTo[blockOrder.back()];
        std::vector<bool> boundaryGap(totalPos + 2, false);
        for (BlockId b : blockOrder)
            if (blockTo[b] > blockFrom[b])
                boundaryGap[blockTo[b] - 1] = true;

        // In-block gap moves: a location change at an odd position that
        // is not a block boundary (boundaries are edge-resolved).
        for (size_t v = 0; v < g.nodes.size(); v++) {
            for (u32 i = result.segIndex[v] + 1; i < result.segIndex[v + 1];
                 i++) {
                const LiveSegment &a = result.segs[i - 1];
                const LiveSegment &b = result.segs[i];
                if (a.to != b.from || a.loc.sameAs(b.loc))
                    continue;
                if ((b.from & 1) && !boundaryGap[b.from]) {
                    result.gapMoves.push_back(
                        {b.from, static_cast<ValueId>(v), a.loc, b.loc});
                }
            }
        }
        std::sort(result.gapMoves.begin(), result.gapMoves.end(),
                  [](const GapMove &a, const GapMove &b) {
                      return a.pos < b.pos
                             || (a.pos == b.pos && a.value < b.value);
                  });

        // CFG-edge resolution: for every value live into the successor,
        // reconcile its location at the predecessor's end with its
        // location at the successor's start.
        for (BlockId p : blockOrder) {
            if (blockTo[p] < blockFrom[p] + 2)
                continue;
            const BasicBlock &blk = g.block(p);
            BlockId succs[2] = {blk.succTrue, blk.succFalse};
            for (BlockId s : succs) {
                if (s == kNoBlock)
                    continue;
                EdgeResolution er;
                er.pred = p;
                er.succ = s;
                const u64 *in = liveInBits.data() + size_t(s) * words;
                for (u32 w = 0; w < words; w++) {
                    u64 bits = in[w];
                    while (bits) {
                        u32 bit = static_cast<u32>(__builtin_ctzll(bits));
                        bits &= bits - 1;
                        ValueId v = w * 64 + bit;
                        Allocation fromLoc =
                            result.locationAt(v, blockTo[p] - 2);
                        Allocation toLoc =
                            result.locationAt(v, blockFrom[s]);
                        if (fromLoc.where == Allocation::Where::None
                            || toLoc.where == Allocation::Where::None)
                            continue;
                        if (!fromLoc.sameAs(toLoc))
                            er.moves.push_back({v, fromLoc, toLoc});
                    }
                }
                if (!er.moves.empty())
                    result.edgeMoves.push_back(std::move(er));
            }
        }
    }

    void
    finishStats()
    {
        for (const GapMove &m : result.gapMoves) {
            if (m.to.where == Allocation::Where::Spill)
                result.stats.spillStores++;
            else if (m.from.where == Allocation::Where::Spill)
                result.stats.reloads++;
        }
        for (const EdgeResolution &er : result.edgeMoves) {
            for (const EdgeMove &m : er.moves) {
                if (m.to.where == Allocation::Where::Spill)
                    result.stats.spillStores++;
                else if (m.from.where == Allocation::Where::Spill)
                    result.stats.reloads++;
            }
        }
        // Root intervals spilled at their definition store via
        // finishDef rather than a move.
        for (u32 i = 0; i < itv.size(); i++)
            if (itv[i].family == i
                && itv[i].loc.where == Allocation::Where::Spill)
                result.stats.spillStores++;

        u64 calleeG = 0, calleeF = 0;
        for (const Itv &it : itv) {
            if (it.loc.where == Allocation::Where::Reg
                && !isCallerSavedGpr(it.loc.reg))
                calleeG |= u64(1) << it.loc.reg;
            if (it.loc.where == Allocation::Where::FReg
                && !isCallerSavedFpr(it.loc.reg))
                calleeF |= u64(1) << it.loc.reg;
        }
        result.stats.calleeSavedUsed =
            static_cast<u32>(__builtin_popcountll(calleeG)
                             + __builtin_popcountll(calleeF));
    }

    void
    run()
    {
        assignPositions();
        detectFusions();
        computeLiveness();
        buildIntervals();
        findLoops();
        scan();
        assignSlots();
        flattenSegments();
        buildMoves();
        finishStats();
    }
};

} // namespace

bool
isCallerSavedGpr(u8 reg)
{
    return reg <= 15;
}

u8
defaultMaxGprs()
{
    static u8 v = [] {
        if (const char *env = std::getenv("VSPEC_MAX_GPRS"))
            return static_cast<u8>(std::atoi(env));
        return u8{0};
    }();
    return v;
}

u8
defaultMaxFprs()
{
    static u8 v = [] {
        if (const char *env = std::getenv("VSPEC_MAX_FPRS"))
            return static_cast<u8>(std::atoi(env));
        return u8{0};
    }();
    return v;
}

bool
isCallerSavedFpr(u8 reg)
{
    return reg <= 7;
}

AllocationResult
allocateRegisters(const Graph &graph, const std::vector<BlockId> &blockOrder,
                  const RegallocOptions &options)
{
    auto hostBegin = std::chrono::steady_clock::now();
    if (options.trace) {
        options.trace->emit(TraceCategory::Compile, TraceEventKind::Begin,
                            "regalloc", options.traceTimestamp,
                            options.traceFunction);
    }

    AllocationResult result;
    LinearScan ls(graph, blockOrder, options, result);
    ls.run();

    if (options.trace) {
        auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - hostBegin)
                          .count();
        options.trace->emit(TraceCategory::Compile, TraceEventKind::End,
                            "regalloc", options.traceTimestamp,
                            options.traceFunction, 0,
                            static_cast<u64>(micros));
    }
    return result;
}

} // namespace vspec
