#include "backend/regalloc.hh"

#include <algorithm>
#include <map>

#include "isa/isa.hh"

namespace vspec
{

namespace
{

/** Allocatable register pools. Caller-saved first (cheaper), then
 *  callee-saved for call-crossing intervals. x16/x17 are expansion
 *  scratch, x26/x27 spill scratch, x28 the stack pointer; d14/d15 are
 *  FP scratch. */
const u8 kGprCallerSaved[] = {0, 1, 2, 3, 4, 5, 6, 7,
                              8, 9, 10, 11, 12, 13, 14, 15};
const u8 kGprCalleeSaved[] = {19, 20, 21, 22, 23, 24, 25, 18};
const u8 kFprCallerSaved[] = {0, 1, 2, 3, 4, 5, 6, 7};
const u8 kFprCalleeSaved[] = {8, 9, 10, 11, 12, 13};

struct Interval
{
    ValueId value = kNoValue;
    u32 start = 0;
    u32 end = 0;
    bool isFloat = false;
    bool crossesCall = false;
};

bool
producesValue(const IrNode &n)
{
    if (n.rep == Rep::None)
        return false;
    switch (n.op) {
      case IrOp::ConstI32:
      case IrOp::ConstTagged:
      case IrOp::ConstF64:
        return false;  // rematerialized at use sites
      case IrOp::Goto:
      case IrOp::Branch:
      case IrOp::Return:
      case IrOp::Deopt:
        return false;
      default:
        return true;
    }
}

} // namespace

AllocationResult
allocateRegisters(const Graph &g, const std::vector<BlockId> &blockOrder)
{
    // ---- linear positions ------------------------------------------------
    std::vector<u32> posOf(g.nodes.size(), 0);
    std::vector<ValueId> order;
    u32 pos = 0;
    std::vector<u32> blockEndPos(g.blocks.size(), 0);
    for (BlockId b : blockOrder) {
        for (ValueId id : g.block(b).nodes) {
            if (g.node(id).dead)
                continue;
            posOf[id] = pos++;
        }
        blockEndPos[b] = pos == 0 ? 0 : pos - 1;
    }

    // ---- live intervals ----------------------------------------------------
    std::map<ValueId, Interval> intervals;
    auto touch = [&](ValueId v, u32 p) {
        if (v == kNoValue)
            return;
        const IrNode &n = g.node(v);
        if (n.dead || !producesValue(n))
            return;
        auto it = intervals.find(v);
        if (it == intervals.end()) {
            Interval iv;
            iv.value = v;
            iv.start = posOf[v];
            iv.end = std::max(posOf[v], p);
            iv.isFloat = n.rep == Rep::Float64;
            intervals.emplace(v, iv);
        } else {
            it->second.end = std::max(it->second.end, p);
            it->second.start = std::min(it->second.start, posOf[v]);
        }
    };

    std::vector<u32> callPositions;
    for (BlockId b : blockOrder) {
        const BasicBlock &blk = g.block(b);
        for (ValueId id : blk.nodes) {
            const IrNode &n = g.node(id);
            if (n.dead)
                continue;
            u32 p = posOf[id];
            touch(id, p);  // definition
            for (ValueId in : n.inputs)
                touch(in, p);
            if (n.canDeopt() && n.frameState != kNoFrameState) {
                const FrameState &fs = g.frameStates[n.frameState];
                for (ValueId r : fs.regs)
                    touch(r, p);
                touch(fs.accumulator, p);
            }
            if (n.op == IrOp::CallRuntime || n.op == IrOp::CallFunction
                || n.op == IrOp::F64Mod) {
                callPositions.push_back(p);
            }
            // Phi inputs are used by the move at the end of each pred.
            if (n.op == IrOp::Phi) {
                const auto &preds = blk.preds;
                for (size_t i = 0;
                     i < n.inputs.size() && i < preds.size(); i++) {
                    touch(n.inputs[i], blockEndPos[preds[i]]);
                    // The phi itself must be live at every pred end so
                    // the move target register is reserved there.
                    touch(id, blockEndPos[preds[i]]);
                }
            }
        }
    }

    // ---- loop extension ---------------------------------------------------
    // A value defined before a loop and used inside it is live for the
    // whole loop: its last textual use position understates its live
    // range, because execution revisits that use on every iteration.
    struct LoopRange { u32 start; u32 end; };
    std::vector<LoopRange> loops;
    {
        std::vector<u32> blockStartPos(g.blocks.size(), 0);
        u32 p = 0;
        for (BlockId b : blockOrder) {
            blockStartPos[b] = p;
            for (ValueId id : g.block(b).nodes)
                if (!g.node(id).dead)
                    p++;
        }
        for (BlockId b : blockOrder) {
            BlockId t = g.block(b).succTrue;
            if (t != kNoBlock && t <= b)
                loops.push_back({blockStartPos[t], blockEndPos[b]});
        }
    }
    bool extended = true;
    while (extended) {
        extended = false;
        for (auto &[v, iv] : intervals) {
            for (const LoopRange &lr : loops) {
                if (iv.start < lr.start && iv.end >= lr.start
                    && iv.end < lr.end) {
                    iv.end = lr.end;
                    extended = true;
                }
            }
        }
    }

    std::sort(callPositions.begin(), callPositions.end());
    auto crossesCall = [&](const Interval &iv) {
        auto it = std::lower_bound(callPositions.begin(),
                                   callPositions.end(), iv.start);
        // A call at exactly the interval's end does not clobber the
        // value after its last use... but the call's own result is
        // defined at that position, so be conservative: strict inside.
        return it != callPositions.end() && *it < iv.end;
    };
    for (auto &[v, iv] : intervals)
        iv.crossesCall = crossesCall(iv);

    // ---- linear scan --------------------------------------------------------
    std::vector<Interval> sorted;
    sorted.reserve(intervals.size());
    for (auto &[v, iv] : intervals)
        sorted.push_back(iv);
    std::sort(sorted.begin(), sorted.end(),
              [](const Interval &a, const Interval &b) {
                  return a.start < b.start
                         || (a.start == b.start && a.value < b.value);
              });

    AllocationResult result;
    result.alloc.resize(g.nodes.size());

    struct Active
    {
        Interval iv;
        u8 reg;
    };
    std::vector<Active> activeGpr, activeFpr;
    u32 spillSlots = 0;

    auto regFree = [&](std::vector<Active> &active, u8 r, u32 at) {
        for (auto &a : active) {
            if (a.reg == r && a.iv.end >= at)
                return false;
        }
        return true;
    };

    for (const Interval &iv : sorted) {
        bool isF = iv.isFloat;
        auto &active = isF ? activeFpr : activeGpr;
        // Expire old intervals.
        std::erase_if(active,
                      [&](const Active &a) { return a.iv.end < iv.start; });

        // Candidate register order: callee-saved only when crossing a
        // call; otherwise caller-saved first.
        std::vector<u8> candidates;
        if (iv.crossesCall) {
            const u8 *pool = isF ? kFprCalleeSaved : kGprCalleeSaved;
            size_t n = isF ? std::size(kFprCalleeSaved)
                           : std::size(kGprCalleeSaved);
            candidates.assign(pool, pool + n);
        } else {
            const u8 *p1 = isF ? kFprCallerSaved : kGprCallerSaved;
            size_t n1 = isF ? std::size(kFprCallerSaved)
                            : std::size(kGprCallerSaved);
            candidates.assign(p1, p1 + n1);
            const u8 *p2 = isF ? kFprCalleeSaved : kGprCalleeSaved;
            size_t n2 = isF ? std::size(kFprCalleeSaved)
                            : std::size(kGprCalleeSaved);
            candidates.insert(candidates.end(), p2, p2 + n2);
        }

        u8 chosen = 0xff;
        for (u8 r : candidates) {
            if (regFree(active, r, iv.start)) {
                chosen = r;
                break;
            }
        }

        Allocation &a = result.alloc[iv.value];
        if (chosen != 0xff) {
            a.where = isF ? Allocation::Where::FReg : Allocation::Where::Reg;
            a.reg = chosen;
            active.push_back({iv, chosen});
        } else {
            // Spill the active interval with the furthest end if that
            // frees a register usable by this interval; otherwise spill
            // the new interval itself.
            auto victim = active.end();
            for (auto it = active.begin(); it != active.end(); ++it) {
                bool usable = !iv.crossesCall
                              || std::find(candidates.begin(),
                                           candidates.end(), it->reg)
                                 != candidates.end();
                if (!usable)
                    continue;
                if (victim == active.end()
                    || it->iv.end > victim->iv.end)
                    victim = it;
            }
            if (victim != active.end() && victim->iv.end > iv.end) {
                Allocation &va = result.alloc[victim->iv.value];
                va.where = Allocation::Where::Spill;
                va.slot = static_cast<i32>(spillSlots++);
                a.where = isF ? Allocation::Where::FReg
                              : Allocation::Where::Reg;
                a.reg = victim->reg;
                Interval saved = iv;
                u8 reg = victim->reg;
                active.erase(victim);
                active.push_back({saved, reg});
            } else {
                a.where = Allocation::Where::Spill;
                a.slot = static_cast<i32>(spillSlots++);
            }
        }
    }

    result.spillSlots = spillSlots;
    return result;
}

} // namespace vspec
