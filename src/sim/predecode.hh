/**
 * @file
 * Simulator predecode fast path (vpar): every CommitInfo field except
 * the dynamic ones (memAddr, taken) is a pure function of the MInst,
 * so the functional core decodes each code object's instruction stream
 * exactly once into a dense micro-op array instead of re-deriving the
 * instruction class, register dependencies and flag behaviour on every
 * fetch. The decoded proto is cached on the CodeObject (engines are
 * single-threaded; each cell owns its engine, so no locking).
 *
 * Cycle counts are bit-identical with the cache on or off by
 * construction: both paths obtain the proto from the same
 * predecodeInst(), the only difference being whether it was computed
 * at compile-install time or per fetch. Under VSPEC_VERIFY the cached
 * array is re-validated against a fresh decode before first use.
 */

#ifndef VSPEC_SIM_PREDECODE_HH
#define VSPEC_SIM_PREDECODE_HH

#include "sim/machine.hh"

namespace vspec
{

/** Dense micro-op array for one code object: a ready-to-commit
 *  CommitInfo per instruction, with memAddr/taken left for run time. */
struct PredecodedCode
{
    std::vector<CommitInfo> ops;
};

/** Decode the static CommitInfo fields of one instruction. */
CommitInfo predecodeInst(const MInst &m, u32 pc);

/** Build the micro-op array for @p code. */
PredecodedCode buildPredecoded(const CodeObject &code);

/** True when both protos agree field-for-field (verification). */
bool commitInfoEquals(const CommitInfo &a, const CommitInfo &b);

/**
 * vverify hook: re-decode @p code and compare against the cached
 * array; vpanics on the first mismatch (a stale or corrupted cache
 * would silently skew every figure).
 */
void verifyPredecoded(const CodeObject &code, const PredecodedCode &pd);

/**
 * Process default for EngineConfig::predecode: VSPEC_PREDECODE=0
 * disables the cache (for A/B timing comparisons), anything else —
 * including unset — enables it. Read once; cells never race on
 * getenv.
 */
bool defaultPredecodeEnabled();

} // namespace vspec

#endif // VSPEC_SIM_PREDECODE_HH
