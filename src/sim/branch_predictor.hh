/**
 * @file
 * Gshare branch direction predictor. Keeps separate statistics for
 * deoptimization branches so the paper's §IV-B observation — deopt
 * branches are almost always predicted correctly because they are
 * almost never taken — can be measured directly.
 */

#ifndef VSPEC_SIM_BRANCH_PREDICTOR_HH
#define VSPEC_SIM_BRANCH_PREDICTOR_HH

#include <vector>

#include "support/common.hh"

namespace vspec
{

class BranchPredictor
{
  public:
    explicit BranchPredictor(u32 table_bits = 12);

    /**
     * Predict and update for a branch at @p pc that resolves @p taken.
     * @return true if the prediction was correct.
     */
    bool predictAndUpdate(u64 pc, bool taken, bool is_deopt_branch);

    u64 branches = 0;
    u64 mispredicts = 0;
    u64 deoptBranches = 0;
    u64 deoptMispredicts = 0;

    void reset();

  private:
    u32 tableBits;
    std::vector<u8> counters;  //!< 2-bit saturating
    u32 history = 0;
};

} // namespace vspec

#endif // VSPEC_SIM_BRANCH_PREDICTOR_HH
