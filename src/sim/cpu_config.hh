/**
 * @file
 * CPU model configurations. The characterization experiments (Figs.
 * 1-10) run on the fast timing model, standing in for the paper's real
 * Xeon / Kunpeng hardware; the ISA-extension experiments (Figs. 13-14)
 * run on the detailed in-order and O3-lite models, standing in for the
 * paper's gem5 cores (in-order little core, Exynos-big-like, O3
 * Kunpeng-like, and a high-performance desktop core "HPD").
 */

#ifndef VSPEC_SIM_CPU_CONFIG_HH
#define VSPEC_SIM_CPU_CONFIG_HH

#include <string>
#include <vector>

#include "sim/caches.hh"

namespace vspec
{

enum class CpuModelKind : u8
{
    FastTiming,  //!< width-parameterized one-pass model ("real HW" proxy)
    InOrder,     //!< scalar 5-stage pipeline
    O3Lite,      //!< out-of-order ready-time model
};

struct CpuConfig
{
    std::string name = "default";
    CpuModelKind kind = CpuModelKind::FastTiming;

    u32 fetchWidth = 4;
    u32 issueWidth = 4;
    u32 robSize = 128;
    u32 mispredictPenalty = 12;
    u32 takenBranchBubble = 1;   //!< fetch bubble after taken branches
    u32 branchPredictorBits = 12;

    CacheConfig l1 = {32 * 1024, 8, 64, 4};
    CacheConfig l2 = {1024 * 1024, 8, 64, 14};
    u32 memoryLatency = 90;

    // Operation latencies (cycles).
    u32 aluLatency = 1;
    u32 mulLatency = 3;
    u32 divLatency = 12;
    u32 fpLatency = 3;
    u32 fdivLatency = 15;
    u32 fsqrtLatency = 18;

    // ---- presets ------------------------------------------------------

    /** X64 server (Xeon-class) proxy for the characterization runs. */
    static CpuConfig x64Server();
    /** ARM64 server (Kunpeng-920-class) proxy. */
    static CpuConfig arm64Server();

    /** gem5-style detailed cores for §V. */
    static CpuConfig hpd();         //!< high-performance desktop, O3
    static CpuConfig exynosBig();   //!< mobile big core, O3
    static CpuConfig o3Kpg();       //!< Kunpeng-like server core, O3
    static CpuConfig inOrderA55();  //!< little in-order core

    static std::vector<CpuConfig> gem5Cores();
};

} // namespace vspec

#endif // VSPEC_SIM_CPU_CONFIG_HH
