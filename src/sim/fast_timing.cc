#include "sim/fast_timing.hh"

namespace vspec
{

FastTimingModel::FastTimingModel(const CpuConfig &config)
    : TimingModel(config), width(config.issueWidth)
{
}

void
FastTimingModel::onCommit(const CommitInfo &ci)
{
    CommonResult cr = commitCommon(ci);

    // Issue: one slot (1/width cycle).
    u64 t = subCycles + 1;

    // Expose producer latency only when a consumer needs the value
    // earlier than it is ready (OoO hides the rest).
    for (u8 s : ci.srcs) {
        if (s != kNoRegId && s < 64 && ready[s] > t)
            t = ready[s];
    }

    u64 lat_sub = static_cast<u64>(classLatency(ci.cls)) * width;
    if (ci.isMem && ci.isLoad) {
        // Loads beyond the L1 hit latency expose (part of) the miss.
        u32 hit = cfg.l1.hitLatency;
        lat_sub = static_cast<u64>(cr.memLatency > hit
                                   ? hit + (cr.memLatency - hit) / 2
                                   : hit)
                  * width;
    }
    if (ci.dst != kNoRegId && ci.dst < 64)
        ready[ci.dst] = t + lat_sub;

    if (cr.mispredicted)
        t += static_cast<u64>(cfg.mispredictPenalty) * width;

    subCycles = t;
    stats.cycles = baseCycles0 + subCycles / width;
}

} // namespace vspec
