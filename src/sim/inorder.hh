/**
 * @file
 * Scalar in-order pipeline model (little-core proxy for the §V gem5
 * experiments): one instruction per cycle, stalls on not-yet-ready
 * source registers (load-use and long-latency dependencies), full
 * mispredict penalty, blocking division.
 */

#ifndef VSPEC_SIM_INORDER_HH
#define VSPEC_SIM_INORDER_HH

#include "sim/machine.hh"

namespace vspec
{

class InOrderModel : public TimingModel
{
  public:
    explicit InOrderModel(const CpuConfig &config);

    void onCommit(const CommitInfo &ci) override;

    void
    advanceExternal(Cycles c) override
    {
        now += c;
        stats.cycles = now;
        stats.runtimeCallCycles += c;
    }

  private:
    Cycles now = 0;
    Cycles ready[64] = {};
    Cycles flagsReady = 0;
};

} // namespace vspec

#endif // VSPEC_SIM_INORDER_HH
