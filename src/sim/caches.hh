/**
 * @file
 * Two-level set-associative data-cache model with LRU replacement.
 * Returns total access latency so timing models can charge loads and
 * stores; tracks per-level miss statistics.
 */

#ifndef VSPEC_SIM_CACHES_HH
#define VSPEC_SIM_CACHES_HH

#include <vector>

#include "support/common.hh"

namespace vspec
{

struct CacheConfig
{
    u32 sizeBytes = 32 * 1024;
    u32 associativity = 8;
    u32 lineBytes = 64;
    u32 hitLatency = 4;
};

class CacheLevel
{
  public:
    explicit CacheLevel(const CacheConfig &config);

    /** @return true on hit; updates LRU state and allocates on miss. */
    bool access(Addr addr);

    u64 hits = 0;
    u64 misses = 0;
    u32 hitLatency() const { return config.hitLatency; }

    void reset();

  private:
    CacheConfig config;
    u32 numSets;
    std::vector<u64> tags;   //!< numSets x associativity
    std::vector<u32> lru;    //!< age counters
    u32 tick = 0;
};

/** L1D + L2 + memory. */
class CacheHierarchy
{
  public:
    CacheHierarchy(const CacheConfig &l1, const CacheConfig &l2,
                   u32 memory_latency);

    /** Total load-to-use latency for an access to @p addr. */
    u32 access(Addr addr);

    u64 l1Misses() const { return l1.misses; }
    u64 l2Misses() const { return l2.misses; }
    u64 accesses() const { return l1.hits + l1.misses; }

    void reset();

  private:
    CacheLevel l1;
    CacheLevel l2;
    u32 memoryLatency;
};

} // namespace vspec

#endif // VSPEC_SIM_CACHES_HH
