#include "sim/o3lite.hh"

#include <algorithm>

namespace vspec
{

O3LiteModel::O3LiteModel(const CpuConfig &config)
    : TimingModel(config),
      rob(config.robSize, 0),
      fetchSlotsLeft(config.fetchWidth)
{
}

void
O3LiteModel::onCommit(const CommitInfo &ci)
{
    CommonResult cr = commitCommon(ci);

    // ---- dispatch: frontend bandwidth + ROB space --------------------
    if (fetchSlotsLeft == 0) {
        fetchReady += 1;
        fetchSlotsLeft = cfg.fetchWidth;
    }
    fetchSlotsLeft--;

    Cycles dispatch = fetchReady;
    // ROB full: wait for the oldest in-flight instruction to retire.
    Cycles rob_free = rob[robHead];
    if (rob_free > dispatch) {
        stats.backendStallCycles += rob_free - dispatch;
        dispatch = rob_free;
    }

    // ---- issue: operand readiness -----------------------------------
    Cycles operands = dispatch;
    for (u8 s : ci.srcs) {
        if (s != kNoRegId && s < 64)
            operands = std::max(operands, ready[s]);
    }
    if (ci.readsFlags)
        operands = std::max(operands, flagsReady);
    if (operands > dispatch)
        stats.backendStallCycles += operands - dispatch;

    Cycles issue = operands;
    Cycles lat = classLatency(ci.cls);
    if (ci.isMem && ci.isLoad)
        lat = cr.memLatency;
    if (ci.isMem && !ci.isLoad)
        lat = 1;
    Cycles complete = issue + lat;

    if (ci.dst != kNoRegId && ci.dst < 64)
        ready[ci.dst] = complete;
    if (ci.setsFlags)
        flagsReady = complete;

    // ---- retire (in order) -------------------------------------------
    Cycles retire = std::max(complete, lastRetire);
    rob[robHead] = retire;
    robHead = (robHead + 1) % rob.size();
    lastRetire = retire;

    // ---- control flow steering ----------------------------------------
    if (cr.mispredicted) {
        // Redirect fetch after the branch resolves.
        Cycles redirect = complete + cfg.mispredictPenalty;
        if (redirect > fetchReady) {
            stats.frontendStallCycles += redirect - fetchReady;
            fetchReady = redirect;
        }
        fetchSlotsLeft = cfg.fetchWidth;
    } else if (ci.taken) {
        Cycles bubble = fetchReady + cfg.takenBranchBubble;
        stats.frontendStallCycles += cfg.takenBranchBubble;
        fetchReady = bubble;
        fetchSlotsLeft = cfg.fetchWidth;
    }

    stats.cycles = lastRetire;
}

} // namespace vspec
