/**
 * @file
 * Fast one-pass timing model: a width-W superscalar approximation that
 * charges 1/W cycle per instruction plus cache-miss and branch
 * mispredict penalties, with a small dependency-chain correction for
 * long-latency producers. It stands in for the paper's *real hardware*
 * runs (Xeon / Kunpeng) in the characterization experiments, where
 * only relative overheads matter.
 */

#ifndef VSPEC_SIM_FAST_TIMING_HH
#define VSPEC_SIM_FAST_TIMING_HH

#include "sim/machine.hh"

namespace vspec
{

class FastTimingModel : public TimingModel
{
  public:
    explicit FastTimingModel(const CpuConfig &config);

    void onCommit(const CommitInfo &ci) override;

    void
    advanceExternal(Cycles c) override
    {
        baseCycles0 += c;
        stats.runtimeCallCycles += c;
        stats.cycles = baseCycles0 + subCycles / width;
    }

  private:
    // Fixed-point half-cycle accounting so a width-2+ machine can
    // retire multiple cheap instructions per cycle.
    u64 subCycles = 0;  //!< in 1/width units
    u64 width;
    u64 baseCycles0 = 0;
    /** Ready time (in sub-cycles) per register, for latency exposure. */
    u64 ready[64] = {};
};

} // namespace vspec

#endif // VSPEC_SIM_FAST_TIMING_HH
