#include "sim/inorder.hh"

namespace vspec
{

InOrderModel::InOrderModel(const CpuConfig &config) : TimingModel(config)
{
}

void
InOrderModel::onCommit(const CommitInfo &ci)
{
    CommonResult cr = commitCommon(ci);

    Cycles issue = now + 1;
    for (u8 s : ci.srcs) {
        if (s != kNoRegId && s < 64 && ready[s] > issue) {
            stats.backendStallCycles += ready[s] - issue;
            issue = ready[s];
        }
    }
    if (ci.readsFlags && flagsReady > issue) {
        stats.backendStallCycles += flagsReady - issue;
        issue = flagsReady;
    }

    Cycles lat = classLatency(ci.cls);
    if (ci.isMem && ci.isLoad)
        lat = cr.memLatency;
    if (ci.isMem && !ci.isLoad)
        lat = 1;  // store buffer absorbs store latency

    if (ci.dst != kNoRegId && ci.dst < 64)
        ready[ci.dst] = issue + lat;
    if (ci.setsFlags)
        flagsReady = issue + 1;

    // In-order: division blocks the pipeline.
    if (ci.cls == InstClass::Div || ci.cls == InstClass::FpDiv
        || ci.cls == InstClass::FpSqrt)
        issue += lat - 1;

    if (cr.mispredicted) {
        issue += cfg.mispredictPenalty;
        stats.frontendStallCycles += cfg.mispredictPenalty;
    } else if (ci.taken) {
        issue += cfg.takenBranchBubble;
        stats.frontendStallCycles += cfg.takenBranchBubble;
    }

    now = issue;
    stats.cycles = now;
}

} // namespace vspec
