#include "sim/branch_predictor.hh"

namespace vspec
{

BranchPredictor::BranchPredictor(u32 table_bits)
    : tableBits(table_bits),
      counters(1u << table_bits, 1)  // weakly not-taken
{
}

void
BranchPredictor::reset()
{
    std::fill(counters.begin(), counters.end(), static_cast<u8>(1));
    history = 0;
    branches = mispredicts = deoptBranches = deoptMispredicts = 0;
}

bool
BranchPredictor::predictAndUpdate(u64 pc, bool taken, bool is_deopt)
{
    u32 mask = (1u << tableBits) - 1;
    u32 idx = (static_cast<u32>(pc) ^ history) & mask;
    bool prediction = counters[idx] >= 2;
    if (taken && counters[idx] < 3)
        counters[idx]++;
    else if (!taken && counters[idx] > 0)
        counters[idx]--;
    history = ((history << 1) | (taken ? 1 : 0)) & mask;

    bool correct = prediction == taken;
    branches++;
    if (!correct)
        mispredicts++;
    if (is_deopt) {
        deoptBranches++;
        if (!correct)
            deoptMispredicts++;
    }
    return correct;
}

} // namespace vspec
