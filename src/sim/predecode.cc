#include "sim/predecode.hh"

#include <cstdlib>
#include <cstring>

#include "support/logging.hh"

namespace vspec
{

namespace
{

u8 gid(u8 r) { return r; }
u8 fid(u8 r) { return static_cast<u8>(kFprBase + r); }

} // namespace

CommitInfo
predecodeInst(const MInst &m, u32 pc)
{
    CommitInfo ci;
    ci.inst = &m;
    ci.pc = pc;
    ci.cls = InstClass::Alu;
    ci.isDeoptBranch = m.isDeoptBranch;

    auto src2 = [&](u8 a, u8 b) {
        ci.srcs[0] = a;
        ci.srcs[1] = b;
    };

    switch (m.op) {
      case MOp::Nop:
        ci.cls = InstClass::Nop;
        break;

      // ---- ALU register forms -----------------------------------
      case MOp::Add: case MOp::Sub: case MOp::And: case MOp::Orr:
      case MOp::Eor: case MOp::Lsl: case MOp::Lsr: case MOp::Asr:
        src2(gid(m.rn), gid(m.rm));
        ci.dst = gid(m.rd);
        break;
      case MOp::Mul: case MOp::Smull:
        src2(gid(m.rn), gid(m.rm));
        ci.dst = gid(m.rd);
        ci.cls = InstClass::Mul;
        break;
      case MOp::SDiv:
        src2(gid(m.rn), gid(m.rm));
        ci.dst = gid(m.rd);
        ci.cls = InstClass::Div;
        break;
      case MOp::Adds: case MOp::Subs:
        src2(gid(m.rn), gid(m.rm));
        ci.dst = gid(m.rd);
        ci.setsFlags = true;
        break;

      // ---- ALU immediate forms ----------------------------------
      case MOp::AddI: case MOp::SubI: case MOp::AndI: case MOp::OrrI:
      case MOp::EorI: case MOp::LslI: case MOp::LsrI: case MOp::AsrI:
        ci.srcs[0] = gid(m.rn);
        ci.dst = gid(m.rd);
        break;
      case MOp::AddsI: case MOp::SubsI:
        ci.srcs[0] = gid(m.rn);
        ci.dst = gid(m.rd);
        ci.setsFlags = true;
        break;
      case MOp::MovI:
        ci.dst = gid(m.rd);
        break;
      case MOp::MovR:
        ci.srcs[0] = gid(m.rn);
        ci.dst = gid(m.rd);
        break;

      // ---- compares ---------------------------------------------
      case MOp::Cmp: case MOp::Tst: case MOp::CmpSxtw:
        src2(gid(m.rn), gid(m.rm));
        ci.setsFlags = true;
        break;
      case MOp::CmpI: case MOp::TstI:
        ci.srcs[0] = gid(m.rn);
        ci.setsFlags = true;
        break;
      case MOp::Cset:
        ci.dst = gid(m.rd);
        ci.readsFlags = true;
        break;
      case MOp::Csel:
        src2(gid(m.rn), gid(m.rm));
        ci.dst = gid(m.rd);
        ci.readsFlags = true;
        break;

      // ---- memory -----------------------------------------------
      case MOp::LdrB: case MOp::LdrW: case MOp::LdrX: case MOp::LdrD:
      case MOp::LdrBr: case MOp::LdrWr: case MOp::LdrXr:
      case MOp::LdrDr: {
        bool reg_form = m.op == MOp::LdrBr || m.op == MOp::LdrWr
                        || m.op == MOp::LdrXr || m.op == MOp::LdrDr;
        ci.isMem = true;
        ci.isLoad = true;
        ci.cls = InstClass::Load;
        if (m.rn != kAbsBase)
            ci.srcs[0] = gid(m.rn);
        if (reg_form)
            ci.srcs[1] = gid(m.rm);
        ci.dst = (m.op == MOp::LdrD || m.op == MOp::LdrDr)
            ? fid(m.rd) : gid(m.rd);
        break;
      }
      case MOp::StrB: case MOp::StrW: case MOp::StrX: case MOp::StrD:
      case MOp::StrBr: case MOp::StrWr: case MOp::StrXr:
      case MOp::StrDr: {
        bool reg_form = m.op == MOp::StrBr || m.op == MOp::StrWr
                        || m.op == MOp::StrXr || m.op == MOp::StrDr;
        ci.isMem = true;
        ci.isLoad = false;
        ci.cls = InstClass::Store;
        if (m.rn != kAbsBase)
            ci.srcs[0] = gid(m.rn);
        if (reg_form)
            ci.srcs[1] = gid(m.rm);
        ci.srcs[2] = (m.op == MOp::StrD || m.op == MOp::StrDr)
            ? fid(m.rd) : gid(m.rd);
        break;
      }
      case MOp::CmpMem:
        ci.isMem = true;
        ci.isLoad = true;
        ci.cls = InstClass::Load;
        src2(gid(m.rd), gid(m.rn));
        ci.setsFlags = true;
        break;
      case MOp::CmpMemI: case MOp::TstMemI:
        ci.isMem = true;
        ci.isLoad = true;
        ci.cls = InstClass::Load;
        ci.srcs[0] = gid(m.rn);
        ci.setsFlags = true;
        break;

      // ---- floating point ---------------------------------------
      case MOp::FAdd: case MOp::FSub: case MOp::FMul:
        src2(fid(m.rn), fid(m.rm));
        ci.dst = fid(m.rd);
        ci.cls = InstClass::Fp;
        break;
      case MOp::FDiv:
        src2(fid(m.rn), fid(m.rm));
        ci.dst = fid(m.rd);
        ci.cls = InstClass::FpDiv;
        break;
      case MOp::FNeg: case MOp::FAbs:
        ci.srcs[0] = fid(m.rn);
        ci.dst = fid(m.rd);
        ci.cls = InstClass::Fp;
        break;
      case MOp::FSqrt:
        ci.srcs[0] = fid(m.rn);
        ci.dst = fid(m.rd);
        ci.cls = InstClass::FpSqrt;
        break;
      case MOp::FCmp:
        src2(fid(m.rn), fid(m.rm));
        ci.setsFlags = true;
        ci.cls = InstClass::Fp;
        break;
      case MOp::FMovI:
        ci.dst = fid(m.rd);
        ci.cls = InstClass::Fp;
        break;
      case MOp::FMovRR:
        ci.srcs[0] = fid(m.rn);
        ci.dst = fid(m.rd);
        ci.cls = InstClass::Fp;
        break;
      case MOp::Scvtf:
        ci.srcs[0] = gid(m.rn);
        ci.dst = fid(m.rd);
        ci.cls = InstClass::Fp;
        break;
      case MOp::Fcvtzs: case MOp::Fjcvtzs:
        ci.srcs[0] = fid(m.rn);
        ci.dst = gid(m.rd);
        ci.cls = InstClass::Fp;
        break;

      // ---- control flow -----------------------------------------
      case MOp::B:
        ci.cls = InstClass::Branch;
        ci.taken = true;
        ci.isBranch = true;
        break;
      case MOp::Bcond:
        ci.cls = InstClass::CondBranch;
        ci.isBranch = true;
        ci.readsFlags = true;
        break;
      case MOp::Ret:
        ci.cls = InstClass::Ret;
        ci.isBranch = true;
        break;
      case MOp::CallRt:
        ci.cls = InstClass::Call;
        ci.isBranch = true;
        break;

      case MOp::Msr:
        ci.srcs[0] = gid(m.rn);
        ci.cls = InstClass::Special;
        break;
      case MOp::Mrs:
        ci.dst = gid(m.rd);
        ci.cls = InstClass::Special;
        break;

      case MOp::DeoptExit:
        break;  // committed as a plain Alu op, like the fetch path

      case MOp::JsChkMap:
        ci.isMem = true;
        ci.isLoad = true;
        ci.cls = InstClass::Load;
        ci.srcs[0] = gid(m.rn);
        ci.setsFlags = true;
        break;

      // ---- §V SMI-load extension --------------------------------
      case MOp::JsLdrSmiI: case MOp::JsLdurSmiI:
        ci.srcs[0] = gid(m.rn);
        ci.isMem = true;
        ci.isLoad = true;
        ci.cls = InstClass::Load;
        ci.dst = gid(m.rd);
        break;
      case MOp::JsLdrSmiR: case MOp::JsLdurSmiR: case MOp::JsLdrSmiRS:
      case MOp::JsLdrSmiX:
        src2(gid(m.rn), gid(m.rm));
        ci.isMem = true;
        ci.isLoad = true;
        ci.cls = InstClass::Load;
        ci.dst = gid(m.rd);
        break;
    }
    return ci;
}

PredecodedCode
buildPredecoded(const CodeObject &code)
{
    PredecodedCode pd;
    pd.ops.reserve(code.code.size());
    for (u32 i = 0; i < code.code.size(); i++)
        pd.ops.push_back(predecodeInst(code.code[i], i));
    return pd;
}

bool
commitInfoEquals(const CommitInfo &a, const CommitInfo &b)
{
    return a.inst == b.inst && a.pc == b.pc && a.cls == b.cls
           && a.isMem == b.isMem && a.isLoad == b.isLoad
           && a.memAddr == b.memAddr && a.isBranch == b.isBranch
           && a.taken == b.taken && a.isDeoptBranch == b.isDeoptBranch
           && std::memcmp(a.srcs, b.srcs, sizeof(a.srcs)) == 0
           && a.dst == b.dst && a.setsFlags == b.setsFlags
           && a.readsFlags == b.readsFlags;
}

void
verifyPredecoded(const CodeObject &code, const PredecodedCode &pd)
{
    vassert(pd.ops.size() == code.code.size(),
            "predecode cache length mismatch for code object "
                + std::to_string(code.id));
    for (u32 i = 0; i < code.code.size(); i++) {
        CommitInfo fresh = predecodeInst(code.code[i], i);
        if (!commitInfoEquals(pd.ops[i], fresh))
            vpanic("predecode cache mismatch: code " + std::to_string(code.id)
                   + " pc " + std::to_string(i) + " (" + mopName(code.code[i].op)
                   + ")");
    }
}

bool
defaultPredecodeEnabled()
{
    static bool enabled = [] {
        if (const char *env = std::getenv("VSPEC_PREDECODE"))
            return !(env[0] == '0' && env[1] == '\0');
        return true;
    }();
    return enabled;
}

} // namespace vspec
