/**
 * @file
 * O3-lite: a one-pass out-of-order core model in the spirit of
 * interval analysis. Instructions dispatch in program order limited by
 * fetch width, ROB occupancy and taken-branch fetch bubbles; they
 * issue when their operands are ready (dataflow), and the model
 * attributes stall cycles to the frontend (fetch-limited) or backend
 * (dependency/ROB-limited), which is what Fig. 10 reports.
 */

#ifndef VSPEC_SIM_O3LITE_HH
#define VSPEC_SIM_O3LITE_HH

#include <vector>

#include "sim/machine.hh"

namespace vspec
{

class O3LiteModel : public TimingModel
{
  public:
    explicit O3LiteModel(const CpuConfig &config);

    void onCommit(const CommitInfo &ci) override;

    void
    advanceExternal(Cycles c) override
    {
        fetchReady += c;
        lastRetire += c;
        stats.cycles = lastRetire;
        stats.runtimeCallCycles += c;
    }

  private:
    /** Completion times of the in-flight window (ROB), circular. */
    std::vector<Cycles> rob;
    size_t robHead = 0;
    u64 dispatched = 0;

    Cycles fetchReady = 0;    //!< next cycle the frontend can deliver
    u32 fetchSlotsLeft;
    Cycles ready[64] = {};
    Cycles flagsReady = 0;
    Cycles lastRetire = 0;
};

} // namespace vspec

#endif // VSPEC_SIM_O3LITE_HH
