#include "sim/machine.hh"

#include <cmath>
#include <cstdint>

#include "runtime/guard.hh"
#include "sim/fast_timing.hh"
#include "sim/inorder.hh"
#include "sim/o3lite.hh"
#include "sim/predecode.hh"

namespace vspec
{

SimStats &
SimStats::operator+=(const SimStats &o)
{
    cycles += o.cycles;
    instructions += o.instructions;
    loads += o.loads;
    stores += o.stores;
    branches += o.branches;
    takenBranches += o.takenBranches;
    mispredicts += o.mispredicts;
    deoptBranches += o.deoptBranches;
    deoptBranchesTaken += o.deoptBranchesTaken;
    deoptMispredicts += o.deoptMispredicts;
    l1Misses += o.l1Misses;
    l2Misses += o.l2Misses;
    frontendStallCycles += o.frontendStallCycles;
    backendStallCycles += o.backendStallCycles;
    runtimeCallCycles += o.runtimeCallCycles;
    checkInstructions += o.checkInstructions;
    checksExecuted += o.checksExecuted;
    fusedSmiLoads += o.fusedSmiLoads;
    memoryFaults += o.memoryFaults;
    return *this;
}

TimingModel::TimingModel(const CpuConfig &config)
    : predictor(config.branchPredictorBits),
      caches(config.l1, config.l2, config.memoryLatency),
      cfg(config)
{
}

u32
TimingModel::classLatency(InstClass cls) const
{
    switch (cls) {
      case InstClass::Mul: return cfg.mulLatency;
      case InstClass::Div: return cfg.divLatency;
      case InstClass::Fp: return cfg.fpLatency;
      case InstClass::FpDiv: return cfg.fdivLatency;
      case InstClass::FpSqrt: return cfg.fsqrtLatency;
      default: return cfg.aluLatency;
    }
}

TimingModel::CommonResult
TimingModel::commitCommon(const CommitInfo &ci)
{
    CommonResult r;
    stats.instructions++;
    if (ci.inst->checkId != kNoCheck)
        stats.checkInstructions++;
    if (ci.inst->checkRole == CheckRole::Branch
        || ci.inst->checkRole == CheckRole::Fused)
        stats.checksExecuted++;
    if (ci.inst->isSmiExtensionLoad())
        stats.fusedSmiLoads++;
    if (ci.isMem) {
        u64 l1_before = caches.l1Misses();
        u64 l2_before = caches.l2Misses();
        r.memLatency = caches.access(ci.memAddr);
        stats.l1Misses += caches.l1Misses() - l1_before;
        stats.l2Misses += caches.l2Misses() - l2_before;
        if (ci.isLoad)
            stats.loads++;
        else
            stats.stores++;
    }
    if (ci.cls == InstClass::CondBranch) {
        bool correct = predictor.predictAndUpdate(ci.pc, ci.taken,
                                                  ci.isDeoptBranch);
        stats.branches++;
        if (ci.taken)
            stats.takenBranches++;
        if (!correct) {
            stats.mispredicts++;
            r.mispredicted = true;
        }
        if (ci.isDeoptBranch) {
            stats.deoptBranches++;
            if (ci.taken)
                stats.deoptBranchesTaken++;
            if (!correct)
                stats.deoptMispredicts++;
        }
    } else if (ci.cls == InstClass::Branch || ci.cls == InstClass::Call
               || ci.cls == InstClass::Ret) {
        stats.branches++;
        stats.takenBranches++;
    }
    return r;
}

std::unique_ptr<TimingModel>
makeTimingModel(const CpuConfig &config)
{
    switch (config.kind) {
      case CpuModelKind::FastTiming:
        return std::make_unique<FastTimingModel>(config);
      case CpuModelKind::InOrder:
        return std::make_unique<InOrderModel>(config);
      case CpuModelKind::O3Lite:
        return std::make_unique<O3LiteModel>(config);
    }
    vpanic("unknown CPU model kind");
}

namespace
{

/** Sign-extended 32-bit view. */
inline i32 w(u64 v) { return static_cast<i32>(static_cast<u32>(v)); }

void
setAddFlags(MachineState &st, i64 a, i64 b)
{
    i64 res64 = a + b;
    u32 res = static_cast<u32>(res64);
    st.flagN = static_cast<i32>(res) < 0;
    st.flagZ = res == 0;
    st.flagC = (static_cast<u64>(static_cast<u32>(a))
                + static_cast<u64>(static_cast<u32>(b))) > 0xffffffffULL;
    st.flagV = res64 != static_cast<i32>(res);
}

void
setSubFlags(MachineState &st, i64 a, i64 b)
{
    i64 res64 = a - b;
    u32 res = static_cast<u32>(res64);
    st.flagN = static_cast<i32>(res) < 0;
    st.flagZ = res == 0;
    st.flagC = static_cast<u32>(a) >= static_cast<u32>(b);
    st.flagV = res64 != static_cast<i32>(res);
}

void
setSub64Flags(MachineState &st, i64 a, i64 b)
{
    // 64-bit comparison used by CmpSxtw; only N/Z matter for Ne/Eq but
    // compute all four for completeness.
    i64 res = a - b;  // note: may wrap; fine for the conditions we use
    st.flagN = res < 0;
    st.flagZ = res == 0;
    st.flagC = static_cast<u64>(a) >= static_cast<u64>(b);
    st.flagV = ((a < 0) != (b < 0)) && ((res < 0) != (a < 0));
}

void
setLogicFlags(MachineState &st, u32 res)
{
    st.flagN = static_cast<i32>(res) < 0;
    st.flagZ = res == 0;
    st.flagC = false;
    st.flagV = false;
}

void
setFcmpFlags(MachineState &st, double a, double b)
{
    if (a != a || b != b) {  // unordered
        st.flagN = false;
        st.flagZ = false;
        st.flagC = true;
        st.flagV = true;
    } else if (a < b) {
        st.flagN = true;
        st.flagZ = false;
        st.flagC = false;
        st.flagV = false;
    } else if (a == b) {
        st.flagN = false;
        st.flagZ = true;
        st.flagC = true;
        st.flagV = false;
    } else {
        st.flagN = false;
        st.flagZ = false;
        st.flagC = true;
        st.flagV = false;
    }
}

bool
condHolds(const MachineState &st, Cond c)
{
    switch (c) {
      case Cond::Eq: return st.flagZ;
      case Cond::Ne: return !st.flagZ;
      case Cond::Lt: return st.flagN != st.flagV;
      case Cond::Le: return st.flagZ || st.flagN != st.flagV;
      case Cond::Gt: return !st.flagZ && st.flagN == st.flagV;
      case Cond::Ge: return st.flagN == st.flagV;
      case Cond::Lo: return !st.flagC;
      case Cond::Ls: return !st.flagC || st.flagZ;
      case Cond::Hi: return st.flagC && !st.flagZ;
      case Cond::Hs: return st.flagC;
      case Cond::Vs: return st.flagV;
      case Cond::Vc: return !st.flagV;
      case Cond::Mi: return st.flagN;
      case Cond::Pl: return !st.flagN;
      case Cond::Al: return true;
    }
    return true;
}

} // namespace

u32
FunctionalCore::loadU32Safe(Addr a, SimStats *stats)
{
    if (!heap.contains(a, 4)) {
        if (stats != nullptr)
            stats->memoryFaults++;
        return 0xdeadbeefu;
    }
    return heap.readU32(a);
}

void
FunctionalCore::storeU32Safe(Addr a, u32 v, SimStats *stats)
{
    if (!heap.contains(a, 4)) {
        if (stats != nullptr)
            stats->memoryFaults++;
        return;
    }
    heap.writeU32(a, v);
}

RunResult
FunctionalCore::run(const CodeObject &code, MachineState &st,
                    TimingModel *timing, SampleSink *sampler)
{
    RunResult result;
    st.pc = 0;
    SimStats *tstats = timing != nullptr ? &timing->stats : nullptr;
    // Frames grow down from stackTop(); once SP crosses into the mortal
    // region the next spill would overwrite live heap objects. Armed
    // only when the caller set SP into the stack region (direct-run
    // tests execute stackless snippets with SP = 0).
    const u64 stack_limit = heap.sizeBytes() - Heap::kStackReserve;
    const bool sp_guard = st.sp() >= stack_limit;

    // vpar predecode fast path: the static CommitInfo fields are a
    // pure function of the instruction, so fetch them from the
    // per-code-object micro-op array instead of re-deriving them every
    // fetch. Built lazily on first entry; cross-checked against a
    // fresh decode when the engine runs with the verifier on. Cycle
    // accounting is bit-identical either way — both paths read the
    // same predecodeInst() output.
    const CommitInfo *protos = nullptr;
    if (predecode) {
        if (code.predecoded == nullptr) {
            auto pd = std::make_shared<PredecodedCode>(
                buildPredecoded(code));
            if (verifyPredecode)
                verifyPredecoded(code, *pd);
            code.predecoded = std::move(pd);
        }
        protos = code.predecoded->ops.data();
    }

    while (true) {
        if (result.instructions++ > maxInstructions)
            throw EngineError(EngineErrorKind::FuelExhausted,
                              "simulated code exceeded the "
                              + std::to_string(maxInstructions)
                              + "-instruction budget");
        if ((result.instructions & 0xfffu) == 0 && fuelCheck)
            fuelCheck();
        vassert(st.pc < code.code.size(), "pc out of code bounds");
        const MInst &m = code.code[st.pc];
        u32 cur = st.pc;
        st.pc = cur + 1;

        CommitInfo ci = protos != nullptr ? protos[cur]
                                          : predecodeInst(m, cur);

        auto addr_imm = [&](u8 rn, i64 imm) -> Addr {
            if (rn == kAbsBase)
                return static_cast<Addr>(imm);
            return static_cast<Addr>(st.x[rn] + static_cast<u64>(imm));
        };
        auto addr_reg = [&](u8 rn, u8 rm, u8 scale) -> Addr {
            return static_cast<Addr>(st.x[rn] + (st.x[rm] << scale));
        };
        auto wreg = [&](u8 r) -> i32 { return w(st.x[r]); };
        auto setw = [&](u8 r, i32 v) {
            st.x[r] = static_cast<u32>(v);
        };

        switch (m.op) {
          case MOp::Nop:
            break;

          // ---- ALU register forms -----------------------------------
          case MOp::Add:
            setw(m.rd, wreg(m.rn) + wreg(m.rm));
            break;
          case MOp::Sub:
            setw(m.rd, wreg(m.rn) - wreg(m.rm));
            break;
          case MOp::Mul:
            setw(m.rd, static_cast<i32>(
                static_cast<i64>(wreg(m.rn)) * wreg(m.rm)));
            break;
          case MOp::SDiv: {
            i32 a = wreg(m.rn), b = wreg(m.rm);
            i32 q = b == 0 ? 0
                  : (a == INT32_MIN && b == -1) ? INT32_MIN : a / b;
            setw(m.rd, q);
            break;
          }
          case MOp::And:
            setw(m.rd, wreg(m.rn) & wreg(m.rm));
            break;
          case MOp::Orr:
            setw(m.rd, wreg(m.rn) | wreg(m.rm));
            break;
          case MOp::Eor:
            setw(m.rd, wreg(m.rn) ^ wreg(m.rm));
            break;
          case MOp::Lsl:
            setw(m.rd, static_cast<i32>(static_cast<u32>(wreg(m.rn))
                                        << (st.x[m.rm] & 31)));
            break;
          case MOp::Lsr:
            setw(m.rd, static_cast<i32>(static_cast<u32>(wreg(m.rn))
                                        >> (st.x[m.rm] & 31)));
            break;
          case MOp::Asr:
            setw(m.rd, wreg(m.rn) >> (st.x[m.rm] & 31));
            break;
          case MOp::Adds: {
            i32 a = wreg(m.rn), b = wreg(m.rm);
            setAddFlags(st, a, b);
            setw(m.rd, a + b);
            break;
          }
          case MOp::Subs: {
            i32 a = wreg(m.rn), b = wreg(m.rm);
            setSubFlags(st, a, b);
            setw(m.rd, a - b);
            break;
          }
          case MOp::Smull:
            st.x[m.rd] = static_cast<u64>(
                static_cast<i64>(wreg(m.rn)) * wreg(m.rm));
            break;

          // ---- ALU immediate forms ------------------------------------
          case MOp::AddI:
            setw(m.rd, wreg(m.rn) + static_cast<i32>(m.imm));
            break;
          case MOp::SubI:
            setw(m.rd, wreg(m.rn) - static_cast<i32>(m.imm));
            break;
          case MOp::AndI:
            setw(m.rd, wreg(m.rn) & static_cast<i32>(m.imm));
            break;
          case MOp::OrrI:
            setw(m.rd, wreg(m.rn) | static_cast<i32>(m.imm));
            break;
          case MOp::EorI:
            setw(m.rd, wreg(m.rn) ^ static_cast<i32>(m.imm));
            break;
          case MOp::LslI:
            setw(m.rd, static_cast<i32>(static_cast<u32>(wreg(m.rn))
                                        << (m.imm & 31)));
            break;
          case MOp::LsrI:
            setw(m.rd, static_cast<i32>(static_cast<u32>(wreg(m.rn))
                                        >> (m.imm & 31)));
            break;
          case MOp::AsrI:
            setw(m.rd, wreg(m.rn) >> (m.imm & 31));
            break;
          case MOp::AddsI: {
            i32 a = wreg(m.rn);
            setAddFlags(st, a, static_cast<i32>(m.imm));
            setw(m.rd, a + static_cast<i32>(m.imm));
            break;
          }
          case MOp::SubsI: {
            i32 a = wreg(m.rn);
            setSubFlags(st, a, static_cast<i32>(m.imm));
            setw(m.rd, a - static_cast<i32>(m.imm));
            break;
          }
          case MOp::MovI:
            st.x[m.rd] = static_cast<u64>(m.imm);
            break;
          case MOp::MovR:
            st.x[m.rd] = st.x[m.rn];
            break;

          // ---- compares ------------------------------------------------
          case MOp::Cmp:
            setSubFlags(st, wreg(m.rn), wreg(m.rm));
            break;
          case MOp::CmpI:
            setSubFlags(st, wreg(m.rn), static_cast<i32>(m.imm));
            break;
          case MOp::Tst:
            setLogicFlags(st, static_cast<u32>(wreg(m.rn) & wreg(m.rm)));
            break;
          case MOp::TstI:
            setLogicFlags(st, static_cast<u32>(wreg(m.rn))
                              & static_cast<u32>(m.imm));
            break;
          case MOp::CmpSxtw:
            setSub64Flags(st, static_cast<i64>(st.x[m.rn]),
                          static_cast<i64>(wreg(m.rm)));
            break;
          case MOp::Cset:
            st.x[m.rd] = condHolds(st, m.cond) ? 1 : 0;
            break;
          case MOp::Csel:
            st.x[m.rd] = condHolds(st, m.cond) ? st.x[m.rn] : st.x[m.rm];
            break;

          // ---- memory ---------------------------------------------------
          case MOp::LdrB: case MOp::LdrW: case MOp::LdrX: case MOp::LdrD:
          case MOp::LdrBr: case MOp::LdrWr: case MOp::LdrXr:
          case MOp::LdrDr: {
            bool reg_form = m.op == MOp::LdrBr || m.op == MOp::LdrWr
                            || m.op == MOp::LdrXr || m.op == MOp::LdrDr;
            Addr a = reg_form
                ? static_cast<Addr>(st.x[m.rn] + (st.x[m.rm] << m.scale)
                                    + static_cast<u64>(m.imm))
                : addr_imm(m.rn, m.imm);
            ci.memAddr = a;
            switch (m.op) {
              case MOp::LdrB: case MOp::LdrBr:
                st.x[m.rd] = heap.contains(a, 1) ? heap.readU8(a) : 0;
                break;
              case MOp::LdrW: case MOp::LdrWr:
                st.x[m.rd] = loadU32Safe(a, tstats);
                break;
              case MOp::LdrX: case MOp::LdrXr:
                st.x[m.rd] = heap.contains(a, 8) ? heap.readU64(a)
                                                 : 0xdeadbeefdeadbeefULL;
                break;
              default:  // LdrD / LdrDr
                st.d[m.rd] = heap.contains(a, 8) ? heap.readF64(a) : 0.0;
                break;
            }
            break;
          }
          case MOp::StrB: case MOp::StrW: case MOp::StrX: case MOp::StrD:
          case MOp::StrBr: case MOp::StrWr: case MOp::StrXr:
          case MOp::StrDr: {
            bool reg_form = m.op == MOp::StrBr || m.op == MOp::StrWr
                            || m.op == MOp::StrXr || m.op == MOp::StrDr;
            Addr a = reg_form
                ? static_cast<Addr>(st.x[m.rn] + (st.x[m.rm] << m.scale)
                                    + static_cast<u64>(m.imm))
                : addr_imm(m.rn, m.imm);
            ci.memAddr = a;
            switch (m.op) {
              case MOp::StrB: case MOp::StrBr:
                if (heap.contains(a, 1))
                    heap.writeU8(a, static_cast<u8>(st.x[m.rd]));
                break;
              case MOp::StrW: case MOp::StrWr:
                storeU32Safe(a, static_cast<u32>(st.x[m.rd]), tstats);
                break;
              case MOp::StrX: case MOp::StrXr:
                if (heap.contains(a, 8))
                    heap.writeU64(a, st.x[m.rd]);
                else if (tstats != nullptr)
                    tstats->memoryFaults++;
                break;
              default:  // StrD / StrDr
                if (heap.contains(a, 8))
                    heap.writeF64(a, st.d[m.rd]);
                else if (tstats != nullptr)
                    tstats->memoryFaults++;
                break;
            }
            break;
          }
          case MOp::CmpMem: {
            Addr a = addr_imm(m.rn, m.imm);
            u32 mem = loadU32Safe(a, tstats);
            setSubFlags(st, wreg(m.rd), static_cast<i32>(mem));
            ci.memAddr = a;
            break;
          }
          case MOp::CmpMemI: {
            Addr a = addr_imm(m.rn, m.imm);
            u32 mem = loadU32Safe(a, tstats);
            setSubFlags(st, static_cast<i32>(mem),
                        static_cast<i32>(m.target));
            ci.memAddr = a;
            break;
          }
          case MOp::TstMemI: {
            Addr a = addr_imm(m.rn, m.imm);
            u32 mem = loadU32Safe(a, tstats);
            setLogicFlags(st, mem & static_cast<u32>(m.target));
            ci.memAddr = a;
            break;
          }

          // ---- floating point -------------------------------------------
          case MOp::FAdd:
            st.d[m.rd] = st.d[m.rn] + st.d[m.rm];
            break;
          case MOp::FSub:
            st.d[m.rd] = st.d[m.rn] - st.d[m.rm];
            break;
          case MOp::FMul:
            st.d[m.rd] = st.d[m.rn] * st.d[m.rm];
            break;
          case MOp::FDiv:
            st.d[m.rd] = st.d[m.rn] / st.d[m.rm];
            break;
          case MOp::FNeg:
            st.d[m.rd] = -st.d[m.rn];
            break;
          case MOp::FAbs:
            st.d[m.rd] = st.d[m.rn] < 0 ? -st.d[m.rn] : st.d[m.rn];
            break;
          case MOp::FSqrt:
            st.d[m.rd] = std::sqrt(st.d[m.rn]);
            break;
          case MOp::FCmp:
            setFcmpFlags(st, st.d[m.rn], st.d[m.rm]);
            break;
          case MOp::FMovI:
            st.d[m.rd] = m.fimm;
            break;
          case MOp::FMovRR:
            st.d[m.rd] = st.d[m.rn];
            break;
          case MOp::Scvtf:
            st.d[m.rd] = static_cast<double>(wreg(m.rn));
            break;
          case MOp::Fcvtzs: {
            double v = st.d[m.rn];
            i32 r;
            if (v != v)
                r = 0;
            else if (v >= 2147483647.0)
                r = INT32_MAX;
            else if (v <= -2147483648.0)
                r = INT32_MIN;
            else
                r = static_cast<i32>(v);
            setw(m.rd, r);
            break;
          }
          case MOp::Fjcvtzs: {
            // ECMAScript ToInt32: truncate, then wrap modulo 2^32.
            double v = st.d[m.rn];
            i32 r = 0;
            if (std::isfinite(v)) {
                double t = std::trunc(v);
                double mm = std::fmod(t, 4294967296.0);
                if (mm < 0)
                    mm += 4294967296.0;
                r = static_cast<i32>(static_cast<u32>(mm));
            }
            setw(m.rd, r);
            break;
          }

          // ---- control flow ------------------------------------------------
          case MOp::B:
            st.pc = m.target;
            break;
          case MOp::Bcond: {
            bool taken = condHolds(st, m.cond);
            if (taken)
                st.pc = m.target;
            ci.taken = taken;
            break;
          }
          case MOp::Ret:
            if (timing != nullptr)
                timing->onCommit(ci);
            if (sampler != nullptr && timing != nullptr)
                sampler->tick(timing->cycles(), code, cur);
            return result;

          case MOp::CallRt: {
            // Commit the call itself before transferring control.
            if (timing != nullptr)
                timing->onCommit(ci);
            if (sampler != nullptr && timing != nullptr)
                sampler->tick(timing->cycles(), code, cur);
            runtimeCall(static_cast<RuntimeFn>(m.target), st, m);
            if (sampler != nullptr && timing != nullptr)
                sampler->skipTo(timing->cycles());
            // Caller-saved registers are dead after a call; poison them
            // to catch allocation bugs (results in x0 / d0 survive).
            for (int r = 1; r <= 15; r++)
                st.x[r] = 0xdeadbeefdeadbeefULL;
            for (int r = 1; r <= 7; r++)
                st.d[r] = -6.66e66;
            st.flagN = st.flagZ = st.flagC = st.flagV = false;
            continue;  // commit already done
          }

          case MOp::Msr:
            st.special[m.imm] = st.x[m.rn];
            break;
          case MOp::Mrs:
            st.x[m.rd] = st.special[m.imm];
            break;

          case MOp::DeoptExit:
            result.deopted = true;
            result.deoptExit = static_cast<u16>(m.imm);
            if (timing != nullptr)
                timing->onCommit(ci);
            return result;

          case MOp::JsChkMap: {
            // §VII-style fused map check: load the map word and set
            // flags in one instruction.
            Addr a = static_cast<Addr>(st.x[m.rn] - 1);
            u32 word = loadU32Safe(a, tstats);
            setSubFlags(st, static_cast<i32>(word),
                        static_cast<i32>(static_cast<u32>(m.imm)));
            ci.memAddr = a;
            break;
          }

          // ---- §V SMI-load extension ------------------------------------
          case MOp::JsLdrSmiI: case MOp::JsLdurSmiI: case MOp::JsLdrSmiR:
          case MOp::JsLdrSmiRS: case MOp::JsLdurSmiR: case MOp::JsLdrSmiX: {
            Addr a;
            switch (m.op) {
              case MOp::JsLdrSmiI:
                a = static_cast<Addr>(st.x[m.rn]
                                      + (static_cast<u64>(m.imm) << 2));
                break;
              case MOp::JsLdurSmiI:
                a = addr_imm(m.rn, m.imm);
                break;
              case MOp::JsLdrSmiR:
              case MOp::JsLdurSmiR:
                a = addr_reg(m.rn, m.rm, 0);
                break;
              case MOp::JsLdrSmiRS:
                a = addr_reg(m.rn, m.rm, 2);
                break;
              default:  // JsLdrSmiX
                a = static_cast<Addr>(st.x[m.rn] + (st.x[m.rm] << m.scale)
                                      + static_cast<u64>(m.imm));
                break;
            }
            ci.memAddr = a;
            u32 v = loadU32Safe(a, tstats);
            if ((v & 1u) == 0) {
                // The untagging shift happens in the load unit, in
                // parallel with the Not-a-SMI check (Fig. 12).
                setw(m.rd, static_cast<i32>(v) >> 1);
            } else {
                // Failed check: write REG_PC / REG_RE instead of rd;
                // the commit-phase exception below starts the bailout.
                st.special[static_cast<int>(SpecialReg::REG_PC)] = cur;
                st.special[static_cast<int>(SpecialReg::REG_RE)] =
                    static_cast<u64>(DeoptReason::NotASmi) + 1;
            }
            break;
          }
        }

        // Simulated-machine stack overflow: fault as soon as SP leaves
        // the reserved stack region instead of silently corrupting live
        // heap objects with the next spill.
        if (sp_guard && st.sp() < stack_limit)
            throw EngineError(
                EngineErrorKind::StackOverflow,
                "simulated stack overflow: sp="
                + std::to_string(st.sp()) + " below the "
                + std::to_string(Heap::kStackReserve)
                + "-byte stack reserve");

        if (trace && result.instructions < traceLimit) {
            std::fprintf(stderr,
                         "[trace] %4u: %-10s rd=x%u(%lld) rn=x%u rm=x%u "
                         "imm=%lld N%dZ%dC%dV%d cyc=%llu\n",
                         cur, mopName(m.op), m.rd,
                         static_cast<long long>(
                             static_cast<i32>(st.x[m.rd])),
                         m.rn, m.rm, static_cast<long long>(m.imm),
                         st.flagN, st.flagZ, st.flagC, st.flagV,
                         timing != nullptr
                             ? static_cast<unsigned long long>(
                                   timing->cycles()) : 0ULL);
        }

        if (timing != nullptr)
            timing->onCommit(ci);
        if (sampler != nullptr && timing != nullptr)
            sampler->tick(timing->cycles(), code, cur);

        // Commit-phase bailout exception (REG_RE != 0).
        if (st.special[static_cast<int>(SpecialReg::REG_RE)] != 0) {
            st.special[static_cast<int>(SpecialReg::REG_RE)] = 0;
            result.deopted = true;
            result.deoptExit = m.deoptIndex;
            return result;
        }
    }
}

} // namespace vspec
