#include "sim/caches.hh"

namespace vspec
{

CacheLevel::CacheLevel(const CacheConfig &cfg) : config(cfg)
{
    numSets = config.sizeBytes / (config.lineBytes * config.associativity);
    vassert(numSets > 0 && (numSets & (numSets - 1)) == 0,
            "cache sets must be a power of two");
    tags.assign(static_cast<size_t>(numSets) * config.associativity,
                ~0ULL);
    lru.assign(tags.size(), 0);
}

void
CacheLevel::reset()
{
    std::fill(tags.begin(), tags.end(), ~0ULL);
    std::fill(lru.begin(), lru.end(), 0u);
    hits = misses = 0;
    tick = 0;
}

bool
CacheLevel::access(Addr addr)
{
    u64 line = addr / config.lineBytes;
    u32 set = static_cast<u32>(line) & (numSets - 1);
    u64 tag = line / numSets;
    size_t base = static_cast<size_t>(set) * config.associativity;
    tick++;
    for (u32 w = 0; w < config.associativity; w++) {
        if (tags[base + w] == tag) {
            lru[base + w] = tick;
            hits++;
            return true;
        }
    }
    misses++;
    // Replace LRU way.
    u32 victim = 0;
    for (u32 w = 1; w < config.associativity; w++) {
        if (lru[base + w] < lru[base + victim])
            victim = w;
    }
    tags[base + victim] = tag;
    lru[base + victim] = tick;
    return false;
}

CacheHierarchy::CacheHierarchy(const CacheConfig &l1c, const CacheConfig &l2c,
                               u32 mem_lat)
    : l1(l1c), l2(l2c), memoryLatency(mem_lat)
{
}

u32
CacheHierarchy::access(Addr addr)
{
    if (l1.access(addr))
        return l1.hitLatency();
    if (l2.access(addr))
        return l2.hitLatency();
    return memoryLatency;
}

void
CacheHierarchy::reset()
{
    l1.reset();
    l2.reset();
}

} // namespace vspec
