#include "sim/cpu_config.hh"

namespace vspec
{

CpuConfig
CpuConfig::x64Server()
{
    CpuConfig c;
    c.name = "x64-server";
    c.kind = CpuModelKind::FastTiming;
    c.fetchWidth = 4;
    c.issueWidth = 4;
    c.mispredictPenalty = 14;
    c.l1 = {32 * 1024, 8, 64, 4};
    c.l2 = {256 * 1024, 8, 64, 12};
    c.memoryLatency = 100;
    return c;
}

CpuConfig
CpuConfig::arm64Server()
{
    CpuConfig c;
    c.name = "arm64-server";
    c.kind = CpuModelKind::FastTiming;
    c.fetchWidth = 4;
    c.issueWidth = 4;
    c.mispredictPenalty = 12;
    c.l1 = {64 * 1024, 4, 64, 4};
    c.l2 = {512 * 1024, 8, 64, 13};
    c.memoryLatency = 95;
    return c;
}

CpuConfig
CpuConfig::hpd()
{
    CpuConfig c;
    c.name = "HPD";
    c.kind = CpuModelKind::O3Lite;
    c.fetchWidth = 6;
    c.issueWidth = 6;
    c.robSize = 224;
    c.mispredictPenalty = 16;
    c.l1 = {48 * 1024, 12, 64, 4};
    c.l2 = {1024 * 1024, 16, 64, 14};
    c.memoryLatency = 110;
    return c;
}

CpuConfig
CpuConfig::exynosBig()
{
    CpuConfig c;
    c.name = "Exynos-big";
    c.kind = CpuModelKind::O3Lite;
    c.fetchWidth = 4;
    c.issueWidth = 4;
    c.robSize = 128;
    c.mispredictPenalty = 14;
    c.l1 = {64 * 1024, 4, 64, 4};
    c.l2 = {512 * 1024, 8, 64, 13};
    c.memoryLatency = 100;
    return c;
}

CpuConfig
CpuConfig::o3Kpg()
{
    CpuConfig c;
    c.name = "O3-KPG";
    c.kind = CpuModelKind::O3Lite;
    c.fetchWidth = 4;
    c.issueWidth = 4;
    c.robSize = 160;
    c.mispredictPenalty = 12;
    c.l1 = {64 * 1024, 4, 64, 4};
    c.l2 = {512 * 1024, 8, 64, 12};
    c.memoryLatency = 90;
    return c;
}

CpuConfig
CpuConfig::inOrderA55()
{
    CpuConfig c;
    c.name = "InO-A55";
    c.kind = CpuModelKind::InOrder;
    c.fetchWidth = 2;
    c.issueWidth = 2;
    c.mispredictPenalty = 8;
    c.l1 = {32 * 1024, 4, 64, 3};
    c.l2 = {256 * 1024, 8, 64, 10};
    c.memoryLatency = 80;
    c.divLatency = 16;
    c.fdivLatency = 20;
    return c;
}

std::vector<CpuConfig>
CpuConfig::gem5Cores()
{
    return {inOrderA55(), exynosBig(), o3Kpg(), hpd()};
}

} // namespace vspec
