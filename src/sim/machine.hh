/**
 * @file
 * Functional execution core for the virtual ISA, plus the timing-model
 * interface it drives. The functional core executes optimized code
 * against the simulated heap, invoking the engine's runtime-call
 * handler for CallRt, raising deoptimizations for deopt branches and
 * failed jsldrsmi loads (commit-phase exception via REG_RE, §V), and
 * streaming one CommitInfo per retired instruction into the attached
 * timing model and PC sampler.
 */

#ifndef VSPEC_SIM_MACHINE_HH
#define VSPEC_SIM_MACHINE_HH

#include <functional>
#include <memory>

#include "backend/code_object.hh"
#include "sim/branch_predictor.hh"
#include "sim/caches.hh"
#include "sim/cpu_config.hh"
#include "vm/heap.hh"

namespace vspec
{

/** Architectural state of one simulated invocation. */
struct MachineState
{
    u64 x[32] = {};
    double d[16] = {};
    bool flagN = false, flagZ = false, flagC = false, flagV = false;
    u32 pc = 0;
    u64 special[3] = {};  //!< REG_BA, REG_PC, REG_RE

    u64 &sp() { return x[kSpReg]; }
};

enum class InstClass : u8
{
    Alu, Mul, Div, Fp, FpDiv, FpSqrt, Load, Store,
    Branch, CondBranch, Call, Ret, Special, Nop,
};

/** Everything a timing model needs to know about one retired
 *  instruction. */
struct CommitInfo
{
    const MInst *inst = nullptr;
    u32 pc = 0;
    InstClass cls = InstClass::Alu;
    bool isMem = false;
    bool isLoad = false;
    Addr memAddr = 0;
    bool isBranch = false;
    bool taken = false;
    bool isDeoptBranch = false;

    // Register dependencies (detailed models). FPRs are offset by 32;
    // 60 denotes the flags register.
    u8 srcs[4] = {0xff, 0xff, 0xff, 0xff};
    u8 dst = 0xff;
    bool setsFlags = false;
    bool readsFlags = false;
};

constexpr u8 kFprBase = 32;
constexpr u8 kFlagsRegId = 60;
constexpr u8 kNoRegId = 0xff;

/** Aggregate counters shared by all timing models. */
struct SimStats
{
    u64 cycles = 0;
    u64 instructions = 0;
    u64 loads = 0;
    u64 stores = 0;
    u64 branches = 0;
    u64 takenBranches = 0;
    u64 mispredicts = 0;
    u64 deoptBranches = 0;
    u64 deoptBranchesTaken = 0;
    u64 deoptMispredicts = 0;
    u64 l1Misses = 0;
    u64 l2Misses = 0;
    u64 frontendStallCycles = 0;
    u64 backendStallCycles = 0;
    u64 runtimeCallCycles = 0;
    u64 checkInstructions = 0;   //!< committed insts belonging to checks
    u64 checksExecuted = 0;      //!< committed deopt branches / fused loads
    u64 fusedSmiLoads = 0;
    u64 memoryFaults = 0;

    SimStats &operator+=(const SimStats &o);
};

/**
 * Timing model base: owns the branch predictor and cache hierarchy,
 * accumulates SimStats. Subclasses convert the commit stream into
 * cycles.
 */
class TimingModel
{
  public:
    explicit TimingModel(const CpuConfig &config);
    virtual ~TimingModel() = default;

    virtual void onCommit(const CommitInfo &ci) = 0;

    /** Charge cycles spent outside simulated code (runtime helpers,
     *  builtins called from optimized code). */
    virtual void
    advanceExternal(Cycles c)
    {
        stats.cycles += c;
        stats.runtimeCallCycles += c;
    }

    Cycles cycles() const { return stats.cycles; }

    const CpuConfig &config() const { return cfg; }

    SimStats stats;
    BranchPredictor predictor;
    CacheHierarchy caches;

  protected:
    /** Shared bookkeeping every model wants per commit: instruction,
     *  branch and check counters; returns the memory latency (0 for
     *  non-memory ops) and whether a branch mispredicted. */
    struct CommonResult
    {
        u32 memLatency = 0;
        bool mispredicted = false;
    };
    CommonResult commitCommon(const CommitInfo &ci);

    /** Execution latency of the instruction class (no memory). */
    u32 classLatency(InstClass cls) const;

    CpuConfig cfg;
};

std::unique_ptr<TimingModel> makeTimingModel(const CpuConfig &config);

/** Raised deoptimization info from a simulated run. */
struct RunResult
{
    bool deopted = false;
    u16 deoptExit = 0;
    u64 instructions = 0;
};

/** PC-sample sink interface (implemented by profiler::PcSampler). */
class SampleSink
{
  public:
    virtual ~SampleSink() = default;
    virtual void tick(Cycles now, const CodeObject &code, u32 pc) = 0;
    /** Cycles advanced outside simulated code (runtime calls): move
     *  past them without attributing samples to any pc. */
    virtual void skipTo(Cycles now) = 0;
};

class FunctionalCore
{
  public:
    using RuntimeCallHandler =
        std::function<void(RuntimeFn, MachineState &, const MInst &)>;

    FunctionalCore(Heap &heap, RuntimeCallHandler handler)
        : heap(heap), runtimeCall(std::move(handler))
    {}

    /** Execute @p code until Ret or deoptimization. The result value is
     *  left in x0. @p timing and @p sampler may be null. */
    RunResult run(const CodeObject &code, MachineState &state,
                  TimingModel *timing, SampleSink *sampler);

    /** Upper bound on instructions per invocation (runaway guard);
     *  exceeding it raises EngineError{FuelExhausted}. */
    u64 maxInstructions = 2'000'000'000;

    /** Optional fuel hook, polled every few thousand committed
     *  instructions (set by the engine when a fuel budget is active;
     *  throws EngineError{FuelExhausted} to stop the run). */
    std::function<void()> fuelCheck;

    /** Debug: print every committed instruction with register values. */
    bool trace = false;
    u64 traceLimit = 2000;

    /** vpar predecode fast path: when set, fetch the static CommitInfo
     *  proto from the code object's cached micro-op array instead of
     *  re-deriving it every fetch. Cycle counts are bit-identical
     *  either way (both paths read the same predecodeInst output). */
    bool predecode = true;

    /** Re-validate a freshly built predecode array against a second
     *  decode before first use (wired to the engine's verify level). */
    bool verifyPredecode = false;

  private:
    u32 loadU32Safe(Addr a, SimStats *stats);
    void storeU32Safe(Addr a, u32 v, SimStats *stats);

    Heap &heap;
    RuntimeCallHandler runtimeCall;
};

} // namespace vspec

#endif // VSPEC_SIM_MACHINE_HH
