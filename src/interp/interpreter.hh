/**
 * @file
 * The Ignition-style bytecode interpreter: executes bytecode against
 * the simulated heap, records type feedback at every speculation site,
 * charges a per-bytecode cycle cost model, and supports resuming a
 * frame mid-function — the deoptimization landing pad.
 */

#ifndef VSPEC_INTERP_INTERPRETER_HH
#define VSPEC_INTERP_INTERPRETER_HH

#include <vector>

#include "bytecode/compiler.hh"
#include "vm/gc.hh"

namespace vspec
{

class Engine;

/** Per-bytecode base cost (dispatch + operand decode), in cycles. */
constexpr u64 kInterpDispatchCost = 4;

class Interpreter : public RootProvider
{
  public:
    explicit Interpreter(Engine &engine) : engine(engine) {}

    /** Standard call: fresh frame, execute from the top. */
    Value callFunction(FunctionInfo &fn, Value this_value,
                       const std::vector<Value> &args);

    /** Deoptimization re-entry: resume at @p pc with a materialized
     *  frame. Re-executes the bytecode op the checkpoint covered. */
    Value resumeFrame(FunctionInfo &fn, u32 pc, std::vector<Value> regs,
                      Value accumulator);

    /** GC roots: every live frame's registers and accumulator. */
    void forEachRoot(const std::function<void(Value)> &visit) override;

    u64 bytecodesExecuted = 0;

  private:
    struct Frame
    {
        FunctionInfo *fn;
        std::vector<Value> regs;
        Value acc;
    };

    Value execute(Frame &frame, u32 pc);
    Value dispatchLoop(Frame &frame, u32 &pc, u64 &cost);

    Engine &engine;
    std::vector<Frame *> activeFrames;
};

/**
 * Full JavaScript semantics of a binary/compare operator, shared by the
 * interpreter and the JIT's generic runtime calls. Records feedback
 * into @p slot when non-null.
 */
Value genericBinaryOp(Engine &engine, Bc op, Value lhs, Value rhs,
                      FeedbackSlot *slot);
Value genericCompareOp(Engine &engine, Bc op, Value lhs, Value rhs,
                       FeedbackSlot *slot);

/** ECMAScript ToNumber for the MiniJS subset. */
double toNumberValue(Engine &engine, Value v);

/** Generic property access, shared with the JIT runtime paths. */
Value genericGetNamed(Engine &engine, Value receiver, NameId name,
                      FeedbackSlot *slot);
void genericSetNamed(Engine &engine, Value receiver, NameId name,
                     Value value, FeedbackSlot *slot);
Value genericGetElement(Engine &engine, Value receiver, Value key,
                        FeedbackSlot *slot);
void genericSetElement(Engine &engine, Value receiver, Value key,
                       Value value, FeedbackSlot *slot);

} // namespace vspec

#endif // VSPEC_INTERP_INTERPRETER_HH
