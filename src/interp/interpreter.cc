#include "interp/interpreter.hh"

#include <cmath>

#include "runtime/engine.hh"
#include "runtime/guard.hh"

namespace vspec
{

namespace
{

/** Raise a user-triggerable type error as a structured, catchable
 *  vguard error (engine-invariant violations stay vpanic). */
[[noreturn]] void
typeError(Engine &e, const std::string &msg)
{
    e.trace.counters.add(TraceCounter::EngineErrors);
    throw EngineError(EngineErrorKind::TypeError, msg);
}

/** ECMAScript ToNumber for the MiniJS subset. */
double
toNumber(Engine &e, Value v)
{
    if (e.vm.isNumber(v))
        return e.vm.numberOf(v);
    if (v == e.vm.trueValue)
        return 1.0;
    if (v == e.vm.falseValue || v == e.vm.nullValue)
        return 0.0;
    if (e.vm.isString(v)) {
        std::string s = e.vm.stringOf(v.asAddr());
        if (s.empty())
            return 0.0;
        char *end = nullptr;
        double d = std::strtod(s.c_str(), &end);
        while (end != nullptr && *end == ' ')
            end++;
        if (end == nullptr || *end != '\0')
            return std::nan("");
        return d;
    }
    return std::nan("");  // undefined, objects, functions
}

/** ECMAScript ToInt32. */
i32
toInt32(double d)
{
    if (!std::isfinite(d))
        return 0;
    double t = std::trunc(d);
    double m = std::fmod(t, 4294967296.0);
    if (m < 0)
        m += 4294967296.0;
    return static_cast<i32>(static_cast<u32>(m));
}

OperandFeedback
numericFeedback(Engine &e, Value l, Value r, bool result_is_smi)
{
    if (l.isSmi() && r.isSmi() && result_is_smi)
        return OperandFeedback::Smi;
    if (e.vm.isNumber(l) && e.vm.isNumber(r))
        return OperandFeedback::Number;
    return OperandFeedback::Any;
}

void
record(FeedbackSlot *slot, OperandFeedback fb)
{
    if (slot != nullptr)
        slot->operands = joinOperand(slot->operands, fb);
}

/**
 * vtrace: IC-state transitions. Feedback only widens, so a state change
 * after a record call is one mono -> poly -> megamorphic step; the
 * widened-to state picks the counter (Element's Typed and CallSite's
 * Monomorphic both sit at ordinal 1, Property adds Polymorphic at 2).
 */
void
icTransition(Engine &e, SlotKind kind, const char *site, u32 old_state,
             u32 new_state)
{
    TraceCounter c;
    if (kind == SlotKind::Property)
        c = new_state == 1 ? TraceCounter::IcToMonomorphic
          : new_state == 2 ? TraceCounter::IcToPolymorphic
                           : TraceCounter::IcToMegamorphic;
    else
        c = new_state == 1 ? TraceCounter::IcToMonomorphic
                           : TraceCounter::IcToMegamorphic;
    e.trace.counters.add(c);
    if (e.trace.on(TraceCategory::Ic))
        e.trace.emit(TraceCategory::Ic, TraceEventKind::Instant, site,
                     e.totalCycles(), static_cast<u32>(kind), old_state,
                     new_state);
}

void
recordPropertyIc(Engine &e, PropertyFeedback &pf, MapId map,
                 int slot_index, MapId transition = kInvalidMap)
{
    auto before = pf.state;
    pf.recordMapSlot(map, slot_index, transition);
    if (pf.state != before)
        icTransition(e, SlotKind::Property, "property",
                     static_cast<u32>(before),
                     static_cast<u32>(pf.state));
}

void
recordElementIc(Engine &e, ElementFeedback &ef, MapId map,
                ElementKind kind)
{
    auto before = ef.state;
    ef.recordAccess(map, kind);
    if (ef.state != before)
        icTransition(e, SlotKind::Element, "element",
                     static_cast<u32>(before), static_cast<u32>(ef.state));
}

void
recordCallIc(Engine &e, CallFeedback &cf, u32 function_id)
{
    auto before = cf.state;
    cf.recordTarget(function_id);
    if (cf.state != before)
        icTransition(e, SlotKind::CallSite, "call",
                     static_cast<u32>(before), static_cast<u32>(cf.state));
}

/** String/array method tables for named loads off primitive receivers. */
BuiltinId
stringMethod(const std::string &name)
{
    if (name == "charCodeAt") return BuiltinId::StringCharCodeAt;
    if (name == "charAt") return BuiltinId::StringCharAt;
    if (name == "substring") return BuiltinId::StringSubstring;
    if (name == "indexOf") return BuiltinId::StringIndexOf;
    if (name == "split") return BuiltinId::StringSplit;
    return BuiltinId::None;
}

BuiltinId
arrayMethod(const std::string &name)
{
    if (name == "push") return BuiltinId::ArrayPush;
    if (name == "pop") return BuiltinId::ArrayPop;
    if (name == "join") return BuiltinId::ArrayJoin;
    if (name == "indexOf") return BuiltinId::ArrayIndexOf;
    return BuiltinId::None;
}

Value
builtinCell(Engine &e, BuiltinId id)
{
    FunctionId fid = e.functions.idOf(builtinName(id));
    vassert(fid != kInvalidFunction, "builtin not installed");
    return Value::heap(e.functions.at(fid).cellAddr);
}

} // namespace

double
toNumberValue(Engine &engine, Value v)
{
    return toNumber(engine, v);
}

// ---------------------------------------------------------------------
// Generic operations (shared with JIT runtime calls)
// ---------------------------------------------------------------------

Value
genericBinaryOp(Engine &e, Bc op, Value l, Value r, FeedbackSlot *slot)
{
    VMContext &vm = e.vm;

    if (op == Bc::Add) {
        bool string_add = vm.isString(l) || vm.isString(r)
                          || vm.isArray(l) || vm.isArray(r)
                          || vm.isObject(l) || vm.isObject(r);
        if (string_add) {
            std::string s = vm.coerceToString(l) + vm.coerceToString(r);
            record(slot, vm.isString(l) && vm.isString(r)
                             ? OperandFeedback::String
                             : OperandFeedback::Any);
            e.chargeCycles(8 + s.size() / 4);
            return Value::heap(vm.newString(s));
        }
        if (l.isSmi() && r.isSmi()) {
            i64 sum = static_cast<i64>(l.asSmi()) + r.asSmi();
            record(slot, smiFits(sum) ? OperandFeedback::Smi
                                      : OperandFeedback::Number);
            return vm.newInt(sum);
        }
        double a = toNumber(e, l), b = toNumber(e, r);
        record(slot, numericFeedback(e, l, r, false));
        return vm.newNumber(a + b);
    }

    switch (op) {
      case Bc::Sub: {
        if (l.isSmi() && r.isSmi()) {
            i64 d = static_cast<i64>(l.asSmi()) - r.asSmi();
            record(slot, smiFits(d) ? OperandFeedback::Smi
                                    : OperandFeedback::Number);
            return vm.newInt(d);
        }
        record(slot, numericFeedback(e, l, r, false));
        return vm.newNumber(toNumber(e, l) - toNumber(e, r));
      }
      case Bc::Mul: {
        if (l.isSmi() && r.isSmi()) {
            i64 p = static_cast<i64>(l.asSmi()) * r.asSmi();
            bool smi_ok = smiFits(p)
                          && !(p == 0 && (l.asSmi() < 0 || r.asSmi() < 0));
            record(slot, smi_ok ? OperandFeedback::Smi
                                : OperandFeedback::Number);
            if (p == 0 && (l.asSmi() < 0 || r.asSmi() < 0))
                return vm.newNumber(-0.0);
            return vm.newInt(p);
        }
        record(slot, numericFeedback(e, l, r, false));
        return vm.newNumber(toNumber(e, l) * toNumber(e, r));
      }
      case Bc::Div: {
        if (l.isSmi() && r.isSmi() && r.asSmi() != 0
            && l.asSmi() % r.asSmi() == 0
            && !(l.asSmi() == 0 && r.asSmi() < 0)) {
            i64 q = static_cast<i64>(l.asSmi()) / r.asSmi();
            record(slot, smiFits(q) ? OperandFeedback::Smi
                                    : OperandFeedback::Number);
            return vm.newInt(q);
        }
        record(slot, numericFeedback(e, l, r, false));
        return vm.newNumber(toNumber(e, l) / toNumber(e, r));
      }
      case Bc::Mod: {
        if (l.isSmi() && r.isSmi() && r.asSmi() != 0) {
            i32 rem = l.asSmi() % r.asSmi();
            bool smi_ok = !(rem == 0 && l.asSmi() < 0);
            record(slot, smi_ok ? OperandFeedback::Smi
                                : OperandFeedback::Number);
            if (!smi_ok)
                return vm.newNumber(-0.0);
            return Value::smi(rem);
        }
        record(slot, numericFeedback(e, l, r, false));
        return vm.newNumber(std::fmod(toNumber(e, l), toNumber(e, r)));
      }
      case Bc::BitAnd: case Bc::BitOr: case Bc::BitXor:
      case Bc::Shl: case Bc::Sar: case Bc::Shr: {
        i32 a = toInt32(toNumber(e, l));
        i32 b = toInt32(toNumber(e, r));
        record(slot, l.isSmi() && r.isSmi() ? OperandFeedback::Smi
               : vm.isNumber(l) && vm.isNumber(r) ? OperandFeedback::Number
                                                  : OperandFeedback::Any);
        switch (op) {
          case Bc::BitAnd: return vm.newInt(a & b);
          case Bc::BitOr: return vm.newInt(a | b);
          case Bc::BitXor: return vm.newInt(a ^ b);
          case Bc::Shl:
            return vm.newInt(static_cast<i32>(
                static_cast<u32>(a) << (static_cast<u32>(b) & 31)));
          case Bc::Sar: return vm.newInt(a >> (static_cast<u32>(b) & 31));
          default:
            return vm.newInt(static_cast<i64>(
                static_cast<u32>(a) >> (static_cast<u32>(b) & 31)));
        }
      }
      default:
        vpanic("genericBinaryOp: not a binary op");
    }
}

Value
genericCompareOp(Engine &e, Bc op, Value l, Value r, FeedbackSlot *slot)
{
    VMContext &vm = e.vm;
    bool result;

    if (op == Bc::TestStrictEq || op == Bc::TestStrictNotEq) {
        record(slot, l.isSmi() && r.isSmi() ? OperandFeedback::Smi
               : vm.isNumber(l) && vm.isNumber(r) ? OperandFeedback::Number
               : vm.isString(l) && vm.isString(r) ? OperandFeedback::String
                                                  : OperandFeedback::Any);
        result = vm.strictEquals(l, r);
        if (op == Bc::TestStrictNotEq)
            result = !result;
        return vm.boolean(result);
    }
    if (op == Bc::TestEq || op == Bc::TestNotEq) {
        record(slot, l.isSmi() && r.isSmi() ? OperandFeedback::Smi
               : vm.isNumber(l) && vm.isNumber(r) ? OperandFeedback::Number
               : vm.isString(l) && vm.isString(r) ? OperandFeedback::String
                                                  : OperandFeedback::Any);
        result = vm.looseEquals(l, r);
        if (op == Bc::TestNotEq)
            result = !result;
        return vm.boolean(result);
    }

    // Relational.
    if (vm.isString(l) && vm.isString(r)) {
        record(slot, OperandFeedback::String);
        std::string a = vm.stringOf(l.asAddr());
        std::string b = vm.stringOf(r.asAddr());
        e.chargeCycles(4 + std::min(a.size(), b.size()) / 4);
        int c = a.compare(b);
        switch (op) {
          case Bc::TestLess: result = c < 0; break;
          case Bc::TestLessEq: result = c <= 0; break;
          case Bc::TestGreater: result = c > 0; break;
          default: result = c >= 0; break;
        }
        return vm.boolean(result);
    }
    double a = toNumber(e, l), b = toNumber(e, r);
    record(slot, numericFeedback(e, l, r, l.isSmi() && r.isSmi()));
    switch (op) {
      case Bc::TestLess: result = a < b; break;
      case Bc::TestLessEq: result = a <= b; break;
      case Bc::TestGreater: result = a > b; break;
      default: result = a >= b; break;
    }
    return vm.boolean(result);
}

Value
genericGetNamed(Engine &e, Value receiver, NameId name, FeedbackSlot *slot)
{
    VMContext &vm = e.vm;
    PropertyFeedback *pf = slot != nullptr ? &slot->property : nullptr;
    const std::string &prop = vm.names.nameOf(name);

    if (vm.isString(receiver)) {
        if (prop == "length") {
            if (pf != nullptr)
                pf->sawStringLength = true;
            return Value::smi(static_cast<i32>(
                vm.stringLength(receiver.asAddr())));
        }
        BuiltinId m = stringMethod(prop);
        if (m != BuiltinId::None) {
            if (pf != nullptr) {
                pf->builtinMethod = static_cast<u16>(m);
                pf->builtinReceiverMap = vm.maps.stringMap();
            }
            return builtinCell(e, m);
        }
        if (pf != nullptr)
            pf->sawGeneric = true;
        return vm.undefinedValue;
    }
    if (vm.isArray(receiver)) {
        if (prop == "length") {
            if (pf != nullptr) {
                MapId m = vm.mapOf(receiver.asAddr());
                if (pf->sawArrayLength && pf->lengthMap != m)
                    pf->lengthPolymorphic = true;
                pf->sawArrayLength = true;
                pf->lengthMap = m;
            }
            return vm.newInt(vm.arrayLength(receiver.asAddr()));
        }
        BuiltinId m = arrayMethod(prop);
        if (m != BuiltinId::None) {
            if (pf != nullptr) {
                MapId cur = vm.mapOf(receiver.asAddr());
                if (pf->builtinMethod != 0
                    && pf->builtinReceiverMap != cur) {
                    // Receivers with different element kinds flow
                    // through this site: map speculation would deopt
                    // on every fresh array, so go generic.
                    pf->sawGeneric = true;
                    pf->builtinReceiverMap = kInvalidMap;
                } else if (!pf->sawGeneric) {
                    pf->builtinMethod = static_cast<u16>(m);
                    pf->builtinReceiverMap = cur;
                }
            }
            return builtinCell(e, m);
        }
        if (pf != nullptr)
            pf->sawGeneric = true;
        return vm.undefinedValue;
    }
    if (vm.isObject(receiver)) {
        Addr obj = receiver.asAddr();
        MapId map = vm.mapOf(obj);
        int idx = vm.maps.propertyIndex(map, name);
        if (idx >= 0) {
            if (pf != nullptr)
                recordPropertyIc(e, *pf, map, idx);
            return vm.heap.readValue(obj + HeapLayout::kObjectSlotsOffset
                                     + 4 * static_cast<u32>(idx));
        }
        if (pf != nullptr)
            pf->sawGeneric = true;
        return vm.undefinedValue;
    }
    if (pf != nullptr)
        pf->sawGeneric = true;
    return vm.undefinedValue;
}

void
genericSetNamed(Engine &e, Value receiver, NameId name, Value value,
                FeedbackSlot *slot)
{
    VMContext &vm = e.vm;
    if (!vm.isObject(receiver))
        typeError(e, "cannot set property on non-object");
    Addr obj = receiver.asAddr();
    MapId map = vm.mapOf(obj);
    int idx = vm.maps.propertyIndex(map, name);
    if (idx >= 0) {
        if (slot != nullptr)
            recordPropertyIc(e, slot->property, map, idx);
        vm.heap.writeValue(obj + HeapLayout::kObjectSlotsOffset
                           + 4 * static_cast<u32>(idx), value);
        return;
    }
    vm.setProperty(obj, name, value);
    if (slot != nullptr) {
        MapId new_map = vm.mapOf(obj);
        int new_idx = vm.maps.propertyIndex(new_map, name);
        recordPropertyIc(e, slot->property, map, new_idx, new_map);
    }
}

Value
genericGetElement(Engine &e, Value receiver, Value key, FeedbackSlot *slot)
{
    VMContext &vm = e.vm;
    ElementFeedback *ef = slot != nullptr ? &slot->element : nullptr;
    if (vm.isString(receiver)) {
        if (ef != nullptr) {
            ef->sawString = true;
            auto before = ef->state;
            ef->state = ElementFeedback::State::Megamorphic;
            if (ef->state != before)
                icTransition(e, SlotKind::Element, "element",
                             static_cast<u32>(before),
                             static_cast<u32>(ef->state));
        }
        if (!vm.isNumber(key))
            return vm.undefinedValue;
        i64 i = static_cast<i64>(vm.numberOf(key));
        Addr s = receiver.asAddr();
        if (i < 0 || i >= static_cast<i64>(vm.stringLength(s)))
            return vm.undefinedValue;
        char c = static_cast<char>(
            vm.heap.readU8(s + HeapLayout::kStringDataOffset
                           + static_cast<u32>(i)));
        return Value::heap(vm.newString(std::string(1, c)));
    }
    if (!vm.isArray(receiver))
        typeError(e, "indexed load on non-array: " + vm.display(receiver)
                         + " key=" + vm.display(key));
    if (!vm.isNumber(key))
        return vm.undefinedValue;
    double kd = vm.numberOf(key);
    i64 i = static_cast<i64>(kd);
    Addr arr = receiver.asAddr();
    if (static_cast<double>(i) != kd)
        return vm.undefinedValue;
    if (i < 0 || static_cast<u32>(i) >= vm.arrayLength(arr)) {
        if (ef != nullptr) {
            ef->sawOutOfBounds = true;
            recordElementIc(e, *ef, vm.mapOf(arr), vm.arrayKind(arr));
        }
        return vm.undefinedValue;
    }
    if (ef != nullptr)
        recordElementIc(e, *ef, vm.mapOf(arr), vm.arrayKind(arr));
    return vm.arrayGet(arr, i);
}

void
genericSetElement(Engine &e, Value receiver, Value key, Value value,
                  FeedbackSlot *slot)
{
    VMContext &vm = e.vm;
    if (!vm.isArray(receiver))
        typeError(e, "indexed store on non-array");
    if (!vm.isNumber(key))
        typeError(e, "non-numeric array index");
    i64 i = static_cast<i64>(vm.numberOf(key));
    Addr arr = receiver.asAddr();
    u32 len = vm.arrayLength(arr);
    bool grows = static_cast<u32>(i) >= len;
    vm.arraySet(arr, i, value);
    if (slot != nullptr) {
        ElementFeedback *ef = &slot->element;
        if (grows)
            ef->sawGrowth = true;
        // Record the post-store map so kind transitions during warmup
        // converge to the stable wide map.
        recordElementIc(e, *ef, vm.mapOf(arr), vm.arrayKind(arr));
    }
}

// ---------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------

Value
Interpreter::callFunction(FunctionInfo &fn, Value this_value,
                          const std::vector<Value> &args)
{
    Frame frame;
    frame.fn = &fn;
    frame.regs.assign(fn.registerCount, engine.vm.undefinedValue);
    frame.regs[FunctionInfo::kThisReg] = this_value;
    for (u32 i = 0; i < fn.paramCount && i < args.size(); i++)
        frame.regs[FunctionInfo::kFirstParamReg + i] = args[i];
    frame.acc = engine.vm.undefinedValue;
    return execute(frame, 0);
}

Value
Interpreter::resumeFrame(FunctionInfo &fn, u32 pc, std::vector<Value> regs,
                         Value accumulator)
{
    Frame frame;
    frame.fn = &fn;
    frame.regs = std::move(regs);
    frame.regs.resize(fn.registerCount, engine.vm.undefinedValue);
    frame.acc = accumulator;
    return execute(frame, pc);
}

void
Interpreter::forEachRoot(const std::function<void(Value)> &visit)
{
    for (Frame *f : activeFrames) {
        for (Value v : f->regs)
            visit(v);
        visit(f->acc);
    }
}

Value
Interpreter::execute(Frame &frame, u32 pc)
{
    activeFrames.push_back(&frame);
    // Exception-safe: an EngineError thrown by a callee (or raised by a
    // generic op below) must unlink this frame from the GC root set as
    // the stack unwinds, so the engine stays reusable after a catch.
    struct FrameScope
    {
        std::vector<Frame *> &frames;
        ~FrameScope() { frames.pop_back(); }
    } frame_scope{activeFrames};

    u64 cost = 0;
    try {
        return dispatchLoop(frame, pc, cost);
    } catch (EngineError &err) {
        // Cycles accrued before the fault still count; stamp the fault
        // site on the way out (the innermost frame wins).
        engine.flushInterpreterCost(cost);
        cost = 0;
        throw err.withContext(frame.fn->id, pc, engine.totalCycles());
    }
}

Value
Interpreter::dispatchLoop(Frame &frame, u32 &pc, u64 &cost)
{
    FunctionInfo &fn = *frame.fn;
    VMContext &vm = engine.vm;
    auto &regs = frame.regs;
    Value &acc = frame.acc;

    auto slot = [&](int i) -> FeedbackSlot & { return fn.feedback.at(i); };

    while (true) {
        vassert(pc < fn.bytecode.size(), "interpreter pc out of bounds");
        const BcInstr &ins = fn.bytecode[pc];
        bytecodesExecuted++;
        cost += kInterpDispatchCost;
        u32 next = pc + 1;

        switch (ins.op) {
          case Bc::LdaSmi:
            acc = Value::smi(ins.a);
            cost += 1;
            break;
          case Bc::LdaConst:
            acc = fn.constants.at(ins.a);
            cost += 1;
            break;
          case Bc::LdaUndefined: acc = vm.undefinedValue; cost += 1; break;
          case Bc::LdaNull: acc = vm.nullValue; cost += 1; break;
          case Bc::LdaTrue: acc = vm.trueValue; cost += 1; break;
          case Bc::LdaFalse: acc = vm.falseValue; cost += 1; break;
          case Bc::LdaGlobal:
            acc = engine.globals.load(static_cast<u32>(ins.a));
            slot(ins.b).global.loaded = true;
            cost += 3;
            break;
          case Bc::StaGlobal:
            engine.storeGlobal(static_cast<u32>(ins.a), acc);
            cost += 3;
            break;
          case Bc::Ldar: acc = regs[ins.a]; cost += 1; break;
          case Bc::Star: regs[ins.a] = acc; cost += 1; break;
          case Bc::Mov: regs[ins.a] = regs[ins.b]; cost += 1; break;

          case Bc::Add: case Bc::Sub: case Bc::Mul: case Bc::Div:
          case Bc::Mod: case Bc::BitAnd: case Bc::BitOr: case Bc::BitXor:
          case Bc::Shl: case Bc::Sar: case Bc::Shr:
            acc = genericBinaryOp(engine, ins.op, regs[ins.a], acc,
                                  &slot(ins.b));
            cost += 6;
            break;

          case Bc::TestLess: case Bc::TestLessEq: case Bc::TestGreater:
          case Bc::TestGreaterEq: case Bc::TestEq: case Bc::TestNotEq:
          case Bc::TestStrictEq: case Bc::TestStrictNotEq:
            acc = genericCompareOp(engine, ins.op, regs[ins.a], acc,
                                   &slot(ins.b));
            cost += 6;
            break;

          case Bc::Inc:
            acc = genericBinaryOp(engine, Bc::Add, acc, Value::smi(1),
                                  &slot(ins.a));
            cost += 4;
            break;
          case Bc::Dec:
            acc = genericBinaryOp(engine, Bc::Sub, acc, Value::smi(1),
                                  &slot(ins.a));
            cost += 4;
            break;
          case Bc::Negate: {
            FeedbackSlot &s = slot(ins.a);
            if (acc.isSmi() && acc.asSmi() != 0
                && acc.asSmi() != kSmiMin) {
                record(&s, OperandFeedback::Smi);
                acc = Value::smi(-acc.asSmi());
            } else {
                record(&s, vm.isNumber(acc) ? OperandFeedback::Number
                                            : OperandFeedback::Any);
                acc = vm.newNumber(-toNumber(engine, acc));
            }
            cost += 4;
            break;
          }
          case Bc::BitNot: {
            FeedbackSlot &s = slot(ins.a);
            record(&s, acc.isSmi() ? OperandFeedback::Smi
                   : vm.isNumber(acc) ? OperandFeedback::Number
                                      : OperandFeedback::Any);
            acc = vm.newInt(~toInt32(toNumber(engine, acc)));
            cost += 4;
            break;
          }
          case Bc::ToNumber: {
            FeedbackSlot &s = slot(ins.a);
            record(&s, acc.isSmi() ? OperandFeedback::Smi
                   : vm.isNumber(acc) ? OperandFeedback::Number
                                      : OperandFeedback::Any);
            if (!vm.isNumber(acc))
                acc = vm.newNumber(toNumber(engine, acc));
            cost += 4;
            break;
          }
          case Bc::LogicalNot:
            acc = vm.boolean(!vm.truthy(acc));
            cost += 2;
            break;
          case Bc::TypeOf:
            acc = Value::heap(vm.internString(vm.typeofString(acc)));
            cost += 5;
            break;

          case Bc::Jump:
            next = static_cast<u32>(ins.a);
            cost += 2;
            break;
          case Bc::JumpLoop:
            next = static_cast<u32>(ins.a);
            fn.backEdgeCount++;
            cost += 2;
            break;
          case Bc::JumpIfFalse:
            if (!vm.truthy(acc))
                next = static_cast<u32>(ins.a);
            cost += 3;
            break;
          case Bc::JumpIfTrue:
            if (vm.truthy(acc))
                next = static_cast<u32>(ins.a);
            cost += 3;
            break;

          case Bc::GetNamedProperty:
            acc = genericGetNamed(engine, regs[ins.a],
                                  static_cast<NameId>(ins.b),
                                  &slot(ins.c));
            cost += 10;
            break;
          case Bc::SetNamedProperty:
            genericSetNamed(engine, regs[ins.a],
                            static_cast<NameId>(ins.b), acc,
                            &slot(ins.c));
            cost += 10;
            break;
          case Bc::GetElement:
            acc = genericGetElement(engine, regs[ins.a], acc,
                                    &slot(ins.b));
            cost += 8;
            break;
          case Bc::SetElement:
            genericSetElement(engine, regs[ins.a], regs[ins.b], acc,
                              &slot(ins.c));
            cost += 8;
            break;

          case Bc::CreateArray:
            acc = Value::heap(vm.newArray(ElementKind::Smi, 0,
                                          std::max(4, ins.a)));
            cost += 20;
            break;
          case Bc::CreateObject:
            acc = Value::heap(vm.newObject());
            cost += 20;
            break;
          case Bc::StaArrayLiteral:
            vm.arraySet(regs[ins.a].asAddr(), ins.b, acc);
            cost += 6;
            break;
          case Bc::StaNamedOwn:
            vm.setProperty(regs[ins.a].asAddr(),
                           static_cast<NameId>(ins.b), acc);
            cost += 8;
            break;

          case Bc::Call:
          case Bc::CallMethod: {
            Value callee = regs[ins.a];
            if (!vm.isFunction(callee))
                typeError(engine, "call target is not a function: "
                                      + vm.display(callee));
            FunctionId fid = vm.functionIdOf(callee.asAddr());
            recordCallIc(engine, slot(callSlot(ins.c)).call, fid);
            int argc = callArgc(ins.c);
            Value this_v = ins.op == Bc::CallMethod ? regs[ins.b]
                                                    : vm.undefinedValue;
            int first = ins.op == Bc::CallMethod ? ins.b + 1 : ins.b;
            std::vector<Value> args;
            args.reserve(static_cast<size_t>(argc));
            for (int i = 0; i < argc; i++)
                args.push_back(regs[first + i]);
            cost += 12;
            engine.flushInterpreterCost(cost);
            cost = 0;
            acc = engine.invoke(fid, this_v, args);
            break;
          }

          case Bc::Return:
            engine.flushInterpreterCost(cost + 2);
            cost = 0;
            return acc;
        }
        pc = next;
        // Flush cost periodically so nested timing stays roughly
        // ordered with simulated cycles.
        if (cost > 4096) {
            engine.flushInterpreterCost(cost);
            cost = 0;
            if (engine.config.maxFuelCycles != 0)
                engine.checkFuel();
        }
    }
}

} // namespace vspec
