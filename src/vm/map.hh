/**
 * @file
 * Hidden classes ("maps" in V8 terminology). Every heap object's first
 * word is a tagged pointer to a map cell in the immortal heap region;
 * JIT-compiled code verifies speculations about object shape with a
 * WrongMap deoptimization check that compares this word against the map
 * the compiler expected.
 *
 * Map *metadata* (property descriptors, transitions, element kinds)
 * lives host-side in MapTable; only the 8-byte map cell lives in
 * simulated memory, because the compare-against-constant is all that
 * compiled code ever does with a map.
 */

#ifndef VSPEC_VM_MAP_HH
#define VSPEC_VM_MAP_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "support/common.hh"
#include "vm/heap.hh"

namespace vspec
{

using MapId = u32;
using NameId = u32;

constexpr MapId kInvalidMap = 0xffffffffu;

/** What kind of heap object a map describes. */
enum class InstanceType : u8
{
    MapCell,
    Oddball,       //!< undefined, null, true, false
    HeapNumber,
    String,
    FunctionCell,
    FixedArray,        //!< backing store with tagged/SMI slots
    FixedDoubleArray,  //!< backing store with raw f64 slots
    Array,
    Object,
};

/** Element representation of a JSArray, with V8's transition order. */
enum class ElementKind : u8
{
    Smi,      //!< every element is a tagged SMI
    Double,   //!< raw float64 elements
    Tagged,   //!< arbitrary tagged values
};

const char *instanceTypeName(InstanceType t);
const char *elementKindName(ElementKind k);

/** Interns property names and identifier strings into small ids. */
class NameTable
{
  public:
    NameId intern(const std::string &name);
    const std::string &nameOf(NameId id) const;
    u32 size() const { return static_cast<u32>(names.size()); }

  private:
    std::vector<std::string> names;
    std::unordered_map<std::string, NameId> index;
};

/** Host-side metadata for one map. */
struct MapInfo
{
    InstanceType type = InstanceType::Object;
    ElementKind kind = ElementKind::Smi;   //!< arrays only
    Addr cell = 0;                         //!< simulated map cell address

    /** In-object property slots, in insertion order. */
    std::vector<NameId> properties;

    /** Shape transitions: add-property edges keyed by name. */
    std::unordered_map<NameId, MapId> transitions;

    /** Array element-kind transition edge (Smi->Double->Tagged). */
    MapId kindTransition = kInvalidMap;

    /** Optimized code objects that speculated on this map (for lazy
     *  invalidation bookkeeping). */
    std::vector<u32> dependentCode;
};

/**
 * Registry of all maps. Creates the canonical maps for primitive object
 * types at construction; object-literal shapes grow a transition tree
 * rooted at the empty object map, exactly like V8's hidden classes.
 */
class MapTable
{
  public:
    explicit MapTable(Heap &heap);

    /** Create a fresh map of the given type. */
    MapId createMap(InstanceType type, ElementKind kind = ElementKind::Smi);

    const MapInfo &info(MapId id) const { return maps.at(id); }
    MapInfo &info(MapId id) { return maps.at(id); }
    u32 count() const { return static_cast<u32>(maps.size()); }

    /** The tagged map word objects of this map carry. */
    u32 mapWord(MapId id) const { return maps.at(id).cell | 1u; }

    /** Resolve a map word read from an object header back to its id. */
    MapId byMapWord(u32 word) const;

    /**
     * Follow (or create) the transition from @p from for adding property
     * @p name. The resulting map has the property appended to its slots.
     */
    MapId transitionAddProperty(MapId from, NameId name);

    /** Slot index of @p name in @p map, or -1 if absent. */
    int propertyIndex(MapId map, NameId name) const;

    /**
     * The canonical array map for @p kind, and the transition target when
     * an array of @p from kind must widen to @p to.
     */
    MapId arrayMap(ElementKind kind) const;

    // Canonical maps.
    MapId metaMap() const { return metaMapId; }
    MapId oddballMap() const { return oddballMapId; }
    MapId heapNumberMap() const { return heapNumberMapId; }
    MapId stringMap() const { return stringMapId; }
    MapId functionMap() const { return functionMapId; }
    MapId fixedArrayMap() const { return fixedArrayMapId; }
    MapId fixedDoubleArrayMap() const { return fixedDoubleArrayMapId; }
    MapId emptyObjectMap() const { return emptyObjectMapId; }

    /** Total transitions taken since startup (deopt-relevant metric). */
    u64 transitionCount() const { return transitions_; }

  private:
    Heap &heap;
    std::vector<MapInfo> maps;
    std::unordered_map<u32, MapId> cellIndex;
    u64 transitions_ = 0;

    MapId metaMapId;
    MapId oddballMapId;
    MapId heapNumberMapId;
    MapId stringMapId;
    MapId functionMapId;
    MapId fixedArrayMapId;
    MapId fixedDoubleArrayMapId;
    MapId emptyObjectMapId;
    MapId arrayMaps[3];
};

} // namespace vspec

#endif // VSPEC_VM_MAP_HH
