/**
 * @file
 * Flat byte-addressable simulated heap. Both the host-side interpreter
 * and JIT-compiled code running on the CPU simulator operate on this
 * memory, so tagged values, map words and element buffers have one true
 * layout. This is what makes check removal *really* dangerous here, as
 * in the paper: removing a needed map or bounds check makes compiled
 * code load garbage bytes, which validation then catches.
 *
 * Object layout (all objects 8-byte aligned, header is 8 bytes):
 *   +0  u32  map word  — tagged pointer to the object's map cell
 *   +4  u32  aux       — type-specific (length, capacity, id, ...)
 *   +8  ...  body
 *
 * Address 0 is never a valid object; the first kImmortalReserve bytes
 * form the immortal region (maps, sentinels, interned strings) that the
 * GC never frees, so JIT code can embed raw addresses as immediates.
 */

#ifndef VSPEC_VM_HEAP_HH
#define VSPEC_VM_HEAP_HH

#include <cstring>
#include <vector>

#include "support/common.hh"
#include "vm/value.hh"

namespace vspec
{

/** Byte offsets shared by every heap object. */
struct HeapLayout
{
    static constexpr u32 kMapOffset = 0;
    static constexpr u32 kAuxOffset = 4;
    static constexpr u32 kHeaderSize = 8;

    // JSArray body.
    static constexpr u32 kArrayLengthOffset = 8;
    static constexpr u32 kArrayElementsOffset = 12;
    static constexpr u32 kArraySize = 16;

    // HeapNumber body.
    static constexpr u32 kNumberValueOffset = 8;
    static constexpr u32 kNumberSize = 16;

    // JSObject body: tagged property slots.
    static constexpr u32 kObjectSlotsOffset = 8;

    // FixedArray / FixedDoubleArray body.
    static constexpr u32 kElementsDataOffset = 8;

    // String body: raw bytes.
    static constexpr u32 kStringDataOffset = 8;
};

/** Statistics the heap keeps for reporting and tests. */
struct HeapStats
{
    u64 bytesAllocated = 0;
    u64 objectsAllocated = 0;
    u64 gcCount = 0;
    u64 bytesFreed = 0;
};

class GarbageCollector;
class FaultInjector;

class Heap
{
  public:
    /** @param size_bytes total heap size (default 64 MiB). */
    explicit Heap(u32 size_bytes = 64u << 20);

    /**
     * Allocate @p size bytes (rounded up to 8) and write the header.
     * Returns the object's base address. Runs a GC cycle when the bump
     * pointer and free lists are exhausted; raises a catchable
     * EngineError{OutOfMemory} (runtime/guard) if memory is still
     * insufficient afterwards — the heap is left untouched, so the
     * engine stays usable after the error is caught.
     */
    Addr allocate(u32 size, u32 map_word, u32 aux);

    /** Allocate in the immortal region (never collected). */
    Addr allocateImmortal(u32 size, u32 map_word, u32 aux);

    // Raw accessors. Bounds-checked in debug; the simulated machine uses
    // these as its memory port.
    u8 readU8(Addr a) const { check(a, 1); return mem_[a]; }
    u32
    readU32(Addr a) const
    {
        check(a, 4);
        u32 v;
        std::memcpy(&v, &mem_[a], 4);
        return v;
    }
    u64
    readU64(Addr a) const
    {
        check(a, 8);
        u64 v;
        std::memcpy(&v, &mem_[a], 8);
        return v;
    }
    double
    readF64(Addr a) const
    {
        check(a, 8);
        double v;
        std::memcpy(&v, &mem_[a], 8);
        return v;
    }

    void writeU8(Addr a, u8 v) { check(a, 1); mem_[a] = v; }
    void
    writeU32(Addr a, u32 v)
    {
        check(a, 4);
        std::memcpy(&mem_[a], &v, 4);
    }
    void
    writeU64(Addr a, u64 v)
    {
        check(a, 8);
        std::memcpy(&mem_[a], &v, 8);
    }
    void
    writeF64(Addr a, double v)
    {
        check(a, 8);
        std::memcpy(&mem_[a], &v, 8);
    }

    Value readValue(Addr a) const { return Value::fromBits(readU32(a)); }
    void writeValue(Addr a, Value v) { writeU32(a, v.bits()); }

    /** Map word of the object at @p obj. */
    u32 mapWordOf(Addr obj) const { return readU32(obj + HeapLayout::kMapOffset); }
    u32 auxOf(Addr obj) const { return readU32(obj + HeapLayout::kAuxOffset); }
    void setAux(Addr obj, u32 aux) { writeU32(obj + HeapLayout::kAuxOffset, aux); }

    u32 sizeBytes() const { return static_cast<u32>(mem_.size()); }
    u32 bytesInUse() const { return top_; }
    const HeapStats &stats() const { return heapStats; }

    /** True if @p a lies inside the heap (for simulator fault checks). */
    bool contains(Addr a, u32 bytes) const
    {
        return a != 0 && static_cast<u64>(a) + bytes <= mem_.size();
    }

    /** The GC hooks below are used by GarbageCollector. */
    friend class GarbageCollector;

  private:
    void check(Addr a, u32 bytes) const
    {
        vassert(contains(a, bytes), "heap access out of bounds");
    }

    Addr bumpAllocate(u32 size);

    std::vector<u8> mem_;
    Addr top_;            //!< bump pointer for the mortal region
    Addr immortalTop;     //!< bump pointer for the immortal region
    Addr immortalEnd;     //!< first mortal byte
    HeapStats heapStats;

    /** Free-list entry: [addr, size] produced by the sweeper. */
    struct FreeBlock { Addr addr; u32 size; };
    std::vector<FreeBlock> freeList;

  public:
    /** Space reserved for immortal objects at the bottom of the heap. */
    static constexpr u32 kImmortalReserve = 1u << 20;

    /** Space reserved at the top for the simulated machine stack. */
    static constexpr u32 kStackReserve = 1u << 20;

    /** Initial stack pointer for simulated machine code. */
    Addr stackTop() const { return sizeBytes() - 16; }

    /** Set by Engine so allocate() can trigger collection. */
    GarbageCollector *gc = nullptr;

    /** Set by Engine when fault injection is configured: allocate()
     *  consults it for scheduled allocation failures and GC stress. */
    FaultInjector *faults = nullptr;
};

} // namespace vspec

#endif // VSPEC_VM_HEAP_HH
