#include "vm/gc.hh"

#include "trace/trace.hh"

namespace vspec
{

GarbageCollector::GarbageCollector(VMContext &c) : ctx(c)
{
}

void
GarbageCollector::trackAllocation(Addr addr, u32 size)
{
    if (addr >= Heap::kImmortalReserve)
        liveObjects[addr] = (size + 7u) & ~7u;
}

void
GarbageCollector::removeRootProvider(RootProvider *p)
{
    std::erase(providers, p);
}

void
GarbageCollector::markValue(Value v)
{
    if (!v.isHeap())
        return;
    markObject(v.asAddr());
}

void
GarbageCollector::markObject(Addr obj)
{
    if (obj < Heap::kImmortalReserve)
        return;  // immortal objects are always live
    if (!liveObjects.count(obj))
        return;  // conservative root that is not an object start: ignore
    if (!marked.insert(obj).second)
        return;
    workList.push_back(obj);
}

u64
GarbageCollector::collect()
{
    u64 now = 0;
    if (trace != nullptr && trace->on(TraceCategory::Gc)) {
        now = traceClock ? traceClock() : 0;
        trace->emit(TraceCategory::Gc, TraceEventKind::Begin, "collect",
                    now, static_cast<u32>(collections_),
                    static_cast<u32>(liveObjects.size()));
    }

    marked.clear();
    workList.clear();

    for (auto *p : providers)
        p->forEachRoot([this](Value v) { markValue(v); });
    for (Value v : tempRoots)
        markValue(v);

    Heap &heap = ctx.heap;
    while (!workList.empty()) {
        Addr obj = workList.back();
        workList.pop_back();
        MapId mid = ctx.maps.byMapWord(heap.mapWordOf(obj));
        if (mid == kInvalidMap)
            continue;
        const MapInfo &mi = ctx.maps.info(mid);
        switch (mi.type) {
          case InstanceType::Object:
            for (u32 i = 0; i < kObjectSlotCapacity; i++)
                markValue(heap.readValue(obj + HeapLayout::kObjectSlotsOffset
                                         + 4 * i));
            break;
          case InstanceType::Array:
            markObject(ctx.arrayElements(obj));
            break;
          case InstanceType::FixedArray: {
            u32 cap = heap.auxOf(obj);
            for (u32 i = 0; i < cap; i++)
                markValue(heap.readValue(obj + HeapLayout::kElementsDataOffset
                                         + 4 * i));
            break;
          }
          default:
            break;  // leaves: strings, numbers, oddballs, cells, f64 stores
        }
    }

    // Sweep: every tracked, unmarked object becomes a free block.
    u64 freed = 0;
    std::vector<Heap::FreeBlock> new_free;
    for (auto it = liveObjects.begin(); it != liveObjects.end();) {
        if (!marked.count(it->first)) {
            new_free.push_back({it->first, it->second});
            freed += it->second;
            it = liveObjects.erase(it);
        } else {
            ++it;
        }
    }
    // Merge with whatever remains of the previous free list.
    for (auto &blk : heap.freeList) {
        if (blk.size >= HeapLayout::kHeaderSize)
            new_free.push_back(blk);
    }
    heap.freeList = std::move(new_free);
    heap.heapStats.gcCount++;
    heap.heapStats.bytesFreed += freed;
    collections_++;
    if (trace != nullptr) {
        trace->counters.add(TraceCounter::GcCycles);
        trace->counters.add(TraceCounter::GcBytesFreed, freed);
        if (trace->on(TraceCategory::Gc))
            trace->emit(TraceCategory::Gc, TraceEventKind::End, "collect",
                        now, static_cast<u32>(collections_),
                        static_cast<u32>(liveObjects.size()), freed);
    }
    return freed;
}

} // namespace vspec
