#include "vm/objects.hh"

#include <cmath>
#include <cstdio>

#include "vm/gc.hh"

namespace vspec
{

std::string
formatNumber(double d)
{
    if (std::isnan(d))
        return "NaN";
    if (std::isinf(d))
        return d > 0 ? "Infinity" : "-Infinity";
    if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", d);
    return buf;
}

VMContext::VMContext(u32 heap_size)
    : heap(heap_size), maps(heap)
{
    undefinedValue = Value::heap(makeOddball());
    nullValue = Value::heap(makeOddball());
    trueValue = Value::heap(makeOddball());
    falseValue = Value::heap(makeOddball());

    Addr cell_holder = heap.allocateImmortal(
        HeapLayout::kElementsDataOffset + 4,
        maps.mapWord(maps.fixedArrayMap()), 1);
    interruptCell = cell_holder + HeapLayout::kElementsDataOffset;
    heap.writeU32(interruptCell, 0);
}

Addr
VMContext::makeOddball()
{
    return heap.allocateImmortal(HeapLayout::kHeaderSize,
                                 maps.mapWord(maps.oddballMap()), 0);
}

// ---- type queries -------------------------------------------------------

bool
VMContext::isHeapNumber(Value v) const
{
    return v.isHeap() && typeOf(v.asAddr()) == InstanceType::HeapNumber;
}

bool
VMContext::isNumber(Value v) const
{
    return v.isSmi() || isHeapNumber(v);
}

bool
VMContext::isString(Value v) const
{
    return v.isHeap() && typeOf(v.asAddr()) == InstanceType::String;
}

bool
VMContext::isArray(Value v) const
{
    return v.isHeap() && typeOf(v.asAddr()) == InstanceType::Array;
}

bool
VMContext::isObject(Value v) const
{
    return v.isHeap() && typeOf(v.asAddr()) == InstanceType::Object;
}

bool
VMContext::isFunction(Value v) const
{
    return v.isHeap() && typeOf(v.asAddr()) == InstanceType::FunctionCell;
}

bool
VMContext::isOddball(Value v) const
{
    return v.isHeap() && typeOf(v.asAddr()) == InstanceType::Oddball;
}

// ---- numbers --------------------------------------------------------------

Value
VMContext::newNumber(double d)
{
    // Integral doubles in SMI range canonicalize to SMIs, like V8.
    // -0.0 must stay a HeapNumber to preserve its identity.
    if (d == std::floor(d) && !std::isinf(d) && smiFits(static_cast<i64>(d)) &&
        !(d == 0.0 && std::signbit(d))) {
        return Value::smi(static_cast<i32>(d));
    }
    return Value::heap(newHeapNumber(d));
}

Value
VMContext::newInt(i64 v)
{
    if (smiFits(v))
        return Value::smi(static_cast<i32>(v));
    return Value::heap(newHeapNumber(static_cast<double>(v)));
}

double
VMContext::numberOf(Value v) const
{
    if (v.isSmi())
        return v.asSmi();
    vassert(isHeapNumber(v), "numberOf on non-number");
    return heap.readF64(v.asAddr() + HeapLayout::kNumberValueOffset);
}

Addr
VMContext::newHeapNumber(double d)
{
    Addr a = heap.allocate(HeapLayout::kNumberSize,
                           maps.mapWord(maps.heapNumberMap()), 0);
    heap.writeF64(a + HeapLayout::kNumberValueOffset, d);
    return a;
}

Addr
VMContext::newImmortalHeapNumber(double d)
{
    Addr a = heap.allocateImmortal(HeapLayout::kNumberSize,
                                   maps.mapWord(maps.heapNumberMap()), 0);
    heap.writeF64(a + HeapLayout::kNumberValueOffset, d);
    return a;
}

// ---- objects --------------------------------------------------------------

Addr
VMContext::newObject()
{
    u32 size = HeapLayout::kObjectSlotsOffset + 4 * kObjectSlotCapacity;
    Addr a = heap.allocate(size, maps.mapWord(maps.emptyObjectMap()), 0);
    // Initialize slots to undefined so GC sees valid tagged values.
    for (u32 i = 0; i < kObjectSlotCapacity; i++) {
        heap.writeValue(a + HeapLayout::kObjectSlotsOffset + 4 * i,
                        undefinedValue);
    }
    return a;
}

Value
VMContext::getProperty(Addr obj, NameId name) const
{
    int idx = maps.propertyIndex(mapOf(obj), name);
    if (idx < 0)
        return undefinedValue;
    return heap.readValue(obj + HeapLayout::kObjectSlotsOffset + 4 * idx);
}

bool
VMContext::hasProperty(Addr obj, NameId name) const
{
    return maps.propertyIndex(mapOf(obj), name) >= 0;
}

void
VMContext::setProperty(Addr obj, NameId name, Value v)
{
    MapId m = mapOf(obj);
    int idx = maps.propertyIndex(m, name);
    if (idx < 0) {
        MapId next = maps.transitionAddProperty(m, name);
        idx = maps.propertyIndex(next, name);
        vassert(static_cast<u32>(idx) < kObjectSlotCapacity,
                "object exceeds in-object slot capacity");
        heap.writeU32(obj + HeapLayout::kMapOffset, maps.mapWord(next));
    }
    heap.writeValue(obj + HeapLayout::kObjectSlotsOffset + 4 * idx, v);
}

// ---- arrays ---------------------------------------------------------------

Addr
VMContext::newArray(ElementKind kind, u32 length, u32 capacity)
{
    if (capacity < length)
        capacity = length;
    if (capacity < 4)
        capacity = 4;
    bool dbl = kind == ElementKind::Double;
    u32 elem_size = dbl ? 8 : 4;
    MapId store_map = dbl ? maps.fixedDoubleArrayMap() : maps.fixedArrayMap();

    Addr backing = heap.allocate(HeapLayout::kElementsDataOffset
                                 + elem_size * capacity,
                                 maps.mapWord(store_map), capacity);
    if (dbl) {
        for (u32 i = 0; i < capacity; i++)
            heap.writeF64(backing + HeapLayout::kElementsDataOffset + 8 * i,
                          0.0);
    } else {
        for (u32 i = 0; i < capacity; i++)
            heap.writeValue(backing + HeapLayout::kElementsDataOffset + 4 * i,
                            Value::smi(0));
    }

    // The backing store is only reachable from this host local until
    // the array header below links it; pin it against a GC triggered by
    // that second allocation.
    TempRootScope scope(heap.gc);
    scope.pin(Value::heap(backing));
    Addr arr = heap.allocate(HeapLayout::kArraySize,
                             maps.mapWord(maps.arrayMap(kind)), 0);
    heap.writeU32(arr + HeapLayout::kArrayLengthOffset, length);
    heap.writeU32(arr + HeapLayout::kArrayElementsOffset, backing | 1u);
    return arr;
}

u32
VMContext::arrayLength(Addr arr) const
{
    return heap.readU32(arr + HeapLayout::kArrayLengthOffset);
}

ElementKind
VMContext::arrayKind(Addr arr) const
{
    return maps.info(mapOf(arr)).kind;
}

Addr
VMContext::arrayElements(Addr arr) const
{
    return heap.readU32(arr + HeapLayout::kArrayElementsOffset) & ~1u;
}

Value
VMContext::arrayGet(Addr arr, i64 idx) const
{
    if (idx < 0 || idx >= arrayLength(arr))
        return undefinedValue;
    Addr data = arrayElements(arr) + HeapLayout::kElementsDataOffset;
    switch (arrayKind(arr)) {
      case ElementKind::Smi:
      case ElementKind::Tagged:
        return heap.readValue(data + 4 * static_cast<u32>(idx));
      case ElementKind::Double:
        // Note: const_cast-free boxing is impossible here; double loads
        // from a Double array must be boxed. The interpreter avoids this
        // allocation on hot paths by using numberOf directly.
        return const_cast<VMContext *>(this)->newNumber(
            heap.readF64(data + 8 * static_cast<u32>(idx)));
    }
    return undefinedValue;
}

void
VMContext::transitionArrayKind(Addr arr, ElementKind to)
{
    ElementKind from = arrayKind(arr);
    vassert(static_cast<int>(to) > static_cast<int>(from),
            "array element kinds only widen");
    u32 len = arrayLength(arr);
    Addr old_data = arrayElements(arr) + HeapLayout::kElementsDataOffset;
    u32 capacity = heap.auxOf(arrayElements(arr));

    if (to == ElementKind::Double) {
        // Smi -> Double: retag every element as raw float64.
        Addr backing = heap.allocate(HeapLayout::kElementsDataOffset
                                     + 8 * capacity,
                                     maps.mapWord(maps.fixedDoubleArrayMap()),
                                     capacity);
        // Re-read old data address: allocate may have GC'd (non-moving,
        // so the address is stable, but re-read for clarity).
        for (u32 i = 0; i < len; i++) {
            Value v = heap.readValue(old_data + 4 * i);
            heap.writeF64(backing + HeapLayout::kElementsDataOffset + 8 * i,
                          numberOf(v));
        }
        for (u32 i = len; i < capacity; i++)
            heap.writeF64(backing + HeapLayout::kElementsDataOffset + 8 * i,
                          0.0);
        heap.writeU32(arr + HeapLayout::kArrayElementsOffset, backing | 1u);
    } else {
        // -> Tagged: box doubles, keep tagged values.
        Addr backing = heap.allocate(HeapLayout::kElementsDataOffset
                                     + 4 * capacity,
                                     maps.mapWord(maps.fixedArrayMap()),
                                     capacity);
        // Boxing doubles below allocates: pin the not-yet-linked backing
        // so it (and the boxed numbers written into it) survive a GC.
        TempRootScope scope(heap.gc);
        scope.pin(Value::heap(backing));
        bool from_double = from == ElementKind::Double;
        for (u32 i = 0; i < len; i++) {
            Value v;
            if (from_double) {
                v = newNumber(heap.readF64(old_data + 8 * i));
            } else {
                v = heap.readValue(old_data + 4 * i);
            }
            heap.writeValue(backing + HeapLayout::kElementsDataOffset + 4 * i,
                            v);
        }
        for (u32 i = len; i < capacity; i++)
            heap.writeValue(backing + HeapLayout::kElementsDataOffset + 4 * i,
                            Value::smi(0));
        heap.writeU32(arr + HeapLayout::kArrayElementsOffset, backing | 1u);
    }
    heap.writeU32(arr + HeapLayout::kMapOffset,
                  maps.mapWord(maps.arrayMap(to)));
}

void
VMContext::growArrayBacking(Addr arr, u32 min_capacity)
{
    Addr old_backing = arrayElements(arr);
    u32 old_cap = heap.auxOf(old_backing);
    u32 new_cap = old_cap * 2;
    if (new_cap < min_capacity)
        new_cap = min_capacity;
    bool dbl = arrayKind(arr) == ElementKind::Double;
    u32 elem_size = dbl ? 8 : 4;
    MapId store_map = dbl ? maps.fixedDoubleArrayMap() : maps.fixedArrayMap();
    Addr backing = heap.allocate(HeapLayout::kElementsDataOffset
                                 + elem_size * new_cap,
                                 maps.mapWord(store_map), new_cap);
    Addr old_data = old_backing + HeapLayout::kElementsDataOffset;
    Addr new_data = backing + HeapLayout::kElementsDataOffset;
    u32 len = arrayLength(arr);
    for (u32 i = 0; i < len; i++) {
        if (dbl)
            heap.writeF64(new_data + 8 * i, heap.readF64(old_data + 8 * i));
        else
            heap.writeU32(new_data + 4 * i, heap.readU32(old_data + 4 * i));
    }
    for (u32 i = len; i < new_cap; i++) {
        if (dbl)
            heap.writeF64(new_data + 8 * i, 0.0);
        else
            heap.writeValue(new_data + 4 * i, Value::smi(0));
    }
    heap.writeU32(arr + HeapLayout::kArrayElementsOffset, backing | 1u);
}

void
VMContext::arraySet(Addr arr, i64 idx, Value v)
{
    vassert(idx >= 0, "negative array index");
    // Pin v: transitions/growth below may allocate and trigger GC, and v
    // may be held only by this host-side local.
    TempRootScope scope(heap.gc);
    scope.pin(v);
    scope.pin(Value::heap(arr));
    u32 len = arrayLength(arr);
    vassert(idx <= len, "MiniJS arrays are dense: no holes allowed");

    // Element-kind transitions.
    ElementKind kind = arrayKind(arr);
    if (kind == ElementKind::Smi) {
        if (isHeapNumber(v)) {
            transitionArrayKind(arr, ElementKind::Double);
            kind = ElementKind::Double;
        } else if (!v.isSmi()) {
            transitionArrayKind(arr, ElementKind::Tagged);
            kind = ElementKind::Tagged;
        }
    } else if (kind == ElementKind::Double && !isNumber(v)) {
        transitionArrayKind(arr, ElementKind::Tagged);
        kind = ElementKind::Tagged;
    }

    u32 capacity = heap.auxOf(arrayElements(arr));
    if (static_cast<u32>(idx) >= capacity)
        growArrayBacking(arr, static_cast<u32>(idx) + 1);
    if (static_cast<u32>(idx) == len)
        heap.writeU32(arr + HeapLayout::kArrayLengthOffset, len + 1);

    Addr data = arrayElements(arr) + HeapLayout::kElementsDataOffset;
    if (kind == ElementKind::Double)
        heap.writeF64(data + 8 * static_cast<u32>(idx), numberOf(v));
    else
        heap.writeValue(data + 4 * static_cast<u32>(idx), v);
}

// ---- strings ----------------------------------------------------------------

Addr
VMContext::newString(std::string_view s)
{
    u32 len = static_cast<u32>(s.size());
    Addr a = heap.allocate(HeapLayout::kStringDataOffset + len,
                           maps.mapWord(maps.stringMap()), len);
    for (u32 i = 0; i < len; i++)
        heap.writeU8(a + HeapLayout::kStringDataOffset + i,
                     static_cast<u8>(s[i]));
    return a;
}

Addr
VMContext::internString(std::string_view s)
{
    std::string key(s);
    auto it = internTable.find(key);
    if (it != internTable.end())
        return it->second;
    u32 len = static_cast<u32>(s.size());
    Addr a = heap.allocateImmortal(HeapLayout::kStringDataOffset + len,
                                   maps.mapWord(maps.stringMap()), len);
    for (u32 i = 0; i < len; i++)
        heap.writeU8(a + HeapLayout::kStringDataOffset + i,
                     static_cast<u8>(s[i]));
    internTable.emplace(std::move(key), a);
    return a;
}

std::string
VMContext::stringOf(Addr s) const
{
    u32 len = stringLength(s);
    std::string out(len, '\0');
    for (u32 i = 0; i < len; i++)
        out[i] = static_cast<char>(
            heap.readU8(s + HeapLayout::kStringDataOffset + i));
    return out;
}

bool
VMContext::stringEquals(Addr a, Addr b) const
{
    if (a == b)
        return true;
    u32 la = stringLength(a), lb = stringLength(b);
    if (la != lb)
        return false;
    for (u32 i = 0; i < la; i++) {
        if (heap.readU8(a + HeapLayout::kStringDataOffset + i)
            != heap.readU8(b + HeapLayout::kStringDataOffset + i))
            return false;
    }
    return true;
}

// ---- function cells ---------------------------------------------------------

Addr
VMContext::newFunctionCell(u32 function_id)
{
    return heap.allocateImmortal(HeapLayout::kHeaderSize,
                                 maps.mapWord(maps.functionMap()),
                                 function_id);
}

// ---- generic helpers ----------------------------------------------------------

bool
VMContext::truthy(Value v) const
{
    if (v.isSmi())
        return v.asSmi() != 0;
    if (v == undefinedValue || v == nullValue || v == falseValue)
        return false;
    if (v == trueValue)
        return true;
    if (isHeapNumber(v)) {
        double d = numberOf(v);
        return d != 0.0 && !std::isnan(d);
    }
    if (isString(v))
        return stringLength(v.asAddr()) != 0;
    return true;
}

bool
VMContext::strictEquals(Value a, Value b) const
{
    if (a == b)
        return !(isHeapNumber(a) && std::isnan(numberOf(a)));
    if (isNumber(a) && isNumber(b))
        return numberOf(a) == numberOf(b);
    if (isString(a) && isString(b))
        return stringEquals(a.asAddr(), b.asAddr());
    return false;
}

bool
VMContext::looseEquals(Value a, Value b) const
{
    // MiniJS restricts loose equality to same-type comparisons plus
    // null == undefined; cross-type numeric coercion of strings is not
    // part of the subset.
    if ((a == nullValue && b == undefinedValue)
        || (a == undefinedValue && b == nullValue))
        return true;
    return strictEquals(a, b);
}

std::string
VMContext::typeofString(Value v) const
{
    if (v.isSmi() || isHeapNumber(v))
        return "number";
    if (v == undefinedValue)
        return "undefined";
    if (v == trueValue || v == falseValue)
        return "boolean";
    if (isString(v))
        return "string";
    if (isFunction(v))
        return "function";
    return "object";
}

std::string
VMContext::coerceToString(Value v) const
{
    if (isString(v))
        return stringOf(v.asAddr());
    if (v.isSmi() || isHeapNumber(v))
        return formatNumber(numberOf(v));
    if (v == undefinedValue)
        return "undefined";
    if (v == nullValue)
        return "null";
    if (v == trueValue)
        return "true";
    if (v == falseValue)
        return "false";
    if (isArray(v)) {
        // ECMAScript Array::toString = elements joined by ','.
        std::string out;
        Addr arr = v.asAddr();
        u32 len = arrayLength(arr);
        for (u32 i = 0; i < len; i++) {
            if (i)
                out += ',';
            out += coerceToString(arrayGet(arr, i));
        }
        return out;
    }
    return "[object Object]";
}

std::string
VMContext::display(Value v) const
{
    if (isString(v))
        return "\"" + stringOf(v.asAddr()) + "\"";
    return coerceToString(v);
}

} // namespace vspec
