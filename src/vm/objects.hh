/**
 * @file
 * VMContext: the bundle of simulated heap, map table, name table and
 * canonical sentinel objects, plus typed constructors and accessors for
 * every heap object kind (objects, arrays, strings, heap numbers,
 * function cells). These accessors define the *semantics* the
 * interpreter implements directly and the JIT implements by emitting
 * loads/stores against the same layouts.
 */

#ifndef VSPEC_VM_OBJECTS_HH
#define VSPEC_VM_OBJECTS_HH

#include <string>
#include <string_view>
#include <unordered_map>

#include "vm/heap.hh"
#include "vm/map.hh"

namespace vspec
{

/** Fixed number of in-object property slots. MiniJS object literals are
 *  closed-world (benchmarks we author), so a fixed capacity keeps the
 *  layout simple without sacrificing any check behaviour. */
constexpr u32 kObjectSlotCapacity = 16;

class VMContext
{
  public:
    explicit VMContext(u32 heap_size = 64u << 20);

    Heap heap;
    MapTable maps;
    NameTable names;

    // Canonical sentinels (immortal oddball objects).
    Value undefinedValue;
    Value nullValue;
    Value trueValue;
    Value falseValue;

    /** Interrupt-request cell polled by JIT loop back edges (V8's
     *  stack/interrupt check); always zero in vspec. */
    Addr interruptCell = 0;

    Value boolean(bool b) const { return b ? trueValue : falseValue; }

    // ---- type queries -------------------------------------------------

    MapId mapOf(Addr obj) const { return maps.byMapWord(heap.mapWordOf(obj)); }
    InstanceType typeOf(Addr obj) const { return maps.info(mapOf(obj)).type; }

    bool isNumber(Value v) const;
    bool isString(Value v) const;
    bool isArray(Value v) const;
    bool isObject(Value v) const;
    bool isFunction(Value v) const;
    bool isOddball(Value v) const;
    bool isHeapNumber(Value v) const;

    // ---- numbers ------------------------------------------------------

    /** Box @p d: SMI when integral and in range, else a HeapNumber. */
    Value newNumber(double d);

    /** Box an i64 the same way (covers SMI-overflow results). */
    Value newInt(i64 v);

    /** Numeric value of @p v. @pre isNumber(v). */
    double numberOf(Value v) const;

    Addr newHeapNumber(double d);

    /** Immortal HeapNumber for constant pools (JIT-embeddable). */
    Addr newImmortalHeapNumber(double d);

    // ---- objects ------------------------------------------------------

    Addr newObject();
    Value getProperty(Addr obj, NameId name) const;
    /** Store a property, transitioning the object's map if it is new. */
    void setProperty(Addr obj, NameId name, Value v);
    bool hasProperty(Addr obj, NameId name) const;

    // ---- arrays -------------------------------------------------------

    Addr newArray(ElementKind kind, u32 length, u32 capacity = 0);
    u32 arrayLength(Addr arr) const;
    ElementKind arrayKind(Addr arr) const;
    Addr arrayElements(Addr arr) const;

    /** Generic element load with JS semantics (undefined when OOB). */
    Value arrayGet(Addr arr, i64 idx) const;

    /**
     * Generic element store: transitions element kind when a wider value
     * is stored (Smi -> Double -> Tagged) and grows the backing store on
     * append. Stores more than one past the end (holes) are rejected —
     * MiniJS workloads only append densely.
     */
    void arraySet(Addr arr, i64 idx, Value v);

    // ---- strings ------------------------------------------------------

    /** Allocate a (mortal) string. */
    Addr newString(std::string_view s);
    /** Intern an immortal string (literals, property keys). */
    Addr internString(std::string_view s);
    u32 stringLength(Addr s) const { return heap.auxOf(s); }
    std::string stringOf(Addr s) const;
    bool stringEquals(Addr a, Addr b) const;

    // ---- function cells -------------------------------------------------

    Addr newFunctionCell(u32 function_id);
    u32 functionIdOf(Addr cell) const { return heap.auxOf(cell); }

    // ---- generic helpers ------------------------------------------------

    bool truthy(Value v) const;
    /** Abstract (loose) equality for the MiniJS subset. */
    bool looseEquals(Value a, Value b) const;
    bool strictEquals(Value a, Value b) const;
    /** Human-readable rendering used by print() and result validation. */
    std::string display(Value v) const;
    /** ToString coercion for string concatenation. */
    std::string coerceToString(Value v) const;

    /** typeof operator result. */
    std::string typeofString(Value v) const;

  private:
    Addr makeOddball();
    void transitionArrayKind(Addr arr, ElementKind to);
    void growArrayBacking(Addr arr, u32 min_capacity);

    std::unordered_map<std::string, Addr> internTable;
};

/** Format a double the way MiniJS prints numbers (integers without
 *  a fractional part, otherwise shortest %.12g). */
std::string formatNumber(double d);

} // namespace vspec

#endif // VSPEC_VM_OBJECTS_HH
