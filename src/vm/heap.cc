#include "vm/heap.hh"

#include "runtime/guard.hh"
#include "vm/gc.hh"

namespace vspec
{

Heap::Heap(u32 size_bytes)
    : mem_(size_bytes, 0),
      top_(kImmortalReserve),
      immortalTop(8),  // keep address 0..7 unused so 0 is never valid
      immortalEnd(kImmortalReserve)
{
    vassert(size_bytes > 2 * kImmortalReserve, "heap too small");
}

Addr
Heap::bumpAllocate(u32 size)
{
    // First-fit from the free list built by the last sweep.
    for (auto &blk : freeList) {
        if (blk.size >= size) {
            Addr a = blk.addr;
            blk.addr += size;
            blk.size -= size;
            return a;
        }
    }
    if (static_cast<u64>(top_) + size > mem_.size() - kStackReserve)
        return 0;
    Addr a = top_;
    top_ += size;
    return a;
}

Addr
Heap::allocate(u32 size, u32 map_word, u32 aux)
{
    size = (size + 7u) & ~7u;
    if (faults != nullptr && faults->enabled()) {
        switch (faults->onAllocation()) {
          case AllocFault::Fail:
            throw EngineError(EngineErrorKind::OutOfMemory,
                              "injected allocation failure");
          case AllocFault::ForceGc:
            if (gc != nullptr)
                gc->collect();
            break;
          case AllocFault::None:
            break;
        }
    }
    Addr a = bumpAllocate(size);
    if (a == 0 && gc != nullptr) {
        gc->collect();
        a = bumpAllocate(size);
    }
    if (a == 0)
        throw EngineError(EngineErrorKind::OutOfMemory,
                          "simulated heap exhausted: "
                          + std::to_string(size) + "-byte request, "
                          + std::to_string(bytesInUse()) + "/"
                          + std::to_string(sizeBytes())
                          + " bytes in use after GC");
    std::memset(&mem_[a], 0, size);
    writeU32(a + HeapLayout::kMapOffset, map_word);
    writeU32(a + HeapLayout::kAuxOffset, aux);
    heapStats.bytesAllocated += size;
    heapStats.objectsAllocated++;
    if (gc != nullptr)
        gc->trackAllocation(a, size);
    return a;
}

Addr
Heap::allocateImmortal(u32 size, u32 map_word, u32 aux)
{
    size = (size + 7u) & ~7u;
    vassert(immortalTop + size <= immortalEnd, "immortal region exhausted");
    Addr a = immortalTop;
    immortalTop += size;
    std::memset(&mem_[a], 0, size);
    writeU32(a + HeapLayout::kMapOffset, map_word);
    writeU32(a + HeapLayout::kAuxOffset, aux);
    heapStats.bytesAllocated += size;
    heapStats.objectsAllocated++;
    return a;
}

} // namespace vspec
