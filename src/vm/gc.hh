/**
 * @file
 * Non-moving mark-sweep garbage collector for the simulated heap.
 * Non-moving matters: optimized machine code holds raw heap addresses in
 * simulated registers and as immediates (map cells), so objects must not
 * move. Immortal-region objects (maps, sentinels, interned strings) are
 * never collected.
 */

#ifndef VSPEC_VM_GC_HH
#define VSPEC_VM_GC_HH

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "vm/objects.hh"

namespace vspec
{

class Tracer;

/** Anything that can contribute GC roots (engine globals, interpreter
 *  frames, simulated machine registers). */
class RootProvider
{
  public:
    virtual ~RootProvider() = default;
    /** Invoke @p visit for every root value. */
    virtual void forEachRoot(const std::function<void(Value)> &visit) = 0;
};

class GarbageCollector
{
  public:
    explicit GarbageCollector(VMContext &ctx);

    /** Register an object allocation (called by the engine allocation
     *  wrappers; the raw Heap knows nothing about liveness). */
    void trackAllocation(Addr addr, u32 size);

    void addRootProvider(RootProvider *p) { providers.push_back(p); }
    void removeRootProvider(RootProvider *p);

    /** Run a full mark-sweep cycle. @return bytes reclaimed. */
    u64 collect();

    /**
     * Temporary roots: values held only in host C++ locals across a
     * potential allocation must be pinned here (analogous to V8
     * handles). Use TempRootScope for RAII management.
     */
    void pushTempRoot(Value v) { tempRoots.push_back(v); }
    void popTempRoots(size_t n)
    {
        vassert(n <= tempRoots.size(), "temp root underflow");
        tempRoots.resize(tempRoots.size() - n);
    }

    u64 collections() const { return collections_; }
    u64 trackedObjects() const { return liveObjects.size(); }

    /** vtrace hookup (set by the engine): `gc` events and counters are
     *  reported through @p trace, stamped with @p clock() cycles. */
    void
    setTrace(Tracer *tracer, std::function<u64()> clock)
    {
        trace = tracer;
        traceClock = std::move(clock);
    }

  private:
    void markValue(Value v);
    void markObject(Addr obj);

    VMContext &ctx;
    std::vector<RootProvider *> providers;
    std::unordered_map<Addr, u32> liveObjects;  //!< mortal objects only
    std::unordered_set<Addr> marked;
    std::vector<Addr> workList;
    std::vector<Value> tempRoots;
    u64 collections_ = 0;
    Tracer *trace = nullptr;
    std::function<u64()> traceClock;
};

/** RAII scope that pins host-local values against collection. */
class TempRootScope
{
  public:
    explicit TempRootScope(GarbageCollector *gc) : gc(gc), count(0) {}
    ~TempRootScope()
    {
        if (gc != nullptr)
            gc->popTempRoots(count);
    }
    void
    pin(Value v)
    {
        if (gc != nullptr) {
            gc->pushTempRoot(v);
            count++;
        }
    }

  private:
    GarbageCollector *gc;
    size_t count;
};

} // namespace vspec

#endif // VSPEC_VM_GC_HH
