/**
 * @file
 * Tagged 32-bit value representation, mirroring V8's pointer-compressed
 * heap slots. The least-significant bit is the tag: if it is clear, the
 * remaining 31 bits are a signed Small Integer (SMI); if it is set, the
 * remaining bits are a (4-byte aligned) pointer into the simulated heap.
 *
 * This is exactly the representation whose checks the paper studies: a
 * Not-a-SMI deoptimization check inspects the LSB, and using an SMI as a
 * machine integer requires an untagging arithmetic right shift by one.
 */

#ifndef VSPEC_VM_VALUE_HH
#define VSPEC_VM_VALUE_HH

#include <string>

#include "support/common.hh"

namespace vspec
{

/** Number of payload bits in an SMI (pointer-compression build of V8). */
constexpr int kSmiBits = 31;

/** Smallest and largest representable SMI payloads. */
constexpr i32 kSmiMin = -(1 << (kSmiBits - 1));
constexpr i32 kSmiMax = (1 << (kSmiBits - 1)) - 1;

/** @return true iff @p v fits in an SMI payload. */
constexpr bool
smiFits(i64 v)
{
    return v >= kSmiMin && v <= kSmiMax;
}

/**
 * A tagged heap slot. Wraps the raw 32-bit bit pattern; all predicates
 * and conversions are branch-free bit operations so the host-side VM and
 * the simulated machine code agree on the representation.
 */
class Value
{
  public:
    Value() : bits_(0) {}

    /** Wrap a raw tagged bit pattern (e.g. read from the heap). */
    static Value fromBits(u32 bits) { Value v; v.bits_ = bits; return v; }

    /** Tag an integer as an SMI. @pre smiFits(v). */
    static Value
    smi(i32 v)
    {
        vassert(smiFits(v), "SMI payload out of range");
        Value r;
        r.bits_ = static_cast<u32>(v) << 1;
        return r;
    }

    /** Tag a heap address. @pre addr is 4-byte aligned and non-zero. */
    static Value
    heap(Addr addr)
    {
        vassert(addr != 0 && (addr & 3) == 0, "heap address must be aligned");
        Value r;
        r.bits_ = addr | 1u;
        return r;
    }

    /** The canonical "hole"/unset slot (SMI 0 is a valid value; the VM
     *  uses dedicated heap sentinels for undefined/null, see Heap). */
    static Value zero() { return smi(0); }

    bool isSmi() const { return (bits_ & 1u) == 0; }
    bool isHeap() const { return (bits_ & 1u) != 0; }

    /** Untag an SMI payload. @pre isSmi(). */
    i32
    asSmi() const
    {
        vassert(isSmi(), "asSmi on non-SMI value");
        return static_cast<i32>(bits_) >> 1;
    }

    /** Untag a heap address. @pre isHeap(). */
    Addr
    asAddr() const
    {
        vassert(isHeap(), "asAddr on SMI value");
        return bits_ & ~1u;
    }

    u32 bits() const { return bits_; }

    bool operator==(const Value &o) const { return bits_ == o.bits_; }
    bool operator!=(const Value &o) const { return bits_ != o.bits_; }

    /** Debug rendering, e.g. "smi:42" or "obj:0x1234". */
    std::string toString() const;

  private:
    u32 bits_;
};

} // namespace vspec

#endif // VSPEC_VM_VALUE_HH
