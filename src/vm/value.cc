#include "vm/value.hh"

#include <cstdio>

namespace vspec
{

std::string
Value::toString() const
{
    char buf[32];
    if (isSmi())
        std::snprintf(buf, sizeof(buf), "smi:%d", asSmi());
    else
        std::snprintf(buf, sizeof(buf), "obj:0x%x", asAddr());
    return buf;
}

} // namespace vspec
