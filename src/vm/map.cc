#include "vm/map.hh"

namespace vspec
{

const char *
instanceTypeName(InstanceType t)
{
    switch (t) {
      case InstanceType::MapCell: return "MapCell";
      case InstanceType::Oddball: return "Oddball";
      case InstanceType::HeapNumber: return "HeapNumber";
      case InstanceType::String: return "String";
      case InstanceType::FunctionCell: return "FunctionCell";
      case InstanceType::FixedArray: return "FixedArray";
      case InstanceType::FixedDoubleArray: return "FixedDoubleArray";
      case InstanceType::Array: return "Array";
      case InstanceType::Object: return "Object";
    }
    return "?";
}

const char *
elementKindName(ElementKind k)
{
    switch (k) {
      case ElementKind::Smi: return "Smi";
      case ElementKind::Double: return "Double";
      case ElementKind::Tagged: return "Tagged";
    }
    return "?";
}

NameId
NameTable::intern(const std::string &name)
{
    auto it = index.find(name);
    if (it != index.end())
        return it->second;
    NameId id = static_cast<NameId>(names.size());
    names.push_back(name);
    index.emplace(name, id);
    return id;
}

const std::string &
NameTable::nameOf(NameId id) const
{
    vassert(id < names.size(), "NameId out of range");
    return names[id];
}

MapTable::MapTable(Heap &h) : heap(h)
{
    // The meta-map describes map cells themselves. Bootstrap: create it
    // first with a placeholder word, then patch its own map word.
    metaMapId = createMap(InstanceType::MapCell);
    heap.writeU32(maps[metaMapId].cell + HeapLayout::kMapOffset,
                  mapWord(metaMapId));

    oddballMapId = createMap(InstanceType::Oddball);
    heapNumberMapId = createMap(InstanceType::HeapNumber);
    stringMapId = createMap(InstanceType::String);
    functionMapId = createMap(InstanceType::FunctionCell);
    fixedArrayMapId = createMap(InstanceType::FixedArray);
    fixedDoubleArrayMapId = createMap(InstanceType::FixedDoubleArray);
    emptyObjectMapId = createMap(InstanceType::Object);

    arrayMaps[0] = createMap(InstanceType::Array, ElementKind::Smi);
    arrayMaps[1] = createMap(InstanceType::Array, ElementKind::Double);
    arrayMaps[2] = createMap(InstanceType::Array, ElementKind::Tagged);
    maps[arrayMaps[0]].kindTransition = arrayMaps[1];
    maps[arrayMaps[1]].kindTransition = arrayMaps[2];
}

MapId
MapTable::createMap(InstanceType type, ElementKind kind)
{
    MapId id = static_cast<MapId>(maps.size());
    MapInfo mi;
    mi.type = type;
    mi.kind = kind;
    // Map cells live in the immortal region so compiled code can embed
    // their addresses as immediates.
    u32 meta_word = maps.empty() ? 0 : mapWord(metaMapId);
    mi.cell = heap.allocateImmortal(HeapLayout::kHeaderSize, meta_word, id);
    maps.push_back(std::move(mi));
    cellIndex.emplace(maps.back().cell | 1u, id);
    return id;
}

MapId
MapTable::byMapWord(u32 word) const
{
    auto it = cellIndex.find(word);
    return it == cellIndex.end() ? kInvalidMap : it->second;
}

MapId
MapTable::transitionAddProperty(MapId from, NameId name)
{
    MapInfo &fi = maps.at(from);
    auto it = fi.transitions.find(name);
    if (it != fi.transitions.end())
        return it->second;

    MapId next = createMap(InstanceType::Object);
    // Note: createMap may reallocate `maps`; re-fetch the source.
    MapInfo &src = maps.at(from);
    maps.at(next).properties = src.properties;
    maps.at(next).properties.push_back(name);
    src.transitions.emplace(name, next);
    transitions_++;
    return next;
}

int
MapTable::propertyIndex(MapId map, NameId name) const
{
    const auto &props = maps.at(map).properties;
    for (size_t i = 0; i < props.size(); i++) {
        if (props[i] == name)
            return static_cast<int>(i);
    }
    return -1;
}

MapId
MapTable::arrayMap(ElementKind kind) const
{
    return arrayMaps[static_cast<int>(kind)];
}

} // namespace vspec
