/**
 * @file
 * Register-machine bytecode in the style of V8's Ignition: an implicit
 * accumulator plus a frame of registers. Binary operators take the
 * left-hand side from a register and the right-hand side from the
 * accumulator. Every speculation-relevant operation carries a feedback
 * slot index that the interpreter populates and the optimizing compiler
 * consumes.
 */

#ifndef VSPEC_BYTECODE_BYTECODE_HH
#define VSPEC_BYTECODE_BYTECODE_HH

#include <string>
#include <vector>

#include "bytecode/feedback.hh"
#include "vm/objects.hh"

namespace vspec
{

enum class Bc : u8
{
    // Loads into the accumulator.
    LdaSmi,        //!< a = immediate payload
    LdaConst,      //!< a = constant pool index
    LdaUndefined,
    LdaNull,
    LdaTrue,
    LdaFalse,
    LdaGlobal,     //!< a = global cell index, b = feedback slot
    StaGlobal,     //!< a = global cell index

    // Register moves.
    Ldar,          //!< a = register
    Star,          //!< a = register
    Mov,           //!< a = dst, b = src

    // Binary ops: acc = r[a] OP acc, b = feedback slot.
    Add, Sub, Mul, Div, Mod,
    BitAnd, BitOr, BitXor, Shl, Sar, Shr,

    // Unary ops on the accumulator; a = feedback slot where present.
    Inc, Dec, Negate, BitNot,
    LogicalNot,
    TypeOf,
    ToNumber,      //!< numeric coercion for ++/-- on unusual inputs

    // Comparisons: acc = bool(r[a] OP acc), b = feedback slot.
    TestLess, TestLessEq, TestGreater, TestGreaterEq,
    TestEq, TestNotEq, TestStrictEq, TestStrictNotEq,

    // Control flow; a = target bytecode index.
    Jump,
    JumpIfFalse,
    JumpIfTrue,
    JumpLoop,      //!< back edge; drives on-stack hotness

    // Property access; a = object register, b = name id, c = feedback.
    GetNamedProperty,   //!< acc = r[a].name
    SetNamedProperty,   //!< r[a].name = acc
    // Element access.
    GetElement,         //!< acc = r[a][acc], b = feedback slot
    SetElement,         //!< r[a][r[b]] = acc, c = feedback slot

    // Literals.
    CreateArray,        //!< acc = new array, a = initial capacity
    CreateObject,       //!< acc = new empty object
    StaArrayLiteral,    //!< r[a][b] = acc, raw literal init (no feedback)
    StaNamedOwn,        //!< r[a].name(b) = acc, literal init (no feedback)

    // Calls: a = callee register, b = first arg register, c packs
    // (argc << 16) | feedback slot. `this` is r[b-1] for CallMethod.
    Call,
    CallMethod,

    Return,             //!< return acc
};

const char *bcName(Bc op);

/** One fixed-width bytecode instruction. */
struct BcInstr
{
    Bc op;
    i32 a = 0;
    i32 b = 0;
    i32 c = 0;
};

/** MiniJS source position (1-based; 0 = unknown). Carried alongside
 *  the bytecode and snapshotted into CodeObjects so the profiler can
 *  attribute machine instructions back to source lines (vprof). */
struct SrcPos
{
    i32 line = 0;
    i32 col = 0;
};

/** Extract argc / feedback slot from a packed Call `c` operand. */
constexpr int callArgc(i32 c) { return c >> 16; }
constexpr int callSlot(i32 c) { return c & 0xffff; }
constexpr i32 packCall(int argc, int slot)
{
    return (argc << 16) | (slot & 0xffff);
}

using FunctionId = u32;
constexpr FunctionId kInvalidFunction = 0xffffffffu;

/** Identifies a builtin implementation for builtin functions. */
enum class BuiltinId : u16
{
    None = 0,
    Print,
    MathFloor, MathCeil, MathAbs, MathSqrt, MathMin, MathMax, MathPow,
    MathSin, MathCos, MathExp, MathLog, MathAtan2, MathRandom, MathRound,
    StringCharCodeAt, StringCharAt, StringSubstring, StringIndexOf,
    StringSplit, StringFromCharCode,
    ArrayPush, ArrayPop, ArrayJoin, ArrayIndexOf,
    ParseInt, ParseFloat,
    ReTest, ReCount, ReReplace,  //!< irregexp-lite entry points
};

const char *builtinName(BuiltinId id);

/**
 * Everything the engine knows about one function: source identity,
 * bytecode, constants, feedback, and tiering state. Optimized code is
 * attached by the runtime (see runtime/engine.hh) via `codeId`.
 */
struct FunctionInfo
{
    FunctionId id = kInvalidFunction;
    std::string name;
    u32 paramCount = 0;      //!< declared parameters (excluding `this`)
    u32 registerCount = 0;   //!< total frame registers incl. this+params
    std::vector<BcInstr> bytecode;
    /** Source position of each bytecode (parallel to `bytecode`). */
    std::vector<SrcPos> bcPositions;
    std::vector<Value> constants;
    FeedbackVector feedback;

    BuiltinId builtin = BuiltinId::None;

    /** Simulated address of this function's (immortal) function cell. */
    Addr cellAddr = 0;

    // ---- tiering state (owned by runtime/tiering.cc) ----
    u32 invocationCount = 0;
    u32 backEdgeCount = 0;
    u32 deoptCount = 0;
    u32 codeId = 0xffffffffu;   //!< optimized CodeObject, if any
    bool optimizationDisabled = false;

    /** Frame layout: r0 = this, r1..rP = params, then locals/temps. */
    static constexpr u32 kThisReg = 0;
    static constexpr u32 kFirstParamReg = 1;

    bool hasCode() const { return codeId != 0xffffffffu; }

    /** Pretty disassembly of the bytecode (tests, debugging). */
    std::string disassemble(const VMContext &ctx) const;
};

} // namespace vspec

#endif // VSPEC_BYTECODE_BYTECODE_HH
