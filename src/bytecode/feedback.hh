/**
 * @file
 * Type-feedback vectors. The Ignition-style interpreter records what it
 * observes at each speculation-relevant site; the optimizing compiler
 * turns that feedback into speculative machine code guarded by
 * deoptimization checks. Feedback only ever widens (lattice join), so a
 * deopt-and-reoptimize cycle converges.
 */

#ifndef VSPEC_BYTECODE_FEEDBACK_HH
#define VSPEC_BYTECODE_FEEDBACK_HH

#include <string>
#include <vector>

#include "support/common.hh"
#include "vm/map.hh"

namespace vspec
{

/** Observed operand types of a binary/compare/unary numeric operation. */
enum class OperandFeedback : u8
{
    None,     //!< never executed
    Smi,      //!< all operands were SMIs
    Number,   //!< SMIs and/or heap numbers
    String,   //!< string (concatenation / comparison)
    Any,      //!< mixed or non-numeric
};

OperandFeedback joinOperand(OperandFeedback a, OperandFeedback b);
const char *operandFeedbackName(OperandFeedback f);

/** Property-access feedback (named loads/stores). */
struct PropertyFeedback
{
    enum class State : u8 { None, Monomorphic, Polymorphic, Megamorphic };

    State state = State::None;

    /** Monomorphic / polymorphic entries: map seen -> slot index. For
     *  stores that add a property, `transition` is the target map. */
    struct Entry
    {
        MapId map = kInvalidMap;
        int slotIndex = -1;
        MapId transition = kInvalidMap;
    };
    static constexpr size_t kMaxPolymorphic = 4;
    std::vector<Entry> entries;

    /** Special named loads that bypass maps entirely. */
    bool sawStringLength = false;
    bool sawArrayLength = false;
    MapId lengthMap = kInvalidMap;   //!< array map seen for .length
    bool lengthPolymorphic = false;

    /** Builtin method loaded off a String/Array receiver (e.g.
     *  charCodeAt), letting the JIT embed the builtin as a constant
     *  behind a map check. */
    u16 builtinMethod = 0;           //!< BuiltinId, 0 = none
    MapId builtinReceiverMap = kInvalidMap;

    /** Access needed the fully generic runtime path. */
    bool sawGeneric = false;

    void recordMapSlot(MapId map, int slot_index,
                       MapId transition = kInvalidMap);
    bool isMonomorphic() const { return state == State::Monomorphic; }
};

/** Element-access feedback (indexed loads/stores on arrays). */
struct ElementFeedback
{
    enum class State : u8 { None, Typed, Megamorphic };

    State state = State::None;
    MapId arrayMap = kInvalidMap;   //!< canonical map incl. element kind
    ElementKind kind = ElementKind::Smi;
    bool sawOutOfBounds = false;    //!< a load/store ever went OOB
    bool sawGrowth = false;         //!< a store ever appended
    bool sawString = false;         //!< receiver was a string (s[i])

    void recordAccess(MapId map, ElementKind kind);
};

/** Call-site feedback. */
struct CallFeedback
{
    enum class State : u8 { None, Monomorphic, Megamorphic };
    State state = State::None;
    u32 target = 0xffffffffu;  //!< FunctionId when monomorphic

    void recordTarget(u32 function_id);
};

/** Global-variable load feedback: constant-cell speculation. */
struct GlobalFeedback
{
    bool loaded = false;
};

enum class SlotKind : u8
{
    BinaryOp,
    CompareOp,
    UnaryOp,
    Property,
    Element,
    CallSite,
    Global,
};

/** One feedback slot; `kind` selects the active member. */
struct FeedbackSlot
{
    SlotKind kind = SlotKind::BinaryOp;
    OperandFeedback operands = OperandFeedback::None;  //!< binary/cmp/unary
    PropertyFeedback property;
    ElementFeedback element;
    CallFeedback call;
    GlobalFeedback global;
};

class FeedbackVector
{
  public:
    /** Reserve a new slot of the given kind; returns its index. */
    int addSlot(SlotKind kind);

    FeedbackSlot &at(int i) { return slots.at(static_cast<size_t>(i)); }
    const FeedbackSlot &at(int i) const
    {
        return slots.at(static_cast<size_t>(i));
    }
    size_t size() const { return slots.size(); }

    /** True if any slot has recorded anything (function "warm"). */
    bool hasAnyFeedback() const;

    /** Forget everything (used when speculation is being re-tested). */
    void reset();

  private:
    std::vector<FeedbackSlot> slots;
};

} // namespace vspec

#endif // VSPEC_BYTECODE_FEEDBACK_HH
