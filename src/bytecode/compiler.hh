/**
 * @file
 * AST -> bytecode compiler plus the two program-level registries it
 * populates: the FunctionTable (all compiled and builtin functions) and
 * the GlobalRegistry (named global cells living in simulated memory so
 * optimized code can load them directly).
 */

#ifndef VSPEC_BYTECODE_COMPILER_HH
#define VSPEC_BYTECODE_COMPILER_HH

#include <functional>
#include <memory>
#include <unordered_map>

#include "bytecode/bytecode.hh"
#include "frontend/ast.hh"

namespace vspec
{

/**
 * Named global variables. Each global owns a 4-byte tagged cell inside
 * an immortal FixedArray, so both tiers read/write the same simulated
 * memory. Tracks writes for constant-cell speculation: optimized code
 * may embed a global's value as a constant, registering a dependency
 * that write-backs invalidate (the paper's lazy-deopt path).
 */
class GlobalRegistry
{
  public:
    explicit GlobalRegistry(VMContext &ctx, u32 capacity = 4096);

    /** Index of global @p name, creating the cell on first use. */
    u32 indexOf(const std::string &name);
    bool exists(const std::string &name) const;

    u32 count() const { return static_cast<u32>(names_.size()); }
    const std::string &nameOf(u32 idx) const { return names_.at(idx); }

    /** Simulated address of cell @p idx (for JIT loads/stores). */
    Addr cellAddr(u32 idx) const;

    Value load(u32 idx) const;
    void store(u32 idx, Value v);

    /** Writes seen per cell (0 or 1 write = constant so far). */
    u32 writeCount(u32 idx) const { return writes_.at(idx); }

    /** Code objects that embedded this cell's value as a constant. */
    void addConstantDependency(u32 idx, u32 code_id);
    /** Consume the dependency list (when the cell is overwritten). */
    std::vector<u32> takeDependencies(u32 idx);

    /** GC support: iterate all global values. */
    void forEachValue(const std::function<void(Value)> &visit) const;

  private:
    VMContext &ctx;
    Addr block;      //!< immortal FixedArray backing the cells
    u32 capacity;
    std::vector<std::string> names_;
    std::unordered_map<std::string, u32> index_;
    std::vector<u32> writes_;
    std::vector<std::vector<u32>> deps_;
};

/** All functions, user-defined and builtin. */
class FunctionTable
{
  public:
    /** Create a new user function; returns mutable info. */
    FunctionInfo &create(const std::string &name);
    /** Create a builtin function entry. */
    FunctionInfo &createBuiltin(const std::string &name, BuiltinId id,
                                u32 param_count);

    FunctionInfo &at(FunctionId id) { return *funcs.at(id); }
    const FunctionInfo &at(FunctionId id) const { return *funcs.at(id); }
    FunctionId idOf(const std::string &name) const;
    u32 count() const { return static_cast<u32>(funcs.size()); }

  private:
    std::vector<std::unique_ptr<FunctionInfo>> funcs;
    std::unordered_map<std::string, FunctionId> byName;
};

/**
 * Compile a parsed program: every declared function plus an implicit
 * `__main__` holding the top-level statements. Function declarations
 * are bound to global cells (as function-cell values) before `__main__`
 * runs, i.e. hoisted.
 */
class BytecodeCompiler
{
  public:
    BytecodeCompiler(VMContext &ctx, GlobalRegistry &globals,
                     FunctionTable &functions);

    /** @return the FunctionId of the program's `__main__`. */
    FunctionId compileProgram(const ProgramSource &prog);

  private:
    friend class FunctionCompiler;
    VMContext &ctx;
    GlobalRegistry &globals;
    FunctionTable &functions;
};

class CompileError : public std::runtime_error
{
  public:
    CompileError(const std::string &msg, int line)
        : std::runtime_error("compile error at line " + std::to_string(line)
                             + ": " + msg)
    {}
};

} // namespace vspec

#endif // VSPEC_BYTECODE_COMPILER_HH
