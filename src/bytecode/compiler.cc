#include "bytecode/compiler.hh"

#include <cmath>
#include <set>

namespace vspec
{

// ---- GlobalRegistry ------------------------------------------------------

GlobalRegistry::GlobalRegistry(VMContext &c, u32 cap)
    : ctx(c), capacity(cap)
{
    block = ctx.heap.allocateImmortal(HeapLayout::kElementsDataOffset
                                      + 4 * capacity,
                                      ctx.maps.mapWord(ctx.maps.fixedArrayMap()),
                                      capacity);
    for (u32 i = 0; i < capacity; i++)
        ctx.heap.writeValue(block + HeapLayout::kElementsDataOffset + 4 * i,
                            ctx.undefinedValue);
}

u32
GlobalRegistry::indexOf(const std::string &name)
{
    auto it = index_.find(name);
    if (it != index_.end())
        return it->second;
    u32 idx = static_cast<u32>(names_.size());
    vassert(idx < capacity, "global registry exhausted");
    names_.push_back(name);
    index_.emplace(name, idx);
    writes_.push_back(0);
    deps_.emplace_back();
    return idx;
}

bool
GlobalRegistry::exists(const std::string &name) const
{
    return index_.count(name) != 0;
}

Addr
GlobalRegistry::cellAddr(u32 idx) const
{
    vassert(idx < names_.size(), "global index out of range");
    return block + HeapLayout::kElementsDataOffset + 4 * idx;
}

Value
GlobalRegistry::load(u32 idx) const
{
    return ctx.heap.readValue(cellAddr(idx));
}

void
GlobalRegistry::store(u32 idx, Value v)
{
    ctx.heap.writeValue(cellAddr(idx), v);
    writes_.at(idx)++;
}

void
GlobalRegistry::addConstantDependency(u32 idx, u32 code_id)
{
    deps_.at(idx).push_back(code_id);
}

std::vector<u32>
GlobalRegistry::takeDependencies(u32 idx)
{
    std::vector<u32> out = std::move(deps_.at(idx));
    deps_.at(idx).clear();
    return out;
}

void
GlobalRegistry::forEachValue(const std::function<void(Value)> &visit) const
{
    for (u32 i = 0; i < names_.size(); i++)
        visit(load(i));
}

// ---- FunctionTable ----------------------------------------------------------

FunctionInfo &
FunctionTable::create(const std::string &name)
{
    auto fn = std::make_unique<FunctionInfo>();
    fn->id = static_cast<FunctionId>(funcs.size());
    fn->name = name;
    funcs.push_back(std::move(fn));
    byName[name] = funcs.back()->id;
    return *funcs.back();
}

FunctionInfo &
FunctionTable::createBuiltin(const std::string &name, BuiltinId id,
                             u32 param_count)
{
    FunctionInfo &fn = create(name);
    fn.builtin = id;
    fn.paramCount = param_count;
    return fn;
}

FunctionId
FunctionTable::idOf(const std::string &name) const
{
    auto it = byName.find(name);
    return it == byName.end() ? kInvalidFunction : it->second;
}

// ---- FunctionCompiler ----------------------------------------------------------

namespace
{

/** Collect every var name declared anywhere in a statement subtree. */
void
collectVars(const Node *n, std::set<std::string> &out)
{
    if (n == nullptr)
        return;
    if (n->kind == NodeKind::VarDecl)
        out.insert(n->strVal);
    for (const auto &c : n->children)
        collectVars(c.get(), out);
}

} // namespace

/** Compiles one function body to bytecode. */
class FunctionCompiler
{
  public:
    FunctionCompiler(BytecodeCompiler &parent, FunctionInfo &fn, bool is_main)
        : ctx(parent.ctx), globals(parent.globals), fn(fn), isMain(is_main)
    {}

    void
    compileBody(const std::vector<std::string> &params,
                const std::vector<const Node *> &stmts)
    {
        fn.paramCount = static_cast<u32>(params.size());
        nextReg = FunctionInfo::kFirstParamReg;
        for (const auto &p : params)
            locals[p] = nextReg++;

        // Hoist var declarations (function scope). Top-level vars in
        // __main__ become globals instead of frame locals.
        if (!isMain) {
            std::set<std::string> vars;
            for (const Node *s : stmts)
                collectVars(s, vars);
            for (const auto &v : vars) {
                if (!locals.count(v))
                    locals[v] = nextReg++;
            }
        }
        firstTemp = nextReg;
        maxReg = nextReg;

        for (const Node *s : stmts)
            compileStmt(s);
        // Implicit `return undefined` at the end.
        emit(Bc::LdaUndefined);
        emit(Bc::Return);

        fn.registerCount = static_cast<u32>(maxReg);
        vassert(loopStack.empty(), "unbalanced loop stack");
    }

  private:
    // ---- emission helpers ------------------------------------------------

    size_t
    emit(Bc op, i32 a = 0, i32 b = 0, i32 c = 0)
    {
        fn.bytecode.push_back({op, a, b, c});
        fn.bcPositions.push_back(curPos);
        return fn.bytecode.size() - 1;
    }

    void patchJump(size_t at) { fn.bytecode[at].a = here(); }
    i32 here() const { return static_cast<i32>(fn.bytecode.size()); }

    int newSlot(SlotKind kind) { return fn.feedback.addSlot(kind); }

    int
    addConstant(Value v)
    {
        for (size_t i = 0; i < fn.constants.size(); i++) {
            if (fn.constants[i] == v)
                return static_cast<int>(i);
        }
        fn.constants.push_back(v);
        return static_cast<int>(fn.constants.size()) - 1;
    }

    int
    allocTemp()
    {
        int r = nextReg++;
        if (nextReg > maxReg)
            maxReg = nextReg;
        return r;
    }

    void
    freeTemp(int n = 1)
    {
        nextReg -= n;
        vassert(nextReg >= firstTemp, "temp register underflow");
    }

    NameId internName(const std::string &s) { return ctx.names.intern(s); }

    [[noreturn]] void
    error(const Node *n, const std::string &msg)
    {
        throw CompileError(msg, n->line);
    }

    // ---- statements ---------------------------------------------------------

    void
    compileStmt(const Node *n)
    {
        if (n->line > 0)
            curPos = {n->line, n->col};
        switch (n->kind) {
          case NodeKind::Block:
            for (const auto &c : n->children)
                compileStmt(c.get());
            break;
          case NodeKind::VarDecl:
            if (n->arity() > 0) {
                compileExpr(n->child(0));
            } else {
                emit(Bc::LdaUndefined);
            }
            storeVariable(n, n->strVal);
            break;
          case NodeKind::ExprStmt:
            compileExpr(n->child(0));
            break;
          case NodeKind::If: {
            compileExpr(n->child(0));
            size_t jf = emit(Bc::JumpIfFalse, -1);
            compileStmt(n->child(1));
            if (n->arity() > 2) {
                size_t jend = emit(Bc::Jump, -1);
                patchJump(jf);
                compileStmt(n->child(2));
                patchJump(jend);
            } else {
                patchJump(jf);
            }
            break;
          }
          case NodeKind::While: {
            i32 top = here();
            compileExpr(n->child(0));
            size_t jf = emit(Bc::JumpIfFalse, -1);
            loopStack.push_back({});
            compileStmt(n->child(1));
            for (size_t at : loopStack.back().continues) {
                // Backward continues are loop back edges: use JumpLoop
                // so they feed the hotness counter too.
                fn.bytecode[at].op = Bc::JumpLoop;
                fn.bytecode[at].a = top;
            }
            emit(Bc::JumpLoop, top);
            patchJump(jf);
            for (size_t at : loopStack.back().breaks)
                patchJump(at);
            loopStack.pop_back();
            break;
          }
          case NodeKind::For: {
            const Node *init = n->child(0);
            const Node *cond = n->child(1);
            const Node *update = n->child(2);
            const Node *body = n->child(3);
            if (init != nullptr)
                compileStmt(init);
            i32 top = here();
            size_t jf = SIZE_MAX;
            if (cond != nullptr) {
                compileExpr(cond);
                jf = emit(Bc::JumpIfFalse, -1);
            }
            loopStack.push_back({});
            compileStmt(body);
            i32 update_at = here();
            for (size_t at : loopStack.back().continues)
                fn.bytecode[at].a = update_at;
            if (update != nullptr)
                compileExpr(update);
            emit(Bc::JumpLoop, top);
            if (jf != SIZE_MAX)
                patchJump(jf);
            for (size_t at : loopStack.back().breaks)
                patchJump(at);
            loopStack.pop_back();
            break;
          }
          case NodeKind::Return:
            if (n->arity() > 0) {
                compileExpr(n->child(0));
            } else {
                emit(Bc::LdaUndefined);
            }
            emit(Bc::Return);
            break;
          case NodeKind::Break:
            if (loopStack.empty())
                error(n, "break outside loop");
            loopStack.back().breaks.push_back(emit(Bc::Jump, -1));
            break;
          case NodeKind::Continue:
            if (loopStack.empty())
                error(n, "continue outside loop");
            loopStack.back().continues.push_back(emit(Bc::Jump, -1));
            break;
          default:
            error(n, "unexpected statement node");
        }
    }

    /** Store the accumulator into variable @p name (local or global). */
    void
    storeVariable(const Node *n, const std::string &name)
    {
        auto it = locals.find(name);
        if (it != locals.end()) {
            emit(Bc::Star, it->second);
        } else {
            (void)n;
            emit(Bc::StaGlobal, static_cast<i32>(globals.indexOf(name)));
        }
    }

    void
    loadVariable(const std::string &name)
    {
        auto it = locals.find(name);
        if (it != locals.end()) {
            emit(Bc::Ldar, it->second);
        } else {
            emit(Bc::LdaGlobal, static_cast<i32>(globals.indexOf(name)),
                 newSlot(SlotKind::Global));
        }
    }

    // ---- expressions -----------------------------------------------------------

    void
    compileExpr(const Node *n)
    {
        if (n->line > 0)
            curPos = {n->line, n->col};
        switch (n->kind) {
          case NodeKind::NumberLit: {
            double d = n->numVal;
            if (d == static_cast<i32>(d) && smiFits(static_cast<i64>(d))
                && !(d == 0.0 && std::signbit(d))) {
                emit(Bc::LdaSmi, static_cast<i32>(d));
            } else {
                Value c = Value::heap(ctx.newImmortalHeapNumber(d));
                emit(Bc::LdaConst, addConstant(c));
            }
            break;
          }
          case NodeKind::StringLit: {
            Value c = Value::heap(ctx.internString(n->strVal));
            emit(Bc::LdaConst, addConstant(c));
            break;
          }
          case NodeKind::BoolLit:
            emit(n->intVal ? Bc::LdaTrue : Bc::LdaFalse);
            break;
          case NodeKind::NullLit:
            emit(Bc::LdaNull);
            break;
          case NodeKind::UndefinedLit:
            emit(Bc::LdaUndefined);
            break;
          case NodeKind::Ident:
            loadVariable(n->strVal);
            break;
          case NodeKind::This:
            emit(Bc::Ldar, FunctionInfo::kThisReg);
            break;
          case NodeKind::ArrayLit: {
            emit(Bc::CreateArray, static_cast<i32>(n->arity()));
            int t = allocTemp();
            emit(Bc::Star, t);
            for (size_t i = 0; i < n->arity(); i++) {
                compileExpr(n->child(i));
                emit(Bc::StaArrayLiteral, t, static_cast<i32>(i));
            }
            emit(Bc::Ldar, t);
            freeTemp();
            break;
          }
          case NodeKind::ObjectLit: {
            emit(Bc::CreateObject);
            int t = allocTemp();
            emit(Bc::Star, t);
            for (size_t i = 0; i + 1 < n->arity(); i += 2) {
                NameId name = internName(n->child(i)->strVal);
                compileExpr(n->child(i + 1));
                emit(Bc::StaNamedOwn, t, static_cast<i32>(name));
            }
            emit(Bc::Ldar, t);
            freeTemp();
            break;
          }
          case NodeKind::Binary:
            compileBinary(n);
            break;
          case NodeKind::Logical: {
            compileExpr(n->child(0));
            size_t skip = emit(n->op == "&&" ? Bc::JumpIfFalse
                                             : Bc::JumpIfTrue, -1);
            compileExpr(n->child(1));
            patchJump(skip);
            break;
          }
          case NodeKind::Unary:
            compileUnary(n);
            break;
          case NodeKind::Update:
            compileUpdate(n);
            break;
          case NodeKind::Assign:
            compileAssign(n);
            break;
          case NodeKind::Ternary: {
            compileExpr(n->child(0));
            size_t jf = emit(Bc::JumpIfFalse, -1);
            compileExpr(n->child(1));
            size_t jend = emit(Bc::Jump, -1);
            patchJump(jf);
            compileExpr(n->child(2));
            patchJump(jend);
            break;
          }
          case NodeKind::Call:
            compileCall(n);
            break;
          case NodeKind::Member: {
            compileExpr(n->child(0));
            int t = allocTemp();
            emit(Bc::Star, t);
            emit(Bc::GetNamedProperty, t,
                 static_cast<i32>(internName(n->strVal)),
                 newSlot(SlotKind::Property));
            freeTemp();
            break;
          }
          case NodeKind::Index: {
            compileExpr(n->child(0));
            int t = allocTemp();
            emit(Bc::Star, t);
            compileExpr(n->child(1));
            emit(Bc::GetElement, t, newSlot(SlotKind::Element));
            freeTemp();
            break;
          }
          default:
            error(n, "unexpected expression node");
        }
    }

    Bc
    binaryOpcode(const std::string &op, bool &is_compare)
    {
        is_compare = false;
        if (op == "+") return Bc::Add;
        if (op == "-") return Bc::Sub;
        if (op == "*") return Bc::Mul;
        if (op == "/") return Bc::Div;
        if (op == "%") return Bc::Mod;
        if (op == "&") return Bc::BitAnd;
        if (op == "|") return Bc::BitOr;
        if (op == "^") return Bc::BitXor;
        if (op == "<<") return Bc::Shl;
        if (op == ">>") return Bc::Sar;
        if (op == ">>>") return Bc::Shr;
        is_compare = true;
        if (op == "<") return Bc::TestLess;
        if (op == "<=") return Bc::TestLessEq;
        if (op == ">") return Bc::TestGreater;
        if (op == ">=") return Bc::TestGreaterEq;
        if (op == "==") return Bc::TestEq;
        if (op == "!=") return Bc::TestNotEq;
        if (op == "===") return Bc::TestStrictEq;
        if (op == "!==") return Bc::TestStrictNotEq;
        vpanic("unknown binary operator " + op);
    }

    void
    compileBinary(const Node *n)
    {
        bool is_compare = false;
        Bc op = binaryOpcode(n->op, is_compare);
        compileExpr(n->child(0));
        int t = allocTemp();
        emit(Bc::Star, t);
        compileExpr(n->child(1));
        emit(op, t, newSlot(is_compare ? SlotKind::CompareOp
                                       : SlotKind::BinaryOp));
        freeTemp();
    }

    void
    compileUnary(const Node *n)
    {
        compileExpr(n->child(0));
        if (n->op == "-") {
            emit(Bc::Negate, newSlot(SlotKind::UnaryOp));
        } else if (n->op == "+") {
            emit(Bc::ToNumber, newSlot(SlotKind::UnaryOp));
        } else if (n->op == "!") {
            emit(Bc::LogicalNot);
        } else if (n->op == "~") {
            emit(Bc::BitNot, newSlot(SlotKind::UnaryOp));
        } else if (n->op == "typeof") {
            emit(Bc::TypeOf);
        } else {
            error(n, "unknown unary operator " + n->op);
        }
    }

    void
    compileUpdate(const Node *n)
    {
        const Node *target = n->child(0);
        Bc delta = n->op == "++" ? Bc::Inc : Bc::Dec;
        bool prefix = n->intVal != 0;

        if (target->kind == NodeKind::Ident) {
            loadVariable(target->strVal);
            if (prefix) {
                emit(delta, newSlot(SlotKind::UnaryOp));
                storeVariable(n, target->strVal);
            } else {
                int t_old = allocTemp();
                emit(Bc::Star, t_old);
                emit(delta, newSlot(SlotKind::UnaryOp));
                storeVariable(n, target->strVal);
                emit(Bc::Ldar, t_old);
                freeTemp();
            }
        } else if (target->kind == NodeKind::Member) {
            compileExpr(target->child(0));
            int t_obj = allocTemp();
            emit(Bc::Star, t_obj);
            NameId name = internName(target->strVal);
            int load_slot = newSlot(SlotKind::Property);
            int store_slot = newSlot(SlotKind::Property);
            emit(Bc::GetNamedProperty, t_obj, static_cast<i32>(name),
                 load_slot);
            int t_old = allocTemp();
            emit(Bc::Star, t_old);
            emit(delta, newSlot(SlotKind::UnaryOp));
            emit(Bc::SetNamedProperty, t_obj, static_cast<i32>(name),
                 store_slot);
            if (!prefix)
                emit(Bc::Ldar, t_old);
            freeTemp(2);
        } else if (target->kind == NodeKind::Index) {
            compileExpr(target->child(0));
            int t_obj = allocTemp();
            emit(Bc::Star, t_obj);
            compileExpr(target->child(1));
            int t_idx = allocTemp();
            emit(Bc::Star, t_idx);
            emit(Bc::Ldar, t_idx);
            emit(Bc::GetElement, t_obj, newSlot(SlotKind::Element));
            int t_old = allocTemp();
            emit(Bc::Star, t_old);
            emit(delta, newSlot(SlotKind::UnaryOp));
            emit(Bc::SetElement, t_obj, t_idx, newSlot(SlotKind::Element));
            if (!prefix)
                emit(Bc::Ldar, t_old);
            freeTemp(3);
        } else {
            error(n, "invalid update target");
        }
    }

    void
    compileAssign(const Node *n)
    {
        const Node *target = n->child(0);
        const Node *value = n->child(1);
        const std::string &op = n->op;

        auto compound_op = [&](int lhs_reg) {
            // acc currently holds the RHS; lhs is in lhs_reg.
            bool is_compare = false;
            Bc bop = binaryOpcode(op.substr(0, op.size() - 1), is_compare);
            vassert(!is_compare, "compound assignment with comparison");
            emit(bop, lhs_reg, newSlot(SlotKind::BinaryOp));
        };

        if (target->kind == NodeKind::Ident) {
            if (op == "=") {
                compileExpr(value);
            } else {
                loadVariable(target->strVal);
                int t = allocTemp();
                emit(Bc::Star, t);
                compileExpr(value);
                compound_op(t);
                freeTemp();
            }
            storeVariable(n, target->strVal);
        } else if (target->kind == NodeKind::Member) {
            compileExpr(target->child(0));
            int t_obj = allocTemp();
            emit(Bc::Star, t_obj);
            NameId name = internName(target->strVal);
            if (op == "=") {
                compileExpr(value);
            } else {
                emit(Bc::GetNamedProperty, t_obj, static_cast<i32>(name),
                     newSlot(SlotKind::Property));
                int t_cur = allocTemp();
                emit(Bc::Star, t_cur);
                compileExpr(value);
                compound_op(t_cur);
                freeTemp();
            }
            emit(Bc::SetNamedProperty, t_obj, static_cast<i32>(name),
                 newSlot(SlotKind::Property));
            freeTemp();
        } else if (target->kind == NodeKind::Index) {
            compileExpr(target->child(0));
            int t_obj = allocTemp();
            emit(Bc::Star, t_obj);
            compileExpr(target->child(1));
            int t_idx = allocTemp();
            emit(Bc::Star, t_idx);
            if (op == "=") {
                compileExpr(value);
            } else {
                emit(Bc::Ldar, t_idx);
                emit(Bc::GetElement, t_obj, newSlot(SlotKind::Element));
                int t_cur = allocTemp();
                emit(Bc::Star, t_cur);
                compileExpr(value);
                compound_op(t_cur);
                freeTemp();
            }
            emit(Bc::SetElement, t_obj, t_idx, newSlot(SlotKind::Element));
            freeTemp(2);
        } else {
            error(n, "invalid assignment target");
        }
    }

    void
    compileCall(const Node *n)
    {
        const Node *callee = n->child(0);
        int argc = static_cast<int>(n->arity()) - 1;

        if (callee->kind == NodeKind::Member) {
            // Method call: o.m(args) with `this` = o.
            int t_fn = allocTemp();
            int t_this = allocTemp();
            compileExpr(callee->child(0));
            emit(Bc::Star, t_this);
            emit(Bc::GetNamedProperty, t_this,
                 static_cast<i32>(internName(callee->strVal)),
                 newSlot(SlotKind::Property));
            emit(Bc::Star, t_fn);
            for (int i = 0; i < argc; i++) {
                int t_arg = allocTemp();
                compileExpr(n->child(static_cast<size_t>(i) + 1));
                emit(Bc::Star, t_arg);
            }
            emit(Bc::CallMethod, t_fn, t_this,
                 packCall(argc, newSlot(SlotKind::CallSite)));
            freeTemp(argc + 2);
        } else {
            int t_fn = allocTemp();
            compileExpr(callee);
            emit(Bc::Star, t_fn);
            int first_arg = nextReg;
            for (int i = 0; i < argc; i++) {
                int t_arg = allocTemp();
                compileExpr(n->child(static_cast<size_t>(i) + 1));
                emit(Bc::Star, t_arg);
            }
            emit(Bc::Call, t_fn, first_arg,
                 packCall(argc, newSlot(SlotKind::CallSite)));
            freeTemp(argc + 1);
        }
    }

    struct LoopCtx
    {
        std::vector<size_t> breaks;
        std::vector<size_t> continues;
    };

    VMContext &ctx;
    GlobalRegistry &globals;
    FunctionInfo &fn;
    bool isMain;

    std::unordered_map<std::string, int> locals;
    int nextReg = 1;
    int firstTemp = 1;
    int maxReg = 1;
    std::vector<LoopCtx> loopStack;
    /** Source position of the AST node being compiled; every emitted
     *  bytecode is stamped with it (fn.bcPositions). */
    SrcPos curPos;
};

// ---- BytecodeCompiler ----------------------------------------------------------

BytecodeCompiler::BytecodeCompiler(VMContext &c, GlobalRegistry &g,
                                   FunctionTable &f)
    : ctx(c), globals(g), functions(f)
{
}

FunctionId
BytecodeCompiler::compileProgram(const ProgramSource &prog)
{
    // Pass 1: register all functions and hoist them into global cells so
    // call sites (and `__main__`) can reference them in any order.
    std::vector<FunctionId> ids;
    for (const auto &src : prog.functions) {
        FunctionInfo &fn = functions.create(src.name);
        ids.push_back(fn.id);
        fn.cellAddr = ctx.newFunctionCell(fn.id);
        u32 cell = globals.indexOf(src.name);
        globals.store(cell, Value::heap(fn.cellAddr));
    }

    // Pass 2: compile bodies.
    for (size_t i = 0; i < prog.functions.size(); i++) {
        const auto &src = prog.functions[i];
        FunctionInfo &fn = functions.at(ids[i]);
        std::vector<const Node *> stmts;
        for (const auto &s : src.body->children)
            stmts.push_back(s.get());
        FunctionCompiler fc(*this, fn, false);
        fc.compileBody(src.params, stmts);
    }

    // Pass 3: __main__ from top-level statements.
    FunctionInfo &main_fn = functions.create("__main__");
    std::vector<const Node *> stmts;
    for (const auto &s : prog.topLevel)
        stmts.push_back(s.get());
    FunctionCompiler fc(*this, main_fn, true);
    fc.compileBody({}, stmts);
    return main_fn.id;
}

} // namespace vspec
