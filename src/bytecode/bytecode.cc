#include "bytecode/bytecode.hh"

#include <cstdio>

namespace vspec
{

const char *
bcName(Bc op)
{
    switch (op) {
      case Bc::LdaSmi: return "LdaSmi";
      case Bc::LdaConst: return "LdaConst";
      case Bc::LdaUndefined: return "LdaUndefined";
      case Bc::LdaNull: return "LdaNull";
      case Bc::LdaTrue: return "LdaTrue";
      case Bc::LdaFalse: return "LdaFalse";
      case Bc::LdaGlobal: return "LdaGlobal";
      case Bc::StaGlobal: return "StaGlobal";
      case Bc::Ldar: return "Ldar";
      case Bc::Star: return "Star";
      case Bc::Mov: return "Mov";
      case Bc::Add: return "Add";
      case Bc::Sub: return "Sub";
      case Bc::Mul: return "Mul";
      case Bc::Div: return "Div";
      case Bc::Mod: return "Mod";
      case Bc::BitAnd: return "BitAnd";
      case Bc::BitOr: return "BitOr";
      case Bc::BitXor: return "BitXor";
      case Bc::Shl: return "Shl";
      case Bc::Sar: return "Sar";
      case Bc::Shr: return "Shr";
      case Bc::Inc: return "Inc";
      case Bc::Dec: return "Dec";
      case Bc::Negate: return "Negate";
      case Bc::BitNot: return "BitNot";
      case Bc::LogicalNot: return "LogicalNot";
      case Bc::TypeOf: return "TypeOf";
      case Bc::ToNumber: return "ToNumber";
      case Bc::TestLess: return "TestLess";
      case Bc::TestLessEq: return "TestLessEq";
      case Bc::TestGreater: return "TestGreater";
      case Bc::TestGreaterEq: return "TestGreaterEq";
      case Bc::TestEq: return "TestEq";
      case Bc::TestNotEq: return "TestNotEq";
      case Bc::TestStrictEq: return "TestStrictEq";
      case Bc::TestStrictNotEq: return "TestStrictNotEq";
      case Bc::Jump: return "Jump";
      case Bc::JumpIfFalse: return "JumpIfFalse";
      case Bc::JumpIfTrue: return "JumpIfTrue";
      case Bc::JumpLoop: return "JumpLoop";
      case Bc::GetNamedProperty: return "GetNamedProperty";
      case Bc::SetNamedProperty: return "SetNamedProperty";
      case Bc::GetElement: return "GetElement";
      case Bc::SetElement: return "SetElement";
      case Bc::CreateArray: return "CreateArray";
      case Bc::CreateObject: return "CreateObject";
      case Bc::StaArrayLiteral: return "StaArrayLiteral";
      case Bc::StaNamedOwn: return "StaNamedOwn";
      case Bc::Call: return "Call";
      case Bc::CallMethod: return "CallMethod";
      case Bc::Return: return "Return";
    }
    return "?";
}

const char *
builtinName(BuiltinId id)
{
    switch (id) {
      case BuiltinId::None: return "none";
      case BuiltinId::Print: return "print";
      case BuiltinId::MathFloor: return "Math.floor";
      case BuiltinId::MathCeil: return "Math.ceil";
      case BuiltinId::MathAbs: return "Math.abs";
      case BuiltinId::MathSqrt: return "Math.sqrt";
      case BuiltinId::MathMin: return "Math.min";
      case BuiltinId::MathMax: return "Math.max";
      case BuiltinId::MathPow: return "Math.pow";
      case BuiltinId::MathSin: return "Math.sin";
      case BuiltinId::MathCos: return "Math.cos";
      case BuiltinId::MathExp: return "Math.exp";
      case BuiltinId::MathLog: return "Math.log";
      case BuiltinId::MathAtan2: return "Math.atan2";
      case BuiltinId::MathRandom: return "Math.random";
      case BuiltinId::MathRound: return "Math.round";
      case BuiltinId::StringCharCodeAt: return "String.charCodeAt";
      case BuiltinId::StringCharAt: return "String.charAt";
      case BuiltinId::StringSubstring: return "String.substring";
      case BuiltinId::StringIndexOf: return "String.indexOf";
      case BuiltinId::StringSplit: return "String.split";
      case BuiltinId::StringFromCharCode: return "String.fromCharCode";
      case BuiltinId::ArrayPush: return "Array.push";
      case BuiltinId::ArrayPop: return "Array.pop";
      case BuiltinId::ArrayJoin: return "Array.join";
      case BuiltinId::ArrayIndexOf: return "Array.indexOf";
      case BuiltinId::ParseInt: return "parseInt";
      case BuiltinId::ParseFloat: return "parseFloat";
      case BuiltinId::ReTest: return "reTest";
      case BuiltinId::ReCount: return "reCount";
      case BuiltinId::ReReplace: return "reReplace";
    }
    return "?";
}

std::string
FunctionInfo::disassemble(const VMContext &ctx) const
{
    std::string out;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "function %s (params=%u regs=%u)\n",
                  name.c_str(), paramCount, registerCount);
    out += buf;
    for (size_t i = 0; i < bytecode.size(); i++) {
        const BcInstr &ins = bytecode[i];
        std::snprintf(buf, sizeof(buf), "%4zu: %-18s a=%-5d b=%-5d c=%-5d",
                      i, bcName(ins.op), ins.a, ins.b, ins.c);
        out += buf;
        if (ins.op == Bc::LdaConst && static_cast<size_t>(ins.a)
            < constants.size()) {
            out += "   ; " + ctx.display(constants[ins.a]);
        }
        out += "\n";
    }
    return out;
}

} // namespace vspec
