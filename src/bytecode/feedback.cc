#include "bytecode/feedback.hh"

namespace vspec
{

OperandFeedback
joinOperand(OperandFeedback a, OperandFeedback b)
{
    if (a == b)
        return a;
    if (a == OperandFeedback::None)
        return b;
    if (b == OperandFeedback::None)
        return a;
    // Smi and Number join to Number; anything else joins to Any.
    auto numeric = [](OperandFeedback f) {
        return f == OperandFeedback::Smi || f == OperandFeedback::Number;
    };
    if (numeric(a) && numeric(b))
        return OperandFeedback::Number;
    return OperandFeedback::Any;
}

const char *
operandFeedbackName(OperandFeedback f)
{
    switch (f) {
      case OperandFeedback::None: return "none";
      case OperandFeedback::Smi: return "smi";
      case OperandFeedback::Number: return "number";
      case OperandFeedback::String: return "string";
      case OperandFeedback::Any: return "any";
    }
    return "?";
}

void
PropertyFeedback::recordMapSlot(MapId map, int slot_index, MapId transition)
{
    for (auto &e : entries) {
        if (e.map == map && e.transition == transition) {
            e.slotIndex = slot_index;
            return;
        }
    }
    if (entries.size() >= kMaxPolymorphic) {
        state = State::Megamorphic;
        entries.clear();
        return;
    }
    entries.push_back({map, slot_index, transition});
    state = entries.size() == 1 ? State::Monomorphic : State::Polymorphic;
}

void
ElementFeedback::recordAccess(MapId map, ElementKind k)
{
    if (state == State::None) {
        state = State::Typed;
        arrayMap = map;
        kind = k;
        return;
    }
    if (state == State::Typed && arrayMap != map)
        state = State::Megamorphic;
}

void
CallFeedback::recordTarget(u32 function_id)
{
    if (state == State::None) {
        state = State::Monomorphic;
        target = function_id;
    } else if (state == State::Monomorphic && target != function_id) {
        state = State::Megamorphic;
    }
}

int
FeedbackVector::addSlot(SlotKind kind)
{
    FeedbackSlot slot;
    slot.kind = kind;
    slots.push_back(std::move(slot));
    return static_cast<int>(slots.size()) - 1;
}

bool
FeedbackVector::hasAnyFeedback() const
{
    for (const auto &s : slots) {
        switch (s.kind) {
          case SlotKind::BinaryOp:
          case SlotKind::CompareOp:
          case SlotKind::UnaryOp:
            if (s.operands != OperandFeedback::None)
                return true;
            break;
          case SlotKind::Property:
            if (s.property.state != PropertyFeedback::State::None
                || s.property.sawArrayLength || s.property.sawStringLength)
                return true;
            break;
          case SlotKind::Element:
            if (s.element.state != ElementFeedback::State::None)
                return true;
            break;
          case SlotKind::CallSite:
            if (s.call.state != CallFeedback::State::None)
                return true;
            break;
          case SlotKind::Global:
            if (s.global.loaded)
                return true;
            break;
        }
    }
    return false;
}

void
FeedbackVector::reset()
{
    for (auto &s : slots) {
        SlotKind k = s.kind;
        s = FeedbackSlot();
        s.kind = k;
    }
}

} // namespace vspec
