#include "ir/absint.hh"

#include <algorithm>
#include <deque>

namespace vspec
{

// --------------------------------------------------------------------
// Lattice algebra
// --------------------------------------------------------------------

TagFact
joinTag(TagFact a, TagFact b)
{
    if (a == TagFact::Bottom)
        return b;
    if (b == TagFact::Bottom)
        return a;
    return a == b ? a : TagFact::Top;
}

TagFact
meetTag(TagFact a, TagFact b)
{
    if (a == TagFact::Top)
        return b;
    if (b == TagFact::Top)
        return a;
    return a == b ? a : TagFact::Bottom;
}

RangeFact
joinRange(const RangeFact &a, const RangeFact &b)
{
    if (a.isBottom())
        return b;
    if (b.isBottom())
        return a;
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

RangeFact
meetRange(const RangeFact &a, const RangeFact &b)
{
    RangeFact r{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
    return r.isBottom() ? RangeFact::bottom() : r;
}

RangeFact
widenRange(const RangeFact &prev, const RangeFact &next)
{
    if (prev.isBottom())
        return next;
    if (next.isBottom())
        return prev;
    RangeFact r;
    r.lo = next.lo < prev.lo ? RangeFact::kMin : prev.lo;
    r.hi = next.hi > prev.hi ? RangeFact::kMax : prev.hi;
    return r;
}

MapFact
joinMaps(const MapFact &a, const MapFact &b)
{
    if (a.top || b.top)
        return MapFact::topFact();
    MapFact r;
    r.top = false;
    std::set_union(a.maps.begin(), a.maps.end(), b.maps.begin(),
                   b.maps.end(), std::back_inserter(r.maps));
    return r;
}

MapFact
meetMaps(const MapFact &a, const MapFact &b)
{
    if (a.top)
        return b;
    if (b.top)
        return a;
    MapFact r;
    r.top = false;
    std::set_intersection(a.maps.begin(), a.maps.end(), b.maps.begin(),
                          b.maps.end(), std::back_inserter(r.maps));
    return r;
}

ConstFact
joinConst(const ConstFact &a, const ConstFact &b)
{
    if (a.isBottom())
        return b;
    if (b.isBottom())
        return a;
    if (a.isKnown() && b.isKnown() && a.bits == b.bits)
        return a;
    return ConstFact::top();
}

ConstFact
meetConst(const ConstFact &a, const ConstFact &b)
{
    if (a.isTop())
        return b;
    if (b.isTop())
        return a;
    if (a.isKnown() && b.isKnown() && a.bits == b.bits)
        return a;
    return ConstFact::bottom();
}

AbsValue
joinValue(const AbsValue &a, const AbsValue &b)
{
    AbsValue r;
    r.tag = joinTag(a.tag, b.tag);
    r.maps = joinMaps(a.maps, b.maps);
    r.range = joinRange(a.range, b.range);
    r.cst = joinConst(a.cst, b.cst);
    return r;
}

AbsValue
meetValue(const AbsValue &a, const AbsValue &b)
{
    AbsValue r;
    r.tag = meetTag(a.tag, b.tag);
    r.maps = meetMaps(a.maps, b.maps);
    r.range = meetRange(a.range, b.range);
    r.cst = meetConst(a.cst, b.cst);
    return r;
}

AbsValue
widenValue(const AbsValue &prev, const AbsValue &next)
{
    AbsValue r;
    r.tag = joinTag(prev.tag, next.tag);
    r.maps = joinMaps(prev.maps, next.maps);
    r.range = widenRange(prev.range, next.range);
    r.cst = joinConst(prev.cst, next.cst);
    return r;
}

namespace
{

/** ⊥ for the optimistic structural fixpoint (unvisited values). */
AbsValue
bottomValue()
{
    AbsValue v;
    v.tag = TagFact::Bottom;
    v.maps = MapFact::bottomFact();
    v.range = RangeFact::bottom();
    v.cst = ConstFact::bottom();
    return v;
}

RangeFact
addRanges(const RangeFact &a, const RangeFact &b)
{
    if (a.isBottom() || b.isBottom())
        return RangeFact::bottom();
    return {a.lo + b.lo, a.hi + b.hi};
}

RangeFact
subRanges(const RangeFact &a, const RangeFact &b)
{
    if (a.isBottom() || b.isBottom())
        return RangeFact::bottom();
    return {a.lo - b.hi, a.hi - b.lo};
}

RangeFact
mulRanges(const RangeFact &a, const RangeFact &b)
{
    if (a.isBottom() || b.isBottom())
        return RangeFact::bottom();
    i64 p0 = a.lo * b.lo, p1 = a.lo * b.hi;
    i64 p2 = a.hi * b.lo, p3 = a.hi * b.hi;
    return {std::min(std::min(p0, p1), std::min(p2, p3)),
            std::max(std::max(p0, p1), std::max(p2, p3))};
}

/** Checked arithmetic deopts instead of producing out-of-SMI results;
 *  unchecked arithmetic wraps, so an interval that escapes i32 is ⊤. */
RangeFact
clampArith(const RangeFact &r, bool checked)
{
    if (checked)
        return meetRange(r, RangeFact::smi());
    if (r.isBottom() || (r.lo >= RangeFact::kMin && r.hi <= RangeFact::kMax))
        return r;
    return RangeFact::top();
}

Cond
negateCond(Cond c)
{
    switch (c) {
      case Cond::Eq: return Cond::Ne;
      case Cond::Ne: return Cond::Eq;
      case Cond::Lt: return Cond::Ge;
      case Cond::Ge: return Cond::Lt;
      case Cond::Le: return Cond::Gt;
      case Cond::Gt: return Cond::Le;
      case Cond::Lo: return Cond::Hs;
      case Cond::Hs: return Cond::Lo;
      case Cond::Ls: return Cond::Hi;
      case Cond::Hi: return Cond::Ls;
      default: return Cond::Al; // no refinement for the rest
    }
}

Refinement
joinRefinement(const Refinement &a, const Refinement &b)
{
    Refinement r;
    if (a.tagOrigin != kNoValue && a.tagOrigin == b.tagOrigin) {
        r.tag = joinTag(a.tag, b.tag);
        r.tagOrigin = r.tag == TagFact::Top ? kNoValue : a.tagOrigin;
        if (r.tagOrigin == kNoValue)
            r.tag = TagFact::Top;
    }
    if (a.mapOrigin != kNoValue && a.mapOrigin == b.mapOrigin) {
        r.maps = joinMaps(a.maps, b.maps);
        r.mapOrigin = r.maps.isTop() ? kNoValue : a.mapOrigin;
        if (r.mapOrigin == kNoValue)
            r.maps = MapFact::topFact();
    }
    if (a.rangeOrigin != kNoValue && a.rangeOrigin == b.rangeOrigin) {
        r.range = joinRange(a.range, b.range);
        r.rangeOrigin = r.range.isTop() ? kNoValue : a.rangeOrigin;
        if (r.rangeOrigin == kNoValue)
            r.range = RangeFact::top();
    }
    if (a.cstOrigin != kNoValue && a.cstOrigin == b.cstOrigin) {
        r.cst = joinConst(a.cst, b.cst);
        r.cstOrigin = r.cst.isKnown() ? a.cstOrigin : kNoValue;
        if (r.cstOrigin == kNoValue)
            r.cst = ConstFact::top();
    }
    if (a.sameAs != kNoValue && a.sameAs == b.sameAs
        && a.sameOrigin == b.sameOrigin) {
        r.sameAs = a.sameAs;
        r.sameOrigin = a.sameOrigin;
    }
    return r;
}

} // namespace

AbsState
joinState(const AbsState &a, const AbsState &b)
{
    AbsState out;
    for (const auto &[key, ra] : a.refine) {
        auto it = b.refine.find(key);
        if (it == b.refine.end())
            continue;
        Refinement j = joinRefinement(ra, it->second);
        if (!j.isTop())
            out.refine.emplace(key, std::move(j));
    }
    for (const auto &[key, check] : a.boundsPassed) {
        auto it = b.boundsPassed.find(key);
        if (it != b.boundsPassed.end() && it->second == check)
            out.boundsPassed.emplace(key, check);
    }
    for (const auto &[key, load] : a.availLoads) {
        auto it = b.availLoads.find(key);
        if (it != b.availLoads.end() && it->second == load)
            out.availLoads.emplace(key, load);
    }
    return out;
}

// --------------------------------------------------------------------
// AbsInterpreter
// --------------------------------------------------------------------

AbsInterpreter::AbsInterpreter(const Graph &g) : g_(g), dom_(g) {}

void
AbsInterpreter::run()
{
    computeStructural();
    runFlow();
}

const AbsState &
AbsInterpreter::entryState(BlockId b) const
{
    if (b < entry_.size() && seeded_[b])
        return entry_[b];
    return empty_;
}

bool
AbsInterpreter::blockReachable(BlockId b) const
{
    return dom_.reachable(b);
}

ValueId
AbsInterpreter::underlying(ValueId v) const
{
    for (int guard = 0; guard < 64; guard++) {
        const IrNode &n = g_.node(v);
        if (n.dead && !n.inputs.empty()) {
            v = n.inputs[0]; // dead passthrough (short-circuited check)
            continue;
        }
        if (!n.dead && n.isCheck()) {
            v = n.inputs[0]; // live check: value passthrough
            continue;
        }
        break;
    }
    return v;
}

ValueId
AbsInterpreter::canon(const AbsState &s, ValueId v) const
{
    ValueId u = underlying(v);
    for (int guard = 0; guard < 16; guard++) {
        auto it = s.refine.find(u);
        if (it == s.refine.end() || it->second.sameAs == kNoValue)
            break;
        u = underlying(it->second.sameAs);
    }
    return u;
}

// ----- phase 1: structural facts ------------------------------------

AbsValue
AbsInterpreter::structuralOf(ValueId id) const
{
    const IrNode &n = g_.node(id);
    // Read an input's fact through dead passthroughs (but not through
    // live checks — a check node's own sval carries its constraint).
    auto in = [&](size_t i) -> const AbsValue & {
        ValueId v = n.inputs.at(i);
        for (int guard = 0; guard < 64; guard++) {
            const IrNode &d = g_.node(v);
            if (!d.dead || d.inputs.empty())
                break;
            v = d.inputs[0];
        }
        return sval_[v];
    };
    auto inNode = [&](size_t i) -> const IrNode & {
        ValueId v = n.inputs.at(i);
        for (int guard = 0; guard < 64; guard++) {
            const IrNode &d = g_.node(v);
            if (!d.dead || d.inputs.empty())
                break;
            v = d.inputs[0];
        }
        return g_.node(v);
    };

    AbsValue r;
    switch (n.op) {
      case IrOp::ConstI32:
        r.range = RangeFact::constant(n.imm);
        break;
      case IrOp::ConstTagged: {
        r.cst = ConstFact::known(n.imm);
        bool smi = (n.imm & 1) == 0;
        r.tag = smi ? TagFact::Smi : TagFact::Heap;
        if (smi)
            r.range = RangeFact::constant(static_cast<i32>(n.imm) >> 1);
        break;
      }
      case IrOp::Phi: {
        AbsValue acc = bottomValue();
        for (size_t i = 0; i < n.inputs.size(); i++)
            acc = joinValue(acc, in(i));
        r = acc;
        break;
      }
      case IrOp::I32Add:
        r.range = clampArith(addRanges(in(0).range, in(1).range),
                             n.checked);
        break;
      case IrOp::I32Sub:
        r.range = clampArith(subRanges(in(0).range, in(1).range),
                             n.checked);
        break;
      case IrOp::I32Mul:
        r.range = clampArith(mulRanges(in(0).range, in(1).range),
                             n.checked);
        break;
      case IrOp::I32Div:
      case IrOp::I32Shl:
        if (n.checked)
            r.range = RangeFact::smi();
        break;
      case IrOp::I32Mod: {
        const RangeFact &rhs = in(1).range;
        if (rhs.isConstant() && rhs.lo > 0) {
            i64 m = rhs.lo - 1;
            r.range = in(0).range.lo >= 0 ? RangeFact::of(0, m)
                                          : RangeFact::of(-m, m);
        }
        if (n.checked)
            r.range = meetRange(r.range, RangeFact::smi());
        break;
      }
      case IrOp::I32Neg: {
        const RangeFact &a = in(0).range;
        if (!a.isBottom())
            r.range = clampArith(RangeFact::of(-a.hi, -a.lo), n.checked);
        else if (n.checked)
            r.range = RangeFact::smi();
        break;
      }
      case IrOp::I32And: {
        const RangeFact &a = in(0).range;
        const RangeFact &b = in(1).range;
        if (b.isConstant() && b.lo >= 0)
            r.range = RangeFact::of(0, b.lo);
        else if (a.isConstant() && a.lo >= 0)
            r.range = RangeFact::of(0, a.lo);
        else if (!a.isBottom() && !b.isBottom() && a.lo >= 0 && b.lo >= 0)
            r.range = RangeFact::of(0, std::min(a.hi, b.hi));
        break;
      }
      case IrOp::I32Sar: {
        const RangeFact &a = in(0).range;
        const RangeFact &k = in(1).range;
        if (!a.isBottom() && a.lo >= 0 && k.isConstant() && k.lo >= 0
            && k.lo <= 31)
            r.range = RangeFact::of(a.lo >> k.lo, a.hi >> k.lo);
        break;
      }
      case IrOp::I32Shr: {
        const RangeFact &k = in(1).range;
        if (k.isConstant() && k.lo >= 1 && k.lo <= 31)
            r.range = RangeFact::of(0, 0xffffffffll >> k.lo);
        break;
      }
      case IrOp::I32Compare:
      case IrOp::F64Compare:
      case IrOp::TaggedEqual:
      case IrOp::F64ToBool:
      case IrOp::I32ToBool:
      case IrOp::BoolNot:
      case IrOp::ToBooleanOp:
        r.range = RangeFact::of(0, 1);
        break;
      case IrOp::TagSmi:
        r.tag = TagFact::Smi;
        r.range = meetRange(in(0).range, RangeFact::smi());
        break;
      case IrOp::UntagSmi:
        r.range = meetRange(in(0).range, RangeFact::smi());
        break;
      case IrOp::LoadFieldSmiUntag:
      case IrOp::LoadElemSmiUntag:
        r.range = RangeFact::smi();
        break;
      case IrOp::CheckSmi:
        r = in(0);
        r.tag = meetTag(r.tag, TagFact::Smi);
        r.range = meetRange(r.range, RangeFact::smi());
        r.maps = MapFact::topFact(); // map facts are never structural
        break;
      case IrOp::CheckHeapObject:
      case IrOp::CheckMap:
        r = in(0);
        r.tag = meetTag(r.tag, TagFact::Heap);
        r.maps = MapFact::topFact();
        break;
      case IrOp::CheckValue: {
        r = in(0);
        r.cst = meetConst(r.cst, ConstFact::known(n.imm));
        bool smi = (n.imm & 1) == 0;
        r.tag = meetTag(r.tag, smi ? TagFact::Smi : TagFact::Heap);
        if (smi)
            r.range = meetRange(
                r.range,
                RangeFact::constant(static_cast<i32>(n.imm) >> 1));
        r.maps = MapFact::topFact();
        break;
      }
      case IrOp::CheckBounds:
        r = in(0);
        r.range = meetRange(r.range, RangeFact::of(0, RangeFact::kMax));
        r.maps = MapFact::topFact();
        break;
      default:
        (void)inNode;
        break; // fresh sources and everything else: ⊤
    }
    return r;
}

void
AbsInterpreter::computeStructural()
{
    size_t n = g_.nodes.size();
    sval_.assign(n, bottomValue());
    // Optimistic ascending fixpoint; only phi back-edge inputs create
    // forward references. Widening from round 4 forces induction
    // variable ranges to stabilize while keeping stable bounds.
    size_t cap = n + 16;
    bool changed = true;
    for (size_t round = 1; changed && round <= cap; round++) {
        changed = false;
        for (ValueId id = 0; id < n; id++) {
            AbsValue next = structuralOf(id);
            if (g_.node(id).op == IrOp::Phi) {
                next = joinValue(sval_[id], next);
                if (round >= 4)
                    next = widenValue(sval_[id], next);
            }
            if (!(next == sval_[id])) {
                sval_[id] = next;
                changed = true;
            }
        }
    }
    if (changed) {
        // Belt and braces: the cap fired; flatten phis and settle once.
        for (ValueId id = 0; id < n; id++)
            if (g_.node(id).op == IrOp::Phi)
                sval_[id] = AbsValue::top();
        for (ValueId id = 0; id < n; id++)
            if (g_.node(id).op != IrOp::Phi)
                sval_[id] = structuralOf(id);
    }
}

// ----- phase 2: flow-sensitive refinements --------------------------

void
AbsInterpreter::setTag(AbsState &s, ValueId key, TagFact t,
                       ValueId origin) const
{
    Refinement &r = s.refine[key];
    TagFact nt = meetTag(r.tag, t);
    if (nt != r.tag) {
        r.tag = nt;
        r.tagOrigin = origin;
    }
}

void
AbsInterpreter::meetRangeAt(AbsState &s, ValueId key, const RangeFact &rr,
                            ValueId origin) const
{
    // Only record a refinement when it tightens the effective range —
    // keeps premises minimal (structural facts need no premise).
    RangeFact structural =
        key < sval_.size() ? sval_[key].range : RangeFact::top();
    auto it = s.refine.find(key);
    RangeFact current = structural;
    if (it != s.refine.end())
        current = meetRange(current, it->second.range);
    RangeFact target = meetRange(current, rr);
    if (target == current)
        return;
    Refinement &r = s.refine[key];
    r.range = meetRange(r.range, rr);
    r.rangeOrigin = origin;
}

void
AbsInterpreter::killMapFacts(AbsState &s) const
{
    for (auto it = s.refine.begin(); it != s.refine.end();) {
        if (!it->second.maps.isTop()) {
            it->second.maps = MapFact::topFact();
            it->second.mapOrigin = kNoValue;
        }
        if (it->second.isTop())
            it = s.refine.erase(it);
        else
            ++it;
    }
}

void
AbsInterpreter::transfer(AbsState &s, ValueId id) const
{
    const IrNode &n = g_.node(id);
    if (n.dead)
        return;
    switch (n.op) {
      case IrOp::CheckSmi: {
        ValueId key = canon(s, n.inputs[0]);
        setTag(s, key, TagFact::Smi, id);
        meetRangeAt(s, key, RangeFact::smi(), id);
        break;
      }
      case IrOp::CheckHeapObject:
        setTag(s, canon(s, n.inputs[0]), TagFact::Heap, id);
        break;
      case IrOp::CheckMap: {
        ValueId key = canon(s, n.inputs[0]);
        setTag(s, key, TagFact::Heap, id);
        Refinement &r = s.refine[key];
        r.maps = MapFact::exactly(static_cast<u32>(n.imm));
        r.mapOrigin = id;
        break;
      }
      case IrOp::CheckValue: {
        ValueId key = canon(s, n.inputs[0]);
        bool smi = (n.imm & 1) == 0;
        setTag(s, key, smi ? TagFact::Smi : TagFact::Heap, id);
        Refinement &r = s.refine[key];
        r.cst = meetConst(r.cst, ConstFact::known(n.imm));
        r.cstOrigin = id;
        if (smi)
            meetRangeAt(
                s, key,
                RangeFact::constant(static_cast<i32>(n.imm) >> 1), id);
        break;
      }
      case IrOp::CheckBounds: {
        ValueId ci = canon(s, n.inputs[0]);
        ValueId cl = canon(s, n.inputs[1]);
        s.boundsPassed[{ci, cl}] = id;
        // 0 <= index < length: refine both sides (value-based facts).
        RangeFact rl = query(s, cl).fact.range;
        i64 hi = rl.isBottom() ? RangeFact::kMax - 1 : rl.hi - 1;
        meetRangeAt(s, ci, RangeFact::of(0, hi), id);
        RangeFact ri = query(s, ci).fact.range;
        i64 lo = ri.isBottom() ? 1 : std::max<i64>(ri.lo, 0) + 1;
        meetRangeAt(s, cl, RangeFact::of(lo, RangeFact::kMax), id);
        break;
      }
      case IrOp::LoadField:
      case IrOp::LoadFieldRaw:
      case IrOp::LoadGlobal:
      case IrOp::LoadElem32:
      case IrOp::LoadElemF64:
      case IrOp::LoadFieldSmiUntag:
      case IrOp::LoadElemSmiUntag: {
        ValueId in0 =
            n.inputs.size() > 0 ? canon(s, n.inputs[0]) : kNoValue;
        ValueId in1 =
            n.inputs.size() > 1 ? canon(s, n.inputs[1]) : kNoValue;
        auto key = std::make_tuple(static_cast<u8>(n.op), in0, in1, n.imm);
        auto it = s.availLoads.find(key);
        if (it != s.availLoads.end() && it->second != id) {
            // Same location, no intervening clobber: same value. Once
            // true on every path here, it is true forever (SSA values
            // are immutable), so it is safe to use as an equivalence.
            Refinement &r = s.refine[id];
            r.sameAs = it->second;
            r.sameOrigin = id;
        } else {
            s.availLoads[key] = id;
        }
        break;
      }
      case IrOp::StoreField:
      case IrOp::StoreFieldRaw:
      case IrOp::StoreElem32:
      case IrOp::StoreElemF64:
      case IrOp::StoreGlobal:
        s.availLoads.clear();
        killMapFacts(s);
        break;
      case IrOp::CallRuntime:
      case IrOp::CallFunction:
        // Calls can run arbitrary code: clobber memory facts. Value-
        // based facts (tag/range/const/bounds pairs) survive.
        s.availLoads.clear();
        killMapFacts(s);
        break;
      default:
        break;
    }
}

FactQuery
AbsInterpreter::query(const AbsState &s, ValueId v) const
{
    FactQuery q;
    ValueId u = underlying(v);
    for (int guard = 0; guard < 16; guard++) {
        const AbsValue &sv = sval_[u];
        TagFact nt = meetTag(q.fact.tag, sv.tag);
        if (nt != q.fact.tag) {
            q.fact.tag = nt;
            q.tagPremise = u;
        }
        RangeFact nr = meetRange(q.fact.range, sv.range);
        if (!(nr == q.fact.range)) {
            q.fact.range = nr;
            q.rangePremise = u;
        }
        ConstFact nc = meetConst(q.fact.cst, sv.cst);
        if (!(nc == q.fact.cst)) {
            q.fact.cst = nc;
            q.cstPremise = u;
        }

        auto it = s.refine.find(u);
        if (it == s.refine.end())
            break;
        const Refinement &r = it->second;
        nt = meetTag(q.fact.tag, r.tag);
        if (nt != q.fact.tag) {
            q.fact.tag = nt;
            q.tagPremise = r.tagOrigin;
        }
        MapFact nm = meetMaps(q.fact.maps, r.maps);
        if (!(nm == q.fact.maps)) {
            q.fact.maps = nm;
            q.mapPremise = r.mapOrigin;
        }
        nr = meetRange(q.fact.range, r.range);
        if (!(nr == q.fact.range)) {
            q.fact.range = nr;
            q.rangePremise = r.rangeOrigin;
        }
        nc = meetConst(q.fact.cst, r.cst);
        if (!(nc == q.fact.cst)) {
            q.fact.cst = nc;
            q.cstPremise = r.cstOrigin;
        }
        if (r.sameAs == kNoValue)
            break;
        q.chainPremises.push_back(r.sameOrigin);
        u = underlying(r.sameAs);
    }
    return q;
}

void
AbsInterpreter::applyCompare(AbsState &s, ValueId cmpId, bool holds) const
{
    const IrNode &n = g_.node(cmpId);
    Cond c = holds ? n.cond : negateCond(n.cond);
    ValueId ca = canon(s, n.inputs[0]);
    ValueId cb = canon(s, n.inputs[1]);
    RangeFact ra = query(s, ca).fact.range;
    RangeFact rb = query(s, cb).fact.range;
    if (ra.isBottom() || rb.isBottom())
        return;
    switch (c) {
      case Cond::Lt:
        meetRangeAt(s, ca, RangeFact::of(RangeFact::kMin, rb.hi - 1),
                    cmpId);
        meetRangeAt(s, cb, RangeFact::of(ra.lo + 1, RangeFact::kMax),
                    cmpId);
        break;
      case Cond::Le:
        meetRangeAt(s, ca, RangeFact::of(RangeFact::kMin, rb.hi), cmpId);
        meetRangeAt(s, cb, RangeFact::of(ra.lo, RangeFact::kMax), cmpId);
        break;
      case Cond::Gt:
        meetRangeAt(s, ca, RangeFact::of(rb.lo + 1, RangeFact::kMax),
                    cmpId);
        meetRangeAt(s, cb, RangeFact::of(RangeFact::kMin, ra.hi - 1),
                    cmpId);
        break;
      case Cond::Ge:
        meetRangeAt(s, ca, RangeFact::of(rb.lo, RangeFact::kMax), cmpId);
        meetRangeAt(s, cb, RangeFact::of(RangeFact::kMin, ra.hi), cmpId);
        break;
      case Cond::Eq:
        meetRangeAt(s, ca, rb, cmpId);
        meetRangeAt(s, cb, ra, cmpId);
        break;
      case Cond::Lo:
        // a <u b with b provably non-negative implies 0 <= a < b.
        if (rb.lo >= 0)
            meetRangeAt(s, ca, RangeFact::of(0, rb.hi - 1), cmpId);
        break;
      default:
        break;
    }
}

void
AbsInterpreter::refineEdge(AbsState &s, BlockId from, bool takenTrue) const
{
    const BasicBlock &blk = g_.block(from);
    if (blk.nodes.empty())
        return;
    const IrNode &term = g_.node(blk.nodes.back());
    if (term.op != IrOp::Branch || term.inputs.empty())
        return;
    ValueId c = term.inputs[0];
    bool sense = takenTrue;
    for (int guard = 0; guard < 16; guard++) {
        const IrNode &cn = g_.node(c);
        if (cn.dead && !cn.inputs.empty()) {
            c = cn.inputs[0];
            continue;
        }
        if (!cn.dead && cn.op == IrOp::BoolNot) {
            sense = !sense;
            c = cn.inputs[0];
            continue;
        }
        break;
    }
    const IrNode &cn = g_.node(c);
    if (!cn.dead && cn.op == IrOp::I32Compare)
        applyCompare(s, c, sense);
}

void
AbsInterpreter::runFlow()
{
    size_t nblocks = g_.blocks.size();
    entry_.assign(nblocks, AbsState{});
    seeded_.assign(nblocks, false);
    if (nblocks == 0)
        return;
    seeded_[0] = true;

    std::deque<BlockId> wl;
    std::vector<bool> queued(nblocks, false);
    wl.push_back(0);
    queued[0] = true;

    u64 pops = 0;
    u64 cap = 64 * static_cast<u64>(nblocks) + 256;
    while (!wl.empty()) {
        if (++pops > cap) {
            converged_ = false;
            break;
        }
        BlockId b = wl.front();
        wl.pop_front();
        queued[b] = false;

        AbsState s = entry_[b];
        const BasicBlock &blk = g_.block(b);
        for (ValueId id : blk.nodes)
            transfer(s, id);

        auto flowTo = [&](BlockId succ, const AbsState &es) {
            if (succ == kNoBlock)
                return;
            if (!seeded_[succ]) {
                seeded_[succ] = true;
                entry_[succ] = es;
            } else {
                AbsState joined = joinState(entry_[succ], es);
                if (joined == entry_[succ])
                    return;
                entry_[succ] = std::move(joined);
            }
            if (!queued[succ]) {
                queued[succ] = true;
                wl.push_back(succ);
            }
        };

        if (blk.succFalse != kNoBlock) {
            AbsState t = s;
            refineEdge(t, b, true);
            flowTo(blk.succTrue, t);
            AbsState f = std::move(s);
            refineEdge(f, b, false);
            flowTo(blk.succFalse, f);
        } else {
            flowTo(blk.succTrue, s);
        }
    }

    if (!converged_) {
        // Sound fallback: forget every refinement; structural facts
        // (which always converge) remain available.
        for (BlockId b = 0; b < nblocks; b++)
            entry_[b] = AbsState{};
    }
}

} // namespace vspec
