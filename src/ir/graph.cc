#include "ir/graph.hh"

#include <cstdio>

namespace vspec
{

const char *
repName(Rep r)
{
    switch (r) {
      case Rep::Tagged: return "tagged";
      case Rep::Int32: return "int32";
      case Rep::Float64: return "float64";
      case Rep::Bool: return "bool";
      case Rep::None: return "none";
    }
    return "?";
}

const char *
irOpName(IrOp op)
{
    switch (op) {
      case IrOp::Param: return "Param";
      case IrOp::ConstI32: return "ConstI32";
      case IrOp::ConstTagged: return "ConstTagged";
      case IrOp::ConstF64: return "ConstF64";
      case IrOp::Phi: return "Phi";
      case IrOp::I32Add: return "I32Add";
      case IrOp::I32Sub: return "I32Sub";
      case IrOp::I32Mul: return "I32Mul";
      case IrOp::I32Div: return "I32Div";
      case IrOp::I32Mod: return "I32Mod";
      case IrOp::I32Neg: return "I32Neg";
      case IrOp::I32And: return "I32And";
      case IrOp::I32Or: return "I32Or";
      case IrOp::I32Xor: return "I32Xor";
      case IrOp::I32Shl: return "I32Shl";
      case IrOp::I32Sar: return "I32Sar";
      case IrOp::I32Shr: return "I32Shr";
      case IrOp::F64Add: return "F64Add";
      case IrOp::F64Sub: return "F64Sub";
      case IrOp::F64Mul: return "F64Mul";
      case IrOp::F64Div: return "F64Div";
      case IrOp::F64Mod: return "F64Mod";
      case IrOp::F64Neg: return "F64Neg";
      case IrOp::F64Abs: return "F64Abs";
      case IrOp::F64Sqrt: return "F64Sqrt";
      case IrOp::I32Compare: return "I32Compare";
      case IrOp::F64Compare: return "F64Compare";
      case IrOp::TaggedEqual: return "TaggedEqual";
      case IrOp::TagSmi: return "TagSmi";
      case IrOp::UntagSmi: return "UntagSmi";
      case IrOp::I32ToF64: return "I32ToF64";
      case IrOp::F64ToI32: return "F64ToI32";
      case IrOp::ToFloat64: return "ToFloat64";
      case IrOp::ToBooleanOp: return "ToBoolean";
      case IrOp::F64ToBool: return "F64ToBool";
      case IrOp::I32ToBool: return "I32ToBool";
      case IrOp::BoolNot: return "BoolNot";
      case IrOp::BoolToTagged: return "BoolToTagged";
      case IrOp::CheckSmi: return "CheckSmi";
      case IrOp::CheckHeapObject: return "CheckHeapObject";
      case IrOp::CheckMap: return "CheckMap";
      case IrOp::CheckBounds: return "CheckBounds";
      case IrOp::CheckValue: return "CheckValue";
      case IrOp::LoadField: return "LoadField";
      case IrOp::LoadFieldRaw: return "LoadFieldRaw";
      case IrOp::StoreField: return "StoreField";
      case IrOp::StoreFieldRaw: return "StoreFieldRaw";
      case IrOp::LoadElem32: return "LoadElem32";
      case IrOp::LoadElemF64: return "LoadElemF64";
      case IrOp::StoreElem32: return "StoreElem32";
      case IrOp::StoreElemF64: return "StoreElemF64";
      case IrOp::LoadGlobal: return "LoadGlobal";
      case IrOp::StoreGlobal: return "StoreGlobal";
      case IrOp::LoadFieldSmiUntag: return "LoadFieldSmiUntag";
      case IrOp::LoadElemSmiUntag: return "LoadElemSmiUntag";
      case IrOp::CallRuntime: return "CallRuntime";
      case IrOp::CallFunction: return "CallFunction";
      case IrOp::Branch: return "Branch";
      case IrOp::Goto: return "Goto";
      case IrOp::Return: return "Return";
      case IrOp::Deopt: return "Deopt";
    }
    return "?";
}

const char *
checkClassName(CheckClass c)
{
    switch (c) {
      case CheckClass::ProvenRedundant: return "proven";
      case CheckClass::Needed: return "needed";
      case CheckClass::Unknown: return "unknown";
    }
    return "?";
}

const char *
proofRuleName(ProofRule r)
{
    switch (r) {
      case ProofRule::None: return "none";
      case ProofRule::SubsumedSameCheck: return "subsumed-same-check";
      case ProofRule::TagFromFact: return "tag-from-fact";
      case ProofRule::MapStable: return "map-stable";
      case ProofRule::RangeWithinBounds: return "range-within-bounds";
      case ProofRule::ConstantValue: return "constant-value";
    }
    return "?";
}

std::vector<u32>
Graph::liveChecksPerGroup() const
{
    std::vector<u32> out(static_cast<size_t>(CheckGroup::NumGroups), 0);
    for (const auto &n : nodes) {
        if (n.dead)
            continue;
        // Fused SMI loads embed a CheckSmi (reason stamped by the
        // fusion pass); count them so audit denominators match the
        // paper's check-frequency accounting (fig01).
        if (n.isCheck() || (n.checked && n.op != IrOp::Deopt)
            || n.op == IrOp::ToFloat64
            || n.op == IrOp::LoadFieldSmiUntag
            || n.op == IrOp::LoadElemSmiUntag) {
            out[static_cast<size_t>(checkGroupOf(n.reason))]++;
        }
    }
    return out;
}

std::string
Graph::dump() const
{
    std::string out;
    char buf[192];
    for (BlockId b = 0; b < blocks.size(); b++) {
        const BasicBlock &blk = blocks[b];
        std::snprintf(buf, sizeof(buf), "block b%u%s (preds:", b,
                      blk.isLoopHeader ? " [loop]" : "");
        out += buf;
        for (BlockId p : blk.preds) {
            std::snprintf(buf, sizeof(buf), " b%u", p);
            out += buf;
        }
        out += ")\n";
        for (ValueId id : blk.nodes) {
            const IrNode &n = nodes[id];
            std::snprintf(buf, sizeof(buf), "  %sv%u: %s %s",
                          n.dead ? "(dead) " : "", id, irOpName(n.op),
                          repName(n.rep));
            out += buf;
            for (ValueId in : n.inputs) {
                std::snprintf(buf, sizeof(buf), " v%u", in);
                out += buf;
            }
            if (n.op == IrOp::ConstI32 || n.op == IrOp::ConstTagged
                || n.op == IrOp::LoadField || n.op == IrOp::LoadFieldRaw
                || n.op == IrOp::StoreField || n.op == IrOp::CheckMap) {
                std::snprintf(buf, sizeof(buf), " imm=%lld",
                              static_cast<long long>(n.imm));
                out += buf;
            }
            if (n.canDeopt() && n.op != IrOp::Deopt) {
                out += std::string(" [") + deoptReasonName(n.reason) + "]";
            }
            out += "\n";
        }
        if (blk.succTrue != kNoBlock) {
            std::snprintf(buf, sizeof(buf), "  -> b%u", blk.succTrue);
            out += buf;
            if (blk.succFalse != kNoBlock) {
                std::snprintf(buf, sizeof(buf), ", b%u", blk.succFalse);
                out += buf;
            }
            out += "\n";
        }
    }
    return out;
}

} // namespace vspec
