#include "ir/liveness.hh"

namespace vspec
{

namespace
{

struct UseDef
{
    std::vector<u32> regUses;
    std::vector<u32> regDefs;
    bool usesAcc = false;
    bool defsAcc = false;
};

UseDef
useDefOf(const BcInstr &ins)
{
    UseDef ud;
    auto useR = [&](i32 r) { ud.regUses.push_back(static_cast<u32>(r)); };
    auto defR = [&](i32 r) { ud.regDefs.push_back(static_cast<u32>(r)); };
    switch (ins.op) {
      case Bc::LdaSmi: case Bc::LdaConst: case Bc::LdaUndefined:
      case Bc::LdaNull: case Bc::LdaTrue: case Bc::LdaFalse:
      case Bc::LdaGlobal:
      case Bc::CreateArray: case Bc::CreateObject:
        ud.defsAcc = true;
        break;
      case Bc::StaGlobal:
        ud.usesAcc = true;
        break;
      case Bc::Ldar:
        useR(ins.a);
        ud.defsAcc = true;
        break;
      case Bc::Star:
        ud.usesAcc = true;
        defR(ins.a);
        break;
      case Bc::Mov:
        useR(ins.b);
        defR(ins.a);
        break;
      case Bc::Add: case Bc::Sub: case Bc::Mul: case Bc::Div:
      case Bc::Mod: case Bc::BitAnd: case Bc::BitOr: case Bc::BitXor:
      case Bc::Shl: case Bc::Sar: case Bc::Shr:
      case Bc::TestLess: case Bc::TestLessEq: case Bc::TestGreater:
      case Bc::TestGreaterEq: case Bc::TestEq: case Bc::TestNotEq:
      case Bc::TestStrictEq: case Bc::TestStrictNotEq:
        useR(ins.a);
        ud.usesAcc = true;
        ud.defsAcc = true;
        break;
      case Bc::Inc: case Bc::Dec: case Bc::Negate: case Bc::BitNot:
      case Bc::LogicalNot: case Bc::TypeOf: case Bc::ToNumber:
        ud.usesAcc = true;
        ud.defsAcc = true;
        break;
      case Bc::Jump: case Bc::JumpLoop:
        break;
      case Bc::JumpIfFalse: case Bc::JumpIfTrue:
        ud.usesAcc = true;
        break;
      case Bc::GetNamedProperty:
        useR(ins.a);
        ud.defsAcc = true;
        break;
      case Bc::SetNamedProperty:
      case Bc::StaNamedOwn:
        useR(ins.a);
        ud.usesAcc = true;
        break;
      case Bc::GetElement:
        useR(ins.a);
        ud.usesAcc = true;
        ud.defsAcc = true;
        break;
      case Bc::SetElement:
        useR(ins.a);
        useR(ins.b);
        ud.usesAcc = true;
        break;
      case Bc::StaArrayLiteral:
        useR(ins.a);
        ud.usesAcc = true;
        break;
      case Bc::Call: {
        useR(ins.a);
        for (int i = 0; i < callArgc(ins.c); i++)
            useR(ins.b + i);
        ud.defsAcc = true;
        break;
      }
      case Bc::CallMethod: {
        useR(ins.a);
        useR(ins.b);
        for (int i = 0; i < callArgc(ins.c); i++)
            useR(ins.b + 1 + i);
        ud.defsAcc = true;
        break;
      }
      case Bc::Return:
        ud.usesAcc = true;
        break;
    }
    return ud;
}

} // namespace

BytecodeLiveness::BytecodeLiveness(const FunctionInfo &fn)
{
    size_t n = fn.bytecode.size();
    u32 nregs = fn.registerCount;
    liveIn.assign(n, std::vector<bool>(nregs, false));
    accIn.assign(n, false);

    // Precompute use/def and successors.
    std::vector<UseDef> ud;
    ud.reserve(n);
    std::vector<std::vector<u32>> succs(n);
    for (size_t i = 0; i < n; i++) {
        const BcInstr &ins = fn.bytecode[i];
        ud.push_back(useDefOf(ins));
        switch (ins.op) {
          case Bc::Jump:
          case Bc::JumpLoop:
            succs[i].push_back(static_cast<u32>(ins.a));
            break;
          case Bc::JumpIfFalse:
          case Bc::JumpIfTrue:
            succs[i].push_back(static_cast<u32>(ins.a));
            succs[i].push_back(static_cast<u32>(i) + 1);
            break;
          case Bc::Return:
            break;
          default:
            if (i + 1 < n)
                succs[i].push_back(static_cast<u32>(i) + 1);
            break;
        }
    }

    // Backward fixpoint.
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t ii = n; ii-- > 0;) {
            // live-out = union of successors' live-in.
            std::vector<bool> out(nregs, false);
            bool acc_out = false;
            for (u32 s : succs[ii]) {
                for (u32 r = 0; r < nregs; r++)
                    out[r] = out[r] || liveIn[s][r];
                acc_out = acc_out || accIn[s];
            }
            // live-in = (live-out - defs) + uses.
            const UseDef &d = ud[ii];
            for (u32 r : d.regDefs)
                out[r] = false;
            bool acc = acc_out;
            if (d.defsAcc)
                acc = false;
            for (u32 r : d.regUses)
                out[r] = true;
            if (d.usesAcc)
                acc = true;
            if (out != liveIn[ii] || acc != accIn[ii]) {
                liveIn[ii] = std::move(out);
                accIn[ii] = acc;
                changed = true;
            }
        }
    }
}

} // namespace vspec
