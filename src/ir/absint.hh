/**
 * @file
 * vproof: a flow-sensitive forward abstract interpreter over the IR
 * graph. The analysis computes, for every SSA value, a product-lattice
 * fact — tag (Smi / HeapObject / ⊤), map set, integer range, constant —
 * to a fixpoint over the CFG, with join at merges and widening on loop
 * headers. ProveChecks (ir/proof.hh) consumes the result to classify
 * checks as provably redundant.
 *
 * Two layers of facts:
 *
 *  - Structural facts are flow-invariant per-SSA-value facts derived
 *    from the defining operation alone (a TagSmi result is a Smi; a
 *    checked add stays in SMI range). They hold at every use of the
 *    value, forever.
 *
 *  - Flow refinements are per-program-point facts learned from checks
 *    and branch edges ("after CheckMap v5, v5 has map 3"). Value-based
 *    refinements (tag, range, constant, bounds pairs) are immutable
 *    properties of the SSA value and survive calls; memory-based map
 *    facts are killed at every call and store.
 *
 * Soundness of the join: a refinement survives a CFG merge only when
 * every incoming state carries it with the SAME origin node. By
 * induction the origin then lies on every path from entry, i.e. the
 * origin dominates the merge — which is exactly the premise-dominance
 * invariant the verifier enforces for elided checks. Loop-carried
 * facts cannot leak across back edges for the same reason: the
 * preheader state lacks them, so the header join drops them.
 */

#ifndef VSPEC_IR_ABSINT_HH
#define VSPEC_IR_ABSINT_HH

#include <map>
#include <tuple>
#include <vector>

#include "ir/graph.hh"
#include "verify/dominators.hh"

namespace vspec
{

// --------------------------------------------------------------------
// Lattice domains
// --------------------------------------------------------------------

/** Pointer-tag domain for Tagged values. */
enum class TagFact : u8
{
    Bottom, //!< unreachable / contradiction
    Smi,
    Heap,
    Top,
};

TagFact joinTag(TagFact a, TagFact b);
TagFact meetTag(TagFact a, TagFact b);

/**
 * Integer range [lo, hi], tracked in i64 so transfer arithmetic cannot
 * overflow. Top is the full i32 range (every machine value the engine
 * produces is an i32); bottom is represented as lo > hi. For Tagged
 * values the range constrains the numeric payload *if* the value is a
 * Smi — a conditional fact, which is sound because ranges are only
 * consumed where Smi-ness is separately established.
 */
struct RangeFact
{
    static constexpr i64 kMin = -2147483648ll;
    static constexpr i64 kMax = 2147483647ll;

    i64 lo = kMin;
    i64 hi = kMax;

    static RangeFact top() { return {}; }
    static RangeFact bottom() { return {1, 0}; }
    static RangeFact constant(i64 v) { return {v, v}; }
    static RangeFact of(i64 lo, i64 hi) { return {lo, hi}; }
    /** SMI payload range: 31-bit signed. */
    static RangeFact smi() { return {-(1ll << 30), (1ll << 30) - 1}; }

    bool isBottom() const { return lo > hi; }
    bool isTop() const { return lo <= kMin && hi >= kMax; }
    bool isConstant() const { return lo == hi; }
    bool operator==(const RangeFact &o) const = default;
};

RangeFact joinRange(const RangeFact &a, const RangeFact &b);
RangeFact meetRange(const RangeFact &a, const RangeFact &b);
/** Widening: any bound that grew versus @p prev jumps to top. A bound
 *  that stayed stable keeps its value, so a provable fact like lo >= 0
 *  survives loop widening. */
RangeFact widenRange(const RangeFact &prev, const RangeFact &next);

/** Known-maps domain: ⊤, or a small sorted set of possible MapIds
 *  (empty set = ⊥). */
struct MapFact
{
    bool top = true;
    std::vector<u32> maps; //!< sorted, unique; meaningful when !top

    static MapFact topFact() { return {}; }
    static MapFact bottomFact() { return {false, {}}; }
    static MapFact exactly(u32 m) { return {false, {m}}; }

    bool isTop() const { return top; }
    bool isBottom() const { return !top && maps.empty(); }
    /** True when the fact admits exactly @p m and nothing else. */
    bool isExactly(u32 m) const
    {
        return !top && maps.size() == 1 && maps[0] == m;
    }
    bool operator==(const MapFact &o) const = default;
};

MapFact joinMaps(const MapFact &a, const MapFact &b); //!< set union
MapFact meetMaps(const MapFact &a, const MapFact &b); //!< intersection

/** Constant domain over raw tagged bits (for CheckValue). */
struct ConstFact
{
    enum class Kind : u8 { Top, Known, Bottom };
    Kind kind = Kind::Top;
    i64 bits = 0;

    static ConstFact top() { return {}; }
    static ConstFact bottom() { return {Kind::Bottom, 0}; }
    static ConstFact known(i64 bits) { return {Kind::Known, bits}; }

    bool isTop() const { return kind == Kind::Top; }
    bool isBottom() const { return kind == Kind::Bottom; }
    bool isKnown() const { return kind == Kind::Known; }
    bool operator==(const ConstFact &o) const = default;
};

ConstFact joinConst(const ConstFact &a, const ConstFact &b);
ConstFact meetConst(const ConstFact &a, const ConstFact &b);

/** Product lattice element: everything we know about one value. */
struct AbsValue
{
    TagFact tag = TagFact::Top;
    MapFact maps;
    RangeFact range;
    ConstFact cst;

    static AbsValue top() { return {}; }
    bool operator==(const AbsValue &o) const = default;
};

AbsValue joinValue(const AbsValue &a, const AbsValue &b);
AbsValue meetValue(const AbsValue &a, const AbsValue &b);
/** Component-wise widening (range widens; finite domains join). */
AbsValue widenValue(const AbsValue &prev, const AbsValue &next);

// --------------------------------------------------------------------
// Flow-sensitive state
// --------------------------------------------------------------------

/**
 * Per-value refinement carried by the dataflow state. Each non-top
 * domain records the node that established it (its origin); the
 * same-origin join rule keys on these. `sameAs` records a discovered
 * load-load value equivalence (this value equals an earlier one),
 * with the redundant load as its own origin.
 */
struct Refinement
{
    TagFact tag = TagFact::Top;
    ValueId tagOrigin = kNoValue;
    MapFact maps;
    ValueId mapOrigin = kNoValue;
    RangeFact range;
    ValueId rangeOrigin = kNoValue;
    ConstFact cst;
    ValueId cstOrigin = kNoValue;
    ValueId sameAs = kNoValue;
    ValueId sameOrigin = kNoValue;

    bool isTop() const
    {
        return tag == TagFact::Top && maps.isTop() && range.isTop()
               && cst.isTop() && sameAs == kNoValue;
    }
    bool operator==(const Refinement &o) const = default;
};

/** Dataflow state at one program point. */
struct AbsState
{
    std::map<ValueId, Refinement> refine;
    /** CheckBounds instances that passed: (index, length) -> check. */
    std::map<std::pair<ValueId, ValueId>, ValueId> boundsPassed;
    /** Available loads: (op, in0, in1, imm) -> first load. Killed at
     *  stores and calls. */
    std::map<std::tuple<u8, ValueId, ValueId, i64>, ValueId> availLoads;

    bool operator==(const AbsState &o) const = default;
};

/** Result of querying a fact, with the premise node per domain (the
 *  refinement origin, or the defining node for structural facts). */
struct FactQuery
{
    AbsValue fact;
    ValueId tagPremise = kNoValue;
    ValueId mapPremise = kNoValue;
    ValueId rangePremise = kNoValue;
    ValueId cstPremise = kNoValue;
    /** sameAs origins traversed while canonicalizing (extra premises). */
    std::vector<ValueId> chainPremises;
};

// --------------------------------------------------------------------
// The interpreter
// --------------------------------------------------------------------

class AbsInterpreter
{
  public:
    explicit AbsInterpreter(const Graph &g);

    /** Run both fixpoints (structural, then flow-sensitive). */
    void run();

    /** True if the flow fixpoint converged within its iteration cap.
     *  On non-convergence all refinements are dropped (structural
     *  facts remain) — still sound, just less precise. */
    bool converged() const { return converged_; }

    /** Flow-invariant fact about @p v (phase 1). */
    const AbsValue &structural(ValueId v) const { return sval_.at(v); }

    /** Entry state of block @p b (empty for unreachable blocks). */
    const AbsState &entryState(BlockId b) const;

    /** Apply node @p id's transfer function to @p s in place. Exposed
     *  so ProveChecks can replay a block and query the state just
     *  before each check. */
    void transfer(AbsState &s, ValueId id) const;

    /** Everything known about @p v in state @p s: structural facts of
     *  the whole equivalence chain met with their refinements. */
    FactQuery query(const AbsState &s, ValueId v) const;

    /** Canonical key for @p v: resolves dead passthroughs, live check
     *  passthroughs, and sameAs equivalences in @p s. */
    ValueId canon(const AbsState &s, ValueId v) const;

    bool blockReachable(BlockId b) const;
    const DominatorTree &dominators() const { return dom_; }

  private:
    void computeStructural();
    AbsValue structuralOf(ValueId id) const;
    void runFlow();
    /** Refine @p s along the (from -> to) branch edge. */
    void refineEdge(AbsState &s, BlockId from, bool takenTrue) const;
    void applyCompare(AbsState &s, ValueId cmpId, bool holds) const;
    /** Underlying value: chase dead passthroughs and live checks. */
    ValueId underlying(ValueId v) const;
    void setTag(AbsState &s, ValueId key, TagFact t, ValueId origin) const;
    void meetRangeAt(AbsState &s, ValueId key, const RangeFact &r,
                     ValueId origin) const;
    void killMapFacts(AbsState &s) const;

    const Graph &g_;
    DominatorTree dom_;
    std::vector<AbsValue> sval_;
    std::vector<AbsState> entry_;
    std::vector<bool> seeded_;
    AbsState empty_;
    bool converged_ = true;
};

/** Join two states (intersection with the same-origin rule). */
AbsState joinState(const AbsState &a, const AbsState &b);

} // namespace vspec

#endif // VSPEC_IR_ABSINT_HH
