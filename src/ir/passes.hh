/**
 * @file
 * Optimization passes over the speculative graph, including the paper's
 * two instrumentation modes:
 *
 *  - Check short-circuiting (§III-B, Fig. 5): checks whose group is in
 *    the removal set are deleted from the graph *before* dead-code
 *    elimination, so every ancestor computation used only by the check
 *    (length loads, tag tests, ...) disappears too.
 *  - SMI-load fusion (§V): LoadX -> CheckSmi -> UntagSmi chains are
 *    fused into single jsldr(u)smi-backed nodes when the ISA extension
 *    is enabled.
 *
 * Branch-only removal (§IV-B) is *not* an IR pass: per the paper it is
 * a late code-generation change, implemented in the backend, which
 * keeps the condition computation alive.
 */

#ifndef VSPEC_IR_PASSES_HH
#define VSPEC_IR_PASSES_HH

#include <array>

#include "ir/graph.hh"
#include "ir/proof.hh"
#include "verify/verify.hh"

namespace vspec
{

class Tracer;

struct PassConfig
{
    /** Short-circuit all checks in these groups (Fig. 5 methodology). */
    std::array<bool, static_cast<size_t>(CheckGroup::NumGroups)>
        removeGroup{};

    /** Fuse SMI load/check/untag chains for the §V ISA extension. */
    bool smiLoadFusion = false;

    /** Run vproof's ProveChecks classification (always sound; fills
     *  Graph::proofs and PassStats::proof, mutates nothing). */
    bool proveRedundancy = true;

    /** static-elim experiment mode: delete checks ProveChecks proved
     *  redundant. No deopt point that could ever fire is removed, so
     *  program results are bit-identical to baseline by construction. */
    bool staticElim = false;

    /** How much of the vverify suite the pipeline runs (see
     *  verify/verify.hh); defaults to every-pass in debug builds and
     *  honours the VSPEC_VERIFY environment variable. */
    VerifyLevel verifyLevel = defaultVerifyLevel();

    /** vtrace hookup (set by the engine per compile): `compile`-category
     *  per-pass begin/end events with live node counts, stamped with
     *  @ref traceTimestamp for @ref traceFunction. */
    Tracer *trace = nullptr;
    u64 traceTimestamp = 0;
    u32 traceFunction = 0;

    bool removeAll() const
    {
        for (bool b : removeGroup)
            if (!b)
                return false;
        return true;
    }

    static PassConfig
    none()
    {
        return PassConfig{};
    }

    static PassConfig
    removeAllChecks()
    {
        PassConfig c;
        c.removeGroup.fill(true);
        return c;
    }
};

/** Statistics a pass run reports (tests + benches). */
struct PassStats
{
    u32 checksShortCircuited = 0;
    u32 checksDeduped = 0;
    u32 checksHoisted = 0;
    u32 checksFolded = 0;
    u32 minusZeroElided = 0;
    u32 nodesKilledByDce = 0;
    u32 smiLoadsFused = 0;
    u32 phisSimplified = 0;
    /** vproof classification counts (ProveChecks pass). */
    ProofStats proof;
};

/** Run the full pipeline in order: short-circuit, phi simplification,
 *  redundancy elimination, SMI-load fusion, DCE. */
PassStats runPasses(Graph &graph, const PassConfig &config);

// Individual passes, exposed for unit testing.
u32 dedupeConstants(Graph &graph);
u32 foldConstantChecks(Graph &graph);
u32 shortCircuitChecks(Graph &graph, const PassConfig &config);
u32 simplifyPhis(Graph &graph);
u32 eliminateRedundantChecks(Graph &graph);
u32 hoistLoopInvariantChecks(Graph &graph);
u32 elideMinusZeroChecks(Graph &graph);
u32 fuseSmiLoads(Graph &graph);
u32 deadCodeElimination(Graph &graph);

} // namespace vspec

#endif // VSPEC_IR_PASSES_HH
