#include "ir/deopt_reasons.hh"

namespace vspec
{

const char *
deoptReasonName(DeoptReason r)
{
    switch (r) {
      case DeoptReason::Smi: return "Smi";
      case DeoptReason::NotASmi: return "NotASmi";
      case DeoptReason::NotAnInteger: return "NotAnInteger";
      case DeoptReason::WrongMap: return "WrongMap";
      case DeoptReason::WrongInstanceType: return "WrongInstanceType";
      case DeoptReason::WrongName: return "WrongName";
      case DeoptReason::NotAHeapNumber: return "NotAHeapNumber";
      case DeoptReason::NotANumber: return "NotANumber";
      case DeoptReason::NotAString: return "NotAString";
      case DeoptReason::NotASymbol: return "NotASymbol";
      case DeoptReason::NotABigInt: return "NotABigInt";
      case DeoptReason::NotAFunction: return "NotAFunction";
      case DeoptReason::NotAJSArray: return "NotAJSArray";
      case DeoptReason::NotABoolean: return "NotABoolean";
      case DeoptReason::WrongEnumIndices: return "WrongEnumIndices";
      case DeoptReason::WrongValue: return "WrongValue";
      case DeoptReason::InstanceMigrationFailed:
        return "InstanceMigrationFailed";
      case DeoptReason::WrongCallTarget: return "WrongCallTarget";
      case DeoptReason::OutOfBounds: return "OutOfBounds";
      case DeoptReason::NegativeIndex: return "NegativeIndex";
      case DeoptReason::StringTooLong: return "StringTooLong";
      case DeoptReason::Overflow: return "Overflow";
      case DeoptReason::LostPrecision: return "LostPrecision";
      case DeoptReason::LostPrecisionOrNaN: return "LostPrecisionOrNaN";
      case DeoptReason::DivisionByZero: return "DivisionByZero";
      case DeoptReason::MinusZero: return "MinusZero";
      case DeoptReason::NaN: return "NaN";
      case DeoptReason::RemainderZero: return "RemainderZero";
      case DeoptReason::ValueOutOfRange: return "ValueOutOfRange";
      case DeoptReason::Hole: return "Hole";
      case DeoptReason::TheHole: return "TheHole";
      case DeoptReason::HoleyArray: return "HoleyArray";
      case DeoptReason::NotDetectable: return "NotDetectable";
      case DeoptReason::OutsideOfRange: return "OutsideOfRange";
      case DeoptReason::Unknown: return "Unknown";
      case DeoptReason::DeoptimizeNow: return "DeoptimizeNow";
      case DeoptReason::NoCache: return "NoCache";
      case DeoptReason::NotAnArrayIndex: return "NotAnArrayIndex";
      case DeoptReason::ArrayBufferWasDetached:
        return "ArrayBufferWasDetached";
      case DeoptReason::BigIntTooBig: return "BigIntTooBig";
      case DeoptReason::CowArrayElementsChanged:
        return "CowArrayElementsChanged";
      case DeoptReason::CouldNotGrowElements: return "CouldNotGrowElements";
      case DeoptReason::UnexpectedContextExtension:
        return "UnexpectedContextExtension";
      case DeoptReason::InsufficientTypeFeedbackForCall:
        return "InsufficientTypeFeedbackForCall";
      case DeoptReason::InsufficientTypeFeedbackForBinaryOperation:
        return "InsufficientTypeFeedbackForBinaryOperation";
      case DeoptReason::InsufficientTypeFeedbackForCompareOperation:
        return "InsufficientTypeFeedbackForCompareOperation";
      case DeoptReason::InsufficientTypeFeedbackForGenericNamedAccess:
        return "InsufficientTypeFeedbackForGenericNamedAccess";
      case DeoptReason::InsufficientTypeFeedbackForGenericKeyedAccess:
        return "InsufficientTypeFeedbackForGenericKeyedAccess";
      case DeoptReason::InsufficientTypeFeedbackForUnaryOperation:
        return "InsufficientTypeFeedbackForUnaryOperation";
      case DeoptReason::InsufficientTypeFeedbackForConstruct:
        return "InsufficientTypeFeedbackForConstruct";
      case DeoptReason::CodeDependencyChange: return "CodeDependencyChange";
      case DeoptReason::SharedCodeDeoptimized:
        return "SharedCodeDeoptimized";
      case DeoptReason::NumReasons: break;
    }
    return "?";
}

DeoptCategory
deoptCategoryOf(DeoptReason r)
{
    switch (r) {
      case DeoptReason::InsufficientTypeFeedbackForCall:
      case DeoptReason::InsufficientTypeFeedbackForBinaryOperation:
      case DeoptReason::InsufficientTypeFeedbackForCompareOperation:
      case DeoptReason::InsufficientTypeFeedbackForGenericNamedAccess:
      case DeoptReason::InsufficientTypeFeedbackForGenericKeyedAccess:
      case DeoptReason::InsufficientTypeFeedbackForUnaryOperation:
      case DeoptReason::InsufficientTypeFeedbackForConstruct:
        return DeoptCategory::Soft;
      case DeoptReason::CodeDependencyChange:
      case DeoptReason::SharedCodeDeoptimized:
        return DeoptCategory::Lazy;
      default:
        return DeoptCategory::Eager;
    }
}

CheckGroup
checkGroupOf(DeoptReason r)
{
    switch (r) {
      case DeoptReason::Smi:
        return CheckGroup::Smi;
      case DeoptReason::NotASmi:
      case DeoptReason::NotAnInteger:
        return CheckGroup::NotASmi;
      case DeoptReason::WrongMap:
      case DeoptReason::WrongInstanceType:
      case DeoptReason::WrongName:
      case DeoptReason::NotAHeapNumber:
      case DeoptReason::NotANumber:
      case DeoptReason::NotAString:
      case DeoptReason::NotASymbol:
      case DeoptReason::NotABigInt:
      case DeoptReason::NotAFunction:
      case DeoptReason::NotAJSArray:
      case DeoptReason::NotABoolean:
      case DeoptReason::WrongEnumIndices:
      case DeoptReason::WrongValue:
      case DeoptReason::InstanceMigrationFailed:
      case DeoptReason::WrongCallTarget:
        return CheckGroup::Type;
      case DeoptReason::OutOfBounds:
      case DeoptReason::NegativeIndex:
      case DeoptReason::StringTooLong:
        return CheckGroup::Boundary;
      case DeoptReason::Overflow:
      case DeoptReason::LostPrecision:
      case DeoptReason::LostPrecisionOrNaN:
      case DeoptReason::DivisionByZero:
      case DeoptReason::MinusZero:
      case DeoptReason::NaN:
      case DeoptReason::RemainderZero:
      case DeoptReason::ValueOutOfRange:
        return CheckGroup::Arithmetic;
      default:
        return CheckGroup::Other;
    }
}

const char *
deoptCategoryName(DeoptCategory c)
{
    switch (c) {
      case DeoptCategory::Eager: return "deopt-eager";
      case DeoptCategory::Lazy: return "deopt-lazy";
      case DeoptCategory::Soft: return "deopt-soft";
    }
    return "?";
}

const char *
checkGroupName(CheckGroup g)
{
    switch (g) {
      case CheckGroup::Type: return "Type";
      case CheckGroup::Smi: return "SMI";
      case CheckGroup::NotASmi: return "Not-a-SMI";
      case CheckGroup::Boundary: return "Boundary";
      case CheckGroup::Arithmetic: return "Arithmetic";
      case CheckGroup::Other: return "Other";
      case CheckGroup::NumGroups: break;
    }
    return "?";
}

std::vector<DeoptReason>
reasonsInCategory(DeoptCategory c)
{
    std::vector<DeoptReason> out;
    for (int i = 0; i < kNumDeoptReasons; i++) {
        auto r = static_cast<DeoptReason>(i);
        if (deoptCategoryOf(r) == c)
            out.push_back(r);
    }
    return out;
}

} // namespace vspec
