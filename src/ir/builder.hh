/**
 * @file
 * Graph builder: turns bytecode plus recorded type feedback into the
 * speculative IR, inserting deoptimization checks exactly where V8's
 * TurboFan would: SMI checks and untagging shifts around tagged loads,
 * map checks before shape-dependent accesses, bounds checks before
 * element accesses, overflow checks on SMI arithmetic, and deopt-soft
 * exits on paths without feedback.
 */

#ifndef VSPEC_IR_BUILDER_HH
#define VSPEC_IR_BUILDER_HH

#include <optional>

#include "bytecode/compiler.hh"
#include "ir/graph.hh"

namespace vspec
{

/** Shared context the optimizing compiler needs. */
struct CompilerEnv
{
    VMContext &vm;
    GlobalRegistry &globals;
    FunctionTable &functions;
};

/**
 * Build the speculative graph for @p fn.
 *
 * @return std::nullopt when the function cannot be optimized (too many
 * parameters for the register convention, or irreconcilable loop-variable
 * representations); the caller then keeps the function interpreted.
 */
std::optional<Graph> buildGraph(CompilerEnv &env, const FunctionInfo &fn);

} // namespace vspec

#endif // VSPEC_IR_BUILDER_HH
