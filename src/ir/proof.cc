#include "ir/proof.hh"

#include <algorithm>
#include <map>

#include "ir/absint.hh"

namespace vspec
{

namespace
{

/** Resolve @p v through dead value-passthrough nodes (same idiom as
 *  the optimization passes). */
ValueId
resolve(const Graph &g, ValueId v)
{
    while (v != kNoValue && g.node(v).dead && !g.node(v).inputs.empty())
        v = g.node(v).inputs[0];
    return v;
}

void
remapUses(Graph &g)
{
    for (auto &n : g.nodes) {
        if (n.dead)
            continue;
        for (auto &in : n.inputs)
            in = resolve(g, in);
    }
    for (auto &fs : g.frameStates) {
        for (auto &r : fs.regs)
            r = resolve(g, r);
        fs.accumulator = resolve(g, fs.accumulator);
    }
}

/** Does the check's subject come straight from a fresh, unconstrained
 *  source (so the check is the establishing observation)? */
bool
isFreshSource(const Graph &g, ValueId v)
{
    for (int guard = 0; guard < 16; guard++) {
        const IrNode &n = g.node(v);
        if ((n.dead && !n.inputs.empty()) || n.isCheck()
            || n.op == IrOp::UntagSmi || n.op == IrOp::TagSmi) {
            v = n.inputs[0];
            continue;
        }
        break;
    }
    switch (g.node(v).op) {
      case IrOp::Param:
      case IrOp::LoadField:
      case IrOp::LoadFieldRaw:
      case IrOp::LoadElem32:
      case IrOp::LoadElemF64:
      case IrOp::LoadGlobal:
      case IrOp::LoadFieldSmiUntag:
      case IrOp::LoadElemSmiUntag:
      case IrOp::CallRuntime:
      case IrOp::CallFunction:
        return true;
      default:
        return false;
    }
}

void
addPremise(std::vector<ValueId> &premises, ValueId p)
{
    if (p == kNoValue)
        return;
    if (std::find(premises.begin(), premises.end(), p) == premises.end())
        premises.push_back(p);
}

void
addChain(std::vector<ValueId> &premises, const FactQuery &q)
{
    for (ValueId p : q.chainPremises)
        addPremise(premises, p);
}

/** Classify one live check against the state just before it. */
CheckProof
classify(const Graph &g, const AbsInterpreter &ai, const AbsState &s,
         ValueId id)
{
    const IrNode &n = g.node(id);
    CheckProof p;
    p.check = id;
    p.op = n.op;
    p.reason = n.reason;
    p.block = n.block;
    p.bcOff = n.bcOff;

    auto proven = [&](ProofRule rule) {
        p.cls = CheckClass::ProvenRedundant;
        p.rule = rule;
    };
    auto settle = [&](ValueId subject, bool anyFact) {
        p.cls = !anyFact && isFreshSource(g, subject) ? CheckClass::Needed
                                                      : CheckClass::Unknown;
    };
    auto ruleFor = [&](ValueId premise, IrOp sameOp, ProofRule fallback) {
        return premise != kNoValue && premise < g.nodes.size()
                       && g.node(premise).op == sameOp
                   ? ProofRule::SubsumedSameCheck
                   : fallback;
    };

    switch (n.op) {
      case IrOp::CheckSmi: {
        FactQuery q = ai.query(s, n.inputs[0]);
        if (q.fact.tag == TagFact::Smi) {
            proven(ruleFor(q.tagPremise, IrOp::CheckSmi,
                           ProofRule::TagFromFact));
            addPremise(p.premises, q.tagPremise);
            addChain(p.premises, q);
        } else {
            settle(n.inputs[0], q.fact.tag != TagFact::Top);
        }
        break;
      }
      case IrOp::CheckHeapObject: {
        FactQuery q = ai.query(s, n.inputs[0]);
        if (q.fact.tag == TagFact::Heap) {
            proven(ruleFor(q.tagPremise, IrOp::CheckHeapObject,
                           ProofRule::TagFromFact));
            addPremise(p.premises, q.tagPremise);
            addChain(p.premises, q);
        } else {
            settle(n.inputs[0], q.fact.tag != TagFact::Top);
        }
        break;
      }
      case IrOp::CheckMap: {
        FactQuery q = ai.query(s, n.inputs[0]);
        if (q.fact.maps.isExactly(static_cast<u32>(n.imm))) {
            proven(ruleFor(q.mapPremise, IrOp::CheckMap,
                           ProofRule::MapStable));
            addPremise(p.premises, q.mapPremise);
            addChain(p.premises, q);
        } else {
            settle(n.inputs[0], !q.fact.maps.isTop());
        }
        break;
      }
      case IrOp::CheckValue: {
        FactQuery q = ai.query(s, n.inputs[0]);
        if (q.fact.cst.isKnown() && q.fact.cst.bits == n.imm) {
            proven(ruleFor(q.cstPremise, IrOp::CheckValue,
                           ProofRule::ConstantValue));
            addPremise(p.premises, q.cstPremise);
            addChain(p.premises, q);
        } else {
            settle(n.inputs[0], !q.fact.cst.isTop());
        }
        break;
      }
      case IrOp::CheckBounds: {
        ValueId ci = ai.canon(s, n.inputs[0]);
        ValueId cl = ai.canon(s, n.inputs[1]);
        FactQuery qi = ai.query(s, n.inputs[0]);
        FactQuery ql = ai.query(s, n.inputs[1]);
        auto pair = s.boundsPassed.find({ci, cl});
        if (pair != s.boundsPassed.end()) {
            proven(ProofRule::SubsumedSameCheck);
            addPremise(p.premises, pair->second);
            addChain(p.premises, qi);
            addChain(p.premises, ql);
        } else if (!qi.fact.range.isBottom() && !ql.fact.range.isBottom()
                   && qi.fact.range.lo >= 0
                   && qi.fact.range.hi < ql.fact.range.lo) {
            proven(ProofRule::RangeWithinBounds);
            addPremise(p.premises, qi.rangePremise);
            addPremise(p.premises, ql.rangePremise);
            addChain(p.premises, qi);
            addChain(p.premises, ql);
        } else {
            settle(n.inputs[0],
                   qi.fact.range.lo >= 0 || !ql.fact.range.isTop());
        }
        break;
      }
      default:
        break;
    }
    return p;
}

} // namespace

ProofStats
proveChecks(Graph &g, bool eliminate)
{
    ProofStats stats;
    g.proofs.clear();

    AbsInterpreter ai(g);
    ai.run();

    for (BlockId b : ai.dominators().rpo()) {
        AbsState s = ai.entryState(b);
        for (ValueId id : g.block(b).nodes) {
            const IrNode &n = g.node(id);
            if (!n.dead && n.isCheck())
                g.proofs.push_back(classify(g, ai, s, id));
            ai.transfer(s, id);
        }
    }

    std::map<ValueId, size_t> proofOf;
    for (size_t i = 0; i < g.proofs.size(); i++)
        proofOf[g.proofs[i].check] = i;

    if (eliminate) {
        // Delete the proven checks. A premise that is itself an elided
        // check is replaced by that check's own premises: its fact held
        // without it, and the substitution grounds every proof in live
        // nodes (premise positions only move earlier, so dominance of
        // the former position is preserved).
        for (CheckProof &p : g.proofs) {
            if (p.cls != CheckClass::ProvenRedundant)
                continue;
            IrNode &n = g.node(p.check);
            n.dead = true;
            n.provenElided = true;
            n.inputs.resize(1); // value passthrough
            p.elided = true;
            stats.elided++;
        }
        for (CheckProof &p : g.proofs) {
            if (!p.elided)
                continue;
            std::vector<ValueId> grounded;
            std::vector<ValueId> work = p.premises;
            for (size_t k = 0; k < work.size() && k < 64; k++) {
                ValueId prem = work[k];
                auto it = proofOf.find(prem);
                if (it != proofOf.end() && g.proofs[it->second].elided
                    && prem != p.check) {
                    for (ValueId sub : g.proofs[it->second].premises)
                        if (std::find(work.begin(), work.end(), sub)
                            == work.end())
                            work.push_back(sub);
                } else {
                    addPremise(grounded, prem);
                }
            }
            p.premises = std::move(grounded);
        }
        remapUses(g);
    }

    for (const CheckProof &p : g.proofs) {
        size_t grp = static_cast<size_t>(checkGroupOf(p.reason));
        switch (p.cls) {
          case CheckClass::ProvenRedundant: stats.proven[grp]++; break;
          case CheckClass::Needed: stats.needed[grp]++; break;
          case CheckClass::Unknown: stats.unknown[grp]++; break;
        }
    }
    return stats;
}

void
appendCheckAudit(const Graph &g, const FunctionInfo &fn,
                 std::vector<CheckAuditEntry> &out)
{
    for (const CheckProof &p : g.proofs) {
        i32 line = 0;
        if (p.bcOff < fn.bcPositions.size())
            line = fn.bcPositions[p.bcOff].line;
        CheckGroup grp = checkGroupOf(p.reason);
        auto same = [&](const CheckAuditEntry &e) {
            return e.function == fn.id && e.line == line && e.group == grp
                   && e.cls == p.cls && e.rule == p.rule
                   && e.elided == p.elided;
        };
        auto it = std::find_if(out.begin(), out.end(), same);
        if (it != out.end()) {
            it->count++;
        } else {
            CheckAuditEntry e;
            e.function = fn.id;
            e.line = line;
            e.group = grp;
            e.cls = p.cls;
            e.rule = p.rule;
            e.elided = p.elided;
            e.count = 1;
            out.push_back(e);
        }
    }
}

} // namespace vspec
