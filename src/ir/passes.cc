#include "ir/passes.hh"

#include <bit>
#include <map>
#include <tuple>
#include <unordered_map>

#include "support/logging.hh"
#include "trace/trace.hh"

namespace vspec
{

namespace
{

/** Resolve @p v through dead value-passthrough nodes. */
ValueId
resolve(const Graph &g, ValueId v)
{
    while (v != kNoValue && g.node(v).dead && !g.node(v).inputs.empty())
        v = g.node(v).inputs[0];
    return v;
}

/** Rewrite every input and frame-state reference through resolve(). */
void
remapUses(Graph &g)
{
    for (auto &n : g.nodes) {
        if (n.dead)
            continue;
        for (auto &in : n.inputs)
            in = resolve(g, in);
    }
    for (auto &fs : g.frameStates) {
        for (auto &r : fs.regs)
            r = resolve(g, r);
        fs.accumulator = resolve(g, fs.accumulator);
    }
}

/** Count how many live nodes use each value (frame states excluded). */
std::vector<u32>
countUses(const Graph &g)
{
    std::vector<u32> uses(g.nodes.size(), 0);
    for (const auto &n : g.nodes) {
        if (n.dead)
            continue;
        for (ValueId in : n.inputs)
            uses[in]++;
    }
    return uses;
}

} // namespace

u32
dedupeConstants(Graph &g)
{
    // Value-number constants so later passes (redundancy elimination,
    // loop hoisting) see one node per distinct constant. Constants are
    // rematerialized by the backend, so block placement is irrelevant.
    u32 count = 0;
    std::map<std::tuple<u8, i64, i64>, ValueId> seen;
    for (ValueId id = 0; id < g.nodes.size(); id++) {
        IrNode &n = g.nodes[id];
        if (n.dead)
            continue;
        if (n.op != IrOp::ConstI32 && n.op != IrOp::ConstTagged
            && n.op != IrOp::ConstF64)
            continue;
        i64 bits = n.op == IrOp::ConstF64
            ? static_cast<i64>(std::bit_cast<u64>(n.fval)) : n.imm;
        std::tuple<u8, i64, i64> key{static_cast<u8>(n.op), bits,
                                     static_cast<i64>(n.rep)};
        auto it = seen.find(key);
        if (it == seen.end()) {
            seen.emplace(key, id);
        } else {
            n.dead = true;
            n.inputs = {it->second};
            count++;
        }
    }
    remapUses(g);
    return count;
}

u32
foldConstantChecks(Graph &g)
{
    // Tag checks on compile-time constants are statically decided:
    // CheckHeapObject on a constant heap reference (e.g. a global
    // array embedded via constant-cell speculation) can never fail.
    // Map checks stay: the map word is mutable memory.
    u32 count = 0;
    for (auto &n : g.nodes) {
        if (n.dead)
            continue;
        // Every check kind except CheckMap (mutable map word) and
        // CheckBounds (relational, not a constant property).
        if (!n.isCheck() || n.op == IrOp::CheckMap
            || n.op == IrOp::CheckBounds)
            continue;
        const IrNode &in = g.node(n.inputs[0]);
        if (in.op != IrOp::ConstTagged)
            continue;
        bool passes = false;
        if (n.op == IrOp::CheckSmi)
            passes = (in.imm & 1) == 0;
        else if (n.op == IrOp::CheckHeapObject)
            passes = (in.imm & 1) == 1;
        else
            passes = in.imm == n.imm;
        if (passes) {
            n.dead = true;
            count++;
        }
        // A statically failing check would deopt unconditionally; keep
        // it so the deopt still happens (never occurs in practice).
    }
    remapUses(g);
    return count;
}

u32
elideMinusZeroChecks(Graph &g)
{
    // V8 elides -0 checks when every use of the result truncates
    // (machine-int contexts cannot observe -0). Propagate "all uses
    // truncate" through phis with a pessimistic fixpoint.
    auto truncatingUse = [](const IrNode &user, bool phi_trunc) {
        switch (user.op) {
          case IrOp::I32Add: case IrOp::I32Sub: case IrOp::I32Mul:
          case IrOp::I32Div: case IrOp::I32Mod:
          case IrOp::I32And: case IrOp::I32Or: case IrOp::I32Xor:
          case IrOp::I32Shl: case IrOp::I32Sar: case IrOp::I32Shr:
          case IrOp::I32Compare: case IrOp::CheckBounds:
          case IrOp::LoadElem32: case IrOp::LoadElemF64:
          case IrOp::StoreElem32: case IrOp::StoreElemF64:
          case IrOp::I32ToBool:
            return true;
          case IrOp::Phi:
            return phi_trunc;
          default:
            return false;
        }
    };

    // allTrunc[id]: every transitive use of id truncates.
    std::vector<bool> allTrunc(g.nodes.size(), true);
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<bool> next(g.nodes.size(), true);
        for (ValueId uid = 0; uid < g.nodes.size(); uid++) {
            const IrNode &user = g.nodes[uid];
            if (user.dead)
                continue;
            for (size_t k = 0; k < user.inputs.size(); k++) {
                ValueId in = user.inputs[k];
                bool ok = truncatingUse(user, allTrunc[uid]);
                // Stores truncate their *index* input only; the stored
                // value (third input) is observable.
                if ((user.op == IrOp::StoreElem32
                     || user.op == IrOp::StoreElemF64) && k == 2)
                    ok = false;
                if (!ok)
                    next[in] = false;
            }
            // Frame-state uses are deliberately lenient: on a deopt the
            // value rematerializes as +0, which truncating consumers in
            // the re-executed bytecode cannot distinguish from -0 (V8's
            // kIdentifyZeros treatment of frame-state inputs).
        }
        if (next != allTrunc) {
            allTrunc = std::move(next);
            changed = true;
        }
    }

    u32 count = 0;
    for (ValueId id = 0; id < g.nodes.size(); id++) {
        IrNode &n = g.nodes[id];
        if (n.dead || !n.checked)
            continue;
        if ((n.op == IrOp::I32Mul || n.op == IrOp::I32Mod
             || n.op == IrOp::I32Div || n.op == IrOp::I32Neg)
            && allTrunc[id]) {
            n.elideMinusZero = true;
            count++;
        }
    }
    return count;
}

u32
shortCircuitChecks(Graph &g, const PassConfig &cfg)
{
    auto removed = [&](DeoptReason r) {
        return cfg.removeGroup[static_cast<size_t>(checkGroupOf(r))];
    };

    u32 count = 0;
    for (auto &n : g.nodes) {
        if (n.dead)
            continue;
        if (n.isCheck() && removed(n.reason)) {
            // Fig. 5: the check condition is short-circuited to false;
            // the node and its exclusive ancestors become dead code.
            n.dead = true;
            count++;
            continue;
        }
        if (n.checked && removed(n.reason)) {
            // Checked arithmetic / conversions: the operation remains,
            // its deopt condition is dropped.
            n.checked = false;
            n.frameState = kNoFrameState;
            count++;
        }
        if (n.op == IrOp::ToFloat64 && removed(n.reason)) {
            // Keep the structural SMI/heap dispatch; drop the
            // HeapNumber map verification.
            n.checked = false;
            count++;
        }
    }
    remapUses(g);
    return count;
}

u32
simplifyPhis(Graph &g)
{
    u32 count = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (ValueId id = 0; id < g.nodes.size(); id++) {
            IrNode &n = g.nodes[id];
            if (n.dead || n.op != IrOp::Phi)
                continue;
            ValueId unique = kNoValue;
            bool trivial = true;
            for (ValueId in : n.inputs) {
                if (in == id)
                    continue;  // self-reference through the back edge
                if (unique == kNoValue) {
                    unique = in;
                } else if (in != unique) {
                    trivial = false;
                    break;
                }
            }
            if (trivial && unique != kNoValue) {
                n.dead = true;
                n.inputs = {unique};
                count++;
                changed = true;
            }
        }
        if (changed)
            remapUses(g);
    }
    return count;
}

u32
eliminateRedundantChecks(Graph &g)
{
    // Per-block value numbering of checks and pure loads, with stores
    // and calls acting as barriers for the loads. Checks survive
    // barriers (a check verifies a value in a register, not memory) —
    // except bounds checks and map checks whose underlying object may
    // be resized/transitioned by a call.
    u32 count = 0;
    using Key = std::tuple<u8, ValueId, ValueId, i64>;
    for (auto &blk : g.blocks) {
        std::map<Key, ValueId> seen_checks;
        std::map<Key, ValueId> seen_loads;
        for (ValueId id : blk.nodes) {
            IrNode &n = g.nodes[id];
            if (n.dead)
                continue;
            bool is_call = n.op == IrOp::CallRuntime
                           || n.op == IrOp::CallFunction;
            if (n.hasSideEffects() && !n.isCheck()) {
                if (is_call || n.op == IrOp::StoreField
                    || n.op == IrOp::StoreFieldRaw
                    || n.op == IrOp::StoreElem32
                    || n.op == IrOp::StoreElemF64
                    || n.op == IrOp::StoreGlobal) {
                    seen_loads.clear();
                    if (is_call) {
                        // Calls can transition maps and grow arrays.
                        seen_checks.clear();
                    }
                }
            }
            ValueId in0 = n.inputs.empty() ? kNoValue : n.inputs[0];
            ValueId in1 = n.inputs.size() > 1 ? n.inputs[1] : kNoValue;
            if (n.isCheck()) {
                Key k{static_cast<u8>(n.op), in0, in1, n.imm};
                auto it = seen_checks.find(k);
                if (it != seen_checks.end()) {
                    n.dead = true;
                    count++;
                } else {
                    seen_checks.emplace(k, id);
                }
                continue;
            }
            switch (n.op) {
              case IrOp::LoadField:
              case IrOp::LoadFieldRaw:
              case IrOp::LoadGlobal:
              case IrOp::UntagSmi:
              case IrOp::TagSmi:
              case IrOp::I32ToF64: {
                if (n.op == IrOp::TagSmi && n.checked)
                    break;
                Key k{static_cast<u8>(n.op), in0, in1, n.imm};
                auto it = seen_loads.find(k);
                if (it != seen_loads.end()) {
                    n.dead = true;
                    n.inputs = {it->second};
                    count++;
                } else {
                    seen_loads.emplace(k, id);
                }
                break;
              }
              default:
                break;
            }
        }
    }
    remapUses(g);
    return count;
}

u32
fuseSmiLoads(Graph &g)
{
    u32 count = 0;
    auto uses = countUses(g);

    for (ValueId id = 0; id < g.nodes.size(); id++) {
        IrNode &untag = g.nodes[id];
        if (untag.dead || untag.op != IrOp::UntagSmi)
            continue;
        ValueId chk_id = untag.inputs[0];
        IrNode &chk = g.nodes[chk_id];
        if (chk.dead || chk.op != IrOp::CheckSmi)
            continue;
        ValueId load_id = chk.inputs[0];
        IrNode &load = g.nodes[load_id];
        if (load.dead)
            continue;
        if (load.op != IrOp::LoadField && load.op != IrOp::LoadElem32)
            continue;
        // The tagged value must have no consumers other than the check,
        // and the check none other than the untag — otherwise a tagged
        // copy is still required and fusion does not pay.
        if (uses[load_id] != 1 || uses[chk_id] != 1)
            continue;
        if (load.block != chk.block || chk.block != untag.block)
            continue;

        load.op = load.op == IrOp::LoadField ? IrOp::LoadFieldSmiUntag
                                             : IrOp::LoadElemSmiUntag;
        load.rep = Rep::Int32;
        load.known31 = true;
        load.reason = DeoptReason::NotASmi;
        // Resume at the load's own bytecode, recorded by the builder:
        // the check's frame state belongs to the consuming bytecode
        // and may name values computed between load and check (e.g.
        // the second operand of `a[i] * b[i]`), which do not exist yet
        // when the fused load's implicit check fails.
        if (load.frameState == kNoFrameState)
            load.frameState = chk.frameState;
        chk.dead = true;
        untag.dead = true;
        untag.inputs = {load_id};
        chk.inputs = {load_id};
        count++;
    }
    remapUses(g);
    return count;
}

u32
deadCodeElimination(Graph &g)
{
    std::vector<bool> live(g.nodes.size(), false);
    std::vector<ValueId> work;

    auto markRoot = [&](ValueId id) {
        if (id != kNoValue && !live[id]) {
            live[id] = true;
            work.push_back(id);
        }
    };

    for (ValueId id = 0; id < g.nodes.size(); id++) {
        const IrNode &n = g.nodes[id];
        if (n.dead)
            continue;
        if (n.hasSideEffects() || n.isTerminator())
            markRoot(id);
    }
    while (!work.empty()) {
        ValueId id = work.back();
        work.pop_back();
        const IrNode &n = g.nodes[id];
        for (ValueId in : n.inputs)
            markRoot(in);
        if (n.frameState != kNoFrameState && n.canDeopt()) {
            const FrameState &fs = g.frameStates[n.frameState];
            for (ValueId r : fs.regs)
                markRoot(r);
            markRoot(fs.accumulator);
        }
    }

    u32 count = 0;
    for (ValueId id = 0; id < g.nodes.size(); id++) {
        IrNode &n = g.nodes[id];
        if (!n.dead && !live[id]) {
            n.dead = true;
            count++;
        }
    }
    return count;
}

u32
hoistLoopInvariantChecks(Graph &g)
{
    // Loops are contiguous block ranges [header, latch] (the builder
    // lays blocks out in bytecode order and all back edges target loop
    // headers). A CheckSmi / CheckHeapObject / CheckMap / CheckValue on
    // a value defined before the header is loop-invariant: V8's
    // redundancy elimination achieves the same effect, and without
    // this, e.g. the Not-a-SMI check on a hot function's parameter
    // would be re-executed on every loop iteration.
    u32 count = 0;

    // Find loops: for every back edge pred -> header. A back edge can
    // run through either successor — a Branch whose *false* target is
    // the header (e.g. an inverted loop condition) is just as much a
    // latch as a Goto, so checking succTrue alone under-detects loops.
    struct Loop { BlockId header; BlockId latch; };
    std::vector<Loop> loops;
    for (BlockId b = 0; b < g.blocks.size(); b++) {
        if (g.block(b).nodes.empty())
            continue;
        BlockId succs[2] = {g.block(b).succTrue, g.block(b).succFalse};
        for (BlockId t : succs) {
            if (t != kNoBlock && t <= b)
                loops.push_back({t, b});
        }
    }

    for (const Loop &loop : loops) {
        // Pre-header: the unique forward predecessor of the header.
        BlockId preheader = kNoBlock;
        int fwd_preds = 0;
        for (BlockId p : g.block(loop.header).preds) {
            if (p < loop.header) {
                preheader = p;
                fwd_preds++;
            }
        }
        if (fwd_preds != 1 || preheader == kNoBlock)
            continue;

        // Map words are mutable memory: hoisting a CheckMap over a call
        // or a map-word store would be unsound (V8 uses map-stability
        // dependencies instead; we just keep those checks in place).
        bool loop_has_effects = false;
        for (BlockId b = loop.header; b <= loop.latch; b++) {
            for (ValueId id : g.block(b).nodes) {
                const IrNode &n = g.nodes[id];
                if (n.dead)
                    continue;
                if (n.op == IrOp::CallRuntime || n.op == IrOp::CallFunction
                    || n.op == IrOp::StoreFieldRaw)
                    loop_has_effects = true;
            }
        }

        // First node id belonging to the loop: the minimum id in the
        // header block (ids grow in creation order).
        ValueId loop_first = kNoValue;
        for (ValueId id : g.block(loop.header).nodes) {
            loop_first = id;
            break;
        }
        if (loop_first == kNoValue)
            continue;

        for (BlockId b = loop.header; b <= loop.latch; b++) {
            auto &nodes = g.block(b).nodes;
            for (size_t i = 0; i < nodes.size(); i++) {
                IrNode &n = g.nodes[nodes[i]];
                if (n.dead)
                    continue;
                // Every check kind except CheckBounds: its length input
                // is loop-carried memory, not a hoistable value.
                if (!n.isCheck() || n.op == IrOp::CheckBounds)
                    continue;
                if (n.op == IrOp::CheckMap && loop_has_effects)
                    continue;
                bool invariant = true;
                for (ValueId in : n.inputs) {
                    const IrNode &inn = g.nodes[in];
                    bool is_const = inn.op == IrOp::ConstI32
                                    || inn.op == IrOp::ConstTagged
                                    || inn.op == IrOp::ConstF64;
                    if (in >= loop_first && !is_const) {
                        invariant = false;
                        break;
                    }
                }
                if (!invariant)
                    continue;
                // A hoisted check deoptimizes *before* the loop runs,
                // so it must resume at the loop header with the
                // header-entry environment; loop phis demote to their
                // initial (forward-edge) inputs, which is exactly
                // their value on the first iteration.
                auto hfs = g.headerFrameStates.find(loop.header);
                if (hfs == g.headerFrameStates.end())
                    continue;
                if (n.frameState != kNoFrameState) {
                    FrameState fs = g.frameStates[hfs->second];
                    auto demote = [&](ValueId v) -> ValueId {
                        if (v == kNoValue)
                            return v;
                        const IrNode &vn = g.node(v);
                        if (vn.op == IrOp::Phi && v >= loop_first
                            && !vn.inputs.empty())
                            return vn.inputs[0];
                        if (vn.op == IrOp::ConstI32
                            || vn.op == IrOp::ConstTagged
                            || vn.op == IrOp::ConstF64)
                            return v;  // rematerializable anywhere
                        return v >= loop_first ? kNoValue : v;
                    };
                    for (auto &r : fs.regs)
                        r = demote(r);
                    fs.accumulator = demote(fs.accumulator);
                    n.frameState = g.addFrameState(std::move(fs));
                }
                // Move the node to the end of the pre-header (before
                // its terminator).
                ValueId id = nodes[i];
                nodes.erase(nodes.begin() + static_cast<long>(i));
                i--;
                auto &pre = g.block(preheader).nodes;
                vassert(!pre.empty(), "empty pre-header");
                pre.insert(pre.end() - 1, id);
                n.block = preheader;
                count++;
            }
        }
    }
    return count;
}

PassStats
runPasses(Graph &g, const PassConfig &cfg)
{
    // With verifyLevel == Passes, re-verify the graph after every
    // pass so the diagnostic names the pass that broke the invariant
    // instead of whichever later stage tripped over the damage.
    auto verifyAfter = [&](const char *pass) {
        if (cfg.verifyLevel == VerifyLevel::Passes) {
            VerifyResult r = verifyGraph(g, std::string("after ") + pass);
            if (!r.ok())
                vlog(LogLevel::Debug, "vverify", g.dump());
            enforce(r, "IR graph");
        }
    };

    // `compile`-category tracing: begin/end per pass, with the live
    // node count as the payload so a trace shows each pass's shrink.
    bool traced = cfg.trace != nullptr
                  && cfg.trace->on(TraceCategory::Compile);
    auto liveNodes = [&]() {
        u32 n = 0;
        for (const auto &node : g.nodes)
            if (!node.dead)
                n++;
        return n;
    };
    auto runPass = [&](const char *name, auto &&pass) -> u32 {
        if (traced)
            cfg.trace->emit(TraceCategory::Compile, TraceEventKind::Begin,
                            name, cfg.traceTimestamp, cfg.traceFunction,
                            liveNodes());
        u32 result = pass();
        verifyAfter(name);
        if (traced)
            cfg.trace->emit(TraceCategory::Compile, TraceEventKind::End,
                            name, cfg.traceTimestamp, cfg.traceFunction,
                            liveNodes(), result);
        return result;
    };

    verifyAfter("buildGraph");
    PassStats stats;
    runPass("dedupeConstants", [&] { return dedupeConstants(g); });
    stats.checksFolded =
        runPass("foldConstantChecks", [&] { return foldConstantChecks(g); });
    stats.checksShortCircuited = runPass(
        "shortCircuitChecks", [&] { return shortCircuitChecks(g, cfg); });
    stats.phisSimplified =
        runPass("simplifyPhis", [&] { return simplifyPhis(g); });
    stats.checksHoisted = runPass("hoistLoopInvariantChecks",
                                  [&] { return hoistLoopInvariantChecks(g); });
    stats.checksDeduped = runPass(
        "eliminateRedundantChecks", [&] { return eliminateRedundantChecks(g); });
    stats.minusZeroElided = runPass("elideMinusZeroChecks",
                                    [&] { return elideMinusZeroChecks(g); });
    if (cfg.proveRedundancy)
        runPass("proveChecks", [&] {
            stats.proof = proveChecks(g, cfg.staticElim);
            return stats.proof.elided;
        });
    if (cfg.smiLoadFusion)
        stats.smiLoadsFused =
            runPass("fuseSmiLoads", [&] { return fuseSmiLoads(g); });
    if (traced)
        cfg.trace->emit(TraceCategory::Compile, TraceEventKind::Begin,
                        "deadCodeElimination", cfg.traceTimestamp,
                        cfg.traceFunction, liveNodes());
    stats.nodesKilledByDce = deadCodeElimination(g);
    if (cfg.verifyLevel != VerifyLevel::Off)
        enforce(verifyGraph(g, "after deadCodeElimination"), "IR graph");
    if (traced)
        cfg.trace->emit(TraceCategory::Compile, TraceEventKind::End,
                        "deadCodeElimination", cfg.traceTimestamp,
                        cfg.traceFunction, liveNodes(),
                        stats.nodesKilledByDce);
    return stats;
}

} // namespace vspec
