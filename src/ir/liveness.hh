/**
 * @file
 * Bytecode register liveness: a backward dataflow over the bytecode,
 * computing which frame registers (and the accumulator) are live-in at
 * every bytecode offset. The graph builder uses it to avoid creating
 * loop phis for dead expression temporaries (which would otherwise
 * force spurious representation conversions — and spurious deopt
 * checks), and to prune dead values from deoptimization frame states,
 * exactly as V8's bytecode liveness analysis does.
 */

#ifndef VSPEC_IR_LIVENESS_HH
#define VSPEC_IR_LIVENESS_HH

#include <vector>

#include "bytecode/bytecode.hh"

namespace vspec
{

class BytecodeLiveness
{
  public:
    explicit BytecodeLiveness(const FunctionInfo &fn);

    bool regLiveIn(u32 bc, u32 reg) const
    {
        return liveIn.at(bc).at(reg);
    }
    bool accLiveIn(u32 bc) const { return accIn.at(bc); }

  private:
    std::vector<std::vector<bool>> liveIn;  //!< [offset][register]
    std::vector<bool> accIn;                //!< accumulator live-in
};

} // namespace vspec

#endif // VSPEC_IR_LIVENESS_HH
