/**
 * @file
 * The optimizing compiler's intermediate representation: a CFG of basic
 * blocks over a flat node arena, SSA-style (every node defines one
 * value; phis at join points). Deoptimization checks are first-class
 * nodes carrying a DeoptReason and a FrameState, which is what makes
 * the paper's check-removal methodology implementable exactly as
 * described (Fig. 5): short-circuiting a check marks the node dead, and
 * dead-code elimination then removes every ancestor computation that
 * only the check used.
 */

#ifndef VSPEC_IR_GRAPH_HH
#define VSPEC_IR_GRAPH_HH

#include <map>
#include <string>
#include <vector>

#include "bytecode/bytecode.hh"
#include "ir/deopt_reasons.hh"
#include "isa/isa.hh"

namespace vspec
{

using ValueId = u32;
using BlockId = u32;
constexpr u32 kNoValue = 0xffffffffu;
constexpr u32 kNoBlock = 0xffffffffu;
constexpr u32 kNoFrameState = 0xffffffffu;

/** Machine representation of an IR value. */
enum class Rep : u8
{
    Tagged,   //!< 32-bit tagged heap slot value
    Int32,    //!< untagged machine integer
    Float64,
    Bool,     //!< machine 0/1
    None,     //!< no value (stores, control)
};

const char *repName(Rep r);

enum class IrOp : u8
{
    // Values.
    Param,        //!< imm = incoming machine arg index (0 = this)
    ConstI32,     //!< imm = payload; rep Int32
    ConstTagged,  //!< imm = raw tagged bits
    ConstF64,     //!< fval
    Phi,

    // Int32 arithmetic. `checked` ops deopt when the result leaves SMI
    // range (Overflow) or on Div/Mod corner cases.
    I32Add, I32Sub, I32Mul, I32Div, I32Mod, I32Neg,
    I32And, I32Or, I32Xor, I32Shl, I32Sar, I32Shr,

    // Float64 arithmetic.
    F64Add, F64Sub, F64Mul, F64Div, F64Mod, F64Neg, F64Abs, F64Sqrt,

    // Comparisons -> Bool. `cond` holds the condition.
    I32Compare, F64Compare, TaggedEqual,

    // Conversions.
    TagSmi,       //!< Int32 -> Tagged; checked (Overflow) unless known31
    UntagSmi,     //!< Tagged known-SMI -> Int32 (asr #1)
    I32ToF64,
    F64ToI32,     //!< truncating (bit ops)
    ToFloat64,    //!< Tagged number -> F64; checked (NotANumber)
    ToBooleanOp,  //!< Tagged -> Bool (runtime helper)
    F64ToBool,    //!< f != 0 && !NaN
    I32ToBool,    //!< i != 0
    BoolNot,
    BoolToTagged, //!< select true/false sentinel

    // Deoptimization checks (value passthrough on the first input).
    CheckSmi,        //!< deopt NotASmi if LSB set
    CheckHeapObject, //!< deopt Smi if LSB clear
    CheckMap,        //!< imm = expected MapId; deopt WrongMap
    CheckBounds,     //!< inputs (index, length); deopt OutOfBounds
    CheckValue,      //!< imm = expected tagged bits; deopt WrongValue

    // Memory. Tagged base pointers carry the +1 tag; the -1 is folded
    // into the immediate offset, as V8 does.
    LoadField,     //!< imm = offset; -> Tagged
    LoadFieldRaw,  //!< imm = offset; -> Int32 (lengths, capacities)
    StoreField,    //!< (base, value); imm = offset
    StoreFieldRaw,
    LoadElem32,    //!< (elements, index); tagged 4-byte element
    LoadElemF64,
    StoreElem32,
    StoreElemF64,
    LoadGlobal,    //!< imm = cell address
    StoreGlobal,

    // §V fused SMI loads (created by the SmiLoadFusion pass).
    LoadFieldSmiUntag,  //!< LoadField + CheckSmi + UntagSmi
    LoadElemSmiUntag,   //!< LoadElem32 + CheckSmi + UntagSmi

    // Calls.
    CallRuntime,    //!< imm = RuntimeFn; inputs per fn
    CallFunction,   //!< imm = FunctionId; inputs: this, args...

    // Control (block terminators).
    Branch,   //!< input Bool; successors = (true, false)
    Goto,
    Return,   //!< input Tagged
    Deopt,    //!< unconditional (soft) deoptimization
};

const char *irOpName(IrOp op);

/** Interpreter-frame snapshot for deoptimization. */
struct FrameState
{
    u32 bytecodeOffset = 0;           //!< resume point (re-executes op)
    std::vector<ValueId> regs;        //!< interp register i -> IR value
    ValueId accumulator = kNoValue;
};

struct IrNode
{
    IrOp op = IrOp::ConstI32;
    Rep rep = Rep::None;
    Cond cond = Cond::Al;
    DeoptReason reason = DeoptReason::Unknown;
    bool checked = false;   //!< arithmetic with deopt-on-overflow etc.
    bool elideMinusZero = false;  //!< all uses truncate: skip -0 check
    bool known31 = false;   //!< Int32 value provably fits a 31-bit SMI
    bool dead = false;
    /** Dead because the ProveChecks pass proved it redundant; the graph
     *  must then carry a CheckProof for it (verifier invariant). */
    bool provenElided = false;
    i64 imm = 0;
    double fval = 0.0;
    BlockId block = kNoBlock;
    u32 frameState = kNoFrameState;
    /** Bytecode offset this node was built from (vprof source-position
     *  chain; glue nodes inherit the offset current at append time). */
    u32 bcOff = 0;
    std::vector<ValueId> inputs;

    bool
    isCheck() const
    {
        switch (op) {
          case IrOp::CheckSmi: case IrOp::CheckHeapObject:
          case IrOp::CheckMap: case IrOp::CheckBounds:
          case IrOp::CheckValue:
            return true;
          default:
            return false;
        }
    }

    /** True if the node can trigger an eager deopt (checks, checked
     *  arithmetic, checked conversions, fused SMI loads). */
    bool
    canDeopt() const
    {
        if (isCheck() || op == IrOp::Deopt)
            return true;
        if (checked)
            return true;
        switch (op) {
          case IrOp::ToFloat64:
          case IrOp::LoadFieldSmiUntag:
          case IrOp::LoadElemSmiUntag:
            return true;
          default:
            return false;
        }
    }

    bool
    isTerminator() const
    {
        switch (op) {
          case IrOp::Branch: case IrOp::Goto: case IrOp::Return:
          case IrOp::Deopt:
            return true;
          default:
            return false;
        }
    }

    /** Pure nodes can be removed when unused. */
    bool
    hasSideEffects() const
    {
        switch (op) {
          case IrOp::StoreField: case IrOp::StoreFieldRaw:
          case IrOp::StoreElem32: case IrOp::StoreElemF64:
          case IrOp::StoreGlobal: case IrOp::CallRuntime:
          case IrOp::CallFunction:
            return true;
          default:
            return isTerminator() || canDeopt();
        }
    }
};

/** ProveChecks verdict for one check instruction. */
enum class CheckClass : u8
{
    ProvenRedundant, //!< facts at the check imply it cannot fail
    Needed,          //!< the check is the establishing observation
    Unknown,         //!< analysis imprecision (join, widening, kill)
};

/** Which proof rule established a ProvenRedundant verdict. */
enum class ProofRule : u8
{
    None,
    SubsumedSameCheck, //!< dominating identical check on the same value
    TagFromFact,       //!< tag known from a prior check/untag/constant
    MapStable,         //!< map known and not clobbered along any path
    RangeWithinBounds, //!< index range within proven length bounds
    ConstantValue,     //!< value is a known constant equal to expected
};

const char *checkClassName(CheckClass c);
const char *proofRuleName(ProofRule r);

/**
 * One ProveChecks audit record. For elided checks the premises are the
 * nodes whose facts imply the check passes; the verifier enforces that
 * each premise dominates the check's former position.
 */
struct CheckProof
{
    ValueId check = kNoValue;
    IrOp op = IrOp::CheckSmi;
    DeoptReason reason = DeoptReason::Unknown;
    CheckClass cls = CheckClass::Unknown;
    ProofRule rule = ProofRule::None;
    bool elided = false;     //!< static-elim deleted the check
    BlockId block = kNoBlock;
    u32 bcOff = 0;
    std::vector<ValueId> premises;
};

struct BasicBlock
{
    std::vector<ValueId> nodes;
    BlockId succTrue = kNoBlock;   //!< Goto/fall target, or Branch-true
    BlockId succFalse = kNoBlock;  //!< Branch-false
    std::vector<BlockId> preds;
    bool isLoopHeader = false;
};

class Graph
{
  public:
    FunctionId function = kInvalidFunction;

    /** Bytecode offset stamped onto nodes by append() (vprof). The
     *  builder keeps it at the bytecode currently being translated. */
    u32 originBc = 0;

    std::vector<IrNode> nodes;
    std::vector<BasicBlock> blocks;
    std::vector<FrameState> frameStates;

    /** Global cells whose value was embedded as a constant (for
     *  code-dependency registration -> lazy deopt). */
    std::vector<u32> embeddedGlobalCells;

    /** Frame state at each loop header's entry (resume point for
     *  checks hoisted out of the loop). */
    std::map<BlockId, u32> headerFrameStates;

    /** ProveChecks audit: one record per live check classified, in
     *  program order. Filled by proveChecks() (see ir/proof.hh). */
    std::vector<CheckProof> proofs;

    IrNode &node(ValueId id) { return nodes.at(id); }
    const IrNode &node(ValueId id) const { return nodes.at(id); }
    BasicBlock &block(BlockId id) { return blocks.at(id); }
    const BasicBlock &block(BlockId id) const { return blocks.at(id); }

    BlockId
    newBlock()
    {
        blocks.emplace_back();
        return static_cast<BlockId>(blocks.size()) - 1;
    }

    /** Append a node to @p b. Returns its ValueId. */
    ValueId
    append(BlockId b, IrNode n)
    {
        n.block = b;
        n.bcOff = originBc;
        nodes.push_back(std::move(n));
        ValueId id = static_cast<ValueId>(nodes.size()) - 1;
        blocks.at(b).nodes.push_back(id);
        return id;
    }

    u32
    addFrameState(FrameState fs)
    {
        frameStates.push_back(std::move(fs));
        return static_cast<u32>(frameStates.size()) - 1;
    }

    /** Count of live (non-dead) check nodes, per group (tests/benches). */
    std::vector<u32> liveChecksPerGroup() const;

    /** Graphviz-free textual dump for tests and debugging. */
    std::string dump() const;
};

} // namespace vspec

#endif // VSPEC_IR_GRAPH_HH
