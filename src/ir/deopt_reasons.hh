/**
 * @file
 * Deoptimization taxonomy, following §II-B of the paper: 52 deopt
 * reasons, each uniquely assigned to one of three categories
 * (deopt-eager / deopt-lazy / deopt-soft), with the eager reasons
 * grouped into the six analysis groups of Fig. 4 (Type, SMI, Not-a-SMI,
 * Boundary, Arithmetic, Other — the paper extends the taxonomy of
 * Southern et al. with Arithmetic-errors and Other).
 */

#ifndef VSPEC_IR_DEOPT_REASONS_HH
#define VSPEC_IR_DEOPT_REASONS_HH

#include <string>
#include <vector>

#include "support/common.hh"

namespace vspec
{

enum class DeoptCategory : u8
{
    Eager,  //!< failed speculation inside optimized code
    Lazy,   //!< code invalidated from outside; deopt at next entry
    Soft,   //!< compiled without feedback; deopt to gather it
};

/** Check groups used throughout the characterization (Fig. 4). */
enum class CheckGroup : u8
{
    Type,        //!< wrong map / wrong instance type
    Smi,         //!< expected heap object, got SMI
    NotASmi,     //!< expected SMI, got heap object
    Boundary,    //!< out-of-bounds array access
    Arithmetic,  //!< overflow, lost precision, div by zero, -0, NaN
    Other,       //!< everything else (holes, insufficient feedback, ...)
    NumGroups,
};

/**
 * Deoptimization reasons. Mirrors V8's DeoptimizeReason list (52
 * entries) so the taxonomy table in the paper can be regenerated
 * exactly; vspec's compiler emits a subset of them but all are
 * registered with category and group.
 */
enum class DeoptReason : u8
{
    // ---- eager: SMI / Not-a-SMI ----
    Smi,                       //!< value unexpectedly a Smi
    NotASmi,                   //!< value expected to be a Smi
    NotAnInteger,
    // ---- eager: type / map ----
    WrongMap,
    WrongInstanceType,
    WrongName,
    NotAHeapNumber,
    NotANumber,
    NotAString,
    NotASymbol,
    NotABigInt,
    NotAFunction,
    NotAJSArray,
    NotABoolean,
    WrongEnumIndices,
    WrongValue,
    InstanceMigrationFailed,
    WrongCallTarget,
    // ---- eager: boundary ----
    OutOfBounds,
    NegativeIndex,
    StringTooLong,
    // ---- eager: arithmetic ----
    Overflow,
    LostPrecision,
    LostPrecisionOrNaN,
    DivisionByZero,
    MinusZero,
    NaN,
    RemainderZero,
    ValueOutOfRange,
    // ---- eager: other ----
    Hole,
    TheHole,
    HoleyArray,
    NotDetectable,
    OutsideOfRange,
    Unknown,
    DeoptimizeNow,
    NoCache,
    NotAnArrayIndex,
    ArrayBufferWasDetached,
    BigIntTooBig,
    CowArrayElementsChanged,
    CouldNotGrowElements,
    UnexpectedContextExtension,
    // ---- soft ----
    InsufficientTypeFeedbackForCall,
    InsufficientTypeFeedbackForBinaryOperation,
    InsufficientTypeFeedbackForCompareOperation,
    InsufficientTypeFeedbackForGenericNamedAccess,
    InsufficientTypeFeedbackForGenericKeyedAccess,
    InsufficientTypeFeedbackForUnaryOperation,
    InsufficientTypeFeedbackForConstruct,
    // ---- lazy ----
    CodeDependencyChange,
    SharedCodeDeoptimized,

    NumReasons,
};

constexpr int kNumDeoptReasons = static_cast<int>(DeoptReason::NumReasons);
static_assert(kNumDeoptReasons == 52,
              "paper: V8 has 52 deoptimization reason types");

const char *deoptReasonName(DeoptReason r);
DeoptCategory deoptCategoryOf(DeoptReason r);
CheckGroup checkGroupOf(DeoptReason r);
const char *deoptCategoryName(DeoptCategory c);
const char *checkGroupName(CheckGroup g);

/** All reasons with a given category (taxonomy table / Fig. 1 bench). */
std::vector<DeoptReason> reasonsInCategory(DeoptCategory c);

} // namespace vspec

#endif // VSPEC_IR_DEOPT_REASONS_HH
