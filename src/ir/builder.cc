#include "ir/builder.hh"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "ir/liveness.hh"

namespace vspec
{

namespace
{

/** Incoming-argument register budget (x0 = this, x1..x7 = args). */
constexpr u32 kMaxMachineParams = 8;

/** Abstract interpreter state: one IR value per frame register + acc. */
struct Env
{
    std::vector<ValueId> regs;
    ValueId acc = kNoValue;

    bool operator==(const Env &o) const
    {
        return regs == o.regs && acc == o.acc;
    }
};

/** Rep join used when unifying phi inputs across build attempts. */
Rep
joinRep(Rep a, Rep b)
{
    if (a == b)
        return a;
    auto num = [](Rep r) { return r == Rep::Int32 || r == Rep::Float64; };
    if ((a == Rep::Bool && b == Rep::Int32)
        || (a == Rep::Int32 && b == Rep::Bool))
        return Rep::Int32;
    if (num(a) && num(b))
        return Rep::Float64;
    return Rep::Tagged;
}

class GraphBuilder
{
  public:
    GraphBuilder(CompilerEnv &env, const FunctionInfo &fn)
        : env(env), fn(fn)
    {}

    std::optional<Graph>
    build()
    {
        if (fn.paramCount + 1 > kMaxMachineParams)
            return std::nullopt;
        liveness.emplace(fn);

        // A cell this function itself stores to can never be embedded
        // as a constant: the activation would keep reading the stale
        // embedded value after its own store (invalidation is lazy and
        // only takes effect at the next entry).
        for (const BcInstr &ins : fn.bytecode)
            if (ins.op == Bc::StaGlobal)
                selfStoredCells.push_back(static_cast<u32>(ins.a));

        // Representation conflicts at phis restart the build with the
        // conflicting slots forced to the joined representation.
        for (int attempt = 0; attempt < 6; attempt++) {
            repConflict = false;
            buildOnce();
            if (!repConflict) {
                inferKnown31();
                return std::move(graph);
            }
        }
        return std::nullopt;
    }

  private:
    // =====================================================================
    // Block discovery and driver
    // =====================================================================

    void
    buildOnce()
    {
        graph = Graph();
        graph.function = fn.id;
        pendingEnvs.clear();
        blockOfBc.clear();
        phiBase.clear();
        frameStateCache.clear();
        headerPhiSlots.clear();

        // Entry block first so emission order is entry, then bytecode
        // blocks in offset order, then split blocks.
        BlockId entry = graph.newBlock();
        findBlockStarts();
        Env env0;
        env0.regs.resize(fn.registerCount, kNoValue);
        for (u32 i = 0; i < fn.registerCount; i++) {
            if (i <= fn.paramCount) {
                IrNode p;
                p.op = IrOp::Param;
                p.rep = Rep::Tagged;
                p.imm = i;
                env0.regs[i] = graph.append(entry, std::move(p));
            } else {
                env0.regs[i] = constTagged(entry,
                                           this->env.vm.undefinedValue.bits());
            }
        }
        env0.acc = constTagged(entry, this->env.vm.undefinedValue.bits());

        // Jump from entry to the first bytecode block.
        BlockId first = blockOfBc.at(0);
        addPending(first, entry, env0);
        endWithGoto(entry, first);

        // Process blocks in bytecode order.
        std::vector<u32> starts;
        for (auto &[bc, blk] : blockOfBc)
            starts.push_back(bc);
        for (size_t s = 0; s < starts.size() && !repConflict; s++) {
            u32 bc_start = starts[s];
            u32 bc_end = (s + 1 < starts.size())
                ? starts[s + 1] : static_cast<u32>(fn.bytecode.size());
            processBlock(bc_start, bc_end);
        }
    }

    void
    findBlockStarts()
    {
        std::set<u32> startSet;
        startSet.insert(0);
        for (size_t i = 0; i < fn.bytecode.size(); i++) {
            const BcInstr &ins = fn.bytecode[i];
            switch (ins.op) {
              case Bc::Jump:
              case Bc::JumpIfFalse:
              case Bc::JumpIfTrue:
                startSet.insert(static_cast<u32>(ins.a));
                startSet.insert(static_cast<u32>(i) + 1);
                // Backward plain jumps (continue in while) are back edges.
                if (static_cast<size_t>(ins.a) <= i)
                    loopHeaders.insert(static_cast<u32>(ins.a));
                break;
              case Bc::JumpLoop:
                startSet.insert(static_cast<u32>(ins.a));
                startSet.insert(static_cast<u32>(i) + 1);
                loopHeaders.insert(static_cast<u32>(ins.a));
                break;
              case Bc::Return:
                startSet.insert(static_cast<u32>(i) + 1);
                break;
              default:
                break;
            }
        }
        for (u32 bc : startSet) {
            if (bc < fn.bytecode.size())
                blockOfBc[bc] = graph.newBlock();
        }
        for (u32 h : loopHeaders) {
            if (blockOfBc.count(h))
                graph.block(blockOfBc[h]).isLoopHeader = true;
        }
    }

    // =====================================================================
    // Env merging / phis
    // =====================================================================

    struct Pending
    {
        BlockId pred;
        Env env;
    };

    void
    addPending(BlockId target, BlockId pred, const Env &e)
    {
        pendingEnvs[target].push_back({pred, e});
        graph.block(target).preds.push_back(pred);
    }

    /** Insert a rep-conversion for @p v at the end of closed pred block
     *  @p pred (before its terminator). Used when a phi needs an input
     *  in a different representation. */
    ValueId
    convertInPred(BlockId pred, const Env &pred_env, u32 header_bc,
                  ValueId v, Rep want)
    {
        IrNode &n = graph.node(v);
        if (n.rep == want)
            return v;
        // Build the conversion node.
        IrNode c;
        c.rep = want;
        c.inputs.push_back(v);
        Rep have = n.rep;
        if (want == Rep::Tagged) {
            if (have == Rep::Int32) {
                c.op = IrOp::TagSmi;
                c.checked = !n.known31;
                c.reason = DeoptReason::Overflow;
            } else if (have == Rep::Bool) {
                c.op = IrOp::BoolToTagged;
            } else {  // Float64
                c.op = IrOp::CallRuntime;
                c.imm = static_cast<i64>(RuntimeFn::BoxFloat64);
            }
        } else if (want == Rep::Float64) {
            if (have == Rep::Int32 || have == Rep::Bool) {
                c.op = IrOp::I32ToF64;
            } else {  // Tagged
                c.op = IrOp::ToFloat64;
                c.reason = DeoptReason::NotANumber;
            }
        } else if (want == Rep::Int32) {
            if (have == Rep::Bool) {
                c.op = IrOp::I32ToBool;  // identity-width move
            } else if (have == Rep::Tagged) {
                // CheckSmi + Untag pair.
                IrNode chk;
                chk.op = IrOp::CheckSmi;
                chk.rep = Rep::Tagged;
                chk.reason = DeoptReason::NotASmi;
                chk.inputs.push_back(v);
                chk.frameState = frameStateForEnv(pred_env, header_bc);
                ValueId cv = insertBeforeTerminator(pred, std::move(chk));
                c.op = IrOp::UntagSmi;
                c.inputs[0] = cv;
                c.known31 = true;
            } else {  // Float64
                c.op = IrOp::F64ToI32;
                c.checked = true;
                c.reason = DeoptReason::LostPrecision;
            }
        } else {
            repConflict = true;  // Bool wanted from wider: rebuild
            return v;
        }
        if (c.op == IrOp::ToFloat64
            || (c.op == IrOp::TagSmi && c.checked)
            || (c.op == IrOp::F64ToI32 && c.checked)) {
            c.frameState = frameStateForEnv(pred_env, header_bc);
        }
        return insertBeforeTerminator(pred, std::move(c));
    }

    ValueId
    insertBeforeTerminator(BlockId b, IrNode n)
    {
        n.block = b;
        graph.nodes.push_back(std::move(n));
        ValueId id = static_cast<ValueId>(graph.nodes.size()) - 1;
        auto &list = graph.block(b).nodes;
        // The block is closed, so its last node is the terminator.
        vassert(!list.empty(), "pred block has no terminator");
        list.insert(list.end() - 1, id);
        return id;
    }

    /**
     * Merge pending envs at the start of @p blk. For loop headers, phis
     * are created for every slot so the (not yet known) back edge can be
     * wired up later. For plain joins, phis are created only where
     * values differ.
     */
    Env
    mergeAtBlockStart(u32 bc_start, BlockId blk)
    {
        auto &pend = pendingEnvs[blk];
        vassert(!pend.empty(), "processBlock with no incoming env");
        bool is_loop = loopHeaders.count(bc_start) != 0;
        size_t nslots = pend[0].env.regs.size() + 1;

        auto slotOf = [&](const Env &e, size_t i) -> ValueId {
            return i < e.regs.size() ? e.regs[i] : e.acc;
        };
        auto setSlot = [&](Env &e, size_t i, ValueId v) {
            if (i < e.regs.size())
                e.regs[i] = v;
            else
                e.acc = v;
        };

        Env merged = pend[0].env;
        for (size_t i = 0; i < nslots; i++) {
            ValueId first = slotOf(pend[0].env, i);
            bool differs = false;
            for (size_t p = 1; p < pend.size(); p++) {
                if (slotOf(pend[p].env, i) != first)
                    differs = true;
            }
            // Dead slots (expression temporaries between uses) never
            // get phis: any incoming value will do, and a phi would
            // force spurious representation conversions with spurious
            // deopt checks on the back edge.
            bool live = i < pend[0].env.regs.size()
                ? liveness->regLiveIn(bc_start, static_cast<u32>(i))
                : liveness->accLiveIn(bc_start);
            if ((!is_loop && !differs) || !live) {
                setSlot(merged, i, first);
                continue;
            }
            // Need a phi. Determine its representation.
            Rep want = graph.node(first).rep;
            for (size_t p = 1; p < pend.size(); p++)
                want = joinRep(want, graph.node(slotOf(pend[p].env, i)).rep);
            auto fit = forcedReps.find({bc_start, i});
            if (fit != forcedReps.end())
                want = joinRep(want, fit->second);

            IrNode phi;
            phi.op = IrOp::Phi;
            phi.rep = want;
            for (size_t p = 0; p < pend.size(); p++) {
                ValueId in = slotOf(pend[p].env, i);
                if (graph.node(in).rep != want) {
                    in = convertInPred(pend[p].pred, pend[p].env, bc_start,
                                       in, want);
                }
                phi.inputs.push_back(in);
            }
            if (is_loop)
                headerPhiSlots[blk].push_back(i);
            setSlot(merged, i, graph.append(blk, std::move(phi)));
        }
        return merged;
    }

    /** Wire a back edge into the loop header phis. */
    void
    addBackEdge(u32 header_bc, BlockId header, BlockId pred, const Env &e)
    {
        graph.block(header).preds.push_back(pred);
        auto slotOf = [&](const Env &env_, size_t i) -> ValueId {
            return i < env_.regs.size() ? env_.regs[i] : env_.acc;
        };
        auto &hdr = graph.block(header);
        const auto &slots = headerPhiSlots[header];
        // Phis are the leading nodes of the header, one per *live* slot.
        size_t phi_at = 0;
        for (size_t i : slots) {
            vassert(phi_at < hdr.nodes.size(), "missing loop phi");
            ValueId phi = hdr.nodes[phi_at++];
            vassert(graph.node(phi).op == IrOp::Phi, "expected loop phi");
            ValueId in = slotOf(e, i);
            Rep want = graph.node(phi).rep;
            Rep have = graph.node(in).rep;
            if (have != want) {
                Rep joined = joinRep(want, have);
                if (joined != want) {
                    // Phi itself must widen: force and rebuild.
                    forcedReps[{header_bc, i}] = joined;
                    repConflict = true;
                    return;
                }
                in = convertInPred(pred, e, header_bc, in, want);
            }
            graph.node(phi).inputs.push_back(in);
        }
    }

    // =====================================================================
    // Frame states
    // =====================================================================

    u32
    frameStateForEnv(const Env &e, u32 bc)
    {
        FrameState fs;
        fs.bytecodeOffset = bc;
        fs.regs = e.regs;
        // Prune registers that are dead at the resume point: the
        // interpreter will never read them, and keeping them alive
        // would extend register pressure for nothing (V8's frame
        // states are liveness-pruned the same way).
        for (size_t i = 0; i < fs.regs.size(); i++) {
            if (!liveness->regLiveIn(bc, static_cast<u32>(i)))
                fs.regs[i] = kNoValue;
        }
        fs.accumulator = liveness->accLiveIn(bc) ? e.acc : kNoValue;
        return graph.addFrameState(std::move(fs));
    }

    /** Frame state at the current bytecode (cached per op). */
    u32
    currentFrameState()
    {
        auto it = frameStateCache.find(curBc);
        if (it != frameStateCache.end())
            return it->second;
        u32 fs = frameStateForEnv(curEnv, curBc);
        frameStateCache[curBc] = fs;
        return fs;
    }

    // =====================================================================
    // Node helpers
    // =====================================================================

    ValueId
    constTagged(BlockId b, u32 bits)
    {
        IrNode n;
        n.op = IrOp::ConstTagged;
        n.rep = Rep::Tagged;
        n.imm = bits;
        return graph.append(b, std::move(n));
    }

    ValueId
    emit(IrNode n)
    {
        return graph.append(curBlock, std::move(n));
    }

    ValueId
    emitConstI32(i32 v)
    {
        IrNode n;
        n.op = IrOp::ConstI32;
        n.rep = Rep::Int32;
        n.imm = v;
        n.known31 = smiFits(v);
        return emit(std::move(n));
    }

    ValueId
    emitConstTagged(u32 bits)
    {
        return constTagged(curBlock, bits);
    }

    ValueId
    emitConstF64(double d)
    {
        IrNode n;
        n.op = IrOp::ConstF64;
        n.rep = Rep::Float64;
        n.fval = d;
        return emit(std::move(n));
    }

    ValueId
    emitCheck(IrOp op, ValueId v, DeoptReason reason, i64 imm = 0,
              ValueId second = kNoValue)
    {
        IrNode n;
        n.op = op;
        n.rep = op == IrOp::CheckBounds ? Rep::Int32 : Rep::Tagged;
        n.reason = reason;
        n.imm = imm;
        n.inputs.push_back(v);
        if (second != kNoValue)
            n.inputs.push_back(second);
        n.frameState = currentFrameState();
        if (op == IrOp::CheckBounds)
            n.known31 = graph.node(v).known31;
        return emit(std::move(n));
    }

    ValueId
    emitBin(IrOp op, Rep rep, ValueId a, ValueId b, bool checked = false,
            DeoptReason reason = DeoptReason::Unknown)
    {
        IrNode n;
        n.op = op;
        n.rep = rep;
        n.checked = checked;
        n.reason = reason;
        n.inputs = {a, b};
        if (checked)
            n.frameState = currentFrameState();
        if (checked && rep == Rep::Int32)
            n.known31 = true;  // deopts when leaving SMI range
        return emit(std::move(n));
    }

    ValueId
    emitRuntime(RuntimeFn rt, std::vector<ValueId> args,
                Rep result = Rep::Tagged)
    {
        IrNode n;
        n.op = IrOp::CallRuntime;
        n.rep = result;
        n.imm = static_cast<i64>(rt);
        n.inputs = std::move(args);
        n.frameState = currentFrameState();
        return emit(std::move(n));
    }

    // ---- representation coercions (speculation happens here) --------------

    /** Use @p v as an untagged machine integer (SMI speculation). */
    ValueId
    useI32(ValueId v)
    {
        const IrNode &n = graph.node(v);
        switch (n.rep) {
          case Rep::Int32:
          case Rep::Bool:
            return v;
          case Rep::Tagged: {
            if (n.op == IrOp::ConstTagged && (n.imm & 1) == 0) {
                return emitConstI32(static_cast<i32>(n.imm) >> 1);
            }
            ValueId chk = emitCheck(IrOp::CheckSmi, v, DeoptReason::NotASmi);
            IrNode u;
            u.op = IrOp::UntagSmi;
            u.rep = Rep::Int32;
            u.known31 = true;
            u.inputs.push_back(chk);
            return emit(std::move(u));
          }
          case Rep::Float64: {
            IrNode c;
            c.op = IrOp::F64ToI32;
            c.rep = Rep::Int32;
            c.checked = true;
            c.reason = DeoptReason::LostPrecision;
            c.frameState = currentFrameState();
            c.inputs.push_back(v);
            return emit(std::move(c));
          }
          default:
            vpanic("useI32 on valueless node");
        }
    }

    /** Like useI32, but with ECMAScript ToInt32 truncation semantics
     *  for Float64 inputs (bit-op operands never deopt on precision). */
    ValueId
    useI32Truncating(ValueId v)
    {
        if (graph.node(v).rep != Rep::Float64)
            return useI32(v);
        IrNode c;
        c.op = IrOp::F64ToI32;
        c.rep = Rep::Int32;
        c.checked = false;
        c.inputs.push_back(v);
        return emit(std::move(c));
    }

    ValueId
    useF64(ValueId v)
    {
        const IrNode &n = graph.node(v);
        switch (n.rep) {
          case Rep::Float64:
            return v;
          case Rep::Int32:
          case Rep::Bool: {
            IrNode c;
            c.op = IrOp::I32ToF64;
            c.rep = Rep::Float64;
            c.inputs.push_back(v);
            return emit(std::move(c));
          }
          case Rep::Tagged: {
            if (n.op == IrOp::ConstTagged && (n.imm & 1) == 0)
                return emitConstF64(static_cast<i32>(n.imm) >> 1);
            IrNode c;
            c.op = IrOp::ToFloat64;
            c.rep = Rep::Float64;
            c.reason = DeoptReason::NotANumber;
            c.frameState = currentFrameState();
            c.inputs.push_back(v);
            return emit(std::move(c));
          }
          default:
            vpanic("useF64 on valueless node");
        }
    }

    ValueId
    useTagged(ValueId v)
    {
        const IrNode &n = graph.node(v);
        switch (n.rep) {
          case Rep::Tagged:
            return v;
          case Rep::Int32: {
            IrNode c;
            c.op = IrOp::TagSmi;
            c.rep = Rep::Tagged;
            c.inputs.push_back(v);
            if (!n.known31) {
                c.checked = true;
                c.reason = DeoptReason::Overflow;
                c.frameState = currentFrameState();
            }
            return emit(std::move(c));
          }
          case Rep::Bool: {
            IrNode c;
            c.op = IrOp::BoolToTagged;
            c.rep = Rep::Tagged;
            c.inputs.push_back(v);
            return emit(std::move(c));
          }
          case Rep::Float64:
            return emitRuntime(RuntimeFn::BoxFloat64, {v});
          default:
            vpanic("useTagged on valueless node");
        }
    }

    ValueId
    useBool(ValueId v)
    {
        const IrNode &n = graph.node(v);
        switch (n.rep) {
          case Rep::Bool:
            return v;
          case Rep::Int32: {
            IrNode c;
            c.op = IrOp::I32ToBool;
            c.rep = Rep::Bool;
            c.inputs.push_back(v);
            return emit(std::move(c));
          }
          case Rep::Float64: {
            IrNode c;
            c.op = IrOp::F64ToBool;
            c.rep = Rep::Bool;
            c.inputs.push_back(v);
            return emit(std::move(c));
          }
          case Rep::Tagged: {
            if (n.op == IrOp::ConstTagged) {
                if (n.imm == env.vm.trueValue.bits())
                    return emitConstBool(true);
                if (n.imm == env.vm.falseValue.bits())
                    return emitConstBool(false);
            }
            return emitRuntime(RuntimeFn::ToBoolean, {v}, Rep::Bool);
          }
          default:
            vpanic("useBool on valueless node");
        }
    }

    ValueId
    emitConstBool(bool b)
    {
        IrNode n;
        n.op = IrOp::ConstI32;
        n.rep = Rep::Bool;
        n.imm = b ? 1 : 0;
        return emit(std::move(n));
    }

    // =====================================================================
    // Block processing
    // =====================================================================

    void
    endWithGoto(BlockId from, BlockId to)
    {
        IrNode g;
        g.op = IrOp::Goto;
        graph.append(from, std::move(g));
        graph.block(from).succTrue = to;
    }

    void
    processBlock(u32 bc_start, u32 bc_end)
    {
        BlockId blk = blockOfBc.at(bc_start);
        if (!pendingEnvs.count(blk) || pendingEnvs[blk].empty())
            return;  // unreachable

        curBlock = blk;
        curEnv = mergeAtBlockStart(bc_start, blk);
        if (repConflict)
            return;
        if (graph.block(blk).isLoopHeader) {
            // Record the header-entry frame state: checks hoisted out
            // of this loop deoptimize to the loop's first iteration.
            graph.headerFrameStates[blk] = frameStateForEnv(curEnv,
                                                            bc_start);
        }
        bool closed = false;

        for (u32 bc = bc_start; bc < bc_end && !closed && !repConflict;
             bc++) {
            curBc = bc;
            graph.originBc = bc;
            frameStateCache.erase(bc);  // env may have changed
            closed = processInstr(bc, fn.bytecode[bc], bc_end);
        }
        if (!closed && !repConflict) {
            // Fall through into the next block.
            vassert(blockOfBc.count(bc_end), "fallthrough off the end");
            BlockId next = blockOfBc.at(bc_end);
            if (loopHeaders.count(bc_end) && graph.block(next).nodes.size()) {
                endWithGoto(curBlock, next);
                addBackEdge(bc_end, next, curBlock, curEnv);
            } else {
                addPending(next, curBlock, curEnv);
                endWithGoto(curBlock, next);
            }
        }
    }

    /** @return true if the instruction terminated the block. */
    bool processInstr(u32 bc, const BcInstr &ins, u32 bc_end);

    // ---- per-op helpers used by processInstr -------------------------------

    void buildBinaryOp(const BcInstr &ins, Bc op);
    void buildCompareOp(const BcInstr &ins, Bc op);
    void buildUnaryNumeric(const BcInstr &ins, Bc op);
    void buildGetNamed(const BcInstr &ins);
    void buildSetNamed(const BcInstr &ins);
    void buildGetElement(const BcInstr &ins);
    void buildSetElement(const BcInstr &ins);
    void buildCall(const BcInstr &ins, bool method);
    bool buildSoftDeopt(DeoptReason reason);
    void verifyTarget(ValueId callee, u32 cell_bits);
    void inferKnown31();

    /** CheckHeapObject + CheckMap for the receiver speculation. */
    ValueId
    checkReceiverMap(ValueId obj, MapId map, DeoptReason map_reason)
    {
        ValueId h = emitCheck(IrOp::CheckHeapObject, obj, DeoptReason::Smi);
        return emitCheck(IrOp::CheckMap, h, map_reason,
                         static_cast<i64>(map));
    }

    /** LoadField producing a Tagged slot value. */
    ValueId
    emitLoadField(ValueId base, u32 offset, bool raw = false)
    {
        IrNode n;
        n.op = raw ? IrOp::LoadFieldRaw : IrOp::LoadField;
        n.rep = raw ? Rep::Int32 : Rep::Tagged;
        // Tagged base pointers carry +1; fold -1 into the offset.
        n.imm = static_cast<i64>(offset) - 1;
        n.inputs.push_back(base);
        if (raw)
            n.known31 = true;  // lengths/capacities are < 2^31
        else
            // Fusable tagged load: if SMI-load fusion later folds a
            // check into this node, the deopt must resume at *this*
            // bytecode (re-executing the side-effect-free load), not
            // at the consumer the CheckSmi was emitted for — the
            // consumer's frame state can name values computed after
            // this load.
            n.frameState = currentFrameState();
        return emit(std::move(n));
    }

    CompilerEnv &env;
    const FunctionInfo &fn;
    Graph graph;

    std::map<u32, BlockId> blockOfBc;
    std::set<u32> loopHeaders;
    std::map<BlockId, std::vector<Pending>> pendingEnvs;
    std::map<BlockId, size_t> phiBase;
    std::map<BlockId, std::vector<size_t>> headerPhiSlots;
    std::optional<BytecodeLiveness> liveness;
    std::map<u32, u32> frameStateCache;
    std::map<std::pair<u32, size_t>, Rep> forcedReps;
    std::vector<u32> selfStoredCells;
    bool repConflict = false;

    BlockId curBlock = kNoBlock;
    Env curEnv;
    u32 curBc = 0;
    bool blockEndedInDeopt = false;
};

bool
GraphBuilder::buildSoftDeopt(DeoptReason reason)
{
    IrNode d;
    d.op = IrOp::Deopt;
    d.reason = reason;
    d.frameState = currentFrameState();
    emit(std::move(d));
    return true;  // block terminated
}

void
GraphBuilder::buildBinaryOp(const BcInstr &ins, Bc op)
{
    const FeedbackSlot &slot = fn.feedback.at(ins.b);
    OperandFeedback fb = slot.operands;
    ValueId lhs = curEnv.regs[ins.a];
    ValueId rhs = curEnv.acc;

    // Representation reality can be wider than stale feedback; widen.
    auto repFb = [&](ValueId v) {
        switch (graph.node(v).rep) {
          case Rep::Float64: return OperandFeedback::Number;
          case Rep::Int32: case Rep::Bool: return OperandFeedback::Smi;
          default: return OperandFeedback::Smi;  // tagged: trust feedback
        }
    };
    fb = joinOperand(fb, joinOperand(repFb(lhs), repFb(rhs)));

    bool is_bitop = op == Bc::BitAnd || op == Bc::BitOr || op == Bc::BitXor
                    || op == Bc::Shl || op == Bc::Sar || op == Bc::Shr;

    if (fb == OperandFeedback::Smi
        || (is_bitop && fb == OperandFeedback::Number)) {
        ValueId a = is_bitop ? useI32Truncating(lhs) : useI32(lhs);
        ValueId b = is_bitop ? useI32Truncating(rhs) : useI32(rhs);
        IrOp iop;
        bool checked = true;
        DeoptReason reason = DeoptReason::Overflow;
        switch (op) {
          case Bc::Add: iop = IrOp::I32Add; break;
          case Bc::Sub: iop = IrOp::I32Sub; break;
          case Bc::Mul: iop = IrOp::I32Mul; break;
          case Bc::Div:
            iop = IrOp::I32Div;
            reason = DeoptReason::LostPrecision;
            break;
          case Bc::Mod:
            iop = IrOp::I32Mod;
            reason = DeoptReason::MinusZero;
            break;
          case Bc::BitAnd: iop = IrOp::I32And; checked = false; break;
          case Bc::BitOr: iop = IrOp::I32Or; checked = false; break;
          case Bc::BitXor: iop = IrOp::I32Xor; checked = false; break;
          case Bc::Shl: iop = IrOp::I32Shl; checked = false; break;
          case Bc::Sar: iop = IrOp::I32Sar; checked = false; break;
          case Bc::Shr:
            iop = IrOp::I32Shr;
            checked = true;
            reason = DeoptReason::LostPrecision;
            break;
          default: vpanic("bad smi binary op");
        }
        curEnv.acc = emitBin(iop, Rep::Int32, a, b, checked, reason);
        return;
    }
    if (fb == OperandFeedback::Number) {
        ValueId a = useF64(lhs);
        ValueId b = useF64(rhs);
        IrOp iop;
        switch (op) {
          case Bc::Add: iop = IrOp::F64Add; break;
          case Bc::Sub: iop = IrOp::F64Sub; break;
          case Bc::Mul: iop = IrOp::F64Mul; break;
          case Bc::Div: iop = IrOp::F64Div; break;
          case Bc::Mod: iop = IrOp::F64Mod; break;
          default: vpanic("bad number binary op");
        }
        curEnv.acc = emitBin(iop, Rep::Float64, a, b);
        return;
    }
    if (fb == OperandFeedback::String && op == Bc::Add) {
        curEnv.acc = emitRuntime(RuntimeFn::StringConcat,
                                 {useTagged(lhs), useTagged(rhs)});
        return;
    }
    // Generic path.
    curEnv.acc = emitRuntime(RuntimeFn::GenericAdd,
                             {useTagged(lhs), useTagged(rhs),
                              emitConstI32(static_cast<i32>(op))});
}

void
GraphBuilder::buildCompareOp(const BcInstr &ins, Bc op)
{
    const FeedbackSlot &slot = fn.feedback.at(ins.b);
    OperandFeedback fb = slot.operands;
    ValueId lhs = curEnv.regs[ins.a];
    ValueId rhs = curEnv.acc;

    auto repIsNum = [&](ValueId v) {
        Rep r = graph.node(v).rep;
        return r == Rep::Float64 || r == Rep::Int32 || r == Rep::Bool;
    };
    if (graph.node(lhs).rep == Rep::Float64
        || graph.node(rhs).rep == Rep::Float64)
        fb = joinOperand(fb, OperandFeedback::Number);
    else if (repIsNum(lhs) && repIsNum(rhs))
        fb = joinOperand(fb, OperandFeedback::Smi);

    Cond cond;
    switch (op) {
      case Bc::TestLess: cond = Cond::Lt; break;
      case Bc::TestLessEq: cond = Cond::Le; break;
      case Bc::TestGreater: cond = Cond::Gt; break;
      case Bc::TestGreaterEq: cond = Cond::Ge; break;
      case Bc::TestEq: case Bc::TestStrictEq: cond = Cond::Eq; break;
      default: cond = Cond::Ne; break;
    }

    if (fb == OperandFeedback::Smi) {
        IrNode n;
        n.op = IrOp::I32Compare;
        n.rep = Rep::Bool;
        n.cond = cond;
        n.inputs = {useI32(lhs), useI32(rhs)};
        curEnv.acc = emit(std::move(n));
        return;
    }
    if (fb == OperandFeedback::Number) {
        IrNode n;
        n.op = IrOp::F64Compare;
        n.rep = Rep::Bool;
        n.cond = cond;
        n.inputs = {useF64(lhs), useF64(rhs)};
        curEnv.acc = emit(std::move(n));
        return;
    }
    if (fb == OperandFeedback::String
        && (op == Bc::TestEq || op == Bc::TestStrictEq
            || op == Bc::TestNotEq || op == Bc::TestStrictNotEq)) {
        ValueId eq = emitRuntime(RuntimeFn::StringEqual,
                                 {useTagged(lhs), useTagged(rhs)}, Rep::Bool);
        if (op == Bc::TestNotEq || op == Bc::TestStrictNotEq) {
            IrNode nn;
            nn.op = IrOp::BoolNot;
            nn.rep = Rep::Bool;
            nn.inputs.push_back(eq);
            eq = emit(std::move(nn));
        }
        curEnv.acc = eq;
        return;
    }
    curEnv.acc = emitRuntime(RuntimeFn::GenericCompare,
                             {useTagged(lhs), useTagged(rhs),
                              emitConstI32(static_cast<i32>(op))},
                             Rep::Bool);
}

void
GraphBuilder::buildUnaryNumeric(const BcInstr &ins, Bc op)
{
    const FeedbackSlot &slot = fn.feedback.at(ins.a);
    OperandFeedback fb = slot.operands;
    ValueId v = curEnv.acc;
    if (graph.node(v).rep == Rep::Float64)
        fb = joinOperand(fb, OperandFeedback::Number);
    else if (graph.node(v).rep == Rep::Int32)
        fb = joinOperand(fb, OperandFeedback::Smi);

    switch (op) {
      case Bc::Inc:
      case Bc::Dec: {
        if (fb == OperandFeedback::Smi) {
            ValueId a = useI32(v);
            ValueId one = emitConstI32(1);
            curEnv.acc = emitBin(op == Bc::Inc ? IrOp::I32Add : IrOp::I32Sub,
                                 Rep::Int32, a, one, true,
                                 DeoptReason::Overflow);
        } else {
            ValueId a = useF64(v);
            ValueId one = emitConstF64(1.0);
            curEnv.acc = emitBin(op == Bc::Inc ? IrOp::F64Add : IrOp::F64Sub,
                                 Rep::Float64, a, one);
        }
        break;
      }
      case Bc::Negate: {
        if (fb == OperandFeedback::Smi) {
            ValueId a = useI32(v);
            IrNode n;
            n.op = IrOp::I32Neg;
            n.rep = Rep::Int32;
            n.checked = true;
            n.reason = DeoptReason::MinusZero;  // also kSmiMin overflow
            n.frameState = currentFrameState();
            n.known31 = true;
            n.inputs.push_back(a);
            curEnv.acc = emit(std::move(n));
        } else {
            IrNode n;
            n.op = IrOp::F64Neg;
            n.rep = Rep::Float64;
            n.inputs.push_back(useF64(v));
            curEnv.acc = emit(std::move(n));
        }
        break;
      }
      case Bc::BitNot: {
        ValueId a = useI32Truncating(v);
        ValueId minus1 = emitConstI32(-1);
        curEnv.acc = emitBin(IrOp::I32Xor, Rep::Int32, a, minus1);
        break;
      }
      case Bc::ToNumber: {
        Rep r = graph.node(v).rep;
        if (r == Rep::Int32 || r == Rep::Float64)
            break;  // already numeric
        curEnv.acc = emitRuntime(RuntimeFn::ToNumberRt, {useTagged(v)});
        break;
      }
      default:
        vpanic("bad unary numeric op");
    }
}

void
GraphBuilder::buildGetNamed(const BcInstr &ins)
{
    const FeedbackSlot &slot = fn.feedback.at(ins.c);
    const PropertyFeedback &pf = slot.property;
    ValueId obj = curEnv.regs[ins.a];

    if (pf.sawArrayLength && !pf.lengthPolymorphic
        && pf.lengthMap != kInvalidMap) {
        ValueId chk = checkReceiverMap(obj, pf.lengthMap,
                                       DeoptReason::NotAJSArray);
        curEnv.acc = emitLoadField(chk, HeapLayout::kArrayLengthOffset, true);
        return;
    }
    if (pf.sawStringLength) {
        ValueId chk = checkReceiverMap(obj, env.vm.maps.stringMap(),
                                       DeoptReason::NotAString);
        curEnv.acc = emitLoadField(chk, HeapLayout::kAuxOffset, true);
        return;
    }
    if (pf.builtinMethod != 0 && pf.builtinReceiverMap != kInvalidMap
        && !pf.sawGeneric) {
        // A builtin method off a string/array receiver: map-check the
        // receiver, then the method is a known constant cell.
        checkReceiverMap(obj, pf.builtinReceiverMap,
                         DeoptReason::WrongInstanceType);
        FunctionId fid = env.functions.idOf(
            builtinName(static_cast<BuiltinId>(pf.builtinMethod)));
        vassert(fid != kInvalidFunction, "builtin method not registered");
        Addr cell = env.functions.at(fid).cellAddr;
        curEnv.acc = emitConstTagged(cell | 1u);
        return;
    }
    if (pf.isMonomorphic() && !pf.sawGeneric) {
        const auto &e = pf.entries[0];
        ValueId chk = checkReceiverMap(obj, e.map, DeoptReason::WrongMap);
        curEnv.acc = emitLoadField(
            chk, HeapLayout::kObjectSlotsOffset
                 + 4 * static_cast<u32>(e.slotIndex));
        return;
    }
    if (pf.state == PropertyFeedback::State::None && !pf.sawGeneric) {
        buildSoftDeopt(
            DeoptReason::InsufficientTypeFeedbackForGenericNamedAccess);
        blockEndedInDeopt = true;
        return;
    }
    curEnv.acc = emitRuntime(RuntimeFn::GenericGetNamed,
                             {useTagged(obj), emitConstI32(ins.b)});
}

void
GraphBuilder::buildSetNamed(const BcInstr &ins)
{
    const FeedbackSlot &slot = fn.feedback.at(ins.c);
    const PropertyFeedback &pf = slot.property;
    ValueId obj = curEnv.regs[ins.a];
    ValueId val = curEnv.acc;

    if (pf.isMonomorphic() && !pf.sawGeneric) {
        const auto &e = pf.entries[0];
        ValueId chk = checkReceiverMap(obj, e.map, DeoptReason::WrongMap);
        ValueId tv = useTagged(val);
        IrNode st;
        st.op = IrOp::StoreField;
        st.imm = static_cast<i64>(HeapLayout::kObjectSlotsOffset
                                  + 4 * static_cast<u32>(e.slotIndex)) - 1;
        st.inputs = {chk, tv};
        emit(std::move(st));
        if (e.transition != kInvalidMap) {
            // Transitioning store: also write the new map word.
            IrNode sm;
            sm.op = IrOp::StoreFieldRaw;
            sm.imm = static_cast<i64>(HeapLayout::kMapOffset) - 1;
            sm.inputs = {chk,
                         emitConstI32(static_cast<i32>(
                             env.vm.maps.mapWord(e.transition)))};
            emit(std::move(sm));
        }
        return;
    }
    if (pf.state == PropertyFeedback::State::None && !pf.sawGeneric) {
        buildSoftDeopt(
            DeoptReason::InsufficientTypeFeedbackForGenericNamedAccess);
        blockEndedInDeopt = true;
        return;
    }
    emitRuntime(RuntimeFn::GenericSetNamed,
                {useTagged(obj), emitConstI32(ins.b), useTagged(val)},
                Rep::None);
}

void
GraphBuilder::buildGetElement(const BcInstr &ins)
{
    const FeedbackSlot &slot = fn.feedback.at(ins.b);
    const ElementFeedback &ef = slot.element;
    ValueId obj = curEnv.regs[ins.a];
    ValueId key = curEnv.acc;

    if (ef.state == ElementFeedback::State::Typed && !ef.sawString
        && !ef.sawOutOfBounds) {
        ValueId arr = checkReceiverMap(obj, ef.arrayMap,
                                       DeoptReason::WrongMap);
        ValueId idx = useI32(key);
        ValueId len = emitLoadField(arr, HeapLayout::kArrayLengthOffset,
                                    true);
        ValueId bidx = emitCheck(IrOp::CheckBounds, idx,
                                 DeoptReason::OutOfBounds, 0, len);
        ValueId elems = emitLoadField(arr, HeapLayout::kArrayElementsOffset);
        IrNode ld;
        if (ef.kind == ElementKind::Double) {
            ld.op = IrOp::LoadElemF64;
            ld.rep = Rep::Float64;
        } else {
            ld.op = IrOp::LoadElem32;
            ld.rep = Rep::Tagged;
            // Fusable (see emitLoadField): deopt resumes here.
            ld.frameState = currentFrameState();
        }
        ld.imm = static_cast<i64>(HeapLayout::kElementsDataOffset) - 1;
        ld.inputs = {elems, bidx};
        curEnv.acc = emit(std::move(ld));
        return;
    }
    if (ef.state == ElementFeedback::State::None && !ef.sawString) {
        buildSoftDeopt(
            DeoptReason::InsufficientTypeFeedbackForGenericKeyedAccess);
        blockEndedInDeopt = true;
        return;
    }
    curEnv.acc = emitRuntime(RuntimeFn::GenericGetElement,
                             {useTagged(obj), useTagged(key)});
}

void
GraphBuilder::buildSetElement(const BcInstr &ins)
{
    const FeedbackSlot &slot = fn.feedback.at(ins.c);
    const ElementFeedback &ef = slot.element;
    ValueId obj = curEnv.regs[ins.a];
    ValueId key = curEnv.regs[ins.b];
    ValueId val = curEnv.acc;

    if (ef.state == ElementFeedback::State::Typed && !ef.sawString) {
        ValueId arr = checkReceiverMap(obj, ef.arrayMap,
                                       DeoptReason::WrongMap);
        if (ef.sawGrowth || ef.sawOutOfBounds) {
            // Appending stores go through the runtime grow-store helper.
            emitRuntime(RuntimeFn::GrowArrayStore,
                        {arr, useI32(key), useTagged(val)}, Rep::None);
            return;
        }
        ValueId idx = useI32(key);
        ValueId len = emitLoadField(arr, HeapLayout::kArrayLengthOffset,
                                    true);
        ValueId bidx = emitCheck(IrOp::CheckBounds, idx,
                                 DeoptReason::OutOfBounds, 0, len);
        ValueId elems = emitLoadField(arr, HeapLayout::kArrayElementsOffset);
        IrNode st;
        st.imm = static_cast<i64>(HeapLayout::kElementsDataOffset) - 1;
        if (ef.kind == ElementKind::Double) {
            st.op = IrOp::StoreElemF64;
            st.inputs = {elems, bidx, useF64(val)};
        } else if (ef.kind == ElementKind::Smi) {
            // Storing into a PACKED_SMI array: the value must be an SMI.
            ValueId tv = useTagged(useI32(val));
            st.op = IrOp::StoreElem32;
            st.inputs = {elems, bidx, tv};
        } else {
            st.op = IrOp::StoreElem32;
            st.inputs = {elems, bidx, useTagged(val)};
        }
        emit(std::move(st));
        return;
    }
    if (ef.state == ElementFeedback::State::None && !ef.sawString) {
        buildSoftDeopt(
            DeoptReason::InsufficientTypeFeedbackForGenericKeyedAccess);
        blockEndedInDeopt = true;
        return;
    }
    emitRuntime(RuntimeFn::GenericSetElement,
                {useTagged(obj), useTagged(key), useTagged(val)}, Rep::None);
}

void
GraphBuilder::buildCall(const BcInstr &ins, bool method)
{
    const FeedbackSlot &slot = fn.feedback.at(callSlot(ins.c));
    const CallFeedback &cf = slot.call;
    int argc = callArgc(ins.c);
    ValueId callee = curEnv.regs[ins.a];
    ValueId this_v = method ? curEnv.regs[ins.b]
                            : emitConstTagged(env.vm.undefinedValue.bits());
    int first_arg = method ? ins.b + 1 : ins.b;

    std::vector<ValueId> args;
    for (int i = 0; i < argc; i++)
        args.push_back(curEnv.regs[first_arg + i]);

    if (cf.state == CallFeedback::State::None) {
        buildSoftDeopt(DeoptReason::InsufficientTypeFeedbackForCall);
        blockEndedInDeopt = true;
        return;
    }

    if (cf.state == CallFeedback::State::Monomorphic) {
        const FunctionInfo &target = env.functions.at(cf.target);
        u32 cell_bits = target.cellAddr | 1u;

        // Inline a few pure math builtins directly.
        if (target.builtin == BuiltinId::MathSqrt && argc == 1) {
            verifyTarget(callee, cell_bits);
            IrNode n;
            n.op = IrOp::F64Sqrt;
            n.rep = Rep::Float64;
            n.inputs.push_back(useF64(args[0]));
            curEnv.acc = emit(std::move(n));
            return;
        }
        if (target.builtin == BuiltinId::MathAbs && argc == 1
            && graph.node(args[0]).rep == Rep::Float64) {
            verifyTarget(callee, cell_bits);
            IrNode n;
            n.op = IrOp::F64Abs;
            n.rep = Rep::Float64;
            n.inputs.push_back(args[0]);
            curEnv.acc = emit(std::move(n));
            return;
        }

        verifyTarget(callee, cell_bits);
        IrNode call;
        call.op = IrOp::CallFunction;
        call.rep = Rep::Tagged;
        call.imm = cf.target;
        call.inputs.push_back(useTagged(this_v));
        for (ValueId a : args)
            call.inputs.push_back(useTagged(a));
        call.frameState = currentFrameState();
        curEnv.acc = emit(std::move(call));
        return;
    }

    // Megamorphic: fully dynamic dispatch through the runtime.
    std::vector<ValueId> rt_args;
    rt_args.push_back(useTagged(callee));
    rt_args.push_back(useTagged(this_v));
    for (ValueId a : args)
        rt_args.push_back(useTagged(a));
    curEnv.acc = emitRuntime(RuntimeFn::CallFunction, std::move(rt_args));
}

/** Emit a WrongCallTarget check unless the callee is already the
 *  expected constant. */
void
GraphBuilder::verifyTarget(ValueId callee, u32 cell_bits)
{
    const IrNode &n = graph.node(callee);
    if (n.op == IrOp::ConstTagged && n.imm == cell_bits)
        return;
    emitCheck(IrOp::CheckValue, callee, DeoptReason::WrongCallTarget,
              cell_bits);
}

bool
GraphBuilder::processInstr(u32 bc, const BcInstr &ins, u32 bc_end)
{
    blockEndedInDeopt = false;
    switch (ins.op) {
      case Bc::LdaSmi:
        curEnv.acc = emitConstI32(ins.a);
        break;
      case Bc::LdaConst: {
        Value c = fn.constants.at(ins.a);
        if (c.isHeap()
            && env.vm.typeOf(c.asAddr()) == InstanceType::HeapNumber) {
            curEnv.acc = emitConstF64(env.vm.numberOf(c));
        } else {
            curEnv.acc = emitConstTagged(c.bits());
        }
        break;
      }
      case Bc::LdaUndefined:
        curEnv.acc = emitConstTagged(env.vm.undefinedValue.bits());
        break;
      case Bc::LdaNull:
        curEnv.acc = emitConstTagged(env.vm.nullValue.bits());
        break;
      case Bc::LdaTrue:
        curEnv.acc = emitConstTagged(env.vm.trueValue.bits());
        break;
      case Bc::LdaFalse:
        curEnv.acc = emitConstTagged(env.vm.falseValue.bits());
        break;
      case Bc::LdaGlobal: {
        u32 cell = static_cast<u32>(ins.a);
        // Constant-cell speculation: a global written at most once can
        // be embedded; a later write triggers lazy deoptimization. A
        // cell this very function stores to is excluded (see build()).
        bool self_stored =
            std::find(selfStoredCells.begin(), selfStoredCells.end(),
                      cell) != selfStoredCells.end();
        if (!self_stored && env.globals.writeCount(cell) <= 1) {
            curEnv.acc = emitConstTagged(env.globals.load(cell).bits());
            graph.embeddedGlobalCells.push_back(cell);
        } else {
            IrNode n;
            n.op = IrOp::LoadGlobal;
            n.rep = Rep::Tagged;
            n.imm = env.globals.cellAddr(cell);
            curEnv.acc = emit(std::move(n));
        }
        break;
      }
      case Bc::StaGlobal: {
        u32 cell = static_cast<u32>(ins.a);
        // A cell still believed constant may be embedded in optimized
        // code (possibly this very graph), so the store has to go
        // through the runtime to bump the write count and invalidate
        // dependents. Once the cell is known mutable, write counting no
        // longer matters and a raw store is safe — and fast.
        if (env.globals.writeCount(cell) <= 1) {
            emitRuntime(RuntimeFn::StoreGlobalRt,
                        {useTagged(curEnv.acc),
                         emitConstI32(static_cast<i32>(cell))});
        } else {
            IrNode n;
            n.op = IrOp::StoreGlobal;
            n.imm = env.globals.cellAddr(cell);
            n.inputs.push_back(useTagged(curEnv.acc));
            emit(std::move(n));
        }
        break;
      }
      case Bc::Ldar:
        curEnv.acc = curEnv.regs[ins.a];
        break;
      case Bc::Star:
        curEnv.regs[ins.a] = curEnv.acc;
        break;
      case Bc::Mov:
        curEnv.regs[ins.a] = curEnv.regs[ins.b];
        break;

      case Bc::Add: case Bc::Sub: case Bc::Mul: case Bc::Div: case Bc::Mod:
      case Bc::BitAnd: case Bc::BitOr: case Bc::BitXor:
      case Bc::Shl: case Bc::Sar: case Bc::Shr:
        if (fn.feedback.at(ins.b).operands == OperandFeedback::None
            && graph.node(curEnv.regs[ins.a]).rep == Rep::Tagged
            && graph.node(curEnv.acc).rep == Rep::Tagged) {
            return buildSoftDeopt(
                DeoptReason::InsufficientTypeFeedbackForBinaryOperation);
        }
        buildBinaryOp(ins, ins.op);
        break;

      case Bc::TestLess: case Bc::TestLessEq: case Bc::TestGreater:
      case Bc::TestGreaterEq: case Bc::TestEq: case Bc::TestNotEq:
      case Bc::TestStrictEq: case Bc::TestStrictNotEq:
        if (fn.feedback.at(ins.b).operands == OperandFeedback::None
            && graph.node(curEnv.regs[ins.a]).rep == Rep::Tagged
            && graph.node(curEnv.acc).rep == Rep::Tagged) {
            return buildSoftDeopt(
                DeoptReason::InsufficientTypeFeedbackForCompareOperation);
        }
        buildCompareOp(ins, ins.op);
        break;

      case Bc::Inc: case Bc::Dec: case Bc::Negate: case Bc::BitNot:
      case Bc::ToNumber:
        buildUnaryNumeric(ins, ins.op);
        break;

      case Bc::LogicalNot:
        curEnv.acc = [&] {
            IrNode n;
            n.op = IrOp::BoolNot;
            n.rep = Rep::Bool;
            n.inputs.push_back(useBool(curEnv.acc));
            return emit(std::move(n));
        }();
        break;

      case Bc::TypeOf:
        curEnv.acc = emitRuntime(RuntimeFn::TypeOfRt,
                                 {useTagged(curEnv.acc)});
        break;

      case Bc::Jump: {
        u32 target_bc = static_cast<u32>(ins.a);
        BlockId target = blockOfBc.at(target_bc);
        if (target_bc <= bc) {
            // Backward jump: back edge into an already-built header.
            // Emit the terminator *first* so that representation
            // conversions for phi inputs are inserted before it (and
            // after the values they consume).
            IrNode g;
            g.op = IrOp::Goto;
            graph.append(curBlock, std::move(g));
            graph.block(curBlock).succTrue = target;
            addBackEdge(target_bc, target, curBlock, curEnv);
            return true;
        }
        addPending(target, curBlock, curEnv);
        endWithGoto(curBlock, target);
        return true;
      }
      case Bc::JumpLoop: {
        u32 header_bc = static_cast<u32>(ins.a);
        BlockId header = blockOfBc.at(header_bc);
        // Terminator first: conversions for back-edge phi inputs must
        // be inserted after the values they consume (see Bc::Jump).
        IrNode g;
        g.op = IrOp::Goto;
        graph.append(curBlock, std::move(g));
        graph.block(curBlock).succTrue = header;
        addBackEdge(header_bc, header, curBlock, curEnv);
        return true;
      }
      case Bc::JumpIfFalse:
      case Bc::JumpIfTrue: {
        ValueId cond = useBool(curEnv.acc);
        BlockId target = blockOfBc.at(static_cast<u32>(ins.a));
        BlockId fall = blockOfBc.at(bc + 1);
        IrNode br;
        br.op = IrOp::Branch;
        br.inputs.push_back(cond);
        graph.append(curBlock, std::move(br));
        BlockId on_true = ins.op == Bc::JumpIfTrue ? target : fall;
        BlockId on_false = ins.op == Bc::JumpIfTrue ? fall : target;
        graph.block(curBlock).succTrue = on_true;
        graph.block(curBlock).succFalse = on_false;
        addPending(on_true, curBlock, curEnv);
        addPending(on_false, curBlock, curEnv);
        (void)bc_end;
        return true;
      }

      case Bc::GetNamedProperty:
        buildGetNamed(ins);
        return blockEndedInDeopt;
      case Bc::SetNamedProperty:
        buildSetNamed(ins);
        return blockEndedInDeopt;
      case Bc::GetElement:
        buildGetElement(ins);
        return blockEndedInDeopt;
      case Bc::SetElement:
        buildSetElement(ins);
        return blockEndedInDeopt;

      case Bc::CreateArray:
        curEnv.acc = emitRuntime(RuntimeFn::CreateArrayRt,
                                 {emitConstI32(ins.a)});
        break;
      case Bc::CreateObject:
        curEnv.acc = emitRuntime(RuntimeFn::CreateObjectRt, {});
        break;
      case Bc::StaArrayLiteral: {
        ValueId arr = curEnv.regs[ins.a];
        emitRuntime(RuntimeFn::GrowArrayStore,
                    {useTagged(arr), emitConstI32(ins.b),
                     useTagged(curEnv.acc)},
                    Rep::None);
        break;
      }
      case Bc::StaNamedOwn:
        emitRuntime(RuntimeFn::GenericSetNamed,
                    {useTagged(curEnv.regs[ins.a]), emitConstI32(ins.b),
                     useTagged(curEnv.acc)},
                    Rep::None);
        break;

      case Bc::Call:
        buildCall(ins, false);
        return blockEndedInDeopt;
      case Bc::CallMethod:
        buildCall(ins, true);
        return blockEndedInDeopt;

      case Bc::Return: {
        IrNode r;
        r.op = IrOp::Return;
        r.inputs.push_back(useTagged(curEnv.acc));
        emit(std::move(r));
        return true;
      }
    }
    return false;
}

// =====================================================================
// known31 inference (optimistic fixpoint over phis)
// =====================================================================

void
GraphBuilder::inferKnown31()
{
    // Optimistically assume every Int32 phi is 31-bit, then iterate.
    for (auto &n : graph.nodes) {
        if (n.op == IrOp::Phi && n.rep == Rep::Int32)
            n.known31 = true;
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &n : graph.nodes) {
            if (n.op != IrOp::Phi || n.rep != Rep::Int32 || !n.known31)
                continue;
            for (ValueId in : n.inputs) {
                if (!graph.node(in).known31) {
                    n.known31 = false;
                    changed = true;
                    break;
                }
            }
        }
    }
    // Unchecked TagSmi nodes whose input lost known31 must become
    // checked (they were created while the phi was optimistic only in
    // convertInPred; the main path queried known31 eagerly, so patch).
    for (auto &n : graph.nodes) {
        if (n.op == IrOp::TagSmi && !n.checked
            && !graph.node(n.inputs[0]).known31) {
            // Conservative: a phi input turned out not provably 31-bit.
            // These loop-carried values originate from checked arith or
            // untags, so this only fires for bit-op results.
            n.checked = true;
            n.reason = DeoptReason::Overflow;
            if (n.frameState == kNoFrameState && !graph.frameStates.empty())
                n.frameState = 0;
        }
    }
}

} // namespace

std::optional<Graph>
buildGraph(CompilerEnv &env, const FunctionInfo &fn)
{
    GraphBuilder b(env, fn);
    return b.build();
}

} // namespace vspec
