/**
 * @file
 * vproof's ProveChecks pass: classify every live check against the
 * abstract-interpretation facts (ir/absint.hh) as ProvenRedundant /
 * Needed / Unknown, record a CheckProof per check on the graph, and —
 * in the `static-elim` experiment mode — delete only the proven ones.
 *
 * Deleting a proven check removes no deopt point that could ever fire:
 * its premises imply the check passes on every execution reaching it,
 * so semantics are bit-identical by construction. The graph verifier
 * enforces the structural half of that argument (every elided check
 * carries a proof whose premises dominate its former position); the
 * differential and fuzz oracles enforce the behavioral half.
 */

#ifndef VSPEC_IR_PROOF_HH
#define VSPEC_IR_PROOF_HH

#include <array>

#include "ir/graph.hh"

namespace vspec
{

struct FunctionInfo;

/** Per-CheckGroup classification counts from one ProveChecks run. */
struct ProofStats
{
    static constexpr size_t kGroups =
        static_cast<size_t>(CheckGroup::NumGroups);

    std::array<u32, kGroups> proven{};
    std::array<u32, kGroups> needed{};
    std::array<u32, kGroups> unknown{};
    u32 elided = 0; //!< checks actually deleted (static-elim)

    u32
    totalProven() const
    {
        u32 t = 0;
        for (u32 v : proven)
            t += v;
        return t;
    }
    u32
    totalChecks() const
    {
        u32 t = 0;
        for (size_t i = 0; i < kGroups; i++)
            t += proven[i] + needed[i] + unknown[i];
        return t;
    }
};

/**
 * Classify every live check in @p g; fills g.proofs (program order).
 * With @p eliminate set, proven checks are deleted (marked dead with
 * `provenElided`, uses remapped through the value passthrough) and
 * their proof premises are expanded so that no premise is itself an
 * elided check.
 */
ProofStats proveChecks(Graph &g, bool eliminate);

/**
 * One row of the per-(function, line) audit table surfaced by the
 * stats layer, tools/vspec-audit and bench/fig15.
 */
struct CheckAuditEntry
{
    FunctionId function = kInvalidFunction;
    i32 line = 0;
    CheckGroup group = CheckGroup::Other;
    CheckClass cls = CheckClass::Unknown;
    ProofRule rule = ProofRule::None;
    bool elided = false;
    u32 count = 0; //!< static check sites aggregated into this row
};

/** Aggregate @p g's proofs into per-(function, line) audit rows,
 *  mapping bytecode offsets to source lines via @p fn.bcPositions.
 *  Appends to @p out, merging rows with identical keys. */
void appendCheckAudit(const Graph &g, const FunctionInfo &fn,
                      std::vector<CheckAuditEntry> &out);

} // namespace vspec

#endif // VSPEC_IR_PROOF_HH
