/**
 * @file
 * Recursive-descent parser for MiniJS. Produces a ProgramSource: the
 * list of top-level functions plus top-level statements. Grammar and
 * precedence follow ECMAScript for the supported subset.
 */

#ifndef VSPEC_FRONTEND_PARSER_HH
#define VSPEC_FRONTEND_PARSER_HH

#include "frontend/ast.hh"
#include "frontend/lexer.hh"

namespace vspec
{

class ParseError : public std::runtime_error
{
  public:
    ParseError(const std::string &msg, int line)
        : std::runtime_error("parse error at line " + std::to_string(line)
                             + ": " + msg),
          line(line)
    {}
    int line;
};

/** Parse @p source into a ProgramSource. Throws ParseError / LexError. */
ProgramSource parseProgram(const std::string &source);

/** Parse a single expression (used by tests). */
Node::Ptr parseExpression(const std::string &source);

} // namespace vspec

#endif // VSPEC_FRONTEND_PARSER_HH
