#include "frontend/parser.hh"

namespace vspec
{

namespace
{

class Parser
{
  public:
    explicit Parser(std::vector<Token> toks) : toks(std::move(toks)) {}

    ProgramSource
    parseProgram()
    {
        ProgramSource prog;
        while (!atEof()) {
            if (isKw("function")) {
                prog.functions.push_back(parseFunction());
            } else {
                prog.topLevel.push_back(parseStatement());
            }
        }
        return prog;
    }

    Node::Ptr
    parseSingleExpression()
    {
        auto e = parseExpr();
        expectEof();
        return e;
    }

  private:
    // ---- token helpers -------------------------------------------------

    const Token &cur() const { return toks[pos]; }
    const Token &ahead(size_t k = 1) const
    {
        return toks[std::min(pos + k, toks.size() - 1)];
    }
    bool atEof() const { return cur().kind == TokKind::Eof; }
    void advance() { if (!atEof()) pos++; }

    bool
    isPunct(const char *p) const
    {
        return cur().kind == TokKind::Punct && cur().text == p;
    }
    bool
    isKw(const char *k) const
    {
        return cur().kind == TokKind::Keyword && cur().text == k;
    }
    bool
    eatPunct(const char *p)
    {
        if (!isPunct(p))
            return false;
        advance();
        return true;
    }
    bool
    eatKw(const char *k)
    {
        if (!isKw(k))
            return false;
        advance();
        return true;
    }
    void
    expectPunct(const char *p)
    {
        if (!eatPunct(p))
            throw ParseError(std::string("expected '") + p + "', got '"
                             + describe(cur()) + "'", cur().line);
    }
    std::string
    expectIdent()
    {
        if (cur().kind != TokKind::Ident)
            throw ParseError("expected identifier, got '" + describe(cur())
                             + "'", cur().line);
        std::string name = cur().text;
        advance();
        return name;
    }
    void
    expectEof()
    {
        if (!atEof())
            throw ParseError("trailing input", cur().line);
    }
    static std::string
    describe(const Token &t)
    {
        switch (t.kind) {
          case TokKind::Eof: return "<eof>";
          case TokKind::Number: return formatNum(t.number);
          case TokKind::String: return "\"" + t.str + "\"";
          default: return t.text;
        }
    }
    static std::string
    formatNum(double d)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g", d);
        return buf;
    }

    Node::Ptr
    make(NodeKind k)
    {
        auto n = std::make_unique<Node>(k, cur().line);
        n->col = cur().col;
        return n;
    }

    // ---- declarations -----------------------------------------------------

    FunctionSource
    parseFunction()
    {
        eatKw("function");
        FunctionSource fn;
        fn.name = expectIdent();
        expectPunct("(");
        if (!isPunct(")")) {
            do {
                fn.params.push_back(expectIdent());
            } while (eatPunct(","));
        }
        expectPunct(")");
        fn.body = parseBlock();
        return fn;
    }

    // ---- statements ---------------------------------------------------------

    Node::Ptr
    parseBlock()
    {
        auto blk = make(NodeKind::Block);
        expectPunct("{");
        while (!isPunct("}")) {
            if (atEof())
                throw ParseError("unterminated block", cur().line);
            blk->children.push_back(parseStatement());
        }
        expectPunct("}");
        return blk;
    }

    Node::Ptr
    parseStatement()
    {
        if (isPunct("{"))
            return parseBlock();
        if (isKw("var") || isKw("let") || isKw("const"))
            return parseVarStatement();
        if (eatKw("if")) {
            auto n = make(NodeKind::If);
            expectPunct("(");
            n->children.push_back(parseExpr());
            expectPunct(")");
            n->children.push_back(parseStatement());
            if (eatKw("else"))
                n->children.push_back(parseStatement());
            return n;
        }
        if (eatKw("while")) {
            auto n = make(NodeKind::While);
            expectPunct("(");
            n->children.push_back(parseExpr());
            expectPunct(")");
            n->children.push_back(parseStatement());
            return n;
        }
        if (eatKw("for"))
            return parseFor();
        if (eatKw("return")) {
            auto n = make(NodeKind::Return);
            if (!isPunct(";"))
                n->children.push_back(parseExpr());
            expectPunct(";");
            return n;
        }
        if (eatKw("break")) {
            expectPunct(";");
            return make(NodeKind::Break);
        }
        if (eatKw("continue")) {
            expectPunct(";");
            return make(NodeKind::Continue);
        }
        auto n = make(NodeKind::ExprStmt);
        n->children.push_back(parseExpr());
        expectPunct(";");
        return n;
    }

    /** One or more declarators, wrapped in a Block when more than one. */
    Node::Ptr
    parseVarStatement()
    {
        advance();  // var/let/const
        std::vector<Node::Ptr> decls;
        do {
            auto d = make(NodeKind::VarDecl);
            d->strVal = expectIdent();
            if (eatPunct("="))
                d->children.push_back(parseAssignment());
            decls.push_back(std::move(d));
        } while (eatPunct(","));
        expectPunct(";");
        if (decls.size() == 1)
            return std::move(decls[0]);
        auto blk = make(NodeKind::Block);
        blk->children = std::move(decls);
        return blk;
    }

    Node::Ptr
    parseFor()
    {
        auto n = make(NodeKind::For);
        expectPunct("(");
        // init (may be a declaration, an expression, or empty)
        if (isPunct(";")) {
            advance();
            n->children.push_back(nullptr);
        } else if (isKw("var") || isKw("let") || isKw("const")) {
            n->children.push_back(parseVarStatement());  // consumes ';'
        } else {
            auto init = make(NodeKind::ExprStmt);
            init->children.push_back(parseExpr());
            expectPunct(";");
            n->children.push_back(std::move(init));
        }
        // condition
        if (isPunct(";")) {
            n->children.push_back(nullptr);
        } else {
            n->children.push_back(parseExpr());
        }
        expectPunct(";");
        // update
        if (isPunct(")")) {
            n->children.push_back(nullptr);
        } else {
            n->children.push_back(parseExpr());
        }
        expectPunct(")");
        n->children.push_back(parseStatement());
        return n;
    }

    // ---- expressions -----------------------------------------------------------

    Node::Ptr parseExpr() { return parseAssignment(); }

    Node::Ptr
    parseAssignment()
    {
        auto lhs = parseTernary();
        static const char *assign_ops[] = {
            "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
            "<<=", ">>=", ">>>=",
        };
        for (const char *op : assign_ops) {
            if (isPunct(op)) {
                if (lhs->kind != NodeKind::Ident
                    && lhs->kind != NodeKind::Member
                    && lhs->kind != NodeKind::Index)
                    throw ParseError("invalid assignment target", cur().line);
                auto n = make(NodeKind::Assign);
                n->op = op;
                advance();
                n->children.push_back(std::move(lhs));
                n->children.push_back(parseAssignment());
                return n;
            }
        }
        return lhs;
    }

    Node::Ptr
    parseTernary()
    {
        auto cond = parseBinary(0);
        if (eatPunct("?")) {
            auto n = make(NodeKind::Ternary);
            n->children.push_back(std::move(cond));
            n->children.push_back(parseAssignment());
            expectPunct(":");
            n->children.push_back(parseAssignment());
            return n;
        }
        return cond;
    }

    struct OpLevel
    {
        std::vector<const char *> ops;
        bool logical;
    };

    const std::vector<OpLevel> &
    levels() const
    {
        static const std::vector<OpLevel> lv = {
            {{"||"}, true},
            {{"&&"}, true},
            {{"|"}, false},
            {{"^"}, false},
            {{"&"}, false},
            {{"==", "!=", "===", "!=="}, false},
            {{"<", ">", "<=", ">="}, false},
            {{"<<", ">>", ">>>"}, false},
            {{"+", "-"}, false},
            {{"*", "/", "%"}, false},
        };
        return lv;
    }

    Node::Ptr
    parseBinary(size_t level)
    {
        if (level >= levels().size())
            return parseUnary();
        auto lhs = parseBinary(level + 1);
        for (;;) {
            const char *matched = nullptr;
            for (const char *op : levels()[level].ops) {
                if (isPunct(op)) {
                    matched = op;
                    break;
                }
            }
            if (!matched)
                return lhs;
            auto n = make(levels()[level].logical ? NodeKind::Logical
                                                  : NodeKind::Binary);
            n->op = matched;
            advance();
            n->children.push_back(std::move(lhs));
            n->children.push_back(parseBinary(level + 1));
            lhs = std::move(n);
        }
    }

    Node::Ptr
    parseUnary()
    {
        static const char *unary_ops[] = {"!", "-", "+", "~"};
        for (const char *op : unary_ops) {
            if (isPunct(op)) {
                auto n = make(NodeKind::Unary);
                n->op = op;
                advance();
                n->children.push_back(parseUnary());
                return n;
            }
        }
        if (isKw("typeof")) {
            auto n = make(NodeKind::Unary);
            n->op = "typeof";
            advance();
            n->children.push_back(parseUnary());
            return n;
        }
        if (isPunct("++") || isPunct("--")) {
            auto n = make(NodeKind::Update);
            n->op = cur().text;
            n->intVal = 1;  // prefix
            advance();
            n->children.push_back(parseUnary());
            return n;
        }
        return parsePostfix();
    }

    Node::Ptr
    parsePostfix()
    {
        auto e = parseCallChain();
        if (isPunct("++") || isPunct("--")) {
            auto n = make(NodeKind::Update);
            n->op = cur().text;
            n->intVal = 0;  // postfix
            advance();
            n->children.push_back(std::move(e));
            return n;
        }
        return e;
    }

    Node::Ptr
    parseCallChain()
    {
        auto e = parsePrimary();
        for (;;) {
            if (eatPunct("(")) {
                auto call = make(NodeKind::Call);
                call->children.push_back(std::move(e));
                if (!isPunct(")")) {
                    do {
                        call->children.push_back(parseAssignment());
                    } while (eatPunct(","));
                }
                expectPunct(")");
                e = std::move(call);
            } else if (eatPunct(".")) {
                auto mem = make(NodeKind::Member);
                if (cur().kind != TokKind::Ident
                    && cur().kind != TokKind::Keyword)
                    throw ParseError("expected property name", cur().line);
                mem->strVal = cur().text;
                advance();
                mem->children.push_back(std::move(e));
                e = std::move(mem);
            } else if (eatPunct("[")) {
                auto idx = make(NodeKind::Index);
                idx->children.push_back(std::move(e));
                idx->children.push_back(parseExpr());
                expectPunct("]");
                e = std::move(idx);
            } else {
                return e;
            }
        }
    }

    Node::Ptr
    parsePrimary()
    {
        if (cur().kind == TokKind::Number) {
            auto n = make(NodeKind::NumberLit);
            n->numVal = cur().number;
            advance();
            return n;
        }
        if (cur().kind == TokKind::String) {
            auto n = make(NodeKind::StringLit);
            n->strVal = cur().str;
            advance();
            return n;
        }
        if (cur().kind == TokKind::Ident) {
            auto n = make(NodeKind::Ident);
            n->strVal = cur().text;
            advance();
            return n;
        }
        if (isKw("true") || isKw("false")) {
            auto n = make(NodeKind::BoolLit);
            n->intVal = isKw("true") ? 1 : 0;
            advance();
            return n;
        }
        if (eatKw("null"))
            return make(NodeKind::NullLit);
        if (eatKw("undefined"))
            return make(NodeKind::UndefinedLit);
        if (eatKw("this"))
            return make(NodeKind::This);
        if (eatPunct("(")) {
            auto e = parseExpr();
            expectPunct(")");
            return e;
        }
        if (eatPunct("[")) {
            auto arr = make(NodeKind::ArrayLit);
            if (!isPunct("]")) {
                do {
                    arr->children.push_back(parseAssignment());
                } while (eatPunct(","));
            }
            expectPunct("]");
            return arr;
        }
        if (eatPunct("{")) {
            auto obj = make(NodeKind::ObjectLit);
            if (!isPunct("}")) {
                do {
                    auto key = make(NodeKind::StringLit);
                    if (cur().kind == TokKind::Ident
                        || cur().kind == TokKind::Keyword) {
                        key->strVal = cur().text;
                        advance();
                    } else if (cur().kind == TokKind::String) {
                        key->strVal = cur().str;
                        advance();
                    } else {
                        throw ParseError("expected property key", cur().line);
                    }
                    expectPunct(":");
                    obj->children.push_back(std::move(key));
                    obj->children.push_back(parseAssignment());
                } while (eatPunct(","));
            }
            expectPunct("}");
            return obj;
        }
        throw ParseError("unexpected token '" + describe(cur()) + "'",
                         cur().line);
    }

    std::vector<Token> toks;
    size_t pos = 0;
};

} // namespace

ProgramSource
parseProgram(const std::string &source)
{
    Parser p(tokenize(source));
    return p.parseProgram();
}

Node::Ptr
parseExpression(const std::string &source)
{
    Parser p(tokenize(source));
    return p.parseSingleExpression();
}

} // namespace vspec
