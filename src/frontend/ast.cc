#include "frontend/ast.hh"

#include <cstdio>

namespace vspec
{

namespace
{

const char *
kindName(NodeKind k)
{
    switch (k) {
      case NodeKind::Program: return "program";
      case NodeKind::FuncDecl: return "func";
      case NodeKind::Block: return "block";
      case NodeKind::VarDecl: return "var";
      case NodeKind::ExprStmt: return "expr";
      case NodeKind::If: return "if";
      case NodeKind::While: return "while";
      case NodeKind::For: return "for";
      case NodeKind::Return: return "return";
      case NodeKind::Break: return "break";
      case NodeKind::Continue: return "continue";
      case NodeKind::NumberLit: return "num";
      case NodeKind::StringLit: return "str";
      case NodeKind::BoolLit: return "bool";
      case NodeKind::NullLit: return "null";
      case NodeKind::UndefinedLit: return "undefined";
      case NodeKind::Ident: return "ident";
      case NodeKind::This: return "this";
      case NodeKind::ArrayLit: return "array";
      case NodeKind::ObjectLit: return "object";
      case NodeKind::Binary: return "binary";
      case NodeKind::Logical: return "logical";
      case NodeKind::Unary: return "unary";
      case NodeKind::Update: return "update";
      case NodeKind::Assign: return "assign";
      case NodeKind::Ternary: return "ternary";
      case NodeKind::Call: return "call";
      case NodeKind::Member: return "member";
      case NodeKind::Index: return "index";
    }
    return "?";
}

} // namespace

std::string
Node::dump() const
{
    std::string out = "(";
    out += kindName(kind);
    if (!op.empty())
        out += " " + op;
    if (kind == NodeKind::NumberLit) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), " %g", numVal);
        out += buf;
    }
    if (!strVal.empty())
        out += " " + strVal;
    if (kind == NodeKind::BoolLit || kind == NodeKind::Update)
        out += intVal ? " true" : " false";
    for (const auto &c : children) {
        out += " ";
        out += c ? c->dump() : "()";
    }
    out += ")";
    return out;
}

} // namespace vspec
