/**
 * @file
 * Abstract syntax tree for MiniJS, the JavaScript subset the vspec
 * engine executes. The subset covers what the extended-JetStream2-style
 * workloads need: numbers/strings/booleans/null/undefined, dense arrays,
 * object literals with methods, top-level functions, `this`, full
 * expression grammar including bitwise and update operators, and
 * structured control flow. Deliberately excluded (documented in
 * README): closures, prototypes, `new`, exceptions, getters/setters.
 */

#ifndef VSPEC_FRONTEND_AST_HH
#define VSPEC_FRONTEND_AST_HH

#include <memory>
#include <string>
#include <vector>

#include "support/common.hh"

namespace vspec
{

enum class NodeKind : u8
{
    Program,
    FuncDecl,
    Block,
    VarDecl,      //!< one declarator; name in strVal, optional init child
    ExprStmt,
    If,           //!< children: cond, then, [else]
    While,        //!< children: cond, body
    For,          //!< children: [init], [cond], [update], body
    Return,       //!< children: [value]
    Break,
    Continue,

    NumberLit,    //!< numVal
    StringLit,    //!< strVal
    BoolLit,      //!< intVal 0/1
    NullLit,
    UndefinedLit,
    Ident,        //!< strVal
    This,
    ArrayLit,     //!< children: elements
    ObjectLit,    //!< children: alternating key(StringLit)/value pairs
    Binary,       //!< op, children: lhs, rhs
    Logical,      //!< op ("&&"/"||"), children: lhs, rhs
    Unary,        //!< op ("-","+","!","~","typeof"), child: operand
    Update,       //!< op ("++","--"), intVal 1 if prefix, child: target
    Assign,       //!< op ("=","+=",...), children: target, value
    Ternary,      //!< children: cond, then, else
    Call,         //!< children: callee, args...
    Member,       //!< strVal = property name, child: object
    Index,        //!< children: object, index
};

struct Node
{
    using Ptr = std::unique_ptr<Node>;

    NodeKind kind;
    int line = 0;
    int col = 0;

    double numVal = 0.0;
    i64 intVal = 0;
    std::string strVal;
    std::string op;
    std::vector<Ptr> children;

    explicit Node(NodeKind k, int line = 0) : kind(k), line(line) {}

    Node *child(size_t i) const { return children.at(i).get(); }
    size_t arity() const { return children.size(); }

    /** S-expression dump used by parser tests. */
    std::string dump() const;
};

/** One parsed top-level function. */
struct FunctionSource
{
    std::string name;
    std::vector<std::string> params;
    Node::Ptr body;  //!< Block node
};

/** A fully parsed program: functions plus top-level statements. */
struct ProgramSource
{
    std::vector<FunctionSource> functions;
    std::vector<Node::Ptr> topLevel;
};

} // namespace vspec

#endif // VSPEC_FRONTEND_AST_HH
