/**
 * @file
 * Hand-written lexer for MiniJS. Produces a flat token stream with line
 * numbers for error reporting. String literals support the usual escape
 * sequences; numbers are decimal or hex (0x...) doubles.
 */

#ifndef VSPEC_FRONTEND_LEXER_HH
#define VSPEC_FRONTEND_LEXER_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "support/common.hh"

namespace vspec
{

enum class TokKind : u8
{
    Eof,
    Number,
    String,
    Ident,
    Keyword,
    Punct,
};

struct Token
{
    TokKind kind = TokKind::Eof;
    std::string text;     //!< identifier / keyword / punctuation spelling
    double number = 0.0;  //!< Number tokens
    std::string str;      //!< String tokens (unescaped payload)
    int line = 1;
    int col = 1;          //!< 1-based column of the token's first char
};

/**
 * Tokenize @p source. Throws LexError (a std::runtime_error) on invalid
 * input — MiniJS sources are authored in-tree, so a throwing API keeps
 * the workload registry honest.
 */
std::vector<Token> tokenize(const std::string &source);

/** @return true if @p word is a MiniJS keyword. */
bool isKeyword(const std::string &word);

class LexError : public std::runtime_error
{
  public:
    LexError(const std::string &msg, int line)
        : std::runtime_error("lex error at line " + std::to_string(line)
                             + ": " + msg),
          line(line)
    {}
    int line;
};

} // namespace vspec

#endif // VSPEC_FRONTEND_LEXER_HH
