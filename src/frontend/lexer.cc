#include "frontend/lexer.hh"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

namespace vspec
{

bool
isKeyword(const std::string &word)
{
    static const std::unordered_set<std::string> kws = {
        "var", "let", "const", "function", "if", "else", "while", "for",
        "return", "break", "continue", "true", "false", "null", "undefined",
        "typeof", "this",
    };
    return kws.count(word) != 0;
}

namespace
{

/** Multi-character punctuators, longest-match-first. */
const char *kPuncts[] = {
    ">>>=", "===", "!==", ">>>", "<<=", ">>=", "&&", "||", "==", "!=",
    "<=", ">=", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", "<<", ">>", "+", "-", "*", "/", "%", "=", "<", ">", "!", "~",
    "&", "|", "^", "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
};

} // namespace

std::vector<Token>
tokenize(const std::string &src)
{
    std::vector<Token> out;
    size_t i = 0;
    int line = 1;
    size_t line_start = 0;  // index of the current line's first char
    const size_t n = src.size();

    auto colAt = [&](size_t pos) {
        return static_cast<int>(pos - line_start) + 1;
    };

    auto peek = [&](size_t k = 0) -> char {
        return i + k < n ? src[i + k] : '\0';
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            line++;
            i++;
            line_start = i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            i++;
            continue;
        }
        // Comments.
        if (c == '/' && peek(1) == '/') {
            while (i < n && src[i] != '\n')
                i++;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n') {
                    line++;
                    line_start = i + 1;
                }
                i++;
            }
            if (i + 1 >= n)
                throw LexError("unterminated block comment", line);
            i += 2;
            continue;
        }
        // Numbers.
        if (std::isdigit(static_cast<unsigned char>(c))
            || (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
            size_t start = i;
            if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
                i += 2;
                while (std::isxdigit(static_cast<unsigned char>(peek())))
                    i++;
                Token t;
                t.kind = TokKind::Number;
                t.line = line;
                t.col = colAt(start);
                t.number = static_cast<double>(
                    std::strtoull(src.substr(start + 2, i - start - 2).c_str(),
                                  nullptr, 16));
                out.push_back(std::move(t));
                continue;
            }
            while (std::isdigit(static_cast<unsigned char>(peek())))
                i++;
            if (peek() == '.') {
                i++;
                while (std::isdigit(static_cast<unsigned char>(peek())))
                    i++;
            }
            if (peek() == 'e' || peek() == 'E') {
                i++;
                if (peek() == '+' || peek() == '-')
                    i++;
                while (std::isdigit(static_cast<unsigned char>(peek())))
                    i++;
            }
            Token t;
            t.kind = TokKind::Number;
            t.line = line;
            t.col = colAt(start);
            t.number = std::strtod(src.substr(start, i - start).c_str(),
                                   nullptr);
            out.push_back(std::move(t));
            continue;
        }
        // Strings.
        if (c == '"' || c == '\'') {
            char quote = c;
            size_t start = i;
            i++;
            std::string payload;
            while (i < n && src[i] != quote) {
                char ch = src[i];
                if (ch == '\n')
                    throw LexError("newline in string literal", line);
                if (ch == '\\') {
                    i++;
                    if (i >= n)
                        throw LexError("unterminated escape", line);
                    switch (src[i]) {
                      case 'n': payload += '\n'; break;
                      case 't': payload += '\t'; break;
                      case 'r': payload += '\r'; break;
                      case '0': payload += '\0'; break;
                      case '\\': payload += '\\'; break;
                      case '\'': payload += '\''; break;
                      case '"': payload += '"'; break;
                      default:
                        throw LexError("unknown escape sequence", line);
                    }
                    i++;
                } else {
                    payload += ch;
                    i++;
                }
            }
            if (i >= n)
                throw LexError("unterminated string literal", line);
            i++;  // closing quote
            Token t;
            t.kind = TokKind::String;
            t.line = line;
            t.col = colAt(start);
            t.str = std::move(payload);
            out.push_back(std::move(t));
            continue;
        }
        // Identifiers and keywords.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_'
            || c == '$') {
            size_t start = i;
            while (std::isalnum(static_cast<unsigned char>(peek()))
                   || peek() == '_' || peek() == '$')
                i++;
            Token t;
            t.line = line;
            t.col = colAt(start);
            t.text = src.substr(start, i - start);
            t.kind = isKeyword(t.text) ? TokKind::Keyword : TokKind::Ident;
            out.push_back(std::move(t));
            continue;
        }
        // Punctuators, longest match first.
        bool matched = false;
        for (const char *p : kPuncts) {
            size_t len = std::char_traits<char>::length(p);
            if (src.compare(i, len, p) == 0) {
                Token t;
                t.kind = TokKind::Punct;
                t.line = line;
                t.col = colAt(i);
                t.text = p;
                out.push_back(std::move(t));
                i += len;
                matched = true;
                break;
            }
        }
        if (!matched)
            throw LexError(std::string("unexpected character '") + c + "'",
                           line);
    }

    Token eof;
    eof.kind = TokKind::Eof;
    eof.line = line;
    eof.col = colAt(n);
    out.push_back(std::move(eof));
    return out;
}

} // namespace vspec
