/**
 * @file
 * Dominator tree over the IR CFG, for the graph verifier's
 * defs-dominate-uses and deopt-safety checks. Cooper/Harvey/Kennedy
 * iterative algorithm ("A Simple, Fast Dominance Algorithm") on a
 * reverse-postorder numbering — the graphs here are small (tens of
 * blocks), so the near-linear simple algorithm beats Lengauer-Tarjan
 * in both code size and constant factor.
 */

#ifndef VSPEC_VERIFY_DOMINATORS_HH
#define VSPEC_VERIFY_DOMINATORS_HH

#include <vector>

#include "ir/graph.hh"

namespace vspec
{

class DominatorTree
{
  public:
    /** Build for @p graph; block @p entry is the CFG root. */
    explicit DominatorTree(const Graph &graph, BlockId entry = 0);

    /** Blocks reachable from the entry. Unreachable blocks have no
     *  dominator relation (dominates() returns false for them). */
    bool reachable(BlockId b) const
    {
        return b < rpoIndex_.size() && rpoIndex_[b] != kUnvisited;
    }

    /** Immediate dominator; the entry's idom is itself. kNoBlock for
     *  unreachable blocks. */
    BlockId idom(BlockId b) const
    {
        return b < idom_.size() ? idom_[b] : kNoBlock;
    }

    /** Does @p a dominate @p b (reflexive)? */
    bool dominates(BlockId a, BlockId b) const;

    /** Reverse-postorder over reachable blocks (entry first). */
    const std::vector<BlockId> &rpo() const { return rpo_; }

  private:
    static constexpr u32 kUnvisited = 0xffffffffu;

    BlockId intersect(BlockId a, BlockId b) const;

    BlockId entry_;
    std::vector<BlockId> rpo_;
    std::vector<u32> rpoIndex_;   //!< BlockId -> position in rpo_
    std::vector<BlockId> idom_;
};

} // namespace vspec

#endif // VSPEC_VERIFY_DOMINATORS_HH
