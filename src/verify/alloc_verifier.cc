/**
 * @file
 * Allocation verifier: checks a fresh register allocation against the
 * graph it was computed for, independently of the allocator's own
 * bookkeeping. The invariants are exactly the contract instruction
 * selection consumes:
 *
 *  - every operand isel reads has a live, class-correct location at
 *    the position of the reading instruction (frame-state references
 *    of a call stay live through it — deopt materializes after the
 *    callee ran);
 *  - no two values occupy the same register or spill slot at the same
 *    position;
 *  - caller-saved registers never span a call site (the modeled ABI:
 *    call-crossing segments must be callee-saved or in memory);
 *  - spill slots are within the frame the prologue reserves;
 *  - every split/resolution move's endpoints agree with the segment
 *    table, so the moves isel materializes actually connect the
 *    locations operand access will read.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "backend/regalloc.hh"
#include "ir/graph.hh"
#include "verify/verify.hh"

namespace vspec
{

namespace
{

bool
valueProducing(const IrNode &n)
{
    if (n.rep == Rep::None)
        return false;
    switch (n.op) {
      case IrOp::ConstI32:
      case IrOp::ConstTagged:
      case IrOp::ConstF64:
      case IrOp::Goto:
      case IrOp::Branch:
      case IrOp::Return:
      case IrOp::Deopt:
        return false;
      default:
        return true;
    }
}

bool
isCall(IrOp op)
{
    return op == IrOp::CallRuntime || op == IrOp::CallFunction
           || op == IrOp::F64Mod;
}

bool
isConstOp(IrOp op)
{
    return op == IrOp::ConstI32 || op == IrOp::ConstTagged
           || op == IrOp::ConstF64;
}

struct AllocVerifier
{
    const Graph &g;
    const std::vector<u32> &blockOrder;
    const AllocationResult &ra;
    VerifyResult res;

    std::vector<bool> fused;    //!< compare fused into its branch
    std::vector<bool> skipped;  //!< x64 length load folded into CheckBounds
    std::vector<u32> callPositions;

    AllocVerifier(const Graph &graph, const std::vector<u32> &order,
                  const AllocationResult &result)
        : g(graph), blockOrder(order), ra(result)
    {
        fused.assign(g.nodes.size(), false);
        for (ValueId v : ra.fusedCompares)
            fused[v] = true;
        skipped.assign(g.nodes.size(), false);
        for (ValueId v : ra.skippedLenLoads)
            skipped[v] = true;
        for (BlockId b : blockOrder) {
            for (ValueId id : g.block(b).nodes) {
                const IrNode &n = g.node(id);
                if (!n.dead && isCall(n.op))
                    callPositions.push_back(ra.posOf[id]);
            }
        }
        std::sort(callPositions.begin(), callPositions.end());
    }

    void
    fail(const std::string &invariant, u32 block, u32 node,
         std::string message)
    {
        Diagnostic d;
        d.verifier = "regalloc";
        d.where = "after register allocation";
        d.invariant = invariant;
        d.block = block;
        d.node = node;
        d.message = std::move(message);
        res.diagnostics.push_back(std::move(d));
    }

    /** Does the value's class of location match its representation? */
    bool
    classOk(ValueId v, const Allocation &a) const
    {
        bool isF = g.node(v).rep == Rep::Float64;
        switch (a.where) {
          case Allocation::Where::Reg: return !isF;
          case Allocation::Where::FReg: return isF;
          case Allocation::Where::Spill: return true;
          case Allocation::Where::None: return false;
        }
        return false;
    }

    void
    checkUse(BlockId b, ValueId user, ValueId v, u32 pos, bool throughCall)
    {
        if (v == kNoValue)
            return;
        const IrNode &vn = g.node(v);
        if (isConstOp(vn.op))
            return;  // rematerialized at the use
        Allocation a = ra.locationAt(v, pos);
        if (a.where == Allocation::Where::None) {
            fail("use-has-live-location", b, user,
                 "operand v" + std::to_string(v) + " of v"
                     + std::to_string(user) + " has no location at position "
                     + std::to_string(pos));
            return;
        }
        if (!classOk(v, a)) {
            fail("use-location-class", b, user,
                 "operand v" + std::to_string(v)
                     + " is in a location of the wrong register class");
        }
        if (throughCall) {
            Allocation after = ra.locationAt(v, pos + 1);
            if (!a.sameAs(after)) {
                fail("deopt-ref-live-through-call", b, user,
                     "frame-state reference v" + std::to_string(v)
                         + " changes location across the call at position "
                         + std::to_string(pos));
            }
        }
    }

    void
    checkUses()
    {
        for (BlockId b : blockOrder) {
            for (ValueId id : g.block(b).nodes) {
                const IrNode &n = g.node(id);
                if (n.dead)
                    continue;
                u32 pos = ra.posOf[id];
                bool excluded = id < fused.size()
                                && (fused[id] || skipped[id]);
                if (!excluded) {
                    if (n.op == IrOp::Phi) {
                        // Inputs are read by the predecessors' edge
                        // move sets, checked via edge resolution.
                    } else if (n.op == IrOp::Branch && !n.inputs.empty()
                               && fused[n.inputs[0]]) {
                        for (ValueId in : g.node(n.inputs[0]).inputs)
                            checkUse(b, id, in, pos, false);
                    } else if (n.op == IrOp::CheckBounds
                               && n.inputs.size() > 1
                               && skipped[n.inputs[1]]) {
                        checkUse(b, id, n.inputs[0], pos, false);
                        checkUse(b, id, g.node(n.inputs[1]).inputs[0], pos,
                                 false);
                    } else {
                        for (ValueId in : n.inputs)
                            checkUse(b, id, in, pos, false);
                    }
                    if (n.canDeopt() && n.frameState != kNoFrameState) {
                        bool through = isCall(n.op);
                        const FrameState &fs = g.frameStates[n.frameState];
                        for (ValueId r : fs.regs)
                            checkUse(b, id, r, pos, through);
                        checkUse(b, id, fs.accumulator, pos, through);
                    }
                }
                // Definition: the value must have a location the
                // instruction (or the edge/prologue move set writing
                // phis and params) can target.
                if (valueProducing(n) && !excluded) {
                    u32 defPos = (n.op == IrOp::Phi || n.op == IrOp::Param)
                                     ? ra.blockFrom[b]
                                     : pos;
                    Allocation a = ra.locationAt(id, defPos);
                    bool unused = !ra.isAllocated(id);
                    if (!unused && a.where == Allocation::Where::None) {
                        fail("def-has-location", b, id,
                             "v" + std::to_string(id)
                                 + " has no location at its definition");
                    } else if (!unused && !classOk(id, a)) {
                        fail("def-location-class", b, id,
                             "v" + std::to_string(id)
                                 + " is defined into the wrong register "
                                   "class");
                    }
                }
            }
        }
    }

    void
    checkUniqueAndDiscipline()
    {
        // Bucket all segments by concrete location.
        struct Seg
        {
            u32 from, to;
            ValueId value;
        };
        std::vector<std::vector<Seg>> gprSegs(64), fprSegs(64), slotSegs;
        slotSegs.resize(ra.spillSlots);
        for (ValueId v = 0; v + 1 < ra.segIndex.size(); v++) {
            for (u32 i = ra.segIndex[v]; i < ra.segIndex[v + 1]; i++) {
                const LiveSegment &s = ra.segs[i];
                switch (s.loc.where) {
                  case Allocation::Where::Reg:
                    gprSegs[s.loc.reg].push_back({s.from, s.to, v});
                    break;
                  case Allocation::Where::FReg:
                    fprSegs[s.loc.reg].push_back({s.from, s.to, v});
                    break;
                  case Allocation::Where::Spill:
                    if (s.loc.slot < 0
                        || static_cast<u32>(s.loc.slot) >= ra.spillSlots) {
                        fail("spill-slot-in-frame", kNoBlock, v,
                             "v" + std::to_string(v) + " spilled to slot "
                                 + std::to_string(s.loc.slot)
                                 + " outside the frame of "
                                 + std::to_string(ra.spillSlots) + " slots");
                    } else {
                        slotSegs[s.loc.slot].push_back({s.from, s.to, v});
                    }
                    break;
                  case Allocation::Where::None:
                    fail("segment-has-location", kNoBlock, v,
                         "v" + std::to_string(v)
                             + " has a segment with no location");
                    break;
                }
            }
        }

        auto sweep = [&](std::vector<Seg> &segs, const std::string &what) {
            std::sort(segs.begin(), segs.end(),
                      [](const Seg &a, const Seg &b) {
                          return a.from < b.from;
                      });
            for (size_t i = 1; i < segs.size(); i++) {
                if (segs[i].from < segs[i - 1].to
                    && segs[i].value != segs[i - 1].value) {
                    fail("allocation-unique", kNoBlock, segs[i].value,
                         what + " holds both v"
                             + std::to_string(segs[i - 1].value) + " and v"
                             + std::to_string(segs[i].value)
                             + " at position "
                             + std::to_string(segs[i].from));
                }
            }
        };
        auto crossing = [&](const Seg &s) -> i64 {
            auto lo = std::lower_bound(callPositions.begin(),
                                       callPositions.end(), s.from + 1);
            if (lo != callPositions.end() && *lo + 1 < s.to)
                return static_cast<i64>(*lo);
            return -1;
        };
        for (u32 r = 0; r < 64; r++) {
            sweep(gprSegs[r], "gpr x" + std::to_string(r));
            sweep(fprSegs[r], "fpr d" + std::to_string(r));
            if (isCallerSavedGpr(static_cast<u8>(r))) {
                for (const Seg &s : gprSegs[r]) {
                    i64 c = crossing(s);
                    if (c >= 0) {
                        fail("caller-saved-call-crossing", kNoBlock, s.value,
                             "v" + std::to_string(s.value)
                                 + " spans the call at position "
                                 + std::to_string(c) + " in caller-saved x"
                                 + std::to_string(r));
                    }
                }
            }
            if (isCallerSavedFpr(static_cast<u8>(r))) {
                for (const Seg &s : fprSegs[r]) {
                    i64 c = crossing(s);
                    if (c >= 0) {
                        fail("caller-saved-call-crossing", kNoBlock, s.value,
                             "v" + std::to_string(s.value)
                                 + " spans the call at position "
                                 + std::to_string(c) + " in caller-saved d"
                                 + std::to_string(r));
                    }
                }
            }
        }
        for (u32 s = 0; s < slotSegs.size(); s++)
            sweep(slotSegs[s], "spill slot " + std::to_string(s));
    }

    void
    checkMoves()
    {
        for (const GapMove &m : ra.gapMoves) {
            if ((m.pos & 1) == 0) {
                fail("gap-move-at-gap", kNoBlock, m.value,
                     "gap move at even (instruction) position "
                         + std::to_string(m.pos));
                continue;
            }
            Allocation src = ra.locationAt(m.value, m.pos - 1);
            Allocation dst = ra.locationAt(m.value, m.pos);
            if (!src.sameAs(m.from) || !dst.sameAs(m.to)) {
                fail("gap-move-endpoints", kNoBlock, m.value,
                     "gap move for v" + std::to_string(m.value)
                         + " at position " + std::to_string(m.pos)
                         + " disagrees with the segment table");
            }
        }
        for (const EdgeResolution &er : ra.edgeMoves) {
            if (er.pred >= g.blocks.size() || er.succ >= g.blocks.size()) {
                fail("edge-move-blocks", er.pred, kNoValue,
                     "edge resolution references an unknown block");
                continue;
            }
            for (const EdgeMove &m : er.moves) {
                Allocation src =
                    ra.locationAt(m.value, ra.blockTo[er.pred] - 2);
                Allocation dst =
                    ra.locationAt(m.value, ra.blockFrom[er.succ]);
                if (!src.sameAs(m.from) || !dst.sameAs(m.to)) {
                    fail("edge-move-endpoints", er.pred, m.value,
                         "edge move for v" + std::to_string(m.value)
                             + " on edge b" + std::to_string(er.pred)
                             + " -> b" + std::to_string(er.succ)
                             + " disagrees with the segment table");
                }
            }
        }
    }

    VerifyResult
    run()
    {
        checkUses();
        checkUniqueAndDiscipline();
        checkMoves();
        return std::move(res);
    }
};

} // namespace

VerifyResult
verifyAllocation(const Graph &graph, const std::vector<u32> &blockOrder,
                 const AllocationResult &ra)
{
    AllocVerifier v(graph, blockOrder, ra);
    return v.run();
}

} // namespace vspec
