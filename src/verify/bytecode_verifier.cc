/**
 * @file
 * BytecodeVerifier: operand validation for Ignition-style bytecode.
 * The interpreter and the graph builder both index frame registers,
 * the constant pool, the feedback vector, and global cells straight
 * from instruction operands; a bad operand there is an out-of-bounds
 * access, not an exception. Verifying once, before the first dispatch
 * or compile, turns a malformed function into a located diagnostic.
 */

#include "bytecode/bytecode.hh"
#include "verify/verify.hh"

namespace vspec
{

namespace
{

class BytecodeVerifier
{
  public:
    BytecodeVerifier(const FunctionInfo &fn, u32 numGlobalCells)
        : fn(fn), numGlobalCells(numGlobalCells)
    {}

    VerifyResult
    run()
    {
        u32 n = static_cast<u32>(fn.bytecode.size());
        if (n == 0) {
            report("function-empty", 0, "function has no bytecode");
            return result;
        }
        for (u32 pc = 0; pc < n; pc++)
            checkInstr(pc, fn.bytecode[pc]);

        // Execution must not run off the end of the array: the last
        // instruction has to leave the function or jump away.
        const BcInstr &last = fn.bytecode[n - 1];
        if (last.op != Bc::Return && last.op != Bc::Jump
            && last.op != Bc::JumpLoop) {
            report("fall-off-end", n - 1,
                   std::string(bcName(last.op))
                   + " at the end of the function falls off the end");
        }
        return result;
    }

  private:
    void
    report(const std::string &invariant, u32 pc, const std::string &msg)
    {
        Diagnostic d;
        d.verifier = "bytecode";
        d.where = fn.name.empty() ? "fn#" + std::to_string(fn.id)
                                  : fn.name;
        d.invariant = invariant;
        d.node = pc;
        d.message = msg;
        result.diagnostics.push_back(std::move(d));
    }

    void
    reg(u32 pc, const BcInstr &ins, i32 r, const char *what)
    {
        if (r < 0 || static_cast<u32>(r) >= fn.registerCount) {
            report("register-bounds", pc,
                   std::string(bcName(ins.op)) + " " + what + " r"
                   + std::to_string(r) + " outside frame of "
                   + std::to_string(fn.registerCount) + " registers");
        }
    }

    void
    slot(u32 pc, const BcInstr &ins, i32 s)
    {
        if (s < 0 || static_cast<size_t>(s) >= fn.feedback.size()) {
            report("feedback-slot-bounds", pc,
                   std::string(bcName(ins.op)) + " feedback slot "
                   + std::to_string(s) + " outside vector of "
                   + std::to_string(fn.feedback.size()) + " slots");
        }
    }

    void
    constant(u32 pc, const BcInstr &ins, i32 idx)
    {
        if (idx < 0 || static_cast<size_t>(idx) >= fn.constants.size()) {
            report("constant-pool-bounds", pc,
                   std::string(bcName(ins.op)) + " constant index "
                   + std::to_string(idx) + " outside pool of "
                   + std::to_string(fn.constants.size()) + " entries");
        }
    }

    void
    globalCell(u32 pc, const BcInstr &ins, i32 cell)
    {
        if (cell < 0
            || (numGlobalCells != 0xffffffffu
                && static_cast<u32>(cell) >= numGlobalCells)) {
            report("global-cell-bounds", pc,
                   std::string(bcName(ins.op)) + " global cell "
                   + std::to_string(cell) + " outside registry of "
                   + std::to_string(numGlobalCells) + " cells");
        }
    }

    void
    jumpTarget(u32 pc, const BcInstr &ins, i32 target)
    {
        if (target < 0
            || static_cast<size_t>(target) >= fn.bytecode.size()) {
            report("jump-target", pc,
                   std::string(bcName(ins.op)) + " target "
                   + std::to_string(target) + " outside bytecode of "
                   + std::to_string(fn.bytecode.size())
                   + " instructions");
        }
    }

    void
    checkInstr(u32 pc, const BcInstr &ins)
    {
        switch (ins.op) {
          case Bc::LdaSmi:
          case Bc::LdaUndefined:
          case Bc::LdaNull:
          case Bc::LdaTrue:
          case Bc::LdaFalse:
          case Bc::LogicalNot:
          case Bc::TypeOf:
          case Bc::CreateObject:
          case Bc::Return:
            break;

          case Bc::LdaConst:
            constant(pc, ins, ins.a);
            break;
          case Bc::LdaGlobal:
            globalCell(pc, ins, ins.a);
            slot(pc, ins, ins.b);
            break;
          case Bc::StaGlobal:
            globalCell(pc, ins, ins.a);
            break;

          case Bc::Ldar:
          case Bc::Star:
            reg(pc, ins, ins.a, "register");
            break;
          case Bc::Mov:
            reg(pc, ins, ins.a, "dst");
            reg(pc, ins, ins.b, "src");
            break;

          case Bc::Add: case Bc::Sub: case Bc::Mul: case Bc::Div:
          case Bc::Mod: case Bc::BitAnd: case Bc::BitOr:
          case Bc::BitXor: case Bc::Shl: case Bc::Sar: case Bc::Shr:
          case Bc::TestLess: case Bc::TestLessEq: case Bc::TestGreater:
          case Bc::TestGreaterEq: case Bc::TestEq: case Bc::TestNotEq:
          case Bc::TestStrictEq: case Bc::TestStrictNotEq:
            reg(pc, ins, ins.a, "lhs");
            slot(pc, ins, ins.b);
            break;

          case Bc::Inc: case Bc::Dec: case Bc::Negate:
          case Bc::BitNot: case Bc::ToNumber:
            slot(pc, ins, ins.a);
            break;

          case Bc::Jump:
          case Bc::JumpIfFalse:
          case Bc::JumpIfTrue:
          case Bc::JumpLoop:
            jumpTarget(pc, ins, ins.a);
            break;

          case Bc::GetNamedProperty:
          case Bc::SetNamedProperty:
            reg(pc, ins, ins.a, "object");
            slot(pc, ins, ins.c);
            break;
          case Bc::GetElement:
            reg(pc, ins, ins.a, "object");
            slot(pc, ins, ins.b);
            break;
          case Bc::SetElement:
            reg(pc, ins, ins.a, "object");
            reg(pc, ins, ins.b, "index");
            slot(pc, ins, ins.c);
            break;

          case Bc::CreateArray:
            if (ins.a < 0)
                report("operand-negative", pc,
                       "CreateArray capacity is negative");
            break;
          case Bc::StaArrayLiteral:
            reg(pc, ins, ins.a, "array");
            if (ins.b < 0)
                report("operand-negative", pc,
                       "StaArrayLiteral index is negative");
            break;
          case Bc::StaNamedOwn:
            reg(pc, ins, ins.a, "object");
            break;

          case Bc::Call:
          case Bc::CallMethod: {
            reg(pc, ins, ins.a, "callee");
            int argc = callArgc(ins.c);
            slot(pc, ins, callSlot(ins.c));
            if (argc < 0) {
                report("operand-negative", pc,
                       std::string(bcName(ins.op)) + " argc is negative");
                break;
            }
            // Call reads r[b .. b+argc-1]; CallMethod reads `this`
            // from r[b] and arguments from r[b+1 .. b+argc].
            int count = ins.op == Bc::CallMethod ? argc + 1 : argc;
            if (count > 0) {
                reg(pc, ins, ins.b, "first arg");
                reg(pc, ins, ins.b + count - 1, "last arg");
            }
            break;
          }
        }
    }

    const FunctionInfo &fn;
    u32 numGlobalCells;
    VerifyResult result;
};

} // namespace

VerifyResult
verifyBytecode(const FunctionInfo &fn, u32 numGlobalCells)
{
    return BytecodeVerifier(fn, numGlobalCells).run();
}

} // namespace vspec
