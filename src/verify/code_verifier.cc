/**
 * @file
 * CodeObjectVerifier: consistency of the check / deopt metadata the
 * backend attaches to generated code. The paper's measurements lean on
 * this metadata being exact — check-instruction counts (Fig. 1/4) read
 * the per-instruction annotations, and the branch-only-removal mode
 * (§IV-B) is only a fair model of "free checks" if the condition
 * computations stay in the instruction stream after the branches go.
 */

#include <vector>

#include "backend/code_object.hh"
#include "verify/verify.hh"

namespace vspec
{

namespace
{

class CodeObjectVerifier
{
  public:
    explicit CodeObjectVerifier(const CodeObject &co) : co(co) {}

    VerifyResult
    run()
    {
        checkTable();
        checkInstructions();
        checkExits();
        return result;
    }

  private:
    void
    report(const std::string &invariant, u32 at, const std::string &msg)
    {
        Diagnostic d;
        d.verifier = "code";
        d.where = "code#" + std::to_string(co.id) + " fn#"
                  + std::to_string(co.function);
        d.invariant = invariant;
        d.node = at;
        d.message = msg;
        result.diagnostics.push_back(std::move(d));
    }

    void
    checkTable()
    {
        for (size_t i = 0; i < co.checks.size(); i++) {
            if (co.checks[i].id != i) {
                report("check-table-id", static_cast<u32>(i),
                       "checks[" + std::to_string(i) + "] has id "
                       + std::to_string(co.checks[i].id));
            }
        }
    }

    void
    checkInstructions()
    {
        size_t nchecks = co.checks.size();
        size_t nexits = co.deoptExits.size();
        std::vector<u32> conditionInstrs(nchecks, 0);

        for (u32 at = 0; at < co.code.size(); at++) {
            const MInst &m = co.code[at];

            // Annotation sanity: a checkId and a non-None role go
            // together (the profiler attributes cost by annotation, so
            // a half-annotated instruction skews the measurement).
            if (m.checkId != kNoCheck) {
                if (m.checkId >= nchecks) {
                    report("check-annotation", at,
                           std::string(mopName(m.op))
                           + " annotated with check "
                           + std::to_string(m.checkId)
                           + " but the table has "
                           + std::to_string(nchecks) + " checks");
                    continue;
                }
                if (m.checkRole == CheckRole::None) {
                    report("check-annotation", at,
                           std::string(mopName(m.op))
                           + " has a checkId but role None");
                }
            } else if (m.checkRole != CheckRole::None && !m.isDeoptBranch) {
                report("check-annotation", at,
                       std::string(mopName(m.op))
                       + " has a check role but no checkId");
            }
            if (m.checkId != kNoCheck
                && (m.checkRole == CheckRole::Condition
                    || m.checkRole == CheckRole::Fused)) {
                conditionInstrs[m.checkId]++;
            }

            // Deopt branches: right opcode, live exit, and a target
            // that lands on that exit's marker in the deopt region.
            if (m.isDeoptBranch) {
                if (m.op != MOp::Bcond && m.op != MOp::B) {
                    report("deopt-branch-shape", at,
                           std::string(mopName(m.op))
                           + " is flagged as a deopt branch");
                    continue;
                }
                if (co.branchesRemoved && m.op == MOp::Bcond) {
                    report("branch-removal-leak", at,
                           "conditional deopt branch survived "
                           "branch-only removal");
                }
                if (m.deoptIndex >= nexits) {
                    report("dangling-deopt-index", at,
                           "deopt branch references exit "
                           + std::to_string(m.deoptIndex) + " of "
                           + std::to_string(nexits));
                    continue;
                }
                if (m.target >= co.code.size()
                    || co.code[m.target].op != MOp::DeoptExit
                    || co.code[m.target].deoptIndex != m.deoptIndex) {
                    report("deopt-branch-target", at,
                           "deopt branch for exit "
                           + std::to_string(m.deoptIndex)
                           + " does not target that exit's marker");
                }
            } else if (m.checkRole == CheckRole::Fused
                       && m.deoptIndex >= nexits) {
                report("dangling-deopt-index", at,
                       "fused check references exit "
                       + std::to_string(m.deoptIndex) + " of "
                       + std::to_string(nexits));
            }

            // Ordinary control flow stays inside the code array.
            if ((m.op == MOp::B || m.op == MOp::Bcond)
                && m.target >= co.code.size()) {
                report("branch-target-range", at,
                       std::string(mopName(m.op)) + " target "
                       + std::to_string(m.target) + " outside "
                       + std::to_string(co.code.size())
                       + " instructions");
            }
        }

        // §IV-B invariant: every check keeps at least one live
        // condition (or fused) instruction — in branch-only-removal
        // mode this is exactly "the work of the check is still paid
        // for"; with branches present it catches checks that lost
        // their condition to a bad pass.
        for (size_t i = 0; i < nchecks; i++) {
            if (conditionInstrs[i] == 0) {
                report("check-condition-alive", static_cast<u32>(i),
                       "check " + std::to_string(i) + " ("
                       + deoptReasonName(co.checks[i].reason)
                       + ") has no condition instruction in the code");
            }
        }
    }

    void
    checkExits()
    {
        size_t nexits = co.deoptExits.size();

        // The deopt region must hold exactly one marker per exit.
        std::vector<u32> markers(nexits, 0);
        std::vector<bool> referenced(nexits, false);
        for (u32 at = 0; at < co.code.size(); at++) {
            const MInst &m = co.code[at];
            if (m.op == MOp::DeoptExit) {
                if (m.deoptIndex >= nexits) {
                    report("deopt-exit-marker", at,
                           "marker for nonexistent exit "
                           + std::to_string(m.deoptIndex));
                } else {
                    markers[m.deoptIndex]++;
                }
            }
            if ((m.isDeoptBranch || m.checkRole == CheckRole::Fused)
                && m.deoptIndex < nexits) {
                referenced[m.deoptIndex] = true;
            }
        }
        for (size_t i = 0; i < nexits; i++) {
            if (markers[i] != 1) {
                report("deopt-exit-marker", static_cast<u32>(i),
                       "exit " + std::to_string(i) + " has "
                       + std::to_string(markers[i])
                       + " markers in the deopt region");
            }
            // Orphan exits are the expected shape of branch-only
            // removal (the exit is made, the branch is not); with
            // branches present an unreferenced exit is table rot.
            if (!co.branchesRemoved && !referenced[i]) {
                report("orphaned-deopt-exit", static_cast<u32>(i),
                       "exit " + std::to_string(i) + " ("
                       + deoptReasonName(co.deoptExits[i].reason)
                       + ") is referenced by no instruction");
            }
        }

        for (size_t i = 0; i < nexits; i++) {
            const DeoptExitInfo &e = co.deoptExits[i];
            if (e.checkId != kNoCheck && e.checkId >= co.checks.size()) {
                report("deopt-exit-check", static_cast<u32>(i),
                       "exit references check "
                       + std::to_string(e.checkId) + " of "
                       + std::to_string(co.checks.size()));
            }
            checkLocation(static_cast<u32>(i), e.accumulator, "acc");
            for (size_t r = 0; r < e.regs.size(); r++)
                checkLocation(static_cast<u32>(i), e.regs[r],
                              ("r" + std::to_string(r)).c_str());
        }
    }

    void
    checkLocation(u32 exit, const DeoptLocation &loc, const char *what)
    {
        switch (loc.where) {
          case DeoptLocation::Where::Reg:
            if (loc.reg >= kNumGprs)
                report("deopt-location", exit,
                       std::string(what) + " in nonexistent GPR "
                       + std::to_string(loc.reg));
            break;
          case DeoptLocation::Where::FReg:
            if (loc.reg >= kNumFprs)
                report("deopt-location", exit,
                       std::string(what) + " in nonexistent FPR "
                       + std::to_string(loc.reg));
            break;
          case DeoptLocation::Where::Spill:
            if (loc.slot < 0
                || static_cast<u32>(loc.slot) >= co.spillSlots)
                report("deopt-location", exit,
                       std::string(what) + " in spill slot "
                       + std::to_string(loc.slot) + " of "
                       + std::to_string(co.spillSlots));
            break;
          default:
            break;
        }
    }

    const CodeObject &co;
    VerifyResult result;
};

} // namespace

VerifyResult
verifyCodeObject(const CodeObject &code)
{
    return CodeObjectVerifier(code).run();
}

} // namespace vspec
