/**
 * @file
 * vverify: static verification of the three compiler artifact layers.
 *
 *  - GraphVerifier: SSA well-formedness, CFG consistency, representation
 *    typing, and deopt safety of the speculative IR (Flückiger et al.:
 *    every deopt point must carry a complete, consistent frame state
 *    whose values are available where the deopt can fire).
 *  - BytecodeVerifier: register bounds, constant-pool / feedback-slot /
 *    global-cell indices, and jump-target validity of Ignition-style
 *    bytecode.
 *  - CodeObjectVerifier: post-regalloc/isel metadata consistency —
 *    check annotations point at real check instructions, every deopt
 *    stub is reachable, frame locations are in range, and branch-only
 *    removal (§IV-B) left condition computations alive.
 *
 * Verifiers return structured diagnostics rather than asserting, so a
 * seeded-broken artifact produces a located report (and tests can
 * assert on the specific invariant that fired). enforce() is the
 * pipeline's enforcement point: it logs every diagnostic through
 * support/logging and panics, converting a silent miscompile into an
 * immediate, located failure that the experiment harness survives.
 */

#ifndef VSPEC_VERIFY_VERIFY_HH
#define VSPEC_VERIFY_VERIFY_HH

#include <string>
#include <vector>

#include "support/common.hh"

namespace vspec
{

class Graph;
class CodeObject;
struct FunctionInfo;

/** How much verification the compilation pipeline runs. */
enum class VerifyLevel : u8
{
    Off,    //!< no verification
    Final,  //!< bytecode before compile, IR after the pass pipeline,
            //!< code object after codegen
    Passes, //!< Final + the IR graph between every individual pass
};

/**
 * Default level for newly constructed configs: every-pass verification
 * in debug (assertion-enabled) builds, off in release builds. The
 * VSPEC_VERIFY environment variable (0/1/2) overrides either way, so
 * any bench or example binary can be re-run under full verification
 * without a rebuild.
 */
VerifyLevel defaultVerifyLevel();

/** One invariant violation, located as precisely as the layer allows. */
struct Diagnostic
{
    std::string verifier;   //!< "graph" | "bytecode" | "code"
    std::string where;      //!< pipeline position, e.g. "after dce"
    std::string invariant;  //!< e.g. "def-dominates-use"
    u32 block = 0xffffffffu;  //!< BlockId / bytecode index / kNoBlock
    u32 node = 0xffffffffu;   //!< ValueId / instruction index / kNoValue
    std::string message;

    std::string str() const;
};

struct VerifyResult
{
    std::vector<Diagnostic> diagnostics;

    bool ok() const { return diagnostics.empty(); }
    std::string str() const;

    /** True if any diagnostic fired for @p invariant (test helper). */
    bool has(const std::string &invariant) const;
};

/** Verify the IR graph; @p where names the pipeline position for the
 *  diagnostics (e.g. "after shortCircuitChecks"). */
VerifyResult verifyGraph(const Graph &graph, const std::string &where);

/**
 * Verify one function's bytecode. @p numGlobalCells bounds global-cell
 * operands (pass the registry's count()); 0xffffffff skips that check
 * for callers without a registry at hand.
 */
VerifyResult verifyBytecode(const FunctionInfo &fn,
                            u32 numGlobalCells = 0xffffffffu);

/** Verify a generated code object's check/deopt metadata. */
VerifyResult verifyCodeObject(const CodeObject &code);

struct AllocationResult;

/**
 * Verify a fresh register allocation against the graph it was computed
 * for (@p blockOrder is the emission order the allocator positioned):
 * every value's allocation is live and class-correct at every use
 * position, no two values share a register or spill slot while both
 * live, caller-saved registers never span a call site, and every
 * split/resolution move's endpoints agree with the segment table.
 * Run before instruction selection consumes the allocation (it splits
 * critical edges for resolution moves, invalidating @p blockOrder).
 */
VerifyResult verifyAllocation(const Graph &graph,
                              const std::vector<u32> &blockOrder,
                              const AllocationResult &ra);

/**
 * Enforcement point: when @p result holds diagnostics, log each one
 * (support/logging, Error level) and panic with a "vverify:" message
 * naming @p what. Panics throw, so harness-driven runs report the
 * failure instead of dying.
 */
void enforce(const VerifyResult &result, const std::string &what);

} // namespace vspec

#endif // VSPEC_VERIFY_VERIFY_HH
