#include "verify/dominators.hh"

namespace vspec
{

DominatorTree::DominatorTree(const Graph &g, BlockId entry)
    : entry_(entry)
{
    size_t nblocks = g.blocks.size();
    rpoIndex_.assign(nblocks, kUnvisited);
    idom_.assign(nblocks, kNoBlock);
    if (entry >= nblocks)
        return;

    // Iterative DFS postorder, then reverse. Successors are visited
    // true-edge first; any consistent order works for dominance.
    std::vector<BlockId> postorder;
    std::vector<std::pair<BlockId, int>> stack;  // (block, next succ)
    std::vector<bool> onStackOrDone(nblocks, false);
    stack.push_back({entry, 0});
    onStackOrDone[entry] = true;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        const BasicBlock &blk = g.block(b);
        BlockId succ = kNoBlock;
        if (next == 0)
            succ = blk.succTrue;
        else if (next == 1)
            succ = blk.succFalse;
        if (next >= 2) {
            postorder.push_back(b);
            stack.pop_back();
            continue;
        }
        next++;
        if (succ != kNoBlock && succ < nblocks && !onStackOrDone[succ]) {
            onStackOrDone[succ] = true;
            stack.push_back({succ, 0});
        }
    }
    rpo_.assign(postorder.rbegin(), postorder.rend());
    for (u32 i = 0; i < rpo_.size(); i++)
        rpoIndex_[rpo_[i]] = i;

    // Cooper/Harvey/Kennedy fixpoint.
    idom_[entry] = entry;
    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : rpo_) {
            if (b == entry)
                continue;
            BlockId newIdom = kNoBlock;
            for (BlockId p : g.block(b).preds) {
                if (!reachable(p) || idom_[p] == kNoBlock)
                    continue;  // back edge from not-yet-processed pred
                newIdom = newIdom == kNoBlock ? p : intersect(p, newIdom);
            }
            if (newIdom != kNoBlock && idom_[b] != newIdom) {
                idom_[b] = newIdom;
                changed = true;
            }
        }
    }
}

BlockId
DominatorTree::intersect(BlockId a, BlockId b) const
{
    while (a != b) {
        while (rpoIndex_[a] > rpoIndex_[b])
            a = idom_[a];
        while (rpoIndex_[b] > rpoIndex_[a])
            b = idom_[b];
    }
    return a;
}

bool
DominatorTree::dominates(BlockId a, BlockId b) const
{
    if (!reachable(a) || !reachable(b))
        return false;
    // Walk b's dominator chain up to the entry; chains are short.
    while (true) {
        if (b == a)
            return true;
        if (b == entry_)
            return false;
        BlockId up = idom_[b];
        if (up == kNoBlock || up == b)
            return false;
        b = up;
    }
}

} // namespace vspec
