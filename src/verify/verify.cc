#include "verify/verify.hh"

#include <cstdlib>

#include "support/logging.hh"

namespace vspec
{

VerifyLevel
defaultVerifyLevel()
{
    static VerifyLevel level = [] {
        if (const char *env = std::getenv("VSPEC_VERIFY")) {
            switch (env[0]) {
              case '0': return VerifyLevel::Off;
              case '1': return VerifyLevel::Final;
              case '2': return VerifyLevel::Passes;
              default: break;
            }
        }
#ifdef NDEBUG
        return VerifyLevel::Off;
#else
        return VerifyLevel::Passes;
#endif
    }();
    return level;
}

std::string
Diagnostic::str() const
{
    std::string out = verifier + " verifier [" + where + "] " + invariant;
    if (block != 0xffffffffu)
        out += " b" + std::to_string(block);
    if (node != 0xffffffffu)
        out += " @" + std::to_string(node);
    out += ": " + message;
    return out;
}

std::string
VerifyResult::str() const
{
    std::string out;
    for (const Diagnostic &d : diagnostics) {
        if (!out.empty())
            out += "\n";
        out += d.str();
    }
    return out;
}

bool
VerifyResult::has(const std::string &invariant) const
{
    for (const Diagnostic &d : diagnostics)
        if (d.invariant == invariant)
            return true;
    return false;
}

void
enforce(const VerifyResult &result, const std::string &what)
{
    if (result.ok())
        return;
    for (const Diagnostic &d : result.diagnostics)
        vlog(LogLevel::Error, "vverify", d.str());
    vpanic("vverify: " + what + ": "
           + std::to_string(result.diagnostics.size())
           + " invariant violation(s); first: "
           + result.diagnostics.front().str());
}

} // namespace vspec
