/**
 * @file
 * GraphVerifier: SSA / CFG well-formedness, representation typing, and
 * deopt safety of the speculative IR. Runs between passes, so it only
 * asserts invariants every pipeline stage preserves:
 *
 *  - arena hygiene: ids in range, live nodes use live nodes, every
 *    live node sits in exactly one block's list at its recorded block
 *  - CFG: terminators close reachable blocks, successor fields match
 *    the terminator kind, pred lists mirror successor edges
 *  - SSA: phis lead their block with one input per predecessor; every
 *    def dominates each of its uses (phi uses are edge uses; frame
 *    state slots of deopt points are uses at the deopt node)
 *  - representation typing: each edge's value representation matches
 *    the consumer's expected input class (Int32 and Bool are one
 *    machine-int class, as the builder freely mixes them)
 *  - deopt safety: every node that can trigger an eager deopt carries
 *    a frame state whose slots hold live, dominating values; and no
 *    deopt point placed after a side effect may resume before it
 *    (re-executing a store corrupts the heap — the invariant behind
 *    Flückiger et al.'s correctness argument for speculation).
 */

#include <vector>

#include "ir/graph.hh"
#include "verify/dominators.hh"
#include "verify/verify.hh"

namespace vspec
{

namespace
{

enum class RepClass : u8
{
    Tagged,
    MachInt,  //!< Int32 or Bool: interchangeable machine words
    Float,
    None,
    Any,
};

RepClass
classOf(Rep r)
{
    switch (r) {
      case Rep::Tagged: return RepClass::Tagged;
      case Rep::Int32:
      case Rep::Bool: return RepClass::MachInt;
      case Rep::Float64: return RepClass::Float;
      case Rep::None: return RepClass::None;
    }
    return RepClass::Any;
}

const char *
repClassName(RepClass c)
{
    switch (c) {
      case RepClass::Tagged: return "tagged";
      case RepClass::MachInt: return "machine-int";
      case RepClass::Float: return "float64";
      case RepClass::None: return "none";
      case RepClass::Any: return "any";
    }
    return "?";
}

/** Expected input classes per op; empty + variadic=true skips arity
 *  and per-input checks (calls). */
struct OpSignature
{
    RepClass out = RepClass::Any;
    std::vector<RepClass> in;
    bool variadic = false;
};

OpSignature
signatureOf(IrOp op)
{
    using RC = RepClass;
    switch (op) {
      case IrOp::Param: return {RC::Tagged, {}};
      case IrOp::ConstI32: return {RC::MachInt, {}};
      case IrOp::ConstTagged: return {RC::Tagged, {}};
      case IrOp::ConstF64: return {RC::Float, {}};
      // Phi inputs are checked against the phi's own class, not a
      // fixed signature.
      case IrOp::Phi: return {RC::Any, {}, true};

      case IrOp::I32Add: case IrOp::I32Sub: case IrOp::I32Mul:
      case IrOp::I32Div: case IrOp::I32Mod:
      case IrOp::I32And: case IrOp::I32Or: case IrOp::I32Xor:
      case IrOp::I32Shl: case IrOp::I32Sar: case IrOp::I32Shr:
        return {RC::MachInt, {RC::MachInt, RC::MachInt}};
      case IrOp::I32Neg: return {RC::MachInt, {RC::MachInt}};

      case IrOp::F64Add: case IrOp::F64Sub: case IrOp::F64Mul:
      case IrOp::F64Div: case IrOp::F64Mod:
        return {RC::Float, {RC::Float, RC::Float}};
      case IrOp::F64Neg: case IrOp::F64Abs: case IrOp::F64Sqrt:
        return {RC::Float, {RC::Float}};

      case IrOp::I32Compare:
        return {RC::MachInt, {RC::MachInt, RC::MachInt}};
      case IrOp::F64Compare: return {RC::MachInt, {RC::Float, RC::Float}};
      case IrOp::TaggedEqual:
        return {RC::MachInt, {RC::Tagged, RC::Tagged}};

      case IrOp::TagSmi: return {RC::Tagged, {RC::MachInt}};
      case IrOp::UntagSmi: return {RC::MachInt, {RC::Tagged}};
      case IrOp::I32ToF64: return {RC::Float, {RC::MachInt}};
      case IrOp::F64ToI32: return {RC::MachInt, {RC::Float}};
      case IrOp::ToFloat64: return {RC::Float, {RC::Tagged}};
      case IrOp::ToBooleanOp: return {RC::MachInt, {RC::Tagged}};
      case IrOp::F64ToBool: return {RC::MachInt, {RC::Float}};
      case IrOp::I32ToBool: return {RC::MachInt, {RC::MachInt}};
      case IrOp::BoolNot: return {RC::MachInt, {RC::MachInt}};
      case IrOp::BoolToTagged: return {RC::Tagged, {RC::MachInt}};

      case IrOp::CheckSmi: case IrOp::CheckHeapObject:
      case IrOp::CheckMap: case IrOp::CheckValue:
        return {RC::Tagged, {RC::Tagged}};
      case IrOp::CheckBounds:
        return {RC::MachInt, {RC::MachInt, RC::MachInt}};

      case IrOp::LoadField: return {RC::Tagged, {RC::Tagged}};
      case IrOp::LoadFieldRaw: return {RC::MachInt, {RC::Tagged}};
      case IrOp::StoreField:
        return {RC::None, {RC::Tagged, RC::Tagged}};
      case IrOp::StoreFieldRaw:
        return {RC::None, {RC::Tagged, RC::MachInt}};
      case IrOp::LoadElem32:
        return {RC::Tagged, {RC::Tagged, RC::MachInt}};
      case IrOp::LoadElemF64:
        return {RC::Float, {RC::Tagged, RC::MachInt}};
      case IrOp::StoreElem32:
        return {RC::None, {RC::Tagged, RC::MachInt, RC::Tagged}};
      case IrOp::StoreElemF64:
        return {RC::None, {RC::Tagged, RC::MachInt, RC::Float}};
      case IrOp::LoadGlobal: return {RC::Tagged, {}};
      case IrOp::StoreGlobal: return {RC::None, {RC::Tagged}};
      case IrOp::LoadFieldSmiUntag:
        return {RC::MachInt, {RC::Tagged}};
      case IrOp::LoadElemSmiUntag:
        return {RC::MachInt, {RC::Tagged, RC::MachInt}};

      // Call argument representations depend on the callee; the
      // builder coerces as needed. Only the variadic shape is fixed.
      case IrOp::CallRuntime: return {RC::Any, {}, true};
      case IrOp::CallFunction: return {RC::Tagged, {}, true};

      case IrOp::Branch: return {RC::None, {RC::MachInt}};
      case IrOp::Goto: return {RC::None, {}};
      case IrOp::Return: return {RC::None, {RC::Tagged}};
      case IrOp::Deopt: return {RC::None, {}, true};
    }
    return {RC::Any, {}, true};
}

class GraphVerifier
{
  public:
    GraphVerifier(const Graph &g, const std::string &where)
        : g(g), where(where), dom(g)
    {}

    VerifyResult
    run()
    {
        checkArena();
        if (!result.ok())
            return result;  // index errors make everything else UB
        checkBlocks();
        checkSsa();
        checkReps();
        checkDeoptSafety();
        checkProofs();
        return result;
    }

  private:
    void
    report(const std::string &invariant, BlockId b, ValueId v,
           const std::string &msg)
    {
        Diagnostic d;
        d.verifier = "graph";
        d.where = where;
        d.invariant = invariant;
        d.block = b;
        d.node = v;
        d.message = msg;
        result.diagnostics.push_back(std::move(d));
    }

    bool live(ValueId v) const { return !g.node(v).dead; }

    // ---- arena hygiene --------------------------------------------------

    void
    checkArena()
    {
        u32 nnodes = static_cast<u32>(g.nodes.size());
        u32 nblocks = static_cast<u32>(g.blocks.size());
        u32 nframes = static_cast<u32>(g.frameStates.size());

        for (ValueId id = 0; id < nnodes; id++) {
            const IrNode &n = g.nodes[id];
            if (n.dead)
                continue;
            if (n.block == kNoBlock || n.block >= nblocks) {
                report("node-block-range", n.block, id,
                       std::string(irOpName(n.op))
                       + " has out-of-range block");
                continue;
            }
            for (ValueId in : n.inputs) {
                if (in == kNoValue || in >= nnodes) {
                    report("input-range", n.block, id,
                           std::string(irOpName(n.op))
                           + " has out-of-range input "
                           + std::to_string(in));
                } else if (!live(in)) {
                    report("use-of-dead", n.block, id,
                           std::string(irOpName(n.op)) + " uses dead v"
                           + std::to_string(in) + " ("
                           + irOpName(g.node(in).op) + ")");
                }
            }
            if (n.frameState != kNoFrameState && n.frameState >= nframes) {
                report("frame-state-range", n.block, id,
                       "frame state index " + std::to_string(n.frameState)
                       + " out of range");
            }
        }

        // Every live node sits in exactly one block list, at its
        // recorded block.
        std::vector<u32> seen(nnodes, 0);
        for (BlockId b = 0; b < nblocks; b++) {
            for (ValueId id : g.blocks[b].nodes) {
                if (id >= nnodes) {
                    report("block-list-range", b, id,
                           "block lists out-of-range node");
                    continue;
                }
                seen[id]++;
                if (g.nodes[id].block != b) {
                    report("block-membership", b, id,
                           std::string(irOpName(g.nodes[id].op))
                           + " listed in b" + std::to_string(b)
                           + " but records b"
                           + std::to_string(g.nodes[id].block));
                }
            }
        }
        for (ValueId id = 0; id < nnodes; id++) {
            if (!live(id) && seen[id] <= 1)
                continue;  // dead nodes may be unlisted
            if (seen[id] != 1) {
                report("block-membership", g.nodes[id].block, id,
                       std::string(irOpName(g.nodes[id].op))
                       + " appears in " + std::to_string(seen[id])
                       + " block lists");
            }
        }
    }

    // ---- CFG ------------------------------------------------------------

    void
    checkBlocks()
    {
        u32 nblocks = static_cast<u32>(g.blocks.size());
        for (BlockId b = 0; b < nblocks; b++) {
            const BasicBlock &blk = g.blocks[b];
            if (blk.succTrue != kNoBlock && blk.succTrue >= nblocks)
                report("succ-range", b, kNoValue,
                       "succTrue out of range");
            if (blk.succFalse != kNoBlock && blk.succFalse >= nblocks)
                report("succ-range", b, kNoValue,
                       "succFalse out of range");
            if (!dom.reachable(b))
                continue;

            // Last live node must be the block's only live terminator.
            ValueId term = kNoValue;
            for (ValueId id : blk.nodes) {
                if (!live(id))
                    continue;
                if (term != kNoValue) {
                    report("terminator-last", b, term,
                           std::string(irOpName(g.node(term).op))
                           + " followed by live "
                           + irOpName(g.node(id).op));
                    term = kNoValue;
                }
                if (g.node(id).isTerminator())
                    term = id;
            }
            bool hasTerm = false;
            for (auto it = blk.nodes.rbegin(); it != blk.nodes.rend();
                 ++it) {
                if (!live(*it))
                    continue;
                hasTerm = g.node(*it).isTerminator();
                break;
            }
            if (!hasTerm) {
                report("terminator-missing", b, kNoValue,
                       "reachable block does not end in a terminator");
                continue;
            }

            // Successor fields must match the terminator kind.
            const IrNode &t = g.node(lastLive(blk));
            switch (t.op) {
              case IrOp::Branch:
                if (blk.succTrue == kNoBlock || blk.succFalse == kNoBlock)
                    report("succ-shape", b, lastLive(blk),
                           "Branch needs both successors");
                break;
              case IrOp::Goto:
                if (blk.succTrue == kNoBlock || blk.succFalse != kNoBlock)
                    report("succ-shape", b, lastLive(blk),
                           "Goto needs exactly one successor");
                break;
              case IrOp::Return:
              case IrOp::Deopt:
                if (blk.succTrue != kNoBlock || blk.succFalse != kNoBlock)
                    report("succ-shape", b, lastLive(blk),
                           std::string(irOpName(t.op))
                           + " must not have successors");
                break;
              default:
                break;
            }
        }

        // Pred lists mirror successor edges (multiset equality, over
        // reachable blocks on both ends).
        for (BlockId b = 0; b < nblocks; b++) {
            if (!dom.reachable(b))
                continue;
            const BasicBlock &blk = g.blocks[b];
            for (BlockId s : {blk.succTrue, blk.succFalse}) {
                if (s == kNoBlock || s >= nblocks)
                    continue;
                u32 edges = edgeCount(b, s);
                u32 preds = 0;
                for (BlockId p : g.block(s).preds)
                    if (p == b)
                        preds++;
                if (edges != preds) {
                    report("pred-succ-mismatch", b, kNoValue,
                           "edge b" + std::to_string(b) + " -> b"
                           + std::to_string(s) + " appears "
                           + std::to_string(edges)
                           + "x as successor but "
                           + std::to_string(preds) + "x in preds");
                }
            }
        }
    }

    u32
    edgeCount(BlockId from, BlockId to) const
    {
        const BasicBlock &blk = g.block(from);
        u32 c = 0;
        if (blk.succTrue == to)
            c++;
        if (blk.succFalse == to)
            c++;
        return c;
    }

    ValueId
    lastLive(const BasicBlock &blk) const
    {
        for (auto it = blk.nodes.rbegin(); it != blk.nodes.rend(); ++it)
            if (live(*it))
                return *it;
        return kNoValue;
    }

    // ---- SSA ------------------------------------------------------------

    /** Position of each live node within its block (for same-block
     *  dominance; ids alone are wrong once hoisting moves nodes). */
    std::vector<u32>
    positions() const
    {
        std::vector<u32> pos(g.nodes.size(), 0);
        for (const BasicBlock &blk : g.blocks) {
            u32 p = 0;
            for (ValueId id : blk.nodes)
                pos[id] = p++;
        }
        return pos;
    }

    /** Pure constants are rematerializable anywhere: passes hoist
     *  their consumers without moving them (see
     *  hoistLoopInvariantChecks) and the backend materializes them at
     *  each use, so their recorded position carries no dominance
     *  meaning. */
    bool
    rematerializable(ValueId v) const
    {
        IrOp op = g.node(v).op;
        return op == IrOp::ConstI32 || op == IrOp::ConstTagged
               || op == IrOp::ConstF64;
    }

    /** Does def @p d reach a use at node @p u (non-phi)? */
    bool
    defReachesUse(ValueId d, ValueId u, const std::vector<u32> &pos) const
    {
        if (rematerializable(d))
            return true;
        BlockId db = g.node(d).block;
        BlockId ub = g.node(u).block;
        if (db == ub)
            return pos[d] < pos[u];
        return dom.dominates(db, ub);
    }

    void
    checkSsa()
    {
        std::vector<u32> pos = positions();

        for (BlockId b = 0; b < g.blocks.size(); b++) {
            if (!dom.reachable(b))
                continue;
            const BasicBlock &blk = g.blocks[b];

            // Live phis lead the block (the backend stops scanning for
            // phi moves at the first non-phi).
            bool sawNonPhi = false;
            for (ValueId id : blk.nodes) {
                if (!live(id))
                    continue;
                const IrNode &n = g.node(id);
                if (n.op != IrOp::Phi) {
                    sawNonPhi = true;
                    continue;
                }
                if (sawNonPhi) {
                    report("phi-placement", b, id,
                           "live phi after a non-phi node");
                }
                if (n.inputs.size() != blk.preds.size()) {
                    report("phi-arity", b, id,
                           "phi has " + std::to_string(n.inputs.size())
                           + " inputs for "
                           + std::to_string(blk.preds.size())
                           + " predecessors");
                    continue;
                }
                for (size_t i = 0; i < n.inputs.size(); i++) {
                    BlockId p = blk.preds[i];
                    if (!dom.reachable(p) || rematerializable(n.inputs[i]))
                        continue;
                    BlockId db = g.node(n.inputs[i]).block;
                    if (!dom.dominates(db, p)) {
                        report("def-dominates-use", b, id,
                               "phi input v"
                               + std::to_string(n.inputs[i])
                               + " (b" + std::to_string(db)
                               + ") does not dominate edge pred b"
                               + std::to_string(p));
                    }
                }
            }

            // Ordinary uses.
            for (ValueId id : blk.nodes) {
                if (!live(id))
                    continue;
                const IrNode &n = g.node(id);
                if (n.op == IrOp::Phi)
                    continue;
                for (ValueId in : n.inputs) {
                    if (!defReachesUse(in, id, pos)) {
                        report("def-dominates-use", b, id,
                               std::string(irOpName(n.op)) + " input v"
                               + std::to_string(in) + " ("
                               + irOpName(g.node(in).op) + " in b"
                               + std::to_string(g.node(in).block)
                               + ") does not dominate the use");
                    }
                }
                // Frame state slots are uses at the deopt point: the
                // deopt handler materializes them here.
                if (n.canDeopt() && n.frameState != kNoFrameState) {
                    const FrameState &fs = g.frameStates[n.frameState];
                    auto checkSlot = [&](ValueId v, const char *what) {
                        if (v == kNoValue)
                            return;
                        if (v >= g.nodes.size()) {
                            report("frame-state-slot", b, id,
                                   std::string(what)
                                   + " slot out of range");
                            return;
                        }
                        if (!live(v)) {
                            report("frame-state-slot", b, id,
                                   std::string(what) + " references dead v"
                                   + std::to_string(v));
                            return;
                        }
                        // SMI-load fusion folds the checked load into
                        // the deopt node itself; its frame state then
                        // names the fused node for the slot the
                        // re-executed bytecode will refill. A deopt
                        // point may therefore reference its own value.
                        if (v == id)
                            return;
                        if (!defReachesUse(v, id, pos)) {
                            report("frame-state-slot", b, id,
                                   std::string(what) + " value v"
                                   + std::to_string(v)
                                   + " does not dominate the deopt point");
                        }
                    };
                    for (ValueId r : fs.regs)
                        checkSlot(r, "frame-state reg");
                    checkSlot(fs.accumulator, "frame-state acc");
                }
            }
        }
    }

    // ---- representation typing ------------------------------------------

    void
    checkReps()
    {
        for (ValueId id = 0; id < g.nodes.size(); id++) {
            const IrNode &n = g.nodes[id];
            if (n.dead || !dom.reachable(n.block))
                continue;
            OpSignature sig = signatureOf(n.op);

            if (sig.out != RepClass::Any && sig.out != RepClass::None
                && classOf(n.rep) != sig.out) {
                report("rep-output", n.block, id,
                       std::string(irOpName(n.op)) + " produces "
                       + repName(n.rep) + ", expected "
                       + repClassName(sig.out));
            }

            if (n.op == IrOp::Phi) {
                RepClass want = classOf(n.rep);
                for (ValueId in : n.inputs) {
                    if (classOf(g.node(in).rep) != want) {
                        report("rep-input", n.block, id,
                               "phi(" + std::string(repName(n.rep))
                               + ") input v" + std::to_string(in)
                               + " is " + repName(g.node(in).rep));
                    }
                }
                continue;
            }
            if (sig.variadic)
                continue;
            if (n.inputs.size() != sig.in.size()) {
                report("input-arity", n.block, id,
                       std::string(irOpName(n.op)) + " has "
                       + std::to_string(n.inputs.size())
                       + " inputs, expected "
                       + std::to_string(sig.in.size()));
                continue;
            }
            for (size_t i = 0; i < sig.in.size(); i++) {
                Rep have = g.node(n.inputs[i]).rep;
                if (sig.in[i] != RepClass::Any
                    && classOf(have) != sig.in[i]) {
                    report("rep-input", n.block, id,
                           std::string(irOpName(n.op)) + " input "
                           + std::to_string(i) + " (v"
                           + std::to_string(n.inputs[i]) + ") is "
                           + repName(have) + ", expected "
                           + repClassName(sig.in[i]));
                }
            }
        }
    }

    // ---- deopt safety ---------------------------------------------------

    void
    checkDeoptSafety()
    {
        // (1) Every node that can trigger an eager deopt must carry a
        // frame state — without one the runtime cannot rebuild the
        // interpreter frame and the deopt is a crash, not a bailout.
        for (ValueId id = 0; id < g.nodes.size(); id++) {
            const IrNode &n = g.nodes[id];
            if (n.dead || !dom.reachable(n.block))
                continue;
            if (!n.canDeopt())
                continue;
            if (n.frameState == kNoFrameState
                || n.frameState >= g.frameStates.size()) {
                report("deopt-frame-state", n.block, id,
                       std::string(irOpName(n.op)) + " ["
                       + deoptReasonName(n.reason)
                       + "] can deopt but has no frame state");
            }
        }

        // (2) A deopt point after a side effect must not resume at or
        // before the bytecode whose effects already ran: deopting would
        // re-execute the store/call. Within a block, the resume offsets
        // of deopt points seen before a side effect are a lower bound
        // for the bytecode that effect belongs to; later deopt points
        // must resume at or beyond that bound (checks of one bytecode
        // share its offset, so equality is legal).
        for (BlockId b = 0; b < g.blocks.size(); b++) {
            if (!dom.reachable(b))
                continue;
            u32 barrier = 0;
            u32 maxResume = 0;
            bool barrierActive = false;
            for (ValueId id : g.block(b).nodes) {
                const IrNode &n = g.node(id);
                if (!live(id))
                    continue;
                bool isEffect = n.op == IrOp::StoreField
                                || n.op == IrOp::StoreFieldRaw
                                || n.op == IrOp::StoreElem32
                                || n.op == IrOp::StoreElemF64
                                || n.op == IrOp::StoreGlobal
                                || n.op == IrOp::CallRuntime
                                || n.op == IrOp::CallFunction;
                if (n.canDeopt() && n.frameState != kNoFrameState
                    && n.frameState < g.frameStates.size()) {
                    u32 resume =
                        g.frameStates[n.frameState].bytecodeOffset;
                    if (barrierActive && resume < barrier) {
                        report("check-after-effect", b, id,
                               std::string(irOpName(n.op)) + " ["
                               + deoptReasonName(n.reason)
                               + "] resumes at bytecode "
                               + std::to_string(resume)
                               + " but a side effect of bytecode >= "
                               + std::to_string(barrier)
                               + " already executed");
                    }
                    maxResume = std::max(maxResume, resume);
                }
                if (isEffect) {
                    barrier = std::max(barrier, maxResume);
                    barrierActive = true;
                }
            }
        }
    }

    // ---- vproof elided-check proofs -------------------------------------

    /**
     * Every check deleted by static-elim must carry a proof whose
     * premises dominate its former position (and vice versa: every
     * elided proof names a provenElided check). Check premises must be
     * live — a check is a DCE root, so a deleted premise would mean
     * the dynamic guarantee vanished. Non-check premises may die to
     * DCE afterwards; their dominance is structural and keeps holding.
     */
    void
    checkProofs()
    {
        std::vector<u32> pos = positions();
        std::vector<u32> proofCount(g.nodes.size(), 0);

        for (const CheckProof &p : g.proofs) {
            if (p.check >= g.nodes.size()) {
                report("elided-check-proof", kNoBlock, p.check,
                       "proof names an out-of-range check");
                continue;
            }
            if (!p.elided)
                continue;
            proofCount[p.check]++;
            const IrNode &n = g.node(p.check);
            if (!n.dead || !n.provenElided) {
                report("elided-check-proof", n.block, p.check,
                       "elided proof for a check that is not "
                       "provenElided-dead");
                continue;
            }
            if (p.cls != CheckClass::ProvenRedundant
                || p.rule == ProofRule::None) {
                report("elided-check-proof", n.block, p.check,
                       "elided check lacks a ProvenRedundant verdict "
                       "with a rule");
            }
            if (p.premises.empty()) {
                report("elided-check-proof", n.block, p.check,
                       "elided check has no premises");
            }
            if (!dom.reachable(n.block))
                continue;
            for (ValueId prem : p.premises) {
                if (prem >= g.nodes.size()) {
                    report("elided-check-proof", n.block, p.check,
                           "premise v" + std::to_string(prem)
                           + " out of range");
                    continue;
                }
                const IrNode &pn = g.node(prem);
                if (pn.isCheck() && pn.dead) {
                    report("elided-check-proof", n.block, p.check,
                           "premise v" + std::to_string(prem)
                           + " is a dead check");
                    continue;
                }
                if (!defReachesUse(prem, p.check, pos)) {
                    report("elided-check-proof", n.block, p.check,
                           "premise v" + std::to_string(prem) + " ("
                           + irOpName(pn.op)
                           + ") does not dominate the check's former "
                             "position");
                }
            }
        }

        for (ValueId id = 0; id < g.nodes.size(); id++) {
            const IrNode &n = g.nodes[id];
            if (!n.provenElided)
                continue;
            if (!n.dead || !n.isCheck()) {
                report("elided-check-proof", n.block, id,
                       "provenElided on a node that is not a dead check");
            }
            if (proofCount[id] != 1) {
                report("elided-check-proof", n.block, id,
                       "provenElided check has "
                       + std::to_string(proofCount[id])
                       + " elided proofs, expected exactly 1");
            }
        }
    }

    const Graph &g;
    const std::string &where;
    DominatorTree dom;
    VerifyResult result;
};

} // namespace

VerifyResult
verifyGraph(const Graph &graph, const std::string &where)
{
    return GraphVerifier(graph, where).run();
}

} // namespace vspec
