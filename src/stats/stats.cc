#include "stats/stats.hh"

#include <algorithm>
#include <cmath>

namespace vspec
{
namespace stats
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
variance(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return s / static_cast<double>(xs.size() - 1);
}

double
stddev(const std::vector<double> &xs)
{
    return std::sqrt(variance(xs));
}

double
median(std::vector<double> xs)
{
    return percentile(std::move(xs), 50.0);
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Regression
linearRegression(const std::vector<double> &x, const std::vector<double> &y)
{
    Regression r;
    size_t n = std::min(x.size(), y.size());
    if (n < 2)
        return r;
    double mx = mean(x), my = mean(y);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; i++) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
        syy += (y[i] - my) * (y[i] - my);
    }
    if (sxx == 0.0)
        return r;
    r.slope = sxy / sxx;
    r.intercept = my - r.slope * mx;
    r.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
    return r;
}

double
incompleteBeta(double a, double b, double x)
{
    // Continued-fraction evaluation (Lentz), per Numerical Recipes.
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;
    auto beta_cf = [](double aa, double bb, double xx) {
        constexpr int kMaxIter = 300;
        constexpr double kEps = 3e-12;
        constexpr double kFpMin = 1e-300;
        double qab = aa + bb, qap = aa + 1.0, qam = aa - 1.0;
        double c = 1.0;
        double d = 1.0 - qab * xx / qap;
        if (std::abs(d) < kFpMin)
            d = kFpMin;
        d = 1.0 / d;
        double h = d;
        for (int m = 1; m <= kMaxIter; m++) {
            int m2 = 2 * m;
            double num = m * (bb - m) * xx / ((qam + m2) * (aa + m2));
            d = 1.0 + num * d;
            if (std::abs(d) < kFpMin)
                d = kFpMin;
            c = 1.0 + num / c;
            if (std::abs(c) < kFpMin)
                c = kFpMin;
            d = 1.0 / d;
            h *= d * c;
            num = -(aa + m) * (qab + m) * xx / ((aa + m2) * (qap + m2));
            d = 1.0 + num * d;
            if (std::abs(d) < kFpMin)
                d = kFpMin;
            c = 1.0 + num / c;
            if (std::abs(c) < kFpMin)
                c = kFpMin;
            d = 1.0 / d;
            double del = d * c;
            h *= del;
            if (std::abs(del - 1.0) < kEps)
                break;
        }
        return h;
    };
    double ln_beta = std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
    double front = std::exp(a * std::log(x) + b * std::log(1.0 - x)
                            - ln_beta);
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * beta_cf(a, b, x) / a;
    return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double
studentTCdf(double t, double df)
{
    if (df <= 0.0)
        return 0.5;
    double x = df / (df + t * t);
    double p = 0.5 * incompleteBeta(df / 2.0, 0.5, x);
    return t > 0 ? 1.0 - p : p;
}

Correlation
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    Correlation c;
    size_t n = std::min(x.size(), y.size());
    c.n = n;
    if (n < 3)
        return c;
    double mx = mean(x), my = mean(y);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; i++) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
        syy += (y[i] - my) * (y[i] - my);
    }
    if (sxx == 0.0 || syy == 0.0)
        return c;
    c.r = sxy / std::sqrt(sxx * syy);
    double df = static_cast<double>(n - 2);
    double denom = 1.0 - c.r * c.r;
    if (denom <= 0.0) {
        c.pValue = 0.0;
        return c;
    }
    double t = c.r * std::sqrt(df / denom);
    c.pValue = 2.0 * (1.0 - studentTCdf(std::abs(t), df));
    return c;
}

TTest
welchTTest(const std::vector<double> &a, const std::vector<double> &b)
{
    TTest r;
    if (a.size() < 2 || b.size() < 2)
        return r;
    double va = variance(a) / static_cast<double>(a.size());
    double vb = variance(b) / static_cast<double>(b.size());
    if (va + vb == 0.0) {
        r.pValue = mean(a) == mean(b) ? 1.0 : 0.0;
        return r;
    }
    r.t = (mean(a) - mean(b)) / std::sqrt(va + vb);
    double na = static_cast<double>(a.size());
    double nb = static_cast<double>(b.size());
    r.df = (va + vb) * (va + vb)
           / (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
    r.pValue = 2.0 * (1.0 - studentTCdf(std::abs(r.t), r.df));
    return r;
}

Interval
bootstrapMeanCi(const std::vector<double> &xs, double confidence,
                u32 resamples, u64 seed)
{
    Interval ci;
    if (xs.empty())
        return ci;
    Rng rng(seed);
    std::vector<double> means;
    means.reserve(resamples);
    for (u32 r = 0; r < resamples; r++) {
        double s = 0.0;
        for (size_t i = 0; i < xs.size(); i++)
            s += xs[rng.nextBelow(xs.size())];
        means.push_back(s / static_cast<double>(xs.size()));
    }
    double alpha = (1.0 - confidence) / 2.0 * 100.0;
    ci.lo = percentile(means, alpha);
    ci.hi = percentile(means, 100.0 - alpha);
    return ci;
}

} // namespace stats
} // namespace vspec
