/**
 * @file
 * Statistics toolkit for the paper's §IV analysis: descriptive stats,
 * ordinary least squares with R², Pearson correlation with a t-test
 * p-value, Welch's t-test for two samples, Bonferroni correction, and
 * bootstrap percentile confidence intervals.
 */

#ifndef VSPEC_STATS_STATS_HH
#define VSPEC_STATS_STATS_HH

#include <vector>

#include "support/common.hh"
#include "support/random.hh"

namespace vspec
{
namespace stats
{

double mean(const std::vector<double> &xs);
double variance(const std::vector<double> &xs);  //!< sample (n-1)
double stddev(const std::vector<double> &xs);
double median(std::vector<double> xs);
/** Linear-interpolated percentile, p in [0, 100]. */
double percentile(std::vector<double> xs, double p);

/** Ordinary least squares y = a + b*x. */
struct Regression
{
    double intercept = 0.0;
    double slope = 0.0;
    double r2 = 0.0;
};
Regression linearRegression(const std::vector<double> &x,
                            const std::vector<double> &y);

/** Pearson correlation with two-sided p-value (t distribution). */
struct Correlation
{
    double r = 0.0;
    double pValue = 1.0;
    size_t n = 0;
};
Correlation pearson(const std::vector<double> &x,
                    const std::vector<double> &y);

/** Welch's unequal-variance t-test (two-sided). */
struct TTest
{
    double t = 0.0;
    double df = 0.0;
    double pValue = 1.0;
};
TTest welchTTest(const std::vector<double> &a, const std::vector<double> &b);

/** Bonferroni-adjusted significance threshold. */
inline double
bonferroni(double alpha, size_t num_tests)
{
    return num_tests == 0 ? alpha : alpha / static_cast<double>(num_tests);
}

/** Bootstrap percentile CI of the mean. */
struct Interval
{
    double lo = 0.0;
    double hi = 0.0;
};
Interval bootstrapMeanCi(const std::vector<double> &xs,
                         double confidence = 0.95, u32 resamples = 1000,
                         u64 seed = 1234);

/** Student's t CDF (used by pearson / welch); exposed for tests. */
double studentTCdf(double t, double df);

/** Regularized incomplete beta function (numerics backend). */
double incompleteBeta(double a, double b, double x);

} // namespace stats
} // namespace vspec

#endif // VSPEC_STATS_STATS_HH
