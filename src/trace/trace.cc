#include "trace/trace.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/json.hh"
#include "support/logging.hh"

namespace vspec
{

// ---------------------------------------------------------------------
// Categories
// ---------------------------------------------------------------------

const char *
traceCategoryName(TraceCategory c)
{
    switch (c) {
      case TraceCategory::Tiering: return "tiering";
      case TraceCategory::Compile: return "compile";
      case TraceCategory::Deopt: return "deopt";
      case TraceCategory::Ic: return "ic";
      case TraceCategory::Gc: return "gc";
      case TraceCategory::Exec: return "exec";
      case TraceCategory::Fault: return "fault";
      case TraceCategory::Sample: return "sample";
      case TraceCategory::Serve: return "serve";
      case TraceCategory::NumCategories: break;
    }
    return "?";
}

u32
parseTraceCategories(const std::string &spec)
{
    u32 mask = 0;
    size_t start = 0;
    while (start <= spec.size()) {
        size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(start, comma - start);
        // Trim surrounding spaces.
        while (!tok.empty() && tok.front() == ' ')
            tok.erase(tok.begin());
        while (!tok.empty() && tok.back() == ' ')
            tok.pop_back();
        if (!tok.empty()) {
            if (tok == "all" || tok == "1") {
                mask |= kAllTraceCategories;
            } else {
                bool known = false;
                for (u32 i = 0; i < kNumTraceCategories; i++) {
                    auto c = static_cast<TraceCategory>(i);
                    if (tok == traceCategoryName(c)) {
                        mask |= traceCategoryBit(c);
                        known = true;
                        break;
                    }
                }
                if (!known)
                    vlog(LogLevel::Warn, "vtrace",
                         "unknown trace category '" + tok + "' ignored");
            }
        }
        start = comma + 1;
    }
    return mask;
}

TraceConfig
TraceConfig::fromEnv()
{
    // Read the environment exactly once: every RunConfig/EngineConfig
    // default-constructs through here, which under the vpar runner
    // happens concurrently on worker threads (getenv is not guaranteed
    // reentrant against itself on all libcs), and a parse warning for
    // a typo'd category should print once, not once per cell.
    static const TraceConfig cached = [] {
        TraceConfig cfg;
        if (const char *env = std::getenv("VSPEC_TRACE")) {
            cfg.categories = parseTraceCategories(env);
            if (cfg.categories != 0)
                cfg.outPath = "vspec-trace";
        }
        if (const char *env = std::getenv("VSPEC_TRACE_OUT")) {
            if (env[0] != '\0')
                cfg.outPath = env;
        }
        return cfg;
    }();
    return cached;
}

// ---------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------

namespace
{

u32
roundUpPow2(u32 v)
{
    u32 p = 1;
    while (p < v && p < (1u << 24))
        p <<= 1;
    return p;
}

} // namespace

TraceRing::TraceRing(u32 capacity)
    : storage(roundUpPow2(capacity == 0 ? 1 : capacity)),
      mask(static_cast<u32>(storage.size()) - 1)
{
}

void
TraceRing::push(const TraceEvent &e)
{
    u64 slot = next.fetch_add(1, std::memory_order_relaxed);
    storage[static_cast<u32>(slot) & mask] = e;
}

u64
TraceRing::size() const
{
    u64 w = written();
    return w < storage.size() ? w : storage.size();
}

u64
TraceRing::dropped() const
{
    u64 w = written();
    return w > storage.size() ? w - storage.size() : 0;
}

void
TraceRing::forEach(
    const std::function<void(const TraceEvent &)> &fn) const
{
    u64 w = written();
    u64 first = w > storage.size() ? w - storage.size() : 0;
    for (u64 i = first; i < w; i++)
        fn(storage[static_cast<u32>(i) & mask]);
}

void
TraceRing::clear()
{
    next.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

const char *
traceCounterName(TraceCounter c)
{
    switch (c) {
      case TraceCounter::Invocations: return "invocations";
      case TraceCounter::InterpCalls: return "interp_calls";
      case TraceCounter::OptimizedCalls: return "optimized_calls";
      case TraceCounter::Compilations: return "compilations";
      case TraceCounter::CompileBailouts: return "compile_bailouts";
      case TraceCounter::TierUps: return "tier_ups";
      case TraceCounter::DeoptsEager: return "deopts_eager";
      case TraceCounter::DeoptsSoft: return "deopts_soft";
      case TraceCounter::DeoptsLazy: return "deopts_lazy";
      case TraceCounter::OptimizationDisables:
        return "optimization_disables";
      case TraceCounter::CheckSiteDeoptHits:
        return "check_site_deopt_hits";
      case TraceCounter::IcToMonomorphic: return "ic_to_monomorphic";
      case TraceCounter::IcToPolymorphic: return "ic_to_polymorphic";
      case TraceCounter::IcToMegamorphic: return "ic_to_megamorphic";
      case TraceCounter::GcCycles: return "gc_cycles";
      case TraceCounter::GcBytesFreed: return "gc_bytes_freed";
      case TraceCounter::FaultsInjected: return "faults_injected";
      case TraceCounter::EngineErrors: return "engine_errors";
      case TraceCounter::ServeRequests: return "serve_requests";
      case TraceCounter::ServeShed: return "serve_shed";
      case TraceCounter::ServeRetries: return "serve_retries";
      case TraceCounter::ServeDeadlineExceeded:
        return "serve_deadline_exceeded";
      case TraceCounter::ServeQuarantines: return "serve_quarantines";
      case TraceCounter::ServeDegradations: return "serve_degradations";
      case TraceCounter::ServeErrors: return "serve_errors";
      case TraceCounter::RegallocSpills: return "regalloc_spills";
      case TraceCounter::RegallocSplits: return "regalloc_splits";
      case TraceCounter::RegallocReloads: return "regalloc_reloads";
      case TraceCounter::RegallocSpillSlots: return "regalloc_spill_slots";
      case TraceCounter::RegallocCalleeSaved:
        return "regalloc_callee_saved";
      case TraceCounter::DeoptEpisodes: return "deopt_episodes";
      case TraceCounter::DeoptStormSites: return "deopt_storm_sites";
      case TraceCounter::DeoptFlipFlops: return "deopt_flip_flops";
      case TraceCounter::DeoptBailoutCycles:
        return "deopt_bailout_cycles";
      case TraceCounter::DeoptReplayCycles:
        return "deopt_replay_cycles";
      case TraceCounter::DeoptRecompileCycles:
        return "deopt_recompile_cycles";
      case TraceCounter::NumCounters: break;
    }
    return "?";
}

u64
CounterRegistry::totalDeopts() const
{
    return get(TraceCounter::DeoptsEager) + get(TraceCounter::DeoptsSoft)
           + get(TraceCounter::DeoptsLazy);
}

void
CounterRegistry::reset()
{
    for (u64 &v : fixed)
        v = 0;
    for (u64 &v : byReason)
        v = 0;
    checkSiteHits.clear();
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

Tracer::Tracer(TraceConfig config)
    : ring(config.enabled() ? config.ringCapacity : 1),
      config_(std::move(config)),
      mask(config_.categories)
{
}

void
Tracer::emit(TraceCategory cat, TraceEventKind kind, const char *name,
             u64 timestamp, u32 a, u32 b, u64 c)
{
    if (!on(cat))
        return;
    emitted[static_cast<u32>(cat)]++;
    TraceEvent e;
    e.timestamp = timestamp;
    e.name = name;
    e.category = cat;
    e.kind = kind;
    e.a = a;
    e.b = b;
    e.c = c;
    ring.push(e);
}

namespace
{

const char *
chromePhase(TraceEventKind k)
{
    switch (k) {
      case TraceEventKind::Begin: return "B";
      case TraceEventKind::End: return "E";
      case TraceEventKind::AsyncBegin: return "b";
      case TraceEventKind::AsyncEnd: return "e";
      case TraceEventKind::Instant: break;
    }
    return "i";
}

bool
isAsync(TraceEventKind k)
{
    return k == TraceEventKind::AsyncBegin
           || k == TraceEventKind::AsyncEnd;
}

} // namespace

std::string
Tracer::chromeTraceJson() const
{
    // One simulated cycle maps to one microsecond of trace time, so
    // chrome://tracing renders cycle distances directly.
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    ring.forEach([&](const TraceEvent &e) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"name\":\"" << jsonEscape(e.name)
           << "\",\"cat\":\"" << traceCategoryName(e.category)
           << "\",\"ph\":\"" << chromePhase(e.kind)
           << "\",\"ts\":" << e.timestamp << ",\"pid\":1,\"tid\":"
           << (static_cast<u32>(e.category) + 1);
        if (e.kind == TraceEventKind::Instant)
            os << ",\"s\":\"t\"";
        // Async spans match begin/end by (category, id, name); the id
        // travels in payload `c` (vdcost: the episode id).
        if (isAsync(e.kind))
            os << ",\"id\":" << e.c;
        os << ",\"args\":{\"a\":" << e.a << ",\"b\":" << e.b
           << ",\"c\":" << e.c;
        if (functionNamer
            && (e.category == TraceCategory::Exec
                || e.category == TraceCategory::Compile
                || e.category == TraceCategory::Tiering
                || e.category == TraceCategory::Deopt))
            os << ",\"function\":\"" << jsonEscape(functionNamer(e.a))
               << "\"";
        os << "}}";
    });
    os << "],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{"
       << "\"producer\":\"vspec vtrace\",\"dropped_events\":"
       << ring.dropped() << "}}\n";
    return os.str();
}

std::string
Tracer::metricsJson() const
{
    std::ostringstream os;
    os << "{\n  \"counters\": {";
    for (u32 i = 0; i < kNumTraceCounters; i++) {
        if (i != 0)
            os << ",";
        os << "\n    \"" << traceCounterName(static_cast<TraceCounter>(i))
           << "\": " << counters.fixed[i];
    }
    os << "\n  },\n  \"deopts_by_reason\": {";
    bool first = true;
    for (int i = 0; i < kNumDeoptReasons; i++) {
        if (counters.byReason[i] == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\n    \""
           << jsonEscape(deoptReasonName(static_cast<DeoptReason>(i)))
           << "\": " << counters.byReason[i];
    }
    os << "\n  },\n  \"check_site_hits\": [";
    first = true;
    for (const auto &[key, hits] : counters.checkSiteHits) {
        if (!first)
            os << ",";
        first = false;
        os << "\n    {\"code\": " << (key >> 16)
           << ", \"check\": " << (key & 0xffff) << ", \"hits\": " << hits
           << "}";
    }
    os << "\n  ],\n  \"events\": {\n    \"recorded\": " << ring.written()
       << ",\n    \"retained\": " << ring.size()
       << ",\n    \"dropped\": " << ring.dropped()
       << ",\n    \"per_category\": {";
    for (u32 i = 0; i < kNumTraceCategories; i++) {
        if (i != 0)
            os << ",";
        os << "\n      \""
           << traceCategoryName(static_cast<TraceCategory>(i))
           << "\": " << emitted[i];
    }
    os << "\n    }\n  }\n}\n";
    return os.str();
}

bool
Tracer::writeFiles(const std::string &label) const
{
    if (config_.outPath.empty())
        return false;
    std::string base = config_.outPath;
    if (!label.empty()) {
        base += '-';
        for (char c : label) {
            bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                      || (c >= '0' && c <= '9') || c == '-' || c == '_'
                      || c == '.';
            base += ok ? c : '_';
        }
    }
    {
        std::ofstream out(base + ".trace.json");
        if (!out) {
            vlog(LogLevel::Warn, "vtrace",
                 "cannot write " + base + ".trace.json");
            return false;
        }
        out << chromeTraceJson();
    }
    {
        std::ofstream out(base + ".metrics.json");
        if (!out) {
            vlog(LogLevel::Warn, "vtrace",
                 "cannot write " + base + ".metrics.json");
            return false;
        }
        out << metricsJson();
    }
    vlog(LogLevel::Info, "vtrace",
         "wrote " + base + ".trace.json / .metrics.json");
    return true;
}

} // namespace vspec
