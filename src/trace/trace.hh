/**
 * @file
 * vtrace: engine-wide structured tracing and metrics.
 *
 * The paper's contribution is *measurement*; vtrace makes every number
 * the engine produces auditable at runtime. Two parallel mechanisms:
 *
 *  - A lock-free bounded ring buffer of typed TraceEvents with cycle
 *    timestamps, in six categories: `tiering` (tier-up decisions,
 *    re-warms, optimization disables), `compile` (per-pass begin/end
 *    with live node counts, codegen), `deopt` (reason, bytecode offset,
 *    check id), `ic` (feedback transitions mono -> poly -> megamorphic),
 *    `gc` (collection begin/end, bytes freed) and `exec` (function
 *    invocations per tier). When the ring wraps, the oldest events are
 *    overwritten and counted as dropped; per-category emit counters are
 *    exact regardless.
 *
 *  - A registry of named monotonic counters (compilations, bailouts,
 *    deopts by reason, IC transitions, GC work, per-check-site deopt
 *    hits) that aggregates with plain array increments on the hot path.
 *
 * Control: EngineConfig::trace, overridable without a rebuild through
 * `VSPEC_TRACE=<cat>[,<cat>...]` (or `all`) and `VSPEC_TRACE_OUT=<path
 * prefix>`. Category checks are a single branch on a cached bitmask
 * (`tracer.on(cat)`), so the disabled path costs one predictable
 * untaken branch and never touches simulated cycle accounting — traces
 * observe the figures, they do not appear in them.
 *
 * Output backends: Chrome trace-event JSON (load at chrome://tracing
 * or https://ui.perfetto.dev) and a flat metrics JSON consumed by the
 * experiment harness and the differential tests.
 */

#ifndef VSPEC_TRACE_TRACE_HH
#define VSPEC_TRACE_TRACE_HH

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ir/deopt_reasons.hh"
#include "support/common.hh"

namespace vspec
{

// ---------------------------------------------------------------------
// Categories
// ---------------------------------------------------------------------

enum class TraceCategory : u8
{
    Tiering,  //!< tier-up decisions, re-warm, optimization disables
    Compile,  //!< per-pass begin/end, codegen, bailouts
    Deopt,    //!< eager/soft/lazy deoptimization events
    Ic,       //!< feedback-vector state transitions
    Gc,       //!< collection cycles
    Exec,     //!< function invocations (both tiers) — high volume
    Fault,    //!< vguard injected faults and raised engine errors
    Sample,   //!< vprof sampler markers — very high volume
    Serve,    //!< vserve request lifecycle: shed, retry, quarantine…
    NumCategories,
};

constexpr u32 kNumTraceCategories =
    static_cast<u32>(TraceCategory::NumCategories);

constexpr u32
traceCategoryBit(TraceCategory c)
{
    return 1u << static_cast<u32>(c);
}

/** All categories enabled. */
constexpr u32 kAllTraceCategories = (1u << kNumTraceCategories) - 1;

const char *traceCategoryName(TraceCategory c);

/**
 * Parse a category list ("deopt,tiering", "all", "") into a bitmask.
 * Unknown names are ignored with a warning through support/logging so a
 * typo in VSPEC_TRACE degrades loudly instead of silently.
 */
u32 parseTraceCategories(const std::string &spec);

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

struct TraceConfig
{
    /** Bitmask of enabled categories; 0 = tracing disabled. */
    u32 categories = 0;

    /**
     * Output path prefix: on dump, `<outPath>[-<label>].trace.json`
     * (Chrome trace events) and `...metrics.json` (flat counters) are
     * written. Empty = no automatic dump at engine destruction.
     */
    std::string outPath;

    /** Ring capacity in events (rounded up to a power of two). */
    u32 ringCapacity = 1u << 16;

    bool enabled() const { return categories != 0; }

    /**
     * Environment-driven config: VSPEC_TRACE selects categories and
     * VSPEC_TRACE_OUT the output prefix (default "vspec-trace" when
     * VSPEC_TRACE is set but VSPEC_TRACE_OUT is not). With VSPEC_TRACE
     * unset this returns a disabled config, so constructing engines
     * stays allocation-cheap by default.
     */
    static TraceConfig fromEnv();
};

// ---------------------------------------------------------------------
// Events and the ring
// ---------------------------------------------------------------------

enum class TraceEventKind : u8
{
    Instant,     //!< point event ("i" in Chrome trace format)
    Begin,       //!< duration begin ("B")
    End,         //!< duration end ("E")
    AsyncBegin,  //!< async span begin ("b"); payload `c` is the span id
    AsyncEnd,    //!< async span end ("e"); payload `c` is the span id
};

/**
 * One fixed-size typed event. `name` must point at storage that
 * outlives the tracer — in practice string literals or interned enum
 * name tables (deoptReasonName etc.). Payload meaning by category:
 *
 *   tiering: a = function id, b = invocation count, c = back edges
 *   compile: a = function id, b = live node / instruction count
 *   deopt:   a = function id, b = bytecode offset, c = check id
 *   ic:      a = feedback kind (SlotKind), b = old state, c = new state
 *   gc:      a = collection ordinal, b = tracked objects, c = bytes freed
 *   exec:    a = function id, b = tier (0 interp, 1 optimized)
 */
struct TraceEvent
{
    u64 timestamp = 0;            //!< simulated cycles at emit
    const char *name = "";
    TraceCategory category = TraceCategory::Exec;
    TraceEventKind kind = TraceEventKind::Instant;
    u32 a = 0;
    u32 b = 0;
    u64 c = 0;
};

/**
 * Bounded lock-free ring of TraceEvents. Writers reserve a slot with a
 * relaxed fetch_add and overwrite the oldest event once full — the
 * bounded-memory, drop-oldest policy of production tracers. Reads
 * (dump paths) are expected to run while the engine is quiescent.
 */
class TraceRing
{
  public:
    explicit TraceRing(u32 capacity);

    void push(const TraceEvent &e);

    /** Events currently held (min(written, capacity)). */
    u64 size() const;
    /** Total events ever pushed. */
    u64 written() const { return next.load(std::memory_order_relaxed); }
    /** Events overwritten by wrap-around. */
    u64 dropped() const;
    u32 capacity() const { return static_cast<u32>(storage.size()); }

    /** Visit retained events oldest to newest. */
    void forEach(const std::function<void(const TraceEvent &)> &fn) const;

    void clear();

  private:
    std::vector<TraceEvent> storage;
    u32 mask;
    std::atomic<u64> next{0};
};

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

/** Fixed hot-path counters; extend freely (names in trace.cc). */
enum class TraceCounter : u16
{
    Invocations,        //!< Engine::invoke calls (excl. builtins)
    InterpCalls,        //!< calls executed by the interpreter tier
    OptimizedCalls,     //!< calls entering optimized code
    Compilations,       //!< successful compiles
    CompileBailouts,    //!< buildGraph refusals (unsupported bytecode)
    TierUps,            //!< tiering decisions that triggered a compile
    DeoptsEager,
    DeoptsSoft,
    DeoptsLazy,
    OptimizationDisables,
    CheckSiteDeoptHits, //!< deopt-exit hits summed over all check sites
    IcToMonomorphic,
    IcToPolymorphic,
    IcToMegamorphic,
    GcCycles,
    GcBytesFreed,
    FaultsInjected,     //!< vguard faults actually delivered
    EngineErrors,       //!< structured EngineErrors raised
    // vserve request lifecycle (counted on the router's tracer, not a
    // per-isolate engine tracer):
    ServeRequests,          //!< requests admitted to an isolate queue
    ServeShed,              //!< requests rejected by admission control
    ServeRetries,           //!< re-executions after a transient fault
    ServeDeadlineExceeded,  //!< requests cut off by their fuel deadline
    ServeQuarantines,       //!< isolates recycled by the health tracker
    ServeDegradations,      //!< isolates dropped to interpreter-only
    ServeErrors,            //!< typed error responses returned
    // vregalloc allocation quality (summed over successful compiles):
    RegallocSpills,         //!< register -> memory stores (incl. defs)
    RegallocSplits,         //!< live-range split operations
    RegallocReloads,        //!< memory -> register transitions
    RegallocSpillSlots,     //!< frame slots after reuse/coalescing
    RegallocCalleeSaved,    //!< distinct callee-saved registers used
    // vdcost episode accounting (only move when EngineConfig::deoptCost
    // is on; see runtime/deopt_cost.hh):
    DeoptEpisodes,          //!< episodes opened (1:1 with deoptLog)
    DeoptStormSites,        //!< sites that reached the storm threshold
    DeoptFlipFlops,         //!< opt<->deopt oscillation events
    DeoptBailoutCycles,     //!< cycles attributed to bailout phases
    DeoptReplayCycles,      //!< cycles attributed to replay phases
    DeoptRecompileCycles,   //!< cycles attributed to recompile phases
    NumCounters,
};

constexpr u32 kNumTraceCounters =
    static_cast<u32>(TraceCounter::NumCounters);

const char *traceCounterName(TraceCounter c);

/**
 * Monotonic counter registry: fixed slots for the engine's hot paths
 * (plain u64 array increments), a per-reason deopt histogram, and a
 * sparse per-check-site hit map keyed by (code id, check id) — deopts
 * are rare, so a map insert there is off the hot path.
 */
class CounterRegistry
{
  public:
    void add(TraceCounter c, u64 n = 1)
    {
        fixed[static_cast<u32>(c)] += n;
    }
    u64 get(TraceCounter c) const { return fixed[static_cast<u32>(c)]; }

    void
    addDeopt(DeoptReason r)
    {
        byReason[static_cast<u32>(r)]++;
    }
    u64 deoptsForReason(DeoptReason r) const
    {
        return byReason[static_cast<u32>(r)];
    }

    void
    addCheckSiteHit(u32 code_id, u16 check_id)
    {
        add(TraceCounter::CheckSiteDeoptHits);
        checkSiteHits[(static_cast<u64>(code_id) << 16) | check_id]++;
    }

    /** Total dynamic deopt events counted (eager + soft + lazy). */
    u64 totalDeopts() const;

    void reset();

    u64 fixed[kNumTraceCounters] = {};
    u64 byReason[kNumDeoptReasons] = {};
    std::map<u64, u64> checkSiteHits;  //!< (codeId<<16|checkId) -> hits
};

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

class Tracer
{
  public:
    explicit Tracer(TraceConfig config = {});

    /** Single-branch category check — the only cost when disabled. */
    bool on(TraceCategory c) const
    {
        return (mask & traceCategoryBit(c)) != 0;
    }
    bool anyEnabled() const { return mask != 0; }

    /**
     * Record one event. Call sites guard with on(cat); emit() re-checks
     * so an unguarded call is safe, just slower.
     */
    void emit(TraceCategory cat, TraceEventKind kind, const char *name,
              u64 timestamp, u32 a = 0, u32 b = 0, u64 c = 0);

    /** Exact per-category emit counts (immune to ring wrap-around). */
    u64 eventCount(TraceCategory c) const
    {
        return emitted[static_cast<u32>(c)];
    }

    /** Chrome trace-event JSON (chrome://tracing, Perfetto). */
    std::string chromeTraceJson() const;

    /** Flat metrics JSON: counters, per-reason deopts, check-site hits,
     *  ring statistics. Consumed by the harness and the tests. */
    std::string metricsJson() const;

    /**
     * Write `<outPath>[-<label>].trace.json` and `.metrics.json`.
     * No-op when outPath is empty. @return true if files were written.
     */
    bool writeFiles(const std::string &label = "") const;

    /** Names functions in dumped traces (set by the owning engine). */
    void
    setFunctionNamer(std::function<std::string(u32)> namer)
    {
        functionNamer = std::move(namer);
    }

    const TraceConfig &configuration() const { return config_; }

    CounterRegistry counters;
    TraceRing ring;

  private:
    TraceConfig config_;
    u32 mask;
    u64 emitted[kNumTraceCategories] = {};
    std::function<std::string(u32)> functionNamer;
};

} // namespace vspec

#endif // VSPEC_TRACE_TRACE_HH
