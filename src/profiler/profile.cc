#include "profiler/profile.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>

namespace vspec
{

namespace
{

std::string
fmtFraction(double f)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f", f);
    return buf;
}

std::string
fmtPercent(double f)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%5.2f%%", 100.0 * f);
    return buf;
}

void
appendGroupObject(std::string &out, const std::array<u64, kNumGroups> &g)
{
    out += "{";
    for (size_t i = 0; i < kNumGroups; i++) {
        if (i)
            out += ",";
        out += "\"";
        out += checkGroupName(static_cast<CheckGroup>(i));
        out += "\":" + std::to_string(g[i]);
    }
    out += "}";
}

void
appendAttribution(std::string &out, const AttributionResult &r)
{
    out += "{\"totalSamples\":" + std::to_string(r.totalSamples)
        + ",\"checkSamples\":" + std::to_string(r.checkSamples)
        + ",\"overheadFraction\":" + fmtFraction(r.overheadFraction())
        + ",\"groups\":";
    appendGroupObject(out, r.samplesPerGroup);
    out += "}";
}

} // namespace

Profile
buildProfile(const PcSampler &sampler, const FunctionNamer &namer,
             const std::string &workload, const std::string &isa,
             int window)
{
    Profile p;
    p.workload = workload;
    p.isa = isa;
    p.period = sampler.period();
    p.window = window;
    p.jitSamples = sampler.totalSamples;
    p.interpSamples = sampler.interpSamples;
    p.runtimeSamples = sampler.runtimeSamples;

    // Flat attribution and the per-line fold share the owner maps, so
    // per-line group sums equal the flat group totals exactly.
    std::map<std::pair<std::string, i32>, ProfileLine> lines;
    std::map<std::string, ProfileFunction> fns;
    for (const auto &[id, hist] : sampler.histograms) {
        const CodeObjectMeta *meta = sampler.metaFor(id);
        if (!meta)
            continue;  // unreachable: metadata is pinned at first sample
        p.windowAttr += attributeWindowHeuristic(*meta, hist, window);
        p.truthAttr += attributeGroundTruth(*meta, hist);

        std::vector<u8> owner = windowOwnerMap(*meta, window);
        std::string fname = !meta->functionName.empty()
            ? meta->functionName
            : namer(meta->function);
        size_t n = std::min(hist.size(), meta->insts.size());
        for (size_t pc = 0; pc < n; pc++) {
            if (hist[pc] == 0)
                continue;
            const CodeObjectMeta::InstMeta &im = meta->insts[pc];
            ProfileLine &L = lines[{fname, im.line}];
            L.function = fname;
            L.line = im.line;
            L.samples += hist[pc];
            ProfileFunction &F = fns[fname];
            F.name = fname;
            F.samples += hist[pc];
            if (owner[pc] != kNoGroup) {
                L.windowPerGroup[owner[pc]] += hist[pc];
                L.windowCheckSamples += hist[pc];
                F.windowCheckSamples += hist[pc];
            }
            if (im.checkId != kNoCheck && im.group != kNoGroup) {
                L.truthPerGroup[im.group] += hist[pc];
                L.truthCheckSamples += hist[pc];
                F.truthCheckSamples += hist[pc];
            }
        }
    }
    for (auto &kv : fns)
        p.functions.push_back(std::move(kv.second));
    for (auto &kv : lines)
        p.lines.push_back(std::move(kv.second));
    auto bySamples = [](const auto &a, const auto &b) {
        return a.samples > b.samples;
    };
    std::stable_sort(p.functions.begin(), p.functions.end(), bySamples);
    std::stable_sort(p.lines.begin(), p.lines.end(), bySamples);

    if (sampler.profiling()) {
        p.cct = sampler.nodes();
        p.cctNames.reserve(p.cct.size());
        for (const CctNode &n : p.cct) {
            if (n.kind == ProfFrameKind::Root)
                p.cctNames.push_back("root");
            else if (n.function != kInvalidFunction)
                p.cctNames.push_back(namer(n.function));
            else
                p.cctNames.push_back(profFrameKindName(n.kind));
        }
    }
    return p;
}

std::string
profileToJson(const Profile &p)
{
    std::string out;
    out.reserve(4096);
    out += "{\"schema\":\"vspec-profile-v1\"";
    out += ",\"workload\":\"" + jsonEscape(p.workload) + "\"";
    out += ",\"isa\":\"" + jsonEscape(p.isa) + "\"";
    out += ",\"period\":" + std::to_string(p.period);
    out += ",\"window\":" + std::to_string(p.window);
    out += ",\"samples\":{\"jit\":" + std::to_string(p.jitSamples)
        + ",\"interp\":" + std::to_string(p.interpSamples)
        + ",\"runtime\":" + std::to_string(p.runtimeSamples)
        + ",\"total\":" + std::to_string(p.totalSamples()) + "}";
    out += ",\"attribution\":{\"window\":";
    appendAttribution(out, p.windowAttr);
    out += ",\"truth\":";
    appendAttribution(out, p.truthAttr);
    out += "}";

    out += ",\"functions\":[";
    for (size_t i = 0; i < p.functions.size(); i++) {
        const ProfileFunction &f = p.functions[i];
        if (i)
            out += ",";
        out += "{\"name\":\"" + jsonEscape(f.name) + "\""
            + ",\"samples\":" + std::to_string(f.samples)
            + ",\"windowCheckSamples\":"
            + std::to_string(f.windowCheckSamples)
            + ",\"truthCheckSamples\":"
            + std::to_string(f.truthCheckSamples) + "}";
    }
    out += "]";

    out += ",\"lines\":[";
    for (size_t i = 0; i < p.lines.size(); i++) {
        const ProfileLine &l = p.lines[i];
        if (i)
            out += ",";
        out += "{\"function\":\"" + jsonEscape(l.function) + "\""
            + ",\"line\":" + std::to_string(l.line)
            + ",\"samples\":" + std::to_string(l.samples)
            + ",\"windowCheckSamples\":"
            + std::to_string(l.windowCheckSamples)
            + ",\"truthCheckSamples\":"
            + std::to_string(l.truthCheckSamples)
            + ",\"window\":";
        appendGroupObject(out, l.windowPerGroup);
        out += ",\"truth\":";
        appendGroupObject(out, l.truthPerGroup);
        out += "}";
    }
    out += "]";

    out += ",\"cct\":[";
    for (size_t i = 0; i < p.cct.size(); i++) {
        const CctNode &n = p.cct[i];
        if (i)
            out += ",";
        out += "{\"parent\":" + std::to_string(n.parent)
            + ",\"kind\":\"";
        out += profFrameKindName(n.kind);
        out += "\",\"name\":\"" + jsonEscape(p.cctNames[i]) + "\""
            + ",\"jit\":" + std::to_string(n.jitSamples)
            + ",\"interp\":" + std::to_string(n.interpSamples)
            + ",\"runtime\":" + std::to_string(n.runtimeSamples)
            + ",\"checks\":";
        appendGroupObject(out, n.checkSamples);
        out += "}";
    }
    out += "]}";
    return out;
}

std::string
profileToFolded(const Profile &p)
{
    std::string out;
    for (size_t i = 0; i < p.cct.size(); i++) {
        u64 self = p.cct[i].totalSamples();
        if (self == 0)
            continue;
        // Build root..node path.
        std::vector<size_t> path;
        for (size_t n = i;; n = p.cct[n].parent) {
            path.push_back(n);
            if (n == 0)
                break;
        }
        std::string stack;
        for (size_t j = path.size(); j-- > 0;) {
            if (!stack.empty())
                stack += ";";
            stack += p.cctNames[path[j]];
            // Annotation suffixes in flamegraph.pl style: interpreter
            // and builtin frames of a function are distinct contexts.
            ProfFrameKind k = p.cct[path[j]].kind;
            if (k == ProfFrameKind::Interp)
                stack += "_[i]";
            else if (k == ProfFrameKind::Builtin)
                stack += "_[b]";
        }
        out += stack + " " + std::to_string(self) + "\n";
    }
    return out;
}

std::string
profileReport(const Profile &p, size_t topN)
{
    std::ostringstream os;
    os << "vprof: " << p.workload << " (" << p.isa << ", period "
       << p.period << ", window " << p.window << ")\n";
    os << "samples: " << p.totalSamples() << " total = " << p.jitSamples
       << " jit + " << p.interpSamples << " interp + "
       << p.runtimeSamples << " runtime\n";
    os << "check overhead of jit samples: window "
       << fmtPercent(p.windowAttr.overheadFraction()) << ", truth "
       << fmtPercent(p.truthAttr.overheadFraction()) << "\n";

    os << "\ntop functions (jit samples):\n";
    for (size_t i = 0; i < p.functions.size() && i < topN; i++) {
        const ProfileFunction &f = p.functions[i];
        double frac = f.samples
            ? static_cast<double>(f.truthCheckSamples) / f.samples
            : 0.0;
        char buf[160];
        std::snprintf(buf, sizeof buf, "  %-24s %10" PRIu64
                      "  check %s\n",
                      f.name.c_str(), f.samples,
                      fmtPercent(frac).c_str());
        os << buf;
    }

    os << "\ntop source lines (jit samples; check % is ground truth):\n";
    for (size_t i = 0; i < p.lines.size() && i < topN; i++) {
        const ProfileLine &l = p.lines[i];
        double frac = l.samples
            ? static_cast<double>(l.truthCheckSamples) / l.samples
            : 0.0;
        std::string where = l.function + ":"
            + (l.line > 0 ? std::to_string(l.line) : "?");
        char buf[160];
        std::snprintf(buf, sizeof buf, "  %-24s %10" PRIu64
                      "  check %s\n",
                      where.c_str(), l.samples, fmtPercent(frac).c_str());
        os << buf;
    }
    return os.str();
}

std::string
profileDiffReport(const JsonValue &a, const JsonValue &b,
                  std::string &error)
{
    auto schemaOf = [](const JsonValue &v) -> std::string {
        const JsonValue *s = v.get("schema");
        return s && s->isString() ? s->string : "";
    };
    if (schemaOf(a) != "vspec-profile-v1"
        || schemaOf(b) != "vspec-profile-v1") {
        error = "not a vspec-profile-v1 document";
        return "";
    }
    error.clear();

    u64 period_b = 0;
    if (const JsonValue *p = b.get("period"))
        period_b = p->asU64();

    auto collect = [](const JsonValue &v, const char *arr,
                      bool lineKey) {
        std::map<std::string, u64> m;
        const JsonValue *items = v.get(arr);
        if (!items || !items->isArray())
            return m;
        for (const JsonValue &e : items->array) {
            const JsonValue *name =
                e.get(lineKey ? "function" : "name");
            const JsonValue *samples = e.get("samples");
            if (!name || !samples)
                continue;
            std::string key = name->string;
            if (lineKey) {
                const JsonValue *line = e.get("line");
                key += ":" + std::to_string(
                    line ? static_cast<i64>(line->number) : 0);
            }
            m[key] += samples->asU64();
        }
        return m;
    };

    std::ostringstream os;
    auto wlOf = [](const JsonValue &v) {
        const JsonValue *w = v.get("workload");
        return w && w->isString() ? w->string : std::string("?");
    };
    os << "profile diff: " << wlOf(a) << " -> " << wlOf(b)
       << " (samples; ~cycles at period " << period_b << ")\n";

    auto diffSection = [&](const char *title, const char *arr,
                           bool lineKey) {
        std::map<std::string, u64> ma = collect(a, arr, lineKey);
        std::map<std::string, u64> mb = collect(b, arr, lineKey);
        struct Row { std::string key; i64 delta; u64 va, vb; };
        std::vector<Row> rows;
        for (const auto &[k, vb] : mb) {
            auto it = ma.find(k);
            u64 va = it == ma.end() ? 0 : it->second;
            rows.push_back({k, static_cast<i64>(vb)
                                  - static_cast<i64>(va), va, vb});
        }
        for (const auto &[k, va] : ma)
            if (!mb.count(k))
                rows.push_back({k, -static_cast<i64>(va), va, 0});
        std::stable_sort(rows.begin(), rows.end(),
                         [](const Row &x, const Row &y) {
                             return std::llabs(x.delta)
                                    > std::llabs(y.delta);
                         });
        os << "\n" << title << ":\n";
        size_t shown = 0;
        for (const Row &r : rows) {
            if (r.delta == 0 || shown >= 20)
                break;
            char buf[200];
            std::snprintf(buf, sizeof buf,
                          "  %-28s %8" PRIu64 " -> %8" PRIu64
                          "  (%+" PRId64 " samples, ~%+" PRId64
                          " cycles)\n",
                          r.key.c_str(), r.va, r.vb, r.delta,
                          r.delta * static_cast<i64>(period_b));
            os << buf;
            shown++;
        }
        if (shown == 0)
            os << "  (no change)\n";
    };

    diffSection("per-function", "functions", false);
    diffSection("per-line", "lines", true);
    return os.str();
}

} // namespace vspec
