#include "profiler/attribution.hh"

namespace vspec
{

AttributionResult &
AttributionResult::operator+=(const AttributionResult &o)
{
    for (size_t i = 0; i < kNumGroups; i++)
        samplesPerGroup[i] += o.samplesPerGroup[i];
    checkSamples += o.checkSamples;
    totalSamples += o.totalSamples;
    return *this;
}

int
defaultWindowFor(IsaFlavour flavour)
{
    // §III-A: one instruction before the deopt branch on the CISC X64
    // ISA, two on ARM64.
    return flavour == IsaFlavour::X64Like ? 1 : 2;
}

AttributionResult
attributeWindowHeuristic(const CodeObject &code,
                         const std::vector<u64> &hist, int window)
{
    AttributionResult r;
    size_t n = std::min(hist.size(), code.code.size());
    std::vector<u8> owner(n, 0xff);  // group id owning each pc, else 0xff

    for (size_t i = 0; i < n; i++) {
        const MInst &m = code.code[i];
        bool is_deopt_anchor =
            (m.isDeoptBranch && m.op == MOp::Bcond)
            || m.isSmiExtensionLoad();
        if (!is_deopt_anchor)
            continue;
        u8 group = 0xff;
        if (m.checkId != kNoCheck)
            group = static_cast<u8>(code.checks[m.checkId].group);
        else
            group = static_cast<u8>(CheckGroup::Other);
        owner[i] = group;
        // The preceding `window` instructions are assumed to compute
        // the condition.
        for (int wdx = 1; wdx <= window && static_cast<int>(i) - wdx >= 0;
             wdx++) {
            size_t j = i - static_cast<size_t>(wdx);
            const MInst &p = code.code[j];
            if (p.isBranch())
                break;  // don't cross control flow
            owner[j] = group;
        }
    }

    for (size_t i = 0; i < n; i++) {
        r.totalSamples += hist[i];
        if (owner[i] != 0xff) {
            r.checkSamples += hist[i];
            r.samplesPerGroup[owner[i]] += hist[i];
        }
    }
    return r;
}

AttributionResult
attributeGroundTruth(const CodeObject &code, const std::vector<u64> &hist)
{
    AttributionResult r;
    size_t n = std::min(hist.size(), code.code.size());
    for (size_t i = 0; i < n; i++) {
        r.totalSamples += hist[i];
        const MInst &m = code.code[i];
        if (m.checkId != kNoCheck) {
            r.checkSamples += hist[i];
            r.samplesPerGroup[static_cast<size_t>(
                code.checks[m.checkId].group)] += hist[i];
        }
    }
    return r;
}

double
checkFrequencyPer100(const CodeObject &code)
{
    if (code.code.empty())
        return 0.0;
    return 100.0 * code.totalCheckInstructions()
           / static_cast<double>(code.code.size());
}

} // namespace vspec
