#include "profiler/attribution.hh"

namespace vspec
{

AttributionResult &
AttributionResult::operator+=(const AttributionResult &o)
{
    for (size_t i = 0; i < kNumGroups; i++)
        samplesPerGroup[i] += o.samplesPerGroup[i];
    checkSamples += o.checkSamples;
    totalSamples += o.totalSamples;
    return *this;
}

int
defaultWindowFor(IsaFlavour flavour)
{
    // §III-A: one instruction before the deopt branch on the CISC X64
    // ISA, two on ARM64.
    return flavour == IsaFlavour::X64Like ? 1 : 2;
}

CodeObjectMeta
CodeObjectMeta::capture(const CodeObject &code)
{
    CodeObjectMeta meta;
    meta.id = code.id;
    meta.function = code.function;
    meta.flavour = code.flavour;
    meta.functionName = code.functionName;
    meta.numChecks = static_cast<u32>(code.checks.size());
    meta.insts.resize(code.code.size());
    for (size_t i = 0; i < code.code.size(); i++) {
        const MInst &m = code.code[i];
        InstMeta &im = meta.insts[i];
        im.checkId = m.checkId;
        im.role = m.checkRole;
        if (m.checkId != kNoCheck && m.checkId < code.checks.size())
            im.group = static_cast<u8>(code.checks[m.checkId].group);
        im.deoptAnchor = (m.isDeoptBranch && m.op == MOp::Bcond)
                         || m.isSmiExtensionLoad();
        im.branch = m.isBranch();
        im.bcOff = m.bcOff;
        SrcPos pos = code.posForPc(static_cast<u32>(i));
        im.line = pos.line;
        im.col = pos.col;
    }
    return meta;
}

std::vector<u8>
windowOwnerMap(const CodeObjectMeta &meta, int window)
{
    size_t n = meta.insts.size();
    std::vector<u8> owner(n, kNoGroup);  // group id owning each pc

    for (size_t i = 0; i < n; i++) {
        const CodeObjectMeta::InstMeta &m = meta.insts[i];
        if (!m.deoptAnchor)
            continue;
        u8 group = m.group != kNoGroup
            ? m.group : static_cast<u8>(CheckGroup::Other);
        owner[i] = group;
        // The preceding `window` instructions are assumed to compute
        // the condition.
        for (int wdx = 1; wdx <= window && static_cast<int>(i) - wdx >= 0;
             wdx++) {
            size_t j = i - static_cast<size_t>(wdx);
            if (meta.insts[j].branch)
                break;  // don't cross control flow
            owner[j] = group;
        }
    }
    return owner;
}

AttributionResult
attributeWindowHeuristic(const CodeObjectMeta &meta,
                         const std::vector<u64> &hist, int window)
{
    AttributionResult r;
    std::vector<u8> owner = windowOwnerMap(meta, window);
    size_t n = std::min(hist.size(), meta.insts.size());
    for (size_t i = 0; i < n; i++) {
        r.totalSamples += hist[i];
        if (owner[i] != kNoGroup) {
            r.checkSamples += hist[i];
            r.samplesPerGroup[owner[i]] += hist[i];
        }
    }
    return r;
}

AttributionResult
attributeGroundTruth(const CodeObjectMeta &meta, const std::vector<u64> &hist)
{
    AttributionResult r;
    size_t n = std::min(hist.size(), meta.insts.size());
    for (size_t i = 0; i < n; i++) {
        r.totalSamples += hist[i];
        const CodeObjectMeta::InstMeta &m = meta.insts[i];
        if (m.checkId != kNoCheck && m.group != kNoGroup) {
            r.checkSamples += hist[i];
            r.samplesPerGroup[m.group] += hist[i];
        }
    }
    return r;
}

AttributionResult
attributeWindowHeuristic(const CodeObject &code,
                         const std::vector<u64> &hist, int window)
{
    return attributeWindowHeuristic(CodeObjectMeta::capture(code), hist,
                                    window);
}

AttributionResult
attributeGroundTruth(const CodeObject &code, const std::vector<u64> &hist)
{
    return attributeGroundTruth(CodeObjectMeta::capture(code), hist);
}

double
checkFrequencyPer100(const CodeObject &code)
{
    if (code.code.empty())
        return 0.0;
    return 100.0 * code.totalCheckInstructions()
           / static_cast<double>(code.code.size());
}

} // namespace vspec
