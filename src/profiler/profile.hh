/**
 * @file
 * vprof profiles: a self-contained summary of one profiled run —
 * flat check attribution (window heuristic and ground truth), the
 * calling-context tree with resolved function names, and a per-source-
 * line breakdown of where check overhead lands (the paper's Fig. 3 at
 * line granularity).
 *
 * Exporters: JSON (schema "vspec-profile-v1", parseable by
 * support/json), folded stacks (flamegraph.pl compatible), and a
 * human-readable top-N report. profileDiffReport() compares two
 * emitted JSON profiles per function and per line.
 */

#ifndef VSPEC_PROFILER_PROFILE_HH
#define VSPEC_PROFILER_PROFILE_HH

#include <functional>
#include <string>

#include "profiler/sampler.hh"
#include "support/json.hh"

namespace vspec
{

/** Samples aggregated onto one MiniJS source line of one function.
 *  Group sums across all lines equal the flat attribution totals by
 *  construction (both are folds of the same histograms + owner maps). */
struct ProfileLine
{
    std::string function;
    i32 line = 0;  //!< 0 = unknown source position
    u64 samples = 0;
    u64 windowCheckSamples = 0;
    u64 truthCheckSamples = 0;
    std::array<u64, kNumGroups> windowPerGroup{};
    std::array<u64, kNumGroups> truthPerGroup{};
};

/** Samples aggregated per function (JIT histogram samples only). */
struct ProfileFunction
{
    std::string name;
    u64 samples = 0;
    u64 windowCheckSamples = 0;
    u64 truthCheckSamples = 0;
};

struct Profile
{
    std::string workload;
    std::string isa;
    u64 period = 0;
    int window = 0;

    u64 jitSamples = 0;      //!< histogram total (no padding)
    u64 interpSamples = 0;   //!< interpreter-clock samples
    u64 runtimeSamples = 0;  //!< runtime-call samples

    /** Flat attribution over all sampled code objects (unpadded). */
    AttributionResult windowAttr;
    AttributionResult truthAttr;

    /** Calling-context tree ([0] = root; empty when profiling was off)
     *  plus one resolved display name per node. */
    std::vector<CctNode> cct;
    std::vector<std::string> cctNames;

    std::vector<ProfileFunction> functions;  //!< sorted by samples desc
    std::vector<ProfileLine> lines;          //!< sorted by samples desc

    u64
    totalSamples() const
    {
        return jitSamples + interpSamples + runtimeSamples;
    }
};

/** Resolve a FunctionId to a display name. */
using FunctionNamer = std::function<std::string(FunctionId)>;

/**
 * Build a profile from a sampler's histograms, pinned metadata, and
 * (when profiling was enabled) its calling-context tree. @p window is
 * the heuristic window size (see defaultWindowFor).
 */
Profile buildProfile(const PcSampler &sampler, const FunctionNamer &namer,
                     const std::string &workload, const std::string &isa,
                     int window);

/** JSON document, schema "vspec-profile-v1". */
std::string profileToJson(const Profile &p);

/** Folded stacks, one per CCT node with self samples:
 *  `root;main;inner 42`. Feed to flamegraph.pl. */
std::string profileToFolded(const Profile &p);

/** Human-readable summary: totals, top-N functions, top-N lines. */
std::string profileReport(const Profile &p, size_t topN = 10);

/**
 * Per-function and per-line sample deltas between two parsed
 * "vspec-profile-v1" documents (A = baseline, B = current). Returns a
 * human-readable report; sets @p error and returns "" on schema
 * mismatch.
 */
std::string profileDiffReport(const JsonValue &a, const JsonValue &b,
                              std::string &error);

} // namespace vspec

#endif // VSPEC_PROFILER_PROFILE_HH
