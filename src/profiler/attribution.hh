/**
 * @file
 * Sample attribution: converting per-PC sample histograms into check
 * overheads. Two attributions are provided:
 *
 *  - windowHeuristic: the paper's §III-A method. A sample belongs to a
 *    check if it falls on a deoptimization branch or within `window`
 *    instructions before it (1 on x64, 2 on ARM64, per the paper).
 *  - groundTruth: uses the backend's per-instruction check
 *    annotations, which a real profiler does not have. Comparing the
 *    two quantifies the heuristic's accuracy (an ablation the paper
 *    could not run).
 *
 * Both attributions run on a CodeObjectMeta — an immutable snapshot of
 * the per-instruction annotations and source positions that the
 * sampler pins at a code object's first sample. End-of-run attribution
 * therefore never reads a live (possibly discarded or, in principle,
 * re-used) code object; the CodeObject overloads below are convenience
 * wrappers that capture a snapshot on the fly.
 */

#ifndef VSPEC_PROFILER_ATTRIBUTION_HH
#define VSPEC_PROFILER_ATTRIBUTION_HH

#include <array>

#include "backend/code_object.hh"

namespace vspec
{

constexpr size_t kNumGroups = static_cast<size_t>(CheckGroup::NumGroups);

/** Group byte meaning "not part of any check" in owner maps. */
constexpr u8 kNoGroup = 0xff;

/**
 * Immutable attribution metadata for one code object, captured at its
 * first sample (vprof satellite: histograms key on `code.id`, but the
 * object behind an id can be discarded before end-of-run attribution —
 * the snapshot keeps everything attribution and per-line reporting
 * need, decoupled from the code object's lifetime).
 */
struct CodeObjectMeta
{
    u32 id = 0;
    FunctionId function = kInvalidFunction;
    IsaFlavour flavour = IsaFlavour::Arm64Like;
    std::string functionName;

    struct InstMeta
    {
        u16 checkId = kNoCheck;
        CheckRole role = CheckRole::None;
        u8 group = kNoGroup;      //!< CheckGroup of checkId, if any
        bool deoptAnchor = false; //!< window-heuristic anchor
        bool branch = false;      //!< control flow: stops the window
        u32 bcOff = 0;
        i32 line = 0;             //!< MiniJS source line (0 = unknown)
        i32 col = 0;
    };
    std::vector<InstMeta> insts;
    u32 numChecks = 0;

    static CodeObjectMeta capture(const CodeObject &code);
};

struct AttributionResult
{
    std::array<u64, kNumGroups> samplesPerGroup{};
    u64 checkSamples = 0;
    u64 totalSamples = 0;

    double
    overheadFraction() const
    {
        return totalSamples == 0
            ? 0.0 : static_cast<double>(checkSamples) / totalSamples;
    }

    AttributionResult &operator+=(const AttributionResult &o);
};

/** Default window sizes from the paper. */
int defaultWindowFor(IsaFlavour flavour);

/** Per-pc owning check group under the window heuristic (kNoGroup =
 *  not attributed). Shared by the flat attribution and the per-line
 *  profile reports, so their sums agree by construction. */
std::vector<u8> windowOwnerMap(const CodeObjectMeta &meta, int window);

AttributionResult attributeWindowHeuristic(const CodeObjectMeta &meta,
                                           const std::vector<u64> &hist,
                                           int window);

AttributionResult attributeGroundTruth(const CodeObjectMeta &meta,
                                       const std::vector<u64> &hist);

// Convenience overloads over a live code object (tests, benches).
AttributionResult attributeWindowHeuristic(const CodeObject &code,
                                           const std::vector<u64> &hist,
                                           int window);

AttributionResult attributeGroundTruth(const CodeObject &code,
                                       const std::vector<u64> &hist);

/** Static check-instruction frequency (per 100 instructions), Fig. 1. */
double checkFrequencyPer100(const CodeObject &code);

} // namespace vspec

#endif // VSPEC_PROFILER_ATTRIBUTION_HH
