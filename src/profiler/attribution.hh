/**
 * @file
 * Sample attribution: converting per-PC sample histograms into check
 * overheads. Two attributions are provided:
 *
 *  - windowHeuristic: the paper's §III-A method. A sample belongs to a
 *    check if it falls on a deoptimization branch or within `window`
 *    instructions before it (1 on x64, 2 on ARM64, per the paper).
 *  - groundTruth: uses the backend's per-instruction check
 *    annotations, which a real profiler does not have. Comparing the
 *    two quantifies the heuristic's accuracy (an ablation the paper
 *    could not run).
 */

#ifndef VSPEC_PROFILER_ATTRIBUTION_HH
#define VSPEC_PROFILER_ATTRIBUTION_HH

#include <array>

#include "backend/code_object.hh"

namespace vspec
{

constexpr size_t kNumGroups = static_cast<size_t>(CheckGroup::NumGroups);

struct AttributionResult
{
    std::array<u64, kNumGroups> samplesPerGroup{};
    u64 checkSamples = 0;
    u64 totalSamples = 0;

    double
    overheadFraction() const
    {
        return totalSamples == 0
            ? 0.0 : static_cast<double>(checkSamples) / totalSamples;
    }

    AttributionResult &operator+=(const AttributionResult &o);
};

/** Default window sizes from the paper. */
int defaultWindowFor(IsaFlavour flavour);

AttributionResult attributeWindowHeuristic(const CodeObject &code,
                                           const std::vector<u64> &hist,
                                           int window);

AttributionResult attributeGroundTruth(const CodeObject &code,
                                       const std::vector<u64> &hist);

/** Static check-instruction frequency (per 100 instructions), Fig. 1. */
double checkFrequencyPer100(const CodeObject &code);

} // namespace vspec

#endif // VSPEC_PROFILER_ATTRIBUTION_HH
