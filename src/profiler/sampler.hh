/**
 * @file
 * Cycle-driven PC sampler, the vspec analogue of `perf` sampling in
 * §III-A: every `period` simulated cycles, the PC of the committing
 * instruction in optimized code is recorded into a per-code-object
 * histogram. Attribution of samples to checks lives in
 * profiler/attribution.hh.
 *
 * vprof additions (all host-side; simulated cycle counts are
 * untouched):
 *
 *  - At a code object's first sample the sampler pins a CodeObjectMeta
 *    snapshot, so end-of-run attribution never depends on the live
 *    code object surviving (it may be discarded by deoptimization).
 *  - With profiling enabled (EngineConfig::profiling) the engine
 *    maintains a shadow call stack here via pushFrame()/popFrame();
 *    each sample then also lands on a node of a calling-context tree
 *    (CCT), weighted by cycles and tagged with its ground-truth check
 *    group. A second clock driven by tickInterp() samples interpreter
 *    time, and skipTo() accounts runtime-call time, so the CCT covers
 *    all three ways the engine spends cycles.
 */

#ifndef VSPEC_PROFILER_SAMPLER_HH
#define VSPEC_PROFILER_SAMPLER_HH

#include <array>
#include <map>
#include <vector>

#include "profiler/attribution.hh"
#include "sim/machine.hh"

namespace vspec
{

class Tracer;

/** No optimized code attached (same sentinel as FunctionInfo::codeId). */
constexpr u32 kNoCodeId = 0xffffffffu;

/** Kind of one frame on the profiler's shadow call stack. */
enum class ProfFrameKind : u8
{
    Root,     //!< synthetic CCT root
    Interp,   //!< interpreter activation
    Jit,      //!< optimized-code activation
    Builtin,  //!< builtin call (host-implemented)
};

const char *profFrameKindName(ProfFrameKind k);

/** One calling-context-tree node. Children are looked up by linear
 *  scan — call trees here are shallow and narrow. */
struct CctNode
{
    u32 parent = 0;
    ProfFrameKind kind = ProfFrameKind::Root;
    FunctionId function = kInvalidFunction;
    u32 codeId = kNoCodeId;

    u64 jitSamples = 0;      //!< samples on optimized-code pcs
    u64 interpSamples = 0;   //!< samples from the interpreter clock
    u64 runtimeSamples = 0;  //!< samples elapsed inside runtime calls
    /** Of jitSamples, those on check instructions (ground truth). */
    std::array<u64, kNumGroups> checkSamples{};

    std::vector<u32> children;

    u64
    totalSamples() const
    {
        return jitSamples + interpSamples + runtimeSamples;
    }
};

class PcSampler : public SampleSink
{
  public:
    PcSampler() { resetTree(); }

    /** Set the sampling period and re-arm both clocks so the first
     *  sample lands one full period in — changing the period after
     *  construction previously left `nextAt` at the old default. */
    void setPeriod(u64 p);
    u64 period() const { return period_; }

    void tick(Cycles now, const CodeObject &code, u32 pc) override;
    void skipTo(Cycles now) override;

    /** Drive the interpreter-side clock (profiling only): @p
     *  interpCyclesNow is the engine's cumulative interpreterCycles. */
    void tickInterp(u64 interpCyclesNow);

    /** Clear all samples and re-arm clocks at the configured period. */
    void reset();

    const std::vector<u64> *
    histogramFor(u32 code_id) const
    {
        auto it = histograms.find(code_id);
        return it == histograms.end() ? nullptr : &it->second;
    }

    /** Metadata snapshot pinned at @p code_id's first sample. */
    const CodeObjectMeta *
    metaFor(u32 code_id) const
    {
        auto it = metas.find(code_id);
        return it == metas.end() ? nullptr : &it->second;
    }

    // ---- calling-context profiling ----------------------------------

    void enableProfile(bool on);
    bool profiling() const { return profiling_; }

    void pushFrame(ProfFrameKind kind, FunctionId fn, u32 codeId);
    void popFrame();

    u32 currentNode() const { return stack_.back(); }
    size_t stackDepth() const { return stack_.size(); }
    const std::vector<CctNode> &nodes() const { return cct_; }

    /** Emit an instant trace event per sample (TraceCategory::Sample). */
    void setTrace(Tracer *t) { trace_ = t; }

    std::map<u32, std::vector<u64>> histograms;  //!< codeId -> counts
    std::map<u32, CodeObjectMeta> metas;         //!< first-sample pins
    u64 totalSamples = 0;    //!< JIT pc samples (histogram total)
    u64 interpSamples = 0;   //!< profiling only
    u64 runtimeSamples = 0;  //!< profiling only

  private:
    /** Shadow stacks deeper than this fold onto the node at the cap,
     *  keeping push/pop symmetric while bounding the tree. */
    static constexpr size_t kMaxDepth = 256;

    void resetTree();
    u32 childFor(u32 parent, ProfFrameKind kind, FunctionId fn,
                 u32 codeId);
    const CodeObjectMeta &pinMeta(const CodeObject &code);

    u64 period_ = 997;  //!< prime, to avoid phase-locking with loops
    u64 nextAt_ = 997;
    u64 interpNextAt_ = 997;
    bool profiling_ = false;

    std::vector<CctNode> cct_;  //!< [0] = root
    std::vector<u32> stack_;    //!< path root..current (node indices)
    Tracer *trace_ = nullptr;
};

} // namespace vspec

#endif // VSPEC_PROFILER_SAMPLER_HH
