/**
 * @file
 * Cycle-driven PC sampler, the vspec analogue of `perf` sampling in
 * §III-A: every `period` simulated cycles, the PC of the committing
 * instruction in optimized code is recorded into a per-code-object
 * histogram. Attribution of samples to checks lives in
 * profiler/attribution.hh.
 */

#ifndef VSPEC_PROFILER_SAMPLER_HH
#define VSPEC_PROFILER_SAMPLER_HH

#include <map>
#include <vector>

#include "sim/machine.hh"

namespace vspec
{

class PcSampler : public SampleSink
{
  public:
    u64 period = 997;  //!< prime, to avoid phase-locking with loops

    void
    tick(Cycles now, const CodeObject &code, u32 pc) override
    {
        while (now >= nextAt) {
            auto &h = histograms[code.id];
            if (h.size() < code.code.size())
                h.resize(code.code.size(), 0);
            h[pc]++;
            totalSamples++;
            nextAt += period;
        }
    }

    void
    skipTo(Cycles now) override
    {
        // Periods that elapsed outside simulated code are not samples
        // of any JIT pc; runWorkload() accounts them as non-check
        // process time (like perf samples landing in the runtime).
        while (now >= nextAt)
            nextAt += period;
    }

    void
    reset()
    {
        histograms.clear();
        totalSamples = 0;
        nextAt = period;
    }

    const std::vector<u64> *
    histogramFor(u32 code_id) const
    {
        auto it = histograms.find(code_id);
        return it == histograms.end() ? nullptr : &it->second;
    }

    std::map<u32, std::vector<u64>> histograms;  //!< codeId -> counts
    u64 totalSamples = 0;
    u64 nextAt = 997;
};

} // namespace vspec

#endif // VSPEC_PROFILER_SAMPLER_HH
