#include "profiler/sampler.hh"

#include "trace/trace.hh"

namespace vspec
{

const char *
profFrameKindName(ProfFrameKind k)
{
    switch (k) {
      case ProfFrameKind::Root: return "root";
      case ProfFrameKind::Interp: return "interp";
      case ProfFrameKind::Jit: return "jit";
      case ProfFrameKind::Builtin: return "builtin";
    }
    return "?";
}

void
PcSampler::setPeriod(u64 p)
{
    period_ = p == 0 ? 1 : p;
    nextAt_ = period_;
    interpNextAt_ = period_;
}

void
PcSampler::reset()
{
    histograms.clear();
    metas.clear();
    totalSamples = 0;
    interpSamples = 0;
    runtimeSamples = 0;
    nextAt_ = period_;
    interpNextAt_ = period_;
    resetTree();
}

void
PcSampler::resetTree()
{
    cct_.clear();
    cct_.emplace_back();  // root
    stack_.assign(1, 0);
}

void
PcSampler::enableProfile(bool on)
{
    profiling_ = on;
    resetTree();
}

u32
PcSampler::childFor(u32 parent, ProfFrameKind kind, FunctionId fn,
                    u32 codeId)
{
    for (u32 c : cct_[parent].children) {
        const CctNode &n = cct_[c];
        if (n.kind == kind && n.function == fn && n.codeId == codeId)
            return c;
    }
    u32 idx = static_cast<u32>(cct_.size());
    CctNode n;
    n.parent = parent;
    n.kind = kind;
    n.function = fn;
    n.codeId = codeId;
    cct_.push_back(std::move(n));
    cct_[parent].children.push_back(idx);
    return idx;
}

void
PcSampler::pushFrame(ProfFrameKind kind, FunctionId fn, u32 codeId)
{
    if (stack_.size() >= kMaxDepth) {
        // Fold deep recursion onto the node at the cap; the matching
        // popFrame() still has an entry to pop.
        stack_.push_back(stack_.back());
        return;
    }
    stack_.push_back(childFor(stack_.back(), kind, fn, codeId));
}

void
PcSampler::popFrame()
{
    if (stack_.size() > 1)
        stack_.pop_back();
}

const CodeObjectMeta &
PcSampler::pinMeta(const CodeObject &code)
{
    auto it = metas.find(code.id);
    if (it == metas.end())
        it = metas.emplace(code.id, CodeObjectMeta::capture(code)).first;
    return it->second;
}

void
PcSampler::tick(Cycles now, const CodeObject &code, u32 pc)
{
    if (now < nextAt_)
        return;

    auto &h = histograms[code.id];
    if (h.size() < code.code.size())
        h.resize(code.code.size(), 0);
    const CodeObjectMeta &meta = pinMeta(code);

    while (now >= nextAt_) {
        h[pc]++;
        totalSamples++;
        nextAt_ += period_;

        if (profiling_) {
            CctNode &node = cct_[stack_.back()];
            node.jitSamples++;
            if (pc < meta.insts.size()
                && meta.insts[pc].group != kNoGroup)
                node.checkSamples[meta.insts[pc].group]++;
            if (trace_ && trace_->on(TraceCategory::Sample))
                trace_->emit(TraceCategory::Sample,
                             TraceEventKind::Instant, "sample", now,
                             code.id, pc,
                             pc < meta.insts.size()
                                 ? static_cast<u64>(meta.insts[pc].line)
                                 : 0);
        }
    }
}

void
PcSampler::skipTo(Cycles now)
{
    // Periods that elapsed outside simulated code are not samples of
    // any JIT pc; runWorkload() accounts them as non-check process time
    // (like perf samples landing in the runtime). With profiling on
    // they are still charged to the current calling context.
    while (now >= nextAt_) {
        nextAt_ += period_;
        if (profiling_) {
            cct_[stack_.back()].runtimeSamples++;
            runtimeSamples++;
        }
    }
}

void
PcSampler::tickInterp(u64 interpCyclesNow)
{
    if (!profiling_)
        return;
    while (interpCyclesNow >= interpNextAt_) {
        interpNextAt_ += period_;
        cct_[stack_.back()].interpSamples++;
        interpSamples++;
    }
}

} // namespace vspec
